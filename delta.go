// Incremental delta inference: the O(churn) reload path. A fresh load
// of a successor dataset epoch is diffed against the previous
// generation per source, the changed keys are mapped to dirty
// allocation-forest roots, and only those are re-classified — the rest
// of the previous Result is structurally shared. The output is
// byte-identical to a full Infer over the new dataset; the win is that
// monthly registry and RIB refreshes churn a few percent of the world,
// so re-inference cost tracks the churn instead of the dataset size.
package ipleasing

import (
	"context"
	"strconv"

	"ipleasing/internal/core"
	"ipleasing/internal/delta"
	"ipleasing/internal/telemetry"
)

// DeltaChurnFallback is the default dirty-segment ratio above which
// InferDelta abandons the incremental path and runs a full inference:
// past roughly a third of the forest, patching costs more than it
// saves (clean-segment copies, plan bookkeeping, index patching) and a
// full rebuild also compacts the serving indexes.
const DeltaChurnFallback = 0.35

// Generation bundles one dataset load with the inference it produced:
// the unit of state an incremental reload diffs against. Callers keep
// the Generation returned by one reload and hand it to the next.
type Generation struct {
	Dataset *Dataset
	Summary *LoadSummary
	Result  *Result
	// Opts is the inference options the Result was produced under; a
	// delta against this generation must use the same options or it
	// falls back to a full inference.
	Opts Options
}

// DeltaReport describes how an incremental inference ran.
type DeltaReport struct {
	// Mode is "delta" when the incremental path applied, "full" when it
	// fell back (first generation, options mismatch, churn above
	// threshold).
	Mode string
	// Changes is the per-source diff between the two generations.
	// Always set when a previous generation was available.
	Changes *delta.Changes
	// Stats is the dirty-segment accounting of the delta pass; set even
	// when the churn threshold forced a fallback, nil when the delta
	// path never started.
	Stats *core.DeltaStats
	// Plan maps the previous generation's flat inference order onto the
	// new one, for patching serving indexes (serve.PatchSnapshot). Nil
	// in full mode.
	Plan *core.PatchPlan
}

// InferDelta runs inference over a freshly loaded dataset by re-using
// the previous generation's result wherever the inputs did not change.
// It diffs next against prev's dataset (whois objects, BGP origin
// sets, relationship/organisation rows, ROAs), maps the changed keys
// to dirty allocation-forest roots, re-classifies only those, and
// splices them into a structurally-shared copy of prev.Result.
//
// The returned Generation's Result is byte-identical to
// next.Infer(opts) — same CSV, same Table 1, same lookup answers — at
// any GOMAXPROCS. When the incremental path cannot apply (nil prev,
// differing options, dirty ratio above maxDirtyRatio) it transparently
// falls back to a full inference; the report says which path ran.
//
// maxDirtyRatio <= 0 disables the churn threshold; pass
// DeltaChurnFallback for the default.
func InferDelta(ctx context.Context, next *Dataset, summary *LoadSummary, opts Options, prev *Generation, maxDirtyRatio float64) (*Generation, *DeltaReport) {
	gen := &Generation{Dataset: next, Summary: summary, Opts: opts}
	rep := &DeltaReport{Mode: "full"}
	if prev == nil || prev.Dataset == nil || prev.Result == nil || prev.Opts != opts {
		gen.Result = next.InferContext(ctx, opts)
		return gen, rep
	}

	dctx, dspan := telemetry.StartSpan(ctx, "delta.diff")
	ch := delta.Diff(inputsOf(prev.Dataset), inputsOf(next))
	dspan.SetAttr("changed_keys", strconv.Itoa(ch.TotalChangedKeys()))
	dspan.End()
	rep.Changes = ch

	actx, aspan := telemetry.StartSpan(dctx, "delta.apply")
	res, plan, stats, ok := next.Pipeline(opts).ApplyDelta(
		actx, prev.Dataset.Pipeline(prev.Opts), prev.Result, ch, maxDirtyRatio)
	rep.Stats = stats
	aspan.SetAttr("applied", strconv.FormatBool(ok))
	if stats != nil {
		aspan.SetAttr("dirty_segments", strconv.Itoa(stats.DirtySegments))
	}
	aspan.End()
	if !ok {
		gen.Result = next.InferContext(ctx, opts)
		return gen, rep
	}
	gen.Result = res
	rep.Mode = "delta"
	rep.Plan = plan
	return gen, rep
}

// LoadAndInferDelta is the incremental counterpart of LoadAndInfer:
// load the successor epoch from dir, then InferDelta against prev. The
// load itself is not incremental — parsing the refreshed sources is
// common to both reload modes — only the inference and (via the
// report's Plan) the serving indexes are.
func LoadAndInferDelta(ctx context.Context, dir string, loadOpts LoadOptions, inferOpts Options, prev *Generation, maxDirtyRatio float64) (*Generation, *DeltaReport, error) {
	ds, sum, err := loadDataset(ctx, dir, loadOpts)
	if err != nil {
		return nil, nil, err
	}
	gen, rep := InferDelta(ctx, ds, sum, inferOpts, prev, maxDirtyRatio)
	return gen, rep, nil
}

// inputsOf projects the substrates the inference reads out of a
// dataset for diffing.
func inputsOf(d *Dataset) delta.Inputs {
	return delta.Inputs{Whois: d.Whois, Table: d.Table, Rel: d.Rel, Orgs: d.Orgs, RPKI: d.RPKI}
}
