// Package ipleasing infers leased IPv4 address space from registry and
// routing data, reproducing "Sublet Your Subnet: Inferring IP Leasing in
// the Wild" (IMC 2024).
//
// The package is a façade over the internal substrates: WHOIS dialect
// parsers for all five RIRs, an MRT/BGP RIB codec, RPKI/ROA validation,
// CAIDA-style AS relationship and AS-to-organisation datasets, abuse
// lists, broker registries, and a deterministic synthetic-internet
// generator used in place of the paper's bulk data downloads.
//
// Typical use:
//
//	world := ipleasing.Generate(ipleasing.Config{Seed: 1})
//	if err := world.WriteDir("dataset"); err != nil { ... }
//	ds, err := ipleasing.LoadDataset("dataset")
//	res := ds.Infer(ipleasing.Options{})
//	fmt.Printf("leased: %d (%.1f%% of routed prefixes)\n",
//		res.TotalLeased(), 100*res.LeasedShareOfBGP())
package ipleasing

import (
	"context"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"

	"ipleasing/internal/abuse"
	"ipleasing/internal/as2org"
	"ipleasing/internal/asrel"
	"ipleasing/internal/baseline"
	"ipleasing/internal/bgp"
	"ipleasing/internal/brokers"
	"ipleasing/internal/core"
	"ipleasing/internal/ecosystem"
	"ipleasing/internal/eval"
	"ipleasing/internal/geoip"
	"ipleasing/internal/hijack"
	"ipleasing/internal/legacy"
	"ipleasing/internal/market"
	"ipleasing/internal/netutil"
	"ipleasing/internal/report"
	"ipleasing/internal/rpki"
	"ipleasing/internal/spamhaus"
	"ipleasing/internal/synth"
	"ipleasing/internal/timeline"
	"ipleasing/internal/whois"
)

// Re-exported types: the full public API surface of the library.
type (
	// Config controls synthetic-world generation (see the paper-shape
	// defaults in internal/synth).
	Config = synth.Config
	// World is a generated synthetic Internet.
	World = synth.World
	// TruthRecord is planted ground truth for one leaf prefix.
	TruthRecord = synth.TruthRecord
	// MutateConfig controls the synthesis of a churned successor epoch.
	MutateConfig = synth.MutateConfig
	// MutateStats counts the mutations one Mutate call applied.
	MutateStats = synth.MutateStats

	// Registry identifies one of the five RIRs.
	Registry = whois.Registry
	// Prefix is an IPv4 CIDR prefix.
	Prefix = netutil.Prefix

	// Options tunes the inference pipeline (ablations included).
	Options = core.Options
	// Result is a full inference run's output.
	Result = core.Result
	// Inference is one leaf prefix's classification.
	Inference = core.Inference
	// Category is the paper's group classification.
	Category = core.Category

	// Reference is the curated evaluation dataset (paper §5.3).
	Reference = eval.Reference
	// Evaluation is a scored evaluation (paper Table 2).
	Evaluation = eval.Evaluation
	// ISPRef names a negative-set ISP.
	ISPRef = eval.ISPRef

	// AbuseReport is the §6.4 abuse correlation.
	AbuseReport = abuse.Report
	// HijackerOverlap is the §6.3 serial-hijacker correlation.
	HijackerOverlap = ecosystem.HijackerOverlap
	// OrgCount ranks holders/facilitators.
	OrgCount = ecosystem.OrgCount
	// ASNCount ranks originators.
	ASNCount = ecosystem.ASNCount

	// TimelineSeries is a prefix's lease history (Figure 3).
	TimelineSeries = timeline.Series

	// GeoPanel is a set of geolocation provider databases (§8 extension).
	GeoPanel = geoip.Panel
	// GeoReport contrasts geolocation disagreement over leased vs
	// non-leased prefixes.
	GeoReport = geoip.Report

	// MarketSnapshot is one month's routing view (§8 extension).
	MarketSnapshot = market.Snapshot
	// MarketReport is the longitudinal lease-churn analysis.
	MarketReport = market.Report
	// MarketMonthStats is one month's market activity.
	MarketMonthStats = market.MonthStats

	// BaselineInference is the Prehn et al. maintainer heuristic's
	// verdict.
	BaselineInference = baseline.Inference
	// BaselineComparison contrasts the two methods (§6.1).
	BaselineComparison = baseline.Comparison

	// LegacyInference is the legacy-space extension's verdict (§8).
	LegacyInference = legacy.Inference
	// LegacyVerdict classifies one legacy block.
	LegacyVerdict = legacy.Verdict
	// LegacySummary aggregates legacy verdicts.
	LegacySummary = legacy.Summary
)

// Legacy verdict constants.
const (
	LegacyUnadvertised   = legacy.Unadvertised
	LegacyHolderOperated = legacy.HolderOperated
	LegacyLeased         = legacy.Leased
	LegacyNoExpectation  = legacy.NoExpectation
)

// Registry constants.
const (
	RIPE    = whois.RIPE
	ARIN    = whois.ARIN
	APNIC   = whois.APNIC
	AFRINIC = whois.AFRINIC
	LACNIC  = whois.LACNIC
)

// Registries lists the five RIRs in canonical order.
var Registries = whois.Registries

// Category constants.
const (
	Unused               = core.Unused
	AggregatedCustomer   = core.AggregatedCustomer
	ISPCustomer          = core.ISPCustomer
	LeasedNoRootOrigin   = core.LeasedNoRootOrigin
	DelegatedCustomer    = core.DelegatedCustomer
	LeasedWithRootOrigin = core.LeasedWithRootOrigin
	Orphan               = core.Orphan
)

// Generate builds a synthetic world with paper-shaped defaults.
func Generate(cfg Config) *World { return synth.Generate(cfg) }

// Mutate perturbs a generated world in place into a plausible successor
// epoch — the same Internet one registry-and-RIB refresh later — for
// exercising the incremental reload path (see InferDelta).
func Mutate(w *World, cfg MutateConfig) *MutateStats { return synth.Mutate(w, cfg) }

// Dataset is a fully loaded dataset directory: everything the paper's
// methodology consumes, parsed from its on-disk formats.
type Dataset struct {
	Dir string

	Whois     *whois.Dataset
	Table     *bgp.Table
	Rel       *asrel.Graph
	Orgs      *as2org.Map
	Drop      *spamhaus.Archive
	Hijackers *hijack.Set
	Brokers   *brokers.List
	RPKI      *rpki.Archive

	Truth      []TruthRecord
	Exclusions []Prefix
	EvalISPs   []ISPRef
	Geo        *GeoPanel // nil when the dataset carries no geo directory

	// Load is the per-source accounting of the load that produced this
	// dataset: which sources were missing, what was skipped, and which
	// analyses a degraded dataset cannot run.
	Load *LoadSummary

	// trees caches the per-registry allocation trees across Infer runs
	// over this dataset (they depend only on the WHOIS data and the
	// hyper-specific cut-off). Options.DisableCaches bypasses it.
	trees *core.TreeCache
}

// LoadDataset loads a dataset directory written by World.WriteDir (or
// assembled by hand from real data in the same formats). The inputs are
// independent files in independent formats, so they are parsed
// concurrently — five WHOIS dialects (themselves fanned out per registry
// inside whois.LoadDir), the two MRT RIBs, the relationship/organisation
// datasets, the abuse feeds, the RPKI archive, and the evaluation files —
// and the loaded dataset is identical to a serial load. The merged
// routing table is frozen before return, so the first Infer pays no
// indexing cost.
//
// LoadDataset is strict: the first malformed record aborts the load with
// the parser's original error. For skip-and-account ingestion of messy
// inputs, with per-source diagnostics, see LoadDatasetReport.
func LoadDataset(dir string) (*Dataset, error) {
	ds, _, err := loadDataset(context.Background(), dir, StrictLoad())
	return ds, err
}

// LoadDatasetContext is LoadDataset under a context. When the context
// carries a telemetry trace, the per-source load stages are recorded as
// spans (see LoadDatasetReportContext).
func LoadDatasetContext(ctx context.Context, dir string) (*Dataset, error) {
	ds, _, err := loadDataset(ctx, dir, StrictLoad())
	return ds, err
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// relaxGCForLoad raises the collector's heap-growth target while a bulk
// dataset load is in flight and returns a function restoring the previous
// setting. Loading allocates tens of megabytes of long-lived structures in
// a burst; under the default target the collector repeatedly re-marks the
// half-built dataset mid-load. Nested and concurrent loads share one
// raise/restore pair, and an explicit GOGC at or above the load target
// (or "off") is left untouched.
func relaxGCForLoad() func() {
	const loadGCPercent = 300
	gcLoadMu.Lock()
	gcLoadDepth++
	if gcLoadDepth == 1 {
		prev := debug.SetGCPercent(loadGCPercent)
		if prev < 0 || prev >= loadGCPercent {
			debug.SetGCPercent(prev)
		} else {
			gcLoadRestore = prev
		}
	}
	gcLoadMu.Unlock()
	return func() {
		gcLoadMu.Lock()
		gcLoadDepth--
		if gcLoadDepth == 0 && gcLoadRestore >= 0 {
			debug.SetGCPercent(gcLoadRestore)
			gcLoadRestore = -1
		}
		gcLoadMu.Unlock()
	}
}

var (
	gcLoadMu      sync.Mutex
	gcLoadDepth   int
	gcLoadRestore = -1
)

// AnalyzeGeo measures geolocation-database disagreement over leased
// versus non-leased announced prefixes (§8 extension). Returns nil when
// the dataset has no geolocation panel.
func (d *Dataset) AnalyzeGeo(res *Result) *GeoReport {
	if d.Geo == nil {
		return nil
	}
	leasedSet := make(map[Prefix]bool)
	var leased []Prefix
	for _, inf := range res.LeasedInferences() {
		leased = append(leased, inf.Prefix)
		leasedSet[inf.Prefix] = true
	}
	var nonLeased []Prefix
	d.Table.Walk(func(p Prefix, origins []uint32) bool {
		if !leasedSet[p] {
			nonLeased = append(nonLeased, p)
		}
		return true
	})
	return d.Geo.Analyze(leased, nonLeased)
}

// Pipeline builds a core pipeline over the dataset.
func (d *Dataset) Pipeline(opts Options) *core.Pipeline {
	return &core.Pipeline{Whois: d.Whois, Table: d.Table, Rel: d.Rel, Orgs: d.Orgs, Opts: opts, Trees: d.trees}
}

// Infer runs the paper's methodology (§5.1–§5.2).
func (d *Dataset) Infer(opts Options) *Result {
	return d.Pipeline(opts).Infer()
}

// InferContext is Infer under a context: when the context carries a
// telemetry trace, each registry's classification is recorded as an
// "infer.<RIR>" span.
func (d *Dataset) InferContext(ctx context.Context, opts Options) *Result {
	return d.Pipeline(opts).InferContext(ctx)
}

// Curate builds the evaluation reference dataset (§5.3).
func (d *Dataset) Curate() *Reference {
	return eval.Curate(eval.Inputs{
		Whois:      d.Whois,
		Table:      d.Table,
		Brokers:    d.Brokers,
		Exclusions: d.Exclusions,
		ISPs:       d.EvalISPs,
	})
}

// Evaluate scores a result against the curated reference (Table 2).
func Evaluate(ref *Reference, res *Result) *Evaluation {
	return eval.Evaluate(ref, res)
}

// AnalyzeAbuse runs the §6.4 abuse correlation. ROA membership uses the
// union of the archive window's snapshots, mirroring the paper's use of a
// multi-day archive to catch ROAs created after the lease began.
func (d *Dataset) AnalyzeAbuse(res *Result) *AbuseReport {
	var vrps *rpki.Set
	if d.RPKI != nil && len(d.RPKI.Snapshots) > 0 {
		vrps = d.RPKI.UnionSet()
	}
	return abuse.Analyze(res, d.Table, d.Drop, vrps)
}

// TopHolders ranks IP holders by leased prefixes per registry (Table 3).
func (d *Dataset) TopHolders(res *Result, n int) map[Registry][]OrgCount {
	return ecosystem.TopHolders(res, d.Whois, n)
}

// TopFacilitators ranks lease facilitators per registry (§6.3),
// resolving maintainer handles to organisation names.
func (d *Dataset) TopFacilitators(res *Result, n int) map[Registry][]OrgCount {
	return ecosystem.TopFacilitators(res, d.Whois, n)
}

// TopOriginators ranks lease originators (§6.3).
func (d *Dataset) TopOriginators(res *Result, n int) []ASNCount {
	return ecosystem.TopOriginators(res, d.Orgs, n)
}

// HijackerAnalysis computes the §6.3 serial-hijacker overlap.
func (d *Dataset) HijackerAnalysis(res *Result) HijackerOverlap {
	return ecosystem.OverlapHijackers(res, d.Table, d.Hijackers)
}

// LoadTimeline loads the dataset's Figure-3 timeline directory.
func (d *Dataset) LoadTimeline() (*TimelineSeries, error) {
	return timeline.Load(filepath.Join(d.Dir, synth.DirTimeline))
}

// LoadMarket loads the dataset's longitudinal monthly routing snapshots
// (§8 extension).
func (d *Dataset) LoadMarket() ([]MarketSnapshot, error) {
	return market.LoadDir(filepath.Join(d.Dir, synth.DirMarket))
}

// AnalyzeMarket runs the inference over every monthly snapshot and
// reports lease churn and durations.
func (d *Dataset) AnalyzeMarket(snaps []MarketSnapshot, opts Options) *MarketReport {
	return market.Analyze(market.Inputs{
		Whois: d.Whois, Rel: d.Rel, Orgs: d.Orgs, Opts: opts, Trees: d.trees,
	}, snaps)
}

// BaselineInfer runs the Prehn et al. maintainer-difference heuristic.
func (d *Dataset) BaselineInfer() []BaselineInference {
	return baseline.Infer(d.Whois, baseline.Options{})
}

// InferRelationships reconstructs an AS-relationship graph from the
// dataset's own RIB paths with the Gao degree heuristic — the §7
// sensitivity study for the methodology's dependence on BGP-derived
// relationship data. It returns the inferred graph and its relatedness
// agreement with the dataset's relationship file.
func (d *Dataset) InferRelationships() (*asrel.Graph, float64, error) {
	var paths [][]uint32
	for _, name := range []string{synth.FileRIBRouteviews, synth.FileRIBRIS} {
		path := filepath.Join(d.Dir, name)
		if _, err := os.Stat(path); err != nil {
			continue
		}
		ps, err := bgp.ReadPathsFile(path)
		if err != nil {
			return nil, 0, err
		}
		paths = append(paths, ps...)
	}
	g := asrel.InferFromPaths(paths)
	return g, asrel.Agreement(g, d.Rel), nil
}

// InferWithRelationships runs the methodology with a substitute
// relationship graph (e.g. one from InferRelationships).
func (d *Dataset) InferWithRelationships(g *asrel.Graph, opts Options) *Result {
	p := d.Pipeline(opts)
	p.Rel = g
	return p.Infer()
}

// InferLegacy runs the legacy-address-space extension (the paper's §8
// future work): classify every registered legacy block by comparing its
// BGP origin against the registrant's and maintainer-sharing
// organisations' ASNs.
func (d *Dataset) InferLegacy(opts Options) []LegacyInference {
	p := d.Pipeline(opts)
	return legacy.Infer(legacy.Inputs{
		Whois:        d.Whois,
		Table:        d.Table,
		Related:      p.Related,
		MaxPrefixLen: opts.MaxPrefixLen,
	})
}

// SummarizeLegacy tallies legacy verdicts.
func SummarizeLegacy(infs []LegacyInference) LegacySummary { return legacy.Summarize(infs) }

// EvaluateAugmented scores a result together with extension verdicts:
// prefixes in extraLeased count as inferred leased (e.g. legacy leases
// the core pipeline cannot see).
func EvaluateAugmented(ref *Reference, res *Result, extraLeased []Prefix) *Evaluation {
	return eval.EvaluateAugmented(ref, res, extraLeased)
}

// WriteReport runs every analysis over the dataset and writes the full
// reproduction report (all tables, figures, and extensions) as Markdown.
func (d *Dataset) WriteReport(path string, res *Result) error {
	ref := d.Curate()
	ov := d.HijackerAnalysis(res)
	cmp := CompareBaseline(d.BaselineInfer(), res)
	leg := SummarizeLegacy(d.InferLegacy(Options{}))
	data := &report.Data{
		Result:          res,
		Whois:           d.Whois,
		Reference:       ref,
		Evaluation:      Evaluate(ref, res),
		TopHolders:      d.TopHolders(res, 3),
		TopFacilitators: d.TopFacilitators(res, 3),
		TopOriginators:  d.TopOriginators(res, 5),
		Hijackers:       &ov,
		Abuse:           d.AnalyzeAbuse(res),
		Baseline:        &cmp,
		Legacy:          &leg,
		Geo:             d.AnalyzeGeo(res),
	}
	if d.Load != nil {
		data.SkippedAnalyses = d.Load.SkippedAnalyses
	}
	if series, err := d.LoadTimeline(); err == nil {
		data.Timeline = series
	}
	if snaps, err := d.LoadMarket(); err == nil {
		data.Market = d.AnalyzeMarket(snaps, Options{})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := report.Markdown(f, data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// CompareBaseline contrasts the heuristic with the routing-aware result.
func CompareBaseline(base []BaselineInference, res *Result) BaselineComparison {
	return baseline.Compare(base, res)
}

// WriteInferencesCSV exports inferences in the stable CSV format.
func WriteInferencesCSV(path string, infs []Inference) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := core.WriteCSV(f, infs)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// SortInferences orders inferences deterministically.
func SortInferences(infs []Inference) { core.SortInferences(infs) }
