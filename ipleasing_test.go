package ipleasing

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEnd is the library's headline integration test: generate a
// world, render it to disk in every native format, load it all back, run
// the full methodology, and check the paper's shapes.
func TestEndToEnd(t *testing.T) {
	w := Generate(Config{Seed: 99, Scale: 0.01})
	dir := t.TempDir()
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := ds.Infer(Options{})

	// Inference over reloaded bytes must match the in-memory pipeline.
	memRes := w.Pipeline().Infer()
	if res.TotalLeased() != memRes.TotalLeased() {
		t.Fatalf("disk/memory mismatch: %d vs %d leased", res.TotalLeased(), memRes.TotalLeased())
	}
	if res.TotalBGPPrefixes != memRes.TotalBGPPrefixes {
		t.Fatalf("BGP prefix counts differ: %d vs %d", res.TotalBGPPrefixes, memRes.TotalBGPPrefixes)
	}

	// Table 1 shape: leased ≈ 4.1% of routed prefixes, RIPE biggest.
	if share := res.LeasedShareOfBGP(); share < 0.02 || share > 0.07 {
		t.Errorf("leased share = %.3f", share)
	}
	ripe := res.Regions[RIPE].Leased()
	for _, reg := range []Registry{ARIN, APNIC, AFRINIC, LACNIC} {
		if res.Regions[reg].Leased() >= ripe {
			t.Errorf("%v >= RIPE leases", reg)
		}
	}

	// Table 2 shape.
	ref := ds.Curate()
	ev := Evaluate(ref, res)
	if p := ev.Confusion.Precision(); p < 0.9 {
		t.Errorf("precision = %.3f", p)
	}
	if r := ev.Confusion.Recall(); r < 0.6 || r > 0.95 {
		t.Errorf("recall = %.3f", r)
	}

	// §6.4 abuse ratio ≈ 5×.
	rep := ds.AnalyzeAbuse(res)
	if ratio := rep.AbuseRatio(); ratio < 2 {
		t.Errorf("abuse ratio = %.1f", ratio)
	}

	// Table 3 + §6.3.
	holders := ds.TopHolders(res, 3)
	if len(holders[RIPE]) != 3 {
		t.Fatal("no RIPE top holders")
	}
	if fac := ds.TopFacilitators(res, 3); len(fac[RIPE]) != 3 {
		t.Fatal("no RIPE top facilitators")
	}
	if orig := ds.TopOriginators(res, 5); len(orig) != 5 {
		t.Fatal("no top originators")
	}
	ov := ds.HijackerAnalysis(res)
	if ov.LeasedHijackedShare() <= ov.NonLeasedHijackedShare() {
		t.Error("hijacker share inversion")
	}

	// Figure 3.
	series, err := ds.LoadTimeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.LeasePeriods()) != 5 || len(series.AS0Gaps()) != 4 {
		t.Errorf("timeline periods=%d gaps=%d", len(series.LeasePeriods()), len(series.AS0Gaps()))
	}

	// §6.1 baseline comparison.
	base := ds.BaselineInfer()
	cmp := CompareBaseline(base, res)
	if cmp.Total() == 0 || cmp.Both == 0 {
		t.Errorf("baseline comparison degenerate: %+v", cmp)
	}

	// CSV export works.
	infs := res.All()
	SortInferences(infs)
	if err := WriteInferencesCSV(filepath.Join(dir, "out.csv"), infs); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDatasetMissingDir(t *testing.T) {
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

// TestExtensionsFacade exercises the §7/§8 façade surface end to end:
// legacy inference, relationship re-inference, geo and market analyses,
// and the Markdown report writer.
func TestExtensionsFacade(t *testing.T) {
	dir := t.TempDir()
	if err := Generate(Config{Seed: 23, Scale: 0.005}).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := ds.Infer(Options{})

	// Legacy extension.
	legs := ds.InferLegacy(Options{})
	sum := SummarizeLegacy(legs)
	if sum.Total == 0 || sum.Counts[LegacyLeased] == 0 {
		t.Fatalf("legacy summary = %+v", sum)
	}
	var extra []Prefix
	for _, inf := range legs {
		if inf.Verdict == LegacyLeased {
			extra = append(extra, inf.Prefix)
		}
	}
	ref := ds.Curate()
	plain := Evaluate(ref, res)
	aug := EvaluateAugmented(ref, res, extra)
	if aug.Confusion.FN >= plain.Confusion.FN {
		t.Errorf("legacy augmentation did not reduce FNs: %d -> %d",
			plain.Confusion.FN, aug.Confusion.FN)
	}

	// Relationship re-inference.
	g, agreement, err := ds.InferRelationships()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 || agreement <= 0 || agreement > 1 {
		t.Fatalf("relinfer: %d edges, agreement %.2f", g.NumEdges(), agreement)
	}
	alt := ds.InferWithRelationships(g, Options{})
	if alt.TotalLeased() == 0 {
		t.Fatal("no leases with inferred relationships")
	}

	// Geo + market.
	if rep := ds.AnalyzeGeo(res); rep == nil || rep.LeasedShare() <= rep.NonLeasedShare() {
		t.Fatalf("geo report = %+v", rep)
	}
	snaps, err := ds.LoadMarket()
	if err != nil {
		t.Fatal(err)
	}
	if mrep := ds.AnalyzeMarket(snaps, Options{}); len(mrep.Months) != 6 {
		t.Fatalf("market months = %d", len(mrep.Months))
	}

	// Full Markdown report.
	out := filepath.Join(dir, "report.md")
	if err := ds.WriteReport(out, res); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## Table 1", "## Table 3", "## §8 extensions", "Market dynamics"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
