package main

import (
	"os"
	"path/filepath"
	"testing"

	"ipleasing"
)

// testDataset generates one small dataset shared by the command tests.
func testDataset(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds")
	w := ipleasing.Generate(ipleasing.Config{Seed: 5, Scale: 0.005})
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunEveryExperiment(t *testing.T) {
	dir := testDataset(t)
	// Silence the experiment output: the test only checks for errors.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	for _, exp := range []string{
		"table1", "table2", "table3", "fig3",
		"hijackers", "abuse", "baseline", "legacy", "geo", "market", "relinfer",
		"ablations", "all",
	} {
		if err := run(dir, 0.005, 5, exp, ""); err != nil {
			t.Errorf("run(%q) failed: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	dir := testDataset(t)
	if err := run(dir, 0.005, 5, "nope", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunGeneratesMissingDataset(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	dir := filepath.Join(t.TempDir(), "fresh")
	if err := run(dir, 0.005, 1, "table1", ""); err != nil {
		t.Fatalf("run on missing dataset: %v", err)
	}
	// A second run must reuse the generated dataset.
	if err := run(dir, 0.005, 1, "table1", ""); err != nil {
		t.Fatalf("run on existing dataset: %v", err)
	}
}
