// Command experiments regenerates every table and figure of the paper's
// evaluation section over a synthetic dataset (see DESIGN.md §4 for the
// experiment index):
//
//	table1    — per-RIR inference groups and the leased share of BGP
//	table2    — evaluation confusion matrix against the curated reference
//	table3    — top-3 IP holders per RIR by leased prefixes
//	fig3      — a marketplace prefix's RPKI/BGP lease timeline
//	hijackers — §6.3 serial-hijacker overlap and top originators/facilitators
//	abuse     — §6.4 ASN-DROP and ROA correlation + ROV states
//	baseline  — §6.1 comparison with the maintainer-diff heuristic
//	legacy    — §8 extension: legacy-space lease inference
//	geo       — §8 extension: geolocation-database disagreement
//	market    — §8 extension: longitudinal market dynamics
//	relinfer  — §7 study: Gao-inferred AS relationships vs the dataset file
//	ablations — DESIGN.md design-choice ablations
//	all       — everything above, in order
//
// Usage:
//
//	experiments [-data dataset] [-scale 0.02] [-seed 1] [-exp all] [-md report.md]
//
// When -data does not exist it is generated first, so
// `experiments -exp all` works from an empty checkout. The -md flag also
// writes the full Markdown reproduction report.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ipleasing"
)

func main() {
	data := flag.String("data", "", "dataset directory (default: generate into a temp dir)")
	scale := flag.Float64("scale", 0.02, "generation scale when the dataset is missing")
	seed := flag.Int64("seed", 1, "generator seed")
	exp := flag.String("exp", "all", "experiment: table1|table2|table3|fig3|hijackers|abuse|baseline|legacy|geo|market|ablations|all")
	md := flag.String("md", "", "also write the full Markdown reproduction report to this path")
	flag.Parse()

	if err := run(*data, *scale, *seed, *exp, *md); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(dir string, scale float64, seed int64, exp, mdPath string) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ipleasing-dataset-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	if _, err := os.Stat(dir + "/groundtruth.csv"); os.IsNotExist(err) {
		fmt.Printf("generating dataset in %s (scale=%.3f seed=%d)...\n", dir, scale, seed)
		w := ipleasing.Generate(ipleasing.Config{Seed: seed, Scale: scale})
		if err := w.WriteDir(dir); err != nil {
			return err
		}
	}
	ds, err := ipleasing.LoadDataset(dir)
	if err != nil {
		return err
	}
	res := ds.Infer(ipleasing.Options{})

	if mdPath != "" {
		if err := ds.WriteReport(mdPath, res); err != nil {
			return err
		}
		fmt.Printf("wrote Markdown report to %s\n", mdPath)
	}

	runOne := func(name string, fn func(*ipleasing.Dataset, *ipleasing.Result) error) error {
		fmt.Printf("\n================ %s ================\n", name)
		return fn(ds, res)
	}
	experiments := []struct {
		name string
		fn   func(*ipleasing.Dataset, *ipleasing.Result) error
	}{
		{"table1", table1},
		{"table2", table2},
		{"table3", table3},
		{"fig3", fig3},
		{"hijackers", hijackers},
		{"abuse", abuseExp},
		{"baseline", baselineExp},
		{"legacy", legacyExp},
		{"geo", geoExp},
		{"market", marketExp},
		{"relinfer", relinferExp},
		{"ablations", ablations},
	}
	if exp == "all" {
		for _, e := range experiments {
			if err := runOne(e.name, e.fn); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range experiments {
		if e.name == exp {
			return runOne(e.name, e.fn)
		}
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

// table1 prints the per-RIR group counts (paper Table 1).
func table1(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	fmt.Printf("%-22s", "Inference Group")
	for _, reg := range ipleasing.Registries {
		fmt.Printf("%10s", reg)
	}
	fmt.Printf("%12s\n", "All Regions")

	rows := []struct {
		label string
		cat   ipleasing.Category
	}{
		{"1 Unused", ipleasing.Unused},
		{"2 Aggregated Customer", ipleasing.AggregatedCustomer},
		{"3 ISP Customer", ipleasing.ISPCustomer},
		{"3 Leased", ipleasing.LeasedNoRootOrigin},
		{"4 Delegated Customer", ipleasing.DelegatedCustomer},
		{"4 Leased", ipleasing.LeasedWithRootOrigin},
	}
	for _, row := range rows {
		fmt.Printf("%-22s", row.label)
		total := 0
		for _, reg := range ipleasing.Registries {
			n := res.Regions[reg].Counts[row.cat]
			total += n
			fmt.Printf("%10d", n)
		}
		fmt.Printf("%12d\n", total)
	}
	fmt.Printf("%-22s", "Leased/Total leaves")
	totLeased, totLeaves := 0, 0
	for _, reg := range ipleasing.Registries {
		rr := res.Regions[reg]
		totLeased += rr.Leased()
		totLeaves += rr.TotalLeaves
		fmt.Printf("%10s", fmt.Sprintf("%d/%d", rr.Leased(), rr.TotalLeaves))
	}
	fmt.Printf("%12s\n", fmt.Sprintf("%d/%d", totLeased, totLeaves))
	fmt.Printf("\nleased prefixes: %d of %d routed prefixes = %.1f%% (paper: 4.1%%)\n",
		res.TotalLeased(), res.TotalBGPPrefixes, 100*res.LeasedShareOfBGP())
	fmt.Printf("leased address space: %d of %d routed addresses = %.1f%% (paper: 0.9%%)\n",
		res.LeasedAddressSpace(), res.RoutedSpace,
		100*float64(res.LeasedAddressSpace())/float64(res.RoutedSpace))
	return nil
}

// table2 prints the evaluation confusion matrix (paper Table 2).
func table2(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	ref := ds.Curate()
	ev := ipleasing.Evaluate(ref, res)
	fmt.Printf("brokers: %d exact, %d fuzzy, %d absent; %d maintainer handles; %d broker prefixes (%d excluded)\n\n",
		ref.BrokersExact, ref.BrokersFuzzy, ref.BrokersUnmatched,
		ref.MaintainerHandles, ref.BrokerPrefixes, ref.Excluded)
	fmt.Print(ev.Confusion.String())
	fmt.Println("\npaper: precision 0.98, recall 0.82, specificity 0.98, NPV 0.75, accuracy 0.88")
	fmt.Println("false negatives by inferred category (paper: dominated by group-1 unused + legacy):")
	fns := ev.FalseNegativesByCategory()
	cats := make([]ipleasing.Category, 0, len(fns))
	for c := range fns {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		fmt.Printf("  %-22s %d\n", c, fns[c])
	}
	return nil
}

// table3 prints the top-3 IP holders per registry (paper Table 3).
func table3(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	top := ds.TopHolders(res, 3)
	fmt.Printf("%-8s  %-45s %-6s %s\n", "RIR", "Organization", "Count", "Lease destinations")
	for _, reg := range ipleasing.Registries {
		for i, oc := range top[reg] {
			label := ""
			if i == 0 {
				label = reg.String()
			}
			fmt.Printf("%-8s  %-45s %-6d %d countries\n", label, oc.Name, oc.Count, oc.Countries)
		}
	}
	return nil
}

// fig3 renders the lease timeline of the marketplace prefix.
func fig3(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	series, err := ds.LoadTimeline()
	if err != nil {
		return err
	}
	if err := series.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nlease periods:")
	for _, p := range series.LeasePeriods() {
		fmt.Printf("  AS%-8d %s – %s\n", p.ASN, p.From.Format("2006-01"), p.To.Format("2006-01"))
	}
	fmt.Println("AS0 gaps between leases:")
	for _, p := range series.AS0Gaps() {
		fmt.Printf("  %s – %s\n", p.From.Format("2006-01"), p.To.Format("2006-01"))
	}
	return nil
}

// hijackers prints the §6.3 ecosystem analyses.
func hijackers(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	fmt.Println("top originators of leased prefixes:")
	for _, oc := range ds.TopOriginators(res, 5) {
		fmt.Printf("  AS%-8d %-40s %d\n", oc.ASN, oc.Name, oc.Count)
	}
	fmt.Println("\ntop facilitators per registry:")
	fac := ds.TopFacilitators(res, 3)
	for _, reg := range ipleasing.Registries {
		fmt.Printf("  %-8s", reg)
		for _, oc := range fac[reg] {
			fmt.Printf("  %s(%d)", oc.Name, oc.Count)
		}
		fmt.Println()
	}
	ov := ds.HijackerAnalysis(res)
	fmt.Printf("\nserial hijackers among lease originators: %d/%d = %.1f%% (paper: 2.9%%)\n",
		ov.HijackerOriginators, ov.Originators, 100*ov.OriginatorHijackerShare())
	fmt.Printf("leased prefixes originated by hijackers: %d/%d = %.1f%% (paper: 13.3%%)\n",
		ov.LeasedByHijackers, ov.LeasedTotal, 100*ov.LeasedHijackedShare())
	fmt.Printf("non-leased prefixes originated by hijackers: %d/%d = %.1f%% (paper: 3.1%%)\n",
		ov.NonLeasedByHijackers, ov.NonLeasedTotal, 100*ov.NonLeasedHijackedShare())
	return nil
}

// abuseExp prints the §6.4 abuse correlation.
func abuseExp(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	rep := ds.AnalyzeAbuse(res)
	fmt.Printf("leased prefixes originated by ASN-DROP ASes:     %d/%d = %.2f%% (paper: 1.1%%)\n",
		rep.LeasedDropped, rep.LeasedTotal, 100*rep.LeasedDropShare())
	fmt.Printf("non-leased prefixes originated by ASN-DROP ASes: %d/%d = %.2f%% (paper: 0.2%%)\n",
		rep.NonLeasedDropped, rep.NonLeasedTotal, 100*rep.NonLeasedDropShare())
	fmt.Printf("abuse ratio: %.1fx (paper: ~5x)\n\n", rep.AbuseRatio())
	fmt.Printf("ROAs covering leased prefixes: %d (%d prefixes with ROAs of %d leased)\n",
		rep.LeasedROAs, rep.LeasedWithROA, rep.LeasedTotal)
	fmt.Printf("  blocklisted-AS ROAs: %d = %.1f%% (paper: 1.6%%)\n",
		rep.LeasedROAsBad, 100*rep.LeasedROABadShare())
	fmt.Printf("non-leased prefixes with ROAs: %d; with blocklisted-AS ROAs: %d = %.1f%% (paper: 0.2%%)\n",
		rep.NonLeasedWithROA, rep.NonLeasedROABad, 100*rep.NonLeasedROABadShare())

	fmt.Println("\nroute-origin validation states (RFC 6811, extension):")
	fmt.Printf("  %-12s %10s %12s\n", "state", "leased", "non-leased")
	for s, name := range []string{"NotFound", "Valid", "Invalid"} {
		fmt.Printf("  %-12s %9.1f%% %11.1f%%\n", name,
			100*float64(rep.LeasedROV[s])/float64(rep.LeasedTotal),
			100*float64(rep.NonLeasedROV[s])/float64(rep.NonLeasedTotal))
	}
	return nil
}

// baselineExp prints the §6.1 comparison with Prehn et al.
func baselineExp(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	base := ds.BaselineInfer()
	cmp := ipleasing.CompareBaseline(base, res)
	fmt.Printf("maintainer-diff baseline classified %d leaves\n", len(base))
	fmt.Printf("  leased under both methods:        %d\n", cmp.Both)
	fmt.Printf("  leased under baseline only:       %d (incl. inactive leases our method calls unused)\n", cmp.OnlyBaseline)
	fmt.Printf("  leased under routing-aware only:  %d (same-maintainer direct leases)\n", cmp.OnlyOurs)
	fmt.Printf("  leased under neither:             %d\n", cmp.Neither)
	fmt.Printf("  agreement: %.1f%%\n", 100*cmp.Agreement())
	return nil
}

// legacyExp runs the §8 legacy-space extension and shows the recall gain
// when its verdicts augment the core methodology.
func legacyExp(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	infs := ds.InferLegacy(ipleasing.Options{})
	s := ipleasing.SummarizeLegacy(infs)
	fmt.Printf("legacy blocks classified: %d\n", s.Total)
	fmt.Printf("  unadvertised:    %d\n", s.Counts[ipleasing.LegacyUnadvertised])
	fmt.Printf("  holder-operated: %d\n", s.Counts[ipleasing.LegacyHolderOperated])
	fmt.Printf("  leased:          %d\n", s.Counts[ipleasing.LegacyLeased])
	fmt.Printf("  no-expectation:  %d\n", s.Counts[ipleasing.LegacyNoExpectation])

	var extra []ipleasing.Prefix
	for _, inf := range infs {
		if inf.Verdict == ipleasing.LegacyLeased {
			extra = append(extra, inf.Prefix)
		}
	}
	ref := ds.Curate()
	before := ipleasing.Evaluate(ref, res)
	after := ipleasing.EvaluateAugmented(ref, res, extra)
	fmt.Printf("\nTable 2 recall without the extension: %.3f (FN=%d)\n",
		before.Confusion.Recall(), before.Confusion.FN)
	fmt.Printf("Table 2 recall with legacy extension: %.3f (FN=%d)\n",
		after.Confusion.Recall(), after.Confusion.FN)
	fmt.Printf("precision unchanged: %.3f -> %.3f\n",
		before.Confusion.Precision(), after.Confusion.Precision())
	return nil
}

// geoExp measures geolocation-database disagreement (§8 extension).
func geoExp(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	rep := ds.AnalyzeGeo(res)
	if rep == nil {
		fmt.Println("dataset carries no geolocation panel")
		return nil
	}
	fmt.Printf("geolocation providers: %d\n", len(ds.Geo.DBs))
	fmt.Printf("leased prefixes with inconsistent geolocation:     %d/%d = %.1f%%\n",
		rep.LeasedDisagree, rep.LeasedTotal, 100*rep.LeasedShare())
	fmt.Printf("non-leased prefixes with inconsistent geolocation: %d/%d = %.1f%%\n",
		rep.NonLeasedDisagree, rep.NonLeasedTotal, 100*rep.NonLeasedShare())
	fmt.Printf("worst leased prefix geolocates to %d different countries (paper anecdote: 4 continents across 5 DBs)\n",
		rep.MaxDistinct)
	fmt.Println("leased prefixes by number of distinct reported countries:")
	for n := 1; n <= rep.MaxDistinct; n++ {
		if c := rep.DistinctHistogram[n]; c > 0 {
			fmt.Printf("  %d countries: %d prefixes\n", n, c)
		}
	}
	return nil
}

// marketExp runs the §8 longitudinal market-dynamics extension: monthly
// lease populations, churn, and lease durations.
func marketExp(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	snaps, err := ds.LoadMarket()
	if err != nil {
		return err
	}
	rep := ds.AnalyzeMarket(snaps, ipleasing.Options{})
	fmt.Printf("%-10s %8s %6s %6s %10s\n", "month", "leased", "new", "ended", "re-leased")
	for _, m := range rep.Months {
		fmt.Printf("%-10s %8d %6d %6d %10d\n",
			m.Time.Format("2006-01"), m.Leased, m.New, m.Ended, m.Releases)
	}
	fmt.Printf("\nmean lease run: %.1f months (right-censored at the %d-month window)\n",
		rep.MeanLeaseMonths(), len(rep.Months))
	fmt.Printf("monthly churn rate: %.1f%% of the leased population\n", 100*rep.ChurnRate())
	fmt.Println("lease-run duration histogram (months: count):")
	for d := 1; d <= len(rep.Months); d++ {
		if c := rep.DurationHistogram[d]; c > 0 {
			fmt.Printf("  %d: %d\n", d, c)
		}
	}
	return nil
}

// relinferExp probes the §7 dependence on BGP-derived relationship data:
// infer the AS relationships from the dataset's own RIB paths (Gao
// heuristic) and re-run the methodology with the inferred graph.
func relinferExp(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	g, agreement, err := ds.InferRelationships()
	if err != nil {
		return err
	}
	fmt.Printf("relationships: %d edges in the dataset file, %d inferred from RIB paths\n",
		ds.Rel.NumEdges(), g.NumEdges())
	fmt.Printf("relatedness agreement over the edge union: %.1f%%\n", 100*agreement)
	alt := ds.InferWithRelationships(g, ipleasing.Options{})
	fmt.Printf("leased prefixes: %d with the relationship file, %d with the inferred graph (%+d)\n",
		res.TotalLeased(), alt.TotalLeased(), alt.TotalLeased()-res.TotalLeased())
	return nil
}

// ablations quantifies the design choices DESIGN.md calls out.
func ablations(ds *ipleasing.Dataset, res *ipleasing.Result) error {
	full := res
	fmt.Printf("%-34s leased=%d unused=%d\n", "full methodology:",
		full.TotalLeased(), countCat(full, ipleasing.Unused))

	exact := ds.Infer(ipleasing.Options{RootLookupExactOnly: true})
	fmt.Printf("%-34s leased=%d unused=%d  (aggregated roots degrade to unused)\n",
		"exact-only root lookup:", exact.TotalLeased(), countCat(exact, ipleasing.Unused))

	nosib := ds.Infer(ipleasing.Options{DisableSiblingExpansion: true})
	fmt.Printf("%-34s leased=%d  (+%d subsidiary false leases)\n",
		"no as2org sibling expansion:", nosib.TotalLeased(), nosib.TotalLeased()-full.TotalLeased())

	wide := ds.Infer(ipleasing.Options{MaxPrefixLen: 32})
	hyper := 0
	for _, inf := range wide.All() {
		if inf.Prefix.Len > 24 {
			hyper++
		}
	}
	fmt.Printf("%-34s classified=%d (%d hyper-specific leaves displace their parents) vs %d\n",
		"maxlen 32 (keep hyper-specifics):", len(wide.All()), hyper, len(full.All()))

	vis := ds.Infer(ipleasing.Options{MinVisibility: 2})
	fmt.Printf("%-34s leased=%d unused=%d  (single-peer routes discounted, §7 vantage-point bias)\n",
		"min visibility 2:", vis.TotalLeased(), countCat(vis, ipleasing.Unused))
	return nil
}

func countCat(res *ipleasing.Result, cat ipleasing.Category) int {
	n := 0
	for _, rr := range res.Regions {
		n += rr.Counts[cat]
	}
	return n
}
