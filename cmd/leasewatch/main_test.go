package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/telemetry"
	"ipleasing/internal/whois"
)

func writeCSV(t *testing.T, path string, infs []core.Inference) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := core.WriteCSV(f, infs); err != nil {
		t.Fatal(err)
	}
}

func inf(prefix string, cat core.Category, origin uint32) core.Inference {
	i := core.Inference{
		Registry: whois.RIPE,
		Prefix:   netutil.MustParsePrefix(prefix),
		Category: cat,
	}
	if origin != 0 {
		i.LeafOrigins = []uint32{origin}
	}
	return i
}

// TestTracedDiff: a traced run records one span per file load plus the
// diff itself, with record counts matching the parsed rows.
func TestTracedDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.csv")
	newPath := filepath.Join(dir, "new.csv")
	writeCSV(t, oldPath, []core.Inference{inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100)})
	writeCSV(t, newPath, []core.Inference{
		inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100),
		inf("10.0.1.0/24", core.LeasedNoRootOrigin, 200),
	})

	tr := telemetry.NewTrace("leasewatch")
	var buf bytes.Buffer
	if err := run(tr.Context(context.Background()), oldPath, newPath, diag.Lenient(), &buf); err != nil {
		t.Fatal(err)
	}
	tr.End()

	spans := map[string]*telemetry.SpanNode{}
	for _, c := range tr.Tree().Children {
		spans[c.Name] = c
	}
	for _, want := range []string{"load.old", "load.new", "diff"} {
		if spans[want] == nil {
			t.Fatalf("trace missing span %q", want)
		}
	}
	if got := spans["load.old"].Records; got != 1 {
		t.Errorf("load.old records = %d, want 1", got)
	}
	if got := spans["load.new"].Records; got != 2 {
		t.Errorf("load.new records = %d, want 2", got)
	}
	if spans["load.new"].Bytes == 0 {
		t.Error("load.new bytes not recorded")
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.csv")
	newPath := filepath.Join(dir, "new.csv")
	writeCSV(t, oldPath, []core.Inference{
		inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100), // stable
		inf("10.0.1.0/24", core.LeasedNoRootOrigin, 200), // will end
		inf("10.0.2.0/24", core.LeasedNoRootOrigin, 300), // will re-lease
		inf("10.0.3.0/24", core.Unused, 0),               // never leased
	})
	writeCSV(t, newPath, []core.Inference{
		inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100),
		inf("10.0.1.0/24", core.Unused, 0),
		inf("10.0.2.0/24", core.LeasedWithRootOrigin, 301),
		inf("10.0.4.0/24", core.LeasedNoRootOrigin, 400), // new
	})

	var buf bytes.Buffer
	if err := run(context.Background(), oldPath, newPath, diag.Lenient(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"leases: 3 -> 3",
		"stable:    1",
		"started:   1",
		"ended:     1",
		"re-leased: 1",
		"10.0.4.0/24",
		"10.0.1.0/24",
		"AS301",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.csv")
	writeCSV(t, good, nil)
	for _, opts := range []diag.LoadOptions{diag.Lenient(), diag.Strict()} {
		var buf bytes.Buffer
		// Missing files fail in both policies: there is nothing to diff.
		if err := run(context.Background(), filepath.Join(dir, "missing.csv"), good, opts, &buf); err == nil {
			t.Fatal("missing old accepted")
		}
		if err := run(context.Background(), good, filepath.Join(dir, "missing.csv"), opts, &buf); err == nil {
			t.Fatal("missing new accepted")
		}
		// A wrong header means a wrong file, not a noisy one: fail, do
		// not skip-and-diff garbage.
		bad := filepath.Join(dir, "bad.csv")
		if err := os.WriteFile(bad, []byte("not,a,valid,row\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(context.Background(), bad, good, opts, &buf); err == nil {
			t.Fatal("malformed header accepted")
		} else if !strings.Contains(err.Error(), "malformed header") {
			t.Fatalf("header error = %v", err)
		}
		// Empty file: not even a header.
		empty := filepath.Join(dir, "empty.csv")
		if err := os.WriteFile(empty, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(context.Background(), empty, good, opts, &buf); err == nil {
			t.Fatal("empty file accepted")
		}
	}
}

// corruptExport writes a valid two-lease export with a truncated row and
// a garbage row spliced into the middle.
func corruptExport(t *testing.T, path string) {
	t.Helper()
	writeCSV(t, path, []core.Inference{
		inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100),
		inf("10.0.2.0/24", core.LeasedWithRootOrigin, 300),
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Header, row, short row, garbage, row.
	mangled := lines[0] + lines[1] + "RIPE,10.0.1.0/24,leased-3\n" + "total garbage here\n" + lines[2]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLenientSkipsMalformedRows: truncated and garbage rows inside an
// export are skipped with per-file accounting instead of aborting the
// diff; strict mode keeps the historical fail-fast behavior.
func TestLenientSkipsMalformedRows(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.csv")
	newPath := filepath.Join(dir, "new.csv")
	corruptExport(t, oldPath)
	writeCSV(t, newPath, []core.Inference{
		inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100),
	})

	var buf bytes.Buffer
	if err := run(context.Background(), oldPath, newPath, diag.Lenient(), &buf); err != nil {
		t.Fatalf("lenient diff over corrupt export: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"skipped 2 malformed row(s)",
		"leases: 2 -> 1",
		"ended:     1",
		"10.0.2.0/24",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Strict mode aborts on the first malformed row, locating it.
	var sbuf bytes.Buffer
	err := run(context.Background(), oldPath, newPath, diag.Strict(), &sbuf)
	if err == nil {
		t.Fatal("strict diff accepted corrupt export")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("strict error does not locate the row: %v", err)
	}
}

// TestLenientBreakerStillAborts: a file that is mostly garbage trips the
// diag circuit breaker even in lenient mode.
func TestLenientBreakerStillAborts(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.csv")
	writeCSV(t, good, []core.Inference{inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100)})
	junk := filepath.Join(dir, "junk.csv")
	var b strings.Builder
	b.WriteString(core.CSVHeader + "\n")
	for i := 0; i < 64; i++ {
		b.WriteString("garbage,row,number\n")
	}
	if err := os.WriteFile(junk, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run(context.Background(), junk, good, diag.Lenient(), &buf)
	if err == nil {
		t.Fatal("mostly-garbage export accepted")
	}
	if !strings.Contains(err.Error(), "malformed") {
		t.Errorf("breaker error = %v", err)
	}
}
