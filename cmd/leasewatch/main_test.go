package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipleasing/internal/core"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

func writeCSV(t *testing.T, path string, infs []core.Inference) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := core.WriteCSV(f, infs); err != nil {
		t.Fatal(err)
	}
}

func inf(prefix string, cat core.Category, origin uint32) core.Inference {
	i := core.Inference{
		Registry: whois.RIPE,
		Prefix:   netutil.MustParsePrefix(prefix),
		Category: cat,
	}
	if origin != 0 {
		i.LeafOrigins = []uint32{origin}
	}
	return i
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.csv")
	newPath := filepath.Join(dir, "new.csv")
	writeCSV(t, oldPath, []core.Inference{
		inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100), // stable
		inf("10.0.1.0/24", core.LeasedNoRootOrigin, 200), // will end
		inf("10.0.2.0/24", core.LeasedNoRootOrigin, 300), // will re-lease
		inf("10.0.3.0/24", core.Unused, 0),               // never leased
	})
	writeCSV(t, newPath, []core.Inference{
		inf("10.0.0.0/24", core.LeasedNoRootOrigin, 100),
		inf("10.0.1.0/24", core.Unused, 0),
		inf("10.0.2.0/24", core.LeasedWithRootOrigin, 301),
		inf("10.0.4.0/24", core.LeasedNoRootOrigin, 400), // new
	})

	var buf bytes.Buffer
	if err := run(oldPath, newPath, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"leases: 3 -> 3",
		"stable:    1",
		"started:   1",
		"ended:     1",
		"re-leased: 1",
		"10.0.4.0/24",
		"10.0.1.0/24",
		"AS301",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.csv")
	writeCSV(t, good, nil)
	var buf bytes.Buffer
	if err := run(filepath.Join(dir, "missing.csv"), good, &buf); err == nil {
		t.Fatal("missing old accepted")
	}
	if err := run(good, filepath.Join(dir, "missing.csv"), &buf); err == nil {
		t.Fatal("missing new accepted")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,valid,row\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, good, &buf); err == nil {
		t.Fatal("malformed CSV accepted")
	}
}
