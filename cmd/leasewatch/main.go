// Command leasewatch diffs two inference CSV exports (from leaseinfer)
// and reports leasing-market movement between them: new leases, ended
// leases, and re-leases where a prefix moved straight to a different
// originator. Pair it with monthly datasets for a §8-style longitudinal
// watch.
//
// Usage:
//
//	leasewatch old.csv new.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipleasing/internal/core"
	"ipleasing/internal/netutil"
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: leasewatch old.csv new.csv")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leasewatch:", err)
		os.Exit(1)
	}
}

// leaseView maps leased prefixes to their primary originator.
func leaseView(path string) (map[netutil.Prefix]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	infs, err := core.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[netutil.Prefix]uint32)
	for _, inf := range infs {
		if inf.Category.Leased() {
			out[inf.Prefix] = inf.Originator()
		}
	}
	return out, nil
}

func run(oldPath, newPath string, w io.Writer) error {
	oldLeases, err := leaseView(oldPath)
	if err != nil {
		return err
	}
	newLeases, err := leaseView(newPath)
	if err != nil {
		return err
	}

	var started, ended, releases, stable []netutil.Prefix
	for p, origin := range newLeases {
		prev, was := oldLeases[p]
		switch {
		case !was:
			started = append(started, p)
		case prev != origin:
			releases = append(releases, p)
		default:
			stable = append(stable, p)
		}
	}
	for p := range oldLeases {
		if _, still := newLeases[p]; !still {
			ended = append(ended, p)
		}
	}
	for _, s := range [][]netutil.Prefix{started, ended, releases, stable} {
		netutil.SortPrefixes(s)
	}

	fmt.Fprintf(w, "leases: %d -> %d\n", len(oldLeases), len(newLeases))
	fmt.Fprintf(w, "  stable:    %d\n", len(stable))
	fmt.Fprintf(w, "  started:   %d\n", len(started))
	fmt.Fprintf(w, "  ended:     %d\n", len(ended))
	fmt.Fprintf(w, "  re-leased: %d (originator changed)\n", len(releases))

	show := func(title string, ps []netutil.Prefix, origins map[netutil.Prefix]uint32) {
		if len(ps) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n", title)
		for i, p := range ps {
			if i == 20 {
				fmt.Fprintf(w, "  ... and %d more\n", len(ps)-20)
				break
			}
			fmt.Fprintf(w, "  %-18s AS%d\n", p, origins[p])
		}
	}
	show("new leases", started, newLeases)
	show("ended leases", ended, oldLeases)
	show("re-leased", releases, newLeases)
	return nil
}
