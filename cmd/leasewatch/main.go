// Command leasewatch diffs two inference CSV exports (from leaseinfer)
// and reports leasing-market movement between them: new leases, ended
// leases, and re-leases where a prefix moved straight to a different
// originator. Pair it with monthly datasets for a §8-style longitudinal
// watch.
//
// Ingestion is lenient by default: truncated or garbage rows inside an
// export are skipped and accounted (printed per file) instead of
// aborting the diff halfway, matching the library's skip-and-account
// policy for messy feed mirrors. A file that is missing, has a wrong
// header, or is mostly garbage (the diag circuit breaker) still fails
// loudly — diffing the wrong file would be worse than no diff.
//
// Usage:
//
//	leasewatch [-strict] [-trace trace.json] old.csv new.csv
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/telemetry"
)

func main() {
	strict := flag.Bool("strict", false, "abort on the first malformed row instead of skipping")
	tracePath := flag.String("trace", "", "write the run's span tree as JSON to this path")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: leasewatch [-strict] [-trace trace.json] old.csv new.csv")
		os.Exit(2)
	}
	opts := diag.Lenient()
	if *strict {
		opts = diag.Strict()
	}
	ctx := context.Background()
	var tr *telemetry.Trace
	if *tracePath != "" {
		tr = telemetry.NewTrace("leasewatch")
		ctx = tr.Context(ctx)
	}
	err := run(ctx, flag.Arg(0), flag.Arg(1), opts, os.Stdout)
	if tr != nil {
		tr.End()
		if werr := writeTrace(*tracePath, tr); err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leasewatch:", err)
		os.Exit(1)
	}
}

// writeTrace dumps the span tree as indented JSON.
func writeTrace(path string, tr *telemetry.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// finishViewSpan stamps a load span with the view's parse accounting.
func finishViewSpan(sp *telemetry.Span, rep *diag.LoadReport) {
	if rep != nil {
		sp.AddRecords(int64(rep.Parsed))
		sp.AddBytes(rep.Bytes)
	}
	sp.End()
}

// leaseView maps leased prefixes to their primary originator, returning
// the file's load accounting alongside.
func leaseView(path string, opts diag.LoadOptions) (map[netutil.Prefix]uint32, *diag.LoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	// The header is the diff's type check: a file that does not open with
	// the export header is not a leaseinfer export, and skipping our way
	// through it row by row would silently diff garbage.
	header, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if strings.TrimSpace(strings.TrimPrefix(header, "\uFEFF")) != core.CSVHeader {
		return nil, nil, fmt.Errorf("%s: malformed header %q (not a leaseinfer export)",
			path, strings.TrimSpace(header))
	}
	c := diag.NewCollector(path, opts)
	c.SetFile(path)
	// Replay a canonical header line (ReadCSVWith skips it) so the
	// parser's line numbers match the file's, header included.
	infs, err := core.ReadCSVWith(diag.CountReader(io.MultiReader(strings.NewReader(core.CSVHeader+"\n"), br), c), c)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[netutil.Prefix]uint32)
	for _, inf := range infs {
		if inf.Category.Leased() {
			out[inf.Prefix] = inf.Originator()
		}
	}
	return out, c.Report(), nil
}

func run(ctx context.Context, oldPath, newPath string, opts diag.LoadOptions, w io.Writer) error {
	_, oldSpan := telemetry.StartSpan(ctx, "load.old")
	oldLeases, oldRep, err := leaseView(oldPath, opts)
	finishViewSpan(oldSpan, oldRep)
	if err != nil {
		return err
	}
	_, newSpan := telemetry.StartSpan(ctx, "load.new")
	newLeases, newRep, err := leaseView(newPath, opts)
	finishViewSpan(newSpan, newRep)
	if err != nil {
		return err
	}

	_, diffSpan := telemetry.StartSpan(ctx, "diff")
	defer diffSpan.End()
	var started, ended, releases, stable []netutil.Prefix
	for p, origin := range newLeases {
		prev, was := oldLeases[p]
		switch {
		case !was:
			started = append(started, p)
		case prev != origin:
			releases = append(releases, p)
		default:
			stable = append(stable, p)
		}
	}
	for p := range oldLeases {
		if _, still := newLeases[p]; !still {
			ended = append(ended, p)
		}
	}
	for _, s := range [][]netutil.Prefix{started, ended, releases, stable} {
		netutil.SortPrefixes(s)
	}

	for _, rep := range []*diag.LoadReport{oldRep, newRep} {
		if rep.Skipped > 0 {
			fmt.Fprintf(w, "warning: %s: skipped %d malformed row(s) of %d\n",
				rep.Source, rep.Skipped, rep.Parsed+rep.Skipped)
		}
	}
	fmt.Fprintf(w, "leases: %d -> %d\n", len(oldLeases), len(newLeases))
	fmt.Fprintf(w, "  stable:    %d\n", len(stable))
	fmt.Fprintf(w, "  started:   %d\n", len(started))
	fmt.Fprintf(w, "  ended:     %d\n", len(ended))
	fmt.Fprintf(w, "  re-leased: %d (originator changed)\n", len(releases))

	show := func(title string, ps []netutil.Prefix, origins map[netutil.Prefix]uint32) {
		if len(ps) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n", title)
		for i, p := range ps {
			if i == 20 {
				fmt.Fprintf(w, "  ... and %d more\n", len(ps)-20)
				break
			}
			fmt.Fprintf(w, "  %-18s AS%d\n", p, origins[p])
		}
	}
	show("new leases", started, newLeases)
	show("ended leases", ended, oldLeases)
	show("re-leased", releases, newLeases)
	return nil
}
