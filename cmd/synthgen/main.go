// Command synthgen generates a synthetic dataset directory: WHOIS dumps
// for all five RIRs, MRT RIB files, CAIDA-style relationship datasets,
// RPKI archives, abuse lists, broker registries, ground truth, and the
// Figure-3 timeline — everything the inference pipeline consumes, in the
// native on-disk formats.
//
// Usage:
//
//	synthgen -out dataset [-scale 0.02] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"ipleasing"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	scale := flag.Float64("scale", 0.02, "fraction of paper-scale counts")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	w := ipleasing.Generate(ipleasing.Config{Seed: *seed, Scale: *scale})
	if err := w.WriteDir(*out); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	leased := 0
	for _, tr := range w.Truth {
		if tr.ActuallyLeased {
			leased++
		}
	}
	fmt.Printf("wrote %s: %d registered leaves (%d actually leased), %d routed prefixes, %d truth records\n",
		*out, len(w.Truth), leased, len(w.Routes), len(w.Truth))
}
