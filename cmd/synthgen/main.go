// Command synthgen generates a synthetic dataset directory: WHOIS dumps
// for all five RIRs, MRT RIB files, CAIDA-style relationship datasets,
// RPKI archives, abuse lists, broker registries, ground truth, and the
// Figure-3 timeline — everything the inference pipeline consumes, in the
// native on-disk formats.
//
// With -mutate, synthgen additionally emits a churned successor epoch
// of the same world: after writing the base dataset to -out, it
// perturbs a -churn fraction of each mutable entity class (allocations
// added/removed/transferred, RIB origin flips, ROA rotations,
// organisation churn) and writes the result to -mutate-out (default
// "<out>.next"). One run yields two dataset directories exactly one
// reload apart — the input shape the incremental delta path consumes.
// Both epochs must come from one run: generation consumes randomness in
// map order, so two -seed invocations do not produce identical worlds.
//
// Usage:
//
//	synthgen -out dataset [-scale 0.02] [-seed 1]
//	synthgen -out dataset -mutate [-mutate-out dataset.next] [-churn 0.01] [-mutate-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"ipleasing"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	scale := flag.Float64("scale", 0.02, "fraction of paper-scale counts")
	seed := flag.Int64("seed", 1, "generator seed")
	mutate := flag.Bool("mutate", false, "also emit a churned successor epoch of the generated world to -mutate-out")
	mutateOut := flag.String("mutate-out", "", "successor epoch directory (default \"<out>.next\"; with -mutate)")
	mutateSeed := flag.Int64("mutate-seed", 1, "mutation stream seed (with -mutate)")
	churn := flag.Float64("churn", 0.01, "fraction of each mutable entity class touched (with -mutate): leaf/root allocations, routes, ROAs, organisations; AS-to-org reassignments run at a tenth of this rate")
	flag.Parse()

	w := ipleasing.Generate(ipleasing.Config{Seed: *seed, Scale: *scale})
	if err := w.WriteDir(*out); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	leased := 0
	for _, tr := range w.Truth {
		if tr.ActuallyLeased {
			leased++
		}
	}
	fmt.Printf("wrote %s: %d registered leaves (%d actually leased), %d routed prefixes, %d truth records\n",
		*out, len(w.Truth), leased, len(w.Routes), len(w.Truth))
	if !*mutate {
		return
	}
	nextDir := *mutateOut
	if nextDir == "" {
		nextDir = *out + ".next"
	}
	st := ipleasing.Mutate(w, ipleasing.MutateConfig{Seed: *mutateSeed, Churn: *churn})
	if err := w.WriteDir(nextDir); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: successor epoch at churn %g (%d mutations: %d leaves removed, %d split, %d moved, %d roots transferred, %d orgs renamed, %d origin flips, %d ROA rotations, %d ASNs reassigned)\n",
		nextDir, *churn, st.Total(), st.LeavesRemoved, st.LeavesSplit, st.LeavesMoved,
		st.RootsTransferred, st.OrgsRenamed, st.OriginFlips, st.ROARotations, st.ASNsReassigned)
}
