package main

import (
	"os"
	"path/filepath"
	"testing"

	"ipleasing"
)

// TestGeneratedDatasetLoads exercises the synthgen pipeline end to end:
// generate, write, reload, and sanity-check the contents.
func TestGeneratedDatasetLoads(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	w := ipleasing.Generate(ipleasing.Config{Seed: 9, Scale: 0.005})
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := ipleasing.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Table.NumPrefixes() == 0 || len(ds.Truth) == 0 || ds.Brokers.Len() == 0 {
		t.Fatal("dataset incomplete")
	}
	// Directory sizes stay reasonable at test scale.
	var total int64
	err = filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || total > 64<<20 {
		t.Fatalf("dataset size = %d bytes", total)
	}
}
