// Command leaseeval curates the broker/ISP reference dataset (paper §5.3)
// from a dataset directory, scores the inference against it, and prints
// the confusion matrix of the paper's Table 2 with the §6.2 error
// breakdown. With -legacy, the §8 legacy-space extension's verdicts
// augment the scoring.
//
// Usage:
//
//	leaseeval -data dataset [-legacy]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipleasing"
)

func main() {
	data := flag.String("data", "dataset", "dataset directory")
	withLegacy := flag.Bool("legacy", false, "augment with the legacy-space extension")
	flag.Parse()

	if err := run(*data, *withLegacy, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leaseeval:", err)
		os.Exit(1)
	}
}

func run(data string, withLegacy bool, w io.Writer) error {
	ds, err := ipleasing.LoadDataset(data)
	if err != nil {
		return err
	}
	res := ds.Infer(ipleasing.Options{})
	ref := ds.Curate()

	var ev *ipleasing.Evaluation
	if withLegacy {
		var extra []ipleasing.Prefix
		for _, inf := range ds.InferLegacy(ipleasing.Options{}) {
			if inf.Verdict == ipleasing.LegacyLeased {
				extra = append(extra, inf.Prefix)
			}
		}
		ev = ipleasing.EvaluateAugmented(ref, res, extra)
		fmt.Fprintf(w, "legacy extension enabled: %d legacy leases added\n\n", len(extra))
	} else {
		ev = ipleasing.Evaluate(ref, res)
	}

	fmt.Fprintf(w, "curation: %d brokers matched exactly, %d fuzzily, %d absent; %d maintainer handles\n",
		ref.BrokersExact, ref.BrokersFuzzy, ref.BrokersUnmatched, ref.MaintainerHandles)
	fmt.Fprintf(w, "broker-managed prefixes: %d (excluded %d as non-leased) -> %d positives; %d ISP negatives\n",
		ref.BrokerPrefixes, ref.Excluded, len(ref.Positives), len(ref.Negatives))
	fmt.Fprintln(w)
	fmt.Fprint(w, ev.Confusion.String())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "false negatives by inferred category:")
	for cat, n := range ev.FalseNegativesByCategory() {
		fmt.Fprintf(w, "  %-22s %d\n", cat, n)
	}
	return nil
}
