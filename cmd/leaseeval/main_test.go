package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ipleasing"
)

func dataset(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds")
	if err := ipleasing.Generate(ipleasing.Config{Seed: 2, Scale: 0.01}).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunPrintsMatrix(t *testing.T) {
	dir := dataset(t)
	var buf bytes.Buffer
	if err := run(dir, false, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(TP)", "(FN)", "(FP)", "(TN)", "Precision", "brokers matched"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithLegacyImprovesFN(t *testing.T) {
	dir := dataset(t)
	var plain, legacy bytes.Buffer
	if err := run(dir, false, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, true, &legacy); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(legacy.String(), "legacy extension enabled") {
		t.Fatal("legacy banner missing")
	}
	fn := func(s string) string {
		i := strings.Index(s, "(FN)")
		if i < 0 {
			return ""
		}
		return s[i-10 : i]
	}
	if fn(plain.String()) == "" || fn(legacy.String()) == "" {
		t.Fatal("FN cells missing")
	}
}

func TestRunMissingDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := run(filepath.Join(t.TempDir(), "nope"), false, &buf); err == nil {
		t.Fatal("missing dataset accepted")
	}
}
