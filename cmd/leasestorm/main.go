// Command leasestorm is the fleet chaos harness: it boots a real
// publisher + N replica leased fleet in-process (the same daemon wiring
// as cmd/leased), routes the replicas' snapshot polling through a
// seeded fault-injection proxy (internal/chaos), drives a mixed
// /lookup + /lookup/batch + /table1 workload against the replicas for
// the whole run (internal/loadgen), and checks four invariants from the
// fleet's own public endpoints (/statusz, /metrics, /snapshot/current):
//
//  1. identity       — replicas at the same snapshot generation serve
//     byte-identical lookup and table responses
//  2. error_budget   — client-visible errors outside fault windows stay
//     within the declared budget
//  3. lag            — externally computed generation lag (publisher
//     generation minus replica serving generation)
//     stays bounded while the replication path is
//     healthy
//  4. reconvergence  — after the last fault heals, every replica is
//     back within the lag bound inside the SLO
//
// The same -seed always produces the same fault schedule (and its
// fingerprint in the report), so a failing storm is replayable. The
// -sabotage flag boots a deliberately broken fleet — the run MUST then
// fail, proving the checker detects violations rather than rubber-
// stamping whatever the fleet does.
//
// Output is a machine-readable JSON run report on stdout (or -o). Exit
// status: 0 pass, 1 invariant violations, 2 harness failure.
//
// Usage:
//
//	leasestorm [-data dataset] [-replicas 2] [-seed 1] [-duration 8s]
//	           [-qps 100] [-concurrency 4] [-reload 500ms] [-poll 250ms]
//	           [-error-budget 0.01] [-max-lag 0] [-heal-slo 0]
//	           [-sabotage stale-replica] [-workdir dir] [-o report.json]
//	           [-fleet-logs]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	var (
		cfg       StormConfig
		out       = flag.String("o", "", "write the JSON run report here instead of stdout")
		fleetLogs = flag.Bool("fleet-logs", false, "pass fleet daemon logs through to stderr")
	)
	flag.StringVar(&cfg.Data, "data", "", "dataset directory (empty: generate a synthetic one)")
	flag.StringVar(&cfg.WorkDir, "workdir", "", "scratch directory (empty: temp dir, removed afterwards)")
	flag.IntVar(&cfg.Replicas, "replicas", 2, "replica count")
	flag.Int64Var(&cfg.Seed, "seed", 1, "chaos schedule + workload seed")
	flag.DurationVar(&cfg.Duration, "duration", 8*time.Second, "storm length")
	flag.Float64Var(&cfg.QPS, "qps", 100, "aggregate workload rate")
	flag.IntVar(&cfg.Concurrency, "concurrency", 4, "workload workers")
	flag.DurationVar(&cfg.Reload, "reload", 500*time.Millisecond, "publisher reload period (generation advance rate)")
	flag.DurationVar(&cfg.Poll, "poll", 250*time.Millisecond, "replica poll period")
	flag.Float64Var(&cfg.ErrorBudget, "error-budget", 0.01, "client error rate allowed outside fault windows")
	var maxLag uint64
	flag.Uint64Var(&maxLag, "max-lag", 0, "generation-lag bound while healthy (0: derived from poll/reload)")
	flag.DurationVar(&cfg.HealSLO, "heal-slo", 0, "post-heal reconvergence deadline (0: duration/4)")
	flag.StringVar(&cfg.Sabotage, "sabotage", "", "boot a deliberately broken fleet; the run must FAIL (modes: stale-replica)")
	flag.Parse()
	cfg.MaxLag = maxLag
	if *fleetLogs {
		cfg.LogW = os.Stderr
	}

	if cfg.Sabotage != "" && cfg.Sabotage != SabotageStaleReplica {
		fmt.Fprintf(os.Stderr, "leasestorm: unknown sabotage mode %q\n", cfg.Sabotage)
		os.Exit(2)
	}

	rep, err := RunStorm(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leasestorm:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leasestorm:", err)
			os.Exit(2)
		}
		defer fh.Close()
		w = fh
	}
	if err := rep.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "leasestorm:", err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr,
		"leasestorm: seed=%d schedule=%s faults=%d requests=%d errors=%d samples=%d identity_checks=%d violations=%d pass=%v\n",
		rep.Seed, rep.ScheduleFingerprint, len(rep.Schedule.Faults),
		rep.Load.Requests, rep.Load.Errors, rep.Samples, rep.IdentityChecks,
		len(rep.Violations), rep.Pass)
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "leasestorm: VIOLATION [%s] at=%v replica=%s: %s\n",
			v.Invariant, v.At, v.Replica, v.Detail)
	}
	if !rep.Pass {
		os.Exit(1)
	}
}
