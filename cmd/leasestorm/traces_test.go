package main

import (
	"testing"
	"time"

	"ipleasing/internal/chaos"
	"ipleasing/internal/telemetry"
)

// TestAssembleClassification exercises the joiner's classification and
// fault attribution on hand-built records, without booting a fleet.
func TestAssembleClassification(t *testing.T) {
	start := time.Unix(1700000000, 0)
	sched := chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.FaultLatency, Start: 1 * time.Second, End: 2 * time.Second},
	}}
	rec := func(member, kind string, status int, at time.Duration, durMS float64) MemberRecord {
		return MemberRecord{Member: member, TraceRecord: telemetry.TraceRecord{
			TraceID: "f0f0", Kind: kind, Status: status,
			Start: start.Add(at), DurationMS: durMS,
		}}
	}

	// Publisher reload + replica reload sharing the ID: lifecycle, and
	// the replica's fetch window overlaps the latency fault.
	lt := assemble("f0f0", []MemberRecord{
		rec("replica0", telemetry.KindReload, 200, 1500*time.Millisecond, 40),
		rec("publisher", telemetry.KindReload, 200, 500*time.Millisecond, 30),
	}, start, sched)
	if lt.Class != ClassLifecycle {
		t.Errorf("class = %s, want %s", lt.Class, ClassLifecycle)
	}
	if len(lt.Members) != 2 || lt.Members[0] != "publisher" || lt.Members[1] != "replica0" {
		t.Errorf("members = %v", lt.Members)
	}
	// Records must come back start-ordered regardless of scrape order.
	if lt.Records[0].Member != "publisher" {
		t.Errorf("records not start-ordered: %s first", lt.Records[0].Member)
	}
	if len(lt.Faults) != 1 {
		t.Errorf("faults = %v, want the latency window attributed", lt.Faults)
	}

	// A 400 on one member: error class, no fault overlap.
	et := assemble("f0f0", []MemberRecord{
		rec("replica1", telemetry.KindError, 400, 3*time.Second, 1),
	}, start, sched)
	if et.Class != ClassError || len(et.Faults) != 0 {
		t.Errorf("error trace = %s faults %v", et.Class, et.Faults)
	}

	// A replica-only reload (publisher evicted its half): not lifecycle.
	rt := assemble("f0f0", []MemberRecord{
		rec("replica0", telemetry.KindReload, 200, 3*time.Second, 5),
	}, start, sched)
	if rt.Class != ClassRequest {
		t.Errorf("replica-only reload class = %s, want %s", rt.Class, ClassRequest)
	}
}
