package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ipleasing/internal/chaos"
	"ipleasing/internal/loadgen"
	"ipleasing/internal/serve"
)

// Invariant names, stable strings for the run report.
const (
	InvIdentity      = "identity"       // same-generation replicas answer byte-identically
	InvErrorBudget   = "error_budget"   // client errors outside fault windows stay in budget
	InvLag           = "lag"            // generation lag bounded while the path is healthy
	InvReconvergence = "reconvergence"  // every replica reconverges within the SLO post-heal
	InvScrape        = "scrape_failure" // telemetry itself must stay scrapeable when healthy
)

// Violation is one invariant breach, timestamped relative to the storm
// start.
type Violation struct {
	Invariant string        `json:"invariant"`
	At        time.Duration `json:"at,omitempty"`
	Replica   string        `json:"replica,omitempty"`
	Detail    string        `json:"detail"`
}

// lagSample is one externally scraped fleet observation. The checker
// derives every verdict from these — never from harness-internal state
// — because the whole point is proving the *service's own telemetry*
// tells the truth. Lag in particular is recomputed here as
// publisherGen − replicaServingGen: a sabotaged replica that stopped
// polling self-reports lag 0 (it has no idea the publisher moved on),
// and only the external difference exposes it.
type lagSample struct {
	at      time.Duration
	pubGen  uint64
	repGens []uint64 // 0 = scrape failed
}

// checker samples the fleet's public endpoints for the storm's
// duration and turns the observations into invariant verdicts.
type checker struct {
	cfg    StormConfig
	sched  chaos.Schedule
	fleet  *fleet
	start  time.Time
	client *http.Client

	// probe queries for the identity invariant, rotated round-robin.
	probes []string

	mu         sync.Mutex
	samples    []lagSample
	violations []Violation
	identities int // identity comparisons performed (report visibility)
	// loadModes is the last snapshot load mode ("mmap"/"heap"/"built")
	// each replica self-reported on /statusz. The run report publishes
	// it, and identity violations across replicas running in different
	// modes are annotated — a body mismatch between an mmap and a heap
	// replica of the same generation points at the zero-copy view
	// layer, not replication.
	loadModes map[string]string
}

func newChecker(cfg StormConfig, sched chaos.Schedule, f *fleet, start time.Time) *checker {
	return &checker{
		cfg:    cfg,
		sched:  sched,
		fleet:  f,
		start:  start,
		client: &http.Client{Timeout: 3 * time.Second},
		probes: []string{
			"/lookup?ip=10.0.0.77",
			"/lookup?ip=10.0.1.9",
			"/lookup?prefix=10.0.0.0/24",
			"/table1",
		},
		loadModes: make(map[string]string),
	}
}

// LoadModes returns the last load mode each replica reported, keyed by
// base URL.
func (c *checker) LoadModes() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.loadModes))
	for k, v := range c.loadModes {
		out[k] = v
	}
	return out
}

func (c *checker) loadModeOf(url string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadModes[url]
}

func (c *checker) violate(v Violation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = append(c.violations, v)
}

// Violations returns a copy of everything recorded so far.
func (c *checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Run samples until ctx is done. The sampling cadence is fast enough to
// catch a lag bound breach within one publisher reload period.
func (c *checker) Run(ctx context.Context) {
	ticker := time.NewTicker(c.cfg.SampleEvery)
	defer ticker.Stop()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		c.sampleLag()
		c.sampleIdentity(c.probes[i%len(c.probes)])
	}
}

// statuszGen scrapes one replica's serving generation from /statusz
// (replication section). The lag invariant tolerates off-by-a-
// generation timing, so the counter — which moves just before the
// snapshot swap lands — is fine here; the identity invariant does NOT
// tolerate it and keys on the X-Snapshot-Generation response header
// instead, which is stamped from the same atomic snapshot-pointer read
// that answers the body.
func (c *checker) statuszGen(ctx context.Context, baseURL string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/statusz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Replication *struct {
			ServingGeneration uint64 `json:"serving_generation"`
		} `json:"replication"`
		Snapshot *struct {
			LoadMode string `json:"load_mode"`
		} `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	if body.Snapshot != nil && body.Snapshot.LoadMode != "" {
		c.mu.Lock()
		if c.loadModes == nil {
			c.loadModes = make(map[string]string)
		}
		c.loadModes[baseURL] = body.Snapshot.LoadMode
		c.mu.Unlock()
	}
	if body.Replication == nil {
		return 0, fmt.Errorf("no replication section")
	}
	return body.Replication.ServingGeneration, nil
}

// healthyForLag reports whether the lag bound applies at elapsed: no
// fault window covers it and enough settle time has passed since the
// preceding window ended for a full poll cycle to land.
func (c *checker) healthyForLag(elapsed time.Duration) bool {
	if !c.sched.HealthyAt(elapsed) {
		return false
	}
	settle := 2*c.cfg.Poll + 500*time.Millisecond
	for _, f := range c.sched.Faults {
		if f.End <= elapsed && elapsed-f.End < settle {
			return false
		}
	}
	return elapsed > settle // initial settle after arming, too
}

func (c *checker) sampleLag() {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	elapsed := time.Since(c.start)
	pubGen, err := headGeneration(ctx, c.fleet.publisherURL)
	if err != nil {
		// The publisher is never behind the proxy; losing it outside a
		// fault window is a harness-visible outage worth flagging.
		if c.healthyForLag(elapsed) {
			c.violate(Violation{Invariant: InvScrape, At: elapsed,
				Detail: fmt.Sprintf("publisher generation probe failed: %v", err)})
		}
		return
	}
	s := lagSample{at: elapsed, pubGen: pubGen, repGens: make([]uint64, len(c.fleet.replicaURLs))}
	healthy := c.healthyForLag(elapsed)
	for i, url := range c.fleet.replicaURLs {
		gen, err := c.statuszGen(ctx, url)
		if err != nil {
			if healthy {
				c.violate(Violation{Invariant: InvScrape, At: elapsed, Replica: url,
					Detail: fmt.Sprintf("statusz scrape failed: %v", err)})
			}
			continue
		}
		s.repGens[i] = gen
		// Invariant 3: externally computed lag stays bounded while the
		// replication path is healthy.
		if healthy && pubGen > gen && pubGen-gen > c.cfg.MaxLag {
			c.violate(Violation{Invariant: InvLag, At: elapsed, Replica: url,
				Detail: fmt.Sprintf("generation lag %d (publisher %d, serving %d) exceeds bound %d",
					pubGen-gen, pubGen, gen, c.cfg.MaxLag)})
		}
	}
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// sampleIdentity checks invariant 1 on one probe: replicas answering
// from the same snapshot generation must answer byte-identically. Each
// data response carries the generation of the snapshot that produced
// its body in X-Snapshot-Generation, stamped from the same atomic
// snapshot-pointer read — so a single round trip per replica yields a
// consistent (generation, body) pair, where the statusz sandwich this
// replaces took three round trips and still had to discard any replica
// whose snapshot swapped mid-probe.
func (c *checker) sampleIdentity(probe string) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	elapsed := time.Since(c.start)
	type obs struct {
		url  string
		hash string
	}
	byGen := map[string][]obs{}
	for _, url := range c.fleet.replicaURLs {
		body, status, hdr, err := c.get(ctx, url+probe)
		if err != nil || status != http.StatusOK {
			continue // the error-budget invariant owns failed requests
		}
		gen := hdr.Get(serve.GenerationHeader)
		if gen == "" {
			continue // pre-generation snapshot (no store configured)
		}
		sum := sha256.Sum256(body)
		byGen[gen] = append(byGen[gen], obs{url: url, hash: hex.EncodeToString(sum[:8])})
	}
	compared := false
	for gen, group := range byGen {
		if len(group) < 2 {
			continue
		}
		compared = true
		for _, o := range group[1:] {
			if o.hash != group[0].hash {
				detail := fmt.Sprintf("generation %s, probe %s: body %s != %s (from %s)",
					gen, probe, o.hash, group[0].hash, group[0].url)
				// A mismatch across load modes indicts the mmap view
				// layer rather than replication; name both modes.
				if ma, mb := c.loadModeOf(o.url), c.loadModeOf(group[0].url); ma != mb && ma != "" && mb != "" {
					detail += fmt.Sprintf(" [load modes differ: %s=%s, %s=%s]", o.url, ma, group[0].url, mb)
				}
				c.violate(Violation{Invariant: InvIdentity, At: elapsed, Replica: o.url,
					Detail: detail})
			}
		}
	}
	if compared {
		c.mu.Lock()
		c.identities++
		c.mu.Unlock()
	}
}

func (c *checker) get(ctx context.Context, url string) ([]byte, int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, resp.Header, err
}

// Finalize computes the post-hoc invariants — error budget (2) and
// post-heal reconvergence (4) — from the load report and the sample
// trail, and returns every violation of the run.
func (c *checker) Finalize(load *loadgen.Report) []Violation {
	c.checkErrorBudget(load)
	c.checkReconvergence()
	return c.Violations()
}

// checkErrorBudget forgives client errors timestamped inside a fault
// window (padded for clock skew) and holds the rest to the declared
// budget.
func (c *checker) checkErrorBudget(load *loadgen.Report) {
	if load == nil || load.Requests == 0 {
		return
	}
	const pad = 250 * time.Millisecond
	outside := int64(0)
	var first *loadgen.ErrorEvent
	for i, ev := range load.ErrorEvents {
		elapsed := ev.At.Sub(c.start)
		inWindow := false
		for _, f := range c.sched.Faults {
			if elapsed >= f.Start-pad && elapsed < f.End+pad {
				inWindow = true
				break
			}
		}
		if !inWindow {
			outside++
			if first == nil {
				first = &load.ErrorEvents[i]
			}
		}
	}
	// The retained event log is capped; extrapolate conservatively by
	// assuming every dropped event also fell outside a window.
	outside += load.ErrorEventsDropped
	rate := float64(outside) / float64(load.Requests)
	if rate > c.cfg.ErrorBudget {
		detail := fmt.Sprintf("error rate outside fault windows %.4f > budget %.4f (%d/%d requests)",
			rate, c.cfg.ErrorBudget, outside, load.Requests)
		if first != nil {
			detail += fmt.Sprintf("; first: op=%s status=%d err=%q", first.Op, first.Status, first.Err)
		}
		c.violate(Violation{Invariant: InvErrorBudget, Detail: detail})
	}
}

// checkReconvergence requires every replica to get back within the lag
// bound within HealSLO of the last fault window ending.
func (c *checker) checkReconvergence() {
	heal := c.sched.LastFaultEnd()
	if heal == 0 {
		return // fault-free schedule: nothing to reconverge from
	}
	deadline := heal + c.cfg.HealSLO
	c.mu.Lock()
	samples := c.samples
	c.mu.Unlock()
	for i, url := range c.fleet.replicaURLs {
		convergedAt := time.Duration(-1)
		judged := false
		for _, s := range samples {
			if s.at < heal || s.pubGen == 0 || s.repGens[i] == 0 {
				continue
			}
			if s.at > deadline {
				judged = true
			}
			if s.pubGen-min64(s.pubGen, s.repGens[i]) <= c.cfg.MaxLag {
				convergedAt = s.at
				break
			}
		}
		switch {
		case convergedAt >= 0 && convergedAt <= deadline:
			// reconverged in time
		case convergedAt >= 0:
			c.violate(Violation{Invariant: InvReconvergence, At: convergedAt, Replica: url,
				Detail: fmt.Sprintf("reconverged %v after heal, SLO %v", convergedAt-heal, c.cfg.HealSLO)})
		case judged:
			c.violate(Violation{Invariant: InvReconvergence, Replica: url,
				Detail: fmt.Sprintf("never reconverged within %v of heal at %v", c.cfg.HealSLO, heal)})
		default:
			c.violate(Violation{Invariant: InvReconvergence, Replica: url,
				Detail: "insufficient post-heal samples to judge reconvergence"})
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
