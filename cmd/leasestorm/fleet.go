package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"ipleasing/internal/chaos"
	"ipleasing/internal/daemon"
)

// fleet is one in-process publisher + N replicas, with the replicas'
// snapshot polling routed through a chaos proxy. The daemons are the
// real thing — the same daemon.Run that backs cmd/leased — so the storm
// exercises production wiring, not a test double.
type fleet struct {
	publisherURL string
	replicaURLs  []string
	proxy        *chaos.Proxy

	cancel context.CancelFunc
	errcs  []chan error
}

// startMember boots one daemon and waits for its listener.
func startMember(ctx context.Context, cfg daemon.Config, logw io.Writer) (string, chan error, error) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- daemon.Run(ctx, cfg, logw, func(addr string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, errc, nil
	case err := <-errc:
		return "", nil, fmt.Errorf("daemon exited before ready: %w", err)
	case <-time.After(60 * time.Second):
		return "", nil, fmt.Errorf("daemon not ready after 60s")
	}
}

// startFleet boots publisher, proxy, and replicas. The proxy starts
// passive (empty schedule): replicas prime their first snapshot through
// a clean path, and the caller arms the fault script when the storm
// begins.
func startFleet(parent context.Context, cfg StormConfig) (*fleet, error) {
	ctx, cancel := context.WithCancel(parent)
	f := &fleet{cancel: cancel}
	ok := false
	defer func() {
		if !ok {
			f.Stop()
		}
	}()

	pubCfg := daemon.Config{
		Data:        cfg.Data,
		Addr:        "127.0.0.1:0",
		Delta:       true,
		Reload:      cfg.Reload,
		Drain:       2 * time.Second,
		SnapshotDir: filepath.Join(cfg.WorkDir, "pub"),
		LogLevel:    cfg.FleetLogLevel,
		JitterSeed:  cfg.Seed + 1,
		// Seeded tracing on every member: the trace assembler joins each
		// member's /debug/traces by trace ID after the run. 5% head
		// sampling keeps organic request traces flowing; reload
		// lifecycles and error tails are retained regardless.
		TraceSample: 0.05,
		TraceBuffer: 512,
		TraceSeed:   cfg.Seed + 2,
	}
	pubURL, pubErrc, err := startMember(ctx, pubCfg, cfg.LogW)
	if err != nil {
		return nil, fmt.Errorf("publisher: %w", err)
	}
	f.publisherURL = pubURL
	f.errcs = append(f.errcs, pubErrc)

	// Replicas fatally fail their initial load if nothing is published
	// yet; wait for generation 1.
	if err := waitPublished(ctx, pubURL); err != nil {
		return nil, err
	}

	proxy, err := chaos.NewProxy(pubURL[len("http://"):], chaos.Schedule{}, chaos.Options{})
	if err != nil {
		return nil, err
	}
	f.proxy = proxy

	for i := 0; i < cfg.Replicas; i++ {
		poll := cfg.Poll
		if cfg.Sabotage == SabotageStaleReplica && i == 0 {
			// The broken-fleet mode the checker must catch: replica 0
			// fetches once at boot, then never polls again. It serves
			// its pinned generation forever and — because it never
			// contacts the publisher — self-reports zero lag.
			poll = 24 * time.Hour
		}
		repCfg := daemon.Config{
			Addr:        "127.0.0.1:0",
			SnapshotURL: "http://" + proxy.Addr() + "/snapshot/current",
			Poll:        poll,
			Drain:       2 * time.Second,
			SnapshotDir: filepath.Join(cfg.WorkDir, fmt.Sprintf("r%d", i)),
			LogLevel:    cfg.FleetLogLevel,
			JitterSeed:  cfg.Seed + 100 + int64(i),
			TraceSample: 0.05,
			TraceBuffer: 512,
			TraceSeed:   cfg.Seed + 200 + int64(i),
		}
		url, errc, err := startMember(ctx, repCfg, cfg.LogW)
		if err != nil {
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		f.replicaURLs = append(f.replicaURLs, url)
		f.errcs = append(f.errcs, errc)
	}
	ok = true
	return f, nil
}

// waitPublished polls the publisher's snapshot endpoint until a
// generation is live.
func waitPublished(ctx context.Context, baseURL string) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if gen, err := headGeneration(ctx, baseURL); err == nil && gen > 0 {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("publisher never published a snapshot generation")
}

// headGeneration probes /snapshot/current and returns the current
// generation — the external source of truth the invariant checker
// compares every replica against.
func headGeneration(ctx context.Context, baseURL string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, baseURL+"/snapshot/current", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("snapshot probe: status %d", resp.StatusCode)
	}
	return strconv.ParseUint(resp.Header.Get("X-Snapshot-Generation"), 10, 64)
}

// Stop tears the fleet down: cancel every daemon, wait for their exits,
// close the proxy.
func (f *fleet) Stop() {
	f.cancel()
	for _, errc := range f.errcs {
		select {
		case <-errc:
		case <-time.After(15 * time.Second):
		}
	}
	if f.proxy != nil {
		f.proxy.Close()
	}
}
