package main

import (
	"encoding/json"
	"io"

	"ipleasing/internal/chaos"
	"ipleasing/internal/loadgen"
)

// RunReport is the machine-readable outcome of one storm: the seed and
// schedule that reproduce it, what the proxy actually did, what the
// load generator measured, and the invariant verdicts. check.sh and the
// determinism tests consume it; humans get the same JSON.
type RunReport struct {
	Seed     int64  `json:"seed"`
	Replicas int    `json:"replicas"`
	Sabotage string `json:"sabotage,omitempty"`

	DurationMS          int64          `json:"duration_ms"`
	ScheduleFingerprint string         `json:"schedule_fingerprint"`
	Schedule            chaos.Schedule `json:"schedule"`
	FaultEvents         []chaos.Event  `json:"fault_events,omitempty"`

	Load *loadgen.Report `json:"load"`

	// Traces are the cross-process traces assembled from every member's
	// /debug/traces after the run: generation lifecycles joined across
	// publisher and replicas, error tails, and their fault attribution.
	Traces *TraceSummary `json:"traces,omitempty"`

	Samples        int `json:"samples"`
	IdentityChecks int `json:"identity_checks"`
	// ReplicaLoadModes is each replica's snapshot load mode ("mmap" or
	// "heap") as last self-reported on /statusz, keyed by base URL —
	// so a run that mixed modes (deliberately or via fallback) is
	// visible in the artifact next to any identity verdicts.
	ReplicaLoadModes map[string]string `json:"replica_load_modes,omitempty"`
	MaxLag           uint64            `json:"max_lag"`
	ErrorBudget      float64           `json:"error_budget"`
	HealSLOMS        int64             `json:"heal_slo_ms"`

	Violations []Violation `json:"violations"`
	Pass       bool        `json:"pass"`
}

// Write renders the report as indented JSON.
func (r *RunReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
