package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"ipleasing/internal/chaos"
	"ipleasing/internal/telemetry"
)

// Assembled trace classes, most interesting first.
const (
	// ClassLifecycle is a cross-process generation-lifecycle trace: the
	// publisher's reload/publish cycle and at least one replica's
	// fetch/decode/swap share a trace ID, linked through the snapshot's
	// provenance traceparent.
	ClassLifecycle = "lifecycle"
	// ClassError holds at least one error or slow-tail record.
	ClassError = "error"
	// ClassRequest is an ordinary sampled request trace.
	ClassRequest = "request"
)

// MemberRecord is one collected trace record tagged with the fleet
// member whose /debug/traces served it.
type MemberRecord struct {
	Member string `json:"member"`
	telemetry.TraceRecord
}

// AssembledTrace is one cross-referenced trace: every record the fleet
// retained under one trace ID, with chaos fault windows the trace
// overlapped attributed alongside.
type AssembledTrace struct {
	TraceID string `json:"trace_id"`
	Class   string `json:"class"`
	// Members lists the distinct fleet members holding records, sorted;
	// two or more means the trace crossed a process boundary.
	Members []string       `json:"members"`
	Records []MemberRecord `json:"records"`
	// Faults names the scheduled fault windows any record of the trace
	// overlapped — the attribution that turns "this fetch was slow" into
	// "this fetch was slow because the proxy was injecting latency".
	Faults []string `json:"faults,omitempty"`
}

// TraceSummary is the run report's assembled-trace section.
type TraceSummary struct {
	// ScrapedRecords counts records collected across every member.
	ScrapedRecords int `json:"scraped_records"`
	// CrossProcessCount counts assembled traces spanning >= 2 members.
	CrossProcessCount int `json:"cross_process_count"`
	// LifecycleCount counts ClassLifecycle traces.
	LifecycleCount int `json:"lifecycle_count"`
	// ErrorTraceCount counts ClassError traces.
	ErrorTraceCount int `json:"error_trace_count"`
	// Traces holds the most interesting assembled traces (lifecycle and
	// error first), capped at maxAssembled; TracesDropped counts the
	// rest so a capped list is never mistaken for a complete one.
	Traces        []AssembledTrace `json:"traces"`
	TracesDropped int              `json:"traces_dropped,omitempty"`
}

// maxAssembled caps the assembled traces embedded in the run report.
const maxAssembled = 32

// collectTraces assembles the fleet's cross-process traces: plant one
// guaranteed error trace per replica, scrape every member's
// /debug/traces, join records by trace ID, classify, and attribute
// overlapping fault windows.
func collectTraces(ctx context.Context, cfg StormConfig, f *fleet, start time.Time, sched chaos.Schedule) *TraceSummary {
	client := &http.Client{Timeout: 3 * time.Second}
	ids := telemetry.NewIDGen(cfg.Seed + 17)
	for _, url := range f.replicaURLs {
		plantErrorTrace(ctx, client, ids, url)
	}

	type member struct{ name, url string }
	members := []member{{"publisher", f.publisherURL}}
	for i, url := range f.replicaURLs {
		members = append(members, member{fmt.Sprintf("replica%d", i), url})
	}

	byID := map[string][]MemberRecord{}
	scraped := 0
	for _, m := range members {
		recs, err := scrapeTraces(ctx, client, m.url)
		if err != nil {
			continue // a member that died mid-run simply contributes nothing
		}
		scraped += len(recs)
		for _, rec := range recs {
			byID[rec.TraceID] = append(byID[rec.TraceID], MemberRecord{Member: m.name, TraceRecord: rec})
		}
	}

	sum := &TraceSummary{ScrapedRecords: scraped}
	var all []AssembledTrace
	for id, recs := range byID {
		all = append(all, assemble(id, recs, start, sched))
	}
	for _, t := range all {
		if len(t.Members) >= 2 {
			sum.CrossProcessCount++
		}
		switch t.Class {
		case ClassLifecycle:
			sum.LifecycleCount++
		case ClassError:
			sum.ErrorTraceCount++
		}
	}
	// Lifecycle, then error, then request; newest first within a class.
	rank := map[string]int{ClassLifecycle: 0, ClassError: 1, ClassRequest: 2}
	sort.Slice(all, func(i, j int) bool {
		if rank[all[i].Class] != rank[all[j].Class] {
			return rank[all[i].Class] < rank[all[j].Class]
		}
		return all[i].Records[0].Start.After(all[j].Records[0].Start)
	})
	if len(all) > maxAssembled {
		sum.TracesDropped = len(all) - maxAssembled
		all = all[:maxAssembled]
	}
	sum.Traces = all
	return sum
}

// assemble joins one trace ID's records into a classified, fault-
// attributed trace.
func assemble(id string, recs []MemberRecord, start time.Time, sched chaos.Schedule) AssembledTrace {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	t := AssembledTrace{TraceID: id, Records: recs, Class: ClassRequest}
	seen := map[string]bool{}
	pubReload, repReload, hasError := false, false, false
	faults := map[string]bool{}
	for _, r := range recs {
		if !seen[r.Member] {
			seen[r.Member] = true
			t.Members = append(t.Members, r.Member)
		}
		if r.Kind == telemetry.KindReload {
			if r.Member == "publisher" {
				pubReload = true
			} else {
				repReload = true
			}
		}
		if r.Kind == telemetry.KindError || r.Kind == telemetry.KindSlow || r.Status >= 400 {
			hasError = true
		}
		// Attribute fault windows the record's lifetime overlapped.
		from := r.Start.Sub(start)
		to := from + time.Duration(r.DurationMS*float64(time.Millisecond))
		for _, fw := range sched.Faults {
			if from < fw.End && to >= fw.Start {
				faults[fmt.Sprintf("%s[%v,%v)", fw.Kind, fw.Start, fw.End)] = true
			}
		}
	}
	sort.Strings(t.Members)
	for fw := range faults {
		t.Faults = append(t.Faults, fw)
	}
	sort.Strings(t.Faults)
	switch {
	case pubReload && repReload:
		t.Class = ClassLifecycle
	case hasError:
		t.Class = ClassError
	}
	return t
}

// plantErrorTrace fires one deliberately malformed lookup carrying a
// forced sampled traceparent, guaranteeing the replica retains at least
// one error-tail trace for the assembler regardless of sampling rate or
// how the storm's organic traffic happened to fail. The request is sent
// after the load phase, so it cannot leak into the error budget.
func plantErrorTrace(ctx context.Context, client *http.Client, ids *telemetry.IDGen, baseURL string) {
	sc := telemetry.SpanContext{TraceID: ids.TraceID(), SpanID: ids.SpanID(), Sampled: true}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/lookup?ip=not-an-ip", nil)
	if err != nil {
		return
	}
	req.Header.Set(telemetry.TraceparentHeader, sc.Traceparent())
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// scrapeTraces pulls one member's retained traces.
func scrapeTraces(ctx context.Context, client *http.Client, baseURL string) ([]telemetry.TraceRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/debug/traces?limit=512", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("debug/traces: status %d", resp.StatusCode)
	}
	var body struct {
		Traces []telemetry.TraceRecord `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Traces, nil
}
