package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"ipleasing"
)

// benchFleet boots a publisher + 1 replica through a passive proxy and
// returns the replica base URL — the fleet-level serving path
// (client → replica HTTP stack → LPM index) that BENCH_fleet.json
// baselines.
func benchFleet(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	data := filepath.Join(dir, "ds")
	if err := ipleasing.Generate(ipleasing.Config{Seed: 11, Scale: 0.005}).WriteDir(data); err != nil {
		b.Fatal(err)
	}
	cfg := StormConfig{
		Data:          data,
		WorkDir:       dir,
		Replicas:      1,
		Seed:          1,
		Reload:        0, // frozen generation: measure serving, not reloads
		Poll:          time.Hour,
		FleetLogLevel: "error",
		LogW:          io.Discard,
	}
	f, err := startFleet(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Stop)
	return f.replicaURLs[0]
}

func benchGet(b *testing.B, client *http.Client, url string) {
	b.Helper()
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
}

// BenchmarkFleetLookup measures single-lookup round-trip time against a
// live replica — the fleet's hottest client-visible path.
func BenchmarkFleetLookup(b *testing.B) {
	replica := benchFleet(b)
	client := &http.Client{Timeout: 5 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, client, fmt.Sprintf("%s/lookup?ip=10.0.%d.%d", replica, i%8, i%256))
	}
}

// BenchmarkFleetTable1 measures the summary-table round trip: the
// heaviest read endpoint in the mix.
func BenchmarkFleetTable1(b *testing.B) {
	replica := benchFleet(b)
	client := &http.Client{Timeout: 5 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, client, replica+"/table1")
	}
}
