package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ipleasing"
	"ipleasing/internal/chaos"
)

func testDataset(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds")
	if err := ipleasing.Generate(ipleasing.Config{Seed: 11, Scale: 0.005}).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestStormDeterministicVerdicts is the reproducibility contract: the
// same seed produces the same fault schedule (fingerprint) and the same
// invariant verdicts across two full runs. Byte-level fault timing may
// differ; the externally observable outcome must not.
func TestStormDeterministicVerdicts(t *testing.T) {
	data := testDataset(t)
	run := func(tag string) *RunReport {
		rep, err := RunStorm(context.Background(), StormConfig{
			Data:     data,
			WorkDir:  filepath.Join(t.TempDir(), tag),
			Replicas: 2,
			Seed:     3,
			Duration: 5 * time.Second,
			QPS:      60,
			Reload:   400 * time.Millisecond,
			Poll:     200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("storm %s: %v", tag, err)
		}
		return rep
	}
	a := run("a")
	b := run("b")

	if a.ScheduleFingerprint != b.ScheduleFingerprint {
		t.Errorf("same seed, different schedules: %s vs %s",
			a.ScheduleFingerprint, b.ScheduleFingerprint)
	}
	if len(a.Schedule.Faults) == 0 {
		t.Error("seed 3 scheduled no faults; the storm exercised nothing")
	}
	if !a.Pass || !b.Pass {
		t.Errorf("healthy fleet failed invariants: run a=%+v run b=%+v",
			a.Violations, b.Violations)
	}
	for _, rep := range []*RunReport{a, b} {
		if rep.Load.Requests == 0 {
			t.Error("no load driven")
		}
		if rep.Samples == 0 || rep.IdentityChecks == 0 {
			t.Errorf("checker idle: samples=%d identity_checks=%d", rep.Samples, rep.IdentityChecks)
		}
		// The tracing acceptance criteria: the run must assemble at least
		// one cross-process generation-lifecycle trace (publisher reload
		// joined to a replica fetch/decode/swap by one trace ID) and at
		// least one error-tail trace.
		if rep.Traces == nil {
			t.Fatal("run report has no trace summary")
		}
		if rep.Traces.LifecycleCount == 0 {
			t.Errorf("no cross-process lifecycle traces assembled (scraped %d records)",
				rep.Traces.ScrapedRecords)
		}
		if rep.Traces.ErrorTraceCount == 0 {
			t.Error("no error-tail traces assembled")
		}
		if rep.Traces.CrossProcessCount == 0 {
			t.Error("no trace crossed a process boundary")
		}
		if rep.Load.Outliers == nil {
			t.Error("load report has no traced latency outliers")
		}
	}
}

// TestStormSabotageDetected is the negative control the acceptance
// criteria demand: a deliberately broken fleet (one replica pinned to
// its boot generation) MUST fail the invariants — a checker that cannot
// fail proves nothing.
func TestStormSabotageDetected(t *testing.T) {
	rep, err := RunStorm(context.Background(), StormConfig{
		Data:     testDataset(t),
		WorkDir:  t.TempDir(),
		Replicas: 2,
		Seed:     3,
		Duration: 5 * time.Second,
		QPS:      60,
		Reload:   400 * time.Millisecond,
		Poll:     200 * time.Millisecond,
		Sabotage: SabotageStaleReplica,
	})
	if err != nil {
		t.Fatalf("storm: %v", err)
	}
	if rep.Pass {
		t.Fatal("sabotaged fleet passed the invariant checker")
	}
	var kinds []string
	for _, v := range rep.Violations {
		kinds = append(kinds, v.Invariant)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, InvLag) && !strings.Contains(joined, InvReconvergence) {
		t.Errorf("sabotage caught by %v, want lag and/or reconvergence", kinds)
	}
}

// metricValue scrapes one exposition line (exact needle prefix) off a
// daemon's /metrics.
func metricValue(t *testing.T, baseURL, needle string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, needle) {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(needle):]), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func servingGen(t *testing.T, baseURL string) uint64 {
	t.Helper()
	chk := &checker{client: http.DefaultClient}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	gen, err := chk.statuszGen(ctx, baseURL)
	if err != nil {
		t.Fatalf("statusz %s: %v", baseURL, err)
	}
	return gen
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestReplicaSurvivesTruncationAndCorruption drives the partial-body
// contract end to end through the real fetch path: a mid-body-truncated
// /snapshot/current is rejected (outcome "error" — the transport
// promised more bytes than it delivered), a full-length-but-corrupt one
// is rejected by the checksum (outcome "corrupt"), the replica keeps
// serving its last-good generation through both, and resumes advancing
// after the fault heals.
func TestReplicaSurvivesTruncationAndCorruption(t *testing.T) {
	cfg := StormConfig{
		Data:          testDataset(t),
		WorkDir:       t.TempDir(),
		Replicas:      1,
		Seed:          9,
		Reload:        300 * time.Millisecond,
		Poll:          150 * time.Millisecond,
		FleetLogLevel: "error",
		LogW:          io.Discard,
	}
	f, err := startFleet(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	replica := f.replicaURLs[0]

	for _, tc := range []struct {
		fault   chaos.FaultKind
		outcome string
	}{
		{chaos.FaultTruncate, `replica_fetch_total{outcome="error"}`},
		{chaos.FaultCorrupt, `replica_fetch_total{outcome="corrupt"}`},
	} {
		before := metricValue(t, replica, tc.outcome)
		genBefore := servingGen(t, replica)

		f.proxy.Arm(chaos.Schedule{Length: time.Hour, Faults: []chaos.Fault{
			{Kind: tc.fault, Start: 0, End: 2 * time.Second},
		}})

		// The publisher advances every 300ms, so polls inside the window
		// hit full (faulted) bodies, not 304s. Each one must be rejected
		// with the right outcome label while serving stays on last-good.
		waitFor(t, 10*time.Second, fmt.Sprintf("%s outcome increment", tc.fault), func() bool {
			return metricValue(t, replica, tc.outcome) > before
		})
		if gen := servingGen(t, replica); gen != genBefore {
			// Serving may legitimately advance via a poll that landed
			// after the window ended, but never beyond the publisher.
			pub, err := headGeneration(context.Background(), f.publisherURL)
			if err != nil || gen > pub {
				t.Errorf("%s: serving generation %d implausible (was %d, publisher %d, err %v)",
					tc.fault, gen, genBefore, pub, err)
			}
		}
		if code := getCode(t, replica+"/lookup?ip=10.0.0.77"); code != 200 {
			t.Errorf("%s: lookup during fault window: code %d, want 200 from last-good snapshot",
				tc.fault, code)
		}

		// Heal: the replica must resume tracking the publisher.
		f.proxy.Arm(chaos.Schedule{})
		waitFor(t, 10*time.Second, "post-heal generation advance", func() bool {
			return servingGen(t, replica) > genBefore
		})
	}
}

func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
