package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ipleasing"
	"ipleasing/internal/chaos"
	"ipleasing/internal/loadgen"
)

// Sabotage modes: deliberately broken fleets that a working invariant
// checker MUST flag. A chaos harness whose checker cannot fail is
// theater; the negative run is part of the acceptance gate.
const (
	// SabotageStaleReplica pins replica 0 to its boot generation (its
	// poll period is stretched past the run length). It keeps serving
	// — and keeps self-reporting lag 0, because it never hears how far
	// the publisher advanced — so only the externally computed lag
	// catches it.
	SabotageStaleReplica = "stale-replica"
)

// StormConfig parameterizes one chaos run.
type StormConfig struct {
	Data    string // dataset dir; empty generates a synthetic one in WorkDir
	WorkDir string // scratch dir for snapshots and generated data

	Replicas int
	Seed     int64
	Duration time.Duration

	QPS         float64
	Concurrency int

	Reload time.Duration // publisher reload period (generation advance rate)
	Poll   time.Duration // replica poll period

	ErrorBudget float64       // client error rate allowed outside fault windows
	MaxLag      uint64        // generation-lag bound while healthy; 0 = derived
	HealSLO     time.Duration // reconvergence deadline after the last fault
	SampleEvery time.Duration // checker cadence

	Sabotage      string
	FleetLogLevel string
	LogW          io.Writer // fleet daemon logs; nil discards
}

func (c StormConfig) withDefaults() StormConfig {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Duration <= 0 {
		c.Duration = 8 * time.Second
	}
	if c.QPS <= 0 {
		c.QPS = 100
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Reload <= 0 {
		c.Reload = 500 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.01
	}
	if c.MaxLag == 0 {
		// Steady state, a replica is at most one poll behind; each poll
		// spans Poll/Reload publisher generations. Double it for timing
		// slop rather than tuning a knife edge.
		c.MaxLag = 2*uint64(c.Poll/c.Reload) + 3
	}
	if c.HealSLO <= 0 {
		// The generated schedule reserves the last quarter of the run
		// as a fault-free heal tail; demand reconvergence inside it.
		c.HealSLO = c.Duration / 4
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 150 * time.Millisecond
	}
	if c.FleetLogLevel == "" {
		c.FleetLogLevel = "warn"
	}
	if c.LogW == nil {
		c.LogW = io.Discard
	}
	return c
}

// RunStorm executes one full chaos run: boot fleet, arm the fault
// script, drive load, sample invariants, heal, judge. The returned
// report carries the verdicts; err is reserved for harness failures
// (fleet would not boot), not invariant violations.
func RunStorm(ctx context.Context, cfg StormConfig) (*RunReport, error) {
	cfg = cfg.withDefaults()
	if cfg.WorkDir == "" {
		dir, err := os.MkdirTemp("", "leasestorm-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.WorkDir = dir
	}
	if cfg.Data == "" {
		cfg.Data = filepath.Join(cfg.WorkDir, "dataset")
		if _, err := os.Stat(cfg.Data); os.IsNotExist(err) {
			if err := ipleasing.Generate(ipleasing.Config{Seed: 11, Scale: 0.005}).WriteDir(cfg.Data); err != nil {
				return nil, fmt.Errorf("generate dataset: %w", err)
			}
		}
	}

	sched := chaos.Generate(cfg.Seed, chaos.GenerateOptions{Length: cfg.Duration})

	f, err := startFleet(ctx, cfg)
	if err != nil {
		return nil, err
	}
	defer f.Stop()

	gen, err := loadgen.New(loadgen.Config{
		Targets:     f.replicaURLs,
		QPS:         cfg.QPS,
		Concurrency: cfg.Concurrency,
		Seed:        cfg.Seed,
		// Every 8th request carries a forced sampled traceparent so the
		// report's latency outliers and error events have trace IDs that
		// join against the fleet's /debug/traces.
		TraceEvery: 8,
	})
	if err != nil {
		return nil, err
	}

	// Storm clock starts when the fault script is armed; every offset in
	// the report — schedule windows, violations, samples — is relative
	// to this instant.
	start := time.Now()
	f.proxy.Arm(sched)
	chk := newChecker(cfg, sched, f, start)

	// The checker outlives the load phase: reconvergence must be
	// observable through the heal SLO deadline plus one sample.
	checkFor := cfg.Duration
	if d := sched.LastFaultEnd() + cfg.HealSLO + 2*cfg.SampleEvery; d > checkFor {
		checkFor = d
	}
	checkCtx, cancelCheck := context.WithDeadline(ctx, start.Add(checkFor))
	defer cancelCheck()
	checkDone := make(chan struct{})
	go func() { defer close(checkDone); chk.Run(checkCtx) }()

	loadCtx, cancelLoad := context.WithDeadline(ctx, start.Add(cfg.Duration))
	defer cancelLoad()
	loadRep := gen.Run(loadCtx)

	<-checkDone
	violations := chk.Finalize(loadRep)

	// Assemble cross-process traces after the checker finishes: by now
	// every member has retained its reload lifecycle and error tails.
	traces := collectTraces(ctx, cfg, f, start, sched)

	chk.mu.Lock()
	samples, identities := len(chk.samples), chk.identities
	chk.mu.Unlock()
	rep := &RunReport{
		Seed:                cfg.Seed,
		Replicas:            cfg.Replicas,
		Sabotage:            cfg.Sabotage,
		DurationMS:          time.Since(start).Milliseconds(),
		ScheduleFingerprint: sched.Fingerprint(),
		Schedule:            sched,
		FaultEvents:         f.proxy.Events(),
		Load:                loadRep,
		Traces:              traces,
		Samples:             samples,
		IdentityChecks:      identities,
		ReplicaLoadModes:    chk.LoadModes(),
		MaxLag:              cfg.MaxLag,
		ErrorBudget:         cfg.ErrorBudget,
		HealSLOMS:           cfg.HealSLO.Milliseconds(),
		Violations:          violations,
		Pass:                len(violations) == 0,
	}
	return rep, nil
}
