// Command leaseinfer runs the leasing-inference methodology (paper
// §5.1–§5.2) over a dataset directory and writes the per-prefix
// classifications as CSV.
//
// Usage:
//
//	leaseinfer -data dataset [-out leases.csv] [-leased-only]
//	           [-exact-roots] [-no-siblings] [-maxlen 24]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipleasing"
)

// config carries the parsed flags.
type config struct {
	data       string
	out        string
	leasedOnly bool
	opts       ipleasing.Options
}

func main() {
	var cfg config
	var exactRoots, noSiblings bool
	var maxLen uint
	flag.StringVar(&cfg.data, "data", "dataset", "dataset directory")
	flag.StringVar(&cfg.out, "out", "inferences.csv", "output CSV path")
	flag.BoolVar(&cfg.leasedOnly, "leased-only", false, "export only leased prefixes")
	flag.BoolVar(&exactRoots, "exact-roots", false, "ablation: disable covering-prefix root lookup")
	flag.BoolVar(&noSiblings, "no-siblings", false, "ablation: disable as2org sibling expansion")
	flag.UintVar(&maxLen, "maxlen", 24, "drop blocks more specific than this")
	flag.Parse()
	cfg.opts = ipleasing.Options{
		MaxPrefixLen:            uint8(maxLen),
		RootLookupExactOnly:     exactRoots,
		DisableSiblingExpansion: noSiblings,
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leaseinfer:", err)
		os.Exit(1)
	}
}

func run(cfg config, w io.Writer) error {
	ds, err := ipleasing.LoadDataset(cfg.data)
	if err != nil {
		return err
	}
	res := ds.Infer(cfg.opts)
	infs := res.All()
	if cfg.leasedOnly {
		infs = res.LeasedInferences()
	}
	ipleasing.SortInferences(infs)
	if err := ipleasing.WriteInferencesCSV(cfg.out, infs); err != nil {
		return err
	}
	fmt.Fprintf(w, "classified %d leaves; %d leased (%.1f%% of %d routed prefixes); wrote %s\n",
		len(res.All()), res.TotalLeased(), 100*res.LeasedShareOfBGP(),
		res.TotalBGPPrefixes, cfg.out)
	return nil
}
