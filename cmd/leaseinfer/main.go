// Command leaseinfer runs the leasing-inference methodology (paper
// §5.1–§5.2) over a dataset directory and writes the per-prefix
// classifications as CSV.
//
// With -trace, the run is recorded as a span tree — load (per source),
// infer (per registry), sort, write — and dumped as indented JSON for
// stage-level performance triage.
//
// Usage:
//
//	leaseinfer -data dataset [-out leases.csv] [-leased-only]
//	           [-exact-roots] [-no-siblings] [-maxlen 24]
//	           [-trace trace.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"ipleasing"
	"ipleasing/internal/telemetry"
)

// config carries the parsed flags.
type config struct {
	data       string
	out        string
	trace      string
	leasedOnly bool
	opts       ipleasing.Options
}

func main() {
	var cfg config
	var exactRoots, noSiblings bool
	var maxLen uint
	flag.StringVar(&cfg.data, "data", "dataset", "dataset directory")
	flag.StringVar(&cfg.out, "out", "inferences.csv", "output CSV path")
	flag.BoolVar(&cfg.leasedOnly, "leased-only", false, "export only leased prefixes")
	flag.StringVar(&cfg.trace, "trace", "", "write the run's span tree as JSON to this path")
	flag.BoolVar(&exactRoots, "exact-roots", false, "ablation: disable covering-prefix root lookup")
	flag.BoolVar(&noSiblings, "no-siblings", false, "ablation: disable as2org sibling expansion")
	flag.UintVar(&maxLen, "maxlen", 24, "drop blocks more specific than this")
	flag.Parse()
	cfg.opts = ipleasing.Options{
		MaxPrefixLen:            uint8(maxLen),
		RootLookupExactOnly:     exactRoots,
		DisableSiblingExpansion: noSiblings,
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leaseinfer:", err)
		os.Exit(1)
	}
}

func run(cfg config, w io.Writer) error {
	ctx := context.Background()
	var tr *telemetry.Trace
	if cfg.trace != "" {
		tr = telemetry.NewTrace("leaseinfer")
		ctx = tr.Context(ctx)
	}

	lctx, loadSpan := telemetry.StartSpan(ctx, "load")
	ds, err := ipleasing.LoadDatasetContext(lctx, cfg.data)
	loadSpan.End()
	if err != nil {
		return err
	}

	ictx, inferSpan := telemetry.StartSpan(ctx, "infer")
	res := ds.InferContext(ictx, cfg.opts)
	inferSpan.AddRecords(int64(len(res.All())))
	inferSpan.End()

	infs := res.All()
	if cfg.leasedOnly {
		infs = res.LeasedInferences()
	}
	_, sortSpan := telemetry.StartSpan(ctx, "sort")
	ipleasing.SortInferences(infs)
	sortSpan.AddRecords(int64(len(infs)))
	sortSpan.End()

	_, writeSpan := telemetry.StartSpan(ctx, "write")
	err = ipleasing.WriteInferencesCSV(cfg.out, infs)
	writeSpan.AddRecords(int64(len(infs)))
	writeSpan.End()
	if err != nil {
		return err
	}

	if tr != nil {
		tr.End()
		if err := writeTrace(cfg.trace, tr); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "classified %d leaves; %d leased (%.1f%% of %d routed prefixes); wrote %s\n",
		len(res.All()), res.TotalLeased(), 100*res.LeasedShareOfBGP(),
		res.TotalBGPPrefixes, cfg.out)
	return nil
}

// writeTrace dumps the span tree as indented JSON.
func writeTrace(path string, tr *telemetry.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
