package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipleasing"
	"ipleasing/internal/telemetry"
)

func dataset(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds")
	if err := ipleasing.Generate(ipleasing.Config{Seed: 2, Scale: 0.005}).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunWritesCSV(t *testing.T) {
	dir := dataset(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	var buf bytes.Buffer
	if err := run(config{data: dir, out: out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "leased") {
		t.Fatalf("summary = %q", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines < 100 {
		t.Fatalf("CSV too small: %d lines", lines)
	}
	if !strings.HasPrefix(string(data), "registry,prefix,category") {
		t.Fatal("CSV header missing")
	}
}

func TestRunLeasedOnlySmaller(t *testing.T) {
	dir := dataset(t)
	full := filepath.Join(t.TempDir(), "full.csv")
	leased := filepath.Join(t.TempDir(), "leased.csv")
	var buf bytes.Buffer
	if err := run(config{data: dir, out: full}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run(config{data: dir, out: leased, leasedOnly: true}, &buf); err != nil {
		t.Fatal(err)
	}
	fs, _ := os.Stat(full)
	ls, _ := os.Stat(leased)
	if ls.Size() >= fs.Size() {
		t.Fatalf("leased-only (%d) not smaller than full (%d)", ls.Size(), fs.Size())
	}
	// Every data row in the leased-only export is flagged leased.
	data, _ := os.ReadFile(leased)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "registry,") {
			continue
		}
		if !strings.Contains(line, ",true,") {
			t.Fatalf("non-leased row in leased-only export: %q", line)
		}
	}
}

// TestRunTrace checks the -trace dump: the four pipeline stages appear
// as top-level spans and their durations account for the run — they sum
// to no more than the root's wall clock, and cover most of it (the work
// outside the spans is flag parsing and a printf).
func TestRunTrace(t *testing.T) {
	dir := dataset(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run(config{data: dir, out: out, trace: tracePath}, &buf); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var root telemetry.SpanNode
	if err := json.Unmarshal(data, &root); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if root.Name != "leaseinfer" {
		t.Fatalf("root span = %q, want leaseinfer", root.Name)
	}

	stages := map[string]*telemetry.SpanNode{}
	var stageMS float64
	for _, c := range root.Children {
		stages[c.Name] = c
		stageMS += c.DurationMS
	}
	for _, want := range []string{"load", "infer", "sort", "write"} {
		if stages[want] == nil {
			t.Fatalf("trace missing stage span %q (have %v)", want, root.Children)
		}
		if stages[want].Unfinished {
			t.Fatalf("stage span %q unfinished", want)
		}
	}
	// The stages run sequentially, so their durations sum to the root's
	// within tolerance: never above it (plus float slack), and covering
	// the bulk of the run. The lower bound is generous to keep slow CI
	// machines from flaking.
	if stageMS > root.DurationMS+1 {
		t.Errorf("stage durations sum to %.2fms, exceeding root %.2fms", stageMS, root.DurationMS)
	}
	if root.DurationMS > 1 && stageMS < 0.5*root.DurationMS {
		t.Errorf("stage durations sum to %.2fms, under half of root %.2fms", stageMS, root.DurationMS)
	}
	// Nested load spans made it into the dump.
	var sawWhois bool
	for _, c := range stages["load"].Children {
		if strings.HasPrefix(c.Name, "load.") || strings.HasPrefix(c.Name, "whois.") {
			sawWhois = true
		}
	}
	if !sawWhois {
		t.Error("load stage has no nested per-source spans")
	}
}

func TestRunMissingDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := run(config{data: filepath.Join(t.TempDir(), "nope"), out: "x.csv"}, &buf); err == nil {
		t.Fatal("missing dataset accepted")
	}
}
