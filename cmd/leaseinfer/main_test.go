package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipleasing"
)

func dataset(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds")
	if err := ipleasing.Generate(ipleasing.Config{Seed: 2, Scale: 0.005}).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunWritesCSV(t *testing.T) {
	dir := dataset(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	var buf bytes.Buffer
	if err := run(config{data: dir, out: out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "leased") {
		t.Fatalf("summary = %q", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines < 100 {
		t.Fatalf("CSV too small: %d lines", lines)
	}
	if !strings.HasPrefix(string(data), "registry,prefix,category") {
		t.Fatal("CSV header missing")
	}
}

func TestRunLeasedOnlySmaller(t *testing.T) {
	dir := dataset(t)
	full := filepath.Join(t.TempDir(), "full.csv")
	leased := filepath.Join(t.TempDir(), "leased.csv")
	var buf bytes.Buffer
	if err := run(config{data: dir, out: full}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run(config{data: dir, out: leased, leasedOnly: true}, &buf); err != nil {
		t.Fatal(err)
	}
	fs, _ := os.Stat(full)
	ls, _ := os.Stat(leased)
	if ls.Size() >= fs.Size() {
		t.Fatalf("leased-only (%d) not smaller than full (%d)", ls.Size(), fs.Size())
	}
	// Every data row in the leased-only export is flagged leased.
	data, _ := os.ReadFile(leased)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "registry,") {
			continue
		}
		if !strings.Contains(line, ",true,") {
			t.Fatalf("non-leased row in leased-only export: %q", line)
		}
	}
}

func TestRunMissingDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := run(config{data: filepath.Join(t.TempDir(), "nope"), out: "x.csv"}, &buf); err == nil {
		t.Fatal("missing dataset accepted")
	}
}
