package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipleasing/internal/bgp"
	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
)

func sampleFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rib.mrt")
	peers := []mrt.Peer{{BGPID: 1, Addr: netutil.MustParseAddr("192.0.2.1"), AS: 65001}}
	routes := []bgp.Route{
		{Prefix: netutil.MustParsePrefix("203.0.113.0/24"), Path: mrt.NewASPathSequence(65001, 64500)},
		{Prefix: netutil.MustParsePrefix("198.51.100.0/24"), Path: mrt.NewASPathSequence(65001, 64501)},
	}
	if err := bgp.WriteMRTFile(path, 1712000000, peers, routes); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout during fn.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<16)
	n, _ := r.Read(out)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out[:n])
}

func TestDumpFull(t *testing.T) {
	path := sampleFile(t)
	out := capture(t, func() error { return dump(path, false, false) })
	for _, want := range []string{"PEER_INDEX_TABLE", "203.0.113.0/24", "origins=[64500]", "65001 64501"} {
		if !contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpPeersOnly(t *testing.T) {
	path := sampleFile(t)
	out := capture(t, func() error { return dump(path, true, false) })
	if !contains(out, "AS65001") || contains(out, "RIB ") {
		t.Fatalf("peers-only output wrong:\n%s", out)
	}
}

func TestDumpCountOnly(t *testing.T) {
	path := sampleFile(t)
	out := capture(t, func() error { return dump(path, false, true) })
	if !contains(out, "rib-ipv4-unicast: 2") || !contains(out, "peer-index-table: 1") {
		t.Fatalf("count output wrong:\n%s", out)
	}
}

func TestDumpMissingFile(t *testing.T) {
	if err := dump(filepath.Join(t.TempDir(), "none.mrt"), false, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
