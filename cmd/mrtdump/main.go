// Command mrtdump inspects MRT files in the style of bgpdump: it prints
// the peer index table and one line per RIB entry (prefix, peer, origin,
// AS path). Useful for debugging generated or downloaded RIB dumps.
//
// Usage:
//
//	mrtdump [-peers] [-count] file.mrt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ipleasing/internal/mrt"
)

func main() {
	showPeers := flag.Bool("peers", false, "print only the peer index table")
	countOnly := flag.Bool("count", false, "print only record counts")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrtdump [-peers] [-count] file.mrt")
		os.Exit(2)
	}
	if err := dump(flag.Arg(0), *showPeers, *countOnly); err != nil {
		fmt.Fprintln(os.Stderr, "mrtdump:", err)
		os.Exit(1)
	}
}

func dump(path string, peersOnly, countOnly bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	rd := mrt.NewReader(f)
	var peers *mrt.PeerIndexTable
	counts := map[string]int{}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch {
		case rec.Type == mrt.TypeTableDumpV2 && rec.Subtype == mrt.SubtypePeerIndexTable:
			counts["peer-index-table"]++
			peers, err = mrt.DecodePeerIndexTable(rec.Body)
			if err != nil {
				return err
			}
			if !countOnly {
				fmt.Printf("PEER_INDEX_TABLE collector=%08x view=%q peers=%d\n",
					peers.CollectorID, peers.ViewName, len(peers.Peers))
				if peersOnly {
					for i, p := range peers.Peers {
						fmt.Printf("  [%d] AS%d %s bgp-id=%08x\n", i, p.AS, p.Addr, p.BGPID)
					}
				}
			}
		case rec.Type == mrt.TypeTableDumpV2 && rec.Subtype == mrt.SubtypeRIBIPv4Unicast:
			counts["rib-ipv4-unicast"]++
			if peersOnly || countOnly {
				continue
			}
			rib, err := mrt.DecodeRIBIPv4(rec.Body)
			if err != nil {
				return err
			}
			for _, e := range rib.Entries {
				path, err := mrt.PathOf(e.Attrs)
				if err != nil {
					return err
				}
				peerStr := fmt.Sprintf("#%d", e.PeerIndex)
				if peers != nil && int(e.PeerIndex) < len(peers.Peers) {
					peerStr = fmt.Sprintf("AS%d", peers.Peers[e.PeerIndex].AS)
				}
				fmt.Printf("RIB %-18s peer=%-10s path=%s origins=%v\n",
					rib.Prefix, peerStr, pathString(path), path.Origins())
			}
		case rec.Type == mrt.TypeBGP4MP:
			counts["bgp4mp"]++
		default:
			counts[fmt.Sprintf("type-%d-%d", rec.Type, rec.Subtype)]++
		}
	}
	if countOnly {
		for k, v := range counts {
			fmt.Printf("%s: %d\n", k, v)
		}
	}
	return nil
}

func pathString(p mrt.ASPath) string {
	var parts []string
	for _, seg := range p {
		var asns []string
		for _, a := range seg.ASNs {
			asns = append(asns, fmt.Sprint(a))
		}
		s := strings.Join(asns, " ")
		if seg.Type == mrt.SegmentASSet {
			s = "{" + strings.Join(asns, ",") + "}"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ")
}
