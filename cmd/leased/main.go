// Command leased is the long-running lease-lookup daemon: it loads a
// dataset directory, runs the inference once, and serves prefix/ASN
// lease queries, the Table-1 summary, and the load report from an
// immutable in-memory snapshot. Single lookups go to /lookup
// (?prefix=, ?ip=, ?asn=); bulk address classification goes to
// POST /lookup/batch with {"ips": [...]} (up to serve.MaxBatchIPs
// addresses per call), answered from one snapshot generation via the
// allocation-free LPM index.
//
// Robustness model (see internal/serve): queries read the current
// snapshot through an atomic pointer; a reload builds the next snapshot
// off-thread with retry and exponential backoff and swaps it in only on
// success. A failed reload — corrupt mirror, tripped ingestion circuit
// breaker — leaves the previous snapshot serving and degrades /readyz;
// after repeated failures the reload breaker opens and only an operator
// SIGHUP retries. Requests are bounded by a per-request timeout and a
// concurrency limiter that sheds with 429 + Retry-After; handler panics
// become 500s, never process exits.
//
// Observability: structured logs (key=value or JSON via -log-format) on
// stderr, Prometheus metrics on /metrics, and — when -pprof is set —
// the Go profiler on /debug/pprof/*. See the README's Observability
// section for the metric catalog.
//
// Incremental reloads: by default, timer-driven reloads take the delta
// path — the refreshed dataset is diffed against the previous
// generation and only the allocation-forest roots the churn touched are
// re-classified, with the serving indexes patched in place (mode=delta
// in logs and metrics). The result is byte-identical to a full rebuild.
// SIGHUP stays a forced full rebuild: the operator escape hatch that
// also recompacts the patched indexes. -delta=false pins every reload
// to the full path.
//
// Persistence and replication (see internal/snapstore): with
// -snapshot-dir, every serving snapshot is also encoded into a
// checksummed binary generation file and atomically published to that
// directory, and a restart cold-starts from the newest valid generation
// in O(bytes) — no dataset parse, no inference — falling back
// generation by generation past anything corrupt, then to a full load.
// The current generation is always exposed on /snapshot/current. With
// -snapshot-url, the daemon is a stateless replica: it serves
// snapshots fetched from another daemon's /snapshot/current (polling
// with -poll, conditional GETs, lag surfaced on /statusz and
// replica_generation_lag) and needs no dataset at all; adding
// -snapshot-dir caches fetched generations so the replica can cold
// start with its publisher down.
//
// Signals:
//
//	SIGHUP          forced full reload (runs even with the breaker open;
//	                on a replica, a forced full fetch)
//	SIGTERM/SIGINT  graceful shutdown, draining in-flight requests
//
// Usage:
//
//	leased -data dataset [-addr 127.0.0.1:8402] [-strict] [-delta=true]
//	       [-reload 24h] [-drain 10s] [-max-inflight 128] [-timeout 5s]
//	       [-log-format text|json] [-log-level info] [-pprof]
//	       [-snapshot-dir dir] [-snapshot-keep 4]
//	       [-snapshot-url http://publisher:8402/snapshot/current] [-poll 15s]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ipleasing"
	"ipleasing/internal/serve"
	"ipleasing/internal/telemetry"
)

// config carries the parsed flags.
type config struct {
	data        string
	addr        string
	strict      bool
	delta       bool
	reload      time.Duration
	drain       time.Duration
	maxInFlight int
	timeout     time.Duration
	logFormat   string
	logLevel    string
	pprof       bool

	snapshotDir  string
	snapshotKeep int
	snapshotURL  string
	poll         time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.data, "data", "dataset", "dataset directory")
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8402", "listen address")
	flag.BoolVar(&cfg.strict, "strict", false, "strict ingestion: any malformed record fails a (re)load")
	flag.BoolVar(&cfg.delta, "delta", true, "incremental reloads: diff against the previous generation and re-classify only the churn (SIGHUP still forces a full rebuild)")
	flag.DurationVar(&cfg.reload, "reload", 0, "timer-driven reload period (0 disables; SIGHUP always reloads)")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain budget")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", serve.DefaultMaxInFlight, "concurrent requests before shedding with 429")
	flag.DurationVar(&cfg.timeout, "timeout", serve.DefaultRequestTimeout, "per-request handling budget")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log record format: text (key=value) or json")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose the Go profiler on /debug/pprof/*")
	flag.StringVar(&cfg.snapshotDir, "snapshot-dir", "", "persist every serving snapshot to this directory and cold-start from the newest valid generation")
	flag.IntVar(&cfg.snapshotKeep, "snapshot-keep", 4, "snapshot generations retained in -snapshot-dir (negative keeps all)")
	flag.StringVar(&cfg.snapshotURL, "snapshot-url", "", "replica mode: serve snapshots fetched from this publisher endpoint (e.g. http://host:8402/snapshot/current) instead of loading -data")
	flag.DurationVar(&cfg.poll, "poll", 15*time.Second, "replica poll period for new publisher generations")
	flag.Parse()
	if err := run(context.Background(), cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "leased:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon logger from the flag values.
func newLogger(cfg config, w io.Writer) (*telemetry.Logger, error) {
	level, err := telemetry.ParseLogLevel(cfg.logLevel)
	if err != nil {
		return nil, err
	}
	var format string
	switch strings.ToLower(cfg.logFormat) {
	case "", "text":
		format = telemetry.FormatText
	case "json":
		format = telemetry.FormatJSON
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", cfg.logFormat)
	}
	return telemetry.NewLogger(w, telemetry.LoggerOptions{Level: level, Format: format}), nil
}

// snapshotBuilder is the daemon's snapshot build step: one dataset load
// under the configured ingestion policy plus one inference run. It
// retains the previous load's Generation so unforced reloads can take
// the incremental path: diff the refreshed dataset against it,
// re-classify only the dirty allocation-forest roots, and patch the
// previous snapshot's serving indexes instead of rebuilding them.
// Holding the baseline costs one extra dataset generation of memory —
// the price of diffing — which -delta=false avoids.
type snapshotBuilder struct {
	cfg  config
	opts ipleasing.LoadOptions

	mu   sync.Mutex
	prev *ipleasing.Generation
}

func newSnapshotBuilder(cfg config) *snapshotBuilder {
	opts := ipleasing.LenientLoad()
	if cfg.strict {
		opts = ipleasing.StrictLoad()
	}
	return &snapshotBuilder{cfg: cfg, opts: opts}
}

func (b *snapshotBuilder) setPrev(g *ipleasing.Generation) {
	b.mu.Lock()
	b.prev = g
	b.mu.Unlock()
}

func (b *snapshotBuilder) getPrev() *ipleasing.Generation {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.prev
}

// buildFull is the full rebuild: load, infer everything, index from
// scratch. The resulting generation becomes the next delta baseline.
func (b *snapshotBuilder) buildFull(ctx context.Context) (*serve.Snapshot, error) {
	ds, sum, res, err := ipleasing.LoadAndInferContext(ctx, b.cfg.data, b.opts, ipleasing.Options{})
	if err != nil {
		return nil, err
	}
	if b.cfg.delta {
		b.setPrev(&ipleasing.Generation{Dataset: ds, Summary: sum, Result: res})
	}
	snap := serve.NewSnapshot(res, sum.Reports, sum.SkippedAnalyses)
	snap.Dir = b.cfg.data
	snap.Strict = b.cfg.strict
	return snap, nil
}

// buildDelta is the incremental rebuild serve.Config.BuildDelta wires
// to unforced reloads: load the refreshed dataset, InferDelta against
// the retained generation, and patch prevSnap's indexes through the
// resulting plan. Falls back transparently (first generation, churn
// above threshold) with the snapshot's DeltaInfo reporting which mode
// actually ran. On error the baseline is left untouched, so the next
// attempt diffs against the same good generation.
func (b *snapshotBuilder) buildDelta(ctx context.Context, prevSnap *serve.Snapshot) (*serve.Snapshot, error) {
	gen, rep, err := ipleasing.LoadAndInferDelta(ctx, b.cfg.data, b.opts, ipleasing.Options{},
		b.getPrev(), ipleasing.DeltaChurnFallback)
	if err != nil {
		return nil, err
	}
	b.setPrev(gen)
	var snap *serve.Snapshot
	if rep.Mode == serve.ModeDelta {
		snap = serve.PatchSnapshot(prevSnap, gen.Result, rep.Plan,
			gen.Summary.Reports, gen.Summary.SkippedAnalyses)
	} else {
		snap = serve.NewSnapshot(gen.Result, gen.Summary.Reports, gen.Summary.SkippedAnalyses)
		snap.Delta = &serve.DeltaInfo{Mode: serve.ModeFull}
	}
	if rep.Stats != nil {
		snap.Delta.DirtyShards = rep.Stats.DirtySegments
		snap.Delta.TotalShards = rep.Stats.TotalSegments
	}
	if rep.Changes != nil {
		snap.Delta.ChangedKeys = rep.Changes.ChangedKeys()
	}
	snap.Dir = b.cfg.data
	snap.Strict = b.cfg.strict
	return snap, nil
}

// handler wires the service handler, optionally mounting the profiler.
// pprof is flag-gated and wired explicitly — importing net/http/pprof
// for its DefaultServeMux side effect would expose the profiler
// unconditionally.
func handler(cfg config, s *serve.Server) http.Handler {
	if !cfg.pprof {
		return s.Handler()
	}
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// run is the daemon body. It refuses to start without a first good
// snapshot, then serves until SIGTERM/SIGINT (draining in-flight
// requests) or a listener error. The ready callback, when non-nil, is
// invoked with the bound address once the listener is open (tests bind
// :0 and need the chosen port).
func run(ctx context.Context, cfg config, logw io.Writer, ready func(addr string)) error {
	logger, err := newLogger(cfg, logw)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	snaps, err := newSnapshots(cfg, logger, reg)
	if err != nil {
		return err
	}
	b := newSnapshotBuilder(cfg)
	scfg := serve.Config{
		Build:          snaps.wrapBuild(b.buildFull),
		ReloadEvery:    cfg.reload,
		MaxInFlight:    cfg.maxInFlight,
		RequestTimeout: cfg.timeout,
		Logger:         logger,
		Metrics:        reg,
	}
	if cfg.delta {
		scfg.BuildDelta = b.buildDelta
	}
	if snaps.replica() {
		// Replica: the builder fetches encoded snapshots instead of
		// loading -data; the poll loop below replaces the reload timer,
		// and the delta path is moot (nothing is inferred here).
		scfg.Build = snaps.buildFromFetch
		scfg.BuildDelta = nil
		scfg.ReloadEvery = 0
	}
	if snaps != nil {
		scfg.OnSwap = snaps.onSwap
		scfg.Replication = snaps.replicationStatus
	}
	s := serve.New(scfg)
	if snaps != nil {
		s.Route("snapshot", "/snapshot/current", false, snaps.pub.ServeHTTP)
	}
	// The first load is synchronous and fatal on failure: a daemon with
	// nothing to serve should crash-loop visibly, not sit unready.
	if err := s.Reload(ctx, true); err != nil {
		return fmt.Errorf("initial load of %s: %w", cfg.data, err)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Info("listening",
		"addr", ln.Addr(), "dataset", cfg.data,
		"inferences", s.Snapshot().NumInferences(), "pprof", cfg.pprof,
		"snapshot_dir", cfg.snapshotDir, "snapshot_url", cfg.snapshotURL)
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if snaps.replica() {
		go snaps.pollLoop(ctx, s)
	} else {
		go s.ReloadLoop(ctx)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigs)

	srv := &http.Server{Handler: handler(cfg, s), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	shutdown := func(why string) error {
		logger.Info("draining in-flight requests", "reason", why, "budget", cfg.drain)
		dctx, dcancel := context.WithTimeout(context.Background(), cfg.drain)
		defer dcancel()
		if err := srv.Shutdown(dctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		logger.Info("drained, exiting")
		return nil
	}

	for {
		select {
		case err := <-errc:
			return fmt.Errorf("serve: %w", err)
		case <-ctx.Done():
			return shutdown("context cancelled")
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				// Forced reload off the signal loop; the breaker does not
				// block an explicit operator request. On a replica this is
				// a forced fetch: the conditional-GET state is dropped so
				// the publisher's current generation transfers in full.
				snaps.forceRefresh()
				go func() {
					if err := s.Reload(ctx, true); err != nil {
						logger.Error("SIGHUP reload failed", "err", err)
					}
				}()
				continue
			}
			return shutdown(sig.String())
		}
	}
}
