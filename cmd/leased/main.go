// Command leased is the long-running lease-lookup daemon: it loads a
// dataset directory, runs the inference once, and serves prefix/ASN
// lease queries, the Table-1 summary, and the load report from an
// immutable in-memory snapshot. Single lookups go to /lookup
// (?prefix=, ?ip=, ?asn=); bulk address classification goes to
// POST /lookup/batch with {"ips": [...]} (up to serve.MaxBatchIPs
// addresses per call), answered from one snapshot generation via the
// allocation-free LPM index.
//
// Robustness model (see internal/serve): queries read the current
// snapshot through an atomic pointer; a reload builds the next snapshot
// off-thread with retry and jittered exponential backoff and swaps it
// in only on success. A failed reload — corrupt mirror, tripped
// ingestion circuit breaker — leaves the previous snapshot serving and
// degrades /readyz; after repeated failures the reload breaker opens
// and only an operator SIGHUP retries. Requests are bounded by a
// per-request timeout and a concurrency limiter that sheds with 429 +
// Retry-After; handler panics become 500s, never process exits. The
// HTTP server itself is bounded on every connection-pinning dimension
// (header read, body read, response write, idle keep-alive, header
// size), so a slow or stuck peer cannot pin connections indefinitely.
//
// Observability: structured logs (key=value or JSON via -log-format) on
// stderr, Prometheus metrics on /metrics, and — when -pprof is set —
// the Go profiler on /debug/pprof/*. Request tracing is always on:
// -trace-sample head-samples requests (default 1%), error and slow-tail
// requests are kept regardless, every reload cycle is traced, and
// finished traces are served as JSON from /debug/traces. Sampled
// responses carry X-Trace-Id; incoming W3C traceparent headers are
// honored, and snapshot fetches propagate them so a replica's
// fetch/decode/swap joins the publisher's reload trace. See the
// README's Observability section for the metric catalog and trace
// query parameters.
//
// Incremental reloads: by default, timer-driven reloads take the delta
// path — the refreshed dataset is diffed against the previous
// generation and only the allocation-forest roots the churn touched are
// re-classified, with the serving indexes patched in place (mode=delta
// in logs and metrics). The result is byte-identical to a full rebuild.
// SIGHUP stays a forced full rebuild: the operator escape hatch that
// also recompacts the patched indexes. -delta=false pins every reload
// to the full path.
//
// Persistence and replication (see internal/snapstore): with
// -snapshot-dir, every serving snapshot is also encoded into a
// checksummed binary generation file and atomically published to that
// directory, and a restart cold-starts from the newest valid generation
// in O(bytes) — no dataset parse, no inference — falling back
// generation by generation past anything corrupt, then to a full load.
// The current generation is always exposed on /snapshot/current. With
// -snapshot-url, the daemon is a stateless replica: it serves
// snapshots fetched from another daemon's /snapshot/current (polling
// with -poll, conditional GETs, lag surfaced on /statusz and
// replica_generation_lag) and needs no dataset at all; adding
// -snapshot-dir caches fetched generations so the replica can cold
// start with its publisher down. A publisher answering 429/503 with
// Retry-After is honored: the replica suppresses polls for the hinted
// duration, capped at one poll interval.
//
// By default on-disk generations are served zero-copy: the file is
// memory-mapped, every section CRC is verified eagerly at open
// (validate-then-trust — a corrupt file fails then, never mid-request),
// and the serving indexes are views over the mapping, so a cold start
// costs page-cache faults instead of a full decode and two daemons on
// one host share the physical memory. Replicas with a -snapshot-dir
// stream fetched bodies straight to disk and map the published file,
// never buffering a snapshot on the heap. -snapshot-mmap=false forces
// the materializing heap decode everywhere (the fallback that also
// engages automatically on platforms or filesystems without mmap and
// for previous-version generation files).
//
// Signals:
//
//	SIGHUP          forced full reload (runs even with the breaker open;
//	                on a replica, a forced full fetch)
//	SIGTERM/SIGINT  graceful shutdown, draining in-flight requests
//
// Usage:
//
//	leased -data dataset [-addr 127.0.0.1:8402] [-strict] [-delta=true]
//	       [-reload 24h] [-drain 10s] [-max-inflight 128] [-timeout 5s]
//	       [-log-format text|json] [-log-level info] [-pprof]
//	       [-snapshot-dir dir] [-snapshot-keep 4] [-snapshot-mmap=true]
//	       [-snapshot-url http://publisher:8402/snapshot/current] [-poll 15s]
//	       [-trace-sample 0.01] [-trace-buffer 256] [-trace-seed 0]
//
// The daemon body lives in internal/daemon, shared with the fleet chaos
// harness (cmd/leasestorm); this command is the flag surface around it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ipleasing/internal/daemon"
	"ipleasing/internal/serve"
)

func main() {
	var cfg daemon.Config
	flag.StringVar(&cfg.Data, "data", "dataset", "dataset directory")
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:8402", "listen address")
	flag.BoolVar(&cfg.Strict, "strict", false, "strict ingestion: any malformed record fails a (re)load")
	flag.BoolVar(&cfg.Delta, "delta", true, "incremental reloads: diff against the previous generation and re-classify only the churn (SIGHUP still forces a full rebuild)")
	flag.DurationVar(&cfg.Reload, "reload", 0, "timer-driven reload period (0 disables; SIGHUP always reloads)")
	flag.DurationVar(&cfg.Drain, "drain", 10*time.Second, "graceful-shutdown drain budget")
	flag.IntVar(&cfg.MaxInFlight, "max-inflight", serve.DefaultMaxInFlight, "concurrent requests before shedding with 429")
	flag.DurationVar(&cfg.Timeout, "timeout", serve.DefaultRequestTimeout, "per-request handling budget")
	flag.StringVar(&cfg.LogFormat, "log-format", "text", "log record format: text (key=value) or json")
	flag.StringVar(&cfg.LogLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	flag.BoolVar(&cfg.Pprof, "pprof", false, "expose the Go profiler on /debug/pprof/*")
	flag.StringVar(&cfg.SnapshotDir, "snapshot-dir", "", "persist every serving snapshot to this directory and cold-start from the newest valid generation")
	flag.IntVar(&cfg.SnapshotKeep, "snapshot-keep", 4, "snapshot generations retained in -snapshot-dir (negative keeps all)")
	flag.StringVar(&cfg.SnapshotURL, "snapshot-url", "", "replica mode: serve snapshots fetched from this publisher endpoint (e.g. http://host:8402/snapshot/current) instead of loading -data")
	flag.DurationVar(&cfg.Poll, "poll", 15*time.Second, "replica poll period for new publisher generations")
	mmap := flag.Bool("snapshot-mmap", true, "serve on-disk snapshot generations as zero-copy views over a memory-mapped file (false forces the materializing heap decode)")
	flag.Float64Var(&cfg.TraceSample, "trace-sample", 0, "request-trace head-sampling rate in [0,1] (0 means the default 1%; negative disables tracing)")
	flag.IntVar(&cfg.TraceBuffer, "trace-buffer", 0, "finished traces retained per collector ring (0 means the default 256)")
	flag.Int64Var(&cfg.TraceSeed, "trace-seed", 0, "seed for trace IDs and the head sampler (0 draws from the clock)")
	flag.Parse()
	if !*mmap {
		cfg.SnapshotLoadMode = "heap"
	}
	if err := daemon.Run(context.Background(), cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "leased:", err)
		os.Exit(1)
	}
}
