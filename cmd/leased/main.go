// Command leased is the long-running lease-lookup daemon: it loads a
// dataset directory, runs the inference once, and serves prefix/ASN
// lease queries, the Table-1 summary, and the load report from an
// immutable in-memory snapshot.
//
// Robustness model (see internal/serve): queries read the current
// snapshot through an atomic pointer; a reload builds the next snapshot
// off-thread with retry and exponential backoff and swaps it in only on
// success. A failed reload — corrupt mirror, tripped ingestion circuit
// breaker — leaves the previous snapshot serving and degrades /readyz;
// after repeated failures the reload breaker opens and only an operator
// SIGHUP retries. Requests are bounded by a per-request timeout and a
// concurrency limiter that sheds with 429 + Retry-After; handler panics
// become 500s, never process exits.
//
// Signals:
//
//	SIGHUP          forced reload (runs even with the breaker open)
//	SIGTERM/SIGINT  graceful shutdown, draining in-flight requests
//
// Usage:
//
//	leased -data dataset [-addr 127.0.0.1:8402] [-strict]
//	       [-reload 24h] [-drain 10s] [-max-inflight 128] [-timeout 5s]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipleasing"
	"ipleasing/internal/serve"
)

// config carries the parsed flags.
type config struct {
	data        string
	addr        string
	strict      bool
	reload      time.Duration
	drain       time.Duration
	maxInFlight int
	timeout     time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.data, "data", "dataset", "dataset directory")
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8402", "listen address")
	flag.BoolVar(&cfg.strict, "strict", false, "strict ingestion: any malformed record fails a (re)load")
	flag.DurationVar(&cfg.reload, "reload", 0, "timer-driven reload period (0 disables; SIGHUP always reloads)")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain budget")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", serve.DefaultMaxInFlight, "concurrent requests before shedding with 429")
	flag.DurationVar(&cfg.timeout, "timeout", serve.DefaultRequestTimeout, "per-request handling budget")
	flag.Parse()
	if err := run(context.Background(), cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "leased:", err)
		os.Exit(1)
	}
}

// builder is the daemon's snapshot build step: one dataset load under
// the configured ingestion policy plus one inference run.
func builder(cfg config) func(context.Context) (*serve.Snapshot, error) {
	opts := ipleasing.LenientLoad()
	if cfg.strict {
		opts = ipleasing.StrictLoad()
	}
	return func(context.Context) (*serve.Snapshot, error) {
		_, sum, res, err := ipleasing.LoadAndInfer(cfg.data, opts, ipleasing.Options{})
		if err != nil {
			return nil, err
		}
		snap := serve.NewSnapshot(res, sum.Reports, sum.SkippedAnalyses)
		snap.Dir = cfg.data
		snap.Strict = cfg.strict
		return snap, nil
	}
}

// run is the daemon body. It refuses to start without a first good
// snapshot, then serves until SIGTERM/SIGINT (draining in-flight
// requests) or a listener error. The ready callback, when non-nil, is
// invoked with the bound address once the listener is open (tests bind
// :0 and need the chosen port).
func run(ctx context.Context, cfg config, logw io.Writer, ready func(addr string)) error {
	logger := log.New(logw, "leased: ", log.LstdFlags)
	s := serve.New(serve.Config{
		Build:          builder(cfg),
		ReloadEvery:    cfg.reload,
		MaxInFlight:    cfg.maxInFlight,
		RequestTimeout: cfg.timeout,
		Log:            logger,
	})
	// The first load is synchronous and fatal on failure: a daemon with
	// nothing to serve should crash-loop visibly, not sit unready.
	if err := s.Reload(ctx, true); err != nil {
		return fmt.Errorf("initial load of %s: %w", cfg.data, err)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (dataset %s, %d inferences)",
		ln.Addr(), cfg.data, s.Snapshot().NumInferences())
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go s.ReloadLoop(ctx)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigs)

	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	shutdown := func(why string) error {
		logger.Printf("%s: draining in-flight requests (budget %s)", why, cfg.drain)
		dctx, dcancel := context.WithTimeout(context.Background(), cfg.drain)
		defer dcancel()
		if err := srv.Shutdown(dctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		logger.Printf("drained, exiting")
		return nil
	}

	for {
		select {
		case err := <-errc:
			return fmt.Errorf("serve: %w", err)
		case <-ctx.Done():
			return shutdown("context cancelled")
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				// Forced reload off the signal loop; the breaker does not
				// block an explicit operator request.
				go func() {
					if err := s.Reload(ctx, true); err != nil {
						logger.Printf("SIGHUP reload failed: %v", err)
					}
				}()
				continue
			}
			return shutdown(sig.String())
		}
	}
}
