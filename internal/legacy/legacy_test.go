package legacy

import (
	"testing"

	"ipleasing/internal/bgp"
	"ipleasing/internal/netutil"
	"ipleasing/internal/synth"
	"ipleasing/internal/whois"
)

func mp(s string) netutil.Prefix { return netutil.MustParsePrefix(s) }

func TestVerdictsDirect(t *testing.T) {
	ds := whois.NewDataset()
	db := ds.DB(whois.RIPE)
	db.Orgs = []*whois.Org{
		{Registry: whois.RIPE, ID: "ORG-LEG", Name: "Legacy Registrant", MntRef: []string{"MNT-LEG"}},
	}
	db.AutNums = []*whois.AutNum{
		{Registry: whois.RIPE, Number: 64500, OrgID: "ORG-LEG"},
	}
	db.InetNums = []*whois.InetNum{
		// Leased: announced by an unrelated AS.
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("192.0.2.0/24")),
			Status: "LEGACY", Portability: whois.Legacy, OrgID: "ORG-LEG", MntBy: []string{"BROKER-MNT"}},
		// Holder-operated: announced by the registrant's AS.
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("198.51.100.0/24")),
			Status: "LEGACY", Portability: whois.Legacy, OrgID: "ORG-LEG", MntBy: []string{"MNT-LEG"}},
		// Unadvertised.
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("203.0.113.0/24")),
			Status: "LEGACY", Portability: whois.Legacy, OrgID: "ORG-LEG"},
		// No expectation: announced but no org/maintainer ASNs at all.
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("100.64.0.0/24")),
			Status: "LEGACY", Portability: whois.Legacy, MntBy: []string{"UNKNOWN-MNT"}},
		// Non-legacy blocks are ignored entirely.
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("10.0.0.0/24")),
			Status: "ASSIGNED PA", Portability: whois.NonPortable},
		// Hyper-specific legacy is dropped.
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("192.0.2.0/26")),
			Status: "LEGACY", Portability: whois.Legacy, OrgID: "ORG-LEG"},
	}
	db.Reindex()

	var tbl bgp.Table
	tbl.AddRoute(mp("192.0.2.0/24"), 65000)    // unrelated hosting AS
	tbl.AddRoute(mp("198.51.100.0/24"), 64500) // the registrant itself
	tbl.AddRoute(mp("100.64.0.0/24"), 65001)

	got := Infer(Inputs{Whois: ds, Table: &tbl})
	if len(got) != 4 {
		t.Fatalf("inferences = %d: %+v", len(got), got)
	}
	want := map[netutil.Prefix]Verdict{
		mp("192.0.2.0/24"):    Leased,
		mp("198.51.100.0/24"): HolderOperated,
		mp("203.0.113.0/24"):  Unadvertised,
		mp("100.64.0.0/24"):   NoExpectation,
	}
	for _, inf := range got {
		if w, ok := want[inf.Prefix]; !ok || inf.Verdict != w {
			t.Errorf("%v: got %v, want %v", inf.Prefix, inf.Verdict, w)
		}
	}
	s := Summarize(got)
	if s.Total != 4 || s.Counts[Leased] != 1 || s.Counts[HolderOperated] != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestRelatedFuncUsed(t *testing.T) {
	ds := whois.NewDataset()
	db := ds.DB(whois.RIPE)
	db.Orgs = []*whois.Org{{Registry: whois.RIPE, ID: "O", Name: "O"}}
	db.AutNums = []*whois.AutNum{{Registry: whois.RIPE, Number: 1, OrgID: "O"}}
	db.InetNums = []*whois.InetNum{{
		Registry: whois.RIPE, Range: netutil.RangeOf(mp("192.0.2.0/24")),
		Status: "LEGACY", Portability: whois.Legacy, OrgID: "O",
	}}
	db.Reindex()
	var tbl bgp.Table
	tbl.AddRoute(mp("192.0.2.0/24"), 2) // customer of AS1, unrelated by equality

	// Without a relatedness function: leased (2 != 1).
	got := Infer(Inputs{Whois: ds, Table: &tbl})
	if got[0].Verdict != Leased {
		t.Fatalf("equality-only verdict = %v", got[0].Verdict)
	}
	// With one that knows 1 and 2 are related: holder-operated.
	rel := func(a, b uint32) bool { return a == b || (a == 2 && b == 1) || (a == 1 && b == 2) }
	got = Infer(Inputs{Whois: ds, Table: &tbl, Related: rel})
	if got[0].Verdict != HolderOperated {
		t.Fatalf("related verdict = %v", got[0].Verdict)
	}
}

// TestSyntheticLegacyRecovery: the extension recovers the planted legacy
// leases the core methodology misses, without flagging holder-operated
// legacy space.
func TestSyntheticLegacyRecovery(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 61, Scale: 0.02})
	p := w.Pipeline()
	got := Infer(Inputs{Whois: w.Whois, Table: p.Table, Related: p.Related})
	if len(got) == 0 {
		t.Fatal("no legacy blocks classified")
	}
	truth := w.TruthByPrefix()
	var tp, fn, fp, tn int
	for _, inf := range got {
		tr, ok := truth[inf.Prefix]
		if !ok || !tr.Legacy {
			t.Fatalf("%v not a planted legacy block", inf.Prefix)
		}
		switch {
		case tr.ActuallyLeased && inf.Verdict == Leased:
			tp++
		case tr.ActuallyLeased:
			fn++
		case inf.Verdict == Leased:
			fp++
		default:
			tn++
		}
	}
	if tp == 0 {
		t.Fatal("extension recovered no legacy leases")
	}
	if fp != 0 {
		t.Errorf("extension flagged %d holder-operated legacy blocks", fp)
	}
	if fn != 0 {
		t.Errorf("extension missed %d legacy leases", fn)
	}
	if tn == 0 {
		t.Error("no holder-operated legacy blocks in world")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Unadvertised: "unadvertised", HolderOperated: "holder-operated",
		Leased: "leased", NoExpectation: "no-expectation", Verdict(9): "invalid",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}
