// Package legacy extends the paper's methodology to legacy address
// space, the extension its §7/§8 proposes as future work.
//
// Legacy blocks predate the RIR system and have no portability status, so
// the core pipeline excludes them (they were the paper's 138 residual
// false negatives). This package applies the closest analogue of the
// §5.2 test that the available data supports: a legacy block announced in
// BGP is inferred leased when its origin AS is related neither to the
// block's registered organisation nor to any organisation sharing one of
// the block's maintainers. Legacy holders that announce their own space
// (or have a customer of theirs do it) stay non-leased.
package legacy

import (
	"sort"

	"ipleasing/internal/bgp"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

// RelatedFunc is the AS-relatedness test, normally core.Pipeline.Related.
type RelatedFunc func(a, b uint32) bool

// Inputs for the legacy inference.
type Inputs struct {
	Whois   *whois.Dataset
	Table   *bgp.Table
	Related RelatedFunc
	// MaxPrefixLen drops hyper-specifics, as in the core tree. 0 = 24.
	MaxPrefixLen uint8
}

func (in Inputs) maxLen() uint8 {
	if in.MaxPrefixLen == 0 {
		return 24
	}
	return in.MaxPrefixLen
}

// Verdict classifies one legacy prefix.
type Verdict int

const (
	// Unadvertised: the block is not originated in BGP.
	Unadvertised Verdict = iota
	// HolderOperated: originated by an AS related to the block's
	// organisation or maintainer-sharing organisations.
	HolderOperated
	// Leased: originated by an unrelated AS.
	Leased
	// NoExpectation: announced, but the registry records give no
	// expected AS to compare against, so no inference is possible.
	NoExpectation
)

var verdictNames = [...]string{"unadvertised", "holder-operated", "leased", "no-expectation"}

func (v Verdict) String() string {
	if v < 0 || int(v) >= len(verdictNames) {
		return "invalid"
	}
	return verdictNames[v]
}

// Inference is one legacy block's result.
type Inference struct {
	Registry     whois.Registry
	Prefix       netutil.Prefix
	Verdict      Verdict
	Origins      []uint32 // BGP origins of the block
	ExpectedASNs []uint32 // ASNs the origin was compared against
	Maintainers  []string
}

// Infer classifies every registered legacy block.
func Infer(in Inputs) []Inference {
	var out []Inference
	for _, reg := range whois.Registries {
		db, ok := in.Whois.DBs[reg]
		if !ok {
			continue
		}
		expected := expectedASNIndex(db)
		for _, inet := range db.InetNums {
			if inet.Portability != whois.Legacy {
				continue
			}
			for _, p := range inet.Prefixes() {
				if p.Len > in.maxLen() {
					continue
				}
				out = append(out, classify(in, db, expected, inet, p))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Registry != out[j].Registry {
			return out[i].Registry < out[j].Registry
		}
		return out[i].Prefix.Compare(out[j].Prefix) < 0
	})
	return out
}

// expectedASNIndex maps each maintainer handle to the ASNs of every
// organisation referencing that handle — the "who should be announcing
// blocks under this maintainer" lookup.
func expectedASNIndex(db *whois.Database) map[string][]uint32 {
	byMnt := make(map[string][]uint32)
	for _, org := range db.Orgs {
		asns := db.ASNsOfOrg(org.ID)
		if len(asns) == 0 {
			continue
		}
		for _, m := range org.MntRef {
			byMnt[m] = append(byMnt[m], asns...)
		}
	}
	return byMnt
}

func classify(in Inputs, db *whois.Database, byMnt map[string][]uint32, inet *whois.InetNum, p netutil.Prefix) Inference {
	inf := Inference{
		Registry:    db.Registry,
		Prefix:      p,
		Maintainers: inet.MntBy,
	}
	if in.Table != nil {
		inf.Origins = in.Table.Origins(p)
	}
	// Expected ASNs: the block org's registered ASNs plus the ASNs of
	// organisations sharing a maintainer with the block.
	seen := make(map[uint32]bool)
	add := func(asns []uint32) {
		for _, a := range asns {
			if !seen[a] {
				seen[a] = true
				inf.ExpectedASNs = append(inf.ExpectedASNs, a)
			}
		}
	}
	if inet.OrgID != "" {
		add(db.ASNsOfOrg(inet.OrgID))
	}
	for _, m := range inet.MntBy {
		add(byMnt[m])
	}
	sort.Slice(inf.ExpectedASNs, func(i, j int) bool { return inf.ExpectedASNs[i] < inf.ExpectedASNs[j] })

	switch {
	case len(inf.Origins) == 0:
		inf.Verdict = Unadvertised
	case len(inf.ExpectedASNs) == 0:
		inf.Verdict = NoExpectation
	default:
		related := false
		for _, o := range inf.Origins {
			for _, e := range inf.ExpectedASNs {
				if in.Related == nil {
					if o == e {
						related = true
					}
				} else if in.Related(o, e) {
					related = true
				}
			}
		}
		if related {
			inf.Verdict = HolderOperated
		} else {
			inf.Verdict = Leased
		}
	}
	return inf
}

// Summary aggregates verdict counts.
type Summary struct {
	Counts [4]int
	Total  int
}

// Summarize tallies a result set.
func Summarize(infs []Inference) Summary {
	var s Summary
	for _, inf := range infs {
		s.Counts[inf.Verdict]++
		s.Total++
	}
	return s
}
