package snapstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ipleasing/internal/serve"
	"ipleasing/internal/telemetry"
)

// manifestName is the pointer file naming the current generation. It is
// a hint, not the source of truth: recovery scans every generation file
// and validates contents, so a torn or stale manifest costs at most a
// few extra decode attempts, never a wrong snapshot.
const manifestName = "MANIFEST"

// ErrNoSnapshot reports a store directory holding no loadable
// generation — empty, or every candidate rejected as corrupt.
var ErrNoSnapshot = errors.New("snapstore: no loadable snapshot generation")

// Metrics holds the persistence and replication instruments. A nil
// *Metrics discards every observation, so wiring telemetry is optional
// everywhere in this package.
type Metrics struct {
	publish    *telemetry.CounterVec
	load       *telemetry.CounterVec
	fetch      *telemetry.CounterVec
	bytes      *telemetry.Gauge
	lag        *telemetry.Gauge
	fetchBytes *telemetry.Counter
	loadMode   *telemetry.CounterVec
	mmapActive *telemetry.Gauge
}

// NewMetrics registers the snapshot instrument families on a registry:
// snapshot_publish_total{outcome}, snapshot_load_total{outcome},
// replica_fetch_total{outcome}, snapshot_bytes, and
// replica_generation_lag.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		publish: r.CounterVec("snapshot_publish_total",
			"Snapshot store publish attempts by outcome.", "outcome"),
		load: r.CounterVec("snapshot_load_total",
			"Snapshot store load attempts by outcome.", "outcome"),
		fetch: r.CounterVec("replica_fetch_total",
			"Replica snapshot fetch attempts by outcome.", "outcome"),
		bytes: r.Gauge("snapshot_bytes",
			"Size in bytes of the most recently published or loaded snapshot."),
		lag: r.Gauge("replica_generation_lag",
			"Publisher generation minus the replica's serving generation."),
		fetchBytes: r.Counter("replica_fetch_bytes_total",
			"Snapshot body bytes downloaded by the replica fetcher, counted while streaming."),
		loadMode: r.CounterVec("snapshot_load_mode_total",
			"Snapshot open operations by load mode (mmap or heap).", "mode"),
		mmapActive: r.Gauge("snapshot_mmap_active",
			"Live snapshot memory mappings (serving or draining)."),
	}
}

func (m *Metrics) observePublish(outcome string) {
	if m != nil {
		m.publish.With(outcome).Inc()
	}
}

func (m *Metrics) observeLoad(outcome string) {
	if m != nil {
		m.load.With(outcome).Inc()
	}
}

func (m *Metrics) observeFetch(outcome string) {
	if m != nil {
		m.fetch.With(outcome).Inc()
	}
}

func (m *Metrics) observeBytes(n int) {
	if m != nil {
		m.bytes.Set(float64(n))
	}
}

// ObserveLag sets the replica_generation_lag gauge; the replica poll
// loop (cmd/leased) refreshes it on every probe and fetch.
func (m *Metrics) ObserveLag(lag float64) {
	if m != nil {
		m.lag.Set(lag)
	}
}

func (m *Metrics) observeFetchBytes(n int) {
	if m != nil {
		m.fetchBytes.Add(uint64(n))
	}
}

func (m *Metrics) observeLoadMode(mode string) {
	if m != nil {
		m.loadMode.With(mode).Inc()
	}
}

func (m *Metrics) observeMmapActive(d float64) {
	if m != nil {
		m.mmapActive.Add(d)
	}
}

// StoreOptions configures Open. The zero value keeps 4 generations and
// observes nothing.
type StoreOptions struct {
	// Keep bounds retained generations; older ones are pruned after each
	// publish. 0 means 4; negative keeps everything.
	Keep    int
	Logger  *telemetry.Logger
	Metrics *Metrics
}

// Store is a crash-safe on-disk snapshot store: one directory holding
// generation files gen-<hex>.snap plus a MANIFEST pointer. Publication
// is write-temp / fsync / rename / fsync-dir, so a generation either
// exists completely or not at all; a crash at any instant leaves the
// previous generations untouched and recovery scans newest-first past
// anything torn.
type Store struct {
	dir     string
	keep    int
	log     *telemetry.Logger
	metrics *Metrics
}

// Open prepares a snapshot store rooted at dir, creating the directory
// if needed.
func Open(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: open %s: %w", dir, err)
	}
	keep := opts.Keep
	if keep == 0 {
		keep = 4
	}
	return &Store{dir: dir, keep: keep, log: opts.Logger, metrics: opts.Metrics}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func genFileName(gen uint64) string { return fmt.Sprintf("gen-%016x.snap", gen) }

// parseGenName extracts the generation from a gen-<hex>.snap filename.
func parseGenName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), ".snap")
	if len(hex) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Publish encodes a serving snapshot as generation gen and durably
// publishes it.
func (st *Store) Publish(snap *serve.Snapshot, gen uint64) error {
	return st.PublishEncoded(Encode(snap, gen))
}

// PublishEncoded durably publishes an already-encoded snapshot under
// the generation stamped in its header: validate, write to a temp file,
// fsync, rename into place, fsync the directory, then repoint MANIFEST
// the same way and prune old generations. A crash between any two steps
// leaves the store loadable — at worst the new generation exists
// without a manifest pointing at it, which recovery's scan finds
// anyway.
func (st *Store) PublishEncoded(data []byte) error {
	gen, err := ReadGeneration(data)
	if err != nil {
		st.metrics.observePublish("error")
		return fmt.Errorf("snapstore: refusing to publish: %w", err)
	}
	name := genFileName(gen)
	if err := st.writeAtomic(name, data); err != nil {
		st.metrics.observePublish("error")
		st.log.Error("snapshot publish failed", "generation", gen, "err", err)
		return err
	}
	// The generation file is durable; a manifest failure from here on
	// degrades recovery to the scan path but must not fail the publish.
	if err := st.writeAtomic(manifestName, []byte(name+"\n")); err != nil {
		st.log.Warn("snapshot manifest update failed", "generation", gen, "err", err)
	}
	st.prune(gen)
	st.metrics.observePublish("ok")
	st.metrics.observeBytes(len(data))
	st.log.Info("snapshot published", "generation", gen, "bytes", len(data), "file", name)
	return nil
}

// writeAtomic writes name under the store directory via a unique temp
// file, fsync, and atomic rename, then fsyncs the directory so the
// rename itself is durable.
func (st *Store) writeAtomic(name string, data []byte) error {
	f, err := os.CreateTemp(st.dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("snapstore: create temp for %s: %w", name, err)
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("snapstore: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("snapstore: fsync %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapstore: close %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, name)); err != nil {
		return fmt.Errorf("snapstore: rename %s: %w", name, err)
	}
	return st.syncDir()
}

func (st *Store) syncDir() error {
	d, err := os.Open(st.dir)
	if err != nil {
		return fmt.Errorf("snapstore: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapstore: fsync dir: %w", err)
	}
	return nil
}

// generations lists generation files present on disk, newest first,
// ordered by the generation encoded in the filename. Stray temp files
// and unparseable names are ignored. The name is not trusted for
// anything beyond ordering — loading decodes and verifies contents.
func (st *Store) generations() ([]uint64, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("snapstore: read dir: %w", err)
	}
	var gens []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if gen, ok := parseGenName(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// Generations lists on-disk generation numbers, newest first.
func (st *Store) Generations() ([]uint64, error) { return st.generations() }

// NewestGeneration returns the highest generation number present on
// disk (loadable or not — callers use it to seed a monotonic counter),
// and whether any generation file exists.
func (st *Store) NewestGeneration() (uint64, bool) {
	gens, err := st.generations()
	if err != nil || len(gens) == 0 {
		return 0, false
	}
	return gens[0], true
}

// prune removes generations beyond the retention bound, never the one
// just published. Prune failures are logged, not returned: losing an
// old generation to a full disk must not fail a successful publish.
func (st *Store) prune(current uint64) {
	if st.keep < 0 {
		return
	}
	gens, err := st.generations()
	if err != nil {
		st.log.Warn("snapshot prune skipped", "err", err)
		return
	}
	kept := 0
	for _, gen := range gens {
		if gen == current || kept < st.keep {
			kept++
			continue
		}
		if err := os.Remove(filepath.Join(st.dir, genFileName(gen))); err != nil {
			st.log.Warn("snapshot prune failed", "generation", gen, "err", err)
		} else {
			st.log.Info("snapshot pruned", "generation", gen)
		}
	}
}

// LoadCurrent loads the newest valid generation: every generation file
// is tried newest-first, and any torn, truncated, bit-flipped, or
// wrong-version candidate is rejected by its checksums and skipped —
// falling back generation by generation until one validates. Returns
// ErrNoSnapshot when nothing on disk is loadable (the caller falls back
// to a full dataset load).
func (st *Store) LoadCurrent() (*serve.Snapshot, uint64, error) {
	snap, gen, _, err := st.LoadCurrentEncoded()
	return snap, gen, err
}

// LoadCurrentEncoded is LoadCurrent returning also the raw encoded
// bytes of the loaded generation, so a publisher cold-starting from its
// own store can serve /snapshot/current without re-encoding.
func (st *Store) LoadCurrentEncoded() (*serve.Snapshot, uint64, []byte, error) {
	gens, err := st.generations()
	if err != nil {
		st.metrics.observeLoad("error")
		return nil, 0, nil, err
	}
	for _, gen := range gens {
		name := genFileName(gen)
		data, err := os.ReadFile(filepath.Join(st.dir, name))
		if err != nil {
			st.metrics.observeLoad("error")
			st.log.Warn("snapshot unreadable, trying older generation", "file", name, "err", err)
			continue
		}
		snap, fileGen, err := Decode(data)
		if err != nil {
			st.metrics.observeLoad("corrupt")
			st.log.Warn("snapshot rejected, trying older generation", "file", name, "err", err)
			continue
		}
		st.metrics.observeLoad("ok")
		st.metrics.observeBytes(len(data))
		st.log.Info("snapshot loaded", "generation", fileGen, "bytes", len(data), "file", name)
		return snap, fileGen, data, nil
	}
	st.metrics.observeLoad("missing")
	return nil, 0, nil, fmt.Errorf("%w in %s (%d candidates)", ErrNoSnapshot, st.dir, len(gens))
}

// LoadCurrentOpen is LoadCurrent through OpenFile: the newest valid
// generation is opened for serving — memory-mapped when the file,
// platform, and options allow, heap-decoded otherwise — falling back
// generation by generation past anything unreadable or corrupt.
// Returns ErrNoSnapshot when nothing on disk is loadable.
func (st *Store) LoadCurrentOpen(opts OpenOptions) (*Loaded, error) {
	if opts.Logger == nil {
		opts.Logger = st.log
	}
	if opts.Metrics == nil {
		opts.Metrics = st.metrics
	}
	gens, err := st.generations()
	if err != nil {
		st.metrics.observeLoad("error")
		return nil, err
	}
	for _, gen := range gens {
		name := genFileName(gen)
		ld, err := OpenFile(filepath.Join(st.dir, name), opts)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				st.metrics.observeLoad("corrupt")
			} else {
				st.metrics.observeLoad("error")
			}
			st.log.Warn("snapshot rejected, trying older generation", "file", name, "err", err)
			continue
		}
		st.metrics.observeLoad("ok")
		st.metrics.observeBytes(len(ld.Data))
		st.log.Info("snapshot opened", "generation", ld.Gen, "bytes", len(ld.Data),
			"file", name, "load_mode", ld.Mode)
		return ld, nil
	}
	st.metrics.observeLoad("missing")
	return nil, fmt.Errorf("%w in %s (%d candidates)", ErrNoSnapshot, st.dir, len(gens))
}

// AdoptFile durably adopts an already-written snapshot file — a
// replica fetch streamed to disk — as generation gen: rename into
// place, fsync the directory, repoint MANIFEST, prune. The rename
// requires tmpPath to be on the store's filesystem (FetchToFile writes
// its temp inside the store directory for exactly this reason), and
// the caller must have fsynced the file and verified its checksums.
// Returns the adopted generation file's path.
func (st *Store) AdoptFile(tmpPath string, gen uint64) (string, error) {
	name := genFileName(gen)
	dst := filepath.Join(st.dir, name)
	if err := os.Rename(tmpPath, dst); err != nil {
		st.metrics.observePublish("error")
		return "", fmt.Errorf("snapstore: adopt %s: %w", tmpPath, err)
	}
	if err := st.syncDir(); err != nil {
		st.metrics.observePublish("error")
		return "", err
	}
	if err := st.writeAtomic(manifestName, []byte(name+"\n")); err != nil {
		st.log.Warn("snapshot manifest update failed", "generation", gen, "err", err)
	}
	st.prune(gen)
	st.metrics.observePublish("ok")
	st.log.Info("snapshot adopted", "generation", gen, "file", name)
	return dst, nil
}
