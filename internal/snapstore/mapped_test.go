package snapstore

// Tests for the zero-copy mmap serving path: open-time validation,
// heap fallback for legacy files, the refcounted unmap-after-drain
// lifecycle, and byte-identity between the mapped and materializing
// decoders.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ipleasing/internal/serve"
)

func writeSnapFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "gen.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenFileServesIdentical proves the mapped snapshot answers every
// query surface byte-identically to the in-memory original, and that
// releasing the serving snapshot's reference unmaps the file.
func TestOpenFileServesIdentical(t *testing.T) {
	want := testSnapshot(t)
	path := writeSnapFile(t, Encode(want, 11))
	ld, err := OpenFile(path, OpenOptions{})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if ld.Gen != 11 {
		t.Fatalf("generation = %d, want 11", ld.Gen)
	}
	if mmapSupported {
		if ld.Mode != serve.LoadModeMmap || ld.Backing == nil {
			t.Fatalf("mode %q backing %v, want mmap-backed on this platform", ld.Mode, ld.Backing)
		}
		if ld.Snap.LoadMode() != serve.LoadModeMmap {
			t.Fatalf("snapshot load mode %q, want %q", ld.Snap.LoadMode(), serve.LoadModeMmap)
		}
	}
	assertServesIdentical(t, "mapped", ld.Snap, want)
	if ld.Backing != nil {
		if !ld.Backing.Active() {
			t.Fatal("mapping inactive while the snapshot serves")
		}
		ld.Snap.Release() // the creation reference
		if ld.Backing.Active() {
			t.Fatal("mapping still active after the last reference")
		}
	}
}

// TestOpenFileForceHeap pins the materializing path and proves it
// serves the same answers with no backing to manage.
func TestOpenFileForceHeap(t *testing.T) {
	want := testSnapshot(t)
	path := writeSnapFile(t, Encode(want, 12))
	ld, err := OpenFile(path, OpenOptions{ForceHeap: true})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if ld.Mode != serve.LoadModeHeap || ld.Backing != nil {
		t.Fatalf("mode %q backing %v, want plain heap decode", ld.Mode, ld.Backing)
	}
	assertServesIdentical(t, "heap", ld.Snap, want)
}

// TestOpenFileLegacyFallsBackToHeap: a previous-version generation file
// loads — one version back is the compatibility contract — but through
// the materializing decoder, never as views.
func TestOpenFileLegacyFallsBackToHeap(t *testing.T) {
	want := testSnapshot(t)
	path := writeSnapFile(t, EncodeLegacy(want, 13))
	ld, err := OpenFile(path, OpenOptions{})
	if err != nil {
		t.Fatalf("OpenFile on legacy file: %v", err)
	}
	if ld.Mode != serve.LoadModeHeap || ld.Backing != nil {
		t.Fatalf("mode %q backing %v, want heap fallback for a v2 file", ld.Mode, ld.Backing)
	}
	if ld.Gen != 13 {
		t.Fatalf("generation = %d, want 13", ld.Gen)
	}
	assertServesIdentical(t, "legacy", ld.Snap, want)
}

// TestMappedUnmapWaitsForDrain simulates the server's swap: with
// requests in flight (snapshot references held), dropping the creation
// reference must keep the mapping readable; only the last in-flight
// release unmaps.
func TestMappedUnmapWaitsForDrain(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	want := testSnapshot(t)
	path := writeSnapFile(t, Encode(want, 21))
	ld, err := OpenFile(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := ld.Snap
	// Two in-flight requests pin the snapshot.
	if !snap.Acquire() || !snap.Acquire() {
		t.Fatal("Acquire failed on a live snapshot")
	}
	// The swap path releases the creation reference after installing a
	// successor.
	snap.Release()
	if !ld.Backing.Active() {
		t.Fatal("mapping unmapped with requests in flight")
	}
	// The draining requests still read mapped memory.
	if len(snap.Table1()) == 0 {
		t.Fatal("Table1 empty on a drained-to snapshot")
	}
	infs := snap.FlatInferences()
	_ = snap.LookupAddr(infs[0].Prefix.First())
	snap.Release()
	if !ld.Backing.Active() {
		t.Fatal("mapping unmapped before the last in-flight request finished")
	}
	snap.Release()
	if ld.Backing.Active() {
		t.Fatal("mapping still active after the drain completed")
	}
	if snap.Acquire() {
		t.Fatal("Acquire succeeded on a fully released snapshot")
	}
}

// TestSwapUnderLoadDrainsOldMappings drives a serve.Server through
// repeated reloads of mmap-backed generations while concurrent clients
// hammer the data endpoints (run under -race in CI). Every response
// must complete against a coherent mapping, and once the load stops,
// every superseded generation's mapping must be unmapped — the old
// mapping lives exactly until its last in-flight request drains.
func TestSwapUnderLoadDrainsOldMappings(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	want := testSnapshot(t)
	dir := t.TempDir()
	const gens = 5
	paths := make([]string, gens)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("g%d.snap", i))
		if err := os.WriteFile(paths[i], Encode(want, uint64(i+1)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var backings []*Mapped
	next := 0
	build := func(ctx context.Context) (*serve.Snapshot, error) {
		mu.Lock()
		i := next % gens
		next++
		mu.Unlock()
		ld, err := OpenFile(paths[i], OpenOptions{})
		if err != nil {
			return nil, err
		}
		if ld.Backing == nil {
			return nil, errors.New("expected a mapped load")
		}
		mu.Lock()
		backings = append(backings, ld.Backing)
		mu.Unlock()
		return ld.Snap, nil
	}
	s := serve.New(serve.Config{Build: build})
	ctx := context.Background()
	if err := s.Reload(ctx, true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	probe := fmt.Sprintf("/lookup?ip=%v", want.FlatInferences()[0].Prefix.First())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := srv.Client().Get(srv.URL + probe)
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 || len(body) == 0 {
					t.Errorf("status %d body %d bytes mid-swap", resp.StatusCode, len(body))
					return
				}
			}
		}()
	}
	for r := 0; r < 8; r++ {
		if err := s.Reload(ctx, true); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(backings) < 2 {
		t.Fatalf("only %d generations opened", len(backings))
	}
	for i, b := range backings[:len(backings)-1] {
		if b.Active() {
			t.Errorf("superseded mapping %d still active after drain", i)
		}
	}
	if !backings[len(backings)-1].Active() {
		t.Error("serving generation's mapping was unmapped")
	}
}
