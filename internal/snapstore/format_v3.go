package snapstore

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"unsafe"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/serve"
	"ipleasing/internal/whois"
)

// Format v3: the relocatable, mmap-servable layout.
//
// Where v2 encoded the arena as a varint stream that had to be decoded
// record by record (and every string materialized), v3 lays the same
// data out as fixed-width, offset-addressed sections that the serving
// layer wraps as views over the raw bytes:
//
//	strtab   u32 count, u32 blobLen, count×(u32 off, u32 len), blob
//	u32slab  u32 count, 4 zero pad, count×u32 — every RootASNs/
//	         RootOrigins/LeafOrigins run, concatenated
//	strrefs  u32 count, 4 zero pad, count×u32 string IDs — every
//	         Facilitators run, concatenated
//	records  u32 count, 4 zero pad, count×56-byte inference records
//	         addressing the slabs by (offset, length)
//	lpm      netutil.AppendNative: nodes in the in-memory layout
//	byasn    u32 entries, u32 slabLen, entries×(u32 asn, u32 off,
//	         u32 cnt) sorted by ASN, then slabLen×i32 arena indexes
//
// Every payload sits at an 8-aligned file offset, so on a
// little-endian host with the expected struct geometry the fixed-width
// arrays are aliased in place (unsafe.Slice / unsafe.String) — zero
// copies, near-zero allocations — and on any other host the same bytes
// decode through a copying fallback. Integrity is validate-then-trust:
// parseFile has already CRC-checked every section before openV3 runs,
// and openV3 bounds-checks every offset/length pair before any view is
// handed to the serving layer, so a damaged file fails at open and a
// valid one is never range-checked again at request time.

// recordSize is one fixed-width arena record: 13 u32 fields (prefix
// base, root base, 3 string IDs, 4 slab runs as off/len pairs) plus
// registry, category, prefix length, root length bytes.
const recordSize = 56

// hostLittleEndian reports whether u32 views can alias little-endian
// payload bytes directly.
var hostLittleEndian = func() bool {
	probe := uint32(1)
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// ---- v3 encoding ----

// encodeV3Arena lays the flat inference arena out as the four
// relocatable sections. String IDs are assigned in first-appearance
// order and deduplicated, so the encoding is deterministic for a given
// arena and the decoder can intern each distinct string exactly once.
func encodeV3Arena(infs []core.Inference) (strtab, u32slab, strrefs, records []byte) {
	ids := make(map[string]uint32)
	var strs []string
	blobLen := 0
	strID := func(s string) uint32 {
		if id, ok := ids[s]; ok {
			return id
		}
		id := uint32(len(strs))
		ids[s] = id
		strs = append(strs, s)
		blobLen += len(s)
		return id
	}
	var slab []uint32
	var refs []uint32
	run := func(vs []uint32) (off, cnt uint32) {
		off = uint32(len(slab))
		slab = append(slab, vs...)
		return off, uint32(len(vs))
	}

	records = make([]byte, 0, 8+recordSize*len(infs))
	records = appendU32(records, uint32(len(infs)))
	records = append(records, 0, 0, 0, 0)
	for i := range infs {
		inf := &infs[i]
		raOff, raCnt := run(inf.RootASNs)
		roOff, roCnt := run(inf.RootOrigins)
		loOff, loCnt := run(inf.LeafOrigins)
		facOff := uint32(len(refs))
		for _, f := range inf.Facilitators {
			refs = append(refs, strID(f))
		}
		records = appendU32(records, uint32(inf.Prefix.Base))
		records = appendU32(records, uint32(inf.Root.Base))
		records = appendU32(records, strID(inf.HolderOrg))
		records = appendU32(records, strID(inf.NetName))
		records = appendU32(records, strID(inf.Country))
		records = appendU32(records, raOff)
		records = appendU32(records, raCnt)
		records = appendU32(records, roOff)
		records = appendU32(records, roCnt)
		records = appendU32(records, loOff)
		records = appendU32(records, loCnt)
		records = appendU32(records, facOff)
		records = appendU32(records, uint32(len(inf.Facilitators)))
		records = append(records, byte(inf.Registry), byte(inf.Category), inf.Prefix.Len, inf.Root.Len)
	}

	strtab = make([]byte, 0, 8+8*len(strs)+blobLen)
	strtab = appendU32(strtab, uint32(len(strs)))
	strtab = appendU32(strtab, uint32(blobLen))
	off := 0
	for _, s := range strs {
		strtab = appendU32(strtab, uint32(off))
		strtab = appendU32(strtab, uint32(len(s)))
		off += len(s)
	}
	for _, s := range strs {
		strtab = append(strtab, s...)
	}

	u32slab = make([]byte, 0, 8+4*len(slab))
	u32slab = appendU32(u32slab, uint32(len(slab)))
	u32slab = append(u32slab, 0, 0, 0, 0)
	for _, v := range slab {
		u32slab = appendU32(u32slab, v)
	}

	strrefs = make([]byte, 0, 8+4*len(refs))
	strrefs = appendU32(strrefs, uint32(len(refs)))
	strrefs = append(strrefs, 0, 0, 0, 0)
	for _, v := range refs {
		strrefs = appendU32(strrefs, v)
	}
	return strtab, u32slab, strrefs, records
}

// encodeByASNNative flattens the ASN index into sorted fixed-width
// entries over one arena-index slab. Empty lists are dropped (they
// carry no information and the decoder rejects empty runs).
func encodeByASNNative(byASN map[uint32][]int32) []byte {
	asns := make([]uint32, 0, len(byASN))
	slabLen := 0
	for asn, list := range byASN {
		if len(list) == 0 {
			continue
		}
		asns = append(asns, asn)
		slabLen += len(list)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	b := make([]byte, 0, 8+12*len(asns)+4*slabLen)
	b = appendU32(b, uint32(len(asns)))
	b = appendU32(b, uint32(slabLen))
	off := 0
	for _, asn := range asns {
		b = appendU32(b, asn)
		b = appendU32(b, uint32(off))
		b = appendU32(b, uint32(len(byASN[asn])))
		off += len(byASN[asn])
	}
	for _, asn := range asns {
		for _, idx := range byASN[asn] {
			b = appendU32(b, uint32(idx))
		}
	}
	return b
}

// ---- v3 decoding (view construction) ----

// asU32View returns b's first n little-endian u32s, aliasing b when
// the host layout permits and copying otherwise. The caller has
// already verified len(b) >= 4n.
func asU32View(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// asI32View is asU32View for int32 (same bit layout).
func asI32View(b []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// asnEntryLayoutMatches gates aliasing []serve.ASNViewEntry over raw
// (asn, off, cnt) u32 triples.
var asnEntryLayoutMatches = hostLittleEndian &&
	unsafe.Sizeof(serve.ASNViewEntry{}) == 12 &&
	unsafe.Offsetof(serve.ASNViewEntry{}.ASN) == 0 &&
	unsafe.Offsetof(serve.ASNViewEntry{}.Off) == 4 &&
	unsafe.Offsetof(serve.ASNViewEntry{}.Cnt) == 8

func asASNEntryView(b []byte, n int) []serve.ASNViewEntry {
	if n == 0 {
		return nil
	}
	if asnEntryLayoutMatches && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(serve.ASNViewEntry{}) == 0 {
		return unsafe.Slice((*serve.ASNViewEntry)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]serve.ASNViewEntry, n)
	for i := range out {
		out[i] = serve.ASNViewEntry{
			ASN: binary.LittleEndian.Uint32(b[12*i:]),
			Off: binary.LittleEndian.Uint32(b[12*i+4:]),
			Cnt: binary.LittleEndian.Uint32(b[12*i+8:]),
		}
	}
	return out
}

// strTable is a view over the interned string table: 2n off/len u32
// pairs plus the blob they address, both aliasing the payload. Unlike
// a materialized []string it allocates nothing per string — resolving
// an ID is two loads and an unsafe.String header, done lazily at the
// record that references it.
type strTable struct {
	entries []uint32 // n (off, len) pairs, interleaved
	blob    []byte
	n       uint32
}

// str resolves an already-range-checked string ID (callers compare
// against t.n first; decodeStrTab proved every entry's run is inside
// the blob, so no re-validation happens here).
func (t *strTable) str(id uint32) string {
	off, ln := t.entries[2*id], t.entries[2*id+1]
	if ln == 0 {
		return ""
	}
	return unsafe.String(&t.blob[off], int(ln))
}

// decodeStrTab validates the interned string table and wraps it as a
// strTable view. Every entry's (off, len) run is bounds-checked here,
// eagerly, so a damaged table fails at open even if no record ever
// resolves the rotten entry — str can then trust any in-range ID.
func decodeStrTab(payload []byte) (strTable, *CorruptError) {
	if len(payload) < 8 {
		return strTable{}, corrupt("strtab", fmt.Sprintf("payload of %d bytes has no header", len(payload)), ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(payload[0:4])
	blobLen := binary.LittleEndian.Uint32(payload[4:8])
	need := 8 + 8*uint64(n) + uint64(blobLen)
	if uint64(len(payload)) != need {
		return strTable{}, corrupt("strtab", fmt.Sprintf("payload is %d bytes, want %d for %d strings + %d blob",
			len(payload), need, n, blobLen), ErrTruncated)
	}
	entries := asU32View(payload[8:8+8*n], int(2*n))
	blob := payload[8+8*n:]
	for i := uint32(0); i < n; i++ {
		off, ln := entries[2*i], entries[2*i+1]
		if uint64(off)+uint64(ln) > uint64(blobLen) {
			return strTable{}, corrupt("strtab", fmt.Sprintf("string %d run [%d,%d) outside blob of %d", i, off, uint64(off)+uint64(ln), blobLen), nil)
		}
	}
	return strTable{entries: entries, blob: blob, n: n}, nil
}

// decodeFlatU32s parses a "u32 count, 4 pad, count×u32" section.
func decodeFlatU32s(payload []byte, sec string) ([]uint32, *CorruptError) {
	if len(payload) < 8 {
		return nil, corrupt(sec, fmt.Sprintf("payload of %d bytes has no header", len(payload)), ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(payload[0:4])
	if uint64(len(payload)) != 8+4*uint64(n) {
		return nil, corrupt(sec, fmt.Sprintf("payload is %d bytes, want %d for %d elements", len(payload), 8+4*uint64(n), n), ErrTruncated)
	}
	return asU32View(payload[8:], int(n)), nil
}

// recordsCount header-validates the records section and returns the
// record count. Split from the fill so openV3 can overlap the arena
// allocation (zeroing megabytes) with the string-table and slab
// decodes it does not depend on.
func recordsCount(payload []byte, arenaLen int) (uint32, *CorruptError) {
	if len(payload) < 8 {
		return 0, corrupt("records", fmt.Sprintf("payload of %d bytes has no header", len(payload)), ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(payload[0:4])
	if uint64(len(payload)) != 8+recordSize*uint64(n) {
		return 0, corrupt("records", fmt.Sprintf("payload is %d bytes, want %d for %d records", len(payload), 8+recordSize*uint64(n), n), ErrTruncated)
	}
	if int(n) != arenaLen {
		return 0, corrupt("records", fmt.Sprintf("arena holds %d inferences, meta says %d", n, arenaLen), nil)
	}
	return n, nil
}

// decodeRecordsInto fills a pre-allocated arena from the records
// payload, sharding the fill across a few goroutines: records are
// fixed-width and independent, each worker owns a contiguous chunk of
// infs, and every input is immutable, so the split is race-free by
// construction. The first error by record order wins, keeping rejects
// deterministic regardless of worker interleaving. The returned region
// runs are the fill's by-product tally — workers' chunk runs stitched
// back together at the seams — so the caller can build a core.Result
// without a second pass over the arena.
func decodeRecordsInto(infs []core.Inference, payload []byte, tbl *strTable, slab []uint32, refs []uint32) ([]core.RegionRun, *CorruptError) {
	// Facilitator runs resolve through one shared string slab so the
	// per-record slices are allocation-free sub-slices.
	facStrs := make([]string, len(refs))
	for i, id := range refs {
		if id >= tbl.n {
			return nil, corrupt("strrefs", fmt.Sprintf("reference %d names string %d outside table of %d", i, id, tbl.n), nil)
		}
		facStrs[i] = tbl.str(id)
	}
	n := uint32(len(infs))
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	const minChunk = 2048
	if int(n) < 2*minChunk || workers < 2 {
		return fillRecords(infs, 0, n, payload, tbl, slab, facStrs)
	}
	chunk := (n + uint32(workers) - 1) / uint32(workers)
	chunkRuns := make([][]core.RegionRun, workers)
	errs := make([]*CorruptError, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := uint32(w) * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, lo, hi uint32) {
			defer wg.Done()
			chunkRuns[w], errs[w] = fillRecords(infs, lo, hi, payload, tbl, slab, facStrs)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, cerr := range errs {
		if cerr != nil {
			return nil, cerr
		}
	}
	// Stitch: a registry run split across a chunk boundary comes back as
	// two adjacent runs with the same registry — merge them so the result
	// is identical to a single-worker pass.
	var runs []core.RegionRun
	for _, rs := range chunkRuns {
		for _, r := range rs {
			if len(runs) > 0 {
				last := &runs[len(runs)-1]
				if last.Registry == r.Registry && last.Hi == r.Lo {
					last.Hi = r.Hi
					for c := range last.Counts {
						last.Counts[c] += r.Counts[c]
					}
					continue
				}
			}
			runs = append(runs, r)
		}
	}
	return runs, nil
}

// fillRecords decodes records [lo, hi) into their arena slots,
// tallying registry runs and category counts as it goes (the record
// walk the Result reconstruction would otherwise repeat). The loop
// runs once per record on every cold start, so it is written for the
// optimizer: a capped 56-byte reslice hoists all the field bounds
// checks, string and slab lookups are inlined rather than routed
// through closures, and the slow corrupt-formatting paths live in
// noinline helpers so the hot body stays small. Registry bytes are
// structurally validated downstream by core.ResultFromRuns (known
// registry, canonical order); category bytes index the counts array,
// so they are rejected here.
func fillRecords(infs []core.Inference, lo, hi uint32, payload []byte, tbl *strTable, slab []uint32, facStrs []string) ([]core.RegionRun, *CorruptError) {
	nStr, nSlab, nFac := tbl.n, uint64(len(slab)), uint64(len(facStrs))
	entries, blob := tbl.entries, tbl.blob
	runs := make([]core.RegionRun, 0, 8)
	var cur core.RegionRun
	curReg := -1
	cursor := payload[8+recordSize*uint64(lo):]
	for i := lo; i < hi; i++ {
		rec := cursor[:recordSize:recordSize]
		cursor = cursor[recordSize:]
		inf := &infs[i]
		inf.Prefix = netutil.Prefix{Base: netutil.Addr(binary.LittleEndian.Uint32(rec[0:])), Len: rec[54]}
		inf.Root = netutil.Prefix{Base: netutil.Addr(binary.LittleEndian.Uint32(rec[4:])), Len: rec[55]}
		reg, cat := rec[52], rec[53]
		inf.Registry = whois.Registry(reg)
		inf.Category = core.Category(cat)
		if int(cat) >= core.NumCategories {
			return nil, corruptRecordCat(i, cat)
		}
		if int(reg) != curReg {
			if curReg >= 0 {
				cur.Hi = int(i)
				runs = append(runs, cur)
			}
			curReg = int(reg)
			cur = core.RegionRun{Registry: whois.Registry(reg), Lo: int(i)}
		}
		cur.Counts[cat]++
		holder := binary.LittleEndian.Uint32(rec[8:])
		netname := binary.LittleEndian.Uint32(rec[12:])
		country := binary.LittleEndian.Uint32(rec[16:])
		if holder >= nStr || netname >= nStr || country >= nStr {
			return nil, corruptRecordStr(i, holder, netname, country, nStr)
		}
		inf.HolderOrg = internStr(entries, blob, holder)
		inf.NetName = internStr(entries, blob, netname)
		inf.Country = internStr(entries, blob, country)
		aOff := uint64(binary.LittleEndian.Uint32(rec[20:]))
		aCnt := uint64(binary.LittleEndian.Uint32(rec[24:]))
		rOff := uint64(binary.LittleEndian.Uint32(rec[28:]))
		rCnt := uint64(binary.LittleEndian.Uint32(rec[32:]))
		lOff := uint64(binary.LittleEndian.Uint32(rec[36:]))
		lCnt := uint64(binary.LittleEndian.Uint32(rec[40:]))
		if aOff+aCnt > nSlab || rOff+rCnt > nSlab || lOff+lCnt > nSlab {
			return nil, corruptRecordRun(i, nSlab, aOff, aCnt, rOff, rCnt, lOff, lCnt)
		}
		if aCnt > 0 {
			inf.RootASNs = slab[aOff : aOff+aCnt : aOff+aCnt]
		}
		if rCnt > 0 {
			inf.RootOrigins = slab[rOff : rOff+rCnt : rOff+rCnt]
		}
		if lCnt > 0 {
			inf.LeafOrigins = slab[lOff : lOff+lCnt : lOff+lCnt]
		}
		facOff := uint64(binary.LittleEndian.Uint32(rec[44:]))
		facCnt := uint64(binary.LittleEndian.Uint32(rec[48:]))
		if facCnt > 0 {
			if facOff+facCnt > nFac {
				return nil, corrupt("records", fmt.Sprintf("record %d facilitator run [%d,%d) outside refs of %d",
					i, facOff, facOff+facCnt, nFac), nil)
			}
			inf.Facilitators = facStrs[facOff : facOff+facCnt : facOff+facCnt]
		}
		if !inf.Prefix.Canonical() || !inf.Root.Canonical() {
			return nil, corrupt("records", fmt.Sprintf("record %d has a non-canonical prefix", i), nil)
		}
	}
	if curReg >= 0 {
		cur.Hi = int(hi)
		runs = append(runs, cur)
	}
	return runs, nil
}

// internStr is strTable.str over pre-split fields, kept tiny so the
// fill loop inlines it: the caller has range-checked id, decodeStrTab
// has range-checked the entry's run.
func internStr(entries []uint32, blob []byte, id uint32) string {
	off, ln := entries[2*id], entries[2*id+1]
	if ln == 0 {
		return ""
	}
	return unsafe.String(&blob[off], int(ln))
}

//go:noinline
func corruptRecordCat(i uint32, cat byte) *CorruptError {
	return corrupt("records", fmt.Sprintf("record %d has category %d out of range", i, cat), nil)
}

//go:noinline
func corruptRecordStr(i, holder, netname, country, nStr uint32) *CorruptError {
	for _, f := range []struct {
		name string
		id   uint32
	}{{"holder", holder}, {"netname", netname}, {"country", country}} {
		if f.id >= nStr {
			return corrupt("records", fmt.Sprintf("record %d %s names string %d outside table of %d", i, f.name, f.id, nStr), nil)
		}
	}
	return corrupt("records", fmt.Sprintf("record %d names a string outside the table", i), nil)
}

//go:noinline
func corruptRecordRun(i uint32, nSlab, aOff, aCnt, rOff, rCnt, lOff, lCnt uint64) *CorruptError {
	for _, f := range []struct {
		name     string
		off, cnt uint64
	}{{"root-ASN", aOff, aCnt}, {"root-origin", rOff, rCnt}, {"leaf-origin", lOff, lCnt}} {
		if f.off+f.cnt > nSlab {
			return corrupt("records", fmt.Sprintf("record %d %s run [%d,%d) outside slab of %d",
				i, f.name, f.off, f.off+f.cnt, nSlab), nil)
		}
	}
	return corrupt("records", fmt.Sprintf("record %d has a run outside the slab", i), nil)
}

// decodeByASNNative wraps the flat ASN index as a validated ASNView
// whose entry and slab arrays alias the payload.
func decodeByASNNative(payload []byte, arenaLen int) (*serve.ASNView, *CorruptError) {
	if len(payload) < 8 {
		return nil, corrupt("byasn", fmt.Sprintf("payload of %d bytes has no header", len(payload)), ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(payload[0:4])
	slabLen := binary.LittleEndian.Uint32(payload[4:8])
	need := 8 + 12*uint64(n) + 4*uint64(slabLen)
	if uint64(len(payload)) != need {
		return nil, corrupt("byasn", fmt.Sprintf("payload is %d bytes, want %d for %d entries + %d indexes",
			len(payload), need, n, slabLen), ErrTruncated)
	}
	entries := asASNEntryView(payload[8:], int(n))
	slab := asI32View(payload[8+12*uint64(n):], int(slabLen))
	view, err := serve.NewASNView(entries, slab, arenaLen)
	if err != nil {
		return nil, corrupt("byasn", "index rejected", err)
	}
	return view, nil
}

// openV3 assembles a servable snapshot over already-CRC-verified v3
// section payloads. backing, when non-nil, owns the payload memory (a
// memory-mapped file); the restored snapshot takes over its creation
// reference. With a nil backing the views alias heap bytes and the GC
// owns the lifetime. mode labels the result (serve.LoadModeMmap /
// LoadModeHeap) for /statusz and load-mode metrics.
func openV3(payloads map[uint32][]byte, gen uint64, backing serve.Backing, mode string) (*serve.Snapshot, error) {
	meta, cerr := decodeMeta(payloads[secMeta])
	if cerr != nil {
		return nil, cerr
	}
	// The arena chain (strings → slabs → records → result) and the index
	// chain (LPM, byASN, reports) share nothing but meta.arenaLen, so a
	// cold start runs them concurrently — restore latency is the longer
	// chain, not the sum. Both goroutines only read distinct payloads
	// and write distinct locals; the WaitGroup is the sole synchronizer.
	var (
		res      *core.Result
		arenaErr error
		buf      *arenaBuf

		lpm      *netutil.LPM
		asnView  *serve.ASNView
		reports  []*diag.LoadReport
		indexErr error
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		recPayload := payloads[secRecords]
		n, cerr := recordsCount(recPayload, meta.arenaLen)
		if cerr != nil {
			arenaErr = cerr
			return
		}
		// Allocating (and zeroing) the arena is the single biggest cost
		// of a v3 restore; start it immediately so it overlaps the
		// string-table and slab decodes, which do not need it. Mapped
		// opens draw from the arena pool (their final release is the
		// recycle hook); heap opens have no release signal, so the GC
		// owns their arena.
		infsCh := make(chan []core.Inference, 1)
		go func() {
			if backing != nil {
				buf = arenaGet(n)
				infsCh <- buf.infs
				return
			}
			infsCh <- make([]core.Inference, n)
		}()
		tbl, cerr := decodeStrTab(payloads[secStrTab])
		if cerr != nil {
			arenaErr = cerr
			<-infsCh
			return
		}
		slab, cerr := decodeFlatU32s(payloads[secU32Slab], "u32slab")
		if cerr != nil {
			arenaErr = cerr
			<-infsCh
			return
		}
		refs, cerr := decodeFlatU32s(payloads[secStrRefs], "strrefs")
		if cerr != nil {
			arenaErr = cerr
			<-infsCh
			return
		}
		infs := <-infsCh
		runs, cerr := decodeRecordsInto(infs, recPayload, &tbl, slab, refs)
		if cerr != nil {
			arenaErr = cerr
			return
		}
		r, err := core.ResultFromRuns(infs, runs, meta.totalBGP, meta.routedSpace)
		if err != nil {
			arenaErr = corrupt("records", "result rejected", err)
			return
		}
		res = r
	}()
	l, err := netutil.LPMFromNative(payloads[secLPMNative], meta.arenaLen)
	if err != nil {
		indexErr = corrupt("lpm", "index rejected", err)
	} else if asnView, cerr = decodeByASNNative(payloads[secByASNNative], meta.arenaLen); cerr != nil {
		indexErr = cerr
	} else if reports, cerr = decodeReports(payloads[secReports]); cerr != nil {
		indexErr = cerr
	} else {
		lpm = l
	}
	wg.Wait()
	if arenaErr != nil || indexErr != nil {
		arenaPut(buf) // never escaped; reclaim it for the next open
		if arenaErr != nil {
			return nil, arenaErr
		}
		return nil, indexErr
	}
	if buf != nil {
		backing = &arenaRecycler{Backing: backing, buf: buf}
	}
	snap, err := serve.Restore(serve.Restored{
		BuiltAt:         meta.builtAt,
		Generation:      gen,
		Provenance:      meta.provenance,
		Dir:             meta.dir,
		Strict:          meta.strict,
		Result:          res,
		LPM:             lpm,
		ByASNView:       asnView,
		Table1:          payloads[secTable1],
		Reports:         reports,
		SkippedAnalyses: meta.skippedAnalyses,
		Delta:           &serve.DeltaInfo{Mode: serve.ModeSnapshot},
		Backing:         backing,
		LoadMode:        mode,
	})
	if err != nil {
		return nil, corrupt("snapshot", "restore rejected", err)
	}
	return snap, nil
}
