//go:build unix

package snapstore

import (
	"os"
	"syscall"
)

// mmapSupported gates the OpenFile mapping path at build time; on
// non-unix platforms OpenFile silently degrades to heap decode.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared: the pages are
// the kernel's page cache for the file, so a warm file costs no read
// I/O and a second process mapping the same generation shares the
// physical memory.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}

// madviseWillNeed hints the kernel to start readahead for the whole
// mapping. OpenFile issues it before the CRC pass, so validation
// (which touches every page anyway) runs against sequential readahead
// instead of one-page-at-a-time demand faults. Advisory: errors are
// ignored by the caller.
func madviseWillNeed(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Madvise(data, syscall.MADV_WILLNEED)
}
