package snapstore

import (
	"sync"

	"ipleasing/internal/core"
	"ipleasing/internal/serve"
)

// Arena recycling: the inference arena is the one multi-megabyte heap
// allocation a v3 restore cannot view out of the mapped file, and at a
// reload cadence of one generation per open it is also almost all of
// the restore's garbage — the GC tax (mark work, write-barrier flushes,
// assist debt) costs more than the fill itself. A mapped snapshot has
// the lifecycle hook heap snapshots lack: its refcount already proves
// the moment nothing can reach the arena (the same proof that makes
// munmap safe), so the final release returns the arena to a pool for
// the next open instead of handing it to the collector.
//
// Invariant: arenas in the pool are fully zeroed. arenaPut clears the
// buffer before pooling — off the open critical path, and it keeps the
// pool free of stale pointers into a by-then-unmapped file — so
// arenaGet hands out memory exactly as make() would.

// arenaBuf is the pooled unit. The pointer indirection keeps
// sync.Pool's interface boxing allocation-free.
type arenaBuf struct {
	infs []core.Inference
}

var arenaPool = sync.Pool{New: func() any { return &arenaBuf{} }}

// arenaGet returns a zeroed n-record arena, reusing a pooled buffer
// when one is large enough.
func arenaGet(n uint32) *arenaBuf {
	buf := arenaPool.Get().(*arenaBuf)
	if uint32(cap(buf.infs)) >= n {
		buf.infs = buf.infs[:n]
		return buf
	}
	buf.infs = make([]core.Inference, n)
	return buf
}

// arenaPut zeroes the buffer's full capacity and pools it. Safe only
// once nothing references the arena — the callers are openV3's error
// paths (the arena never escaped) and the snapshot's final release
// (the refcount drained).
func arenaPut(buf *arenaBuf) {
	if buf == nil {
		return
	}
	clear(buf.infs[:cap(buf.infs)])
	arenaPool.Put(buf)
}

// arenaRecycler wraps a mapped snapshot's backing so the final release
// recycles the arena in the same breath as the munmap.
type arenaRecycler struct {
	serve.Backing
	buf *arenaBuf
}

func (r *arenaRecycler) Release() {
	arenaPut(r.buf)
	r.Backing.Release()
}
