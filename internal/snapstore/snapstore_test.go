package snapstore

// Shared test fixture and the serve-identical assertion. The fixture is
// one synthetic world, loaded and inferred once per test binary; every
// codec, store, fetch, and crash test reuses it.

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"ipleasing"
	"ipleasing/internal/netutil"
	"ipleasing/internal/serve"
)

var fixture struct {
	once sync.Once
	snap *serve.Snapshot
	err  error
}

// testSnapshot returns the shared fixture snapshot: a synthetic dataset
// loaded and inferred once, indexed for serving, with BuiltAt, Dir, and
// load reports populated the way a live daemon's snapshot is.
func testSnapshot(t testing.TB) *serve.Snapshot {
	t.Helper()
	fixture.once.Do(func() {
		dir, err := os.MkdirTemp("", "snapstore-fixture-*")
		if err != nil {
			fixture.err = err
			return
		}
		w := ipleasing.Generate(ipleasing.Config{Seed: 21, Scale: 0.004})
		if err := w.WriteDir(dir); err != nil {
			fixture.err = err
			return
		}
		_, sum, res, err := ipleasing.LoadAndInfer(dir, ipleasing.LenientLoad(), ipleasing.Options{})
		if err != nil {
			fixture.err = err
			return
		}
		snap := serve.NewSnapshot(res, sum.Reports, sum.SkippedAnalyses)
		snap.BuiltAt = time.Now()
		snap.Dir = dir
		fixture.snap = snap
	})
	if fixture.err != nil {
		t.Fatalf("building fixture snapshot: %v", fixture.err)
	}
	return fixture.snap
}

// assertServesIdentical fails unless got answers every query surface
// byte-identically to want: the pre-rendered Table 1, the JSON view of
// every inference, address lookups at each leaf's first and last
// address, every per-ASN listing, the load-report views, and the
// snapshot metadata responses embed (BuiltAt, Dir, Strict).
func assertServesIdentical(t *testing.T, label string, got, want *serve.Snapshot) {
	t.Helper()
	if string(got.Table1()) != string(want.Table1()) {
		t.Errorf("%s: Table 1 diverged", label)
	}
	if got.NumInferences() != want.NumInferences() {
		t.Fatalf("%s: inference count %d != %d", label, got.NumInferences(), want.NumInferences())
	}
	if !got.BuiltAt.Equal(want.BuiltAt) {
		t.Errorf("%s: BuiltAt %v != %v", label, got.BuiltAt, want.BuiltAt)
	}
	if got.Dir != want.Dir || got.Strict != want.Strict {
		t.Errorf("%s: metadata (%q, %v) != (%q, %v)", label, got.Dir, got.Strict, want.Dir, want.Strict)
	}

	view := func(s *serve.Snapshot, i int) string {
		b, err := json.Marshal(serve.View(&s.FlatInferences()[i]))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	wantInfs := want.FlatInferences()
	for i := range wantInfs {
		if g, w := view(got, i), view(want, i); g != w {
			t.Fatalf("%s: inference %d view diverged:\n got %s\nwant %s", label, i, g, w)
		}
	}

	// Address lookups: first and last covered address of every leaf must
	// resolve to the same inference view (or the same miss).
	lookup := func(s *serve.Snapshot, a netutil.Addr) string {
		inf := s.LookupAddr(a)
		if inf == nil {
			return "<miss>"
		}
		b, err := json.Marshal(serve.View(inf))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	for i := range wantInfs {
		p := wantInfs[i].Prefix
		for _, a := range []netutil.Addr{p.First(), p.Last()} {
			if g, w := lookup(got, a), lookup(want, a); g != w {
				t.Fatalf("%s: lookup %v diverged:\n got %s\nwant %s", label, a, g, w)
			}
		}
	}

	// ASN listings.
	if g, w := len(got.ByASN()), len(want.ByASN()); g != w {
		t.Fatalf("%s: ASN index size %d != %d", label, g, w)
	}
	for asn := range want.ByASN() {
		g, err := json.Marshal(viewAll(got.LookupASN(asn)))
		if err != nil {
			t.Fatal(err)
		}
		w, err := json.Marshal(viewAll(want.LookupASN(asn)))
		if err != nil {
			t.Fatal(err)
		}
		if string(g) != string(w) {
			t.Fatalf("%s: ASN %d listing diverged", label, asn)
		}
	}

	// Load accounting views (what /loadreport serves).
	g, err := json.Marshal(got.ReportViews())
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want.ReportViews())
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Errorf("%s: load report views diverged:\n got %s\nwant %s", label, g, w)
	}
}

func viewAll(infs []*ipleasing.Inference) []*serve.InferenceView {
	out := make([]*serve.InferenceView, len(infs))
	for i, inf := range infs {
		out[i] = serve.View(inf)
	}
	return out
}
