package snapstore

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPublisherServesCurrentSnapshot(t *testing.T) {
	snap := testSnapshot(t)
	pub := NewPublisher()
	srv := httptest.NewServer(pub)
	defer srv.Close()

	// Nothing published yet: 503.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unpublished GET status = %d, want 503", resp.StatusCode)
	}
	if _, ok := pub.Generation(); ok {
		t.Fatal("Generation reported before any Set")
	}

	if err := pub.Set([]byte("garbage")); err == nil {
		t.Fatal("publisher accepted garbage bytes")
	}
	data := Encode(snap, 12)
	if err := pub.Set(data); err != nil {
		t.Fatal(err)
	}
	if gen, ok := pub.Generation(); !ok || gen != 12 {
		t.Fatalf("Generation = %d, %v; want 12, true", gen, ok)
	}

	f := NewFetcher(srv.URL, FetcherOptions{})
	ctx := context.Background()

	if gen, err := f.Probe(ctx); err != nil || gen != 12 {
		t.Fatalf("Probe = %d, %v; want 12, nil", gen, err)
	}
	body, gen, err := f.Fetch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 12 || string(body) != string(data) {
		t.Fatalf("fetched gen %d, %d bytes; want 12, %d bytes identical", gen, len(body), len(data))
	}

	// Steady state: conditional fetch answers unchanged.
	if _, _, err := f.Fetch(ctx); !errors.Is(err, ErrUnchanged) {
		t.Fatalf("second fetch: %v, want ErrUnchanged", err)
	}

	// New generation flows through.
	if err := pub.Set(Encode(snap, 13)); err != nil {
		t.Fatal(err)
	}
	if _, gen, err := f.Fetch(ctx); err != nil || gen != 13 {
		t.Fatalf("fetch after publish = %d, %v; want 13, nil", gen, err)
	}

	// Invalidate forces a full transfer of an unchanged generation.
	f.Invalidate()
	if body, gen, err := f.Fetch(ctx); err != nil || gen != 13 || len(body) == 0 {
		t.Fatalf("forced fetch = %d bytes, gen %d, %v", len(body), gen, err)
	}
}

func TestFetcherRejectsCorruptBody(t *testing.T) {
	snap := testSnapshot(t)
	data := Encode(snap, 5)
	damaged := append([]byte(nil), data...)
	damaged[len(damaged)/3] ^= 0x08
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(damaged)
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL, FetcherOptions{})
	if _, _, err := f.Fetch(context.Background()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt body fetch: %v, want ErrCorrupt", err)
	}
}

func TestFetcherBoundsBodySize(t *testing.T) {
	snap := testSnapshot(t)
	data := Encode(snap, 5)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(data)
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL, FetcherOptions{MaxBytes: 128})
	if _, _, err := f.Fetch(context.Background()); err == nil {
		t.Fatal("oversized body accepted")
	}
}

func TestFetcherReportsUnreachablePublisher(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // connection refused from here on

	f := NewFetcher(url, FetcherOptions{})
	if _, _, err := f.Fetch(context.Background()); err == nil {
		t.Fatal("fetch from dead publisher succeeded")
	}
	if _, err := f.Probe(context.Background()); err == nil {
		t.Fatal("probe of dead publisher succeeded")
	}
}

func TestFetcherNotPublished(t *testing.T) {
	pub := NewPublisher()
	srv := httptest.NewServer(pub)
	defer srv.Close()
	f := NewFetcher(srv.URL, FetcherOptions{})
	if _, _, err := f.Fetch(context.Background()); !errors.Is(err, ErrNotPublished) {
		t.Fatalf("fetch before publish: %v, want ErrNotPublished", err)
	}
	if _, err := f.Probe(context.Background()); !errors.Is(err, ErrNotPublished) {
		t.Fatalf("probe before publish: %v, want ErrNotPublished", err)
	}
}

func TestParseRetryAfterForms(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
		ok   bool
	}{
		{"empty", "", 0, false},
		{"seconds", "7", 7 * time.Second, true},
		{"zero seconds", "0", 0, false},
		{"negative seconds", "-3", 0, false},
		{"garbage", "soon", 0, false},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"http date past", now.Add(-time.Minute).Format(http.TimeFormat), 0, false},
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.v, now)
		if ok != tc.ok || got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = (%v, %v), want (%v, %v)",
				tc.name, tc.v, got, ok, tc.want, tc.ok)
		}
	}
}

// retryAfterServer answers every request with the given status and
// Retry-After header value.
func retryAfterServer(status int, header string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if header != "" {
			w.Header().Set("Retry-After", header)
		}
		w.WriteHeader(status)
	}))
}

func TestFetcherHonorsRetryAfterSeconds(t *testing.T) {
	srv := retryAfterServer(http.StatusServiceUnavailable, "7")
	defer srv.Close()
	f := NewFetcher(srv.URL, FetcherOptions{RetryAfterCap: time.Minute})

	_, _, err := f.Fetch(context.Background())
	if !errors.Is(err, ErrNotPublished) {
		t.Fatalf("fetch: %v, want ErrNotPublished underneath", err)
	}
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("fetch error %v does not carry RetryAfterError", err)
	}
	if ra.After != 7*time.Second {
		t.Fatalf("After = %v, want 7s", ra.After)
	}
	if _, err := f.Probe(context.Background()); !errors.As(err, &ra) || ra.After != 7*time.Second {
		t.Fatalf("probe error %v: want RetryAfterError with 7s", err)
	}
}

func TestFetcherHonorsRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	srv := retryAfterServer(http.StatusTooManyRequests, now.Add(9*time.Second).Format(http.TimeFormat))
	defer srv.Close()
	f := NewFetcher(srv.URL, FetcherOptions{RetryAfterCap: time.Minute})
	f.now = func() time.Time { return now }

	var ra *RetryAfterError
	if _, _, err := f.Fetch(context.Background()); !errors.As(err, &ra) {
		t.Fatalf("fetch error %v does not carry RetryAfterError", err)
	} else if ra.After != 9*time.Second {
		t.Fatalf("After = %v, want 9s", ra.After)
	}
}

func TestFetcherCapsRetryAfter(t *testing.T) {
	srv := retryAfterServer(http.StatusServiceUnavailable, "3600")
	defer srv.Close()
	f := NewFetcher(srv.URL, FetcherOptions{RetryAfterCap: 15 * time.Second})

	var ra *RetryAfterError
	if _, _, err := f.Fetch(context.Background()); !errors.As(err, &ra) {
		t.Fatalf("fetch error does not carry RetryAfterError")
	} else if ra.After != 15*time.Second {
		t.Fatalf("After = %v, want capped 15s", ra.After)
	}
}

func TestFetcherNoRetryAfterHeaderNoWrap(t *testing.T) {
	srv := retryAfterServer(http.StatusServiceUnavailable, "")
	defer srv.Close()
	f := NewFetcher(srv.URL, FetcherOptions{})

	var ra *RetryAfterError
	if _, _, err := f.Fetch(context.Background()); errors.As(err, &ra) {
		t.Fatalf("bare 503 wrapped in RetryAfterError: %v", err)
	} else if !errors.Is(err, ErrNotPublished) {
		t.Fatalf("fetch: %v, want ErrNotPublished", err)
	}
}
