// Package snapstore persists serving snapshots: a versioned,
// checksummed binary format that encodes a *serve.Snapshot's flat
// serving indexes directly (no re-inference on load), a crash-safe
// on-disk store with atomic generation publication, and an HTTP
// publisher/fetcher pair for stateless replica serving.
//
// The format is paranoid by construction. Every section carries its own
// CRC-32C and the file carries a whole-file CRC-32C, so a torn write, a
// flipped bit, or a truncated download is detected before a single
// decoded value is trusted; counts are bounds-checked against remaining
// bytes so a corrupt length can never become an allocation bomb; and
// decode either returns a fully servable snapshot or a typed
// *CorruptError — never a partial one.
package snapstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/serve"
	"ipleasing/internal/whois"
)

// FormatVersion is the current snapshot format version — the only
// version Encode writes. The decoder additionally accepts
// LegacyVersion files (the previous on-disk generation survives a
// process upgrade) through the fully materializing legacy path; any
// other version is a clean typed rejection. Bump FormatVersion on ANY
// layout change — a version mismatch is a clean typed rejection, a
// silent layout drift is a corruption bug.
//
// Version history:
//
//	1 — initial layout.
//	2 — meta section gained a trailing provenance traceparent (the
//	    publisher reload trace that built the generation).
//	3 — relocatable mmap-servable layout: the varint arena/LPM/byASN
//	    sections were replaced by offset-addressed, 8-aligned flat
//	    sections (string table, u32 slab, fixed-width records, native
//	    LPM nodes, flat ASN index) that serve.Snapshot and netutil.LPM
//	    wrap as views over the raw bytes — from the heap or straight
//	    from a memory-mapped file.
const FormatVersion = 3

// LegacyVersion is the one previous format version Decode still
// accepts (heap-materializing path only — a legacy file is never
// served from a mapping). One version of backward compatibility is the
// whole policy: a fleet upgrades publisher and replicas one release at
// a time, and a replica's store may hold the previous release's files,
// but there is no archival migration path across more than one bump.
const LegacyVersion = 2

// magic identifies a snapshot file. 8 bytes, never changes; the version
// field after it is what evolves.
const magic = "IPLSNAP1"

// Section IDs. The section table makes sections self-describing, so a
// future version can append new sections without disturbing this
// decoder's view of the old ones — but removing or reshaping one
// requires a FormatVersion bump.
const (
	secMeta    = 1 // build metadata: BuiltAt, Dir, Strict, totals, skipped analyses
	secArena   = 2 // v2: flat inference arena, registry-major All order (varint)
	secLPM     = 3 // v2: flat LPM node array (netutil.LPM wire form)
	secByASN   = 4 // v2: ASN -> arena index lists (varint)
	secTable1  = 5 // pre-rendered Markdown Table 1, verbatim bytes
	secReports = 6 // per-source load accounting

	// v3 relocatable sections. Every v3 payload starts at an 8-aligned
	// file offset (the encoder zero-pads the gaps) so fixed-width
	// records can be aliased in place.
	secStrTab      = 7  // interned string table: offsets + lengths into one blob
	secU32Slab     = 8  // all ASN/origin list elements, one flat u32 array
	secStrRefs     = 9  // all facilitator references, one flat string-ID array
	secRecords     = 10 // fixed 56-byte inference records addressing the slabs
	secLPMNative   = 11 // LPM node array in native in-memory layout (AppendNative)
	secByASNNative = 12 // sorted (ASN, off, count) entries over an int32 slab
)

// headerSize is magic(8) + version(4) + generation(8) + section count(4).
const headerSize = 8 + 4 + 8 + 4

// sectionEntrySize is one section-table entry: id(4) + offset(8) +
// length(8) + CRC-32C(4).
const sectionEntrySize = 4 + 8 + 8 + 4

// maxSections bounds the section-table count a decoder will honour;
// far above any plausible format evolution, low enough that a corrupt
// count cannot drive a huge table allocation.
const maxSections = 64

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors. Every decode failure satisfies
// errors.Is(err, ErrCorrupt); the more specific sentinels narrow the
// cause for callers that care (the store's recovery scan treats them
// all the same — skip the generation).
var (
	// ErrCorrupt is the umbrella: the bytes are not a loadable snapshot.
	ErrCorrupt = errors.New("snapstore: corrupt snapshot")
	// ErrBadMagic marks a file that is not a snapshot at all.
	ErrBadMagic = errors.New("snapstore: bad magic")
	// ErrBadVersion marks a snapshot written by a different format
	// version.
	ErrBadVersion = errors.New("snapstore: unsupported format version")
	// ErrChecksum marks a CRC mismatch (whole-file or per-section).
	ErrChecksum = errors.New("snapstore: checksum mismatch")
	// ErrTruncated marks a file shorter than its own structure claims.
	ErrTruncated = errors.New("snapstore: truncated snapshot")
)

// CorruptError reports why a snapshot was rejected. It unwraps to both
// ErrCorrupt and the specific sentinel (when one applies), so
// errors.Is works against either.
type CorruptError struct {
	Section string // section being decoded, or "header"/"file"
	Reason  string
	Err     error // specific sentinel or underlying decode error, may be nil
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("snapstore: %s: %s: %v", e.Section, e.Reason, e.Err)
	}
	return fmt.Sprintf("snapstore: %s: %s", e.Section, e.Reason)
}

func (e *CorruptError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorrupt, e.Err}
	}
	return []error{ErrCorrupt}
}

func corrupt(section, reason string, err error) *CorruptError {
	return &CorruptError{Section: section, Reason: reason, Err: err}
}

// ---- encoding ----

// appendUvarint, appendU32, appendU64, appendStr are the little-endian
// building blocks shared by every section encoder.

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendStrs(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendStr(dst, s)
	}
	return dst
}

func appendU32s(dst []byte, vs []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

func encodeMeta(snap *serve.Snapshot) []byte {
	res := snap.Result
	b := make([]byte, 0, 64+len(snap.Dir))
	var builtAt int64
	if !snap.BuiltAt.IsZero() {
		builtAt = snap.BuiltAt.UnixNano()
	}
	b = appendU64(b, uint64(builtAt))
	b = appendUvarint(b, uint64(res.TotalBGPPrefixes))
	b = appendU64(b, res.RoutedSpace)
	b = appendUvarint(b, uint64(snap.NumInferences()))
	if snap.Strict {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendStr(b, snap.Dir)
	b = appendStrs(b, snap.SkippedAnalyses)
	b = appendStr(b, snap.Provenance)
	return b
}

func encodeArena(infs []core.Inference) []byte {
	b := make([]byte, 0, 64*len(infs)+16)
	b = appendUvarint(b, uint64(len(infs)))
	for i := range infs {
		inf := &infs[i]
		b = append(b, byte(inf.Registry), byte(inf.Category))
		b = appendU32(b, uint32(inf.Prefix.Base))
		b = append(b, inf.Prefix.Len)
		b = appendU32(b, uint32(inf.Root.Base))
		b = append(b, inf.Root.Len)
		b = appendStr(b, inf.HolderOrg)
		b = appendStr(b, inf.NetName)
		b = appendStr(b, inf.Country)
		b = appendU32s(b, inf.RootASNs)
		b = appendU32s(b, inf.RootOrigins)
		b = appendU32s(b, inf.LeafOrigins)
		b = appendStrs(b, inf.Facilitators)
	}
	return b
}

func encodeByASN(byASN map[uint32][]int32) []byte {
	asns := make([]uint32, 0, len(byASN))
	for asn := range byASN {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	b := make([]byte, 0, 8*len(asns)+16)
	b = appendUvarint(b, uint64(len(asns)))
	for _, asn := range asns {
		list := byASN[asn]
		b = appendUvarint(b, uint64(asn))
		b = appendUvarint(b, uint64(len(list)))
		for _, idx := range list {
			b = appendUvarint(b, uint64(uint32(idx)))
		}
	}
	return b
}

func encodeReports(reports []*diag.LoadReport) []byte {
	b := make([]byte, 0, 64*len(reports)+16)
	n := 0
	for _, r := range reports {
		if r != nil {
			n++
		}
	}
	b = appendUvarint(b, uint64(n))
	for _, r := range reports {
		if r == nil {
			continue
		}
		b = appendStr(b, r.Source)
		b = appendStr(b, r.File)
		b = appendUvarint(b, uint64(r.Parsed))
		b = appendUvarint(b, uint64(r.Skipped))
		b = appendU64(b, uint64(r.Bytes))
		var flags byte
		if r.Missing {
			flags |= 1
		}
		if r.Truncated {
			flags |= 2
		}
		b = append(b, flags)
	}
	return b
}

// fileSection is one (id, payload) pair headed for encodeFile.
type fileSection struct {
	id      uint32
	payload []byte
}

// encodeFile assembles the header, section table, payloads, and
// whole-file CRC. When align is true every payload is placed at an
// 8-aligned file offset with zero bytes in the gaps (the v3 layout
// contract that makes fixed-width sections aliasable in place); the
// header plus table is 8-aligned by construction (24 + 24n).
func encodeFile(version uint32, gen uint64, sections []fileSection, align bool) []byte {
	offs := make([]int, len(sections))
	off := headerSize + len(sections)*sectionEntrySize
	for i, s := range sections {
		if align {
			off = (off + 7) &^ 7
		}
		offs[i] = off
		off += len(s.payload)
	}
	total := off + 4 // whole-file CRC

	b := make([]byte, 0, total)
	b = append(b, magic...)
	b = appendU32(b, version)
	b = appendU64(b, gen)
	b = appendU32(b, uint32(len(sections)))
	for i, s := range sections {
		b = appendU32(b, s.id)
		b = appendU64(b, uint64(offs[i]))
		b = appendU64(b, uint64(len(s.payload)))
		b = appendU32(b, crc32.Checksum(s.payload, castagnoli))
	}
	for i, s := range sections {
		for len(b) < offs[i] {
			b = append(b, 0)
		}
		b = append(b, s.payload...)
	}
	b = appendU32(b, crc32.Checksum(b, castagnoli))
	return b
}

// Encode serializes a serving snapshot into the current (v3,
// relocatable) binary form. The encoding reads only the snapshot's
// immutable serving indexes — the flat arena, the LPM node array, the
// ASN index, the pre-rendered Table 1, and the load accounting — so a
// decoded snapshot answers every query byte-identically without
// re-running inference or any index build, and an mmap open serves the
// fixed-width sections in place without decoding them at all. gen is
// the generation number stamped into the header.
func Encode(snap *serve.Snapshot, gen uint64) []byte {
	strtab, u32slab, strrefs, records := encodeV3Arena(snap.FlatInferences())
	sections := []fileSection{
		{secMeta, encodeMeta(snap)},
		{secStrTab, strtab},
		{secU32Slab, u32slab},
		{secStrRefs, strrefs},
		{secRecords, records},
		{secLPMNative, snap.LPM().AppendNative(nil)},
		{secByASNNative, encodeByASNNative(snap.ByASN())},
		{secTable1, snap.Table1()},
		{secReports, encodeReports(snap.Reports)},
	}
	return encodeFile(FormatVersion, gen, sections, true)
}

// EncodeLegacy serializes a snapshot into the previous (v2, varint)
// layout. Production code always writes Encode's current format; this
// exists so the legacy decode path — which must keep accepting the
// previous release's on-disk generations — stays testable and
// benchmarkable without checked-in binary fixtures.
func EncodeLegacy(snap *serve.Snapshot, gen uint64) []byte {
	sections := []fileSection{
		{secMeta, encodeMeta(snap)},
		{secArena, encodeArena(snap.FlatInferences())},
		{secLPM, snap.LPM().AppendBinary(nil)},
		{secByASN, encodeByASN(snap.ByASN())},
		{secTable1, snap.Table1()},
		{secReports, encodeReports(snap.Reports)},
	}
	return encodeFile(LegacyVersion, gen, sections, false)
}

// ---- decoding ----

// reader is a bounds-checked little-endian cursor over one section's
// payload. The first failure sticks; every later read returns zero
// values, so decode loops stay linear and the single error carries the
// first (root-cause) rejection.
type reader struct {
	data []byte
	off  int
	sec  string
	err  *CorruptError
}

func (r *reader) fail(reason string, err error) {
	if r.err == nil {
		r.err = corrupt(r.sec, reason, err)
	}
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.fail(fmt.Sprintf("need %d bytes, have %d", n, r.remaining()), ErrTruncated)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint", ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// count reads an element count and rejects it unless the remaining
// bytes could plausibly hold that many elements of at least elemMin
// bytes each — the allocation-bomb guard.
func (r *reader) count(what string, elemMin int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v > uint64(r.remaining()/elemMin) {
		r.fail(fmt.Sprintf("%s count %d exceeds remaining payload", what, v), ErrTruncated)
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.count("string length", 1)
	b := r.take(n)
	if len(b) == 0 {
		return ""
	}
	return string(b)
}

// strRef reads a string as a substring of blob — the single backing
// buffer the legacy arena decode copies its payload into once — so a
// section with tens of thousands of string fields costs one allocation
// total instead of one per field. blob must be string(r.data).
func (r *reader) strRef(blob string) string {
	n := r.count("string length", 1)
	if r.err != nil || n == 0 {
		return ""
	}
	off := r.off
	if r.take(n) == nil {
		return ""
	}
	return blob[off : off+n]
}

// u32chunks hands out sub-slices of large shared blocks, so decoding
// many tiny lists costs one allocation per block rather than per list.
// Handed-out slices are capacity-capped and blocks are never grown in
// place, so no later take can alias an earlier one.
type u32chunks struct{ cur []uint32 }

func (c *u32chunks) take(n int) []uint32 {
	if cap(c.cur)-len(c.cur) < n {
		size := 1 << 13
		if n > size {
			size = n
		}
		c.cur = make([]uint32, 0, size)
	}
	start := len(c.cur)
	c.cur = c.cur[:start+n]
	return c.cur[start : start+n : start+n]
}

// strchunks is u32chunks for string slices.
type strchunks struct{ cur []string }

func (c *strchunks) take(n int) []string {
	if cap(c.cur)-len(c.cur) < n {
		size := 1 << 10
		if n > size {
			size = n
		}
		c.cur = make([]string, 0, size)
	}
	start := len(c.cur)
	c.cur = c.cur[:start+n]
	return c.cur[start : start+n : start+n]
}

// u32listIn decodes a varint u32 list into chunk-allocated storage.
func (r *reader) u32listIn(c *u32chunks) []uint32 {
	n := r.count("u32 list", 1)
	if n == 0 {
		return nil
	}
	out := c.take(n)
	for i := range out {
		v := r.uvarint()
		if v > 0xFFFFFFFF {
			r.fail(fmt.Sprintf("u32 list element %d overflows", v), nil)
			return nil
		}
		out[i] = uint32(v)
	}
	if r.err != nil {
		return nil
	}
	return out
}

// strlistIn decodes a varint string list into chunk-allocated storage,
// with every element a substring of blob.
func (r *reader) strlistIn(c *strchunks, blob string) []string {
	n := r.count("string list", 1)
	if n == 0 {
		return nil
	}
	out := c.take(n)
	for i := range out {
		out[i] = r.strRef(blob)
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *reader) strlist() []string {
	n := r.count("string list", 1)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// done rejects trailing garbage: a valid section is consumed exactly.
func (r *reader) done() {
	if r.err == nil && r.remaining() != 0 {
		r.fail(fmt.Sprintf("%d trailing bytes", r.remaining()), nil)
	}
}

type decodedMeta struct {
	builtAt         time.Time
	dir             string
	strict          bool
	totalBGP        int
	routedSpace     uint64
	arenaLen        int
	skippedAnalyses []string
	provenance      string
}

func decodeMeta(payload []byte) (decodedMeta, *CorruptError) {
	r := &reader{data: payload, sec: "meta"}
	var m decodedMeta
	builtAt := int64(r.u64())
	m.totalBGP = int(r.uvarint())
	m.routedSpace = r.u64()
	m.arenaLen = int(r.uvarint())
	m.strict = r.u8() == 1
	m.dir = r.str()
	m.skippedAnalyses = r.strlist()
	m.provenance = r.str()
	r.done()
	if r.err != nil {
		return decodedMeta{}, r.err
	}
	if builtAt != 0 {
		m.builtAt = time.Unix(0, builtAt)
	}
	return m, nil
}

func decodeArena(payload []byte) ([]core.Inference, *CorruptError) {
	r := &reader{data: payload, sec: "arena"}
	// One inference is at least reg+cat+prefix+root+3 empty strings+4
	// empty lists = 19 bytes on the wire.
	n := r.count("inference", 19)
	if r.err != nil {
		return nil, r.err
	}
	// One backing buffer for every string field: each decoded string is
	// a substring of blob, and each decoded list a sub-slice of a shared
	// chunk — the arena's tens of thousands of per-field allocations
	// collapse to a handful of block allocations (this was ~54k
	// allocs/op in BenchmarkSnapshotDecode before).
	blob := string(payload)
	var u32s u32chunks
	var strs strchunks
	infs := make([]core.Inference, n)
	for i := range infs {
		inf := &infs[i]
		inf.Registry = whois.Registry(r.u8())
		inf.Category = core.Category(r.u8())
		inf.Prefix = netutil.Prefix{Base: netutil.Addr(r.u32()), Len: r.u8()}
		inf.Root = netutil.Prefix{Base: netutil.Addr(r.u32()), Len: r.u8()}
		inf.HolderOrg = r.strRef(blob)
		inf.NetName = r.strRef(blob)
		inf.Country = r.strRef(blob)
		inf.RootASNs = r.u32listIn(&u32s)
		inf.RootOrigins = r.u32listIn(&u32s)
		inf.LeafOrigins = r.u32listIn(&u32s)
		inf.Facilitators = r.strlistIn(&strs, blob)
		if r.err != nil {
			return nil, r.err
		}
		if !inf.Prefix.Canonical() || !inf.Root.Canonical() {
			r.fail(fmt.Sprintf("inference %d has a non-canonical prefix", i), nil)
			return nil, r.err
		}
	}
	r.done()
	if r.err != nil {
		return nil, r.err
	}
	return infs, nil
}

func decodeByASN(payload []byte, arenaLen int) (map[uint32][]int32, *CorruptError) {
	r := &reader{data: payload, sec: "byasn"}
	n := r.count("ASN entry", 3)
	if r.err != nil {
		return nil, r.err
	}
	byASN := make(map[uint32][]int32, n)
	for i := 0; i < n; i++ {
		asn := r.uvarint()
		if asn > 0xFFFFFFFF {
			r.fail("ASN overflows u32", nil)
			return nil, r.err
		}
		ln := r.count("index list", 1)
		if r.err != nil {
			return nil, r.err
		}
		list := make([]int32, ln)
		for j := range list {
			idx := r.uvarint()
			if idx >= uint64(arenaLen) {
				r.fail(fmt.Sprintf("ASN %d index %d outside arena of %d", asn, idx, arenaLen), nil)
				return nil, r.err
			}
			list[j] = int32(idx)
		}
		if r.err != nil {
			return nil, r.err
		}
		if _, dup := byASN[uint32(asn)]; dup {
			r.fail(fmt.Sprintf("duplicate ASN %d", asn), nil)
			return nil, r.err
		}
		byASN[uint32(asn)] = list
	}
	r.done()
	if r.err != nil {
		return nil, r.err
	}
	return byASN, nil
}

func decodeReports(payload []byte) ([]*diag.LoadReport, *CorruptError) {
	r := &reader{data: payload, sec: "reports"}
	n := r.count("report", 13)
	if r.err != nil {
		return nil, r.err
	}
	var reports []*diag.LoadReport
	for i := 0; i < n; i++ {
		rep := &diag.LoadReport{
			Source:  r.str(),
			File:    r.str(),
			Parsed:  int(r.uvarint()),
			Skipped: int(r.uvarint()),
			Bytes:   int64(r.u64()),
		}
		flags := r.u8()
		rep.Missing = flags&1 != 0
		rep.Truncated = flags&2 != 0
		if r.err != nil {
			return nil, r.err
		}
		reports = append(reports, rep)
	}
	r.done()
	if r.err != nil {
		return nil, r.err
	}
	return reports, nil
}

// header validates the fixed header and whole-file checksum, returning
// the format version, the generation, and the section table region.
// Shared by Decode and ReadGeneration so both reject non-snapshots
// identically. Only FormatVersion and LegacyVersion pass.
func header(data []byte) (ver uint32, gen uint64, nsect int, err *CorruptError) {
	if len(data) < headerSize+4 {
		return 0, 0, 0, corrupt("header", fmt.Sprintf("file of %d bytes is shorter than any snapshot", len(data)), ErrTruncated)
	}
	if string(data[:8]) != magic {
		return 0, 0, 0, corrupt("header", "not a snapshot file", ErrBadMagic)
	}
	ver = binary.LittleEndian.Uint32(data[8:12])
	if ver != FormatVersion && ver != LegacyVersion {
		return 0, 0, 0, corrupt("header", fmt.Sprintf("format version %d, want %d (or legacy %d)", ver, FormatVersion, LegacyVersion), ErrBadVersion)
	}
	gen = binary.LittleEndian.Uint64(data[12:20])
	n := binary.LittleEndian.Uint32(data[20:24])
	if n == 0 || n > maxSections {
		return 0, 0, 0, corrupt("header", fmt.Sprintf("implausible section count %d", n), nil)
	}
	return ver, gen, int(n), nil
}

// parseFile validates the header, checksums, and section table, and
// returns the format version, generation, and per-section payload
// slices (aliasing data). Every byte is proven before any section is
// handed out — eager, not lazy — so a caller that goes on to alias
// sections in place (the mmap path) has already validated everything
// it will trust. The happy path pays exactly one scan: the whole-file
// CRC covers the header, the section table, every payload, and the
// alignment padding between them, so the per-section CRCs carry no
// additional proof when it matches. They are the attribution pass: on
// a whole-file mismatch each section is re-checksummed individually so
// the error names the section that rotted rather than just "the file".
// The validate-then-trust contract: after parseFile succeeds,
// structural decoding may still reject the content, but no read past
// a section's bounds and no checksum surprise is possible.
func parseFile(data []byte) (ver uint32, gen uint64, payloads map[uint32][]byte, cerr *CorruptError) {
	ver, gen, nsect, cerr := header(data)
	if cerr != nil {
		return 0, 0, nil, cerr
	}
	body := len(data) - 4
	fileCRC := binary.LittleEndian.Uint32(data[body:])

	tableEnd := headerSize + nsect*sectionEntrySize
	if tableEnd > body {
		return 0, 0, nil, corrupt("header", "section table extends past file", ErrTruncated)
	}
	type tableEntry struct {
		id  uint32
		crc uint32
		off uint64
		ln  uint64
	}
	entries := make([]tableEntry, nsect)
	payloads = make(map[uint32][]byte, nsect)
	for i := 0; i < nsect; i++ {
		e := data[headerSize+i*sectionEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:4])
		off := binary.LittleEndian.Uint64(e[4:12])
		ln := binary.LittleEndian.Uint64(e[12:20])
		crc := binary.LittleEndian.Uint32(e[20:24])
		if off < uint64(tableEnd) || off > uint64(body) || ln > uint64(body)-off {
			return 0, 0, nil, corrupt("header", fmt.Sprintf("section %d extends past file", id), ErrTruncated)
		}
		if _, dup := payloads[id]; dup {
			return 0, 0, nil, corrupt("header", fmt.Sprintf("duplicate section %d", id), nil)
		}
		if ver == FormatVersion && off%8 != 0 {
			return 0, 0, nil, corrupt(sectionName(id), fmt.Sprintf("v3 section at unaligned offset %d", off), nil)
		}
		entries[i] = tableEntry{id: id, crc: crc, off: off, ln: ln}
		payloads[id] = data[off : off+ln]
	}
	if crc32.Checksum(data[:body], castagnoli) != fileCRC {
		for _, e := range entries {
			if crc32.Checksum(data[e.off:e.off+e.ln], castagnoli) != e.crc {
				return 0, 0, nil, corrupt(sectionName(e.id), "section CRC mismatch", ErrChecksum)
			}
		}
		return 0, 0, nil, corrupt("file", "whole-file CRC mismatch", ErrChecksum)
	}
	var required []uint32
	if ver == LegacyVersion {
		required = []uint32{secMeta, secArena, secLPM, secByASN, secTable1, secReports}
	} else {
		required = []uint32{secMeta, secStrTab, secU32Slab, secStrRefs, secRecords,
			secLPMNative, secByASNNative, secTable1, secReports}
	}
	for _, id := range required {
		if _, ok := payloads[id]; !ok {
			return 0, 0, nil, corrupt(sectionName(id), "section missing", nil)
		}
	}
	return ver, gen, payloads, nil
}

// Decode validates and decodes a snapshot file, returning a fully
// servable snapshot and its generation. The returned snapshot carries
// Delta.Mode == serve.ModeSnapshot so reload accounting distinguishes
// restored generations from full and delta builds.
//
// For current-format (v3) input the snapshot's indexes are views over
// data — the caller must treat data as immutable for the snapshot's
// lifetime (the GC keeps it alive). Legacy (v2) input is fully
// materialized onto the heap and data is not retained.
//
// Decode never returns a partial snapshot: any magic, version,
// checksum, bounds, or structural failure yields (nil, 0, err) with
// errors.Is(err, ErrCorrupt) true.
func Decode(data []byte) (*serve.Snapshot, uint64, error) {
	ver, gen, payloads, cerr := parseFile(data)
	if cerr != nil {
		return nil, 0, cerr
	}
	if ver == LegacyVersion {
		snap, err := decodeLegacy(payloads, gen)
		if err != nil {
			return nil, 0, err
		}
		return snap, gen, nil
	}
	snap, err := openV3(payloads, gen, nil, serve.LoadModeHeap)
	if err != nil {
		return nil, 0, err
	}
	return snap, gen, nil
}

// decodeLegacy materializes a v2 snapshot fully onto the heap.
func decodeLegacy(payloads map[uint32][]byte, gen uint64) (*serve.Snapshot, error) {
	meta, cerr := decodeMeta(payloads[secMeta])
	if cerr != nil {
		return nil, cerr
	}
	infs, cerr := decodeArena(payloads[secArena])
	if cerr != nil {
		return nil, cerr
	}
	if len(infs) != meta.arenaLen {
		return nil, corrupt("arena", fmt.Sprintf("arena holds %d inferences, meta says %d", len(infs), meta.arenaLen), nil)
	}
	lpm, err := netutil.DecodeLPM(payloads[secLPM], len(infs))
	if err != nil {
		return nil, corrupt("lpm", "index rejected", err)
	}
	byASN, cerr := decodeByASN(payloads[secByASN], len(infs))
	if cerr != nil {
		return nil, cerr
	}
	reports, cerr := decodeReports(payloads[secReports])
	if cerr != nil {
		return nil, cerr
	}

	res, err := core.ResultFromFlat(infs, meta.totalBGP, meta.routedSpace)
	if err != nil {
		return nil, corrupt("arena", "result rejected", err)
	}
	// Copy table1 out of the input: a legacy decode promises not to
	// retain (or alias) the file bytes, which is what lets the mmap
	// open path fall back to this decoder and then drop its mapping.
	table1 := append([]byte(nil), payloads[secTable1]...)
	snap, err := serve.Restore(serve.Restored{
		BuiltAt:         meta.builtAt,
		Generation:      gen,
		Provenance:      meta.provenance,
		Dir:             meta.dir,
		Strict:          meta.strict,
		Result:          res,
		LPM:             lpm,
		ByASN:           byASN,
		Table1:          table1,
		Reports:         reports,
		SkippedAnalyses: meta.skippedAnalyses,
		Delta:           &serve.DeltaInfo{Mode: serve.ModeSnapshot},
	})
	if err != nil {
		return nil, corrupt("snapshot", "restore rejected", err)
	}
	return snap, nil
}

// ReadGeneration extracts the generation number from an encoded
// snapshot after validating the header and whole-file checksum — the
// cheap integrity check a store or fetcher runs before committing to a
// full decode.
func ReadGeneration(data []byte) (uint64, error) {
	_, gen, _, cerr := header(data)
	if cerr != nil {
		return 0, cerr
	}
	body := len(data) - 4
	if crc32.Checksum(data[:body], castagnoli) != binary.LittleEndian.Uint32(data[body:]) {
		return 0, corrupt("file", "whole-file CRC mismatch", ErrChecksum)
	}
	return gen, nil
}

// ReadProvenance extracts the provenance traceparent from an encoded
// snapshot's meta section without a full decode. Like ReadGeneration it
// validates the header and whole-file checksum first, so the publisher
// can read it from bytes it is about to serve.
func ReadProvenance(data []byte) (string, error) {
	_, _, nsect, cerr := header(data)
	if cerr != nil {
		return "", cerr
	}
	body := len(data) - 4
	if crc32.Checksum(data[:body], castagnoli) != binary.LittleEndian.Uint32(data[body:]) {
		return "", corrupt("file", "whole-file CRC mismatch", ErrChecksum)
	}
	tableEnd := headerSize + nsect*sectionEntrySize
	if tableEnd > body {
		return "", corrupt("header", "section table extends past file", ErrTruncated)
	}
	for i := 0; i < nsect; i++ {
		e := data[headerSize+i*sectionEntrySize:]
		if binary.LittleEndian.Uint32(e[0:4]) != secMeta {
			continue
		}
		off := binary.LittleEndian.Uint64(e[4:12])
		ln := binary.LittleEndian.Uint64(e[12:20])
		if off < uint64(tableEnd) || off > uint64(body) || ln > uint64(body)-off {
			return "", corrupt("header", "meta section extends past file", ErrTruncated)
		}
		meta, cerr := decodeMeta(data[off : off+ln])
		if cerr != nil {
			return "", cerr
		}
		return meta.provenance, nil
	}
	return "", corrupt("meta", "section missing", nil)
}

// SectionRange locates one section's payload inside an encoded
// snapshot. This is the fault-injection surface: corruption tests use
// it to flip bits inside every individual section and assert each one
// is rejected.
type SectionRange struct {
	Name string
	Off  int
	Len  int
}

// SectionRanges parses an intact snapshot's section table and returns
// every section's payload range within the file.
func SectionRanges(data []byte) ([]SectionRange, error) {
	_, _, nsect, cerr := header(data)
	if cerr != nil {
		return nil, cerr
	}
	body := len(data) - 4
	tableEnd := headerSize + nsect*sectionEntrySize
	if tableEnd > body {
		return nil, corrupt("header", "section table extends past file", ErrTruncated)
	}
	out := make([]SectionRange, 0, nsect)
	for i := 0; i < nsect; i++ {
		e := data[headerSize+i*sectionEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:4])
		off := binary.LittleEndian.Uint64(e[4:12])
		ln := binary.LittleEndian.Uint64(e[12:20])
		if off < uint64(tableEnd) || off > uint64(body) || ln > uint64(body)-off {
			return nil, corrupt("header", fmt.Sprintf("section %d extends past file", id), ErrTruncated)
		}
		out = append(out, SectionRange{Name: sectionName(id), Off: int(off), Len: int(ln)})
	}
	return out, nil
}

func sectionName(id uint32) string {
	switch id {
	case secMeta:
		return "meta"
	case secArena:
		return "arena"
	case secLPM:
		return "lpm"
	case secByASN:
		return "byasn"
	case secTable1:
		return "table1"
	case secReports:
		return "reports"
	case secStrTab:
		return "strtab"
	case secU32Slab:
		return "u32slab"
	case secStrRefs:
		return "strrefs"
	case secRecords:
		return "records"
	case secLPMNative:
		return "lpm"
	case secByASNNative:
		return "byasn"
	}
	return fmt.Sprintf("section-%d", id)
}
