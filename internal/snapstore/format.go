// Package snapstore persists serving snapshots: a versioned,
// checksummed binary format that encodes a *serve.Snapshot's flat
// serving indexes directly (no re-inference on load), a crash-safe
// on-disk store with atomic generation publication, and an HTTP
// publisher/fetcher pair for stateless replica serving.
//
// The format is paranoid by construction. Every section carries its own
// CRC-32C and the file carries a whole-file CRC-32C, so a torn write, a
// flipped bit, or a truncated download is detected before a single
// decoded value is trusted; counts are bounds-checked against remaining
// bytes so a corrupt length can never become an allocation bomb; and
// decode either returns a fully servable snapshot or a typed
// *CorruptError — never a partial one.
package snapstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/serve"
	"ipleasing/internal/whois"
)

// FormatVersion is the current snapshot format version. A decoder only
// accepts files with exactly this version: the format is a serving-index
// dump, not an archival interchange format, so publisher and replica
// upgrade together and there is no cross-version migration path. Bump it
// on ANY layout change — a version mismatch is a clean typed rejection,
// a silent layout drift is a corruption bug.
//
// Version history:
//
//	1 — initial layout.
//	2 — meta section gained a trailing provenance traceparent (the
//	    publisher reload trace that built the generation).
const FormatVersion = 2

// magic identifies a snapshot file. 8 bytes, never changes; the version
// field after it is what evolves.
const magic = "IPLSNAP1"

// Section IDs. The section table makes sections self-describing, so a
// future version can append new sections without disturbing this
// decoder's view of the old ones — but removing or reshaping one
// requires a FormatVersion bump.
const (
	secMeta    = 1 // build metadata: BuiltAt, Dir, Strict, totals, skipped analyses
	secArena   = 2 // flat inference arena, registry-major All order
	secLPM     = 3 // flat LPM node array (netutil.LPM wire form)
	secByASN   = 4 // ASN -> arena index lists
	secTable1  = 5 // pre-rendered Markdown Table 1, verbatim bytes
	secReports = 6 // per-source load accounting
)

// headerSize is magic(8) + version(4) + generation(8) + section count(4).
const headerSize = 8 + 4 + 8 + 4

// sectionEntrySize is one section-table entry: id(4) + offset(8) +
// length(8) + CRC-32C(4).
const sectionEntrySize = 4 + 8 + 8 + 4

// maxSections bounds the section-table count a decoder will honour;
// far above any plausible format evolution, low enough that a corrupt
// count cannot drive a huge table allocation.
const maxSections = 64

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors. Every decode failure satisfies
// errors.Is(err, ErrCorrupt); the more specific sentinels narrow the
// cause for callers that care (the store's recovery scan treats them
// all the same — skip the generation).
var (
	// ErrCorrupt is the umbrella: the bytes are not a loadable snapshot.
	ErrCorrupt = errors.New("snapstore: corrupt snapshot")
	// ErrBadMagic marks a file that is not a snapshot at all.
	ErrBadMagic = errors.New("snapstore: bad magic")
	// ErrBadVersion marks a snapshot written by a different format
	// version.
	ErrBadVersion = errors.New("snapstore: unsupported format version")
	// ErrChecksum marks a CRC mismatch (whole-file or per-section).
	ErrChecksum = errors.New("snapstore: checksum mismatch")
	// ErrTruncated marks a file shorter than its own structure claims.
	ErrTruncated = errors.New("snapstore: truncated snapshot")
)

// CorruptError reports why a snapshot was rejected. It unwraps to both
// ErrCorrupt and the specific sentinel (when one applies), so
// errors.Is works against either.
type CorruptError struct {
	Section string // section being decoded, or "header"/"file"
	Reason  string
	Err     error // specific sentinel or underlying decode error, may be nil
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("snapstore: %s: %s: %v", e.Section, e.Reason, e.Err)
	}
	return fmt.Sprintf("snapstore: %s: %s", e.Section, e.Reason)
}

func (e *CorruptError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorrupt, e.Err}
	}
	return []error{ErrCorrupt}
}

func corrupt(section, reason string, err error) *CorruptError {
	return &CorruptError{Section: section, Reason: reason, Err: err}
}

// ---- encoding ----

// appendUvarint, appendU32, appendU64, appendStr are the little-endian
// building blocks shared by every section encoder.

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendStrs(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendStr(dst, s)
	}
	return dst
}

func appendU32s(dst []byte, vs []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

func encodeMeta(snap *serve.Snapshot) []byte {
	res := snap.Result
	b := make([]byte, 0, 64+len(snap.Dir))
	var builtAt int64
	if !snap.BuiltAt.IsZero() {
		builtAt = snap.BuiltAt.UnixNano()
	}
	b = appendU64(b, uint64(builtAt))
	b = appendUvarint(b, uint64(res.TotalBGPPrefixes))
	b = appendU64(b, res.RoutedSpace)
	b = appendUvarint(b, uint64(snap.NumInferences()))
	if snap.Strict {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendStr(b, snap.Dir)
	b = appendStrs(b, snap.SkippedAnalyses)
	b = appendStr(b, snap.Provenance)
	return b
}

func encodeArena(infs []core.Inference) []byte {
	b := make([]byte, 0, 64*len(infs)+16)
	b = appendUvarint(b, uint64(len(infs)))
	for i := range infs {
		inf := &infs[i]
		b = append(b, byte(inf.Registry), byte(inf.Category))
		b = appendU32(b, uint32(inf.Prefix.Base))
		b = append(b, inf.Prefix.Len)
		b = appendU32(b, uint32(inf.Root.Base))
		b = append(b, inf.Root.Len)
		b = appendStr(b, inf.HolderOrg)
		b = appendStr(b, inf.NetName)
		b = appendStr(b, inf.Country)
		b = appendU32s(b, inf.RootASNs)
		b = appendU32s(b, inf.RootOrigins)
		b = appendU32s(b, inf.LeafOrigins)
		b = appendStrs(b, inf.Facilitators)
	}
	return b
}

func encodeByASN(byASN map[uint32][]int32) []byte {
	asns := make([]uint32, 0, len(byASN))
	for asn := range byASN {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	b := make([]byte, 0, 8*len(asns)+16)
	b = appendUvarint(b, uint64(len(asns)))
	for _, asn := range asns {
		list := byASN[asn]
		b = appendUvarint(b, uint64(asn))
		b = appendUvarint(b, uint64(len(list)))
		for _, idx := range list {
			b = appendUvarint(b, uint64(uint32(idx)))
		}
	}
	return b
}

func encodeReports(reports []*diag.LoadReport) []byte {
	b := make([]byte, 0, 64*len(reports)+16)
	n := 0
	for _, r := range reports {
		if r != nil {
			n++
		}
	}
	b = appendUvarint(b, uint64(n))
	for _, r := range reports {
		if r == nil {
			continue
		}
		b = appendStr(b, r.Source)
		b = appendStr(b, r.File)
		b = appendUvarint(b, uint64(r.Parsed))
		b = appendUvarint(b, uint64(r.Skipped))
		b = appendU64(b, uint64(r.Bytes))
		var flags byte
		if r.Missing {
			flags |= 1
		}
		if r.Truncated {
			flags |= 2
		}
		b = append(b, flags)
	}
	return b
}

// Encode serializes a serving snapshot into the versioned binary form.
// The encoding reads only the snapshot's immutable serving indexes —
// the flat arena, the LPM node array, the ASN index, the pre-rendered
// Table 1, and the load accounting — so a decoded snapshot answers
// every query byte-identically without re-running inference or any
// index build. gen is the generation number stamped into the header.
func Encode(snap *serve.Snapshot, gen uint64) []byte {
	sections := []struct {
		id      uint32
		payload []byte
	}{
		{secMeta, encodeMeta(snap)},
		{secArena, encodeArena(snap.FlatInferences())},
		{secLPM, snap.LPM().AppendBinary(nil)},
		{secByASN, encodeByASN(snap.ByASN())},
		{secTable1, snap.Table1()},
		{secReports, encodeReports(snap.Reports)},
	}

	total := headerSize + len(sections)*sectionEntrySize
	off := total
	for _, s := range sections {
		total += len(s.payload)
	}
	total += 4 // whole-file CRC

	b := make([]byte, 0, total)
	b = append(b, magic...)
	b = appendU32(b, FormatVersion)
	b = appendU64(b, gen)
	b = appendU32(b, uint32(len(sections)))
	for _, s := range sections {
		b = appendU32(b, s.id)
		b = appendU64(b, uint64(off))
		b = appendU64(b, uint64(len(s.payload)))
		b = appendU32(b, crc32.Checksum(s.payload, castagnoli))
		off += len(s.payload)
	}
	for _, s := range sections {
		b = append(b, s.payload...)
	}
	b = appendU32(b, crc32.Checksum(b, castagnoli))
	return b
}

// ---- decoding ----

// reader is a bounds-checked little-endian cursor over one section's
// payload. The first failure sticks; every later read returns zero
// values, so decode loops stay linear and the single error carries the
// first (root-cause) rejection.
type reader struct {
	data []byte
	off  int
	sec  string
	err  *CorruptError
}

func (r *reader) fail(reason string, err error) {
	if r.err == nil {
		r.err = corrupt(r.sec, reason, err)
	}
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.fail(fmt.Sprintf("need %d bytes, have %d", n, r.remaining()), ErrTruncated)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint", ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// count reads an element count and rejects it unless the remaining
// bytes could plausibly hold that many elements of at least elemMin
// bytes each — the allocation-bomb guard.
func (r *reader) count(what string, elemMin int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v > uint64(r.remaining()/elemMin) {
		r.fail(fmt.Sprintf("%s count %d exceeds remaining payload", what, v), ErrTruncated)
		return 0
	}
	return int(v)
}

func (r *reader) str(intern map[string]string) string {
	n := r.count("string length", 1)
	b := r.take(n)
	if b == nil || len(b) == 0 {
		return ""
	}
	if intern != nil {
		if s, ok := intern[string(b)]; ok {
			return s
		}
		s := string(b)
		intern[s] = s
		return s
	}
	return string(b)
}

func (r *reader) u32list() []uint32 {
	n := r.count("u32 list", 1)
	if n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		v := r.uvarint()
		if v > 0xFFFFFFFF {
			r.fail(fmt.Sprintf("u32 list element %d overflows", v), nil)
			return nil
		}
		out[i] = uint32(v)
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *reader) strlist(intern map[string]string) []string {
	n := r.count("string list", 1)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str(intern)
	}
	if r.err != nil {
		return nil
	}
	return out
}

// done rejects trailing garbage: a valid section is consumed exactly.
func (r *reader) done() {
	if r.err == nil && r.remaining() != 0 {
		r.fail(fmt.Sprintf("%d trailing bytes", r.remaining()), nil)
	}
}

type decodedMeta struct {
	builtAt         time.Time
	dir             string
	strict          bool
	totalBGP        int
	routedSpace     uint64
	arenaLen        int
	skippedAnalyses []string
	provenance      string
}

func decodeMeta(payload []byte) (decodedMeta, *CorruptError) {
	r := &reader{data: payload, sec: "meta"}
	var m decodedMeta
	builtAt := int64(r.u64())
	m.totalBGP = int(r.uvarint())
	m.routedSpace = r.u64()
	m.arenaLen = int(r.uvarint())
	m.strict = r.u8() == 1
	m.dir = r.str(nil)
	m.skippedAnalyses = r.strlist(nil)
	m.provenance = r.str(nil)
	r.done()
	if r.err != nil {
		return decodedMeta{}, r.err
	}
	if builtAt != 0 {
		m.builtAt = time.Unix(0, builtAt)
	}
	return m, nil
}

func decodeArena(payload []byte) ([]core.Inference, *CorruptError) {
	r := &reader{data: payload, sec: "arena"}
	// One inference is at least reg+cat+prefix+root+3 empty strings+4
	// empty lists = 19 bytes on the wire.
	n := r.count("inference", 19)
	if r.err != nil {
		return nil, r.err
	}
	intern := make(map[string]string)
	infs := make([]core.Inference, n)
	for i := range infs {
		inf := &infs[i]
		inf.Registry = whois.Registry(r.u8())
		inf.Category = core.Category(r.u8())
		inf.Prefix = netutil.Prefix{Base: netutil.Addr(r.u32()), Len: r.u8()}
		inf.Root = netutil.Prefix{Base: netutil.Addr(r.u32()), Len: r.u8()}
		inf.HolderOrg = r.str(intern)
		inf.NetName = r.str(intern)
		inf.Country = r.str(intern)
		inf.RootASNs = r.u32list()
		inf.RootOrigins = r.u32list()
		inf.LeafOrigins = r.u32list()
		inf.Facilitators = r.strlist(intern)
		if r.err != nil {
			return nil, r.err
		}
		if !inf.Prefix.Canonical() || !inf.Root.Canonical() {
			r.fail(fmt.Sprintf("inference %d has a non-canonical prefix", i), nil)
			return nil, r.err
		}
	}
	r.done()
	if r.err != nil {
		return nil, r.err
	}
	return infs, nil
}

func decodeByASN(payload []byte, arenaLen int) (map[uint32][]int32, *CorruptError) {
	r := &reader{data: payload, sec: "byasn"}
	n := r.count("ASN entry", 3)
	if r.err != nil {
		return nil, r.err
	}
	byASN := make(map[uint32][]int32, n)
	for i := 0; i < n; i++ {
		asn := r.uvarint()
		if asn > 0xFFFFFFFF {
			r.fail("ASN overflows u32", nil)
			return nil, r.err
		}
		ln := r.count("index list", 1)
		if r.err != nil {
			return nil, r.err
		}
		list := make([]int32, ln)
		for j := range list {
			idx := r.uvarint()
			if idx >= uint64(arenaLen) {
				r.fail(fmt.Sprintf("ASN %d index %d outside arena of %d", asn, idx, arenaLen), nil)
				return nil, r.err
			}
			list[j] = int32(idx)
		}
		if r.err != nil {
			return nil, r.err
		}
		if _, dup := byASN[uint32(asn)]; dup {
			r.fail(fmt.Sprintf("duplicate ASN %d", asn), nil)
			return nil, r.err
		}
		byASN[uint32(asn)] = list
	}
	r.done()
	if r.err != nil {
		return nil, r.err
	}
	return byASN, nil
}

func decodeReports(payload []byte) ([]*diag.LoadReport, *CorruptError) {
	r := &reader{data: payload, sec: "reports"}
	n := r.count("report", 13)
	if r.err != nil {
		return nil, r.err
	}
	var reports []*diag.LoadReport
	for i := 0; i < n; i++ {
		rep := &diag.LoadReport{
			Source:  r.str(nil),
			File:    r.str(nil),
			Parsed:  int(r.uvarint()),
			Skipped: int(r.uvarint()),
			Bytes:   int64(r.u64()),
		}
		flags := r.u8()
		rep.Missing = flags&1 != 0
		rep.Truncated = flags&2 != 0
		if r.err != nil {
			return nil, r.err
		}
		reports = append(reports, rep)
	}
	r.done()
	if r.err != nil {
		return nil, r.err
	}
	return reports, nil
}

// header validates the fixed header and whole-file checksum, returning
// the generation and the section table region. Shared by Decode and
// ReadGeneration so both reject non-snapshots identically.
func header(data []byte) (gen uint64, nsect int, err *CorruptError) {
	if len(data) < headerSize+4 {
		return 0, 0, corrupt("header", fmt.Sprintf("file of %d bytes is shorter than any snapshot", len(data)), ErrTruncated)
	}
	if string(data[:8]) != magic {
		return 0, 0, corrupt("header", "not a snapshot file", ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return 0, 0, corrupt("header", fmt.Sprintf("format version %d, want %d", v, FormatVersion), ErrBadVersion)
	}
	gen = binary.LittleEndian.Uint64(data[12:20])
	n := binary.LittleEndian.Uint32(data[20:24])
	if n == 0 || n > maxSections {
		return 0, 0, corrupt("header", fmt.Sprintf("implausible section count %d", n), nil)
	}
	return gen, int(n), nil
}

// Decode validates and decodes a snapshot file, returning a fully
// servable snapshot and its generation. The returned snapshot carries
// Delta.Mode == serve.ModeSnapshot so reload accounting distinguishes
// restored generations from full and delta builds.
//
// Decode never returns a partial snapshot: any magic, version,
// checksum, bounds, or structural failure yields (nil, 0, err) with
// errors.Is(err, ErrCorrupt) true.
func Decode(data []byte) (*serve.Snapshot, uint64, error) {
	gen, nsect, cerr := header(data)
	if cerr != nil {
		return nil, 0, cerr
	}
	body := len(data) - 4
	fileCRC := binary.LittleEndian.Uint32(data[body:])
	if crc32.Checksum(data[:body], castagnoli) != fileCRC {
		return nil, 0, corrupt("file", "whole-file CRC mismatch", ErrChecksum)
	}

	tableEnd := headerSize + nsect*sectionEntrySize
	if tableEnd > body {
		return nil, 0, corrupt("header", "section table extends past file", ErrTruncated)
	}
	payloads := make(map[uint32][]byte, nsect)
	for i := 0; i < nsect; i++ {
		e := data[headerSize+i*sectionEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:4])
		off := binary.LittleEndian.Uint64(e[4:12])
		ln := binary.LittleEndian.Uint64(e[12:20])
		crc := binary.LittleEndian.Uint32(e[20:24])
		if off < uint64(tableEnd) || off > uint64(body) || ln > uint64(body)-off {
			return nil, 0, corrupt("header", fmt.Sprintf("section %d extends past file", id), ErrTruncated)
		}
		if _, dup := payloads[id]; dup {
			return nil, 0, corrupt("header", fmt.Sprintf("duplicate section %d", id), nil)
		}
		payload := data[off : off+ln]
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, 0, corrupt(sectionName(id), "section CRC mismatch", ErrChecksum)
		}
		payloads[id] = payload
	}
	for _, id := range []uint32{secMeta, secArena, secLPM, secByASN, secTable1, secReports} {
		if _, ok := payloads[id]; !ok {
			return nil, 0, corrupt(sectionName(id), "section missing", nil)
		}
	}

	meta, cerr := decodeMeta(payloads[secMeta])
	if cerr != nil {
		return nil, 0, cerr
	}
	infs, cerr := decodeArena(payloads[secArena])
	if cerr != nil {
		return nil, 0, cerr
	}
	if len(infs) != meta.arenaLen {
		return nil, 0, corrupt("arena", fmt.Sprintf("arena holds %d inferences, meta says %d", len(infs), meta.arenaLen), nil)
	}
	lpm, err := netutil.DecodeLPM(payloads[secLPM], len(infs))
	if err != nil {
		return nil, 0, corrupt("lpm", "index rejected", err)
	}
	byASN, cerr := decodeByASN(payloads[secByASN], len(infs))
	if cerr != nil {
		return nil, 0, cerr
	}
	reports, cerr := decodeReports(payloads[secReports])
	if cerr != nil {
		return nil, 0, cerr
	}

	res, err := core.ResultFromFlat(infs, meta.totalBGP, meta.routedSpace)
	if err != nil {
		return nil, 0, corrupt("arena", "result rejected", err)
	}
	snap, err := serve.Restore(serve.Restored{
		BuiltAt:         meta.builtAt,
		Generation:      gen,
		Provenance:      meta.provenance,
		Dir:             meta.dir,
		Strict:          meta.strict,
		Result:          res,
		LPM:             lpm,
		ByASN:           byASN,
		Table1:          payloads[secTable1],
		Reports:         reports,
		SkippedAnalyses: meta.skippedAnalyses,
		Delta:           &serve.DeltaInfo{Mode: serve.ModeSnapshot},
	})
	if err != nil {
		return nil, 0, corrupt("snapshot", "restore rejected", err)
	}
	return snap, gen, nil
}

// ReadGeneration extracts the generation number from an encoded
// snapshot after validating the header and whole-file checksum — the
// cheap integrity check a store or fetcher runs before committing to a
// full decode.
func ReadGeneration(data []byte) (uint64, error) {
	gen, _, cerr := header(data)
	if cerr != nil {
		return 0, cerr
	}
	body := len(data) - 4
	if crc32.Checksum(data[:body], castagnoli) != binary.LittleEndian.Uint32(data[body:]) {
		return 0, corrupt("file", "whole-file CRC mismatch", ErrChecksum)
	}
	return gen, nil
}

// ReadProvenance extracts the provenance traceparent from an encoded
// snapshot's meta section without a full decode. Like ReadGeneration it
// validates the header and whole-file checksum first, so the publisher
// can read it from bytes it is about to serve.
func ReadProvenance(data []byte) (string, error) {
	_, nsect, cerr := header(data)
	if cerr != nil {
		return "", cerr
	}
	body := len(data) - 4
	if crc32.Checksum(data[:body], castagnoli) != binary.LittleEndian.Uint32(data[body:]) {
		return "", corrupt("file", "whole-file CRC mismatch", ErrChecksum)
	}
	tableEnd := headerSize + nsect*sectionEntrySize
	if tableEnd > body {
		return "", corrupt("header", "section table extends past file", ErrTruncated)
	}
	for i := 0; i < nsect; i++ {
		e := data[headerSize+i*sectionEntrySize:]
		if binary.LittleEndian.Uint32(e[0:4]) != secMeta {
			continue
		}
		off := binary.LittleEndian.Uint64(e[4:12])
		ln := binary.LittleEndian.Uint64(e[12:20])
		if off < uint64(tableEnd) || off > uint64(body) || ln > uint64(body)-off {
			return "", corrupt("header", "meta section extends past file", ErrTruncated)
		}
		meta, cerr := decodeMeta(data[off : off+ln])
		if cerr != nil {
			return "", cerr
		}
		return meta.provenance, nil
	}
	return "", corrupt("meta", "section missing", nil)
}

// SectionRange locates one section's payload inside an encoded
// snapshot. This is the fault-injection surface: corruption tests use
// it to flip bits inside every individual section and assert each one
// is rejected.
type SectionRange struct {
	Name string
	Off  int
	Len  int
}

// SectionRanges parses an intact snapshot's section table and returns
// every section's payload range within the file.
func SectionRanges(data []byte) ([]SectionRange, error) {
	_, nsect, cerr := header(data)
	if cerr != nil {
		return nil, cerr
	}
	body := len(data) - 4
	tableEnd := headerSize + nsect*sectionEntrySize
	if tableEnd > body {
		return nil, corrupt("header", "section table extends past file", ErrTruncated)
	}
	out := make([]SectionRange, 0, nsect)
	for i := 0; i < nsect; i++ {
		e := data[headerSize+i*sectionEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:4])
		off := binary.LittleEndian.Uint64(e[4:12])
		ln := binary.LittleEndian.Uint64(e[12:20])
		if off < uint64(tableEnd) || off > uint64(body) || ln > uint64(body)-off {
			return nil, corrupt("header", fmt.Sprintf("section %d extends past file", id), ErrTruncated)
		}
		out = append(out, SectionRange{Name: sectionName(id), Off: int(off), Len: int(ln)})
	}
	return out, nil
}

func sectionName(id uint32) string {
	switch id {
	case secMeta:
		return "meta"
	case secArena:
		return "arena"
	case secLPM:
		return "lpm"
	case secByASN:
		return "byasn"
	case secTable1:
		return "table1"
	case secReports:
		return "reports"
	}
	return fmt.Sprintf("section-%d", id)
}
