package snapstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"ipleasing/internal/serve"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := testSnapshot(t)
	data := Encode(want, 42)

	gen, err := ReadGeneration(data)
	if err != nil {
		t.Fatalf("ReadGeneration: %v", err)
	}
	if gen != 42 {
		t.Fatalf("generation = %d, want 42", gen)
	}

	got, gen, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gen != 42 {
		t.Fatalf("decoded generation = %d, want 42", gen)
	}
	if got.Delta == nil || got.Delta.Mode != serve.ModeSnapshot {
		t.Fatalf("decoded Delta = %+v, want Mode=%q", got.Delta, serve.ModeSnapshot)
	}
	assertServesIdentical(t, "decoded", got, want)
}

func TestEncodeIsDeterministic(t *testing.T) {
	snap := testSnapshot(t)
	a, b := Encode(snap, 7), Encode(snap, 7)
	if string(a) != string(b) {
		t.Fatal("two encodings of the same snapshot differ")
	}
}

// TestDecodeRejectsBitFlips flips one bit at a sweep of positions —
// header, section table, every payload, trailing checksum — and
// requires every flip to be rejected. The whole-file CRC makes this a
// guarantee, not a sampling hope, but the sweep also exercises the
// rejection paths beneath it.
func TestDecodeRejectsBitFlips(t *testing.T) {
	data := Encode(testSnapshot(t), 3)
	rnd := rand.New(rand.NewSource(1))
	stride := len(data)/257 + 1
	for off := 0; off < len(data); off += stride {
		mut := append([]byte(nil), data...)
		mut[off] ^= 1 << uint(rnd.Intn(8))
		if _, _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at offset %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := Encode(testSnapshot(t), 3)
	cuts := []int{0, 1, 7, 8, 23, 24, headerSize + 3*sectionEntrySize,
		len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 1}
	for _, cut := range cuts {
		if _, _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

// refixCRC recomputes the whole-file checksum after a deliberate patch,
// so tests can reach the validation layers beneath it.
func refixCRC(data []byte) []byte {
	out := append([]byte(nil), data...)
	body := len(out) - 4
	binary.LittleEndian.PutUint32(out[body:], crc32.Checksum(out[:body], castagnoli))
	return out
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	data := Encode(testSnapshot(t), 3)
	mut := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(mut[8:12], FormatVersion+1)
	_, _, err := Decode(refixCRC(mut))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("wrong version: got %v, want ErrBadVersion", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong version: %v does not wrap ErrCorrupt", err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data := Encode(testSnapshot(t), 3)
	mut := append([]byte(nil), data...)
	mut[0] = 'X'
	if _, _, err := Decode(refixCRC(mut)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}
}

// patchSection replaces one section's payload in an encoded snapshot,
// recomputing the section CRC, the table offsets, and the file CRC —
// producing a checksum-valid file whose structural contents are wrong.
// This is how the tests reach the deep validation (bounds checks,
// allocation-bomb guards, cross-section consistency) that the CRCs
// would otherwise shadow.
func patchSection(t *testing.T, data []byte, name string, mutate func(payload []byte) []byte) []byte {
	t.Helper()
	secs, err := SectionRanges(data)
	if err != nil {
		t.Fatal(err)
	}
	gen := binary.LittleEndian.Uint64(data[12:20])
	type sec struct {
		id      uint32
		payload []byte
	}
	var out []sec
	found := false
	for i, s := range secs {
		e := data[headerSize+i*sectionEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:4])
		payload := append([]byte(nil), data[s.Off:s.Off+s.Len]...)
		if s.Name == name {
			payload = mutate(payload)
			found = true
		}
		out = append(out, sec{id, payload})
	}
	if !found {
		t.Fatalf("no section %q", name)
	}
	b := make([]byte, 0, len(data))
	b = append(b, magic...)
	b = appendU32(b, FormatVersion)
	b = appendU64(b, gen)
	b = appendU32(b, uint32(len(out)))
	// v3 payloads must sit at 8-aligned offsets, same as encodeFile.
	offs := make([]int, len(out))
	off := headerSize + len(out)*sectionEntrySize
	for i, s := range out {
		off = (off + 7) &^ 7
		offs[i] = off
		b = appendU32(b, s.id)
		b = appendU64(b, uint64(off))
		b = appendU64(b, uint64(len(s.payload)))
		b = appendU32(b, crc32.Checksum(s.payload, castagnoli))
		off += len(s.payload)
	}
	for i, s := range out {
		for len(b) < offs[i] {
			b = append(b, 0)
		}
		b = append(b, s.payload...)
	}
	return appendU32(b, crc32.Checksum(b, castagnoli))
}

func TestDecodeRejectsStructuralDamage(t *testing.T) {
	data := Encode(testSnapshot(t), 3)
	cases := []struct {
		name    string
		section string
		mutate  func(payload []byte) []byte
	}{
		{"records-count-bomb", "records", func(p []byte) []byte {
			// Claim 2^32-1 records in a payload that holds far fewer: the
			// fixed-width length check must refuse before allocating.
			out := append([]byte(nil), p...)
			binary.LittleEndian.PutUint32(out[0:4], 0xffffffff)
			return out
		}},
		{"byasn-index-out-of-arena", "byasn", func(p []byte) []byte {
			// One ASN entry whose single arena index points far past the
			// arena.
			out := appendU32(nil, 1) // entry count
			out = appendU32(out, 1)  // slab length
			out = appendU32(out, 64512)
			out = appendU32(out, 0)
			out = appendU32(out, 1)
			return appendU32(out, 1<<30)
		}},
		{"strtab-run-out-of-blob", "strtab", func(p []byte) []byte {
			// First string's (off, len) run reaches past the blob.
			out := append([]byte(nil), p...)
			binary.LittleEndian.PutUint32(out[12:16], 0xffff0000)
			return out
		}},
		{"strrefs-id-out-of-table", "strrefs", func(p []byte) []byte {
			// A facilitator reference naming a string ID the table lacks.
			out := append([]byte(nil), p...)
			if binary.LittleEndian.Uint32(out[0:4]) == 0 {
				// No facilitators in the fixture: add one dangling ref.
				binary.LittleEndian.PutUint32(out[0:4], 1)
				out = appendU32(out, 0xffffff00)
			} else {
				binary.LittleEndian.PutUint32(out[8:12], 0xffffff00)
			}
			return out
		}},
		{"lpm-garbage", "lpm", func(p []byte) []byte {
			return []byte{0xff, 0xff, 0xff}
		}},
		{"meta-arena-length-mismatch", "meta", func(p []byte) []byte {
			// builtAt u64, totalBGP uvarint, routedSpace u64, arenaLen uvarint.
			out := append([]byte(nil), p[:8]...)
			rest := p[8:]
			v, n := binary.Uvarint(rest) // totalBGP
			out = binary.AppendUvarint(out, v)
			rest = rest[n:]
			out = append(out, rest[:8]...) // routedSpace
			rest = rest[8:]
			_, n = binary.Uvarint(rest) // arenaLen — replace with a lie
			out = binary.AppendUvarint(out, 5)
			return append(out, rest[n:]...)
		}},
		{"reports-trailing-garbage", "reports", func(p []byte) []byte {
			return append(append([]byte(nil), p...), 0xde, 0xad)
		}},
		{"records-bad-category", "records", func(p []byte) []byte {
			out := append([]byte(nil), p...)
			out[8+53] = 0xee // first record's category byte
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := patchSection(t, data, tc.section, tc.mutate)
			if _, _, err := Decode(mut); err == nil {
				t.Fatal("structurally damaged snapshot accepted")
			} else if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

func TestReadGenerationRejectsDamage(t *testing.T) {
	data := Encode(testSnapshot(t), 9)
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x10
	if _, err := ReadGeneration(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadGeneration on damaged file: %v, want ErrCorrupt", err)
	}
	if _, err := ReadGeneration(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadGeneration on empty file: %v, want ErrTruncated", err)
	}
}
