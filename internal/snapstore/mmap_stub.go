//go:build !unix

package snapstore

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(data []byte) error { return nil }

func madviseWillNeed(data []byte) error { return nil }
