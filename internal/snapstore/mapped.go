package snapstore

import (
	"fmt"
	"os"
	"sync/atomic"

	"ipleasing/internal/serve"
	"ipleasing/internal/telemetry"
)

// Mapped is a refcounted memory-mapped snapshot file. It implements
// serve.Backing: the serving snapshot holds the creation reference,
// each in-flight request that touches the snapshot holds one more, and
// the final Release unmaps. The swap path (serve.Server.Reload)
// releases the old generation's creation reference only after the new
// snapshot is installed, so a mapping disappears exactly when the last
// in-flight request over it drains — never under one.
type Mapped struct {
	refs    atomic.Int64
	data    []byte
	metrics *Metrics
}

// newMapped wraps a mapping with its creation reference already held.
func newMapped(data []byte, metrics *Metrics) *Mapped {
	m := &Mapped{data: data, metrics: metrics}
	m.refs.Store(1)
	metrics.observeMmapActive(+1)
	return m
}

// Bytes returns the mapped file. Valid only while the caller holds a
// reference.
func (m *Mapped) Bytes() []byte { return m.data }

// Active reports whether the mapping is still live (any reference
// outstanding). Test hook for the unmap-after-drain guarantee.
func (m *Mapped) Active() bool { return m.refs.Load() > 0 }

// Acquire takes a reference, failing when the mapping has already been
// released for the last time.
func (m *Mapped) Acquire() bool {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops a reference; the last one unmaps the file.
func (m *Mapped) Release() {
	if m.refs.Add(-1) == 0 {
		m.metrics.observeMmapActive(-1)
		munmapFile(m.data)
		m.data = nil
	}
}

// OpenOptions configures OpenFile.
type OpenOptions struct {
	// ForceHeap disables the mapping path: the file is read and decoded
	// onto the heap exactly as a fetched body would be. Set by the
	// daemon when the operator passes -snapshot-mmap=false.
	ForceHeap bool
	Logger    *telemetry.Logger
	Metrics   *Metrics
}

// Loaded is a snapshot opened from a generation file.
type Loaded struct {
	Snap *serve.Snapshot
	Gen  uint64
	// Data is the encoded file: the live mapping when Backing is
	// non-nil (valid only while a reference is held), a heap copy
	// otherwise. Publishers hand it to Publisher.SetMapped to serve
	// /snapshot/current without a second copy.
	Data []byte
	// Backing is the mapping the snapshot serves from, nil in heap
	// mode. The snapshot owns the creation reference; callers that keep
	// Data past the snapshot's lifetime must Acquire their own.
	Backing *Mapped
	// Mode is serve.LoadModeMmap or serve.LoadModeHeap.
	Mode string
}

// OpenFile opens one snapshot generation file for serving. On a v3
// file it maps the bytes (page cache, shared, read-only), hints
// readahead, CRC-validates every section eagerly — validate-then-
// trust: a corrupt file fails here with ErrCorrupt; a valid one is
// never integrity-checked again — and assembles the snapshot as views
// over the mapping: no per-record decode, interned strings built once,
// near-zero allocations. A v2 (legacy) file, a mapping failure, or an
// unsupported platform degrade to the heap path: read, full
// materializing decode, same semantics, more RAM and startup time.
func OpenFile(path string, opts OpenOptions) (*Loaded, error) {
	if opts.ForceHeap || !mmapSupported {
		return openHeap(path, opts)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapstore: open %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("snapstore: stat %s: %w", path, err)
	}
	size := fi.Size()
	if size < headerSize {
		return nil, corrupt("header", fmt.Sprintf("%s is %d bytes", path, size), ErrTruncated)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("snapstore: %s: %d bytes exceed the address space", path, size)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		// Mapping can fail for environmental reasons (filesystem without
		// mmap support, vm.max_map_count); that must degrade, not fail.
		opts.Logger.Warn("snapshot mmap failed, falling back to heap decode", "file", path, "err", err)
		return openHeap(path, opts)
	}
	madviseWillNeed(data)
	ver, gen, _, cerr := header(data)
	if cerr != nil {
		munmapFile(data)
		return nil, cerr
	}
	if ver == LegacyVersion {
		// One version back loads, but not zero-copy: the v2 arena needs
		// a materializing decode, so the mapping buys nothing.
		munmapFile(data)
		opts.Logger.Info("legacy snapshot version, decoding onto heap", "file", path, "version", ver)
		return openHeap(path, opts)
	}
	_, _, payloads, cerr := parseFile(data)
	if cerr != nil {
		munmapFile(data)
		return nil, cerr
	}
	backing := newMapped(data, opts.Metrics)
	snap, err := openV3(payloads, gen, backing, serve.LoadModeMmap)
	if err != nil {
		backing.Release()
		return nil, err
	}
	opts.Metrics.observeLoadMode(serve.LoadModeMmap)
	return &Loaded{Snap: snap, Gen: gen, Data: data, Backing: backing, Mode: serve.LoadModeMmap}, nil
}

// openHeap is the materializing path: identical output, no mapping.
func openHeap(path string, opts OpenOptions) (*Loaded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapstore: read %s: %w", path, err)
	}
	snap, gen, err := Decode(data)
	if err != nil {
		return nil, err
	}
	opts.Metrics.observeLoadMode(serve.LoadModeHeap)
	return &Loaded{Snap: snap, Gen: gen, Data: data, Mode: serve.LoadModeHeap}, nil
}
