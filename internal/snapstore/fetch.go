package snapstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipleasing/internal/serve"
	"ipleasing/internal/telemetry"
)

// generationHeader carries the decimal generation number on publisher
// responses, so a replica can measure lag from a HEAD probe without
// parsing the ETag.
const generationHeader = "X-Snapshot-Generation"

// provenanceHeader carries the published generation's provenance — the
// W3C traceparent of the publisher reload that built it — on publisher
// responses, so operators can join a fetched generation to the
// publisher's /debug/traces without decoding the body.
const provenanceHeader = "X-Snapshot-Traceparent"

// ErrUnchanged reports a conditional fetch answered 304: the publisher
// still serves the generation the fetcher already has.
var ErrUnchanged = errors.New("snapstore: snapshot unchanged")

// ErrNotPublished reports a publisher that has not published any
// generation yet (HTTP 503).
var ErrNotPublished = errors.New("snapstore: publisher has no snapshot yet")

// RetryAfterError wraps a fetch or probe failure whose response carried
// a Retry-After header (a 429 from an overloaded publisher's limiter,
// or a 503 while it warms up). After is the honored back-off, already
// capped at FetcherOptions.RetryAfterCap — the poll loop suppresses
// ticks for that long instead of hammering a server that explicitly
// asked for room, and the serve reload machinery stretches its retry
// backoff to at least After.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// RetryAfter reports the honored back-off hint. It implements the
// interface internal/serve uses to stretch reload-retry backoff without
// either package importing the other.
func (e *RetryAfterError) RetryAfter() time.Duration { return e.After }

// parseRetryAfter parses both Retry-After header forms — delta-seconds
// ("120") and HTTP-date ("Fri, 31 Dec 1999 23:59:59 GMT") — into a
// positive duration from now. Returns false for an absent, unparseable,
// zero, or already-elapsed header: a hint that doesn't push the next
// attempt into the future carries no information.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// wrapRetryAfter layers a RetryAfterError over err when the response
// carries a parseable Retry-After header, capping the honored hint at
// cap (0 = uncapped).
func wrapRetryAfter(err error, resp *http.Response, cap time.Duration, now time.Time) error {
	after, ok := parseRetryAfter(resp.Header.Get("Retry-After"), now)
	if !ok {
		return err
	}
	if cap > 0 && after > cap {
		after = cap
	}
	return &RetryAfterError{Err: err, After: after}
}

// genETag renders the strong ETag for a generation. The ETag is derived
// from the generation alone: the store's monotonic numbering guarantees
// one generation is one immutable byte string.
func genETag(gen uint64) string { return fmt.Sprintf("%q", fmt.Sprintf("gen-%016x", gen)) }

type publication struct {
	gen  uint64
	etag string
	prov string // provenance traceparent from the meta section, may be ""
	data []byte
	// backing, when non-nil, owns data's memory (a mapped generation
	// file). The publication holds one reference; every in-flight
	// download holds another, so replacing the publication never unmaps
	// bytes a response is still streaming.
	backing serve.Backing
}

// Publisher serves the most recently published encoded snapshot over
// HTTP for replica daemons: GET returns the bytes, HEAD just the
// generation headers, and If-None-Match answers 304 so an up-to-date
// replica costs one header exchange. Set and ServeHTTP are safe under
// arbitrary concurrency — the current publication swaps atomically.
type Publisher struct {
	cur atomic.Pointer[publication]
}

// NewPublisher returns a publisher with nothing published; requests
// answer 503 until the first Set.
func NewPublisher() *Publisher { return &Publisher{} }

// Set publishes an encoded snapshot, validating it first — a publisher
// must never hand replicas bytes it could not load itself.
func (p *Publisher) Set(data []byte) error { return p.SetMapped(data, nil) }

// SetMapped publishes an encoded snapshot whose bytes alias a
// refcounted backing — a publisher cold-starting from its own
// memory-mapped generation file serves /snapshot/current straight from
// the mapping instead of holding a second heap copy. The publisher
// takes its own reference (the caller must still hold one) and drops
// it when the publication is replaced. A nil backing is plain Set.
func (p *Publisher) SetMapped(data []byte, backing serve.Backing) error {
	gen, err := ReadGeneration(data)
	if err != nil {
		return err
	}
	// The bytes just passed the whole-file checksum, so a provenance
	// read can only fail on a meta reshape bug — surface that too.
	prov, err := ReadProvenance(data)
	if err != nil {
		return err
	}
	if backing != nil && !backing.Acquire() {
		return errors.New("snapstore: publish backing already released")
	}
	old := p.cur.Swap(&publication{gen: gen, etag: genETag(gen), prov: prov, data: data, backing: backing})
	if old != nil && old.backing != nil {
		old.backing.Release()
	}
	return nil
}

// Generation returns the currently published generation, or false when
// nothing is published yet.
func (p *Publisher) Generation() (uint64, bool) {
	cur := p.cur.Load()
	if cur == nil {
		return 0, false
	}
	return cur.gen, true
}

// ServeHTTP answers GET and HEAD for the current snapshot.
func (p *Publisher) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	// Pin the publication's backing (if any) for the whole response:
	// losing the Load/Acquire race just means a newer publication
	// replaced this one and released the last reference — retry against
	// the newer one.
	var cur *publication
	for {
		cur = p.cur.Load()
		if cur == nil {
			// A warming publisher tells replicas how soon to come back, so
			// fleet cold starts don't synchronize into a poll stampede.
			w.Header().Set("Retry-After", "1")
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		if cur.backing == nil || cur.backing.Acquire() {
			break
		}
	}
	if cur.backing != nil {
		defer cur.backing.Release()
	}
	h := w.Header()
	h.Set("ETag", cur.etag)
	h.Set(generationHeader, strconv.FormatUint(cur.gen, 10))
	if cur.prov != "" {
		h.Set(provenanceHeader, cur.prov)
	}
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(cur.data)))
	if r.Header.Get("If-None-Match") == cur.etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if r.Method == http.MethodHead {
		return
	}
	w.Write(cur.data)
}

// FetcherOptions configures NewFetcher. The zero value uses a 30-second
// request timeout and observes nothing.
type FetcherOptions struct {
	// Timeout bounds each HTTP request. 0 means 30 seconds.
	Timeout time.Duration
	// MaxBytes bounds an accepted snapshot body; a response claiming or
	// delivering more is rejected rather than buffered. 0 means 1 GiB.
	MaxBytes int64
	// RetryAfterCap bounds an honored Retry-After hint from the
	// publisher, so a lying or misconfigured server cannot stall
	// replication arbitrarily. Replica daemons set it to the poll
	// interval. 0 means 30 seconds.
	RetryAfterCap time.Duration
	Logger        *telemetry.Logger
	Metrics       *Metrics
	// Client overrides the HTTP client (tests). Timeout is ignored when
	// set.
	Client *http.Client
}

// Fetcher pulls encoded snapshots from a Publisher URL for replica
// serving. It remembers the last generation it delivered and fetches
// conditionally, so steady state is one 304 per poll. Fetcher methods
// validate every downloaded body's checksums before returning it — a
// truncated or corrupted transfer surfaces as an error, never as bytes.
//
// Fetcher performs single attempts; retry, backoff, and the circuit
// breaker around repeated failures belong to the serve.Server reload
// machinery driving it, so replica fetch failures share the exact
// degradation behavior (serve last-good, flip /readyz, open breaker) as
// publisher-side dataset failures.
type Fetcher struct {
	url      string
	client   *http.Client
	maxBytes int64
	retryCap time.Duration
	log      *telemetry.Logger
	metrics  *Metrics
	now      func() time.Time // test hook for Retry-After date parsing

	mu   sync.Mutex
	etag string // of the last delivered snapshot; "" forces a full fetch
}

// NewFetcher returns a fetcher for a publisher's snapshot endpoint
// (e.g. http://host:8080/snapshot/current).
func NewFetcher(url string, opts FetcherOptions) *Fetcher {
	client := opts.Client
	if client == nil {
		timeout := opts.Timeout
		if timeout == 0 {
			timeout = 30 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	maxBytes := opts.MaxBytes
	if maxBytes == 0 {
		maxBytes = 1 << 30
	}
	retryCap := opts.RetryAfterCap
	if retryCap == 0 {
		retryCap = 30 * time.Second
	}
	return &Fetcher{
		url: url, client: client, maxBytes: maxBytes, retryCap: retryCap,
		log: opts.Logger, metrics: opts.Metrics, now: time.Now,
	}
}

// URL returns the publisher endpoint this fetcher polls.
func (f *Fetcher) URL() string { return f.url }

// Invalidate forgets the last delivered generation, so the next Fetch
// is unconditional. The replica wires SIGHUP to it: an operator-forced
// refresh must transfer the body even if the publisher claims nothing
// changed.
func (f *Fetcher) Invalidate() {
	f.mu.Lock()
	f.etag = ""
	f.mu.Unlock()
}

func (f *Fetcher) loadETag() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.etag
}

func (f *Fetcher) storeETag(etag string) {
	f.mu.Lock()
	f.etag = etag
	f.mu.Unlock()
}

// setTraceparent propagates the span carried by ctx (if any) onto an
// outbound publisher request as a W3C traceparent header, so the
// publisher's request tracing can link the hop to the replica's reload
// trace. Note the replica later ADOPTS the publisher's generation trace
// on a successful decode; the ID emitted here is recorded as the
// replaced ID in that case, and joins the two error paths otherwise.
func setTraceparent(ctx context.Context, req *http.Request) {
	if tp := telemetry.SpanFrom(ctx).Traceparent(); tp != "" {
		req.Header.Set(telemetry.TraceparentHeader, tp)
	}
}

// Probe asks the publisher (HEAD) which generation it currently serves,
// without transferring the body. Used by the replica poll loop to skip
// no-op reloads and to measure replication lag.
func (f *Fetcher) Probe(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, f.url, nil)
	if err != nil {
		return 0, fmt.Errorf("snapstore: probe %s: %w", f.url, err)
	}
	setTraceparent(ctx, req)
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("snapstore: probe %s: %w", f.url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return 0, wrapRetryAfter(ErrNotPublished, resp, f.retryCap, f.now())
	case resp.StatusCode == http.StatusTooManyRequests:
		return 0, wrapRetryAfter(
			fmt.Errorf("snapstore: probe %s: status %d", f.url, resp.StatusCode),
			resp, f.retryCap, f.now())
	case resp.StatusCode != http.StatusOK:
		return 0, fmt.Errorf("snapstore: probe %s: status %d", f.url, resp.StatusCode)
	}
	gen, err := strconv.ParseUint(resp.Header.Get(generationHeader), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("snapstore: probe %s: bad %s header: %w", f.url, generationHeader, err)
	}
	return gen, nil
}

// get issues the conditional GET and vets the status line. A non-nil
// response is a 200 whose body the caller must drain and close; every
// error path has already closed it. ErrUnchanged (304) comes back as
// an error so both body-handling callers share one status switch.
func (f *Fetcher) get(ctx context.Context) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.url, nil)
	if err != nil {
		return nil, fmt.Errorf("snapstore: fetch %s: %w", f.url, err)
	}
	if etag := f.loadETag(); etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	setTraceparent(ctx, req)
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("snapstore: fetch %s: %w", f.url, err)
	}
	if resp.StatusCode == http.StatusOK {
		return resp, nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotModified:
		return nil, ErrUnchanged
	case resp.StatusCode == http.StatusServiceUnavailable:
		return nil, wrapRetryAfter(ErrNotPublished, resp, f.retryCap, f.now())
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, wrapRetryAfter(
			fmt.Errorf("snapstore: fetch %s: status %d", f.url, resp.StatusCode),
			resp, f.retryCap, f.now())
	default:
		return nil, fmt.Errorf("snapstore: fetch %s: status %d", f.url, resp.StatusCode)
	}
}

// observeGetErr files a get() failure under the right outcome label.
func (f *Fetcher) observeGetErr(err error) {
	if errors.Is(err, ErrUnchanged) {
		f.metrics.observeFetch("unchanged")
	} else {
		f.metrics.observeFetch("error")
	}
}

// Fetch downloads the current snapshot into memory, conditionally on
// the last generation this fetcher delivered. Returns ErrUnchanged on
// 304. The body is read in bounded chunks — the byte cap is enforced
// and replica_fetch_bytes_total counted incrementally while the body
// streams, so a lying Content-Length or an oversized body is cut off
// mid-transfer instead of buffered whole. A successful return has
// already passed the whole-file checksum (ReadGeneration); the caller
// still runs the full Decode, whose per-section validation is what
// makes a malicious or truncated body unservable.
//
// Replica daemons that keep an on-disk store prefer FetchToFile, which
// never holds the body on the heap at all.
func (f *Fetcher) Fetch(ctx context.Context) ([]byte, uint64, error) {
	resp, err := f.get(ctx)
	if err != nil {
		f.observeGetErr(err)
		return nil, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var data []byte
	if cl := resp.ContentLength; cl > 0 {
		if cl > f.maxBytes {
			f.metrics.observeFetch("error")
			return nil, 0, fmt.Errorf("snapstore: fetch %s: body exceeds %d byte cap", f.url, f.maxBytes)
		}
		data = make([]byte, 0, cl)
	}
	buf := make([]byte, 256<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if int64(len(data))+int64(n) > f.maxBytes {
				f.metrics.observeFetch("error")
				return nil, 0, fmt.Errorf("snapstore: fetch %s: body exceeds %d byte cap", f.url, f.maxBytes)
			}
			data = append(data, buf[:n]...)
			f.metrics.observeFetchBytes(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			f.metrics.observeFetch("error")
			return nil, 0, fmt.Errorf("snapstore: fetch %s: read body: %w", f.url, err)
		}
	}
	gen, err := ReadGeneration(data)
	if err != nil {
		f.metrics.observeFetch("corrupt")
		f.log.Warn("fetched snapshot rejected", "url", f.url, "bytes", len(data), "err", err)
		return nil, 0, fmt.Errorf("snapstore: fetch %s: %w", f.url, err)
	}
	f.storeETag(genETag(gen))
	f.metrics.observeFetch("ok")
	f.metrics.observeBytes(len(data))
	f.log.Info("snapshot fetched", "url", f.url, "generation", gen, "bytes", len(data))
	return data, gen, nil
}

// crcTailWriter streams a snapshot body to dst while computing the
// whole-file Castagnoli checksum. The checksum covers everything
// except the trailing 4-byte footer — whose position is unknown until
// EOF — so the writer lags the CRC four bytes behind the stream. It
// also captures the first header-sized chunk (for generation/version
// parsing) and enforces the byte cap incrementally: an oversized body
// fails mid-stream, never after buffering.
type crcTailWriter struct {
	dst     io.Writer
	max     int64     // 0 = uncapped
	onBytes func(int) // progress hook (replica_fetch_bytes_total), may be nil

	n      int64
	crc    uint32
	lag    [4]byte
	lagLen int
	head   []byte
}

// errBodyTooBig marks an incremental cap violation; callers rewrap it
// with the URL and cap.
var errBodyTooBig = errors.New("snapstore: body exceeds byte cap")

func (w *crcTailWriter) Write(p []byte) (int, error) {
	if w.max > 0 && w.n+int64(len(p)) > w.max {
		return 0, errBodyTooBig
	}
	if _, err := w.dst.Write(p); err != nil {
		return 0, err
	}
	if w.onBytes != nil && len(p) > 0 {
		w.onBytes(len(p))
	}
	if len(w.head) < headerSize+4 {
		need := headerSize + 4 - len(w.head)
		if need > len(p) {
			need = len(p)
		}
		w.head = append(w.head, p[:need]...)
	}
	total := w.lagLen + len(p)
	if total <= len(w.lag) {
		copy(w.lag[w.lagLen:], p)
		w.lagLen = total
	} else {
		cut := total - len(w.lag) // bytes leaving the lag window into the CRC
		m := cut
		if m > w.lagLen {
			m = w.lagLen
		}
		w.crc = crc32.Update(w.crc, castagnoli, w.lag[:m])
		rem := w.lagLen - m
		copy(w.lag[:rem], w.lag[m:w.lagLen])
		w.crc = crc32.Update(w.crc, castagnoli, p[:cut-m])
		copy(w.lag[rem:], p[cut-m:])
		w.lagLen = len(w.lag)
	}
	w.n += int64(len(p))
	return len(p), nil
}

// finish validates what streamed: length, whole-file CRC against the
// lagged footer, and the header fields. Returns the generation.
func (w *crcTailWriter) finish() (uint64, *CorruptError) {
	if w.n < headerSize+4 {
		return 0, corrupt("header", fmt.Sprintf("body of %d bytes is shorter than any snapshot", w.n), ErrTruncated)
	}
	if stored := binary.LittleEndian.Uint32(w.lag[:]); stored != w.crc {
		return 0, corrupt("file", "whole-file CRC mismatch", ErrChecksum)
	}
	_, gen, _, cerr := header(w.head)
	if cerr != nil {
		return 0, cerr
	}
	return gen, nil
}

// FetchToFile downloads the current snapshot by streaming the body to
// a temp file in dir — the body never lives on the heap, so a replica
// adopting a multi-hundred-MB generation pays one fixed 256 KiB copy
// buffer instead of a transient allocation the size of the snapshot.
// The whole-file checksum is computed and the byte cap enforced while
// the body streams; the temp file is fsynced before the path is
// returned and removed on every error path. dir should be the
// replica's store directory so Store.AdoptFile can rename the result
// into place (same filesystem) and OpenFile can map it.
//
// As with Fetch, a successful return has passed only the whole-file
// checksum; adoption-time OpenFile performs the per-section
// validation.
func (f *Fetcher) FetchToFile(ctx context.Context, dir string) (string, uint64, error) {
	resp, err := f.get(ctx)
	if err != nil {
		f.observeGetErr(err)
		return "", 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if cl := resp.ContentLength; cl > 0 && cl > f.maxBytes {
		f.metrics.observeFetch("error")
		return "", 0, fmt.Errorf("snapstore: fetch %s: body exceeds %d byte cap", f.url, f.maxBytes)
	}
	tmp, err := os.CreateTemp(dir, ".fetch-*.snap")
	if err != nil {
		f.metrics.observeFetch("error")
		return "", 0, fmt.Errorf("snapstore: fetch %s: %w", f.url, err)
	}
	tmpPath := tmp.Name()
	fail := func(outcome string, err error) (string, uint64, error) {
		tmp.Close()
		os.Remove(tmpPath)
		f.metrics.observeFetch(outcome)
		return "", 0, err
	}
	w := &crcTailWriter{dst: tmp, max: f.maxBytes, onBytes: f.metrics.observeFetchBytes}
	if _, err := io.Copy(w, resp.Body); err != nil {
		if errors.Is(err, errBodyTooBig) {
			err = fmt.Errorf("snapstore: fetch %s: body exceeds %d byte cap", f.url, f.maxBytes)
		} else {
			err = fmt.Errorf("snapstore: fetch %s: stream body: %w", f.url, err)
		}
		return fail("error", err)
	}
	gen, cerr := w.finish()
	if cerr != nil {
		f.log.Warn("fetched snapshot rejected", "url", f.url, "bytes", w.n, "err", cerr)
		return fail("corrupt", fmt.Errorf("snapstore: fetch %s: %w", f.url, cerr))
	}
	if err := tmp.Sync(); err != nil {
		return fail("error", fmt.Errorf("snapstore: fetch %s: fsync: %w", f.url, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		f.metrics.observeFetch("error")
		return "", 0, fmt.Errorf("snapstore: fetch %s: close temp: %w", f.url, err)
	}
	f.storeETag(genETag(gen))
	f.metrics.observeFetch("ok")
	f.metrics.observeBytes(int(w.n))
	f.log.Info("snapshot fetched to file", "url", f.url, "generation", gen, "bytes", w.n)
	return tmpPath, gen, nil
}
