package snapstore

// Crash safety under SIGKILL: a helper process (this test binary
// re-exec'd) publishes generations in a tight loop and the parent kills
// it with SIGKILL at seeded offsets — mid-write, mid-rename,
// mid-manifest-update, wherever the clock lands. After every kill the
// store must cold-start: LoadCurrent returns a generation that is
// complete and byte-identical in service to the original snapshot,
// never a torn one.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const (
	crashHelperEnv = "SNAPSTORE_CRASH_HELPER"
	crashBaseEnv   = "SNAPSTORE_CRASH_BASE"
	crashDirEnv    = "SNAPSTORE_CRASH_DIR"
)

// TestCrashHelperProcess is the publisher half of the kill test. It is
// a no-op unless re-exec'd by TestCrashSafePublish with the helper env
// set, in which case it decodes the base snapshot and publishes
// incrementing generations until it is killed.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv(crashHelperEnv) == "" {
		t.Skip("helper process entry point; driven by TestCrashSafePublish")
	}
	data, err := os.ReadFile(os.Getenv(crashBaseEnv))
	if err != nil {
		fmt.Println("HELPER-ERR", err)
		os.Exit(2)
	}
	snap, _, err := Decode(data)
	if err != nil {
		fmt.Println("HELPER-ERR", err)
		os.Exit(2)
	}
	st, err := Open(os.Getenv(crashDirEnv), StoreOptions{Keep: 3})
	if err != nil {
		fmt.Println("HELPER-ERR", err)
		os.Exit(2)
	}
	if err := st.Publish(snap, 1); err != nil {
		fmt.Println("HELPER-ERR", err)
		os.Exit(2)
	}
	fmt.Println("READY") // generation 1 is durable; the parent may now kill at will
	for gen := uint64(2); ; gen++ {
		if err := st.Publish(snap, gen); err != nil {
			fmt.Println("HELPER-ERR", err)
			os.Exit(2)
		}
	}
}

func TestCrashSafePublish(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary per seed")
	}
	want := testSnapshot(t)
	base := filepath.Join(t.TempDir(), "base.snap")
	if err := os.WriteFile(base, Encode(want, 1), 0o644); err != nil {
		t.Fatal(err)
	}

	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperProcess", "-test.v")
			cmd.Env = append(os.Environ(),
				crashHelperEnv+"=1", crashBaseEnv+"="+base, crashDirEnv+"="+dir)
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer cmd.Process.Kill()
			defer cmd.Wait()

			// Wait for the first durable generation, then kill mid-flight
			// at a seed-dependent offset into the publish loop.
			sc := bufio.NewScanner(stdout)
			ready := false
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, "HELPER-ERR") {
					t.Fatalf("helper failed: %s", line)
				}
				if strings.Contains(line, "READY") {
					ready = true
					break
				}
			}
			if !ready {
				t.Fatalf("helper exited before publishing generation 1: %v", sc.Err())
			}
			time.Sleep(time.Duration(1+seed*7%45) * time.Millisecond)
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			cmd.Wait()

			// Recovery: the store must load, and what loads must be a
			// complete generation serving byte-identically.
			st, err := Open(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, gen, err := st.LoadCurrent()
			if err != nil {
				t.Fatalf("cold start after SIGKILL: %v", err)
			}
			if gen < 1 {
				t.Fatalf("recovered generation %d, want >= 1", gen)
			}
			assertServesIdentical(t, fmt.Sprintf("post-SIGKILL gen %d", gen), got, want)

			// Torn artifacts may exist (a .tmp cut down mid-write); they
			// must be invisible to the generation scan, and every complete
			// generation file must decode — rename is the commit point, so
			// a gen-*.snap either never appeared or is whole.
			gens, err := st.Generations()
			if err != nil {
				t.Fatal(err)
			}
			if len(gens) == 0 || gens[0] != gen {
				t.Fatalf("scan found generations %v but LoadCurrent served %d", gens, gen)
			}
			for _, g := range gens {
				data, err := os.ReadFile(filepath.Join(dir, genFileName(g)))
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := Decode(data); err != nil {
					t.Errorf("generation %d survived the rename but does not decode: %v", g, err)
				}
			}
		})
	}
}
