package snapstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ipleasing/internal/telemetry"
)

func openTestStore(t *testing.T, opts StoreOptions) *Store {
	t.Helper()
	st, err := Open(filepath.Join(t.TempDir(), "snapshots"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStorePublishLoadRoundTrip(t *testing.T) {
	snap := testSnapshot(t)
	st := openTestStore(t, StoreOptions{})

	if _, _, err := st.LoadCurrent(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty store: %v, want ErrNoSnapshot", err)
	}
	if err := st.Publish(snap, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Publish(snap, 2); err != nil {
		t.Fatal(err)
	}

	got, gen, err := st.LoadCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("loaded generation %d, want 2", gen)
	}
	assertServesIdentical(t, "store round trip", got, snap)

	if newest, ok := st.NewestGeneration(); !ok || newest != 2 {
		t.Fatalf("NewestGeneration = %d, %v; want 2, true", newest, ok)
	}
	manifest, err := os.ReadFile(filepath.Join(st.Dir(), "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if string(manifest) != "gen-0000000000000002.snap\n" {
		t.Fatalf("MANIFEST = %q", manifest)
	}
	// No temp litter after successful publishes.
	ents, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, ok := parseGenName(e.Name()); !ok && e.Name() != "MANIFEST" {
			t.Fatalf("unexpected file %q in store", e.Name())
		}
	}
}

func TestStoreRetention(t *testing.T) {
	snap := testSnapshot(t)
	st := openTestStore(t, StoreOptions{Keep: 2})
	for gen := uint64(1); gen <= 5; gen++ {
		if err := st.Publish(snap, gen); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 5 || gens[1] != 4 {
		t.Fatalf("retained generations = %v, want [5 4]", gens)
	}
}

func TestStoreAllGenerationsCorrupt(t *testing.T) {
	snap := testSnapshot(t)
	st := openTestStore(t, StoreOptions{})
	for gen := uint64(1); gen <= 3; gen++ {
		data := Encode(snap, gen)
		data[len(data)/2] ^= 0x40
		path := filepath.Join(st.Dir(), genFileName(gen))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.LoadCurrent(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("all-corrupt store: %v, want ErrNoSnapshot", err)
	}
}

func TestStoreRefusesToPublishCorruptBytes(t *testing.T) {
	st := openTestStore(t, StoreOptions{})
	if err := st.PublishEncoded([]byte("definitely not a snapshot")); err == nil {
		t.Fatal("garbage accepted for publication")
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 0 {
		t.Fatalf("refused publish left generations: %v", gens)
	}
}

func TestStoreMetricsOutcomes(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	snap := testSnapshot(t)
	st, err := Open(filepath.Join(t.TempDir(), "s"), StoreOptions{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Publish(snap, 1); err != nil {
		t.Fatal(err)
	}
	st.PublishEncoded([]byte("junk")) // counted as error
	if _, _, err := st.LoadCurrent(); err != nil {
		t.Fatal(err)
	}
	if v := m.publish.With("ok").Value(); v != 1 {
		t.Errorf("snapshot_publish_total{outcome=ok} = %d, want 1", v)
	}
	if v := m.publish.With("error").Value(); v != 1 {
		t.Errorf("snapshot_publish_total{outcome=error} = %d, want 1", v)
	}
	if v := m.load.With("ok").Value(); v != 1 {
		t.Errorf("snapshot_load_total{outcome=ok} = %d, want 1", v)
	}
	if m.bytes.Value() == 0 {
		t.Error("snapshot_bytes gauge is zero after publish and load")
	}
}
