// Package market analyses IP-leasing market dynamics over time — the
// longitudinal study the paper's §8 proposes as future work. It runs the
// core inference against a sequence of monthly routing tables (the WHOIS
// state held fixed over the window) and reports lease churn: how many
// prefixes are leased each month, how many leases start and end, how
// often a prefix moves straight from one lessee to another, and how long
// leases last.
package market

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipleasing/internal/as2org"
	"ipleasing/internal/asrel"
	"ipleasing/internal/bgp"
	"ipleasing/internal/core"
	"ipleasing/internal/netutil"
	"ipleasing/internal/par"
	"ipleasing/internal/whois"
)

// Snapshot is one month's routing view.
type Snapshot struct {
	Time  time.Time
	Table *bgp.Table
}

// LoadDir reads monthly rib-<unix>.mrt files from dir, ascending by time.
func LoadDir(dir string) ([]Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Snapshot
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "rib-") || !strings.HasSuffix(name, ".mrt") {
			continue
		}
		unix, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "rib-"), ".mrt"), 10, 64)
		if err != nil {
			continue
		}
		tbl := &bgp.Table{}
		if err := tbl.LoadMRTFile(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
		out = append(out, Snapshot{Time: time.Unix(unix, 0).UTC(), Table: tbl})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	if len(out) == 0 {
		return nil, fmt.Errorf("market: no rib-<unix>.mrt snapshots in %s", dir)
	}
	return out, nil
}

// MonthStats is one month's lease-market activity.
type MonthStats struct {
	Time   time.Time
	Leased int // prefixes inferred leased this month
	New    int // leased now, not leased the previous month
	Ended  int // leased the previous month, not now
	// Releases counts prefixes leased in both months but originated by a
	// different AS — back-to-back re-leases without a visible gap.
	Releases int
}

// Report is the longitudinal result.
type Report struct {
	Months []MonthStats
	// DurationHistogram counts maximal same-lessee runs by length in
	// months (runs still open at the window edge are included, so long
	// leases are right-censored).
	DurationHistogram map[int]int
}

// MeanLeaseMonths returns the mean observed lease-run length.
func (r *Report) MeanLeaseMonths() float64 {
	total, n := 0, 0
	for d, c := range r.DurationHistogram {
		total += d * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// ChurnRate returns mean (new + ended) per month divided by the mean
// leased population — a rough market-velocity figure.
func (r *Report) ChurnRate() float64 {
	if len(r.Months) < 2 {
		return 0
	}
	var churn, leased int
	for _, m := range r.Months[1:] {
		churn += m.New + m.Ended
		leased += m.Leased
	}
	if leased == 0 {
		return 0
	}
	return float64(churn) / float64(leased)
}

// Inputs for the longitudinal analysis.
type Inputs struct {
	Whois *whois.Dataset
	Rel   *asrel.Graph
	Orgs  *as2org.Map
	Opts  core.Options
	// Trees optionally shares an allocation-tree cache with the caller
	// (the trees depend only on Whois and the cut-off, not on the monthly
	// routing tables). When nil, Analyze uses one cache across the months.
	Trees *core.TreeCache
}

// Analyze runs the core inference per snapshot and derives churn. Each
// month is an independent full inference over its own routing table (the
// WHOIS state is shared read-only), so the months run concurrently; the
// churn derivation then walks the per-month lease maps in time order,
// keeping the report deterministic.
func Analyze(in Inputs, snapshots []Snapshot) *Report {
	rep := &Report{DurationHistogram: make(map[int]int)}
	type leaseState struct {
		origin uint32
		run    int
	}
	active := make(map[netutil.Prefix]*leaseState)

	// Phase 1 (parallel): per-month lessee maps, slotted by index. The
	// months share one allocation-tree cache: the WHOIS side is fixed over
	// the window, so the trees are built once, not once per month.
	trees := in.Trees
	if trees == nil {
		trees = core.NewTreeCache()
	}
	months := make([]map[netutil.Prefix]uint32, len(snapshots))
	par.Each(len(snapshots), func(i int) error {
		p := &core.Pipeline{Whois: in.Whois, Table: snapshots[i].Table, Rel: in.Rel, Orgs: in.Orgs, Opts: in.Opts, Trees: trees}
		res := p.Infer()
		cur := make(map[netutil.Prefix]uint32)
		for _, inf := range res.LeasedInferences() {
			cur[inf.Prefix] = inf.Originator()
		}
		months[i] = cur
		return nil
	})

	// Phase 2 (serial, time order): churn and run accounting.
	var prev map[netutil.Prefix]uint32
	for i, snap := range snapshots {
		cur := months[i]
		ms := MonthStats{Time: snap.Time, Leased: len(cur)}
		if prev != nil {
			for pfx, origin := range cur {
				po, was := prev[pfx]
				if !was {
					ms.New++
				} else if po != origin {
					ms.Releases++
				}
			}
			for pfx := range prev {
				if _, still := cur[pfx]; !still {
					ms.Ended++
				}
			}
		}
		// Run accounting.
		for pfx, origin := range cur {
			st := active[pfx]
			if st != nil && st.origin == origin {
				st.run++
				continue
			}
			if st != nil {
				rep.DurationHistogram[st.run]++
			}
			active[pfx] = &leaseState{origin: origin, run: 1}
		}
		for pfx, st := range active {
			if _, still := cur[pfx]; !still {
				rep.DurationHistogram[st.run]++
				delete(active, pfx)
			}
		}
		rep.Months = append(rep.Months, ms)
		prev = cur
	}
	// Close the runs still open at the window edge (right-censored).
	for _, st := range active {
		rep.DurationHistogram[st.run]++
	}
	return rep
}
