package market

import (
	"testing"
	"time"

	"ipleasing/internal/bgp"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

// handWorld builds a two-leaf registry where the lease states per month
// are fully controlled, so churn accounting can be checked exactly.
func handWorld() *whois.Dataset {
	ds := whois.NewDataset()
	db := ds.DB(whois.RIPE)
	db.Orgs = []*whois.Org{{Registry: whois.RIPE, ID: "ORG-H", Name: "Holder"}}
	db.AutNums = []*whois.AutNum{{Registry: whois.RIPE, Number: 64500, OrgID: "ORG-H"}}
	db.InetNums = []*whois.InetNum{
		{Registry: whois.RIPE, Range: netutil.RangeOf(netutil.MustParsePrefix("10.0.0.0/16")),
			Status: "ALLOCATED PA", Portability: whois.Portable, OrgID: "ORG-H"},
		{Registry: whois.RIPE, Range: netutil.RangeOf(netutil.MustParsePrefix("10.0.1.0/24")),
			Status: "ASSIGNED PA", Portability: whois.NonPortable, MntBy: []string{"BRK-MNT"}},
		{Registry: whois.RIPE, Range: netutil.RangeOf(netutil.MustParsePrefix("10.0.2.0/24")),
			Status: "ASSIGNED PA", Portability: whois.NonPortable, MntBy: []string{"BRK-MNT"}},
	}
	db.Reindex()
	return ds
}

func monthTable(leases map[string]uint32) *bgp.Table {
	var t bgp.Table
	for pfx, origin := range leases {
		t.AddRoute(netutil.MustParsePrefix(pfx), origin)
	}
	return &t
}

// TestAnalyzeExactChurn scripts three months:
//
//	month 1: A leased to 65001, B dark
//	month 2: A re-leased to 65002, B leased to 65003  → 1 new, 1 release
//	month 3: A gone, B still 65003                    → 1 ended
func TestAnalyzeExactChurn(t *testing.T) {
	ds := handWorld()
	t0 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	snaps := []Snapshot{
		{Time: t0, Table: monthTable(map[string]uint32{"10.0.1.0/24": 65001})},
		{Time: t0.AddDate(0, 1, 0), Table: monthTable(map[string]uint32{
			"10.0.1.0/24": 65002, "10.0.2.0/24": 65003,
		})},
		{Time: t0.AddDate(0, 2, 0), Table: monthTable(map[string]uint32{"10.0.2.0/24": 65003})},
	}
	rep := Analyze(Inputs{Whois: ds}, snaps)
	if len(rep.Months) != 3 {
		t.Fatalf("months = %d", len(rep.Months))
	}
	m1, m2, m3 := rep.Months[0], rep.Months[1], rep.Months[2]
	if m1.Leased != 1 || m1.New != 0 || m1.Ended != 0 {
		t.Fatalf("month1 = %+v", m1)
	}
	if m2.Leased != 2 || m2.New != 1 || m2.Ended != 0 || m2.Releases != 1 {
		t.Fatalf("month2 = %+v", m2)
	}
	if m3.Leased != 1 || m3.New != 0 || m3.Ended != 1 || m3.Releases != 0 {
		t.Fatalf("month3 = %+v", m3)
	}
	// Runs: A@65001 ×1, A@65002 ×1, B@65003 ×2 → hist {1:2, 2:1}.
	if rep.DurationHistogram[1] != 2 || rep.DurationHistogram[2] != 1 {
		t.Fatalf("durations = %v", rep.DurationHistogram)
	}
	if mean := rep.MeanLeaseMonths(); mean < 1.3 || mean > 1.34 {
		t.Fatalf("mean = %f", mean)
	}
}
