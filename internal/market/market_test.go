package market

import (
	"path/filepath"
	"testing"

	"ipleasing/internal/synth"
)

func loadWorld(t *testing.T) (*synth.World, []Snapshot) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 71, Scale: 0.005})
	dir := t.TempDir()
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	snaps, err := LoadDir(filepath.Join(dir, synth.DirMarket))
	if err != nil {
		t.Fatal(err)
	}
	return w, snaps
}

func TestLoadDir(t *testing.T) {
	w, snaps := loadWorld(t)
	if len(snaps) != 6 {
		t.Fatalf("snapshots = %d, want 6", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if !snaps[i].Time.After(snaps[i-1].Time) {
			t.Fatal("snapshots unsorted")
		}
	}
	// The final month must match the world's current snapshot time and
	// its table must contain the current routes.
	last := snaps[len(snaps)-1]
	if !last.Time.Equal(w.SnapshotTime) {
		t.Fatalf("last snapshot %v != %v", last.Time, w.SnapshotTime)
	}
	cur := w.Table()
	if last.Table.NumPrefixes() != cur.NumPrefixes() {
		t.Fatalf("final month %d prefixes, current %d",
			last.Table.NumPrefixes(), cur.NumPrefixes())
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestAnalyzeChurnShape(t *testing.T) {
	w, snaps := loadWorld(t)
	rep := Analyze(Inputs{Whois: w.Whois, Rel: w.Rel, Orgs: w.Orgs}, snaps)
	if len(rep.Months) != 6 {
		t.Fatalf("months = %d", len(rep.Months))
	}
	// Every month has a leased population; the final month matches the
	// main-world inference.
	mainLeased := w.Pipeline().Infer().TotalLeased()
	last := rep.Months[len(rep.Months)-1]
	if last.Leased != mainLeased {
		t.Fatalf("final month leased %d != main inference %d", last.Leased, mainLeased)
	}
	var sawNew, sawEnded bool
	for _, m := range rep.Months[1:] {
		if m.Leased == 0 {
			t.Fatalf("month %v has no leases", m.Time)
		}
		if m.New > 0 {
			sawNew = true
		}
		if m.Ended > 0 {
			sawEnded = true
		}
	}
	if !sawNew || !sawEnded {
		t.Errorf("no churn observed: new=%v ended=%v", sawNew, sawEnded)
	}
	// Duration accounting: total run-months equals total leased-months.
	totalRunMonths := 0
	for d, c := range rep.DurationHistogram {
		if d < 1 || d > 6 {
			t.Fatalf("impossible run length %d", d)
		}
		totalRunMonths += d * c
	}
	totalLeasedMonths := 0
	for _, m := range rep.Months {
		totalLeasedMonths += m.Leased
	}
	if totalRunMonths != totalLeasedMonths {
		t.Fatalf("run months %d != leased months %d", totalRunMonths, totalLeasedMonths)
	}
	if mean := rep.MeanLeaseMonths(); mean <= 1 || mean > 6 {
		t.Errorf("mean lease months = %.2f", mean)
	}
	if churn := rep.ChurnRate(); churn <= 0 || churn > 1 {
		t.Errorf("churn rate = %.3f", churn)
	}
}

func TestAnalyzeSingleSnapshot(t *testing.T) {
	w, snaps := loadWorld(t)
	rep := Analyze(Inputs{Whois: w.Whois, Rel: w.Rel, Orgs: w.Orgs}, snaps[:1])
	if len(rep.Months) != 1 || rep.Months[0].New != 0 || rep.Months[0].Ended != 0 {
		t.Fatalf("single snapshot: %+v", rep.Months)
	}
	if rep.ChurnRate() != 0 {
		t.Fatal("churn from one month")
	}
}

func TestZeroGuards(t *testing.T) {
	rep := &Report{DurationHistogram: map[int]int{}}
	if rep.MeanLeaseMonths() != 0 || rep.ChurnRate() != 0 {
		t.Fatal("zero guards")
	}
}
