package geoip

import (
	"bytes"
	"strings"
	"testing"

	"ipleasing/internal/netutil"
)

func mp(s string) netutil.Prefix { return netutil.MustParsePrefix(s) }

func TestDBLookup(t *testing.T) {
	db := NewDB("test")
	db.Add(mp("10.0.0.0/8"), "us")
	db.Add(mp("10.1.0.0/16"), "DE")
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if cc, ok := db.Country(mp("10.1.2.0/24")); !ok || cc != "DE" {
		t.Fatalf("most-specific lookup = %q %v", cc, ok)
	}
	if cc, ok := db.Country(mp("10.2.0.0/16")); !ok || cc != "US" { // upper-cased
		t.Fatalf("fallback lookup = %q %v", cc, ok)
	}
	if _, ok := db.Country(mp("192.0.2.0/24")); ok {
		t.Fatal("uncovered prefix resolved")
	}
	// Re-adding the same prefix replaces, not grows.
	db.Add(mp("10.0.0.0/8"), "FR")
	if db.Len() != 2 {
		t.Fatalf("Len after overwrite = %d", db.Len())
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	in := "# geofeed: prov\n10.0.0.0/8,US\n192.0.2.0/24,jp\n"
	db, err := Parse("prov", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 || db.Name != "prov" {
		t.Fatalf("db = %+v", db)
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Parse("prov", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if cc, _ := back.Country(mp("192.0.2.0/24")); cc != "JP" {
		t.Fatalf("round trip country = %q", cc)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"justafield\n", "nonprefix,US\n", "10.0.0.0/8,USA\n", "10.0.0.0/8,x\n"} {
		if _, err := Parse("p", strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func testPanel() *Panel {
	a, b, c := NewDB("a"), NewDB("b"), NewDB("c")
	// Agreement prefix.
	for _, db := range []*DB{a, b, c} {
		db.Add(mp("10.0.0.0/24"), "US")
	}
	// Disagreement prefix: 2 countries.
	a.Add(mp("10.0.1.0/24"), "US")
	b.Add(mp("10.0.1.0/24"), "BR")
	c.Add(mp("10.0.1.0/24"), "US")
	// 3 countries.
	a.Add(mp("10.0.2.0/24"), "US")
	b.Add(mp("10.0.2.0/24"), "BR")
	c.Add(mp("10.0.2.0/24"), "JP")
	// Covered by only one provider.
	a.Add(mp("10.0.3.0/24"), "SE")
	return &Panel{DBs: []*DB{a, b, c}}
}

func TestPanelQueries(t *testing.T) {
	pl := testPanel()
	if got := pl.Countries(mp("10.0.0.0/24")); len(got) != 3 {
		t.Fatalf("Countries = %v", got)
	}
	if pl.Disagrees(mp("10.0.0.0/24")) {
		t.Fatal("agreement flagged as disagreement")
	}
	if !pl.Disagrees(mp("10.0.1.0/24")) {
		t.Fatal("disagreement missed")
	}
	if n := pl.DistinctCountries(mp("10.0.2.0/24")); n != 3 {
		t.Fatalf("distinct = %d", n)
	}
	if n := pl.DistinctCountries(mp("10.0.3.0/24")); n != 1 {
		t.Fatalf("single-provider distinct = %d", n)
	}
	if n := pl.DistinctCountries(mp("192.0.2.0/24")); n != 0 {
		t.Fatalf("uncovered distinct = %d", n)
	}
}

func TestAnalyze(t *testing.T) {
	pl := testPanel()
	rep := pl.Analyze(
		[]netutil.Prefix{mp("10.0.1.0/24"), mp("10.0.2.0/24"), mp("192.0.2.0/24")}, // last uncovered
		[]netutil.Prefix{mp("10.0.0.0/24"), mp("10.0.3.0/24")},
	)
	if rep.LeasedTotal != 2 || rep.LeasedDisagree != 2 {
		t.Fatalf("leased: %+v", rep)
	}
	if rep.NonLeasedTotal != 2 || rep.NonLeasedDisagree != 0 {
		t.Fatalf("non-leased: %+v", rep)
	}
	if rep.MaxDistinct != 3 {
		t.Fatalf("MaxDistinct = %d", rep.MaxDistinct)
	}
	if rep.LeasedShare() != 1.0 || rep.NonLeasedShare() != 0.0 {
		t.Fatalf("shares: %f %f", rep.LeasedShare(), rep.NonLeasedShare())
	}
	if rep.DistinctHistogram[2] != 1 || rep.DistinctHistogram[3] != 1 {
		t.Fatalf("histogram: %v", rep.DistinctHistogram)
	}
	var zero Report
	if zero.LeasedShare() != 0 || zero.NonLeasedShare() != 0 {
		t.Fatal("zero guards")
	}
}

func TestDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pl := testPanel()
	if err := WriteDir(dir, pl); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.DBs) != 3 {
		t.Fatalf("providers = %d", len(back.DBs))
	}
	if back.DBs[0].Name != "a" || back.DBs[2].Name != "c" {
		t.Fatal("providers unsorted")
	}
	if !back.Disagrees(mp("10.0.1.0/24")) {
		t.Fatal("disagreement lost in round trip")
	}
	if _, err := LoadDir(dir + "-none"); err == nil {
		t.Fatal("missing dir accepted")
	}
}
