// Package geoip models IP-geolocation databases and measures their
// disagreement over prefixes, the §8 observation the paper makes about
// the leasing market: marketplace prefixes geolocate to different
// continents depending on the database, because some providers track the
// current lessee while others keep the holder's stale registration
// country.
//
// Databases are stored in the self-published geofeed style of RFC 8805:
//
//	prefix,alpha2-country[,region[,city]]
//
// one entry per line, '#' comments allowed.
package geoip

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/prefixtree"
)

// DB is one provider's geolocation database.
type DB struct {
	Name string
	tree prefixtree.Tree[string]
	ins  *prefixtree.Inserter[string]
	n    int
}

// NewDB returns an empty database for the named provider.
func NewDB(name string) *DB { return &DB{Name: name} }

// Add records that p geolocates to the ISO 3166-1 alpha-2 country cc.
// Geofeed files list prefixes in ascending order, which the sorted
// inserter turns into linear-time tree construction.
func (db *DB) Add(p netutil.Prefix, cc string) {
	if db.ins == nil {
		db.ins = db.tree.Inserter()
	}
	if added := db.ins.Insert(p.Canonicalize(), strings.ToUpper(cc)); added {
		db.n++
	}
}

// Len returns the number of entries.
func (db *DB) Len() int { return db.n }

// Country returns the country of the most-specific entry covering p.
func (db *DB) Country(p netutil.Prefix) (string, bool) {
	_, cc, ok := db.tree.LongestMatch(p)
	return cc, ok
}

// ccIntern interns upper-cased two-letter country codes so the millions
// of geofeed lines across a provider panel share one string per country.
var (
	ccInternMu sync.Mutex
	ccIntern   = make(map[[2]byte]string)
)

func internCountry(a, b byte) string {
	key := [2]byte{a, b}
	ccInternMu.Lock()
	cc, ok := ccIntern[key]
	if !ok {
		cc = string(key[:])
		ccIntern[key] = cc
	}
	ccInternMu.Unlock()
	return cc
}

func upperByte(c byte) byte {
	if 'a' <= c && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// Parse reads one provider's database from its geofeed-style CSV. The
// parser works on the scanner's byte view directly — no per-line string,
// field-split, or country-code allocations — because a panel of provider
// databases over the full routed table is the largest line count in a
// dataset directory.
func Parse(name string, r io.Reader) (*DB, error) {
	return ParseWith(name, r, nil)
}

// ParseWith is Parse threaded through a load-diagnostics collector. A nil
// collector (or strict options) keeps Parse's fail-fast behavior; in
// lenient mode malformed lines are skipped and accounted.
func ParseWith(name string, r io.Reader, c *diag.Collector) (*DB, error) {
	db := NewDB(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		comma := bytes.IndexByte(line, ',')
		if comma < 0 {
			if err := c.Skip(lineNum, -1, fmt.Errorf("geoip: %s line %d: want prefix,country", name, lineNum)); err != nil {
				return nil, err
			}
			continue
		}
		p, err := netutil.ParsePrefixBytes(bytes.TrimSpace(line[:comma]))
		if err != nil {
			if err := c.Skip(lineNum, -1, fmt.Errorf("geoip: %s line %d: %v", name, lineNum, err)); err != nil {
				return nil, err
			}
			continue
		}
		ccField := line[comma+1:]
		if c2 := bytes.IndexByte(ccField, ','); c2 >= 0 {
			ccField = ccField[:c2] // optional region/city fields
		}
		ccField = bytes.TrimSpace(ccField)
		if len(ccField) != 2 {
			if err := c.Skip(lineNum, -1, fmt.Errorf("geoip: %s line %d: bad country %q", name, lineNum, ccField)); err != nil {
				return nil, err
			}
			continue
		}
		db.Add(p, internCountry(upperByte(ccField[0]), upperByte(ccField[1])))
		c.Parsed()
	}
	return db, sc.Err()
}

// Write renders the database in geofeed-style CSV, sorted by prefix.
func Write(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# geofeed: %s\n", db.Name)
	var err error
	db.tree.Walk(func(e prefixtree.Entry[string]) bool {
		_, err = fmt.Fprintf(bw, "%s,%s\n", e.Prefix, e.Value)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Panel is a set of provider databases queried together.
type Panel struct {
	DBs []*DB
}

// Countries returns the per-provider countries for p (providers without
// coverage are skipped).
func (pl *Panel) Countries(p netutil.Prefix) []string {
	var out []string
	for _, db := range pl.DBs {
		if cc, ok := db.Country(p); ok {
			out = append(out, cc)
		}
	}
	return out
}

// Disagrees reports whether the providers covering p disagree on its
// country (at least two distinct answers).
func (pl *Panel) Disagrees(p netutil.Prefix) bool {
	return pl.DistinctCountries(p) > 1
}

// DistinctCountries returns the number of distinct countries reported
// for p.
func (pl *Panel) DistinctCountries(p netutil.Prefix) int {
	seen := make(map[string]bool)
	for _, cc := range pl.Countries(p) {
		seen[cc] = true
	}
	return len(seen)
}

// Report contrasts geolocation disagreement over two prefix populations
// (leased vs non-leased).
type Report struct {
	LeasedTotal       int
	LeasedDisagree    int
	NonLeasedTotal    int
	NonLeasedDisagree int
	MaxDistinct       int         // worst-case distinct countries on a leased prefix
	DistinctHistogram map[int]int // leased prefixes by #distinct countries
}

// LeasedShare returns the disagreement rate over leased prefixes.
func (r *Report) LeasedShare() float64 {
	if r.LeasedTotal == 0 {
		return 0
	}
	return float64(r.LeasedDisagree) / float64(r.LeasedTotal)
}

// NonLeasedShare returns the disagreement rate over non-leased prefixes.
func (r *Report) NonLeasedShare() float64 {
	if r.NonLeasedTotal == 0 {
		return 0
	}
	return float64(r.NonLeasedDisagree) / float64(r.NonLeasedTotal)
}

// Analyze measures disagreement over the two populations.
func (pl *Panel) Analyze(leased, nonLeased []netutil.Prefix) *Report {
	rep := &Report{DistinctHistogram: make(map[int]int)}
	for _, p := range leased {
		n := pl.DistinctCountries(p)
		if n == 0 {
			continue
		}
		rep.LeasedTotal++
		rep.DistinctHistogram[n]++
		if n > 1 {
			rep.LeasedDisagree++
		}
		if n > rep.MaxDistinct {
			rep.MaxDistinct = n
		}
	}
	for _, p := range nonLeased {
		n := pl.DistinctCountries(p)
		if n == 0 {
			continue
		}
		rep.NonLeasedTotal++
		if n > 1 {
			rep.NonLeasedDisagree++
		}
	}
	return rep
}

// dbFileName renders a provider's file name under the geo directory.
func dbFileName(name string) string { return "geofeed-" + name + ".csv" }

// WriteDir writes every provider database into dir.
func WriteDir(dir string, panel *Panel) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, db := range panel.DBs {
		f, err := os.Create(filepath.Join(dir, dbFileName(db.Name)))
		if err != nil {
			return err
		}
		werr := Write(f, db)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// LoadDir reads every provider database in dir, sorted by provider name.
func LoadDir(dir string) (*Panel, error) {
	return LoadDirWith(dir, nil)
}

// LoadDirWith is LoadDir threaded through a load-diagnostics collector. A
// nil collector (or strict options) keeps LoadDir's fail-fast behavior. In
// lenient mode a missing directory yields an empty panel with the report
// marked Missing, and malformed geofeed lines are skipped and accounted.
func LoadDirWith(dir string, c *diag.Collector) (*Panel, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if !c.Strict() && os.IsNotExist(err) {
			c.SetFile(dir)
			c.MarkMissing()
			return &Panel{}, nil
		}
		return nil, err
	}
	c.SetFile(dir)
	panel := &Panel{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "geofeed-") || !strings.HasSuffix(name, ".csv") {
			continue
		}
		provider := strings.TrimSuffix(strings.TrimPrefix(name, "geofeed-"), ".csv")
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		c.SetFile(path)
		db, perr := ParseWith(provider, f, c)
		f.Close()
		if perr != nil {
			return nil, perr
		}
		panel.DBs = append(panel.DBs, db)
	}
	c.SetFile(dir)
	sort.Slice(panel.DBs, func(i, j int) bool { return panel.DBs[i].Name < panel.DBs[j].Name })
	return panel, nil
}
