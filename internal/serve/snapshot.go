// Package serve implements the resilient lease-lookup service: an
// immutable in-memory snapshot of one dataset load plus inference run,
// and an HTTP server that answers prefix/ASN lease queries from it.
//
// The architecture is snapshot-swap: queries always read a fully built,
// never-mutated *Snapshot through an atomic pointer, and a hot reload
// builds the next snapshot off-thread — with retry, exponential backoff,
// and a circuit breaker — then swaps it in atomically. A failed reload
// (corrupt feed mirror, tripped ingestion breaker, panicking parser)
// leaves the last good snapshot serving and surfaces the degradation
// through /readyz and /statusz instead of through dropped queries. This
// is the operational shape the paper's §6.5 longitudinal study implies:
// a long-lived attribution service fed by monthly registry and RIB
// refreshes, where any individual refresh may be rotten.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/report"
)

// Snapshot is one immutable serving state: the inference result of a
// single dataset load, indexed for allocation-free query answering, with
// the load's diagnostics attached. Snapshots are never mutated after
// NewSnapshot returns, so any number of request goroutines may read one
// concurrently while the next snapshot is being built.
type Snapshot struct {
	// BuiltAt is when the snapshot finished building. The Server stamps
	// it at swap time if the builder left it zero.
	BuiltAt time.Time
	// Generation is the snapshot's monotonically increasing publication
	// number, stamped by whoever minted the snapshot (the daemon's
	// build wrappers, or the snapshot codec on decode). Zero means the
	// process never assigns generations (no snapshot store configured).
	Generation uint64
	// Provenance is the W3C traceparent of the reload span that built
	// the snapshot. The Server stamps it at swap time if the builder
	// left it empty and the reload is being traced; the snapshot codec
	// carries it across the wire so a replica's fetch/decode/swap spans
	// can link back to the publisher's reload trace. Empty when the
	// build was untraced.
	Provenance string
	// Dir is the dataset directory the snapshot was loaded from.
	Dir string
	// Strict records the ingestion policy of the load.
	Strict bool
	// Result is the full inference output backing every lookup.
	Result *core.Result
	// Reports is the per-source load accounting of the build.
	Reports []*diag.LoadReport
	// SkippedAnalyses names analyses the load's dataset cannot support.
	SkippedAnalyses []string
	// Delta, when non-nil, describes how the snapshot was produced by
	// the incremental reload path (see PatchSnapshot); nil means a full
	// build.
	Delta *DeltaInfo

	table1 []byte
	infs   []core.Inference
	lpm    *netutil.LPM
	// byASN holds flat indices into infs rather than pointers, so the
	// delta path can translate an old generation's lists through a
	// PatchPlan remap without chasing pointers into a retired array.
	// View-backed snapshots carry asnView instead and leave byASN nil.
	byASN   map[uint32][]int32
	asnView *ASNView

	// backing, when non-nil, owns memory the snapshot's indexes alias
	// (a memory-mapped snapshot file). refs counts the holders keeping
	// those views safe to read: the serving slot plus every in-flight
	// request that called Acquire. The last Release drops the
	// snapshot's backing reference, which may unmap the file — so
	// every reader of a possibly-mapped snapshot goes through
	// Acquire/Release (Server.acquireSnap). Heap snapshots skip all of
	// it: nil backing makes Acquire a constant true and Release a
	// no-op, keeping the built path branch-cheap and GC-managed.
	backing  Backing
	refs     atomic.Int64
	loadMode string
}

// Acquire takes a read reference on the snapshot's backing memory.
// It returns false only for a view-backed snapshot whose last
// reference already dropped (the mapping is gone); the caller must
// re-resolve the snapshot pointer. Heap snapshots always succeed.
func (s *Snapshot) Acquire() bool {
	if s.backing == nil {
		return true
	}
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops a reference taken by Acquire (or the creation
// reference Restore minted). The last drop releases the backing —
// for a mapped snapshot, potentially munmap — after which every view
// (inference arena, LPM nodes, ASN index, table1) is invalid.
func (s *Snapshot) Release() {
	if s.backing == nil {
		return
	}
	if s.refs.Add(-1) == 0 {
		s.backing.Release()
	}
}

// LoadMode reports how the snapshot's indexes were materialized:
// LoadModeBuilt (constructed in-process), LoadModeHeap (decoded from
// snapshot bytes onto the heap), or LoadModeMmap (views over a mapped
// file).
func (s *Snapshot) LoadMode() string {
	if s.loadMode == "" {
		return LoadModeBuilt
	}
	return s.loadMode
}

// NewSnapshot indexes an inference result for serving. The result and
// reports must not be mutated afterwards; the snapshot takes ownership.
func NewSnapshot(res *core.Result, reports []*diag.LoadReport, skippedAnalyses []string) *Snapshot {
	s := &Snapshot{
		Result:          res,
		Reports:         reports,
		SkippedAnalyses: skippedAnalyses,
	}
	s.infs = res.Flat()
	ps := make([]netutil.Prefix, len(s.infs))
	s.byASN = make(map[uint32][]int32)
	for i := range s.infs {
		inf := &s.infs[i]
		ps[i] = inf.Prefix
		for _, asn := range inf.LeafOrigins {
			s.byASN[asn] = append(s.byASN[asn], int32(i))
		}
	}
	// Index every leaf prefix in a flat LPM trie: address lookups become
	// one short pointer-free descent instead of up to 25 map probes, and
	// they allocate nothing, so batch endpoints and utilization sweeps
	// can hit the snapshot at line rate. BuildLPM resolves duplicate
	// prefixes to the highest index, matching the last-write-wins
	// population order of the map this replaces.
	s.lpm = netutil.BuildLPM(ps)
	var buf bytes.Buffer
	report.Table1(&buf, res)
	s.table1 = buf.Bytes()
	return s
}

// Table1 returns the pre-rendered Markdown Table 1 for this snapshot —
// the same bytes report.Markdown embeds in the full report.
func (s *Snapshot) Table1() []byte { return s.table1 }

// FlatInferences exposes the snapshot's flat inference arena — every
// classification, contiguous, in All order — for the snapshot codec
// (internal/snapstore). Read-only: the arena is shared with every
// concurrent lookup.
func (s *Snapshot) FlatInferences() []core.Inference { return s.infs }

// LPM exposes the snapshot's flat longest-prefix-match index for the
// snapshot codec. Read-only.
func (s *Snapshot) LPM() *netutil.LPM { return s.lpm }

// ByASN exposes the snapshot's ASN index — flat arena indexes per
// originating ASN — for the snapshot codec and the delta patch path.
// Read-only: neither the map nor its lists may be mutated. For a
// view-backed snapshot the map is materialized on each call (those
// callers — re-encode, delta patch — never run against mapped
// snapshots in the daemon; this keeps them correct anyway).
func (s *Snapshot) ByASN() map[uint32][]int32 {
	if s.byASN == nil && s.asnView != nil {
		m := make(map[uint32][]int32, s.asnView.Len())
		s.asnView.ForEach(func(asn uint32, list []int32) {
			m[asn] = append([]int32(nil), list...)
		})
		return m
	}
	return s.byASN
}

// Restored carries decoded snapshot sections into Restore. Every field
// is required except Delta.
type Restored struct {
	BuiltAt         time.Time
	Generation      uint64
	Provenance      string
	Dir             string
	Strict          bool
	Result          *core.Result // must carry the flat arena (core.ResultFromFlat)
	LPM             *netutil.LPM
	ByASN           map[uint32][]int32
	Table1          []byte
	Reports         []*diag.LoadReport
	SkippedAnalyses []string
	// Delta annotates how the snapshot reached this process; the snapshot
	// store sets Mode to ModeSnapshot so reload accounting distinguishes
	// decoded generations from full and delta builds.
	Delta *DeltaInfo
	// ByASNView is the flat alternative to ByASN used by the mmap open
	// path (exactly one of the two may be set). It must already be
	// validated (NewASNView).
	ByASNView *ASNView
	// Backing, when non-nil, owns the memory the decoded sections alias;
	// the snapshot takes over one reference to it (refcount 1 at birth)
	// and releases it when its own last reference drops.
	Backing Backing
	// LoadMode labels how the sections were materialized (LoadModeHeap /
	// LoadModeMmap); empty defaults to LoadModeHeap for restored
	// snapshots.
	LoadMode string
}

// Restore assembles a servable Snapshot from already-decoded sections
// without re-running any build step: no BuildLPM, no report.Table1, no
// classification. This is the contract that makes snapshot cold starts
// O(bytes) instead of O(world) — the decoded sections ARE the serving
// indexes. The parts must have been produced from one consistent
// snapshot (the snapshot codec's checksums guarantee that); Restore
// still refuses structurally impossible combinations rather than serve
// from them.
func Restore(parts Restored) (*Snapshot, error) {
	if parts.Result == nil || parts.LPM == nil {
		return nil, errors.New("serve: restore needs a result and an LPM index")
	}
	infs := parts.Result.Flat()
	for asn, list := range parts.ByASN {
		for _, j := range list {
			if j < 0 || int(j) >= len(infs) {
				return nil, fmt.Errorf("serve: restore: ASN %d index %d outside arena of %d", asn, j, len(infs))
			}
		}
	}
	s := &Snapshot{
		BuiltAt:         parts.BuiltAt,
		Generation:      parts.Generation,
		Provenance:      parts.Provenance,
		Dir:             parts.Dir,
		Strict:          parts.Strict,
		Result:          parts.Result,
		Reports:         parts.Reports,
		SkippedAnalyses: parts.SkippedAnalyses,
		Delta:           parts.Delta,
		table1:          parts.Table1,
		infs:            infs,
		lpm:             parts.LPM,
		byASN:           parts.ByASN,
		asnView:         parts.ByASNView,
		backing:         parts.Backing,
		loadMode:        parts.LoadMode,
	}
	if s.loadMode == "" {
		s.loadMode = LoadModeHeap
	}
	if s.byASN == nil && s.asnView == nil {
		s.byASN = make(map[uint32][]int32)
	}
	if s.backing != nil {
		// The creation reference: whoever restored the snapshot owns it
		// until the serving swap takes over (Server.Reload releases the
		// retired snapshot's reference after the swap).
		s.refs.Store(1)
	}
	return s, nil
}

// LookupPrefix returns the classification of an exact leaf prefix, or
// nil if the snapshot has none.
func (s *Snapshot) LookupPrefix(p netutil.Prefix) *core.Inference {
	if i, ok := s.lpm.LookupExact(p); ok {
		return &s.infs[i]
	}
	return nil
}

// LookupAddr returns the longest-prefix-match classification covering a
// single address, or nil if no classified leaf covers it. The lookup is
// a short descent over the snapshot's flat LPM index: O(tree depth),
// zero allocation, safe under arbitrary concurrency.
func (s *Snapshot) LookupAddr(a netutil.Addr) *core.Inference {
	if i, ok := s.lpm.Lookup(a); ok {
		return &s.infs[i]
	}
	return nil
}

// LookupAddrs classifies a batch of addresses, appending one result per
// address (nil where nothing matches) to dst and returning it. Only dst
// may grow: the per-address work is the same allocation-free descent as
// LookupAddr, so callers that reuse dst across batches amortize to zero
// allocation.
func (s *Snapshot) LookupAddrs(dst []*core.Inference, addrs []netutil.Addr) []*core.Inference {
	if cap(dst)-len(dst) < len(addrs) {
		grown := make([]*core.Inference, len(dst), len(dst)+len(addrs))
		copy(grown, dst)
		dst = grown
	}
	// Chunk through a stack buffer so the LPM descent runs batched (node
	// array hoisted out of the per-address loop) while this path stays
	// allocation-free at any batch size.
	var buf [512]int32
	for len(addrs) > 0 {
		chunk := addrs
		if len(chunk) > len(buf) {
			chunk = chunk[:len(buf)]
		}
		for _, i := range s.lpm.LookupAddrs(buf[:0], chunk) {
			if i >= 0 {
				dst = append(dst, &s.infs[i])
			} else {
				dst = append(dst, nil)
			}
		}
		addrs = addrs[len(chunk):]
	}
	return dst
}

// LookupASN returns every classified leaf prefix originated by the ASN,
// in the result's registry-then-prefix order.
func (s *Snapshot) LookupASN(asn uint32) []*core.Inference {
	var idx []int32
	if s.asnView != nil {
		idx = s.asnView.Lookup(asn)
	} else {
		idx = s.byASN[asn]
	}
	if len(idx) == 0 {
		return nil
	}
	out := make([]*core.Inference, len(idx))
	for i, j := range idx {
		out[i] = &s.infs[j]
	}
	return out
}

// NumInferences returns the number of classified leaves in the snapshot.
func (s *Snapshot) NumInferences() int { return len(s.infs) }

// InferenceView is the JSON shape of one classification, stable across
// snapshots so clients can diff responses between reloads.
type InferenceView struct {
	Registry     string   `json:"registry"`
	Prefix       string   `json:"prefix"`
	Category     string   `json:"category"`
	Group        int      `json:"group"`
	Leased       bool     `json:"leased"`
	Root         string   `json:"root,omitempty"`
	HolderOrg    string   `json:"holder_org,omitempty"`
	RootASNs     []uint32 `json:"root_asns,omitempty"`
	RootOrigins  []uint32 `json:"root_origins,omitempty"`
	LeafOrigins  []uint32 `json:"leaf_origins,omitempty"`
	Facilitators []string `json:"facilitators,omitempty"`
	NetName      string   `json:"netname,omitempty"`
	Country      string   `json:"country,omitempty"`
}

// View renders one inference in the stable JSON shape.
func View(inf *core.Inference) *InferenceView {
	if inf == nil {
		return nil
	}
	v := &InferenceView{
		Registry:     inf.Registry.String(),
		Category:     inf.Category.String(),
		Group:        inf.Category.Group(),
		Leased:       inf.Category.Leased(),
		Prefix:       inf.Prefix.String(),
		HolderOrg:    inf.HolderOrg,
		RootASNs:     inf.RootASNs,
		RootOrigins:  inf.RootOrigins,
		LeafOrigins:  inf.LeafOrigins,
		Facilitators: inf.Facilitators,
		NetName:      inf.NetName,
		Country:      inf.Country,
	}
	if inf.Category != core.Orphan {
		v.Root = inf.Root.String()
	}
	return v
}

// LoadReportView is the JSON shape of one source's load accounting.
type LoadReportView struct {
	Source    string  `json:"source"`
	File      string  `json:"file,omitempty"`
	Parsed    int     `json:"parsed"`
	Skipped   int     `json:"skipped"`
	Bytes     int64   `json:"bytes,omitempty"`
	Missing   bool    `json:"missing"`
	Truncated bool    `json:"truncated"`
	ErrorRate float64 `json:"error_rate"`
}

// ReportViews renders the snapshot's per-source accounting.
func (s *Snapshot) ReportViews() []LoadReportView {
	out := make([]LoadReportView, 0, len(s.Reports))
	for _, r := range s.Reports {
		if r == nil {
			continue
		}
		out = append(out, LoadReportView{
			Source:    r.Source,
			File:      r.File,
			Parsed:    r.Parsed,
			Skipped:   r.Skipped,
			Bytes:     r.Bytes,
			Missing:   r.Missing,
			Truncated: r.Truncated,
			ErrorRate: r.ErrorRate(),
		})
	}
	return out
}
