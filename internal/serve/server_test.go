package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

func mp(s string) netutil.Prefix { return netutil.MustParsePrefix(s) }

// testSnapshot builds a tiny hand-rolled snapshot: two classified leaves
// in one registry, one of them leased.
func testSnapshot() *Snapshot {
	infs := []core.Inference{
		{
			Registry: whois.RIPE, Prefix: mp("10.0.0.0/24"),
			Category: core.LeasedNoRootOrigin, Root: mp("10.0.0.0/16"),
			HolderOrg: "HOLDCO", LeafOrigins: []uint32{64500},
		},
		{
			Registry: whois.RIPE, Prefix: mp("10.0.1.0/24"),
			Category: core.ISPCustomer, Root: mp("10.0.0.0/16"),
			HolderOrg: "HOLDCO", LeafOrigins: []uint32{64501},
		},
	}
	rr := &core.RegionResult{Registry: whois.RIPE, Inferences: infs}
	for _, inf := range infs {
		rr.Counts[inf.Category]++
		rr.TotalLeaves++
	}
	res := &core.Result{
		Regions:          map[whois.Registry]*core.RegionResult{whois.RIPE: rr},
		TotalBGPPrefixes: 10,
	}
	return NewSnapshot(res, []*diag.LoadReport{{Source: "whois/RIPE", Parsed: 2}}, nil)
}

// newTestServer builds a primed server over testSnapshot.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Build == nil {
		cfg.Build = func(context.Context) (*Snapshot, error) { return testSnapshot(), nil }
	}
	s := New(cfg)
	if err := s.Reload(context.Background(), true); err != nil {
		t.Fatalf("initial Reload: %v", err)
	}
	return s
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestLookupQueries(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body, _ := get(t, ts, "/lookup?prefix=10.0.0.0/24")
	if code != 200 || !strings.Contains(body, `"leased": true`) ||
		!strings.Contains(body, "HOLDCO") {
		t.Errorf("prefix lookup: code %d body %s", code, body)
	}

	// Longest-prefix match from a bare address inside the leased leaf.
	code, body, _ = get(t, ts, "/lookup?ip=10.0.0.77")
	if code != 200 || !strings.Contains(body, `"prefix": "10.0.0.0/24"`) {
		t.Errorf("ip lookup: code %d body %s", code, body)
	}

	// ASN lookup, with and without the AS prefix.
	for _, q := range []string{"/lookup?asn=64501", "/lookup?asn=AS64501"} {
		code, body, _ = get(t, ts, q)
		if code != 200 || !strings.Contains(body, "10.0.1.0/24") {
			t.Errorf("%s: code %d body %s", q, code, body)
		}
	}

	// Misses are 200 found=false, not errors.
	code, body, _ = get(t, ts, "/lookup?prefix=192.0.2.0/24")
	if code != 200 || !strings.Contains(body, `"found": false`) {
		t.Errorf("miss: code %d body %s", code, body)
	}

	// Malformed queries are 400s.
	for _, q := range []string{"/lookup", "/lookup?prefix=banana", "/lookup?ip=999.1.1.1", "/lookup?asn=banana"} {
		if code, _, _ := get(t, ts, q); code != 400 {
			t.Errorf("%s: code %d, want 400", q, code)
		}
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

func TestLookupBatch(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Mixed batch: hit, miss, malformed — one response, per-item status.
	code, body := postJSON(t, ts, "/lookup/batch",
		`{"ips": ["10.0.0.77", "192.0.2.1", "banana"]}`)
	if code != 200 {
		t.Fatalf("batch: code %d body %s", code, body)
	}
	var resp struct {
		Results []struct {
			IP        string         `json:"ip"`
			Found     bool           `json:"found"`
			Inference *InferenceView `json:"inference"`
			Error     string         `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("batch response: %v\n%s", err, body)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(resp.Results))
	}
	if r := resp.Results[0]; !r.Found || r.Inference == nil || r.Inference.Prefix != "10.0.0.0/24" {
		t.Errorf("batch[0] = %+v, want hit on 10.0.0.0/24", r)
	}
	if r := resp.Results[1]; r.Found || r.Inference != nil || r.Error != "" {
		t.Errorf("batch[1] = %+v, want clean miss", r)
	}
	if r := resp.Results[2]; r.Found || r.Error == "" {
		t.Errorf("batch[2] = %+v, want per-item parse error", r)
	}

	// Non-POST is 405 with Allow.
	code, _, hdr := get(t, ts, "/lookup/batch")
	if code != http.StatusMethodNotAllowed || hdr.Get("Allow") != http.MethodPost {
		t.Errorf("GET batch: code %d Allow %q, want 405 POST", code, hdr.Get("Allow"))
	}

	// Malformed body and empty batch are 400s.
	for _, b := range []string{`{`, `{"ips": []}`, `{}`} {
		if code, body := postJSON(t, ts, "/lookup/batch", b); code != 400 {
			t.Errorf("body %q: code %d body %s, want 400", b, code, body)
		}
	}

	// Over-limit batches are refused outright, not truncated.
	ips := make([]string, MaxBatchIPs+1)
	for i := range ips {
		ips[i] = "10.0.0.1"
	}
	big, err := json.Marshal(map[string][]string{"ips": ips})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := postJSON(t, ts, "/lookup/batch", string(big)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize batch: code %d body %s, want 413", code, body)
	}
}

func TestLookupBatchNoSnapshot(t *testing.T) {
	s := New(Config{Build: func(context.Context) (*Snapshot, error) { return testSnapshot(), nil }})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, body := postJSON(t, ts, "/lookup/batch", `{"ips": ["10.0.0.1"]}`); code != 503 {
		t.Errorf("no snapshot: code %d body %s, want 503", code, body)
	}
}

func TestTable1AndLoadReport(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body, hdr := get(t, ts, "/table1")
	if code != 200 || !strings.Contains(body, "Table 1") || !strings.Contains(body, "Leased prefixes") {
		t.Errorf("/table1: code %d body %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "markdown") {
		t.Errorf("/table1 content-type = %q", ct)
	}

	code, body, _ = get(t, ts, "/loadreport")
	if code != 200 || !strings.Contains(body, "whois/RIPE") {
		t.Errorf("/loadreport: code %d body %s", code, body)
	}
}

func TestUnprimedServerIsUnready(t *testing.T) {
	s := New(Config{Build: func(context.Context) (*Snapshot, error) { return testSnapshot(), nil }})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body, _ := get(t, ts, "/lookup?prefix=10.0.0.0/24"); code != 503 ||
		!strings.Contains(body, "no snapshot") {
		t.Errorf("lookup before reload: code %d body %s", code, body)
	}
	if code, body, _ := get(t, ts, "/readyz"); code != 503 || !strings.Contains(body, "unready") {
		t.Errorf("/readyz before reload: code %d body %s", code, body)
	}
	// Liveness is still ok: an unprimed process must not be restarted.
	if code, _, _ := get(t, ts, "/healthz"); code != 200 {
		t.Errorf("/healthz before reload: code %d, want 200", code)
	}

	if err := s.Reload(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	if code, body, _ := get(t, ts, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz after reload: code %d body %s", code, body)
	}
}

// TestPanicRecovery drives a panicking handler through the middleware:
// the response is a 500, the panic is counted, and the process survives
// to answer the next request.
func TestPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{})
	s.route("boom", "/boom", true, func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, _ := get(t, ts, "/boom"); code != 500 {
		t.Errorf("/boom: code %d, want 500", code)
	}
	if code, _, _ := get(t, ts, "/healthz"); code != 200 {
		t.Errorf("/healthz after panic: code %d, want 200", code)
	}
	_, body, _ := get(t, ts, "/statusz")
	var st statuszResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if st.Endpoints["boom"].Errors != 1 || st.Endpoints["boom"].Requests != 1 {
		t.Errorf("boom counters = %+v", st.Endpoints["boom"])
	}
}

// TestLoadShedding fills the concurrency limiter and checks that excess
// load is shed with 429 + Retry-After instead of queueing.
func TestLoadShedding(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	entered := make(chan struct{})
	s.route("slow", "/slow", true, func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(200)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		code, _, _ := get(t, ts, "/slow")
		done <- code
	}()
	<-entered

	code, _, hdr := get(t, ts, "/lookup?prefix=10.0.0.0/24")
	if code != 429 {
		t.Errorf("second request: code %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	// Health endpoints bypass the limiter: they must answer while shed.
	if code, _, _ := get(t, ts, "/healthz"); code != 200 {
		t.Errorf("/healthz while saturated: code %d", code)
	}
	close(release)
	if code := <-done; code != 200 {
		t.Errorf("in-flight request: code %d, want 200", code)
	}

	_, body, _ := get(t, ts, "/statusz")
	var st statuszResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Endpoints["lookup"].Shed != 1 {
		t.Errorf("lookup shed = %d, want 1", st.Endpoints["lookup"].Shed)
	}
}

// TestRequestTimeout bounds a slow handler: the client gets a 503 within
// the configured budget and the overrun is counted as an error.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	s.route("stall", "/stall", true, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		w.WriteHeader(200)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	code, body, _ := get(t, ts, "/stall")
	if code != 503 || !strings.Contains(body, "timed out") {
		t.Errorf("/stall: code %d body %q", code, body)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timeout took %v, budget was 50ms", d)
	}
	_, sbody, _ := get(t, ts, "/statusz")
	var st statuszResponse
	if err := json.Unmarshal([]byte(sbody), &st); err != nil {
		t.Fatal(err)
	}
	if st.Endpoints["stall"].Errors != 1 {
		t.Errorf("stall errors = %d, want 1", st.Endpoints["stall"].Errors)
	}
}

// TestReloadRetryAndBreaker walks the full failure ladder: per-cycle
// retries with exponential backoff, consecutive-failure accounting, the
// breaker opening and refusing unforced reloads, and a forced success
// closing it again.
func TestReloadRetryAndBreaker(t *testing.T) {
	var builds atomic.Int32
	failing := atomic.Bool{}
	failing.Store(true)
	var slept []time.Duration
	var sleepMu sync.Mutex

	cfg := Config{
		Build: func(context.Context) (*Snapshot, error) {
			builds.Add(1)
			if failing.Load() {
				return nil, errors.New("rotten feed")
			}
			return testSnapshot(), nil
		},
		ReloadAttempts: 3,
		ReloadBackoff:  10 * time.Millisecond,
		BreakerAfter:   2,
		sleep: func(ctx context.Context, d time.Duration) error {
			sleepMu.Lock()
			slept = append(slept, d)
			sleepMu.Unlock()
			return nil
		},
		// Identity jitter keeps the exact-backoff assertions below
		// deterministic; jitter behavior has its own tests.
		jitter: func(max time.Duration) time.Duration { return max },
	}
	s := New(cfg)
	ctx := context.Background()

	// Cycle 1: three attempts, backoff 10ms then 20ms, then failure.
	if err := s.Reload(ctx, false); err == nil || !strings.Contains(err.Error(), "rotten feed") {
		t.Fatalf("cycle 1 = %v", err)
	}
	if got := builds.Load(); got != 3 {
		t.Errorf("cycle 1 builds = %d, want 3", got)
	}
	sleepMu.Lock()
	wantSleeps := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != 2 || slept[0] != wantSleeps[0] || slept[1] != wantSleeps[1] {
		t.Errorf("backoffs = %v, want %v", slept, wantSleeps)
	}
	sleepMu.Unlock()

	// Cycle 2 fails too: breaker opens.
	if err := s.Reload(ctx, false); err == nil {
		t.Fatal("cycle 2 succeeded unexpectedly")
	}
	s.mu.Lock()
	open := s.breakerOpen
	s.mu.Unlock()
	if !open {
		t.Fatal("breaker not open after 2 failed cycles")
	}

	// Unforced reloads are now refused without touching the builder.
	before := builds.Load()
	if err := s.Reload(ctx, false); err != ErrBreakerOpen {
		t.Fatalf("reload with open breaker = %v, want ErrBreakerOpen", err)
	}
	if builds.Load() != before {
		t.Error("builder ran despite open breaker")
	}

	// A forced reload runs, succeeds, closes the breaker.
	failing.Store(false)
	if err := s.Reload(ctx, true); err != nil {
		t.Fatalf("forced reload = %v", err)
	}
	if s.Snapshot() == nil {
		t.Fatal("no snapshot after forced reload")
	}
	s.mu.Lock()
	open, fails := s.breakerOpen, s.consecFails
	s.mu.Unlock()
	if open || fails != 0 {
		t.Errorf("after forced success: open=%v fails=%d", open, fails)
	}

	// And unforced reloads work again.
	if err := s.Reload(ctx, false); err != nil {
		t.Errorf("post-recovery reload = %v", err)
	}
}

// TestBuilderPanicIsReloadError: a panicking snapshot build is a failed
// reload, not a dead process, and the old snapshot keeps serving.
func TestBuilderPanicIsReloadError(t *testing.T) {
	panicking := atomic.Bool{}
	s := newTestServer(t, Config{Build: func(context.Context) (*Snapshot, error) {
		if panicking.Load() {
			panic("parser bug on rotten input")
		}
		return testSnapshot(), nil
	}, ReloadAttempts: 1})
	old := s.Snapshot()

	panicking.Store(true)
	err := s.Reload(context.Background(), false)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Reload = %v, want build-panicked error", err)
	}
	if s.Snapshot() != old {
		t.Error("snapshot changed after failed reload")
	}
}

// TestReloadInFlight: a second concurrent reload cycle is refused
// instead of queueing behind the first.
func TestReloadInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{Build: func(context.Context) (*Snapshot, error) {
		close(started)
		<-release
		return testSnapshot(), nil
	}})
	done := make(chan error, 1)
	go func() { done <- s.Reload(context.Background(), true) }()
	<-started
	if err := s.Reload(context.Background(), true); err != ErrReloadInFlight {
		t.Errorf("concurrent Reload = %v, want ErrReloadInFlight", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Errorf("first Reload = %v", err)
	}
}

// TestGracefulShutdownDrains serves a request that is mid-flight when
// Shutdown begins and checks that it completes with a full response
// before the server exits — the SIGTERM drain contract of cmd/leased.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{})
	entered := make(chan struct{})
	s.route("drain", "/drain", true, func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, "drained fine")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		body string
	}
	done := make(chan result, 1)
	go func() {
		code, body, _ := get(t, ts, "/drain")
		done <- result{code, body}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- ts.Config.Shutdown(context.Background()) }()

	res := <-done
	if res.code != 200 || res.body != "drained fine" {
		t.Errorf("in-flight request during shutdown: code %d body %q", res.code, res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown = %v", err)
	}
	// After drain, new connections are refused.
	if _, err := http.Get(ts.URL + "/healthz"); err == nil {
		t.Error("request after shutdown succeeded")
	}
}

// TestBackoffFullJitter pins the de-synchronization contract: with a
// fixed seed the jittered backoffs are reproducible, every draw lands in
// [0, base<<(attempt-1)], and two different seeds produce different
// retry timing (the whole point — replicas that failed together must
// not retry together).
func TestBackoffFullJitter(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var slept []time.Duration
		var mu sync.Mutex
		cfg := Config{
			Build: func(context.Context) (*Snapshot, error) {
				return nil, errors.New("down")
			},
			ReloadAttempts: 4,
			ReloadBackoff:  10 * time.Millisecond,
			JitterSeed:     seed,
			sleep: func(ctx context.Context, d time.Duration) error {
				mu.Lock()
				slept = append(slept, d)
				mu.Unlock()
				return nil
			},
		}
		s := New(cfg)
		if err := s.Reload(context.Background(), false); err == nil {
			t.Fatal("reload against a failing builder succeeded")
		}
		return slept
	}

	a := run(42)
	b := run(42)
	if len(a) != 3 {
		t.Fatalf("sleeps = %v, want 3 entries", a)
	}
	for i, d := range a {
		max := 10 * time.Millisecond << i
		if d < 0 || d > max {
			t.Errorf("sleep %d = %v outside [0, %v]", i, d, max)
		}
		if d != b[i] {
			t.Errorf("seed 42 not reproducible: run1[%d]=%v run2[%d]=%v", i, d, i, b[i])
		}
	}
	c := run(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Errorf("seeds 42 and 7 produced identical backoffs %v", a)
	}
}

type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string             { return "publisher busy" }
func (e *hintedErr) RetryAfter() time.Duration { return e.after }

// TestBackoffStretchesToRetryAfterHint: when a failed attempt's error
// carries a Retry-After hint (a 429/503 publisher), the next backoff is
// at least that hint — jitter may only push the retry later, never
// earlier than the publisher asked.
func TestBackoffStretchesToRetryAfterHint(t *testing.T) {
	var slept []time.Duration
	var mu sync.Mutex
	cfg := Config{
		Build: func(context.Context) (*Snapshot, error) {
			return nil, &hintedErr{after: 250 * time.Millisecond}
		},
		ReloadAttempts: 3,
		ReloadBackoff:  time.Millisecond, // far below the hint
		sleep: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return nil
		},
	}
	s := New(cfg)
	if err := s.Reload(context.Background(), false); err == nil {
		t.Fatal("reload against a failing builder succeeded")
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2 entries", slept)
	}
	for i, d := range slept {
		if d < 250*time.Millisecond {
			t.Errorf("sleep %d = %v, want >= 250ms (Retry-After hint)", i, d)
		}
	}
}
