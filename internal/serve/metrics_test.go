package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"ipleasing/internal/telemetry"
)

// TestMetricsEndpoint scrapes /metrics after real traffic and checks the
// exposition is conformant and carries every family check.sh requires.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get(t, ts, "/lookup?prefix=10.0.0.0/24")
	get(t, ts, "/lookup?ip=10.0.0.77")
	get(t, ts, "/healthz")

	code, body, hdr := get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: code %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if err := telemetry.LintExposition([]byte(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`http_requests_total{endpoint="lookup"} 2`,
		`http_request_duration_seconds_bucket{endpoint="lookup",le="+Inf"} 2`,
		`http_request_duration_seconds_count{endpoint="lookup"} 2`,
		"reload_cycles_total 1",
		"reload_failures_total 0",
		"reload_breaker_open 0",
		"reload_consecutive_failures 0",
		`ingest_parsed_records_total{source="whois/RIPE"} 2`,
		"snapshot_inferences 2",
		"snapshot_age_seconds",
		"snapshot_built_timestamp_seconds",
		"http_in_flight_requests",
		"process_start_time_seconds",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsTrackBreaker: failed reloads drive the failure counter and
// breaker gauge, and a forced success resets them.
func TestMetricsTrackBreaker(t *testing.T) {
	failing := true
	s := New(Config{
		Build: func(context.Context) (*Snapshot, error) {
			if failing {
				return nil, errors.New("rotten feed")
			}
			return testSnapshot(), nil
		},
		ReloadAttempts: 1,
		BreakerAfter:   2,
	})
	ctx := context.Background()
	s.Reload(ctx, false)
	s.Reload(ctx, false)

	if v := s.m.reloadFailures.Value(); v != 2 {
		t.Errorf("reload_failures_total = %d, want 2", v)
	}
	if v := s.m.breakerGauge.Value(); v != 1 {
		t.Errorf("reload_breaker_open = %v, want 1", v)
	}
	if v := s.m.consecFails.Value(); v != 2 {
		t.Errorf("reload_consecutive_failures = %v, want 2", v)
	}

	failing = false
	if err := s.Reload(ctx, true); err != nil {
		t.Fatal(err)
	}
	if v := s.m.breakerGauge.Value(); v != 0 {
		t.Errorf("reload_breaker_open after recovery = %v, want 0", v)
	}
	if v := s.m.reloadCycles.Value(); v != 3 {
		t.Errorf("reload_cycles_total = %d, want 3", v)
	}
}

// TestSharedRegistryAcrossServers: a registry passed to two server
// generations keeps cumulative counters but reads snapshot gauges from
// the newest server (SetGaugeFunc semantics).
func TestSharedRegistryAcrossServers(t *testing.T) {
	reg := telemetry.NewRegistry()
	s1 := newTestServer(t, Config{Metrics: reg})
	_ = s1
	s2 := New(Config{
		Metrics: reg,
		Build:   func(context.Context) (*Snapshot, error) { return testSnapshot(), nil },
	})
	// s2 has no snapshot yet: the gauge must follow s2, not s1.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "snapshot_inferences 0") {
		t.Errorf("snapshot_inferences should read newest server (0):\n%s", buf.String())
	}
	if err := s2.Reload(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "snapshot_inferences 2") {
		t.Errorf("snapshot_inferences after s2 reload:\n%s", buf.String())
	}
}
