package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/telemetry"
)

// Errors returned by Reload.
var (
	// ErrBreakerOpen means the reload circuit breaker has opened after
	// too many consecutive failed reload cycles; unforced reloads are
	// refused until a forced reload succeeds.
	ErrBreakerOpen = errors.New("serve: reload circuit breaker open")
	// ErrReloadInFlight means another reload cycle is already running.
	ErrReloadInFlight = errors.New("serve: reload already in flight")
	// ErrNoSnapshot means no snapshot has ever been loaded.
	ErrNoSnapshot = errors.New("serve: no snapshot loaded")
)

// Defaults for the zero Config fields.
const (
	DefaultMaxInFlight    = 128
	DefaultRequestTimeout = 5 * time.Second
	DefaultRetryAfter     = 1 * time.Second
	DefaultReloadAttempts = 3
	DefaultReloadBackoff  = 100 * time.Millisecond
	DefaultBreakerAfter   = 3
	// historyCap bounds the reload history kept for /statusz.
	historyCap = 32
)

// Config wires a Server. Build is the only required field.
type Config struct {
	// Build constructs the next snapshot: load the dataset, run the
	// inference, index it. It runs outside the request path (the caller's
	// reload goroutine); a panic inside it is recovered and treated as a
	// build error, never a process kill.
	Build func(ctx context.Context) (*Snapshot, error)

	// BuildDelta, when set, is the incremental builder used for unforced
	// reloads once a snapshot is being served: it receives the live
	// snapshot and may diff the fresh dataset against the previous
	// generation, re-infer only what changed, and patch the serving
	// indexes (PatchSnapshot). It must either return a snapshot
	// equivalent to what Build would produce or fail; a failure counts
	// as a normal reload failure (retries, then the breaker). Forced
	// reloads — the operator escape hatch — always use Build.
	BuildDelta func(ctx context.Context, prev *Snapshot) (*Snapshot, error)

	// OnSwap, when set, observes every successfully swapped-in snapshot
	// after it becomes the serving snapshot. It runs synchronously on
	// the reload goroutine — keep it bounded (the daemon uses it to
	// persist and publish the new generation). The context carries the
	// reload's trace span (if the cycle is traced) so observer work
	// shows up in the reload trace. A panic inside it is contained and
	// logged; it can never fail the reload that already succeeded.
	OnSwap func(ctx context.Context, snap *Snapshot)

	// Replication, when set, reports the daemon's snapshot replication
	// state. /statusz embeds it and /readyz attaches the generation lag,
	// so a replica serving stale generations is observable without new
	// endpoints. Called per status request; must be cheap and
	// goroutine-safe.
	Replication func() *ReplicationStatus

	// ReloadEvery is the timer-driven reload period for ReloadLoop.
	// Zero disables timed reloads (signal-driven only).
	ReloadEvery time.Duration
	// ReloadAttempts is how many times one reload cycle tries Build
	// before giving up, with exponential backoff between attempts.
	ReloadAttempts int
	// ReloadBackoff is the backoff before the second attempt; it doubles
	// per subsequent attempt.
	ReloadBackoff time.Duration
	// BreakerAfter opens the reload circuit breaker after this many
	// consecutive failed reload cycles. While open, unforced (timer)
	// reloads are refused without touching the dataset; a forced reload
	// (SIGHUP) still runs and closes the breaker on success.
	BreakerAfter int

	// MaxInFlight caps concurrently served requests; excess load is shed
	// with 429 + Retry-After instead of queueing unboundedly.
	MaxInFlight int
	// RequestTimeout bounds one request's handling time; requests over
	// it are answered 503.
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to shed responses.
	RetryAfter time.Duration

	// Logger receives reload and lifecycle records; the nil logger
	// discards them.
	Logger *telemetry.Logger
	// Metrics is the registry behind /metrics and every server
	// instrument. Nil gets a fresh per-server registry, so tests and
	// embedded servers never share counters or leak scrape-time gauge
	// closures into global state.
	Metrics *telemetry.Registry

	// Traces, when set, enables request tracing: incoming W3C
	// traceparent headers are honored, a head sampler traces a fraction
	// of the rest, error and slow-outlier requests are always kept, and
	// finished traces are served from /debug/traces. Reload cycles get
	// an owned, always-kept trace when the caller's context carries
	// none. Nil disables tracing; unsampled requests pay one header
	// lookup and one sampler draw either way (the nil-span no-op path).
	Traces *telemetry.TracePlane

	// JitterSeed seeds the RNG behind the full-jitter retry backoff.
	// Zero draws from the clock; a fixed seed makes retry timing
	// reproducible (tests, chaos-harness runs).
	JitterSeed int64

	// Test hooks: clock, interruptible sleep, and backoff jitter. Nil
	// means real time / full jitter.
	now    func() time.Time
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func(max time.Duration) time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ReloadAttempts <= 0 {
		out.ReloadAttempts = DefaultReloadAttempts
	}
	if out.ReloadBackoff <= 0 {
		out.ReloadBackoff = DefaultReloadBackoff
	}
	if out.BreakerAfter <= 0 {
		out.BreakerAfter = DefaultBreakerAfter
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = DefaultMaxInFlight
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = DefaultRequestTimeout
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = DefaultRetryAfter
	}
	if out.Metrics == nil {
		out.Metrics = telemetry.NewRegistry()
	}
	if out.now == nil {
		out.now = time.Now
	}
	if out.sleep == nil {
		out.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if out.jitter == nil {
		seed := out.JitterSeed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		rng := rand.New(rand.NewSource(seed))
		var mu sync.Mutex
		// Full jitter (uniform over [0, max]): a fleet of replicas that
		// failed together spreads its retries over the whole backoff
		// window instead of hammering a recovering publisher in lockstep.
		out.jitter = func(max time.Duration) time.Duration {
			if max <= 0 {
				return 0
			}
			mu.Lock()
			defer mu.Unlock()
			return time.Duration(rng.Int63n(int64(max) + 1))
		}
	}
	return out
}

// ReloadEvent records one reload cycle for /statusz.
type ReloadEvent struct {
	At         time.Time `json:"at"`
	OK         bool      `json:"ok"`
	Forced     bool      `json:"forced"`
	Attempts   int       `json:"attempts"`
	DurationMS int64     `json:"duration_ms"`
	// Mode is ModeFull or ModeDelta: which build path the cycle ran (for
	// successful delta cycles, what the builder actually did — a
	// churn-threshold fallback reports ModeFull).
	Mode  string `json:"mode,omitempty"`
	Error string `json:"error,omitempty"`
}

// endpointStats holds one endpoint's registry instruments, hoisted out
// of the per-request path so the hot path is a bare atomic add, never a
// label-map probe. The counters are the single source of truth: /statusz
// reads the same children /metrics scrapes.
type endpointStats struct {
	requests *telemetry.Counter   // accepted or shed, every arrival
	errors   *telemetry.Counter   // responses with status >= 500
	shed     *telemetry.Counter   // rejected by the concurrency limiter
	latency  *telemetry.Histogram // handling latency, shed excluded
}

// serveMetrics holds the server-level instruments on the registry.
type serveMetrics struct {
	requests *telemetry.CounterVec
	errors   *telemetry.CounterVec
	shed     *telemetry.CounterVec
	latency  *telemetry.HistogramVec

	reloadCycles   *telemetry.Counter
	reloadFailures *telemetry.Counter
	reloadDuration *telemetry.Histogram
	reloadByMode   *telemetry.CounterVec
	consecFails    *telemetry.Gauge
	breakerGauge   *telemetry.Gauge

	dirtyShards *telemetry.Gauge
	changedKeys *telemetry.CounterVec
	lpmPatchOps *telemetry.Counter
}

// Server is the resilient lease-lookup HTTP service. Create one with
// New, prime it with Reload, then serve Handler.
type Server struct {
	cfg     Config
	started time.Time
	snap    atomic.Pointer[Snapshot]
	sem     chan struct{}
	mux     *http.ServeMux
	stats   map[string]*endpointStats
	m       serveMetrics

	reloadMu sync.Mutex // serialises reload cycles; TryLock guards re-entry

	mu          sync.Mutex // guards the reload bookkeeping below
	history     []ReloadEvent
	reloads     int // completed reload cycles, success or failure
	consecFails int
	breakerOpen bool
}

// New builds a Server around a snapshot builder. No snapshot is loaded
// yet: either call Reload before serving (a daemon that refuses to start
// empty) or serve immediately and let /readyz report unready until the
// first reload lands.
func New(cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		cfg:     c,
		started: c.now(),
		sem:     make(chan struct{}, c.MaxInFlight),
		mux:     http.NewServeMux(),
		stats:   make(map[string]*endpointStats),
	}
	s.initMetrics()
	s.route("lookup", "/lookup", true, s.handleLookup)
	s.route("lookup_batch", "/lookup/batch", true, s.handleLookupBatch)
	s.route("table1", "/table1", true, s.handleTable1)
	s.route("loadreport", "/loadreport", true, s.handleLoadReport)
	s.route("healthz", "/healthz", false, s.handleHealthz)
	s.route("readyz", "/readyz", false, s.handleReadyz)
	s.route("statusz", "/statusz", false, s.handleStatusz)
	// /metrics skips the limiter for the same reason the health probes
	// do: a scrape during overload is exactly when the numbers matter.
	s.route("metrics", "/metrics", false, c.Metrics.Handler().ServeHTTP)
	if c.Traces != nil {
		// Like /metrics: unlimited, so traces of an overload incident
		// stay inspectable during the incident.
		s.route("debug_traces", "/debug/traces", false, c.Traces.Collector.ServeHTTP)
	}
	return s
}

// initMetrics registers the server's instruments on the configured
// registry. Snapshot-shape gauges use SetGaugeFunc so a registry shared
// across server generations always reads the newest server's state.
func (s *Server) initMetrics() {
	r := s.cfg.Metrics
	s.m = serveMetrics{
		requests: r.CounterVec("http_requests_total",
			"HTTP requests received (accepted or shed), by endpoint.", "endpoint"),
		errors: r.CounterVec("http_request_errors_total",
			"HTTP responses with status >= 500, by endpoint.", "endpoint"),
		shed: r.CounterVec("http_requests_shed_total",
			"Requests rejected by the concurrency limiter with 429, by endpoint.", "endpoint"),
		latency: r.HistogramVec("http_request_duration_seconds",
			"Request handling latency in seconds (shed requests excluded), by endpoint.",
			nil, "endpoint"),
		reloadCycles: r.Counter("reload_cycles_total",
			"Completed snapshot reload cycles, success or failure."),
		reloadFailures: r.Counter("reload_failures_total",
			"Snapshot reload cycles that failed every attempt."),
		reloadDuration: r.Histogram("reload_duration_seconds",
			"Snapshot reload cycle duration in seconds.", nil),
		reloadByMode: r.CounterVec("reload_cycles_by_mode_total",
			"Completed snapshot reload cycles by build path (full|delta).", "mode"),
		consecFails: r.Gauge("reload_consecutive_failures",
			"Consecutive failed reload cycles; resets on success."),
		breakerGauge: r.Gauge("reload_breaker_open",
			"Whether the reload circuit breaker is open (0/1)."),
		dirtyShards: r.Gauge("reload_dirty_shards",
			"Allocation-forest root segments re-classified by the last delta reload."),
		changedKeys: r.CounterVec("reload_changed_keys_total",
			"Changed keys seen by delta reload dataset diffs, by source.", "source"),
		lpmPatchOps: r.Counter("lpm_patch_ops_total",
			"LPM index patch operations (value deletions plus dirty inserts) across delta reloads."),
	}
	r.SetGaugeFunc("snapshot_age_seconds",
		"Age of the served snapshot in seconds; 0 before the first load.",
		func() float64 {
			if snap := s.snap.Load(); snap != nil {
				return s.cfg.now().Sub(snap.BuiltAt).Seconds()
			}
			return 0
		})
	r.SetGaugeFunc("snapshot_built_timestamp_seconds",
		"Unix time the served snapshot was built; 0 before the first load.",
		func() float64 {
			if snap := s.snap.Load(); snap != nil {
				return float64(snap.BuiltAt.UnixNano()) / 1e9
			}
			return 0
		})
	r.SetGaugeFunc("snapshot_inferences",
		"Classified leaf prefixes in the served snapshot.",
		func() float64 {
			if snap := s.snap.Load(); snap != nil {
				return float64(snap.NumInferences())
			}
			return 0
		})
	r.SetGaugeFunc("http_in_flight_requests",
		"Limiter slots currently held by in-flight requests.",
		func() float64 { return float64(len(s.sem)) })
	r.RegisterRuntimeMetrics()
}

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the currently served snapshot, nil before the first
// successful reload. The pointer is only guaranteed readable while it
// stays the serving snapshot; request paths that may outlive a swap use
// acquireSnap instead.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// acquireSnap returns the serving snapshot with a read reference held
// (nil before the first reload). The loop covers the one race a bare
// Load has against a view-backed snapshot: between Load and Acquire the
// swap path may retire the snapshot and the last in-flight request may
// release its mapping — Acquire then fails and the retry observes the
// replacement. Heap snapshots acquire unconditionally, so the loop
// runs once. Callers must Release exactly once.
func (s *Server) acquireSnap() *Snapshot {
	for {
		snap := s.snap.Load()
		if snap == nil || snap.Acquire() {
			return snap
		}
	}
}

// Route registers an additional endpoint behind the same hardening
// middleware (arrival counting, optional load shedding + request
// timeout, latency observation, panic-to-500) and per-endpoint metric
// children as the built-in routes. The daemon uses it to mount the
// snapshot publish endpoint without the serving layer importing the
// snapshot store. Must be called before the handler serves traffic;
// name must be unique among the server's endpoints.
func (s *Server) Route(name, pattern string, limited bool, h http.HandlerFunc) {
	if _, dup := s.stats[name]; dup {
		panic(fmt.Sprintf("serve: duplicate route name %q", name))
	}
	s.route(name, pattern, limited, h)
}

// route registers one endpoint behind the hardening middleware.
// Health and status endpoints skip the concurrency limiter (limited =
// false): they must answer precisely when the service is overloaded,
// and they never touch more than in-memory counters.
func (s *Server) route(name, pattern string, limited bool, h http.HandlerFunc) {
	st := &endpointStats{
		requests: s.m.requests.With(name),
		errors:   s.m.errors.With(name),
		shed:     s.m.shed.With(name),
		latency:  s.m.latency.With(name),
	}
	s.stats[name] = st
	inner := http.Handler(h)
	if limited {
		inner = http.TimeoutHandler(inner, s.cfg.RequestTimeout, "request timed out\n")
	}
	s.mux.Handle(pattern, s.harden(name, st, limited, inner))
}

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.status, r.wrote = http.StatusOK, true
	}
	return r.ResponseWriter.Write(p)
}

// harden wraps a handler with the request-hardening middleware: arrival
// counting, the trace-or-not decision, load shedding, latency
// observation, panic-to-500 recovery, and 5xx accounting.
func (s *Server) harden(name string, st *endpointStats, limited bool, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st.requests.Inc()
		// The trace decision happens before shedding so the tail
		// keep-rules capture shed requests too — an overload incident is
		// exactly when traces matter. An unsampled request pays one
		// header lookup and one sampler draw here and nothing after
		// (nil-span no-op path; see BenchmarkTraceDecisionUnsampled).
		var tr *telemetry.Trace
		if tp := s.cfg.Traces; tp != nil {
			sc, ok := telemetry.ParseTraceparent(r.Header.Get(telemetry.TraceparentHeader))
			if (ok && sc.Sampled) || tp.Sampler.Sample() {
				tr = telemetry.NewTraceWithIDs(name, tp.IDs)
				if ok {
					// Continue the caller's trace: same 128-bit ID, the
					// caller's span as our root's parent.
					tr.AdoptRemoteParent(sc)
				}
				r = r.WithContext(tr.Context(r.Context()))
				w.Header().Set("X-Trace-Id", tr.ID().String())
			}
		}
		rec := &statusRecorder{ResponseWriter: w}
		if tr != nil {
			// Registered before the accounting defer so it runs after
			// panic recovery has settled the response status.
			defer func() {
				status := rec.status
				if !rec.wrote {
					status = http.StatusOK
				}
				tr.End()
				s.cfg.Traces.Collector.Collect(name, status, tr)
			}()
		}
		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				st.shed.Inc()
				rec.Header().Set("Retry-After",
					strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
				http.Error(rec, "overloaded, retry later", http.StatusTooManyRequests)
				return
			}
		}
		start := s.cfg.now()
		defer func() {
			st.latency.Observe(s.cfg.now().Sub(start).Seconds())
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				st.errors.Inc()
				s.cfg.Logger.Error("panic serving request", "path", r.URL.Path, "panic", v)
				if !rec.wrote {
					http.Error(rec, "internal error", http.StatusInternalServerError)
				}
				return
			}
			if rec.wrote && rec.status >= 500 {
				st.errors.Inc()
			}
		}()
		h.ServeHTTP(rec, r)
	})
}

// build runs the configured builder with panic containment: a snapshot
// build that panics (a rotten feed tripping a parser bug) is a failed
// reload, not a dead daemon.
func (s *Server) build(ctx context.Context, builder func(context.Context) (*Snapshot, error)) (snap *Snapshot, err error) {
	defer func() {
		if v := recover(); v != nil {
			snap, err = nil, fmt.Errorf("serve: snapshot build panicked: %v", v)
		}
	}()
	return builder(ctx)
}

// Reload runs one reload cycle: build the next snapshot off the request
// path, retrying with exponential backoff, and atomically swap it in on
// success. On failure the previous snapshot keeps serving untouched and
// the failure is recorded for /readyz and /statusz; after BreakerAfter
// consecutive failed cycles the breaker opens and unforced reloads are
// refused with ErrBreakerOpen until a forced reload succeeds. Only one
// cycle runs at a time; a concurrent call returns ErrReloadInFlight.
func (s *Server) Reload(ctx context.Context, forced bool) error {
	if !s.reloadMu.TryLock() {
		return ErrReloadInFlight
	}
	defer s.reloadMu.Unlock()

	s.mu.Lock()
	open := s.breakerOpen
	s.mu.Unlock()
	if open && !forced {
		return ErrBreakerOpen
	}

	// Unforced reloads take the incremental path once a snapshot exists;
	// forced reloads (the operator escape hatch) always rebuild from
	// scratch.
	mode := ModeFull
	builder := s.cfg.Build
	if !forced && s.cfg.BuildDelta != nil {
		if prev := s.snap.Load(); prev != nil {
			mode = ModeDelta
			builder = func(ctx context.Context) (*Snapshot, error) {
				return s.cfg.BuildDelta(ctx, prev)
			}
		}
	}
	// Trace the cycle. When the caller's context already carries a span
	// (leaseinfer's -trace flag) the cycle nests under it; otherwise,
	// with a trace plane configured, the cycle gets an owned trace that
	// is always collected — the publisher half of every generation
	// lifecycle — and whose identity becomes the snapshot's provenance.
	var owned *telemetry.Trace
	var span *telemetry.Span
	if telemetry.SpanFrom(ctx) == nil && s.cfg.Traces != nil {
		owned = telemetry.NewTraceWithIDs("reload", s.cfg.Traces.IDs)
		span = owned.Root()
		ctx = owned.Context(ctx)
	} else {
		ctx, span = telemetry.StartSpan(ctx, "reload")
	}
	span.SetAttr("mode", mode)
	reloadOK := false
	defer func() {
		span.End()
		if owned != nil {
			status := http.StatusInternalServerError
			if reloadOK {
				status = http.StatusOK
			}
			s.cfg.Traces.Collector.CollectHot(telemetry.KindReload, "reload", status, owned)
		}
	}()

	start := s.cfg.now()
	var err error
	attempts := 0
	for attempt := 0; attempt < s.cfg.ReloadAttempts; attempt++ {
		if attempt > 0 {
			// Full-jittered exponential backoff, stretched to any
			// Retry-After hint the previous attempt's error carried
			// (e.g. a 429/503 from a replica's publisher): jitter
			// de-synchronizes the fleet, the hint keeps us from
			// returning before the publisher said it would be ready.
			d := s.cfg.jitter(s.cfg.ReloadBackoff << (attempt - 1))
			var hinted interface{ RetryAfter() time.Duration }
			if errors.As(err, &hinted) {
				if hint := hinted.RetryAfter(); d < hint {
					d = hint
				}
			}
			if serr := s.cfg.sleep(ctx, d); serr != nil {
				err = serr
				break
			}
		}
		attempts++
		var snap *Snapshot
		snap, err = s.build(ctx, builder)
		if err == nil && snap == nil {
			err = errors.New("serve: builder returned nil snapshot")
		}
		if err == nil {
			if snap.BuiltAt.IsZero() {
				snap.BuiltAt = s.cfg.now()
			}
			// A delta builder may itself have fallen back to a full
			// rebuild (churn threshold); report what actually ran.
			if snap.Delta != nil && snap.Delta.Mode != "" {
				mode = snap.Delta.Mode
				span.SetAttr("mode", mode)
			}
			// Stamp the snapshot's provenance — the traceparent of this
			// reload span — before the swap publishes the pointer, so
			// readers never observe a mutation. Snapshots that arrived
			// with provenance (a replica decode) keep the original
			// publisher's.
			if snap.Provenance == "" {
				snap.Provenance = span.Traceparent()
			}
			if snap.Generation != 0 {
				span.SetAttr("generation", strconv.FormatUint(snap.Generation, 10))
			}
			swapCtx, swapSpan := telemetry.StartSpan(ctx, "swap")
			old := s.snap.Swap(snap)
			// Roll the load's per-source accounting onto the ingest_*
			// counter families so data loss is scrapeable per reload.
			diag.ObserveReports(s.cfg.Metrics, snap.Reports)
			s.notifySwap(swapCtx, snap)
			swapSpan.End()
			// Drop the retired snapshot's serving reference. For a
			// view-backed (mmap) snapshot this is the drain point: the
			// mapping stays valid until the last in-flight request that
			// acquired it releases, and only then is the file unmapped.
			if old != nil && old != snap {
				old.Release()
			}
			s.observeDelta(snap)
			reloadOK = true
			s.finishReload(ReloadEvent{
				At: start, OK: true, Forced: forced, Attempts: attempts,
				DurationMS: s.cfg.now().Sub(start).Milliseconds(),
				Mode:       mode,
			})
			s.cfg.Logger.Info("reload ok",
				"inferences", snap.NumInferences(), "attempt", attempts,
				"forced", forced, "mode", mode)
			return nil
		}
		s.cfg.Logger.Warn("reload attempt failed", "attempt", attempts, "mode", mode, "err", err)
		if ctx.Err() != nil {
			break
		}
	}
	s.finishReload(ReloadEvent{
		At: start, OK: false, Forced: forced, Attempts: attempts,
		DurationMS: s.cfg.now().Sub(start).Milliseconds(),
		Mode:       mode,
		Error:      err.Error(),
	})
	return err
}

// notifySwap runs the OnSwap observer with panic containment: the swap
// already happened, so an observer bug degrades to a logged error, never
// a failed reload or a dead daemon.
func (s *Server) notifySwap(ctx context.Context, snap *Snapshot) {
	if s.cfg.OnSwap == nil {
		return
	}
	defer func() {
		if v := recover(); v != nil {
			s.cfg.Logger.Error("snapshot swap observer panicked", "panic", v)
		}
	}()
	s.cfg.OnSwap(ctx, snap)
}

// observeDelta rolls a delta-built snapshot's patch statistics onto the
// delta metric families.
func (s *Server) observeDelta(snap *Snapshot) {
	d := snap.Delta
	if d == nil {
		return
	}
	s.m.dirtyShards.Set(float64(d.DirtyShards))
	for src, n := range d.ChangedKeys {
		if n > 0 {
			s.m.changedKeys.With(src).Add(uint64(n))
		}
	}
	if d.PatchOps > 0 {
		s.m.lpmPatchOps.Add(uint64(d.PatchOps))
	}
}

// finishReload records a completed cycle and drives the breaker.
func (s *Server) finishReload(ev ReloadEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reloads++
	s.m.reloadCycles.Inc()
	if ev.Mode != "" {
		s.m.reloadByMode.With(ev.Mode).Inc()
	}
	s.m.reloadDuration.Observe(float64(ev.DurationMS) / 1e3)
	if ev.OK {
		s.consecFails = 0
		s.breakerOpen = false
	} else {
		s.m.reloadFailures.Inc()
		s.consecFails++
		if s.consecFails >= s.cfg.BreakerAfter && !s.breakerOpen {
			s.breakerOpen = true
			s.cfg.Logger.Error("reload breaker opened", "consecutive_failures", s.consecFails)
		}
	}
	s.m.consecFails.Set(float64(s.consecFails))
	if s.breakerOpen {
		s.m.breakerGauge.Set(1)
	} else {
		s.m.breakerGauge.Set(0)
	}
	s.history = append(s.history, ev)
	if len(s.history) > historyCap {
		s.history = s.history[len(s.history)-historyCap:]
	}
}

// LastReload returns a copy of the most recent reload event, or nil
// before the first reload completes.
func (s *Server) LastReload() *ReloadEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.history) == 0 {
		return nil
	}
	ev := s.history[len(s.history)-1]
	return &ev
}

// ReloadLoop reloads on a timer until the context is cancelled. Timer
// reloads are unforced: once the breaker opens they are skipped until an
// operator forces a reload (SIGHUP in cmd/leased). No-op when
// ReloadEvery is zero.
func (s *Server) ReloadLoop(ctx context.Context) {
	if s.cfg.ReloadEvery <= 0 {
		return
	}
	t := time.NewTicker(s.cfg.ReloadEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			switch err := s.Reload(ctx, false); err {
			case nil, ErrReloadInFlight:
			case ErrBreakerOpen:
				s.cfg.Logger.Warn("timed reload skipped", "err", err)
			default:
			}
		}
	}
}

// GenerationHeader is the response header naming the snapshot
// generation that answered a data request. It is stamped from the same
// atomic snapshot-pointer read that produces the body, so clients (the
// chaos harness's byte-identity invariant) can group responses by
// generation without a second, racy status round trip.
const GenerationHeader = "X-Snapshot-Generation"

// setGenerationHeader stamps the answering snapshot's generation.
// Absent when the process never assigns generations (no snapshot store).
func setGenerationHeader(w http.ResponseWriter, snap *Snapshot) {
	if snap.Generation != 0 {
		w.Header().Set(GenerationHeader, strconv.FormatUint(snap.Generation, 10))
	}
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// lookupResponse is the /lookup JSON shape.
type lookupResponse struct {
	Query           string           `json:"query"`
	SnapshotBuiltAt time.Time        `json:"snapshot_built_at"`
	Found           bool             `json:"found"`
	Inference       *InferenceView   `json:"inference,omitempty"`
	Inferences      []*InferenceView `json:"inferences,omitempty"`
}

// handleLookup answers prefix, address, and ASN queries:
//
//	/lookup?prefix=198.51.100.0/24  exact leaf-prefix classification
//	/lookup?ip=198.51.100.7         longest-prefix-match classification
//	/lookup?asn=64500               every leaf originated by the ASN
func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	snap := s.acquireSnap()
	if snap == nil {
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	defer snap.Release()
	setGenerationHeader(w, snap)
	ctx := r.Context()
	_, decSpan := telemetry.StartSpan(ctx, "decode")
	q := r.URL.Query()
	resp := lookupResponse{SnapshotBuiltAt: snap.BuiltAt}
	var (
		lookup func()
		query  string
	)
	switch {
	case q.Get("prefix") != "":
		arg := q.Get("prefix")
		p, err := netutil.ParsePrefix(arg)
		if err != nil {
			decSpan.End()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		query = "prefix=" + arg
		lookup = func() {
			if inf := snap.LookupPrefix(p); inf != nil {
				resp.Found, resp.Inference = true, View(inf)
			}
		}
	case q.Get("ip") != "":
		arg := q.Get("ip")
		a, err := netutil.ParseAddr(arg)
		if err != nil {
			decSpan.End()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		query = "ip=" + arg
		lookup = func() {
			if inf := snap.LookupAddr(a); inf != nil {
				resp.Found, resp.Inference = true, View(inf)
			}
		}
	case q.Get("asn") != "":
		arg := q.Get("asn")
		asn, err := strconv.ParseUint(strings.TrimPrefix(arg, "AS"), 10, 32)
		if err != nil {
			decSpan.End()
			http.Error(w, "invalid asn: "+arg, http.StatusBadRequest)
			return
		}
		query = "asn=" + arg
		lookup = func() {
			for _, inf := range snap.LookupASN(uint32(asn)) {
				resp.Inferences = append(resp.Inferences, View(inf))
			}
			resp.Found = len(resp.Inferences) > 0
		}
	default:
		decSpan.End()
		http.Error(w, "missing query: one of prefix=, ip=, asn=", http.StatusBadRequest)
		return
	}
	decSpan.End()
	resp.Query = query
	_, lpmSpan := telemetry.StartSpan(ctx, "lookup")
	lookup()
	lpmSpan.End()
	_, renderSpan := telemetry.StartSpan(ctx, "render")
	writeJSON(w, http.StatusOK, resp)
	renderSpan.End()
}

// MaxBatchIPs caps one /lookup/batch request. At the LPM's per-address
// cost the cap keeps worst-case handling well under the request
// timeout while still letting clients sweep whole /18s per call.
const MaxBatchIPs = 10000

// batchLookupRequest is the /lookup/batch request body.
type batchLookupRequest struct {
	IPs []string `json:"ips"`
}

// batchLookupItem is one per-address result. Exactly one of Error or
// (Found, Inference) is meaningful: a malformed address reports its
// parse error in place instead of failing the whole batch.
type batchLookupItem struct {
	IP        string         `json:"ip"`
	Found     bool           `json:"found"`
	Inference *InferenceView `json:"inference,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// batchLookupResponse is the /lookup/batch response body.
type batchLookupResponse struct {
	SnapshotBuiltAt time.Time         `json:"snapshot_built_at"`
	Results         []batchLookupItem `json:"results"`
}

// handleLookupBatch answers POST /lookup/batch: a JSON array of
// addresses classified in one round trip against one snapshot. Every
// address in the batch reads the same snapshot pointer, so a reload
// landing mid-request can never split the batch across generations.
func (s *Server) handleLookupBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	snap := s.acquireSnap()
	if snap == nil {
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	defer snap.Release()
	setGenerationHeader(w, snap)
	ctx := r.Context()
	_, decSpan := telemetry.StartSpan(ctx, "decode")
	var req batchLookupRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		decSpan.End()
		http.Error(w, "invalid body: "+err.Error(), http.StatusBadRequest)
		return
	}
	decSpan.AddRecords(int64(len(req.IPs)))
	decSpan.End()
	if len(req.IPs) == 0 {
		http.Error(w, "empty batch: body must carry {\"ips\": [...]}", http.StatusBadRequest)
		return
	}
	if len(req.IPs) > MaxBatchIPs {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.IPs), MaxBatchIPs),
			http.StatusRequestEntityTooLarge)
		return
	}
	resp := batchLookupResponse{
		SnapshotBuiltAt: snap.BuiltAt,
		Results:         make([]batchLookupItem, len(req.IPs)),
	}
	_, lpmSpan := telemetry.StartSpan(ctx, "lookup")
	for i, raw := range req.IPs {
		item := &resp.Results[i]
		item.IP = raw
		a, err := netutil.ParseAddr(raw)
		if err != nil {
			item.Error = err.Error()
			continue
		}
		if inf := snap.LookupAddr(a); inf != nil {
			item.Found, item.Inference = true, View(inf)
		}
	}
	lpmSpan.AddRecords(int64(len(req.IPs)))
	lpmSpan.End()
	_, renderSpan := telemetry.StartSpan(ctx, "render")
	writeJSON(w, http.StatusOK, resp)
	renderSpan.End()
}

// handleTable1 serves the snapshot's pre-rendered Table-1 summary.
func (s *Server) handleTable1(w http.ResponseWriter, r *http.Request) {
	snap := s.acquireSnap()
	if snap == nil {
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	defer snap.Release()
	setGenerationHeader(w, snap)
	_, renderSpan := telemetry.StartSpan(r.Context(), "render")
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	w.Write(snap.Table1()) //nolint:errcheck
	renderSpan.AddBytes(int64(len(snap.Table1())))
	renderSpan.End()
}

// loadReportResponse is the /loadreport JSON shape.
type loadReportResponse struct {
	BuiltAt         time.Time        `json:"built_at"`
	Dir             string           `json:"dir,omitempty"`
	Strict          bool             `json:"strict"`
	Reports         []LoadReportView `json:"reports"`
	SkippedAnalyses []string         `json:"skipped_analyses,omitempty"`
}

// handleLoadReport serves the snapshot's per-source load accounting.
func (s *Server) handleLoadReport(w http.ResponseWriter, r *http.Request) {
	snap := s.acquireSnap()
	if snap == nil {
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	defer snap.Release()
	setGenerationHeader(w, snap)
	writeJSON(w, http.StatusOK, loadReportResponse{
		BuiltAt:         snap.BuiltAt,
		Dir:             snap.Dir,
		Strict:          snap.Strict,
		Reports:         snap.ReportViews(),
		SkippedAnalyses: snap.SkippedAnalyses,
	})
}

// handleHealthz is liveness: the process is up and the handler chain
// works. It reports ok even while degraded — liveness restarts must not
// be triggered by a rotten upstream feed — but carries the degradation
// flag so probes can log it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fails := s.consecFails
	open := s.breakerOpen
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":               "ok",
		"uptime_seconds":       s.cfg.now().Sub(s.started).Seconds(),
		"have_snapshot":        s.snap.Load() != nil,
		"degraded":             fails > 0 || open,
		"consecutive_failures": fails,
		"reload_breaker_open":  open,
	})
}

// handleReadyz is readiness: 200 only with a snapshot loaded and the
// reload pipeline healthy. A daemon serving a stale snapshot after
// failed reloads answers 503 "degraded" — still serving, but signalling
// that traffic should prefer healthier replicas — and one with no
// snapshot at all answers 503 "unready".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	s.mu.Lock()
	fails := s.consecFails
	open := s.breakerOpen
	s.mu.Unlock()
	body := map[string]any{
		"consecutive_failures": fails,
		"reload_breaker_open":  open,
	}
	if s.cfg.Replication != nil {
		if rs := s.cfg.Replication(); rs != nil {
			body["replication_generation_lag"] = rs.Lag
			body["replication_serving_generation"] = rs.ServingGeneration
		}
	}
	switch {
	case snap == nil:
		body["status"] = "unready"
		body["reason"] = "no snapshot loaded"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case fails > 0 || open:
		body["status"] = "degraded"
		body["reason"] = fmt.Sprintf("serving stale snapshot built %s; %d consecutive reload failures",
			snap.BuiltAt.Format(time.RFC3339), fails)
		body["snapshot_age_seconds"] = s.cfg.now().Sub(snap.BuiltAt).Seconds()
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		body["status"] = "ready"
		body["snapshot_age_seconds"] = s.cfg.now().Sub(snap.BuiltAt).Seconds()
		writeJSON(w, http.StatusOK, body)
	}
}

// ReplicationStatus is a replica daemon's view of its snapshot source,
// reported through the Config.Replication hook.
type ReplicationStatus struct {
	// Source is the publisher endpoint or store directory snapshots come
	// from.
	Source string `json:"source"`
	// ServingGeneration is the snapshot generation currently serving.
	ServingGeneration uint64 `json:"serving_generation"`
	// PublisherGeneration is the newest generation the publisher
	// reported; 0 until the first successful probe or fetch.
	PublisherGeneration uint64 `json:"publisher_generation"`
	// Lag is PublisherGeneration - ServingGeneration, clamped at 0: how
	// many generations behind the publisher this replica serves.
	Lag uint64 `json:"generation_lag"`
	// LastContact is when the publisher last answered a probe or fetch.
	LastContact time.Time `json:"last_contact,omitempty"`
	// LastError is the most recent fetch/probe failure, cleared by the
	// next success.
	LastError string `json:"last_error,omitempty"`
}

// Degraded reports the reload pipeline's failure state: consecutive
// failed reload cycles and whether the reload breaker is open. The
// replica poll loop reads it to decide when a recovered publisher
// warrants a forced (breaker-bypassing) reload.
func (s *Server) Degraded() (consecutiveFailures int, breakerOpen bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.consecFails, s.breakerOpen
}

// statuszResponse is the /statusz JSON shape.
type statuszResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Snapshot      *statuszSnapshot         `json:"snapshot,omitempty"`
	Reload        statuszReload            `json:"reload"`
	Replication   *ReplicationStatus       `json:"replication,omitempty"`
	Endpoints     map[string]statuszCounts `json:"endpoints"`
}

type statuszSnapshot struct {
	// Generation and BuiltAt are read from the same atomic
	// snapshot-pointer load, so they can never disagree about which
	// snapshot is serving (the race DESIGN.md §12 used to document).
	Generation uint64    `json:"generation"`
	BuiltAt    time.Time `json:"built_at"`
	// Provenance is the traceparent of the reload that built the
	// serving snapshot — the join key into /debug/traces.
	Provenance      string   `json:"provenance,omitempty"`
	AgeSeconds      float64  `json:"age_seconds"`
	Dir             string   `json:"dir,omitempty"`
	Strict          bool     `json:"strict"`
	Inferences      int      `json:"inferences"`
	Leased          int      `json:"leased"`
	RoutedPrefixes  int      `json:"routed_prefixes"`
	LeasedShare     float64  `json:"leased_share_of_bgp"`
	SkippedAnalyses []string `json:"skipped_analyses,omitempty"`
	// LoadMode is how the serving snapshot's indexes were materialized:
	// built in-process, heap-decoded from snapshot bytes, or views over
	// a memory-mapped snapshot file.
	LoadMode string `json:"load_mode,omitempty"`
}

type statuszReload struct {
	Cycles              int           `json:"cycles"`
	ConsecutiveFailures int           `json:"consecutive_failures"`
	BreakerOpen         bool          `json:"breaker_open"`
	History             []ReloadEvent `json:"history"`
}

type statuszCounts struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`
}

// handleStatusz serves the self-observation page: snapshot age and
// shape, reload history and breaker state, per-endpoint counters.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.now()
	resp := statuszResponse{
		UptimeSeconds: now.Sub(s.started).Seconds(),
		Endpoints:     make(map[string]statuszCounts, len(s.stats)),
	}
	if snap := s.acquireSnap(); snap != nil {
		resp.Snapshot = &statuszSnapshot{
			Generation:      snap.Generation,
			BuiltAt:         snap.BuiltAt,
			Provenance:      snap.Provenance,
			AgeSeconds:      now.Sub(snap.BuiltAt).Seconds(),
			Dir:             snap.Dir,
			Strict:          snap.Strict,
			Inferences:      snap.NumInferences(),
			Leased:          snap.Result.TotalLeased(),
			RoutedPrefixes:  snap.Result.TotalBGPPrefixes,
			LeasedShare:     snap.Result.LeasedShareOfBGP(),
			SkippedAnalyses: snap.SkippedAnalyses,
			LoadMode:        snap.LoadMode(),
		}
		snap.Release()
	}
	if s.cfg.Replication != nil {
		resp.Replication = s.cfg.Replication()
	}
	s.mu.Lock()
	resp.Reload = statuszReload{
		Cycles:              s.reloads,
		ConsecutiveFailures: s.consecFails,
		BreakerOpen:         s.breakerOpen,
		History:             append([]ReloadEvent(nil), s.history...),
	}
	s.mu.Unlock()
	names := make([]string, 0, len(s.stats))
	for name := range s.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// Read the same registry children /metrics scrapes, so the two
		// views can never disagree.
		st := s.stats[name]
		resp.Endpoints[name] = statuszCounts{
			Requests: int64(st.requests.Value()),
			Errors:   int64(st.errors.Value()),
			Shed:     int64(st.shed.Value()),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
