package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipleasing/internal/netutil"
)

// Errors returned by Reload.
var (
	// ErrBreakerOpen means the reload circuit breaker has opened after
	// too many consecutive failed reload cycles; unforced reloads are
	// refused until a forced reload succeeds.
	ErrBreakerOpen = errors.New("serve: reload circuit breaker open")
	// ErrReloadInFlight means another reload cycle is already running.
	ErrReloadInFlight = errors.New("serve: reload already in flight")
	// ErrNoSnapshot means no snapshot has ever been loaded.
	ErrNoSnapshot = errors.New("serve: no snapshot loaded")
)

// Defaults for the zero Config fields.
const (
	DefaultMaxInFlight    = 128
	DefaultRequestTimeout = 5 * time.Second
	DefaultRetryAfter     = 1 * time.Second
	DefaultReloadAttempts = 3
	DefaultReloadBackoff  = 100 * time.Millisecond
	DefaultBreakerAfter   = 3
	// historyCap bounds the reload history kept for /statusz.
	historyCap = 32
)

// Config wires a Server. Build is the only required field.
type Config struct {
	// Build constructs the next snapshot: load the dataset, run the
	// inference, index it. It runs outside the request path (the caller's
	// reload goroutine); a panic inside it is recovered and treated as a
	// build error, never a process kill.
	Build func(ctx context.Context) (*Snapshot, error)

	// ReloadEvery is the timer-driven reload period for ReloadLoop.
	// Zero disables timed reloads (signal-driven only).
	ReloadEvery time.Duration
	// ReloadAttempts is how many times one reload cycle tries Build
	// before giving up, with exponential backoff between attempts.
	ReloadAttempts int
	// ReloadBackoff is the backoff before the second attempt; it doubles
	// per subsequent attempt.
	ReloadBackoff time.Duration
	// BreakerAfter opens the reload circuit breaker after this many
	// consecutive failed reload cycles. While open, unforced (timer)
	// reloads are refused without touching the dataset; a forced reload
	// (SIGHUP) still runs and closes the breaker on success.
	BreakerAfter int

	// MaxInFlight caps concurrently served requests; excess load is shed
	// with 429 + Retry-After instead of queueing unboundedly.
	MaxInFlight int
	// RequestTimeout bounds one request's handling time; requests over
	// it are answered 503.
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to shed responses.
	RetryAfter time.Duration

	// Log receives reload and lifecycle lines; nil discards them.
	Log *log.Logger

	// Test hooks: clock and interruptible sleep. Nil means real time.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ReloadAttempts <= 0 {
		out.ReloadAttempts = DefaultReloadAttempts
	}
	if out.ReloadBackoff <= 0 {
		out.ReloadBackoff = DefaultReloadBackoff
	}
	if out.BreakerAfter <= 0 {
		out.BreakerAfter = DefaultBreakerAfter
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = DefaultMaxInFlight
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = DefaultRequestTimeout
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = DefaultRetryAfter
	}
	if out.Log == nil {
		out.Log = log.New(discard{}, "", 0)
	}
	if out.now == nil {
		out.now = time.Now
	}
	if out.sleep == nil {
		out.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return out
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// ReloadEvent records one reload cycle for /statusz.
type ReloadEvent struct {
	At         time.Time `json:"at"`
	OK         bool      `json:"ok"`
	Forced     bool      `json:"forced"`
	Attempts   int       `json:"attempts"`
	DurationMS int64     `json:"duration_ms"`
	Error      string    `json:"error,omitempty"`
}

// endpointStats counts one endpoint's traffic with lock-free atomics so
// the hot path never contends with /statusz readers.
type endpointStats struct {
	requests atomic.Int64 // accepted or shed, every arrival
	errors   atomic.Int64 // responses with status >= 500
	shed     atomic.Int64 // rejected by the concurrency limiter
}

// Server is the resilient lease-lookup HTTP service. Create one with
// New, prime it with Reload, then serve Handler.
type Server struct {
	cfg     Config
	started time.Time
	snap    atomic.Pointer[Snapshot]
	sem     chan struct{}
	mux     *http.ServeMux
	stats   map[string]*endpointStats

	reloadMu sync.Mutex // serialises reload cycles; TryLock guards re-entry

	mu          sync.Mutex // guards the reload bookkeeping below
	history     []ReloadEvent
	reloads     int // completed reload cycles, success or failure
	consecFails int
	breakerOpen bool
}

// New builds a Server around a snapshot builder. No snapshot is loaded
// yet: either call Reload before serving (a daemon that refuses to start
// empty) or serve immediately and let /readyz report unready until the
// first reload lands.
func New(cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		cfg:     c,
		started: c.now(),
		sem:     make(chan struct{}, c.MaxInFlight),
		mux:     http.NewServeMux(),
		stats:   make(map[string]*endpointStats),
	}
	s.route("lookup", "/lookup", true, s.handleLookup)
	s.route("table1", "/table1", true, s.handleTable1)
	s.route("loadreport", "/loadreport", true, s.handleLoadReport)
	s.route("healthz", "/healthz", false, s.handleHealthz)
	s.route("readyz", "/readyz", false, s.handleReadyz)
	s.route("statusz", "/statusz", false, s.handleStatusz)
	return s
}

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the currently served snapshot, nil before the first
// successful reload.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// route registers one endpoint behind the hardening middleware.
// Health and status endpoints skip the concurrency limiter (limited =
// false): they must answer precisely when the service is overloaded,
// and they never touch more than in-memory counters.
func (s *Server) route(name, pattern string, limited bool, h http.HandlerFunc) {
	st := &endpointStats{}
	s.stats[name] = st
	inner := http.Handler(h)
	if limited {
		inner = http.TimeoutHandler(inner, s.cfg.RequestTimeout, "request timed out\n")
	}
	s.mux.Handle(pattern, s.harden(st, limited, inner))
}

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.status, r.wrote = http.StatusOK, true
	}
	return r.ResponseWriter.Write(p)
}

// harden wraps a handler with the request-hardening middleware: arrival
// counting, load shedding, panic-to-500 recovery, and 5xx accounting.
func (s *Server) harden(st *endpointStats, limited bool, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st.requests.Add(1)
		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				st.shed.Add(1)
				w.Header().Set("Retry-After",
					strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
				http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
				return
			}
		}
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				st.errors.Add(1)
				s.cfg.Log.Printf("panic serving %s: %v", r.URL.Path, v)
				if !rec.wrote {
					http.Error(rec, "internal error", http.StatusInternalServerError)
				}
				return
			}
			if rec.wrote && rec.status >= 500 {
				st.errors.Add(1)
			}
		}()
		h.ServeHTTP(rec, r)
	})
}

// build runs the configured builder with panic containment: a snapshot
// build that panics (a rotten feed tripping a parser bug) is a failed
// reload, not a dead daemon.
func (s *Server) build(ctx context.Context) (snap *Snapshot, err error) {
	defer func() {
		if v := recover(); v != nil {
			snap, err = nil, fmt.Errorf("serve: snapshot build panicked: %v", v)
		}
	}()
	return s.cfg.Build(ctx)
}

// Reload runs one reload cycle: build the next snapshot off the request
// path, retrying with exponential backoff, and atomically swap it in on
// success. On failure the previous snapshot keeps serving untouched and
// the failure is recorded for /readyz and /statusz; after BreakerAfter
// consecutive failed cycles the breaker opens and unforced reloads are
// refused with ErrBreakerOpen until a forced reload succeeds. Only one
// cycle runs at a time; a concurrent call returns ErrReloadInFlight.
func (s *Server) Reload(ctx context.Context, forced bool) error {
	if !s.reloadMu.TryLock() {
		return ErrReloadInFlight
	}
	defer s.reloadMu.Unlock()

	s.mu.Lock()
	open := s.breakerOpen
	s.mu.Unlock()
	if open && !forced {
		return ErrBreakerOpen
	}

	start := s.cfg.now()
	var err error
	attempts := 0
	for attempt := 0; attempt < s.cfg.ReloadAttempts; attempt++ {
		if attempt > 0 {
			if serr := s.cfg.sleep(ctx, s.cfg.ReloadBackoff<<(attempt-1)); serr != nil {
				err = serr
				break
			}
		}
		attempts++
		var snap *Snapshot
		snap, err = s.build(ctx)
		if err == nil && snap == nil {
			err = errors.New("serve: builder returned nil snapshot")
		}
		if err == nil {
			if snap.BuiltAt.IsZero() {
				snap.BuiltAt = s.cfg.now()
			}
			s.snap.Store(snap)
			s.finishReload(ReloadEvent{
				At: start, OK: true, Forced: forced, Attempts: attempts,
				DurationMS: s.cfg.now().Sub(start).Milliseconds(),
			})
			s.cfg.Log.Printf("reload ok: snapshot of %d inferences (attempt %d)",
				snap.NumInferences(), attempts)
			return nil
		}
		s.cfg.Log.Printf("reload attempt %d failed: %v", attempts, err)
		if ctx.Err() != nil {
			break
		}
	}
	s.finishReload(ReloadEvent{
		At: start, OK: false, Forced: forced, Attempts: attempts,
		DurationMS: s.cfg.now().Sub(start).Milliseconds(),
		Error:      err.Error(),
	})
	return err
}

// finishReload records a completed cycle and drives the breaker.
func (s *Server) finishReload(ev ReloadEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reloads++
	if ev.OK {
		s.consecFails = 0
		s.breakerOpen = false
	} else {
		s.consecFails++
		if s.consecFails >= s.cfg.BreakerAfter && !s.breakerOpen {
			s.breakerOpen = true
			s.cfg.Log.Printf("reload breaker opened after %d consecutive failures", s.consecFails)
		}
	}
	s.history = append(s.history, ev)
	if len(s.history) > historyCap {
		s.history = s.history[len(s.history)-historyCap:]
	}
}

// ReloadLoop reloads on a timer until the context is cancelled. Timer
// reloads are unforced: once the breaker opens they are skipped until an
// operator forces a reload (SIGHUP in cmd/leased). No-op when
// ReloadEvery is zero.
func (s *Server) ReloadLoop(ctx context.Context) {
	if s.cfg.ReloadEvery <= 0 {
		return
	}
	t := time.NewTicker(s.cfg.ReloadEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			switch err := s.Reload(ctx, false); err {
			case nil, ErrReloadInFlight:
			case ErrBreakerOpen:
				s.cfg.Log.Printf("timed reload skipped: %v", err)
			default:
			}
		}
	}
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// lookupResponse is the /lookup JSON shape.
type lookupResponse struct {
	Query           string           `json:"query"`
	SnapshotBuiltAt time.Time        `json:"snapshot_built_at"`
	Found           bool             `json:"found"`
	Inference       *InferenceView   `json:"inference,omitempty"`
	Inferences      []*InferenceView `json:"inferences,omitempty"`
}

// handleLookup answers prefix, address, and ASN queries:
//
//	/lookup?prefix=198.51.100.0/24  exact leaf-prefix classification
//	/lookup?ip=198.51.100.7         longest-prefix-match classification
//	/lookup?asn=64500               every leaf originated by the ASN
func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	resp := lookupResponse{SnapshotBuiltAt: snap.BuiltAt}
	switch {
	case q.Get("prefix") != "":
		arg := q.Get("prefix")
		p, err := netutil.ParsePrefix(arg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp.Query = "prefix=" + arg
		if inf := snap.LookupPrefix(p); inf != nil {
			resp.Found, resp.Inference = true, View(inf)
		}
	case q.Get("ip") != "":
		arg := q.Get("ip")
		a, err := netutil.ParseAddr(arg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp.Query = "ip=" + arg
		if inf := snap.LookupAddr(a); inf != nil {
			resp.Found, resp.Inference = true, View(inf)
		}
	case q.Get("asn") != "":
		arg := q.Get("asn")
		asn, err := strconv.ParseUint(strings.TrimPrefix(arg, "AS"), 10, 32)
		if err != nil {
			http.Error(w, "invalid asn: "+arg, http.StatusBadRequest)
			return
		}
		resp.Query = "asn=" + arg
		for _, inf := range snap.LookupASN(uint32(asn)) {
			resp.Inferences = append(resp.Inferences, View(inf))
		}
		resp.Found = len(resp.Inferences) > 0
	default:
		http.Error(w, "missing query: one of prefix=, ip=, asn=", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTable1 serves the snapshot's pre-rendered Table-1 summary.
func (s *Server) handleTable1(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	w.Write(snap.Table1()) //nolint:errcheck
}

// loadReportResponse is the /loadreport JSON shape.
type loadReportResponse struct {
	BuiltAt         time.Time        `json:"built_at"`
	Dir             string           `json:"dir,omitempty"`
	Strict          bool             `json:"strict"`
	Reports         []LoadReportView `json:"reports"`
	SkippedAnalyses []string         `json:"skipped_analyses,omitempty"`
}

// handleLoadReport serves the snapshot's per-source load accounting.
func (s *Server) handleLoadReport(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, loadReportResponse{
		BuiltAt:         snap.BuiltAt,
		Dir:             snap.Dir,
		Strict:          snap.Strict,
		Reports:         snap.ReportViews(),
		SkippedAnalyses: snap.SkippedAnalyses,
	})
}

// handleHealthz is liveness: the process is up and the handler chain
// works. It reports ok even while degraded — liveness restarts must not
// be triggered by a rotten upstream feed — but carries the degradation
// flag so probes can log it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fails := s.consecFails
	open := s.breakerOpen
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":               "ok",
		"uptime_seconds":       s.cfg.now().Sub(s.started).Seconds(),
		"have_snapshot":        s.snap.Load() != nil,
		"degraded":             fails > 0 || open,
		"consecutive_failures": fails,
		"reload_breaker_open":  open,
	})
}

// handleReadyz is readiness: 200 only with a snapshot loaded and the
// reload pipeline healthy. A daemon serving a stale snapshot after
// failed reloads answers 503 "degraded" — still serving, but signalling
// that traffic should prefer healthier replicas — and one with no
// snapshot at all answers 503 "unready".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	s.mu.Lock()
	fails := s.consecFails
	open := s.breakerOpen
	s.mu.Unlock()
	body := map[string]any{
		"consecutive_failures": fails,
		"reload_breaker_open":  open,
	}
	switch {
	case snap == nil:
		body["status"] = "unready"
		body["reason"] = "no snapshot loaded"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case fails > 0 || open:
		body["status"] = "degraded"
		body["reason"] = fmt.Sprintf("serving stale snapshot built %s; %d consecutive reload failures",
			snap.BuiltAt.Format(time.RFC3339), fails)
		body["snapshot_age_seconds"] = s.cfg.now().Sub(snap.BuiltAt).Seconds()
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		body["status"] = "ready"
		body["snapshot_age_seconds"] = s.cfg.now().Sub(snap.BuiltAt).Seconds()
		writeJSON(w, http.StatusOK, body)
	}
}

// statuszResponse is the /statusz JSON shape.
type statuszResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Snapshot      *statuszSnapshot         `json:"snapshot,omitempty"`
	Reload        statuszReload            `json:"reload"`
	Endpoints     map[string]statuszCounts `json:"endpoints"`
}

type statuszSnapshot struct {
	BuiltAt         time.Time `json:"built_at"`
	AgeSeconds      float64   `json:"age_seconds"`
	Dir             string    `json:"dir,omitempty"`
	Strict          bool      `json:"strict"`
	Inferences      int       `json:"inferences"`
	Leased          int       `json:"leased"`
	RoutedPrefixes  int       `json:"routed_prefixes"`
	LeasedShare     float64   `json:"leased_share_of_bgp"`
	SkippedAnalyses []string  `json:"skipped_analyses,omitempty"`
}

type statuszReload struct {
	Cycles              int           `json:"cycles"`
	ConsecutiveFailures int           `json:"consecutive_failures"`
	BreakerOpen         bool          `json:"breaker_open"`
	History             []ReloadEvent `json:"history"`
}

type statuszCounts struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`
}

// handleStatusz serves the self-observation page: snapshot age and
// shape, reload history and breaker state, per-endpoint counters.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.now()
	resp := statuszResponse{
		UptimeSeconds: now.Sub(s.started).Seconds(),
		Endpoints:     make(map[string]statuszCounts, len(s.stats)),
	}
	if snap := s.snap.Load(); snap != nil {
		resp.Snapshot = &statuszSnapshot{
			BuiltAt:         snap.BuiltAt,
			AgeSeconds:      now.Sub(snap.BuiltAt).Seconds(),
			Dir:             snap.Dir,
			Strict:          snap.Strict,
			Inferences:      snap.NumInferences(),
			Leased:          snap.Result.TotalLeased(),
			RoutedPrefixes:  snap.Result.TotalBGPPrefixes,
			LeasedShare:     snap.Result.LeasedShareOfBGP(),
			SkippedAnalyses: snap.SkippedAnalyses,
		}
	}
	s.mu.Lock()
	resp.Reload = statuszReload{
		Cycles:              s.reloads,
		ConsecutiveFailures: s.consecFails,
		BreakerOpen:         s.breakerOpen,
		History:             append([]ReloadEvent(nil), s.history...),
	}
	s.mu.Unlock()
	names := make([]string, 0, len(s.stats))
	for name := range s.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := s.stats[name]
		resp.Endpoints[name] = statuszCounts{
			Requests: st.requests.Load(),
			Errors:   st.errors.Load(),
			Shed:     st.shed.Load(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
