package serve

import (
	"fmt"
	"sort"
)

// Backing is the lifecycle owner of memory a snapshot's indexes alias —
// in practice a memory-mapped snapshot file (snapstore.Mapped). The
// snapshot holds exactly one backing reference for as long as its own
// refcount is positive; other holders (the daemon's publish endpoint
// re-serving the mapped bytes) take their own references. When the last
// reference drops, Release unmaps — so the contract every view-backed
// reader relies on is: never touch a view without an acquired
// reference, and never fail to release one.
type Backing interface {
	// Acquire takes a reference. It returns false when the backing has
	// already been released for the last time — the memory is gone and
	// the caller must re-resolve whatever pointer led it here.
	Acquire() bool
	// Release drops a reference; the last drop frees the memory.
	Release()
}

// Snapshot load modes, as reported by Snapshot.LoadMode and /statusz.
const (
	// LoadModeBuilt marks a snapshot constructed in-process (full build,
	// delta patch) — heap-owned, no backing lifecycle.
	LoadModeBuilt = "built"
	// LoadModeHeap marks a snapshot decoded from snapshot bytes into
	// heap-owned indexes (the v2 path and every mmap fallback).
	LoadModeHeap = "heap"
	// LoadModeMmap marks a snapshot whose indexes are views over a
	// memory-mapped snapshot file.
	LoadModeMmap = "mmap"
)

// ASNViewEntry is one ASN's slot in the flat ASN index: a run of Cnt
// arena indexes starting at Off in the shared slab.
type ASNViewEntry struct {
	ASN uint32
	Off uint32
	Cnt uint32
}

// ASNView is the byASN index as a pair of flat arrays instead of a
// map-of-slices: sorted (ASN, offset, count) entries over one int32
// slab. Both slices may alias a memory-mapped snapshot section — the
// view allocates nothing and is never mutated, so it can serve straight
// from the page cache. Lookup is a binary search; an ASN absent from
// the entries originates nothing.
type ASNView struct {
	entries []ASNViewEntry
	slab    []int32
}

// NewASNView validates and wraps a decoded ASN index. Entries must be
// strictly ascending by ASN (sorted, no duplicates), every run must lie
// inside the slab, and every slab value in a referenced run must index
// into an arena of arenaLen — the same invariants Restore checks on the
// map form, enforced here once at open so lookups can trust the views.
func NewASNView(entries []ASNViewEntry, slab []int32, arenaLen int) (*ASNView, error) {
	for i := range entries {
		e := &entries[i]
		if i > 0 && entries[i-1].ASN >= e.ASN {
			return nil, fmt.Errorf("serve: ASN view entries out of order at %d (ASN %d after %d)",
				i, e.ASN, entries[i-1].ASN)
		}
		if e.Cnt == 0 {
			return nil, fmt.Errorf("serve: ASN view entry %d (ASN %d) has an empty run", i, e.ASN)
		}
		end := uint64(e.Off) + uint64(e.Cnt)
		if end > uint64(len(slab)) {
			return nil, fmt.Errorf("serve: ASN view entry %d (ASN %d) run [%d,%d) outside slab of %d",
				i, e.ASN, e.Off, end, len(slab))
		}
		for _, j := range slab[e.Off : e.Off+e.Cnt] {
			if j < 0 || int(j) >= arenaLen {
				return nil, fmt.Errorf("serve: ASN view entry for ASN %d holds arena index %d outside arena of %d",
					e.ASN, j, arenaLen)
			}
		}
	}
	return &ASNView{entries: entries, slab: slab}, nil
}

// Lookup returns the arena-index run for asn, nil if it originates
// nothing. The returned slice aliases the view; read-only.
func (v *ASNView) Lookup(asn uint32) []int32 {
	i := sort.Search(len(v.entries), func(i int) bool { return v.entries[i].ASN >= asn })
	if i >= len(v.entries) || v.entries[i].ASN != asn {
		return nil
	}
	e := &v.entries[i]
	return v.slab[e.Off : e.Off+e.Cnt]
}

// Len returns the number of ASNs in the view.
func (v *ASNView) Len() int { return len(v.entries) }

// ForEach visits every (ASN, run) pair in ascending ASN order. The run
// slice aliases the view; read-only.
func (v *ASNView) ForEach(fn func(asn uint32, list []int32)) {
	for i := range v.entries {
		e := &v.entries[i]
		fn(e.ASN, v.slab[e.Off:e.Off+e.Cnt])
	}
}
