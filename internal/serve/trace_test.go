package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ipleasing/internal/telemetry"
)

// tracedServer builds a primed server with an always-sample trace plane.
func tracedServer(t *testing.T, rate float64) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, Config{
		Traces: telemetry.NewTracePlane(telemetry.TracePlaneOptions{
			SampleRate: rate,
			Seed:       42,
		}),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// debugTraces fetches and decodes /debug/traces with an optional query.
func debugTraces(t *testing.T, ts *httptest.Server, query string) []telemetry.TraceRecord {
	t.Helper()
	code, body, _ := get(t, ts, "/debug/traces"+query)
	if code != 200 {
		t.Fatalf("/debug/traces%s: code %d body %s", query, code, body)
	}
	var resp struct {
		Traces []telemetry.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/debug/traces%s: decode: %v", query, err)
	}
	return resp.Traces
}

func TestTracedRequestCollected(t *testing.T) {
	_, ts := tracedServer(t, 1)

	code, _, hdr := get(t, ts, "/lookup?ip=10.0.0.77")
	if code != 200 {
		t.Fatalf("lookup: code %d", code)
	}
	traceID := hdr.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", traceID)
	}

	recs := debugTraces(t, ts, "?trace_id="+traceID)
	if len(recs) != 1 {
		t.Fatalf("got %d records for trace %s, want 1", len(recs), traceID)
	}
	rec := recs[0]
	if rec.Endpoint != "lookup" || rec.Kind != telemetry.KindSampled || rec.Status != 200 {
		t.Errorf("record = %s/%s/%d, want lookup/sampled/200", rec.Endpoint, rec.Kind, rec.Status)
	}
	if rec.Root == nil || rec.Root.TraceID != traceID {
		t.Fatalf("root trace_id = %v, want %s", rec.Root, traceID)
	}
	// The request root carries the per-phase child spans.
	var phases []string
	for _, c := range rec.Root.Children {
		phases = append(phases, c.Name)
	}
	joined := strings.Join(phases, ",")
	for _, want := range []string{"decode", "lookup", "render"} {
		if !strings.Contains(joined, want) {
			t.Errorf("child spans %q missing %q", joined, want)
		}
	}
}

func TestIncomingTraceparentAdopted(t *testing.T) {
	// Rate 0: only the incoming sampled flag can start a trace.
	_, ts := tracedServer(t, 0)

	const incoming = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, err := http.NewRequest("GET", ts.URL+"/lookup?ip=10.0.0.77", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceparentHeader, incoming)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("X-Trace-Id = %q, want the incoming trace ID", got)
	}

	recs := debugTraces(t, ts, "?trace_id=0123456789abcdef0123456789abcdef")
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].Root.ParentSpanID != "00f067aa0ba902b7" {
		t.Errorf("root parent_span_id = %q, want the incoming span ID", recs[0].Root.ParentSpanID)
	}
}

func TestErrorRequestAlwaysKept(t *testing.T) {
	// Rate 1 so the decision is taken; the error keep-rule routes it to
	// the hot ring regardless of sampling.
	_, ts := tracedServer(t, 1)

	code, _, hdr := get(t, ts, "/lookup?ip=not-an-ip")
	if code != 400 {
		t.Fatalf("bad lookup: code %d, want 400", code)
	}
	traceID := hdr.Get("X-Trace-Id")
	recs := debugTraces(t, ts, "?trace_id="+traceID)
	if len(recs) != 1 || recs[0].Kind != telemetry.KindError || recs[0].Status != 400 {
		t.Fatalf("error trace = %+v, want one error/400 record", recs)
	}
}

func TestUnsampledRequestUntraced(t *testing.T) {
	_, ts := tracedServer(t, 0)

	code, _, hdr := get(t, ts, "/lookup?ip=10.0.0.77")
	if code != 200 {
		t.Fatalf("lookup: code %d", code)
	}
	if got := hdr.Get("X-Trace-Id"); got != "" {
		t.Errorf("X-Trace-Id = %q on unsampled request, want none", got)
	}
	if recs := debugTraces(t, ts, "?kind=sampled"); len(recs) != 0 {
		t.Errorf("collector holds %d sampled records, want 0", len(recs))
	}
}

func TestReloadTraceCollected(t *testing.T) {
	s, ts := tracedServer(t, 0)

	// The initial Reload in newTestServer ran before tracing could be
	// observed here; drive another and look for its reload record.
	if err := s.Reload(context.Background(), true); err != nil {
		t.Fatalf("reload: %v", err)
	}
	recs := debugTraces(t, ts, "?kind=reload")
	if len(recs) == 0 {
		t.Fatal("no reload traces collected")
	}
	rec := recs[0]
	if rec.Endpoint != "reload" || rec.Status != 200 || rec.Root == nil {
		t.Fatalf("reload record = %+v", rec)
	}
	var hasSwap bool
	for _, c := range rec.Root.Children {
		if c.Name == "swap" {
			hasSwap = true
		}
	}
	if !hasSwap {
		t.Errorf("reload root children lack a swap span: %+v", rec.Root.Children)
	}
}

func TestGenerationHeaderMatchesStatusz(t *testing.T) {
	s := newTestServer(t, Config{
		Build: func(ctx context.Context) (*Snapshot, error) {
			snap := testSnapshot()
			snap.Generation = 7
			return snap, nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, hdr := get(t, ts, "/lookup?ip=10.0.0.77")
	if code != 200 {
		t.Fatalf("lookup: code %d", code)
	}
	if got := hdr.Get(GenerationHeader); got != "7" {
		t.Fatalf("%s = %q, want 7", GenerationHeader, got)
	}

	code, body, _ := get(t, ts, "/statusz")
	if code != 200 {
		t.Fatalf("statusz: code %d", code)
	}
	var st struct {
		Snapshot struct {
			Generation uint64 `json:"generation"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	if st.Snapshot.Generation != 7 {
		t.Fatalf("statusz generation = %d, want 7", st.Snapshot.Generation)
	}
}
