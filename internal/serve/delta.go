package serve

import (
	"bytes"
	"sort"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/report"
)

// Reload modes, as reported in ReloadEvent.Mode, the mode label of the
// reload metrics, and DeltaInfo.Mode.
const (
	ModeFull  = "full"
	ModeDelta = "delta"
	// ModeSnapshot marks a reload served from a decoded on-disk or
	// fetched binary snapshot (internal/snapstore): no dataset was
	// parsed and nothing was re-inferred.
	ModeSnapshot = "snapshot"
)

// DeltaInfo describes how a snapshot was produced by the incremental
// reload path. Attached to Snapshot.Delta; a nil Delta means a full
// build.
type DeltaInfo struct {
	// Mode is ModeDelta when the inference delta was applied, ModeFull
	// when the delta path fell back to a full rebuild (high churn,
	// options change, first load).
	Mode string
	// DirtyShards and TotalShards count allocation-forest root segments
	// re-classified vs total (core.DeltaStats).
	DirtyShards int
	TotalShards int
	// ChangedKeys is the per-source changed-key count from the dataset
	// diff (delta.Changes.ChangedKeys).
	ChangedKeys map[string]int
	// PatchOps is the number of LPM index operations the patch
	// performed: value deletions plus dirty-prefix inserts/updates.
	PatchOps int
	// LPMRebuilt records that the flat LPM index was rebuilt from
	// scratch instead of patched (duplicate prefixes, or an inconsistent
	// plan).
	LPMRebuilt bool
}

// PatchSnapshot indexes an incrementally-updated inference result by
// patching the previous snapshot's serving indexes through the
// PatchPlan instead of rebuilding them: surviving LPM values and
// ASN-index entries are remapped in place, deleted ones dropped, and
// only the re-classified flat slots are re-inserted. The result must be
// the one ApplyDelta produced from prev.Result with plan.
//
// The returned snapshot answers every query byte-identically to
// NewSnapshot(res, ...); Delta carries the patch statistics (Mode,
// PatchOps, LPMRebuilt) for the caller to augment. Falls back to a full
// index build — never fails — when the plan is inconsistent with the
// result or the LPM refuses to patch.
func PatchSnapshot(prev *Snapshot, res *core.Result, plan *core.PatchPlan, reports []*diag.LoadReport, skippedAnalyses []string) *Snapshot {
	if prev == nil || plan == nil {
		s := NewSnapshot(res, reports, skippedAnalyses)
		s.Delta = &DeltaInfo{Mode: ModeDelta, LPMRebuilt: true}
		return s
	}
	s := &Snapshot{
		Result:          res,
		Reports:         reports,
		SkippedAnalyses: skippedAnalyses,
		Delta:           &DeltaInfo{Mode: ModeDelta},
	}
	s.infs = res.Flat()
	if len(s.infs) != plan.NextLen || len(prev.infs) != plan.PrevLen {
		s := NewSnapshot(res, reports, skippedAnalyses)
		s.Delta = &DeltaInfo{Mode: ModeDelta, LPMRebuilt: true}
		return s
	}
	ps := make([]netutil.Prefix, len(s.infs))
	for i := range s.infs {
		ps[i] = s.infs[i].Prefix
	}
	deleted := 0
	for _, v := range plan.Remap {
		if v < 0 {
			deleted++
		}
	}
	s.Delta.PatchOps = deleted + len(plan.DirtyNext)
	s.lpm = prev.lpm.Patch(plan.Remap, ps, plan.DirtyNext)
	if s.lpm == nil {
		s.lpm = netutil.BuildLPM(ps)
		s.Delta.LPMRebuilt = true
	}

	// ASN index: translate surviving entries through the remap (it is
	// monotonic over non-negative values, so list order is preserved),
	// append the re-classified slots, and re-sort only the lists they
	// touched. prev.ByASN() (not the field) so a view-backed previous
	// generation materializes its flat index instead of patching nothing.
	prevByASN := prev.ByASN()
	s.byASN = make(map[uint32][]int32, len(prevByASN))
	for asn, list := range prevByASN {
		nl := make([]int32, 0, len(list))
		for _, j := range list {
			if nj := plan.Remap[j]; nj >= 0 {
				nl = append(nl, nj)
			}
		}
		if len(nl) > 0 {
			s.byASN[asn] = nl
		}
	}
	touched := make(map[uint32]bool)
	for _, ni := range plan.DirtyNext {
		for _, asn := range s.infs[ni].LeafOrigins {
			s.byASN[asn] = append(s.byASN[asn], ni)
			touched[asn] = true
		}
	}
	for asn := range touched {
		l := s.byASN[asn]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}

	// Table 1 aggregates every region's counts; re-render it from the
	// spliced result (cheap relative to classification).
	var buf bytes.Buffer
	report.Table1(&buf, res)
	s.table1 = buf.Bytes()
	return s
}
