package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"ipleasing/internal/core"
	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

// snapshotOf wraps a hand-rolled inference list into a served snapshot.
func snapshotOf(infs []core.Inference) *Snapshot {
	rr := &core.RegionResult{Registry: whois.RIPE, Inferences: infs}
	for i := range infs {
		rr.Counts[infs[i].Category]++
		rr.TotalLeaves++
	}
	res := &core.Result{
		Regions:          map[whois.Registry]*core.RegionResult{whois.RIPE: rr},
		TotalBGPPrefixes: len(infs),
	}
	return NewSnapshot(res, []*diag.LoadReport{{Source: "whois/RIPE", Parsed: len(infs)}}, nil)
}

// mapWalkLookupAddr is the retired implementation of LookupAddr — up to
// 25 map probes from /32 down — kept as the oracle the flat LPM index
// is cross-checked against.
func mapWalkLookupAddr(byPrefix map[netutil.Prefix]*core.Inference, a netutil.Addr) *core.Inference {
	for l := uint8(32); ; l-- {
		p := netutil.Prefix{Base: a, Len: l}.Canonicalize()
		if inf, ok := byPrefix[p]; ok {
			return inf
		}
		if l == 0 {
			return nil
		}
	}
}

// byPrefixOf rebuilds the retired map index over a snapshot's leaves.
func byPrefixOf(s *Snapshot) map[netutil.Prefix]*core.Inference {
	m := make(map[netutil.Prefix]*core.Inference, len(s.infs))
	for i := range s.infs {
		m[s.infs[i].Prefix] = &s.infs[i]
	}
	return m
}

// edgeSnapshot covers the address-space extremes and a root that has
// classified leaves next to uncovered gaps.
func edgeSnapshot() *Snapshot {
	root := mp("10.0.0.0/16")
	return snapshotOf([]core.Inference{
		{Registry: whois.RIPE, Prefix: mp("0.0.0.0/24"), Category: core.AggregatedCustomer, Root: mp("0.0.0.0/8")},
		{Registry: whois.RIPE, Prefix: mp("10.0.0.0/24"), Category: core.LeasedNoRootOrigin, Root: root},
		{Registry: whois.RIPE, Prefix: mp("10.0.1.0/24"), Category: core.ISPCustomer, Root: root},
		{Registry: whois.RIPE, Prefix: mp("255.255.255.0/24"), Category: core.AggregatedCustomer, Root: mp("255.0.0.0/8")},
	})
}

func TestLookupAddrEdgeCases(t *testing.T) {
	s := edgeSnapshot()
	cases := []struct {
		addr string
		want string // matched prefix, "" for miss
	}{
		{"0.0.0.0", "0.0.0.0/24"},               // lowest address in the space
		{"0.0.0.255", "0.0.0.0/24"},             // last covered address of that leaf
		{"0.0.1.0", ""},                         // one past the first leaf
		{"255.255.255.255", "255.255.255.0/24"}, // highest address in the space
		{"255.255.254.255", ""},                 // one below the last leaf
		{"10.0.0.255", "10.0.0.0/24"},           // adjacent-leaf boundary, low side
		{"10.0.1.0", "10.0.1.0/24"},             // adjacent-leaf boundary, high side
		{"10.0.2.0", ""},                        // inside the root, no classified leaf
		{"10.0.255.255", ""},                    // root-covered gap at the root's end
		{"9.255.255.255", ""},                   // just below the root
	}
	for _, c := range cases {
		inf := s.LookupAddr(netutil.MustParseAddr(c.addr))
		switch {
		case c.want == "" && inf != nil:
			t.Errorf("LookupAddr(%s) = %s, want miss", c.addr, inf.Prefix)
		case c.want != "" && inf == nil:
			t.Errorf("LookupAddr(%s) = miss, want %s", c.addr, c.want)
		case c.want != "" && inf.Prefix != mp(c.want):
			t.Errorf("LookupAddr(%s) = %s, want %s", c.addr, inf.Prefix, c.want)
		}
	}
}

func TestLookupPrefixExactOnly(t *testing.T) {
	s := edgeSnapshot()
	if inf := s.LookupPrefix(mp("10.0.1.0/24")); inf == nil || inf.Category != core.ISPCustomer {
		t.Fatalf("LookupPrefix(10.0.1.0/24) = %v", inf)
	}
	// Containment is not exactness, in either direction.
	for _, q := range []string{"10.0.0.0/16", "10.0.1.0/25", "10.0.1.128/25", "10.0.2.0/24"} {
		if inf := s.LookupPrefix(mp(q)); inf != nil {
			t.Errorf("LookupPrefix(%s) = %s, want miss", q, inf.Prefix)
		}
	}
}

func TestLookupAddrEmptySnapshot(t *testing.T) {
	s := snapshotOf(nil)
	if inf := s.LookupAddr(netutil.MustParseAddr("10.0.0.1")); inf != nil {
		t.Fatalf("empty snapshot matched %s", inf.Prefix)
	}
	if inf := s.LookupPrefix(mp("10.0.0.0/24")); inf != nil {
		t.Fatalf("empty snapshot matched prefix %s", inf.Prefix)
	}
	if got := s.LookupAddrs(nil, []netutil.Addr{netutil.MustParseAddr("10.0.0.1")}); len(got) != 1 || got[0] != nil {
		t.Fatalf("empty snapshot batch = %v", got)
	}
}

// randomLeafSnapshot builds a snapshot with n pseudo-random leaf
// prefixes clustered registry-style (mostly /20../28 under a few /8s).
func randomLeafSnapshot(rng *rand.Rand, n int) *Snapshot {
	infs := make([]core.Inference, 0, n)
	for i := 0; i < n; i++ {
		base := uint32(rng.Intn(8))<<28 | rng.Uint32()>>4
		ln := uint8(20 + rng.Intn(9))
		p := netutil.Prefix{Base: netutil.Addr(base), Len: ln}.Canonicalize()
		infs = append(infs, core.Inference{
			Registry: whois.RIPE, Prefix: p,
			Category: core.Category(rng.Intn(int(core.Orphan) + 1)),
			Root:     netutil.Prefix{Base: p.Base, Len: 8}.Canonicalize(),
		})
	}
	return snapshotOf(infs)
}

// TestLookupAddrCrossCheck drives the LPM-backed LookupAddr against the
// retired map-walk implementation over random snapshots: every answer —
// hit or miss — must be the identical *core.Inference.
func TestLookupAddrCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		s := randomLeafSnapshot(rng, 100+rng.Intn(400))
		byPrefix := byPrefixOf(s)
		for q := 0; q < 1000; q++ {
			var a netutil.Addr
			if q%2 == 0 {
				p := s.infs[rng.Intn(len(s.infs))].Prefix
				a = p.Base | netutil.Addr(rng.Uint32()&^uint32(p.Mask()))
			} else {
				a = netutil.Addr(rng.Uint32())
			}
			want := mapWalkLookupAddr(byPrefix, a)
			got := s.LookupAddr(a)
			if got != want {
				t.Fatalf("trial %d: LookupAddr(%s) = %v, map walk = %v", trial, a, got, want)
			}
		}
	}
}

// FuzzLookupAddr lets the fuzzer pick the address; the oracle is the
// retired map walk over the edge snapshot.
func FuzzLookupAddr(f *testing.F) {
	s := edgeSnapshot()
	byPrefix := byPrefixOf(s)
	f.Add(uint32(0))
	f.Add(uint32(0xffffffff))
	f.Add(uint32(0x0a000100))
	f.Fuzz(func(t *testing.T, addr uint32) {
		a := netutil.Addr(addr)
		if got, want := s.LookupAddr(a), mapWalkLookupAddr(byPrefix, a); got != want {
			t.Fatalf("LookupAddr(%s) = %v, map walk = %v", a, got, want)
		}
	})
}

func TestLookupAddrs(t *testing.T) {
	s := edgeSnapshot()
	addrs := []netutil.Addr{
		netutil.MustParseAddr("10.0.0.7"),
		netutil.MustParseAddr("10.0.9.9"),
		netutil.MustParseAddr("255.255.255.255"),
	}
	got := s.LookupAddrs(nil, addrs)
	if len(got) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(got))
	}
	if got[0] == nil || got[0].Prefix != mp("10.0.0.0/24") {
		t.Errorf("batch[0] = %v", got[0])
	}
	if got[1] != nil {
		t.Errorf("batch[1] = %v, want nil", got[1])
	}
	if got[2] == nil || got[2].Prefix != mp("255.255.255.0/24") {
		t.Errorf("batch[2] = %v", got[2])
	}
	// Appending semantics: an existing dst is extended, not overwritten.
	again := s.LookupAddrs(got[:1], addrs[2:])
	if len(again) != 2 || again[0] != got[0] || again[1] == nil {
		t.Fatalf("append batch = %v", again)
	}
}

func addrsForBench(s *Snapshot, n int) []netutil.Addr {
	rng := rand.New(rand.NewSource(3))
	addrs := make([]netutil.Addr, n)
	for i := range addrs {
		p := s.infs[rng.Intn(len(s.infs))].Prefix
		addrs[i] = p.Base | netutil.Addr(rng.Uint32()&^uint32(p.Mask()))
	}
	return addrs
}

// BenchmarkLookupAddr is the serving hot path: one address classified
// against a realistic-size snapshot. Must report 0 allocs/op — the gate
// in scripts/check.sh enforces it.
func BenchmarkLookupAddr(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randomLeafSnapshot(rng, 8192)
	addrs := addrsForBench(s, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LookupAddr(addrs[i%len(addrs)])
	}
}

// BenchmarkLookupAddrMapWalk is the retired implementation on the same
// workload, kept for the speedup ratio in the README's table.
func BenchmarkLookupAddrMapWalk(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randomLeafSnapshot(rng, 8192)
	byPrefix := byPrefixOf(s)
	addrs := addrsForBench(s, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapWalkLookupAddr(byPrefix, addrs[i%len(addrs)])
	}
}

// BenchmarkLookupBatch measures amortized per-batch cost with a reused
// destination slice — the shape of the /lookup/batch handler's loop.
func BenchmarkLookupBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randomLeafSnapshot(rng, 8192)
	addrs := addrsForBench(s, 1000)
	dst := make([]*core.Inference, 0, len(addrs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.LookupAddrs(dst[:0], addrs)
	}
	if len(dst) != len(addrs) {
		b.Fatal(fmt.Sprintf("batch returned %d results", len(dst)))
	}
}
