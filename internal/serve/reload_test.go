package serve

// Reload-semantics kill test: under concurrent query load, a reload
// pointed at a faultgen-corrupted dataset must never drop or corrupt a
// response. The old snapshot serves byte-identically until a good reload
// lands, /readyz degrades in the meantime, and the reload breaker opens
// after the configured number of consecutive failures. Run under -race
// (scripts/check.sh gates on it): the query goroutines hammer the
// atomic snapshot pointer while reload cycles build and swap.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ipleasing"
	"ipleasing/internal/faultgen"
)

// strictBuilder loads dir under the strict policy and indexes it: any
// faultgen corruption makes the build fail, which is exactly the rotten
// monthly refresh the daemon must survive.
func strictBuilder(dir string) func(context.Context) (*Snapshot, error) {
	return func(context.Context) (*Snapshot, error) {
		_, sum, res, err := ipleasing.LoadAndInfer(dir, ipleasing.StrictLoad(), ipleasing.Options{})
		if err != nil {
			return nil, err
		}
		snap := NewSnapshot(res, sum.Reports, sum.SkippedAnalyses)
		snap.Dir = dir
		snap.Strict = true
		return snap, nil
	}
}

func TestReloadUnderCorruptionServesOldSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset reload cycle")
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := ipleasing.Generate(ipleasing.Config{Seed: 42, Scale: 0.005}).WriteDir(dir); err != nil {
		t.Fatal(err)
	}

	s := New(Config{
		Build:          strictBuilder(dir),
		ReloadAttempts: 2,
		ReloadBackoff:  time.Millisecond,
		BreakerAfter:   2,
	})
	ctx := context.Background()
	if err := s.Reload(ctx, true); err != nil {
		t.Fatalf("initial reload: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Baseline: every query URL the load goroutines will replay, with
	// the byte-exact response each must keep producing while the old
	// snapshot serves. Sampled across leased and non-leased leaves.
	snap := s.Snapshot()
	var urls []string
	for i := range snap.infs {
		if len(urls) >= 24 {
			break
		}
		if i%3 == 0 {
			inf := &snap.infs[i]
			urls = append(urls, "/lookup?prefix="+inf.Prefix.String())
			if o := inf.Originator(); o != 0 {
				urls = append(urls, fmt.Sprintf("/lookup?asn=%d", o))
			}
		}
	}
	urls = append(urls, "/table1", "/loadreport")
	if len(urls) < 10 {
		t.Fatalf("only %d query URLs sampled; dataset too small", len(urls))
	}
	// normalize strips the snapshot timestamp: a successful reload of
	// identical bytes swaps in a snapshot whose data must match the
	// baseline exactly, but whose built_at legitimately differs.
	normalize := func(body string) string {
		lines := strings.Split(body, "\n")
		out := lines[:0]
		for _, l := range lines {
			if !strings.Contains(l, `"snapshot_built_at"`) && !strings.Contains(l, `"built_at"`) {
				out = append(out, l)
			}
		}
		return strings.Join(out, "\n")
	}
	baseline := make(map[string]string, len(urls))
	for _, u := range urls {
		code, body, _ := get(t, ts, u)
		if code != 200 {
			t.Fatalf("baseline %s: code %d", u, code)
		}
		baseline[u] = normalize(body)
	}

	// Concurrent query load for the whole corrupt-reload-recover cycle.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mismatch sync.Once
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(i+w)%len(urls)]
				code, body, _ := get(t, ts, u)
				if code != 200 {
					mismatch.Do(func() { t.Errorf("under load %s: code %d", u, code) })
					return
				}
				if got := normalize(body); got != baseline[u] {
					mismatch.Do(func() {
						t.Errorf("response drifted during reload churn: %s\n got: %s\nwant: %s", u, got, baseline[u])
					})
					return
				}
			}
		}(w)
	}

	// Corrupt the dataset: every strict reload now fails.
	fr, err := faultgen.Corrupt(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(ctx, false); err == nil {
		t.Fatal("reload of corrupted dataset succeeded")
	}

	// Degraded but serving: /readyz 503, queries still byte-identical.
	code, body, _ := get(t, ts, "/readyz")
	if code != 503 || !strings.Contains(body, "degraded") {
		t.Errorf("/readyz after failed reload: code %d body %s", code, body)
	}

	// Second failed cycle opens the breaker; unforced reloads are then
	// refused outright.
	if err := s.Reload(ctx, false); err == nil {
		t.Fatal("second reload of corrupted dataset succeeded")
	}
	if err := s.Reload(ctx, false); err != ErrBreakerOpen {
		t.Fatalf("reload with open breaker = %v, want ErrBreakerOpen", err)
	}
	code, body, _ = get(t, ts, "/readyz")
	if code != 503 || !strings.Contains(body, "breaker") && !strings.Contains(body, "degraded") {
		t.Errorf("/readyz with open breaker: code %d body %s", code, body)
	}

	// Repair the dataset. The breaker still blocks unforced reloads —
	// recovery is an operator decision (SIGHUP) — and a forced reload
	// lands the good snapshot and closes the breaker.
	if err := fr.Restore(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(ctx, false); err != ErrBreakerOpen {
		t.Fatalf("unforced reload after repair = %v, want ErrBreakerOpen", err)
	}
	if err := s.Reload(ctx, true); err != nil {
		t.Fatalf("forced reload after repair: %v", err)
	}
	if code, body, _ := get(t, ts, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz after recovery: code %d body %s", code, body)
	}

	close(stop)
	wg.Wait()

	// The recovered snapshot is rebuilt from identical bytes, so the
	// timestamp-free endpoints must still match the baseline exactly.
	for _, u := range urls {
		if _, body, _ := get(t, ts, u); normalize(body) != baseline[u] {
			t.Errorf("%s drifted across recovery:\n got: %s\nwant: %s", u, normalize(body), baseline[u])
		}
	}
	// Reload history accounts every cycle: initial ok, two failures,
	// final forced ok. The breaker-refused attempts never ran a cycle.
	s.mu.Lock()
	cycles, fails, open := s.reloads, s.consecFails, s.breakerOpen
	s.mu.Unlock()
	if cycles != 4 || fails != 0 || open {
		t.Errorf("reload bookkeeping: cycles=%d consecFails=%d open=%v, want 4/0/false", cycles, fails, open)
	}
}

// TestReloadLoopTimer drives the timer path: cycles happen without
// explicit Reload calls and stop with the context.
func TestReloadLoopTimer(t *testing.T) {
	s := New(Config{
		Build:       func(context.Context) (*Snapshot, error) { return testSnapshot(), nil },
		ReloadEvery: 5 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.ReloadLoop(ctx); close(done) }()
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		n := s.reloads
		s.mu.Unlock()
		if n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("timer reloads never happened")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ReloadLoop did not stop on context cancel")
	}
	if s.Snapshot() == nil {
		t.Error("no snapshot after timer reloads")
	}
}
