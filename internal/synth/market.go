package synth

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ipleasing/internal/bgp"
)

// MarketMonth is one month of the longitudinal routing view: the full
// global table as it stood that month.
type MarketMonth struct {
	Time   time.Time
	Routes []bgp.Route
}

// defaultMarketMonths is the longitudinal window (§8 extension): six
// monthly snapshots ending at the world's snapshot time.
const defaultMarketMonths = 6

// generateMarket builds the longitudinal monthly tables. Non-leased
// announcements are held stable across the window; each leased prefix
// gets a backward-simulated lease history — runs of one lessee, parking
// gaps, earlier lessees — whose final month matches the world's current
// state.
func (g *gen) generateMarket() {
	months := g.cfg.Months
	if months == 0 {
		months = defaultMarketMonths
	}
	if months < 0 {
		return // disabled
	}

	// Per-leased-prefix origin state per month (0 = not announced).
	states := make([][]uint32, len(g.leased))
	for i, ri := range g.leased {
		st := make([]uint32, months)
		m := months - 1
		cur := ri.origin
		first := true
		for m >= 0 {
			dur := 1 + g.rng.Intn(6)
			if first {
				// The current lease must reach the final month.
				dur = 1 + g.rng.Intn(4)
			}
			for i := 0; i < dur && m >= 0; i++ {
				st[m] = cur
				m--
			}
			if m < 0 {
				break
			}
			if first && g.rng.Intn(10) < 3 {
				// Recently leased for the first time: dark before.
				break
			}
			first = false
			gap := g.rng.Intn(3)
			m -= gap // parked months stay 0
			cur = g.hostNormal.pick(g.rng)
		}
		states[i] = st
	}

	for m := 0; m < months; m++ {
		t := g.w.SnapshotTime.AddDate(0, m-(months-1), 0)
		routes := make([]bgp.Route, 0, len(g.nonleased)+len(g.leased))
		for _, ri := range g.nonleased {
			routes = append(routes, bgp.Route{Prefix: ri.prefix, Path: g.pathTo(ri.origin)})
		}
		for i, ri := range g.leased {
			if origin := states[i][m]; origin != 0 {
				routes = append(routes, bgp.Route{Prefix: ri.prefix, Path: g.pathTo(origin)})
			}
		}
		g.w.Market = append(g.w.Market, MarketMonth{Time: t, Routes: routes})
	}
}

// DirMarket is the longitudinal snapshot directory.
const DirMarket = "market"

// writeMarket renders one full MRT RIB per month.
func (w *World) writeMarket(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, m := range w.Market {
		name := fmt.Sprintf("rib-%d.mrt", m.Time.Unix())
		if err := bgp.WriteMRTFile(filepath.Join(dir, name), uint32(m.Time.Unix()), w.Peers, m.Routes); err != nil {
			return err
		}
	}
	return nil
}
