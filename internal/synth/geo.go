package synth

import (
	"ipleasing/internal/geoip"
)

// geoProviders are the synthetic geolocation vendors; five, like the
// five-database disagreement anecdote in the paper's §8.
var geoProviders = []string{"atlasgeo", "bitlocate", "cartodb", "driftip", "edgegeo"}

// generateGeo builds the geolocation panel: non-leased prefixes geolocate
// consistently (small vendor noise), while roughly half of the leased
// prefixes split the vendors between the holder's registration country
// and the lessee's operating countries — marketplace prefixes spread
// across continents depending on who you ask.
func (g *gen) generateGeo() {
	panel := &geoip.Panel{}
	for _, name := range geoProviders {
		panel.DBs = append(panel.DBs, geoip.NewDB(name))
	}

	ccOfOrigin := func(origin uint32) string {
		if orgID, ok := g.w.Orgs.OrgOf(origin); ok {
			if cc := g.w.Orgs.Country(orgID); cc != "" {
				return cc
			}
		}
		return g.country()
	}
	distinct := func(avoid map[string]bool) string {
		for i := 0; i < 20; i++ {
			cc := g.country()
			if !avoid[cc] {
				return cc
			}
		}
		return "ZZ"
	}

	for _, ri := range g.nonleased {
		cc := ccOfOrigin(ri.origin)
		for i, db := range panel.DBs {
			entry := cc
			if i == 0 && g.rng.Intn(20) == 0 {
				// Vendor noise: one provider occasionally disagrees even
				// on stable, non-leased space.
				entry = distinct(map[string]bool{cc: true})
			}
			db.Add(ri.prefix, entry)
		}
	}
	for _, ri := range g.leased {
		lesseeCC := ccOfOrigin(ri.origin)
		if g.rng.Intn(2) == 0 {
			// Half the leases geolocate consistently: every vendor has
			// caught up with the lessee.
			for _, db := range panel.DBs {
				db.Add(ri.prefix, lesseeCC)
			}
			continue
		}
		// The rest split the panel: some vendors track the lessee, some
		// keep the holder's stale country, and occasionally a third (or
		// fourth) answer appears — the marketplace "four continents"
		// case.
		avoid := map[string]bool{lesseeCC: true}
		holderCC := distinct(avoid)
		avoid[holderCC] = true
		answers := []string{lesseeCC, holderCC}
		if g.rng.Intn(4) == 0 {
			third := distinct(avoid)
			avoid[third] = true
			answers = append(answers, third)
		}
		if g.rng.Intn(10) == 0 {
			answers = append(answers, distinct(avoid))
		}
		for i, db := range panel.DBs {
			db.Add(ri.prefix, answers[i%len(answers)])
		}
	}
	g.w.Geo = panel
}
