package synth

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ipleasing/internal/core"
	"ipleasing/internal/whois"
)

// testConfig is a small, fast world.
func testConfig() Config {
	return Config{Seed: 7, Scale: 0.005}
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(testConfig())
	w2 := Generate(testConfig())
	if len(w1.Routes) != len(w2.Routes) || len(w1.Truth) != len(w2.Truth) {
		t.Fatalf("generation not deterministic: %d/%d routes, %d/%d truth",
			len(w1.Routes), len(w2.Routes), len(w1.Truth), len(w2.Truth))
	}
	for i := range w1.Truth {
		if w1.Truth[i] != w2.Truth[i] {
			t.Fatalf("truth %d differs", i)
		}
	}
	var b1, b2 bytes.Buffer
	if err := WriteTruth(&b1, w1.Truth); err != nil {
		t.Fatal(err)
	}
	if err := WriteTruth(&b2, w2.Truth); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("serialized truth differs across runs")
	}
}

// TestInferenceRecoversIntent is the generator's core contract: running
// the paper's methodology over the synthetic world recovers the planted
// category for (nearly) every leaf.
func TestInferenceRecoversIntent(t *testing.T) {
	w := Generate(testConfig())
	res := w.Pipeline().Infer()

	byPrefix := make(map[string]core.Category)
	for _, inf := range res.All() {
		byPrefix[inf.Prefix.String()] = inf.Category
	}
	mismatches := 0
	total := 0
	for _, tr := range w.Truth {
		if tr.Legacy {
			// Legacy blocks must be absent from the inference output.
			if _, ok := byPrefix[tr.Prefix.String()]; ok {
				t.Errorf("legacy block %v was classified", tr.Prefix)
			}
			continue
		}
		total++
		got, ok := byPrefix[tr.Prefix.String()]
		if !ok {
			t.Errorf("no inference for planted leaf %v", tr.Prefix)
			mismatches++
			continue
		}
		if got != tr.Intended {
			mismatches++
			if mismatches < 10 {
				t.Errorf("%v: inferred %v, intended %v", tr.Prefix, got, tr.Intended)
			}
		}
	}
	if total == 0 {
		t.Fatal("no truth records")
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d planted leaves misclassified", mismatches, total)
	}
}

func TestWorldShapes(t *testing.T) {
	w := Generate(Config{Seed: 3, Scale: 0.01})
	res := w.Pipeline().Infer()

	// RIPE must dominate the lease counts (Table 1).
	ripe := res.Regions[whois.RIPE].Leased()
	for _, reg := range []whois.Registry{whois.ARIN, whois.APNIC, whois.AFRINIC, whois.LACNIC} {
		if other := res.Regions[reg].Leased(); other >= ripe {
			t.Errorf("%v leased %d >= RIPE %d", reg, other, ripe)
		}
	}
	// Leased share of routed prefixes near the 4.1% target.
	share := res.LeasedShareOfBGP()
	if share < 0.02 || share > 0.07 {
		t.Errorf("leased BGP share = %.3f, want ~0.041", share)
	}
	// Abuse lists and brokers exist at sensible sizes.
	if w.Hijackers.Len() == 0 || len(w.Drop.Months) != 4 {
		t.Fatal("abuse lists missing")
	}
	if w.Brokers.Len() < 100 {
		t.Fatalf("broker list = %d", w.Brokers.Len())
	}
	if len(w.RPKI.Snapshots) != 4 {
		t.Fatalf("rpki snapshots = %d", len(w.RPKI.Snapshots))
	}
	// Timeline present with alternating leases and AS0 gaps.
	if w.Timeline == nil || len(w.Timeline.Points) != 25 {
		t.Fatal("timeline missing")
	}
	sawAS0, sawLease := false, false
	for _, pt := range w.Timeline.Points {
		if len(pt.Origins) == 0 && len(pt.ROAASNs) == 1 && pt.ROAASNs[0] == 0 {
			sawAS0 = true
		}
		if len(pt.Origins) == 1 {
			sawLease = true
		}
	}
	if !sawAS0 || !sawLease {
		t.Fatal("timeline lacks AS0 gaps or lease periods")
	}
	// Broker-managed truth exists for the evaluation.
	brokerManaged, inactive, legacy := 0, 0, 0
	for _, tr := range w.Truth {
		if tr.BrokerManaged {
			brokerManaged++
		}
		if tr.Inactive {
			inactive++
		}
		if tr.Legacy {
			legacy++
		}
	}
	if brokerManaged == 0 || inactive == 0 || legacy == 0 {
		t.Fatalf("eval artefacts missing: broker=%d inactive=%d legacy=%d",
			brokerManaged, inactive, legacy)
	}
	if len(w.Exclusions) == 0 {
		t.Fatal("no curation exclusions")
	}
}

func TestWriteDirRoundTripArtifacts(t *testing.T) {
	w := Generate(testConfig())
	dir := t.TempDir()
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	// Spot-check presence of every artefact.
	for _, name := range []string{
		"ripe.db", "arin.db", "apnic.db", "afrinic.db", "lacnic.db",
		FileRIBRouteviews, FileRIBRIS, FileASRel, FileAS2Org,
		FileHijackers, FileBrokers, FileGroundTruth, FileEvalExclusions, FileEvalISPs,
		FileTimelinePrefix,
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artefact %s: %v", name, err)
		}
	}
	for _, sub := range []string{DirASNDrop, DirRPKI, filepath.Join(DirTimeline, "rpki")} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil || len(entries) == 0 {
			t.Errorf("empty dir %s: %v", sub, err)
		}
	}
	// Truth round trip.
	f, err := os.Open(filepath.Join(dir, FileGroundTruth))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadTruth(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(w.Truth) {
		t.Fatalf("truth round trip: %d != %d", len(recs), len(w.Truth))
	}
	for i := range recs {
		if recs[i] != w.Truth[i] {
			t.Fatalf("truth %d: %+v != %+v", i, recs[i], w.Truth[i])
		}
	}
}

func TestScaleCount(t *testing.T) {
	if scaleCount(0, 0.5) != 0 {
		t.Fatal("zero should stay zero")
	}
	if scaleCount(1, 0.001) != 1 {
		t.Fatal("nonzero should stay >=1")
	}
	if scaleCount(1000, 0.02) != 20 {
		t.Fatal("rounding wrong")
	}
}

func TestTruthParseErrors(t *testing.T) {
	for _, bad := range []string{
		"RIPE,1.2.3.0/24,unused,true,false,false\n",        // 6 fields
		"NOPE,1.2.3.0/24,unused,true,false,false,false\n",  // bad registry
		"RIPE,bad,unused,true,false,false,false\n",         // bad prefix
		"RIPE,1.2.3.0/24,nope,true,false,false,false\n",    // bad category
		"RIPE,1.2.3.0/24,unused,maybe,false,false,false\n", // bad bool
	} {
		if _, err := ReadTruth(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("ReadTruth(%q) succeeded", bad)
		}
	}
}
