package synth

import (
	"time"

	"ipleasing/internal/bgp"
	"ipleasing/internal/brokers"
	"ipleasing/internal/core"
	"ipleasing/internal/geoip"
	"ipleasing/internal/hijack"
	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
	"ipleasing/internal/rpki"
	"ipleasing/internal/spamhaus"
	"ipleasing/internal/whois"

	"ipleasing/internal/as2org"
	"ipleasing/internal/asrel"
)

// TruthRecord is the planted ground truth for one leaf prefix: what the
// methodology is expected to infer, and what is actually true.
type TruthRecord struct {
	Registry whois.Registry
	Prefix   netutil.Prefix
	// Intended is the category the inference should assign given its
	// inputs (including the planted error cases: subsidiary false
	// positives are Intended leased even though ActuallyLeased=false).
	Intended core.Category
	// ActuallyLeased is the planted truth used for evaluation.
	ActuallyLeased bool
	// BrokerManaged marks prefixes maintained by a registered broker.
	BrokerManaged bool
	// Inactive marks leases not announced in BGP (the paper's
	// unused-classified false negatives).
	Inactive bool
	// Legacy marks broker-managed legacy blocks (outside portability).
	Legacy bool
}

// TimelinePoint is one sample of the Figure-3 study: the BGP origins and
// authorised ROA ASNs of the studied prefix at one point in time.
type TimelinePoint struct {
	Time    time.Time
	Origins []uint32 // BGP origins; empty when the prefix is down
	ROAASNs []uint32 // ASNs in ROAs covering the prefix (0 = AS0)
}

// Timeline is the Figure-3 scenario: a marketplace prefix's two-year
// lease history.
type Timeline struct {
	Prefix netutil.Prefix
	Points []TimelinePoint
}

// World is a fully generated synthetic Internet, in memory.
type World struct {
	Cfg Config

	Whois     *whois.Dataset
	Routes    []bgp.Route // current (April) global RIB
	Peers     []mrt.Peer  // collector vantage points
	Rel       *asrel.Graph
	Orgs      *as2org.Map
	Drop      *spamhaus.Archive
	Hijackers *hijack.Set
	Brokers   *brokers.List
	RPKI      *rpki.Archive
	Geo       *geoip.Panel

	Truth      []TruthRecord
	Exclusions []netutil.Prefix // broker-managed but not leased (manual filter)
	EvalISPs   []EvalISP        // the five negative-set ISPs as generated
	Timeline   *Timeline
	Market     []MarketMonth // longitudinal monthly tables (§8 extension)

	// SnapshotTime is the world's "now" (April 1 2024, like the paper).
	SnapshotTime time.Time
}

// TruthByPrefix indexes the ground truth.
func (w *World) TruthByPrefix() map[netutil.Prefix]*TruthRecord {
	m := make(map[netutil.Prefix]*TruthRecord, len(w.Truth))
	for i := range w.Truth {
		m[w.Truth[i].Prefix] = &w.Truth[i]
	}
	return m
}

// Table builds the bgp.Table view of the world's current routes without
// going through MRT bytes (tests use this; production flows load MRT).
// Per-peer visibility matches what the MRT rendering produces: a route
// contributes one announcement per vantage point carrying it.
func (w *World) Table() *bgp.Table {
	var t bgp.Table
	for _, r := range w.Routes {
		vis := r.Visibility
		if vis <= 0 || vis > len(w.Peers) {
			vis = len(w.Peers)
		}
		for _, o := range r.Path.Origins() {
			for v := 0; v < vis; v++ {
				t.AddRoute(r.Prefix, o)
			}
		}
	}
	return &t
}

// Pipeline wires the in-memory world into an inference pipeline.
func (w *World) Pipeline() *core.Pipeline {
	return &core.Pipeline{Whois: w.Whois, Table: w.Table(), Rel: w.Rel, Orgs: w.Orgs}
}
