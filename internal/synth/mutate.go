package synth

import (
	"math/rand"
	"sort"

	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

// MutateConfig controls the synthesis of a churned successor epoch from
// a generated world, for exercising and benchmarking the incremental
// reload path against realistic month-over-month churn.
type MutateConfig struct {
	// Seed drives the mutation stream; the same (world, config) pair
	// always yields the same successor epoch.
	Seed int64
	// Churn is the fraction of each mutable entity class touched:
	// non-portable leaf allocations (removed, split into two new
	// allocations, or transferred to another holder), portable root
	// allocations (transferred), organisation objects (renamed), RIB
	// routes (origin flipped), and ROAs in the latest RPKI snapshot
	// (rotated to another origin). AS-to-organisation reassignments are
	// applied at a tenth of the rate, because each one dirties every
	// allocation its ASN touches.
	Churn float64
}

// MutateStats counts the mutations one Mutate call applied.
type MutateStats struct {
	LeavesRemoved    int
	LeavesSplit      int
	LeavesMoved      int
	RootsTransferred int
	OrgsRenamed      int
	OriginFlips      int
	ROARotations     int
	ASNsReassigned   int
}

// Total sums all mutation counts.
func (s *MutateStats) Total() int {
	return s.LeavesRemoved + s.LeavesSplit + s.LeavesMoved + s.RootsTransferred +
		s.OrgsRenamed + s.OriginFlips + s.ROARotations + s.ASNsReassigned
}

// Mutate perturbs a generated world in place into a plausible successor
// epoch: the same Internet one registry-and-RIB refresh later. Every
// mutation class draws from entities the world already has (transfers
// go to existing holders, origin flips to ASNs that already originate
// routes), so the successor stays internally consistent and loads
// cleanly. Deterministic for a fixed (world, config) pair.
func Mutate(w *World, mc MutateConfig) *MutateStats {
	rng := rand.New(rand.NewSource(mc.Seed))
	st := &MutateStats{}
	if mc.Churn <= 0 {
		return st
	}
	origins := originPool(w)
	for _, reg := range whois.Registries {
		db := w.Whois.DBs[reg]
		if db == nil {
			continue
		}
		mutateRegistry(db, rng, mc.Churn, st)
		db.Reindex()
	}
	mutateRoutes(w, rng, mc.Churn, origins, st)
	mutateROAs(w, rng, mc.Churn, origins, st)
	mutateAS2Org(w, rng, mc.Churn/10, st)
	return st
}

// originPool collects the distinct origin ASNs of the world's routes,
// sorted for deterministic picking.
func originPool(w *World) []uint32 {
	seen := make(map[uint32]bool)
	for _, r := range w.Routes {
		for _, o := range r.Path.Origins() {
			seen[o] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pickOther returns a pool element different from cur, or cur when the
// pool has no alternative.
func pickOther[T comparable](rng *rand.Rand, pool []T, cur T) T {
	if len(pool) < 2 {
		return cur
	}
	for tries := 0; tries < 8; tries++ {
		if v := pool[rng.Intn(len(pool))]; v != cur {
			return v
		}
	}
	return cur
}

// mutateRegistry churns one registry's WHOIS objects: leaf allocations
// are removed, split into two sub-allocations, or moved to another
// holder; root allocations are transferred; organisations are renamed.
func mutateRegistry(db *whois.Database, rng *rand.Rand, churn float64, st *MutateStats) {
	orgIDs := make([]string, 0, len(db.Orgs))
	for _, o := range db.Orgs {
		orgIDs = append(orgIDs, o.ID)
	}
	next := make([]*whois.InetNum, 0, len(db.InetNums))
	for _, in := range db.InetNums {
		if rng.Float64() >= churn {
			next = append(next, in)
			continue
		}
		if in.Portability == whois.Portable {
			// Root allocation: transfer to another registered holder
			// (the paper's §2 ownership-transfer case, as opposed to a
			// lease).
			if to := pickOther(rng, orgIDs, in.OrgID); to != in.OrgID {
				in.OrgID = to
				st.RootsTransferred++
			}
			next = append(next, in)
			continue
		}
		switch rng.Intn(3) {
		case 0: // deallocated
			st.LeavesRemoved++
		case 1: // split into two new sub-allocations
			if in.Range.Last > in.Range.First {
				mid := in.Range.First + (in.Range.Last-in.Range.First)/2
				a, b := *in, *in
				a.Range = netutil.Range{First: in.Range.First, Last: mid}
				a.NetName = in.NetName + "-A"
				b.Range = netutil.Range{First: mid + 1, Last: in.Range.Last}
				b.NetName = in.NetName + "-B"
				next = append(next, &a, &b)
				st.LeavesSplit++
			} else {
				next = append(next, in)
			}
		default: // re-assigned to another customer organisation
			if to := pickOther(rng, orgIDs, in.OrgID); to != in.OrgID {
				in.OrgID = to
				st.LeavesMoved++
			}
			next = append(next, in)
		}
	}
	db.InetNums = next
	for _, o := range db.Orgs {
		if rng.Float64() < churn {
			o.Name = o.Name + " Ltd"
			st.OrgsRenamed++
		}
	}
}

// mutateRoutes flips the origin of a churn fraction of routes to
// another ASN that already originates routes somewhere.
func mutateRoutes(w *World, rng *rand.Rand, churn float64, origins []uint32, st *MutateStats) {
	for i := range w.Routes {
		if rng.Float64() >= churn {
			continue
		}
		path := w.Routes[i].Path
		if len(path) == 0 {
			continue
		}
		last := &path[len(path)-1]
		if len(last.ASNs) == 0 {
			continue
		}
		cur := last.ASNs[len(last.ASNs)-1]
		if to := pickOther(rng, origins, cur); to != cur {
			// Copy-on-write: generated paths share backing arrays.
			asns := append([]uint32(nil), last.ASNs...)
			asns[len(asns)-1] = to
			last.ASNs = asns
			st.OriginFlips++
		}
	}
}

// mutateROAs rotates a churn fraction of the latest snapshot's VRPs to
// another origin ASN.
func mutateROAs(w *World, rng *rand.Rand, churn float64, origins []uint32, st *MutateStats) {
	if w.RPKI == nil || len(w.RPKI.Snapshots) == 0 {
		return
	}
	snap := &w.RPKI.Snapshots[len(w.RPKI.Snapshots)-1]
	for i := range snap.VRPs {
		if rng.Float64() >= churn {
			continue
		}
		if to := pickOther(rng, origins, snap.VRPs[i].ASN); to != snap.VRPs[i].ASN {
			snap.VRPs[i].ASN = to
			st.ROARotations++
		}
	}
}

// mutateAS2Org reassigns a fraction of mapped ASNs to the organisation
// of another mapped ASN.
func mutateAS2Org(w *World, rng *rand.Rand, rate float64, st *MutateStats) {
	if w.Orgs == nil || rate <= 0 {
		return
	}
	asns := w.Orgs.ASNs()
	for _, asn := range asns {
		if rng.Float64() >= rate {
			continue
		}
		cur, _ := w.Orgs.OrgOf(asn)
		donor := asns[rng.Intn(len(asns))]
		if org, ok := w.Orgs.OrgOf(donor); ok && org != cur {
			w.Orgs.AddAS(asn, org)
			st.ASNsReassigned++
		}
	}
}
