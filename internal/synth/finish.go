package synth

import (
	"fmt"
	"time"

	"ipleasing/internal/hijack"
	"ipleasing/internal/netutil"
	"ipleasing/internal/rpki"
	"ipleasing/internal/spamhaus"
	"ipleasing/internal/whois"
)

// timelineASNs is the Figure-3 cast: the sequence of lessee origin ASNs
// over the studied prefix's two-year history (the paper's y-axis lists
// 834, 8100, 61317, 212384, 211975 and 1239, with AS0 between leases).
var timelineASNs = []uint32{834, 8100, 61317, 212384, 1239}

// timelineSecondROA is the second ASN simultaneously authorised during
// the fourth lease (the figure shows 211975 alongside 212384).
const timelineSecondROA uint32 = 211975

// generateFiller announces the rest of the synthetic Internet: prefixes
// outside the registry bands whose only role is to give the BGP table a
// realistic denominator, with the paper's non-leased abuse mix.
func (g *gen) generateFiller() {
	ab := g.cfg.abuse()
	totalLeased := len(g.leased)
	target := int(float64(totalLeased)/g.cfg.leasedShare()+0.5) - len(g.w.Routes)
	if target < 100 {
		target = 100
	}

	// Eyeball/enterprise ASes announcing the filler.
	nEyeball := target / 80
	if nEyeball < 20 {
		nEyeball = 20
	}
	eyeballs := make([]uint32, 0, nEyeball)
	for i := 0; i < nEyeball; i++ {
		a := g.asn()
		orgID := fmt.Sprintf("ORG-EYE-%d", i)
		g.w.Orgs.AddAS(a, orgID)
		g.w.Orgs.AddOrg(orgID, fmt.Sprintf("Eyeball Network %d", i), g.country())
		g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], a)
		eyeballs = append(eyeballs, a)
	}

	// Abuse rates among non-leased prefixes apply to the whole non-leased
	// population; the already-planted registry prefixes are nearly clean,
	// so the filler carries a correspondingly higher rate.
	nonLeasedTotal := float64(len(g.nonleased) + target)
	pHijack := ab.NonLeasedHijackerShare * nonLeasedTotal / float64(target)
	pDrop := ab.NonLeasedDropShare * nonLeasedTotal / float64(target)

	cursor := uint32(fillerFirstOctet) << 24
	var dropAcc, hijAcc float64
	for i := 0; i < target; i++ {
		length := uint8(24)
		switch g.rng.Intn(10) {
		case 0:
			length = 20
		case 1, 2:
			length = 22
		case 3, 4:
			length = 23
		}
		size := uint32(1) << (32 - length)
		if rem := cursor % size; rem != 0 {
			cursor += size - rem
		}
		p := netutil.Prefix{Base: netutil.Addr(cursor), Len: length}
		cursor += size

		origin := eyeballs[g.rng.Intn(len(eyeballs))]
		if dropAcc += pDrop; dropAcc >= 1 && len(g.hostDrop) > 0 {
			dropAcc--
			origin = g.hostDrop[g.rng.Intn(len(g.hostDrop))]
		} else if hijAcc += pHijack; hijAcc >= 1 && len(g.hostHijack) > 0 {
			hijAcc--
			origin = g.hostHijack[g.rng.Intn(len(g.hostHijack))]
		}
		g.announce(p, origin)
		g.nonleased = append(g.nonleased, routeInfo{prefix: p, origin: origin})
	}
}

// generateTimeline builds the Figure-3 lease history for the dedicated
// IPXO prefix: alternating lessee origins with AS0 ROAs between leases.
func (g *gen) generateTimeline() {
	p := g.timelinePrefix
	if p == (netutil.Prefix{}) {
		return
	}
	// Give the timeline ASNs identities and connectivity.
	names := map[uint32]string{
		834:    "First Lessee Telecom",
		8100:   "QuadraNet Enterprises",
		61317:  "Hivelocity Inc",
		212384: "Fourth Lessee Networks",
		211975: "Fourth Lessee Backup",
		1239:   "Sprint Legacy Services",
	}
	for asn, name := range names {
		orgID := fmt.Sprintf("ORG-TL-%d", asn)
		g.w.Orgs.AddAS(asn, orgID)
		g.w.Orgs.AddOrg(orgID, name, g.country())
		g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], asn)
	}

	tl := &Timeline{Prefix: p}
	start := time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
	// Lease schedule in months since start: [from, to) per lessee, with
	// one-month AS0 gaps between leases.
	type period struct {
		from, to int
		asn      uint32
		extraROA uint32
	}
	periods := []period{
		{0, 5, timelineASNs[0], 0},
		{6, 11, timelineASNs[1], 0},
		{12, 17, timelineASNs[2], 0},
		{18, 22, timelineASNs[3], timelineSecondROA},
		{23, 25, timelineASNs[4], 0},
	}
	for m := 0; m < 25; m++ {
		pt := TimelinePoint{Time: start.AddDate(0, m, 0)}
		inLease := false
		for _, pd := range periods {
			if m >= pd.from && m < pd.to {
				inLease = true
				pt.Origins = []uint32{pd.asn}
				pt.ROAASNs = []uint32{pd.asn}
				if pd.extraROA != 0 {
					pt.ROAASNs = append(pt.ROAASNs, pd.extraROA)
				}
			}
		}
		if !inLease {
			// Between leases IPXO parks the prefix behind an AS0 ROA
			// (§6.5) and withdraws it from BGP.
			pt.ROAASNs = []uint32{0}
		}
		tl.Points = append(tl.Points, pt)
	}
	g.w.Timeline = tl
}

// generateAbuseLists builds the Spamhaus ASN-DROP monthly archive and the
// serial-hijacker list.
func (g *gen) generateAbuseLists() {
	s := g.cfg.scale()
	ab := g.cfg.abuse()

	// Serial hijackers: the active hijacker originators plus dormant
	// entries to reach the scaled list size.
	hj := append([]uint32(nil), g.hostHijack...)
	for len(hj) < scaleCount(ab.Hijackers, s) {
		hj = append(hj, g.asn())
	}
	g.w.Hijackers = hijack.New(hj)

	// ASN-DROP: all DROP-listed originators plus churny extras, four
	// monthly snapshots (February through May 2024).
	base := append([]uint32(nil), g.hostDrop...)
	for len(base) < scaleCount(ab.DropASNs, s) {
		base = append(base, g.asn())
	}
	arch := &spamhaus.Archive{}
	months := []time.Month{time.February, time.March, time.April, time.May}
	for mi, m := range months {
		entries := make([]spamhaus.Entry, 0, len(base)+2)
		for _, a := range base {
			entries = append(entries, spamhaus.Entry{
				ASN: a, RIR: "ripencc", CC: g.countries[int(a)%len(g.countries)],
				ASName: fmt.Sprintf("DROPPED-%d", a),
			})
		}
		// Month-over-month churn: each month one fresh entry appears.
		for extra := 0; extra <= mi; extra++ {
			entries = append(entries, spamhaus.Entry{
				ASN: 4000000 + uint32(extra), RIR: "arin", ASName: fmt.Sprintf("CHURN-%d", extra),
			})
		}
		arch.Add(2024, m, spamhaus.NewList(entries))
	}
	g.w.Drop = arch
	g.dropListed = make(map[uint32]bool, len(base))
	for _, a := range base {
		g.dropListed[a] = true
	}
}

// generateRPKI builds the April VRP snapshots: coverage and blocklisted-
// ASN shares per the paper's §6.4, plus the timeline prefix's current ROA.
func (g *gen) generateRPKI() {
	ab := g.cfg.abuse()
	taFor := func(p netutil.Prefix) string {
		oct := uint32(p.Base) >> 24
		for reg, first := range registryFirstOctet {
			if oct >= first && oct < first+16 {
				switch reg {
				case whois.RIPE:
					return "ripe"
				case whois.ARIN:
					return "arin"
				case whois.APNIC:
					return "apnic"
				case whois.AFRINIC:
					return "afrinic"
				case whois.LACNIC:
					return "lacnic"
				}
			}
		}
		return "ripe"
	}
	dropASNs := make([]uint32, 0, len(g.dropListed))
	for a := range g.dropListed {
		dropASNs = append(dropASNs, a)
	}

	var vrps []rpki.VRP
	emit := func(ri routeInfo, coverShare, extraBadShare float64) {
		if g.rng.Float64() >= coverShare {
			return
		}
		asn := ri.origin
		// Blocklisted origins already produce blocklisted ROAs; the
		// extra share covers holders who signed ROAs for abusive
		// lessees that never (or no longer) announce.
		if !g.dropListed[asn] && g.rng.Float64() < extraBadShare && len(dropASNs) > 0 {
			asn = dropASNs[g.rng.Intn(len(dropASNs))]
		}
		vrps = append(vrps, rpki.VRP{
			ASN: asn, Prefix: ri.prefix, MaxLen: ri.prefix.Len, TA: taFor(ri.prefix),
		})
	}
	leasedExtra := ab.LeasedROABadShare - ab.LeasedDropShare
	if leasedExtra < 0 {
		leasedExtra = 0
	}
	nonLeasedExtra := ab.NonLeasedROABadShare - ab.NonLeasedDropShare
	if nonLeasedExtra < 0 {
		nonLeasedExtra = 0
	}
	for _, ri := range g.leased {
		emit(ri, ab.LeasedROAShare, leasedExtra)
	}
	for _, ri := range g.nonleased {
		emit(ri, ab.NonLeasedROAShare, nonLeasedExtra)
	}

	// The archive window carries churn, like the paper's two weeks of
	// 30-minute snapshots: some ROAs only appear later in the window
	// (leases whose holders signed late — the reason the paper uses a
	// window at all), and a few early ROAs are withdrawn mid-window
	// (ended leases). The abuse analysis consumes the window's union.
	late := len(vrps) / 20  // ~5% appear only from the second snapshot on
	early := len(vrps) / 40 // ~2.5% disappear after the second snapshot
	if late+early > len(vrps) {
		late, early = 0, 0
	}
	stable := vrps[:len(vrps)-late-early]
	lateVRPs := vrps[len(vrps)-late-early : len(vrps)-early]
	earlyVRPs := vrps[len(vrps)-early:]

	snapshotVRPs := func(withLate, withEarly bool) []rpki.VRP {
		out := append([]rpki.VRP(nil), stable...)
		if withLate {
			out = append(out, lateVRPs...)
		}
		if withEarly {
			out = append(out, earlyVRPs...)
		}
		return out
	}
	arch := &rpki.Archive{}
	arch.Add(rpki.Snapshot{Time: g.w.SnapshotTime, VRPs: snapshotVRPs(false, true)})
	arch.Add(rpki.Snapshot{Time: g.w.SnapshotTime.Add(30 * time.Minute), VRPs: snapshotVRPs(true, true)})
	arch.Add(rpki.Snapshot{Time: g.w.SnapshotTime.AddDate(0, 0, 7), VRPs: snapshotVRPs(true, false)})
	arch.Add(rpki.Snapshot{Time: g.w.SnapshotTime.AddDate(0, 0, 14), VRPs: snapshotVRPs(true, false)})
	g.w.RPKI = arch
	g.w.EvalISPs = g.cfg.evalISPs()
}
