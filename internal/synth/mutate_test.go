package synth

import (
	"testing"

	"ipleasing/internal/whois"
)

func TestMutateDeterministic(t *testing.T) {
	// Two identically seeded mutation runs over identically generated
	// worlds must apply identical mutation streams: the stats must
	// match, and so must the per-registry object counts and every
	// route origin.
	mc := MutateConfig{Seed: 3, Churn: 0.05}
	w1 := Generate(Config{Seed: 9, Scale: 0.004})
	w2 := Generate(Config{Seed: 9, Scale: 0.004})
	st1 := Mutate(w1, mc)
	st2 := Mutate(w2, mc)
	if *st1 != *st2 {
		t.Fatalf("mutation stats diverged:\n%+v\n%+v", st1, st2)
	}
	if st1.Total() == 0 {
		t.Fatal("5% churn applied no mutations")
	}
	for _, reg := range whois.Registries {
		n1, n2 := len(w1.Whois.DBs[reg].InetNums), len(w2.Whois.DBs[reg].InetNums)
		if n1 != n2 {
			t.Errorf("%v: InetNum count %d != %d", reg, n1, n2)
		}
	}
	if len(w1.Routes) != len(w2.Routes) {
		t.Fatalf("route count %d != %d", len(w1.Routes), len(w2.Routes))
	}
	for i := range w1.Routes {
		o1, o2 := w1.Routes[i].Path.Origins(), w2.Routes[i].Path.Origins()
		if len(o1) != len(o2) {
			t.Fatalf("route %d origin count diverged", i)
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("route %d origin diverged: %d != %d", i, o1[j], o2[j])
			}
		}
	}
}

func TestMutateZeroChurnIsNoop(t *testing.T) {
	w := Generate(Config{Seed: 9, Scale: 0.004})
	before := len(w.Routes)
	var counts [5]int
	for i, reg := range whois.Registries {
		counts[i] = len(w.Whois.DBs[reg].InetNums)
	}
	st := Mutate(w, MutateConfig{Seed: 1, Churn: 0})
	if st.Total() != 0 {
		t.Fatalf("zero churn mutated: %+v", st)
	}
	if len(w.Routes) != before {
		t.Fatal("zero churn changed routes")
	}
	for i, reg := range whois.Registries {
		if len(w.Whois.DBs[reg].InetNums) != counts[i] {
			t.Fatalf("%v: zero churn changed InetNums", reg)
		}
	}
}

func TestMutateTouchesEveryClass(t *testing.T) {
	// At a heavy churn rate every mutation class must fire at least
	// once on a reasonably sized world — a regression guard against a
	// class silently dropping out of the stream.
	w := Generate(Config{Seed: 4, Scale: 0.01})
	st := Mutate(w, MutateConfig{Seed: 2, Churn: 0.5})
	if st.LeavesRemoved == 0 || st.LeavesSplit == 0 || st.LeavesMoved == 0 {
		t.Errorf("leaf churn incomplete: %+v", st)
	}
	if st.RootsTransferred == 0 || st.OrgsRenamed == 0 {
		t.Errorf("holder churn incomplete: %+v", st)
	}
	if st.OriginFlips == 0 || st.ROARotations == 0 || st.ASNsReassigned == 0 {
		t.Errorf("routing/ROA churn incomplete: %+v", st)
	}
}
