package synth

import (
	"testing"

	"ipleasing/internal/core"
	"ipleasing/internal/whois"
)

// TestConfigOverrides: custom Table-1 shapes and top holders flow through
// generation and come back out of the inference.
func TestConfigOverrides(t *testing.T) {
	cfg := Config{
		Seed:  5,
		Scale: 1, // counts below are literal
		Table1: map[whois.Registry]Table1Cell{
			whois.RIPE:    {Unused: 10, Aggregated: 20, ISPCust: 5, Leased3: 30, Delegated: 8, Leased4: 4},
			whois.ARIN:    {Leased3: 2},
			whois.APNIC:   {},
			whois.AFRINIC: {},
			whois.LACNIC:  {},
		},
		TopHolders: map[whois.Registry][]TopHolder{
			whois.RIPE: {{Name: "Mega Lessor Inc", Leases: 12}},
		},
		EvalISPs: []EvalISP{},
		Eval: &EvalShape{
			RIPEBrokersExact: 3, RIPEBrokersFuzzy: 1, RIPEBrokersAbsent: 1,
			ActiveLeases: 8, InactiveLeases: 2, LegacyLeases: 1, BrokerISPPrefixes: 2,
		},
		Months: -1, // longitudinal disabled
	}
	w := Generate(cfg)
	if len(w.Market) != 0 {
		t.Fatal("Months=-1 still generated market data")
	}
	res := w.Pipeline().Infer()
	rr := res.Regions[whois.RIPE]
	// +1 leased-3 for the timeline prefix's budget slot is taken from
	// the configured 30, so the inferred counts match the cells exactly.
	if got := rr.Counts[core.LeasedNoRootOrigin]; got != 30 {
		t.Errorf("leased-3 = %d, want 30", got)
	}
	if got := rr.Counts[core.LeasedWithRootOrigin]; got != 4 {
		t.Errorf("leased-4 = %d, want 4", got)
	}
	if got := rr.Counts[core.AggregatedCustomer]; got != 20 {
		t.Errorf("aggregated = %d, want 20", got)
	}
	if got := res.Regions[whois.ARIN].Leased(); got != 2 {
		t.Errorf("ARIN leased = %d, want 2", got)
	}
	// The custom top holder dominates.
	holders := make(map[string]int)
	for _, inf := range rr.Inferences {
		if inf.Category.Leased() {
			holders[inf.HolderOrg]++
		}
	}
	db := w.Whois.DB(whois.RIPE)
	best, bestN := "", 0
	for org, n := range holders {
		if n > bestN {
			best, bestN = org, n
		}
	}
	org, ok := db.OrgByID(best)
	if !ok || org.Name != "Mega Lessor Inc" {
		t.Errorf("top holder = %q (%d leases)", org.Name, bestN)
	}
}

// TestLeasedShareOverride: the filler sizing honours a custom target.
func TestLeasedShareOverride(t *testing.T) {
	w := Generate(Config{Seed: 6, Scale: 0.005, LeasedBGPShare: 0.10})
	res := w.Pipeline().Infer()
	share := res.LeasedShareOfBGP()
	if share < 0.07 || share > 0.14 {
		t.Fatalf("leased share = %.3f, want ~0.10", share)
	}
}
