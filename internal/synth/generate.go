package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ipleasing/internal/as2org"
	"ipleasing/internal/asrel"
	"ipleasing/internal/bgp"
	"ipleasing/internal/brokers"
	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

// registryFirstOctet maps each registry to a disjoint band of /8s the
// generator carves allocations from. Filler (non-registry) announcements
// use octets outside every band so they never cover registered blocks.
var registryFirstOctet = map[whois.Registry]uint32{
	whois.RIPE:    80,  // 80.0.0.0 – 95.255.255.255
	whois.ARIN:    60,  // 60 – 75
	whois.APNIC:   100, // 100 – 115
	whois.AFRINIC: 40,  // 40 – 55
	whois.LACNIC:  176, // 176 – 191
}

const fillerFirstOctet = 120 // 120 – 170: filler band

// rootPrefixLen is the size of generated root allocations: a /18 holds up
// to 64 /24 leaves.
const rootPrefixLen = 8 + 10 // /18

// rootCapacity leaves head-room inside each /18 so leaf placement never
// overflows.
const rootCapacity = 56

// statusFor returns the registry-native status string for a portability
// class, so generated dumps read like real ones.
func statusFor(reg whois.Registry, p whois.Portability) string {
	switch reg {
	case whois.RIPE, whois.AFRINIC:
		if p == whois.Portable {
			return "ALLOCATED PA"
		}
		return "ASSIGNED PA"
	case whois.APNIC:
		if p == whois.Portable {
			return "ALLOCATED PORTABLE"
		}
		return "ASSIGNED NON-PORTABLE"
	case whois.ARIN:
		if p == whois.Portable {
			return "Direct Allocation"
		}
		return "Reassignment"
	case whois.LACNIC:
		if p == whois.Portable {
			return "allocated"
		}
		return "reassigned"
	}
	return "ALLOCATED PA"
}

// gen holds generator state.
type gen struct {
	cfg Config
	rng *rand.Rand
	w   *World

	nextASN    uint32
	addrCursor map[whois.Registry]uint32

	tier1    []uint32
	transits map[whois.Registry][]uint32

	// lease-originator pools (global, like real hosting companies).
	hostNormal  *weighted // ordinary hosting ASes
	hostHijack  []uint32  // serial-hijacker originators
	hostDrop    []uint32  // ASN-DROP-listed originators
	hijackerSet map[uint32]bool
	dropSet     map[uint32]bool

	// per-registry facilitator maintainer handles, lease-weighted.
	// brokerFac handles belong to registered brokers (their prefixes
	// form the evaluation positives); otherFac handles do not.
	brokerFac map[whois.Registry]*weightedStr
	otherFac  map[whois.Registry]*weightedStr
	brokerMnt map[whois.Registry]map[string]bool

	// countries for flavour.
	countries []string

	// bookkeeping for the RPKI / abuse phases.
	leased         []routeInfo // inferred-leased announced prefixes
	nonleased      []routeInfo // all other announced prefixes
	evalISPMnts    []string
	timelinePrefix netutil.Prefix
	dropListed     map[uint32]bool
	siblingASN     map[string]uint32
	custMntSeq     int
	// error-diffusion accumulators for the abuse mixes.
	dropAcc, hijAcc float64

	// per-holder lazily created customer ASes.
	custASN map[string][]uint32

	// remaining broker-managed active-lease budget per registry.
	brokerBudget map[whois.Registry]int

	orgSeq int
}

// weighted is a weighted ASN picker.
type weighted struct {
	asns    []uint32
	cum     []int
	totalWt int
}

func newWeighted() *weighted { return &weighted{} }

func (w *weighted) add(asn uint32, wt int) {
	w.totalWt += wt
	w.asns = append(w.asns, asn)
	w.cum = append(w.cum, w.totalWt)
}

func (w *weighted) pick(rng *rand.Rand) uint32 {
	if w.totalWt == 0 {
		panic("synth: empty weighted picker")
	}
	x := rng.Intn(w.totalWt)
	i := sort.SearchInts(w.cum, x+1)
	return w.asns[i]
}

// weightedStr is a weighted string picker.
type weightedStr struct {
	vals    []string
	cum     []int
	totalWt int
}

func (w *weightedStr) add(v string, wt int) {
	w.totalWt += wt
	w.vals = append(w.vals, v)
	w.cum = append(w.cum, w.totalWt)
}

func (w *weightedStr) pick(rng *rand.Rand) string {
	x := rng.Intn(w.totalWt)
	i := sort.SearchInts(w.cum, x+1)
	return w.vals[i]
}

// Generate builds a complete synthetic world from cfg.
func Generate(cfg Config) *World {
	g := &gen{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed + 1)),
		nextASN:      100000,
		addrCursor:   make(map[whois.Registry]uint32),
		transits:     make(map[whois.Registry][]uint32),
		hijackerSet:  make(map[uint32]bool),
		dropSet:      make(map[uint32]bool),
		brokerFac:    make(map[whois.Registry]*weightedStr),
		otherFac:     make(map[whois.Registry]*weightedStr),
		brokerMnt:    make(map[whois.Registry]map[string]bool),
		custASN:      make(map[string][]uint32),
		siblingASN:   make(map[string]uint32),
		brokerBudget: make(map[whois.Registry]int),
		countries:    []string{"US", "DE", "GB", "NL", "SE", "FR", "JP", "SG", "BR", "ZA", "AE", "CY", "PA", "RU", "CN", "TN", "CR"},
	}
	g.w = &World{
		Cfg:          cfg,
		Whois:        whois.NewDataset(),
		Rel:          asrel.New(),
		Orgs:         as2org.New(),
		SnapshotTime: time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC),
	}
	for _, reg := range whois.Registries {
		g.addrCursor[reg] = registryFirstOctet[reg] << 24
	}

	g.buildBackbone()
	g.buildOriginatorPools()
	g.buildBrokersAndFacilitators()
	for _, reg := range whois.Registries {
		g.generateRegistry(reg)
	}
	g.generateFiller()
	g.generateTimeline()
	g.generateAbuseLists()
	g.generateRPKI()
	g.generateGeo()
	g.generateMarket()
	g.generateMntners()

	for _, reg := range whois.Registries {
		g.w.Whois.DB(reg).Reindex()
	}
	return g.w
}

// generateMntners backfills maintainer objects for every handle the RPSL
// registries reference, as a real dump would contain.
func (g *gen) generateMntners() {
	for _, reg := range []whois.Registry{whois.RIPE, whois.APNIC, whois.AFRINIC} {
		db := g.w.Whois.DB(reg)
		seen := make(map[string]bool)
		add := func(handle string) {
			if handle == "" || seen[handle] {
				return
			}
			seen[handle] = true
			db.Mntners = append(db.Mntners, &whois.Mntner{
				Registry: reg, Handle: handle, Descr: "maintainer " + handle,
			})
		}
		for _, inet := range db.InetNums {
			for _, m := range inet.MntBy {
				add(m)
			}
		}
		for _, org := range db.Orgs {
			for _, m := range org.MntRef {
				add(m)
			}
		}
	}
}

func (g *gen) asn() uint32 {
	a := g.nextASN
	g.nextASN++
	return a
}

func (g *gen) country() string {
	return g.countries[g.rng.Intn(len(g.countries))]
}

// allocBlock carves the next block of the given length from a registry's
// address band.
func (g *gen) allocBlock(reg whois.Registry, length uint8) netutil.Prefix {
	size := uint32(1) << (32 - length)
	cur := g.addrCursor[reg]
	if rem := cur % size; rem != 0 {
		cur += size - rem
	}
	g.addrCursor[reg] = cur + size
	return netutil.Prefix{Base: netutil.Addr(cur), Len: length}
}

// buildBackbone creates the tier-1 clique, per-registry transit ASes, and
// the collector vantage points.
func (g *gen) buildBackbone() {
	for i := 0; i < 8; i++ {
		a := g.asn()
		g.tier1 = append(g.tier1, a)
		g.w.Orgs.AddAS(a, fmt.Sprintf("ORG-T1-%d", i))
		g.w.Orgs.AddOrg(fmt.Sprintf("ORG-T1-%d", i), fmt.Sprintf("Tier One Backbone %d", i), "US")
	}
	for i := 0; i < len(g.tier1); i++ {
		for j := i + 1; j < len(g.tier1); j++ {
			g.w.Rel.AddP2P(g.tier1[i], g.tier1[j])
		}
	}
	for _, reg := range whois.Registries {
		for i := 0; i < 4; i++ {
			a := g.asn()
			g.transits[reg] = append(g.transits[reg], a)
			g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], a)
			g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], a)
			orgID := fmt.Sprintf("ORG-TR-%s-%d", reg, i)
			g.w.Orgs.AddAS(a, orgID)
			g.w.Orgs.AddOrg(orgID, fmt.Sprintf("%s Transit %d", reg, i), g.country())
		}
	}
	// Three vantage points on distinct tier-1s, like a real collector.
	for i := 0; i < 3; i++ {
		g.w.Peers = append(g.w.Peers, mrt.Peer{
			BGPID: uint32(i + 1),
			Addr:  netutil.Addr(0xC6336401 + uint32(i)), // 198.51.100.x
			AS:    g.tier1[i],
		})
	}
}

// attach gives asn a transit provider in reg and returns the AS path tail
// (transit, asn).
func (g *gen) attach(reg whois.Registry, asn uint32) {
	tr := g.transits[reg][g.rng.Intn(len(g.transits[reg]))]
	g.w.Rel.AddP2C(tr, asn)
}

// pathTo builds a valley-free AS path from a vantage point to origin by
// climbing the origin's real provider chain to a tier-1, then crossing
// the tier-1 peering mesh to the vantage point if needed. Paths therefore
// only traverse edges that exist in the relationship graph, as real
// routing policy would produce.
func (g *gen) pathTo(origin uint32) mrt.ASPath {
	chain := []uint32{origin}
	cur := origin
	for depth := 0; depth < 6; depth++ {
		provs := g.w.Rel.Providers(cur)
		if len(provs) == 0 {
			break
		}
		cur = provs[g.rng.Intn(len(provs))]
		chain = append(chain, cur)
	}
	// Reverse into top-down order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	vantage := g.tier1[g.rng.Intn(len(g.tier1))]
	if chain[0] != vantage {
		chain = append([]uint32{vantage}, chain...)
	}
	return mrt.NewASPathSequence(chain...)
}

// announce adds a route for p originated by origin. Most routes reach
// every vantage point; roughly one in twelve is carried by a single peer
// only, modelling the collection bias of §7 ("Incomplete BGP Data") that
// the MinVisibility sensitivity study probes.
func (g *gen) announce(p netutil.Prefix, origin uint32) {
	vis := 0 // all peers
	if g.rng.Intn(12) == 0 {
		vis = 1
	}
	g.w.Routes = append(g.w.Routes, bgp.Route{Prefix: p, Path: g.pathTo(origin), Visibility: vis})
}

// buildOriginatorPools creates the global lease-originator (hosting)
// ecosystem, split into normal, serial-hijacker, and ASN-DROP pools.
func (g *gen) buildOriginatorPools() {
	s := g.cfg.scale()
	ab := g.cfg.abuse()
	totalLeases := 0
	for _, cell := range g.cfg.table1() {
		totalLeases += scaleCount(cell.Leased(), s)
	}
	poolSize := totalLeases / 5
	if poolSize < 12 {
		poolSize = 12
	}
	nHijack := int(float64(poolSize)*ab.HijackerOriginatorShare + 0.5)
	if nHijack < 2 {
		nHijack = 2
	}
	nDrop := nHijack / 2
	if nDrop < 2 {
		nDrop = 2
	}

	g.hostNormal = newWeighted()
	// The three named top originators get heavy weight (§6.3).
	for _, t := range TopOriginatorNames {
		orgID := "ORG-HOST-" + t.Name
		g.w.Orgs.AddAS(t.ASN, orgID)
		g.w.Orgs.AddOrg(orgID, t.Name, g.country())
		g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], t.ASN)
		g.hostNormal.add(t.ASN, 60)
	}
	for i := 0; i < poolSize; i++ {
		a := g.asn()
		orgID := fmt.Sprintf("ORG-HOST-%d", i)
		g.w.Orgs.AddAS(a, orgID)
		g.w.Orgs.AddOrg(orgID, fmt.Sprintf("Hosting Provider %d", i), g.country())
		g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], a)
		// Zipf-flavoured weights: a few mid-size hosts, a long tail.
		g.hostNormal.add(a, 1+60/(i+3))
	}
	for i := 0; i < nHijack; i++ {
		a := g.asn()
		g.hostHijack = append(g.hostHijack, a)
		g.hijackerSet[a] = true
		orgID := fmt.Sprintf("ORG-HJ-%d", i)
		g.w.Orgs.AddAS(a, orgID)
		g.w.Orgs.AddOrg(orgID, fmt.Sprintf("Bulletproof Routing %d", i), g.country())
		g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], a)
	}
	for i := 0; i < nDrop; i++ {
		a := g.asn()
		g.hostDrop = append(g.hostDrop, a)
		g.dropSet[a] = true
		orgID := fmt.Sprintf("ORG-DROP-%d", i)
		g.w.Orgs.AddAS(a, orgID)
		g.w.Orgs.AddOrg(orgID, fmt.Sprintf("Spam Operations %d", i), g.country())
		g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], a)
	}
}

// pickLeaseOriginator draws the origin AS for a leased prefix with the
// paper's abuse mix: 13.3% hijackers, 1.1% DROP-listed, rest normal.
// Error-diffusion accumulators keep the realised shares tight around the
// targets even in small worlds.
func (g *gen) pickLeaseOriginator() uint32 {
	ab := g.cfg.abuse()
	g.dropAcc += ab.LeasedDropShare
	if g.dropAcc >= 1 {
		g.dropAcc--
		return g.hostDrop[g.rng.Intn(len(g.hostDrop))]
	}
	g.hijAcc += ab.LeasedHijackerShare
	if g.hijAcc >= 1 {
		g.hijAcc--
		return g.hostHijack[g.rng.Intn(len(g.hostHijack))]
	}
	return g.hostNormal.pick(g.rng)
}

// brokerName fabricates the i-th registered broker's published name.
func brokerName(reg whois.Registry, i int) string {
	return fmt.Sprintf("%s Address Brokerage %d Ltd", reg, i)
}

// buildBrokersAndFacilitators creates the registered-broker lists, their
// WHOIS organisation objects (exact / fuzzy / absent, per §6.2), and the
// per-registry facilitator maintainer pools used on leased prefixes.
//
// Leased prefixes draw maintainers from two disjoint pools: broker
// handles (counted against the evaluation-positive budget, IPXO-heavy so
// IPXO tops the facilitator ranking) and non-broker lease handles. That
// keeps Table 2's positive count and §6.3's facilitator ranking
// simultaneously on shape.
func (g *gen) buildBrokersAndFacilitators() {
	ev := g.cfg.eval()
	s := g.cfg.scale()
	list := &brokers.List{}

	brokerW := func(reg whois.Registry) *weightedStr {
		if g.brokerFac[reg] == nil {
			g.brokerFac[reg] = &weightedStr{}
		}
		return g.brokerFac[reg]
	}
	otherW := func(reg whois.Registry) *weightedStr {
		if g.otherFac[reg] == nil {
			g.otherFac[reg] = &weightedStr{}
		}
		return g.otherFac[reg]
	}
	markBroker := func(reg whois.Registry, mnt string) {
		if g.brokerMnt[reg] == nil {
			g.brokerMnt[reg] = make(map[string]bool)
		}
		g.brokerMnt[reg][mnt] = true
	}

	addBrokerOrg := func(reg whois.Registry, published, orgName string, withMnt bool) string {
		g.orgSeq++
		id := fmt.Sprintf("ORG-BRK-%d", g.orgSeq)
		mnt := fmt.Sprintf("BRK%d-MNT", g.orgSeq)
		if reg == whois.ARIN || reg == whois.LACNIC {
			mnt = id // no maintainer objects: the OrgID is the handle
		}
		org := &whois.Org{Registry: reg, ID: id, Name: orgName, Country: g.country()}
		if withMnt {
			org.MntRef = []string{mnt}
			markBroker(reg, mnt)
		}
		db := g.w.Whois.DB(reg)
		db.Orgs = append(db.Orgs, org)
		list.Brokers = append(list.Brokers, brokers.Broker{Registry: reg, Name: published})
		return mnt
	}

	// IPXO: registered RIPE broker; its handle dominates the RIPE broker
	// pool and (as a facilitator without local broker registration) the
	// ARIN and APNIC non-broker pools, making it top-3 in all three.
	ipxoMnt := addBrokerOrg(whois.RIPE, "IPXO, LTD", "IPXO, LTD", true)
	brokerW(whois.RIPE).add(ipxoMnt, 160)
	otherW(whois.ARIN).add(ipxoMnt, 30)
	otherW(whois.APNIC).add(ipxoMnt, 30)

	// RIPE brokers: exact, fuzzy (suffix variation), and absent.
	for i := 0; i < ev.RIPEBrokersExact-1; i++ {
		name := brokerName(whois.RIPE, i)
		mnt := addBrokerOrg(whois.RIPE, name, name, true)
		brokerW(whois.RIPE).add(mnt, 2+g.rng.Intn(6))
	}
	for i := 0; i < ev.RIPEBrokersFuzzy; i++ {
		// Fictitious-business-name mismatch: the RIR list carries the
		// short trading name, the registry the longer legal entity, so
		// only word-containment matching finds it (§6.2's manual
		// matches).
		published := fmt.Sprintf("RIPE Fuzzy Broker %d LTD", i)
		registered := fmt.Sprintf("RIPE Fuzzy Broker %d Trading Group B.V.", i)
		mnt := addBrokerOrg(whois.RIPE, published, registered, true)
		brokerW(whois.RIPE).add(mnt, 1+g.rng.Intn(4))
	}
	for i := 0; i < ev.RIPEBrokersAbsent; i++ {
		// On the RIR list but no WHOIS organisation: no org object.
		list.Brokers = append(list.Brokers, brokers.Broker{
			Registry: whois.RIPE, Name: fmt.Sprintf("Offshore Broker %d SA", i),
		})
	}
	// ARIN facilitators: two with managed prefixes, rest without.
	for i := 0; i < ev.ARINBrokers; i++ {
		name := brokerName(whois.ARIN, i)
		mnt := addBrokerOrg(whois.ARIN, name, name, i < 2)
		if i < 2 {
			brokerW(whois.ARIN).add(mnt, 3)
		}
	}
	// APNIC brokers: present as orgs but without maintainer references
	// (the paper cannot match them to address blocks).
	for i := 0; i < ev.APNICBrokers; i++ {
		name := brokerName(whois.APNIC, i)
		addBrokerOrg(whois.APNIC, name, name, false)
	}

	// Non-broker facilitator handles fill the rest of each registry's
	// lease maintainers: many small handles so the named facilitators
	// stay on top of the ranking.
	for _, reg := range whois.Registries {
		f := otherW(reg)
		for i := 0; i < 25; i++ {
			f.add(fmt.Sprintf("%s-LEASE-MNT-%d", reg, i), 3)
		}
		f.add("HOLDER-DIRECT-MNT", 8) // holder leasing directly, no facilitator
	}

	// Active broker-managed lease budgets (evaluation positives).
	g.brokerBudget[whois.RIPE] = scaleCount(ev.ActiveLeases, s)
	g.brokerBudget[whois.ARIN] = scaleCount(23, s) // 24 managed minus 1 filtered

	g.w.Brokers = list
}

// pickFacilitator returns the maintainer handle for a new leased prefix.
// Broker handles are used while the evaluation-positive budget lasts,
// then non-broker lease handles take over.
func (g *gen) pickFacilitator(reg whois.Registry) (mnt string, brokerManaged bool) {
	if g.brokerBudget[reg] > 0 && g.brokerFac[reg] != nil && g.brokerFac[reg].totalWt > 0 {
		g.brokerBudget[reg]--
		return g.brokerFac[reg].pick(g.rng), true
	}
	f := g.otherFac[reg]
	if f == nil || f.totalWt == 0 {
		return "HOLDER-DIRECT-MNT", false
	}
	m := f.pick(g.rng)
	return m, g.brokerMnt[reg][m]
}
