package synth

import (
	"fmt"

	"ipleasing/internal/core"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

// holderInfo is a generated IP-holder organisation.
type holderInfo struct {
	orgID string
	asn   uint32
	mnt   string
}

// rootCtx is an allocation root being filled with leaves.
type rootCtx struct {
	prefix    netutil.Prefix
	holder    holderInfo
	announced bool
	used      int // /24 slots consumed
}

// routeInfo records an announced prefix and its primary origin for the
// RPKI and abuse bookkeeping.
type routeInfo struct {
	prefix netutil.Prefix
	origin uint32
	leased bool // inferred-leased (abuse analyses group by inference)
}

// cellBudget is the per-registry remaining plant budget by inferred
// category.
type cellBudget struct {
	unused, agg, isp, l3, del, l4 int
}

// newHolder creates a holder organisation with a registered ASN.
// ARIN and LACNIC have no maintainer objects — their managing handle is
// the organisation ID itself (paper §5.1) — so the handle doubles as the
// org ID there and survives the dialect round trip.
func (g *gen) newHolder(reg whois.Registry, name string) holderInfo {
	g.orgSeq++
	h := holderInfo{
		orgID: fmt.Sprintf("ORG-%s-H%d", reg, g.orgSeq),
		asn:   g.asn(),
		mnt:   fmt.Sprintf("MNT-%s-H%d", reg, g.orgSeq),
	}
	if reg == whois.ARIN || reg == whois.LACNIC {
		h.mnt = h.orgID
	}
	if name == "" {
		name = fmt.Sprintf("%s Holder %d", reg, g.orgSeq)
	}
	db := g.w.Whois.DB(reg)
	db.Orgs = append(db.Orgs, &whois.Org{
		Registry: reg, ID: h.orgID, Name: name, Country: g.country(), MntRef: []string{h.mnt},
	})
	db.AutNums = append(db.AutNums, &whois.AutNum{
		Registry: reg, Number: h.asn, Name: fmt.Sprintf("AS-%s-%d", reg, g.orgSeq), OrgID: h.orgID,
	})
	g.w.Orgs.AddAS(h.asn, h.orgID)
	g.w.Orgs.AddOrg(h.orgID, name, g.country())
	g.attach(reg, h.asn)
	return h
}

// customerMnt returns the maintainer for a non-leased customer leaf.
// Most customers stay under the provider's maintainer, but roughly one in
// ten registers its own — the self-maintained customers that turn into
// false positives under the maintainer-diff baseline (§6.1).
func (g *gen) customerMnt(root *rootCtx) string {
	if g.rng.Intn(10) == 0 {
		g.custMntSeq++
		return fmt.Sprintf("CUST-SELF-MNT-%d", g.custMntSeq)
	}
	return root.holder.mnt
}

// siblingOf returns (creating lazily) a second AS registered to the same
// organisation as the holder, with no relationship edge to it.
func (g *gen) siblingOf(reg whois.Registry, h holderInfo) uint32 {
	if a, ok := g.siblingASN[h.orgID]; ok {
		return a
	}
	a := g.asn()
	g.w.Orgs.AddAS(a, h.orgID) // same organisation in as2org
	g.attach(reg, a)           // own transit, no edge to the holder
	db := g.w.Whois.DB(reg)
	db.AutNums = append(db.AutNums, &whois.AutNum{
		Registry: reg, Number: a, Name: fmt.Sprintf("AS-SIB-%d", a),
	})
	g.siblingASN[h.orgID] = a
	return a
}

// customerOf returns (creating lazily) a customer AS of the holder, used
// as the origin for ISP-customer and delegated-customer leaves.
func (g *gen) customerOf(reg whois.Registry, h holderInfo) uint32 {
	cs := g.custASN[h.orgID]
	if len(cs) < 2 {
		a := g.asn()
		g.w.Rel.AddP2C(h.asn, a)
		orgID := fmt.Sprintf("ORG-CUST-%d", a)
		g.w.Orgs.AddAS(a, orgID)
		g.w.Orgs.AddOrg(orgID, fmt.Sprintf("Customer Network %d", a), g.country())
		g.custASN[h.orgID] = append(cs, a)
		return a
	}
	return cs[g.rng.Intn(len(cs))]
}

// newRoot allocates a root block for the holder; announced roots are
// originated by the holder's ASN.
func (g *gen) newRoot(reg whois.Registry, h holderInfo, announced bool) *rootCtx {
	p := g.allocBlock(reg, rootPrefixLen)
	db := g.w.Whois.DB(reg)
	db.InetNums = append(db.InetNums, &whois.InetNum{
		Registry:    reg,
		Range:       netutil.RangeOf(p),
		NetName:     fmt.Sprintf("NET-%s", h.orgID),
		Status:      statusFor(reg, whois.Portable),
		Portability: whois.Portable,
		OrgID:       h.orgID,
		MntBy:       []string{h.mnt},
		Country:     g.country(),
	})
	if announced {
		g.announce(p, h.asn)
		g.nonleased = append(g.nonleased, routeInfo{prefix: p, origin: h.asn})
	}
	return &rootCtx{prefix: p, holder: h, announced: announced}
}

// nextLeaf carves the next /24 (occasionally /23) out of the root.
// Returns false when the root is full.
func (g *gen) nextLeaf(r *rootCtx) (netutil.Prefix, bool) {
	slots := 1
	length := uint8(24)
	if g.rng.Intn(12) == 0 { // occasional /23 leaves
		slots, length = 2, 23
		if r.used%2 == 1 {
			r.used++ // align to /23 boundary
		}
	}
	if r.used+slots > rootCapacity {
		return netutil.Prefix{}, false
	}
	base := uint32(r.prefix.Base) + uint32(r.used)<<8
	r.used += slots
	return netutil.Prefix{Base: netutil.Addr(base), Len: length}, true
}

// plantOpts carries the per-leaf knobs.
type plantOpts struct {
	forcedMnt      string
	forcedOrigin   uint32
	brokerManaged  bool
	actuallyLeased *bool // override the category-derived truth
	inactive       bool
}

// plantLeaf registers one non-portable leaf under root and wires BGP and
// relationships so the inference assigns `intended`.
func (g *gen) plantLeaf(reg whois.Registry, root *rootCtx, intended core.Category, opts plantOpts) (netutil.Prefix, bool) {
	p, ok := g.nextLeaf(root)
	if !ok {
		return netutil.Prefix{}, false
	}
	mnt := opts.forcedMnt
	brokerManaged := opts.brokerManaged
	leased := intended == core.LeasedNoRootOrigin || intended == core.LeasedWithRootOrigin
	var origin uint32
	switch intended {
	case core.Unused, core.AggregatedCustomer:
		// Not announced.
		if mnt == "" {
			mnt = g.customerMnt(root)
		}
	case core.ISPCustomer, core.DelegatedCustomer:
		if mnt == "" {
			mnt = g.customerMnt(root)
		}
		origin = root.holder.asn
		switch {
		case opts.forcedOrigin != 0:
			origin = opts.forcedOrigin
		case g.rng.Intn(8) == 0:
			// A sibling AS of the holder: same as2org organisation but
			// no asrel edge. Only the sibling expansion keeps this a
			// customer — the DESIGN.md no-siblings ablation turns these
			// into false leases, the paper's Vodafone mechanism.
			origin = g.siblingOf(reg, root.holder)
		case g.rng.Intn(2) == 0:
			origin = g.customerOf(reg, root.holder)
		}
	case core.LeasedNoRootOrigin, core.LeasedWithRootOrigin:
		if mnt == "" {
			mnt, brokerManaged = g.pickFacilitator(reg)
			if mnt == "HOLDER-DIRECT-MNT" {
				// The holder leases directly under its own maintainer:
				// invisible to the maintainer-diff baseline (§6.1).
				mnt = root.holder.mnt
			}
		}
		origin = opts.forcedOrigin
		if origin == 0 {
			origin = g.pickLeaseOriginator()
		}
	}

	// Leased blocks are registered in the lessee's operating country
	// (the Table-3 narrative: holders leasing into dozens of countries);
	// customer blocks stay near their provider.
	leafCountry := g.country()
	if leased && origin != 0 {
		if orgID, ok := g.w.Orgs.OrgOf(origin); ok {
			if cc := g.w.Orgs.Country(orgID); cc != "" {
				leafCountry = cc
			}
		}
	}
	db := g.w.Whois.DB(reg)
	db.InetNums = append(db.InetNums, &whois.InetNum{
		Registry:    reg,
		Range:       netutil.RangeOf(p),
		NetName:     fmt.Sprintf("NET-LEAF-%s", p),
		Status:      statusFor(reg, whois.NonPortable),
		Portability: whois.NonPortable,
		MntBy:       []string{mnt},
		Country:     leafCountry,
	})
	// Occasional hyper-specific registration (> /24) inside the leaf,
	// for internal infrastructure: the paper's methodology removes these
	// (§5.1 step 2); the maxlen ablation keeps them.
	if g.rng.Intn(32) == 0 {
		hs := netutil.Prefix{Base: p.Base, Len: 26}
		db.InetNums = append(db.InetNums, &whois.InetNum{
			Registry:    reg,
			Range:       netutil.RangeOf(hs),
			NetName:     fmt.Sprintf("NET-INFRA-%s", hs),
			Status:      statusFor(reg, whois.NonPortable),
			Portability: whois.NonPortable,
			MntBy:       []string{mnt},
		})
	}
	if origin != 0 {
		g.announce(p, origin)
		ri := routeInfo{prefix: p, origin: origin, leased: leased}
		if leased {
			g.leased = append(g.leased, ri)
		} else {
			g.nonleased = append(g.nonleased, ri)
		}
	}
	actuallyLeased := leased
	if opts.actuallyLeased != nil {
		actuallyLeased = *opts.actuallyLeased
	}
	g.w.Truth = append(g.w.Truth, TruthRecord{
		Registry:       reg,
		Prefix:         p,
		Intended:       intended,
		ActuallyLeased: actuallyLeased,
		BrokerManaged:  brokerManaged,
		Inactive:       opts.inactive,
	})
	return p, true
}

// plantMany plants n leaves of one intended category, creating roots (and
// generic holders) as needed. Roots are shared via the supplied pool.
// Announced roots are occasionally created as an aggregated pair: two
// consecutive /18 allocations announced only as their covering /17, the
// case the paper's least-specific covering lookup exists for (§5.1 step
// 4).
func (g *gen) plantMany(reg whois.Registry, pool *[]*rootCtx, announced bool, n int, intended core.Category, opts plantOpts) {
	for planted := 0; planted < n; {
		for len(*pool) > 0 && (*pool)[len(*pool)-1].used >= rootCapacity {
			*pool = (*pool)[:len(*pool)-1] // drop full roots
		}
		if len(*pool) == 0 {
			if announced && g.rng.Intn(6) == 0 {
				a, b := g.newAggregatedRootPair(reg, g.newHolder(reg, ""))
				*pool = append(*pool, a, b)
			} else {
				*pool = append(*pool, g.newRoot(reg, g.newHolder(reg, ""), announced))
			}
		}
		root := (*pool)[len(*pool)-1]
		if _, ok := g.plantLeaf(reg, root, intended, opts); ok {
			planted++
		}
	}
}

// newAggregatedRootPair registers two consecutive /18 root allocations for
// the holder but announces only the covering /17 aggregate in BGP.
func (g *gen) newAggregatedRootPair(reg whois.Registry, h holderInfo) (*rootCtx, *rootCtx) {
	agg := g.allocBlock(reg, rootPrefixLen-1) // /17
	lo, hi, ok := agg.SplitHalves()           // two /18s
	if !ok {
		// Unreachable while rootPrefixLen-1 < 32; registering the
		// aggregate unsplit keeps the generator total regardless.
		lo, hi = agg, agg
	}
	db := g.w.Whois.DB(reg)
	for _, p := range []netutil.Prefix{lo, hi} {
		db.InetNums = append(db.InetNums, &whois.InetNum{
			Registry:    reg,
			Range:       netutil.RangeOf(p),
			NetName:     fmt.Sprintf("NET-%s", h.orgID),
			Status:      statusFor(reg, whois.Portable),
			Portability: whois.Portable,
			OrgID:       h.orgID,
			MntBy:       []string{h.mnt},
			Country:     g.country(),
		})
	}
	g.announce(agg, h.asn)
	g.nonleased = append(g.nonleased, routeInfo{prefix: agg, origin: h.asn})
	return &rootCtx{prefix: lo, holder: h, announced: true},
		&rootCtx{prefix: hi, holder: h, announced: true}
}

// generateRegistry plants one registry's Table-1 shaped leaf population
// plus its evaluation artefacts.
func (g *gen) generateRegistry(reg whois.Registry) {
	s := g.cfg.scale()
	cell := g.cfg.table1()[reg]
	b := cellBudget{
		unused: scaleCount(cell.Unused, s),
		agg:    scaleCount(cell.Aggregated, s),
		isp:    scaleCount(cell.ISPCust, s),
		l3:     scaleCount(cell.Leased3, s),
		del:    scaleCount(cell.Delegated, s),
		l4:     scaleCount(cell.Leased4, s),
	}
	ev := g.cfg.eval()

	// ---- The Figure-3 timeline prefix lives in RIPE, leased via IPXO.
	if reg == whois.RIPE && b.l3 > 0 {
		h := g.newHolder(reg, "Timeline Holdings")
		root := g.newRoot(reg, h, false)
		ipxo := g.brokerFacIPXO()
		p, _ := g.plantLeaf(reg, root, core.LeasedNoRootOrigin, plantOpts{
			forcedMnt: ipxo, forcedOrigin: timelineASNs[len(timelineASNs)-1], brokerManaged: true,
		})
		g.timelinePrefix = p
		b.l3--
	}

	// ---- Table-3 top holders: dedicated lease-heavy holders.
	for _, th := range g.cfg.topHolders()[reg] {
		want := scaleCount(th.Leases, s)
		n3 := want * b.l3 / max1(b.l3+b.l4)
		if n3 > b.l3 {
			n3 = b.l3
		}
		n4 := want - n3
		if n4 > b.l4 {
			n4 = b.l4
			n3 = min2(want-n4, b.l3)
		}
		h := g.newHolder(reg, th.Name)
		opts := plantOpts{}
		if th.Facilitates {
			// Holder-run leasing platform (Cloud Innovation, §6.3): the
			// platform maintainer is registered to the holder org, so
			// facilitator rankings resolve it to the holder's name.
			opts.forcedMnt = fmt.Sprintf("MNT-PLATFORM-%s", h.orgID)
			db := g.w.Whois.DB(reg)
			org := db.Orgs[len(db.Orgs)-1]
			org.MntRef = append(org.MntRef, opts.forcedMnt)
		}
		var silent, ann []*rootCtx
		g.plantManyForHolder(reg, &silent, h, false, n3, core.LeasedNoRootOrigin, opts)
		g.plantManyForHolder(reg, &ann, h, true, n4, core.LeasedWithRootOrigin, opts)
		b.l3 -= n3
		b.l4 -= n4
	}

	// ---- Evaluation ISPs registered in this region (§5.3 negatives).
	for _, isp := range g.cfg.evalISPs() {
		if isp.Registry != reg {
			continue
		}
		g.plantEvalISP(reg, isp, &b)
	}

	// ---- RIPE-only evaluation artefacts (§6.2).
	if reg == whois.RIPE {
		g.plantBrokerISP(reg, scaleCount(ev.BrokerISPPrefixes, s), &b)
		g.plantInactiveLeases(reg, scaleCount(ev.InactiveLeases, s), &b)
		g.plantLegacyLeases(reg, scaleCount(ev.LegacyLeases, s))
	}
	if reg == whois.ARIN {
		g.plantInactiveLeases(reg, scaleCount(138, s)/2, &b) // minor ARIN inactive tail
	}

	// ---- Generic fill of the remaining budgets. Leased leaves are
	// spread over many small holders so the named Table-3 holders keep
	// their top ranks; the per-holder quota is capped well below the
	// registry's top named holder. The non-leased categories pack roots
	// densely.
	quotaCap := 1
	if named := g.cfg.topHolders()[reg]; len(named) > 0 {
		quotaCap = scaleCount(named[0].Leases, s) / 3
	}
	if quotaCap < 1 {
		quotaCap = 1
	}
	if quotaCap > 6 {
		quotaCap = 6
	}
	var silentPool, annPool []*rootCtx
	g.plantMany(reg, &silentPool, false, b.unused, core.Unused, plantOpts{})
	g.plantMany(reg, &silentPool, false, b.isp, core.ISPCustomer, plantOpts{})
	g.plantSpreadLeases(reg, false, b.l3, core.LeasedNoRootOrigin, quotaCap)
	g.plantMany(reg, &annPool, true, b.agg, core.AggregatedCustomer, plantOpts{})
	g.plantMany(reg, &annPool, true, b.del, core.DelegatedCustomer, plantOpts{})
	g.plantSpreadLeases(reg, true, b.l4, core.LeasedWithRootOrigin, quotaCap)
}

// plantSpreadLeases plants n leased leaves across fresh small holders,
// producing the long-tailed holder distribution of the real market.
func (g *gen) plantSpreadLeases(reg whois.Registry, announced bool, n int, intended core.Category, quotaCap int) {
	for planted := 0; planted < n; {
		h := g.newHolder(reg, "")
		root := g.newRoot(reg, h, announced)
		quota := 1 + g.rng.Intn(quotaCap)
		for q := 0; q < quota && planted < n; q++ {
			if _, ok := g.plantLeaf(reg, root, intended, plantOpts{}); ok {
				planted++
			} else {
				break
			}
		}
	}
}

// plantManyForHolder is plantMany with a fixed holder.
func (g *gen) plantManyForHolder(reg whois.Registry, pool *[]*rootCtx, h holderInfo, announced bool, n int, intended core.Category, opts plantOpts) {
	for planted := 0; planted < n; {
		var root *rootCtx
		if len(*pool) > 0 {
			root = (*pool)[len(*pool)-1]
		}
		if root == nil || root.used >= rootCapacity {
			root = g.newRoot(reg, h, announced)
			*pool = append(*pool, root)
		}
		if _, ok := g.plantLeaf(reg, root, intended, opts); ok {
			planted++
		}
	}
}

// plantEvalISP creates one of the five negative-set ISPs: its org,
// maintainer, announced roots, customer prefixes, and (for Vodafone) the
// subsidiary false positives.
func (g *gen) plantEvalISP(reg whois.Registry, isp EvalISP, b *cellBudget) {
	s := g.cfg.scale()
	h := g.newHolder(reg, isp.Name)
	negatives := scaleCount(isp.Negatives, s)
	if negatives > b.del {
		negatives = b.del
	}
	var pool []*rootCtx
	g.plantManyForHolder(reg, &pool, h, true, negatives, core.DelegatedCustomer, plantOpts{
		forcedMnt: h.mnt,
	})
	b.del -= negatives

	// Subsidiary organisations with their own unrelated ASNs: announced
	// leaves become leased false positives (the Vodafone effect).
	if isp.Subsidiaries > 0 {
		subASNs := make([]uint32, 0, isp.Subsidiaries)
		for i := 0; i < isp.Subsidiaries; i++ {
			a := g.asn()
			orgID := fmt.Sprintf("ORG-SUB-%s-%d", h.orgID, i)
			g.w.Orgs.AddAS(a, orgID)
			g.w.Orgs.AddOrg(orgID, fmt.Sprintf("%s Subsidiary %d", isp.Name, i), g.country())
			// Deliberately no asrel edge and a distinct as2org org:
			// the relationship is invisible to the inference.
			g.w.Rel.AddP2C(g.tier1[g.rng.Intn(len(g.tier1))], a)
			subASNs = append(subASNs, a)
			// Register the subsidiary org in WHOIS too (17 organisation
			// objects, per §6.2).
			db := g.w.Whois.DB(reg)
			db.Orgs = append(db.Orgs, &whois.Org{
				Registry: reg, ID: orgID, Name: fmt.Sprintf("%s Subsidiary %d", isp.Name, i),
			})
		}
		fps := scaleCount(isp.SubsidiaryFPs, s)
		if fps > b.l4 {
			fps = b.l4
		}
		notLeased := false
		for planted := 0; planted < fps; {
			var root *rootCtx
			if len(pool) > 0 {
				root = pool[len(pool)-1]
			}
			if root == nil || root.used >= rootCapacity {
				root = g.newRoot(reg, h, true)
				pool = append(pool, root)
			}
			_, ok := g.plantLeaf(reg, root, core.LeasedWithRootOrigin, plantOpts{
				forcedMnt:      h.mnt,
				forcedOrigin:   subASNs[g.rng.Intn(len(subASNs))],
				actuallyLeased: &notLeased,
			})
			if ok {
				planted++
			}
		}
		b.l4 -= fps
	}

	// The non-Vodafone false positives (§6.2's remaining 11): leaves
	// with genuinely unobserved relationships, attached to the first
	// RIPE ISP without subsidiaries.
	if reg == whois.RIPE && isp.Subsidiaries == 0 {
		fps := scaleCount(g.cfg.eval().OtherFPs, s)
		if fps > b.l3 {
			fps = b.l3
		}
		rogue := g.asn() // no relationships at all beyond transit
		g.w.Rel.AddP2C(g.tier1[0], rogue)
		g.w.Orgs.AddAS(rogue, "ORG-ROGUE-"+h.orgID)
		g.w.Orgs.AddOrg("ORG-ROGUE-"+h.orgID, isp.Name+" Partner Network", g.country())
		notLeased := false
		var silent []*rootCtx
		for planted := 0; planted < fps; {
			var root *rootCtx
			if len(silent) > 0 {
				root = silent[len(silent)-1]
			}
			if root == nil || root.used >= rootCapacity {
				root = g.newRoot(reg, h, false)
				silent = append(silent, root)
			}
			_, ok := g.plantLeaf(reg, root, core.LeasedNoRootOrigin, plantOpts{
				forcedMnt:      h.mnt,
				forcedOrigin:   rogue,
				actuallyLeased: &notLeased,
			})
			if ok {
				planted++
			}
		}
		b.l3 -= fps
	}
	g.evalISPMnts = append(g.evalISPMnts, h.mnt)
}

// plantBrokerISP creates brokers that also provide connectivity: their
// managed prefixes are announced through the broker's own AS, so they are
// not leases and must be manually excluded during curation (§6.2's 1,621
// filtered prefixes).
func (g *gen) plantBrokerISP(reg whois.Registry, n int, b *cellBudget) {
	if n > b.del {
		n = b.del
	}
	db := g.w.Whois.DB(reg)
	// Pick three existing broker orgs with maintainers and upgrade them
	// to holders with ASNs.
	var upgraded []holderInfo
	for _, org := range db.Orgs {
		if len(upgraded) == 3 {
			break
		}
		if len(org.MntRef) == 1 && g.brokerMnt[reg][org.MntRef[0]] {
			h := holderInfo{orgID: org.ID, asn: g.asn(), mnt: org.MntRef[0]}
			db.AutNums = append(db.AutNums, &whois.AutNum{
				Registry: reg, Number: h.asn, Name: "AS-" + org.ID, OrgID: org.ID,
			})
			g.w.Orgs.AddAS(h.asn, org.ID)
			g.w.Orgs.AddOrg(org.ID, org.Name, g.country())
			g.attach(reg, h.asn)
			upgraded = append(upgraded, h)
		}
	}
	if len(upgraded) == 0 {
		return
	}
	notLeased := false
	for planted := 0; planted < n; {
		h := upgraded[planted%len(upgraded)]
		root := g.newRoot(reg, h, true)
		// The root itself carries the broker's maintainer, so the
		// curation step finds it too; it is held, not leased — another
		// manual exclusion.
		g.w.Exclusions = append(g.w.Exclusions, root.prefix)
		for root.used < rootCapacity && planted < n {
			p, ok := g.plantLeaf(reg, root, core.DelegatedCustomer, plantOpts{
				forcedMnt:      h.mnt,
				forcedOrigin:   h.asn,
				brokerManaged:  true,
				actuallyLeased: &notLeased,
			})
			if !ok {
				break
			}
			g.w.Exclusions = append(g.w.Exclusions, p)
			planted++
		}
	}
	b.del -= n
}

// plantInactiveLeases creates broker-managed blocks that are leased but
// not announced: the inference classifies them Unused (the paper's
// dominant false-negative mode).
func (g *gen) plantInactiveLeases(reg whois.Registry, n int, b *cellBudget) {
	if n == 0 || len(g.brokerMnt[reg]) == 0 {
		return
	}
	if n > b.unused {
		n = b.unused
	}
	mnts := make([]string, 0, len(g.brokerMnt[reg]))
	for m := range g.brokerMnt[reg] {
		mnts = append(mnts, m)
	}
	leased := true
	var pool []*rootCtx
	for planted := 0; planted < n; {
		var root *rootCtx
		if len(pool) > 0 {
			root = pool[len(pool)-1]
		}
		if root == nil || root.used >= rootCapacity {
			root = g.newRoot(reg, g.newHolder(reg, ""), false)
			pool = append(pool, root)
		}
		_, ok := g.plantLeaf(reg, root, core.Unused, plantOpts{
			forcedMnt:      mnts[g.rng.Intn(len(mnts))],
			brokerManaged:  true,
			actuallyLeased: &leased,
			inactive:       true,
		})
		if ok {
			planted++
		}
	}
	b.unused -= n
}

// plantLegacyLeases creates broker-managed legacy blocks: actively leased
// but outside the RIR portability definitions, so the core methodology
// never sees them (the paper's 138 legacy false negatives; the
// internal/legacy extension recovers them). Each block keeps the original
// legacy registrant's organisation record — a registered ASN that no
// longer announces the space — alongside the broker maintainer, and an
// equal population of holder-operated legacy blocks (announced by their
// own registrant) provides the non-leased contrast.
func (g *gen) plantLegacyLeases(reg whois.Registry, n int) {
	if n == 0 || len(g.brokerMnt[reg]) == 0 {
		return
	}
	mnts := make([]string, 0, len(g.brokerMnt[reg]))
	for m := range g.brokerMnt[reg] {
		mnts = append(mnts, m)
	}
	db := g.w.Whois.DB(reg)
	for i := 0; i < n; i++ {
		h := g.newHolder(reg, fmt.Sprintf("Legacy Registrant %d", i))
		p := g.allocBlock(reg, 24)
		db.InetNums = append(db.InetNums, &whois.InetNum{
			Registry:    reg,
			Range:       netutil.RangeOf(p),
			NetName:     fmt.Sprintf("LEGACY-%d", i),
			Status:      "LEGACY",
			Portability: whois.Legacy,
			OrgID:       h.orgID,
			MntBy:       []string{mnts[g.rng.Intn(len(mnts))]},
		})
		origin := g.pickLeaseOriginator()
		g.announce(p, origin)
		g.nonleased = append(g.nonleased, routeInfo{prefix: p, origin: origin})
		g.w.Truth = append(g.w.Truth, TruthRecord{
			Registry:       reg,
			Prefix:         p,
			Intended:       core.Orphan,
			ActuallyLeased: true,
			BrokerManaged:  true,
			Legacy:         true,
		})
	}
	// Holder-operated legacy blocks: the registrant's own AS announces
	// the space, so the legacy extension must not flag them.
	for i := 0; i < n; i++ {
		h := g.newHolder(reg, fmt.Sprintf("Legacy Operator %d", i))
		p := g.allocBlock(reg, 24)
		db.InetNums = append(db.InetNums, &whois.InetNum{
			Registry:    reg,
			Range:       netutil.RangeOf(p),
			NetName:     fmt.Sprintf("LEGACY-OP-%d", i),
			Status:      "LEGACY",
			Portability: whois.Legacy,
			OrgID:       h.orgID,
			MntBy:       []string{h.mnt},
		})
		g.announce(p, h.asn)
		g.nonleased = append(g.nonleased, routeInfo{prefix: p, origin: h.asn})
		g.w.Truth = append(g.w.Truth, TruthRecord{
			Registry: reg,
			Prefix:   p,
			Intended: core.Orphan,
			Legacy:   true,
		})
	}
}

// brokerFacIPXO returns IPXO's maintainer handle (the first RIPE broker
// created).
func (g *gen) brokerFacIPXO() string {
	return g.brokerFac[whois.RIPE].vals[0]
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
