// Package synth generates a deterministic synthetic Internet — WHOIS
// databases, BGP RIB dumps, AS relationships, AS-to-org mappings, RPKI
// archives, abuse lists, and broker registries — rendered in the same
// on-disk formats as the paper's real datasets (§4), with planted ground
// truth.
//
// The generator is the repository's substitute for the data the paper
// downloads from the RIRs, Routeviews/RIS, the RPKI archive, Spamhaus and
// CAIDA (see DESIGN.md §2): every knob defaults to the counts reported in
// the paper's Table 1/2/3 and §6.3–§6.5, multiplied by Config.Scale, so
// the reproduced experiments exhibit the published shapes at a laptop
// -friendly size while the consuming code paths stay byte-format faithful.
package synth

import (
	"ipleasing/internal/whois"
)

// Table1Cell is one registry's row of paper Table 1: the number of leaf
// prefixes per inference group at full (paper) scale.
type Table1Cell struct {
	Unused     int // group 1
	Aggregated int // group 2
	ISPCust    int // group 3, ISP customer
	Leased3    int // group 3, leased
	Delegated  int // group 4, delegated customer
	Leased4    int // group 4, leased
}

// Total returns the row total (the classified leaf count).
func (c Table1Cell) Total() int {
	return c.Unused + c.Aggregated + c.ISPCust + c.Leased3 + c.Delegated + c.Leased4
}

// Leased returns the row's leased count.
func (c Table1Cell) Leased() int { return c.Leased3 + c.Leased4 }

// PaperTable1 reproduces the per-registry group counts of the paper's
// Table 1 (April 2024).
var PaperTable1 = map[whois.Registry]Table1Cell{
	whois.RIPE:    {Unused: 63670, Aggregated: 204337, ISPCust: 31484, Leased3: 26774, Delegated: 27610, Leased4: 1872},
	whois.ARIN:    {Unused: 43011, Aggregated: 98316, ISPCust: 10302, Leased3: 6697, Delegated: 22927, Leased4: 5633},
	whois.APNIC:   {Unused: 25437, Aggregated: 21515, ISPCust: 7725, Leased3: 3275, Delegated: 8291, Leased4: 150},
	whois.AFRINIC: {Unused: 28936, Aggregated: 1741, ISPCust: 777, Leased3: 2172, Delegated: 1236, Leased4: 63},
	whois.LACNIC:  {Unused: 27551, Aggregated: 11950, ISPCust: 2250, Leased3: 627, Delegated: 1294, Leased4: 55},
}

// TopHolder names an IP holder and its paper-scale leased-prefix count
// (Table 3).
type TopHolder struct {
	Name   string
	Leases int
	// Facilitates marks holders that run their own leasing platform
	// (Cloud Innovation in AFRINIC, §6.3 "top facilitators").
	Facilitates bool
}

// PaperTopHolders reproduces Table 3: the top-3 IP holders per registry.
var PaperTopHolders = map[whois.Registry][]TopHolder{
	whois.RIPE: {
		{Name: "Resilans AB", Leases: 1106},
		{Name: "Cyber Assets FZCO", Leases: 941},
		{Name: "Russian Scientific-Research Institute", Leases: 675},
	},
	whois.ARIN: {
		{Name: "EGIHosting", Leases: 1418},
		{Name: "PSINet, Inc.", Leases: 1233},
		{Name: "Ace Data Centers, Inc.", Leases: 533},
	},
	whois.APNIC: {
		{Name: "Orient Express LDI Limited", Leases: 145},
		{Name: "Capitalonline Data Service (HK)", Leases: 135},
		{Name: "Aceville PTE.LTD.", Leases: 96},
	},
	whois.AFRINIC: {
		{Name: "Cloud Innovation Ltd", Leases: 2014, Facilitates: true},
		{Name: "ATI - Agence Tunisienne Internet", Leases: 38},
		{Name: "Nile Online", Leases: 32},
	},
	whois.LACNIC: {
		{Name: "Radiografica Costarricense", Leases: 114},
		{Name: "Impsat Fiber Networks Inc", Leases: 88},
		{Name: "Newcom Limited", Leases: 25},
	},
}

// TopOriginatorNames are the hosting providers the paper finds among the
// top-five originators of leased prefixes in both RIPE and ARIN (§6.3),
// with representative ASNs.
var TopOriginatorNames = []struct {
	Name string
	ASN  uint32
}{
	{Name: "M247 Europe", ASN: 9009},
	{Name: "Stark Industries Solutions", ASN: 44477},
	{Name: "Datacamp Limited", ASN: 60068},
}

// EvalISP is one of the five residential ISPs whose prefixes form the
// evaluation negatives (§5.3 / §6.2).
type EvalISP struct {
	Name     string
	Registry whois.Registry
	// Subsidiaries is the number of separately registered subsidiary
	// organisations with their own AS numbers. The paper found 110 of
	// its 121 false positives were Vodafone subsidiaries whose
	// relationships the AS-relationship data missed.
	Subsidiaries int
	// Negatives is the paper-scale count of validated non-leased
	// prefixes collected from this ISP.
	Negatives int
	// SubsidiaryFPs is the paper-scale count of subsidiary-announced
	// prefixes that become false positives.
	SubsidiaryFPs int
}

// PaperEvalISPs reproduces the evaluation ISPs. Negatives total 5,378 and
// subsidiary false positives 110, per §6.2.
var PaperEvalISPs = []EvalISP{
	{Name: "AT&T Services", Registry: whois.ARIN, Negatives: 1310},
	{Name: "Comcast Cable Communications", Registry: whois.ARIN, Negatives: 1250},
	{Name: "Orange S.A.", Registry: whois.RIPE, Negatives: 1050},
	{Name: "Vodafone GmbH", Registry: whois.RIPE, Negatives: 968, Subsidiaries: 17, SubsidiaryFPs: 110},
	{Name: "IIJ - Internet Initiative Japan", Registry: whois.APNIC, Negatives: 800},
}

// EvalShape carries the paper-scale evaluation-set composition (§6.2):
// broker-managed positives and their failure modes.
type EvalShape struct {
	// RIPEBrokers is the number of registered RIPE brokers: 46 exactly
	// matched + 39 fuzzily matched + 30 absent from the database.
	RIPEBrokersExact  int
	RIPEBrokersFuzzy  int
	RIPEBrokersAbsent int
	ARINBrokers       int // 9 qualified facilitators (2 with prefixes)
	APNICBrokers      int // 38 registered brokers (no maintainer data)

	// ActiveLeases is the paper-scale count of broker-managed prefixes
	// that are actively leased (9,478 positives minus inactive/legacy).
	ActiveLeases int
	// InactiveLeases are broker-managed but not yet announced: the
	// paper's 1,605 unused-classified false negatives.
	InactiveLeases int
	// LegacyLeases are broker-managed legacy blocks: 138 false
	// negatives outside the portability definitions.
	LegacyLeases int
	// BrokerISPPrefixes are broker-managed but connectivity-provided
	// (the 1,621 prefixes manually filtered out during curation).
	BrokerISPPrefixes int
	// OtherFPs is the handful of non-Vodafone false positives (121-110).
	OtherFPs int
}

// PaperEvalShape is the §6.2 composition at paper scale.
var PaperEvalShape = EvalShape{
	RIPEBrokersExact:  46,
	RIPEBrokersFuzzy:  39,
	RIPEBrokersAbsent: 30,
	ARINBrokers:       9,
	APNICBrokers:      38,
	ActiveLeases:      7735,
	InactiveLeases:    1605,
	LegacyLeases:      138,
	BrokerISPPrefixes: 1621,
	OtherFPs:          11,
}

// AbuseShape carries the §6.3–§6.4 abuse-correlation targets.
type AbuseShape struct {
	// LeasedDropShare: fraction of leased prefixes originated by
	// ASN-DROP-listed ASes (paper: 1.1%).
	LeasedDropShare float64
	// NonLeasedDropShare: same for non-leased prefixes (paper: 0.2%).
	NonLeasedDropShare float64
	// LeasedHijackerShare: fraction of leased prefixes originated by
	// serial-hijacker ASes (paper: 13.3%).
	LeasedHijackerShare float64
	// NonLeasedHijackerShare: same for non-leased (paper: 3.1%).
	NonLeasedHijackerShare float64
	// HijackerOriginatorShare: fraction of lease originators that are
	// serial hijackers (paper: 2.9% = 269/9,217).
	HijackerOriginatorShare float64
	// LeasedROAShare: fraction of leased prefixes with ROAs
	// (paper: 31,156/47,318).
	LeasedROAShare float64
	// NonLeasedROAShare: same for non-leased (paper: 506,629/1,100,025).
	NonLeasedROAShare float64
	// LeasedROABadShare: fraction of leased-prefix ROAs naming a
	// blocklisted AS (paper: 1.6%).
	LeasedROABadShare float64
	// NonLeasedROABadShare: same for non-leased (paper: 0.2%).
	NonLeasedROABadShare float64
	// Hijackers is the paper-scale serial-hijacker list size (957).
	Hijackers int
	// DropASNs is the approximate ASN-DROP list size.
	DropASNs int
}

// PaperAbuseShape is the published abuse correlation.
var PaperAbuseShape = AbuseShape{
	LeasedDropShare:         0.011,
	NonLeasedDropShare:      0.002,
	LeasedHijackerShare:     0.133,
	NonLeasedHijackerShare:  0.031,
	HijackerOriginatorShare: 0.029,
	LeasedROAShare:          0.658,
	NonLeasedROAShare:       0.461,
	LeasedROABadShare:       0.016,
	NonLeasedROABadShare:    0.002,
	Hijackers:               957,
	DropASNs:                300,
}

// Config controls world generation.
type Config struct {
	// Seed drives the deterministic PRNG.
	Seed int64
	// Scale multiplies every paper-scale count. 0 means DefaultScale.
	// At 0.02 the world has ~14k leaf blocks and ~23k routed prefixes.
	Scale float64
	// LeasedBGPShare is the target share of leased prefixes among all
	// routed prefixes; filler announcements are sized to hit it.
	// 0 means the paper's 4.1%.
	LeasedBGPShare float64
	// Months is the longitudinal window: monthly routing snapshots
	// ending at the world's snapshot time (§8 market-dynamics
	// extension). 0 means 6; negative disables the longitudinal data.
	Months int
	// Table1, TopHolders, EvalISPs, Eval, Abuse override the paper
	// shapes when non-nil / non-zero.
	Table1     map[whois.Registry]Table1Cell
	TopHolders map[whois.Registry][]TopHolder
	EvalISPs   []EvalISP
	Eval       *EvalShape
	Abuse      *AbuseShape
}

// DefaultScale keeps the default world near 14k classified leaves.
const DefaultScale = 0.02

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return DefaultScale
	}
	return c.Scale
}

func (c Config) leasedShare() float64 {
	if c.LeasedBGPShare <= 0 {
		return 0.041
	}
	return c.LeasedBGPShare
}

func (c Config) table1() map[whois.Registry]Table1Cell {
	if c.Table1 != nil {
		return c.Table1
	}
	return PaperTable1
}

func (c Config) topHolders() map[whois.Registry][]TopHolder {
	if c.TopHolders != nil {
		return c.TopHolders
	}
	return PaperTopHolders
}

func (c Config) evalISPs() []EvalISP {
	if c.EvalISPs != nil {
		return c.EvalISPs
	}
	return PaperEvalISPs
}

func (c Config) eval() EvalShape {
	if c.Eval != nil {
		return *c.Eval
	}
	return PaperEvalShape
}

func (c Config) abuse() AbuseShape {
	if c.Abuse != nil {
		return *c.Abuse
	}
	return PaperAbuseShape
}

// scaleCount scales a paper count, keeping nonzero counts at least 1.
func scaleCount(n int, s float64) int {
	if n <= 0 {
		return 0
	}
	v := int(float64(n)*s + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}
