package synth

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ipleasing/internal/as2org"
	"ipleasing/internal/asrel"
	"ipleasing/internal/bgp"
	"ipleasing/internal/brokers"
	"ipleasing/internal/core"
	"ipleasing/internal/geoip"
	"ipleasing/internal/hijack"
	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
	"ipleasing/internal/rpki"
	"ipleasing/internal/whois"
)

// Dataset-directory layout: the file names WriteDir produces and loaders
// consume.
const (
	FileASRel          = "asrel.txt"
	FileAS2Org         = "as2org.txt"
	FileHijackers      = "hijackers.txt"
	FileBrokers        = "brokers.txt"
	FileGroundTruth    = "groundtruth.csv"
	FileEvalExclusions = "eval-exclusions.txt"
	FileEvalISPs       = "eval-isps.txt"
	DirASNDrop         = "asndrop"
	DirRPKI            = "rpki"
	DirTimeline        = "timeline"
	DirGeo             = "geo"
	FileTimelinePrefix = "timeline/prefix.txt"
	// Two RIB files emulate merging multiple collectors.
	FileRIBRouteviews = "rib.routeviews.mrt"
	FileRIBRIS        = "rib.ris.mrt"
)

// WriteDir renders the world into dir using every substrate's native
// on-disk format.
func (w *World) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// WHOIS dumps.
	if err := whois.WriteDir(w.Whois, dir); err != nil {
		return err
	}
	// Routing tables, split across two synthetic collectors.
	ts := uint32(w.SnapshotTime.Unix())
	half := len(w.Routes) / 2
	if err := bgp.WriteMRTFile(filepath.Join(dir, FileRIBRouteviews), ts, w.Peers, w.Routes[:half]); err != nil {
		return err
	}
	if err := bgp.WriteMRTFile(filepath.Join(dir, FileRIBRIS), ts, w.Peers, w.Routes[half:]); err != nil {
		return err
	}
	// Relationship and organisation datasets.
	if err := writeTo(filepath.Join(dir, FileASRel), func(f io.Writer) error {
		return asrel.Write(f, w.Rel)
	}); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, FileAS2Org), func(f io.Writer) error {
		return as2org.Write(f, w.Orgs)
	}); err != nil {
		return err
	}
	// Abuse lists.
	if err := w.Drop.WriteDir(filepath.Join(dir, DirASNDrop)); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, FileHijackers), func(f io.Writer) error {
		return hijack.Write(f, w.Hijackers)
	}); err != nil {
		return err
	}
	// Broker list.
	if err := writeTo(filepath.Join(dir, FileBrokers), func(f io.Writer) error {
		return brokers.Write(f, w.Brokers)
	}); err != nil {
		return err
	}
	// RPKI archive.
	if err := w.RPKI.WriteDir(filepath.Join(dir, DirRPKI)); err != nil {
		return err
	}
	// Ground truth and evaluation artefacts.
	if err := writeTo(filepath.Join(dir, FileGroundTruth), func(f io.Writer) error {
		return WriteTruth(f, w.Truth)
	}); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, FileEvalExclusions), func(f io.Writer) error {
		return writePrefixList(f, w.Exclusions)
	}); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, FileEvalISPs), func(f io.Writer) error {
		return writeEvalISPs(f, w.EvalISPs)
	}); err != nil {
		return err
	}
	// Geolocation panel (§8 extension).
	if w.Geo != nil {
		if err := geoip.WriteDir(filepath.Join(dir, DirGeo), w.Geo); err != nil {
			return err
		}
	}
	// Figure-3 timeline: monthly one-prefix RIBs plus an RPKI archive.
	if w.Timeline != nil {
		if err := w.writeTimeline(filepath.Join(dir, DirTimeline)); err != nil {
			return err
		}
	}
	// Longitudinal monthly tables (§8 extension).
	if len(w.Market) > 0 {
		if err := w.writeMarket(filepath.Join(dir, DirMarket)); err != nil {
			return err
		}
	}
	return nil
}

func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := fn(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// WriteTruth renders ground-truth records as CSV.
func WriteTruth(w io.Writer, recs []TruthRecord) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "registry,prefix,intended,actually_leased,broker_managed,inactive,legacy")
	for _, r := range recs {
		fmt.Fprintf(bw, "%s,%s,%s,%t,%t,%t,%t\n",
			r.Registry, r.Prefix, r.Intended, r.ActuallyLeased, r.BrokerManaged, r.Inactive, r.Legacy)
	}
	return bw.Flush()
}

// ReadTruth parses the CSV written by WriteTruth.
func ReadTruth(r io.Reader) ([]TruthRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var out []TruthRecord
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "registry,") || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 7 {
			return nil, fmt.Errorf("synth: truth line %d: want 7 fields, got %d", lineNum, len(f))
		}
		reg, err := whois.ParseRegistry(f[0])
		if err != nil {
			return nil, fmt.Errorf("synth: truth line %d: %v", lineNum, err)
		}
		pfx, err := netutil.ParsePrefix(f[1])
		if err != nil {
			return nil, fmt.Errorf("synth: truth line %d: %v", lineNum, err)
		}
		cat, err := parseCategory(f[2])
		if err != nil {
			return nil, fmt.Errorf("synth: truth line %d: %v", lineNum, err)
		}
		bools := make([]bool, 4)
		for i, s := range f[3:7] {
			bools[i], err = strconv.ParseBool(s)
			if err != nil {
				return nil, fmt.Errorf("synth: truth line %d: %v", lineNum, err)
			}
		}
		out = append(out, TruthRecord{
			Registry: reg, Prefix: pfx, Intended: cat,
			ActuallyLeased: bools[0], BrokerManaged: bools[1], Inactive: bools[2], Legacy: bools[3],
		})
	}
	return out, sc.Err()
}

func parseCategory(s string) (core.Category, error) {
	for c := core.Category(0); ; c++ {
		name := c.String()
		if name == "invalid" {
			return 0, fmt.Errorf("unknown category %q", s)
		}
		if name == s {
			return c, nil
		}
	}
}

func writePrefixList(w io.Writer, ps []netutil.Prefix) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# broker-managed prefixes that are not leased (manual curation filter)")
	for _, p := range ps {
		fmt.Fprintln(bw, p.String())
	}
	return bw.Flush()
}

// ReadPrefixList parses one prefix per line with '#' comments.
func ReadPrefixList(r io.Reader) ([]netutil.Prefix, error) {
	sc := bufio.NewScanner(r)
	var out []netutil.Prefix
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := netutil.ParsePrefix(line)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, sc.Err()
}

func writeEvalISPs(w io.Writer, isps []EvalISP) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# evaluation-negative ISPs: REGISTRY|NAME")
	for _, isp := range isps {
		fmt.Fprintf(bw, "%s|%s\n", isp.Registry, isp.Name)
	}
	return bw.Flush()
}

// ReadEvalISPs parses the eval-isps file into (registry, name) pairs.
func ReadEvalISPs(r io.Reader) ([]EvalISP, error) {
	sc := bufio.NewScanner(r)
	var out []EvalISP
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.IndexByte(line, '|')
		if idx <= 0 {
			return nil, fmt.Errorf("synth: bad eval-isps line %q", line)
		}
		reg, err := whois.ParseRegistry(line[:idx])
		if err != nil {
			return nil, err
		}
		out = append(out, EvalISP{Registry: reg, Name: strings.TrimSpace(line[idx+1:])})
	}
	return out, sc.Err()
}

// writeTimeline renders the Figure-3 data three ways, matching what real
// collector archives offer: one tiny MRT RIB per month, a BGP4MP update
// stream carrying the lease transitions, one VRP snapshot per month, and
// the prefix itself.
func (w *World) writeTimeline(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, "prefix.txt"), func(f io.Writer) error {
		_, err := fmt.Fprintln(f, w.Timeline.Prefix)
		return err
	}); err != nil {
		return err
	}
	arch := &rpki.Archive{}
	var events []bgp.UpdateEvent
	var prevOrigin uint32
	for _, pt := range w.Timeline.Points {
		ts := uint32(pt.Time.Unix())
		var routes []bgp.Route
		for _, o := range pt.Origins {
			routes = append(routes, bgp.Route{
				Prefix: w.Timeline.Prefix,
				Path:   mrt.NewASPathSequence(w.Peers[0].AS, o),
			})
		}
		name := fmt.Sprintf("rib-%d.mrt", ts)
		if err := bgp.WriteMRTFile(filepath.Join(dir, name), ts, w.Peers, routes); err != nil {
			return err
		}
		var vrps []rpki.VRP
		for _, a := range pt.ROAASNs {
			vrps = append(vrps, rpki.VRP{
				ASN: a, Prefix: w.Timeline.Prefix, MaxLen: w.Timeline.Prefix.Len, TA: "ripe",
			})
		}
		arch.Add(rpki.Snapshot{Time: pt.Time, VRPs: vrps})

		// Transition → update event.
		var curOrigin uint32
		if len(pt.Origins) == 1 {
			curOrigin = pt.Origins[0]
		}
		switch {
		case curOrigin == prevOrigin:
			// no event
		case curOrigin == 0:
			events = append(events, bgp.UpdateEvent{Timestamp: ts, Update: &mrt.BGPUpdate{
				Withdrawn: []netutil.Prefix{w.Timeline.Prefix},
			}})
		default:
			events = append(events, bgp.UpdateEvent{Timestamp: ts, Update: &mrt.BGPUpdate{
				Attrs: []mrt.Attribute{
					mrt.OriginAttr(mrt.OriginIGP),
					mrt.ASPathAttr(mrt.NewASPathSequence(w.Peers[0].AS, curOrigin)),
				},
				NLRI: []netutil.Prefix{w.Timeline.Prefix},
			}})
		}
		prevOrigin = curOrigin
	}
	if err := bgp.WriteUpdatesFile(filepath.Join(dir, "updates.mrt"), w.Peers[0], events); err != nil {
		return err
	}
	return arch.WriteDir(filepath.Join(dir, "rpki"))
}
