package arinwhois

import (
	"bytes"
	"strings"
	"testing"

	"ipleasing/internal/netutil"
)

const sample = `
OrgID:        EGIHOST
OrgName:      EGIHosting
Country:      US

OrgID:        PSINET
OrgName:      PSINet, Inc.
Country:      US

ASHandle:     AS64500
ASNumber:     64500
ASName:       EGI-AS
OrgID:        EGIHOST

NetHandle:    NET-198-51-100-0-1
NetRange:     198.51.100.0 - 198.51.100.255
NetName:      EGI-NET-1
NetType:      Direct Allocation
OrgID:        EGIHOST
RegDate:      2015-03-02

NetHandle:    NET-198-51-100-0-2
NetRange:     198.51.100.0 - 198.51.100.127
NetName:      CUSTOMER-1
NetType:      Reassignment
OrgID:        CUST1
Parent:       NET-198-51-100-0-1
`

func TestParse(t *testing.T) {
	db, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Orgs) != 2 || len(db.ASes) != 1 || len(db.Nets) != 2 {
		t.Fatalf("counts: %d orgs %d ases %d nets", len(db.Orgs), len(db.ASes), len(db.Nets))
	}
	if db.Orgs[1].Name != "PSINet, Inc." {
		t.Fatalf("org name = %q", db.Orgs[1].Name)
	}
	a := db.ASes[0]
	if a.Number != 64500 || a.OrgID != "EGIHOST" || a.Name != "EGI-AS" {
		t.Fatalf("as = %+v", a)
	}
	n := db.Nets[0]
	if n.Handle != "NET-198-51-100-0-1" || n.Type != NetTypeDirectAllocation || n.OrgID != "EGIHOST" {
		t.Fatalf("net = %+v", n)
	}
	want := netutil.Range{
		First: netutil.MustParseAddr("198.51.100.0"),
		Last:  netutil.MustParseAddr("198.51.100.255"),
	}
	if n.Range != want {
		t.Fatalf("range = %v", n.Range)
	}
	if db.Nets[1].Parent != "NET-198-51-100-0-1" || db.Nets[1].Type != NetTypeReassignment {
		t.Fatalf("child net = %+v", db.Nets[1])
	}
}

func TestParseASNumberFromHandle(t *testing.T) {
	db, err := Parse(strings.NewReader("ASHandle: AS65001\nASName: X\n"))
	if err != nil {
		t.Fatal(err)
	}
	if db.ASes[0].Number != 65001 {
		t.Fatalf("number = %d", db.ASes[0].Number)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"NetHandle: NET-X\nNetName: no-range\n",                 // missing NetRange
		"NetHandle: NET-X\nNetRange: 1.2.3.4 - 1.2.3.1\n",       // inverted range
		"ASHandle: ASXYZ\nASNumber: notanumber\n",               // bad ASNumber
		"OrgID: O1\nCountry: US\n",                              // missing OrgName
		"NetHandle: NET-X\nNetRange: 300.0.0.0 - 300.0.0.255\n", // bad address
		"ASHandle: ASFOO\n",                                     // handle not numeric, no ASNumber
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestUnknownClassSkipped(t *testing.T) {
	db, err := Parse(strings.NewReader("POCHandle: P-1\nName: Somebody\n\nOrgID: O1\nOrgName: X\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Orgs) != 1 {
		t.Fatalf("orgs = %d", len(db.Orgs))
	}
}

func TestWriteRoundTrip(t *testing.T) {
	db, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if len(back.Orgs) != len(db.Orgs) || len(back.ASes) != len(db.ASes) || len(back.Nets) != len(db.Nets) {
		t.Fatal("round-trip counts differ")
	}
	for i := range db.Nets {
		if *back.Nets[i] != *db.Nets[i] {
			t.Fatalf("net %d: %+v != %+v", i, back.Nets[i], db.Nets[i])
		}
	}
	for i := range db.ASes {
		if *back.ASes[i] != *db.ASes[i] {
			t.Fatalf("as %d differs", i)
		}
	}
	for i := range db.Orgs {
		if *back.Orgs[i] != *db.Orgs[i] {
			t.Fatalf("org %d differs", i)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	data := strings.Repeat(sample, 200)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
