package arinwhois

import (
	"bytes"
	"strings"
	"testing"

	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
)

// fuzzSeedDump renders a small database through the package's own writer,
// so the seed corpus is a well-formed dump in the exact dialect Parse
// expects. synth produces the same shape but cannot be imported here
// (synth depends on whois, which depends on this package).
func fuzzSeedDump(tb testing.TB) []byte {
	db := &Database{
		Nets: []*Net{
			{
				Handle: "NET-192-0-2-0-1", OrgID: "EXAMPLE-1", Name: "EXAMPLE-NET",
				Range: netutil.Range{
					First: netutil.MustParseAddr("192.0.2.0"),
					Last:  netutil.MustParseAddr("192.0.2.255"),
				},
				Type: NetTypeDirectAllocation, RegDate: "2001-05-14", Country: "US",
			},
			{
				Handle: "NET-192-0-2-0-2", OrgID: "EXAMPLE-2", Parent: "NET-192-0-2-0-1",
				Name: "EXAMPLE-SUB",
				Range: netutil.Range{
					First: netutil.MustParseAddr("192.0.2.0"),
					Last:  netutil.MustParseAddr("192.0.2.127"),
				},
				Type: NetTypeReallocation, RegDate: "2012-09-30", Country: "US",
			},
		},
		ASes: []*AS{{Handle: "AS64500", Number: 64500, OrgID: "EXAMPLE-1", Name: "EXAMPLE-AS"}},
		Orgs: []*Org{
			{ID: "EXAMPLE-1", Name: "Example Networks", Country: "US"},
			{ID: "EXAMPLE-2", Name: "Example Leasing", Country: "CA"},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzParse(f *testing.F) {
	seed := fuzzSeedDump(f)
	f.Add(string(seed))
	f.Add(string(seed[:len(seed)/2]))
	f.Add("NetHandle: NET-198-51-100-0-1\nNetRange: 198.51.100.0 - 198.51.100.255\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		db, err := Parse(strings.NewReader(s))
		// Lenient parsing with the breaker disabled must never be
		// stricter than fail-fast parsing, and must never error itself.
		c := diag.NewCollector("arin", diag.LoadOptions{MaxErrorRate: -1})
		ldb, lerr := ParseWith(strings.NewReader(s), c)
		if lerr != nil {
			t.Fatalf("lenient parse failed: %v", lerr)
		}
		if err != nil {
			return
		}
		if len(ldb.Nets) != len(db.Nets) || len(ldb.ASes) != len(db.ASes) || len(ldb.Orgs) != len(db.Orgs) {
			t.Fatalf("lenient parse of clean input differs: %d/%d/%d vs %d/%d/%d",
				len(ldb.Nets), len(ldb.ASes), len(ldb.Orgs), len(db.Nets), len(db.ASes), len(db.Orgs))
		}
		if rep := c.Report(); rep.Skipped != 0 {
			t.Fatalf("lenient parse skipped %d records on input strict accepts", rep.Skipped)
		}
		// Write/Parse round trip: what we parsed, we can restate.
		var buf bytes.Buffer
		if werr := Write(&buf, db); werr != nil {
			t.Fatalf("write of parsed database: %v", werr)
		}
		back, perr := Parse(&buf)
		if perr != nil {
			t.Fatalf("re-parse of written database: %v", perr)
		}
		if len(back.Nets) != len(db.Nets) || len(back.ASes) != len(db.ASes) || len(back.Orgs) != len(db.Orgs) {
			t.Fatalf("round trip changed record counts")
		}
	})
}
