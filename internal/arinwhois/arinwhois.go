// Package arinwhois reads and writes the ARIN bulk-WHOIS dialect.
//
// ARIN's bulk WHOIS is distributed as blank-line-separated records of
// "Key: Value" lines, the same surface grammar as RPSL but with ARIN's own
// vocabulary: network records keyed by NetHandle with a NetRange and a
// NetType, AS records keyed by ASHandle, and organisation records keyed by
// OrgID. This package decodes those records into typed structs and encodes
// them back, reusing the line-level RPSL scanner.
package arinwhois

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/rpsl"
)

// NetType values observed in ARIN bulk WHOIS that matter for portability
// classification (paper §2.1).
const (
	NetTypeDirectAllocation = "Direct Allocation"
	NetTypeDirectAssignment = "Direct Assignment"
	NetTypeReallocation     = "Reallocation"
	NetTypeReassignment     = "Reassignment"
	NetTypeLegacy           = "Legacy"
)

// Net is an ARIN network record (NetHandle object).
type Net struct {
	Handle  string        // NetHandle, e.g. NET-192-0-2-0-1
	OrgID   string        // OrgID of the registrant
	Parent  string        // parent NetHandle, "" for top-level
	Name    string        // NetName
	Range   netutil.Range // NetRange
	Type    string        // NetType (see constants)
	RegDate string        // registration date, YYYY-MM-DD (informational)
	Country string        // Country (ISO 3166-1 alpha-2)
}

// AS is an ARIN autonomous-system record (ASHandle object).
type AS struct {
	Handle string // ASHandle, e.g. AS64500
	Number uint32 // ASNumber
	OrgID  string
	Name   string // ASName
}

// Org is an ARIN organisation record (OrgID object).
type Org struct {
	ID      string // OrgID
	Name    string // OrgName
	Country string // Country (ISO 3166-1 alpha-2)
}

// Database is the parsed content of an ARIN bulk-WHOIS dump.
type Database struct {
	Nets []*Net
	ASes []*AS
	Orgs []*Org
}

// Parse decodes an ARIN bulk-WHOIS dump. Records of unknown classes are
// skipped; malformed known records are an error.
func Parse(r io.Reader) (*Database, error) {
	return ParseWith(r, nil)
}

// ParseWith is Parse threaded through a load-diagnostics collector. A nil
// collector (or strict options) keeps Parse's fail-fast behavior; in
// lenient mode malformed lines and records are skipped and accounted.
func ParseWith(r io.Reader, c *diag.Collector) (*Database, error) {
	rd := rpsl.NewReader(r)
	if !c.Strict() {
		rd.OnBadLine = func(line int, err error) error {
			return c.Skip(line, -1, err)
		}
	}
	db := &Database{}
	var o rpsl.Object // reused across records; extracted strings are interned
	for i := 0; ; i++ {
		err := rd.NextInto(&o)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("arinwhois: %w", err)
		}
		switch o.Class() {
		case "nethandle":
			n, err := netFromObject(&o)
			if err != nil {
				if err := c.Skip(i, -1, fmt.Errorf("arinwhois: record %d: %w", i, err)); err != nil {
					return nil, err
				}
				continue
			}
			db.Nets = append(db.Nets, n)
		case "ashandle":
			a, err := asFromObject(&o)
			if err != nil {
				if err := c.Skip(i, -1, fmt.Errorf("arinwhois: record %d: %w", i, err)); err != nil {
					return nil, err
				}
				continue
			}
			db.ASes = append(db.ASes, a)
		case "orgid":
			g, err := orgFromObject(&o)
			if err != nil {
				if err := c.Skip(i, -1, fmt.Errorf("arinwhois: record %d: %w", i, err)); err != nil {
					return nil, err
				}
				continue
			}
			db.Orgs = append(db.Orgs, g)
		}
		c.Parsed()
	}
	return db, nil
}

func netFromObject(o *rpsl.Object) (*Net, error) {
	n := &Net{Handle: o.Key()}
	n.OrgID, _ = o.Get("orgid")
	n.Parent, _ = o.Get("parent")
	n.Name, _ = o.Get("netname")
	n.Type, _ = o.Get("nettype")
	n.RegDate, _ = o.Get("regdate")
	n.Country, _ = o.Get("country")
	rng, ok := o.Get("netrange")
	if !ok {
		return nil, fmt.Errorf("net %s: missing NetRange", n.Handle)
	}
	var err error
	n.Range, err = netutil.ParseRange(rng)
	if err != nil {
		return nil, fmt.Errorf("net %s: %w", n.Handle, err)
	}
	return n, nil
}

func asFromObject(o *rpsl.Object) (*AS, error) {
	a := &AS{Handle: o.Key()}
	a.OrgID, _ = o.Get("orgid")
	a.Name, _ = o.Get("asname")
	numStr, ok := o.Get("asnumber")
	if !ok {
		// Fall back to the handle ("AS64500").
		numStr = strings.TrimPrefix(strings.ToUpper(a.Handle), "AS")
	}
	v, err := strconv.ParseUint(strings.TrimSpace(numStr), 10, 32)
	if err != nil {
		return nil, fmt.Errorf("as %s: bad ASNumber %q", a.Handle, numStr)
	}
	a.Number = uint32(v)
	return a, nil
}

func orgFromObject(o *rpsl.Object) (*Org, error) {
	g := &Org{ID: o.Key()}
	g.Name, _ = o.Get("orgname")
	g.Country, _ = o.Get("country")
	if g.Name == "" {
		return nil, fmt.Errorf("org %s: missing OrgName", g.ID)
	}
	return g, nil
}

// Write encodes the database in bulk-WHOIS form: orgs, then ASes, then nets.
func Write(w io.Writer, db *Database) error {
	ww := rpsl.NewWriter(w)
	for _, g := range db.Orgs {
		o := &rpsl.Object{}
		o.Add("OrgID", g.ID)
		o.Add("OrgName", g.Name)
		if g.Country != "" {
			o.Add("Country", g.Country)
		}
		if err := ww.Write(o); err != nil {
			return err
		}
	}
	for _, a := range db.ASes {
		o := &rpsl.Object{}
		o.Add("ASHandle", a.Handle)
		o.Add("ASNumber", strconv.FormatUint(uint64(a.Number), 10))
		if a.Name != "" {
			o.Add("ASName", a.Name)
		}
		if a.OrgID != "" {
			o.Add("OrgID", a.OrgID)
		}
		if err := ww.Write(o); err != nil {
			return err
		}
	}
	for _, n := range db.Nets {
		o := &rpsl.Object{}
		o.Add("NetHandle", n.Handle)
		o.Add("NetRange", n.Range.String())
		if n.Name != "" {
			o.Add("NetName", n.Name)
		}
		if n.Type != "" {
			o.Add("NetType", n.Type)
		}
		if n.OrgID != "" {
			o.Add("OrgID", n.OrgID)
		}
		if n.Parent != "" {
			o.Add("Parent", n.Parent)
		}
		if n.RegDate != "" {
			o.Add("RegDate", n.RegDate)
		}
		if n.Country != "" {
			o.Add("Country", n.Country)
		}
		if err := ww.Write(o); err != nil {
			return err
		}
	}
	return nil
}
