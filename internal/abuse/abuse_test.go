package abuse

import (
	"testing"

	"ipleasing/internal/core"
	"ipleasing/internal/rpki"
	"ipleasing/internal/spamhaus"
	"ipleasing/internal/synth"
	"ipleasing/internal/whois"
)

// TestPaperShapes verifies §6.4's headline: leased prefixes are roughly
// five times more likely to be originated by blocklisted ASes, and their
// ROAs are far more likely to authorise blocklisted ASes.
func TestPaperShapes(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 31, Scale: 0.02})
	res := w.Pipeline().Infer()
	rep := Analyze(res, w.Table(), w.Drop, w.RPKI.Latest().Set())

	if rep.LeasedTotal == 0 || rep.NonLeasedTotal == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	ls, ns := rep.LeasedDropShare(), rep.NonLeasedDropShare()
	if ls <= ns {
		t.Fatalf("leased drop share %.4f <= non-leased %.4f", ls, ns)
	}
	if ratio := rep.AbuseRatio(); ratio < 2 || ratio > 15 {
		t.Errorf("abuse ratio = %.1f, want ~5", ratio)
	}
	if ls < 0.003 || ls > 0.03 {
		t.Errorf("leased drop share = %.4f, want ~0.011", ls)
	}

	// ROA coverage: leased ~66%, non-leased ~46%.
	leasedCover := float64(rep.LeasedWithROA) / float64(rep.LeasedTotal)
	nonLeasedCover := float64(rep.NonLeasedWithROA) / float64(rep.NonLeasedTotal)
	if leasedCover < 0.5 || leasedCover > 0.8 {
		t.Errorf("leased ROA coverage = %.2f, want ~0.66", leasedCover)
	}
	if nonLeasedCover < 0.35 || nonLeasedCover > 0.6 {
		t.Errorf("non-leased ROA coverage = %.2f, want ~0.46", nonLeasedCover)
	}
	// Blocklisted-AS ROAs concentrate on leased prefixes.
	if rep.LeasedROABadShare() <= rep.NonLeasedROABadShare() {
		t.Errorf("ROA bad shares: leased %.4f <= non-leased %.4f",
			rep.LeasedROABadShare(), rep.NonLeasedROABadShare())
	}

	// ROV distribution: every announced prefix lands in exactly one
	// state, and Valid dominates among ROA-covered prefixes (the
	// generator signs ROAs for the actual origins).
	leasedROV := rep.LeasedROV[rpki.NotFound] + rep.LeasedROV[rpki.Valid] + rep.LeasedROV[rpki.Invalid]
	if leasedROV != rep.LeasedTotal {
		t.Errorf("leased ROV states %d != %d prefixes", leasedROV, rep.LeasedTotal)
	}
	nonROV := rep.NonLeasedROV[rpki.NotFound] + rep.NonLeasedROV[rpki.Valid] + rep.NonLeasedROV[rpki.Invalid]
	if nonROV != rep.NonLeasedTotal {
		t.Errorf("non-leased ROV states %d != %d prefixes", nonROV, rep.NonLeasedTotal)
	}
	if rep.LeasedROV[rpki.Valid] == 0 || rep.NonLeasedROV[rpki.Valid] == 0 {
		t.Error("no Valid announcements")
	}
	if rep.LeasedROV[rpki.NotFound] == 0 {
		t.Error("no NotFound announcements (ROA coverage should be partial)")
	}
	if rep.ROVShare(true, rpki.Valid) <= 0 || rep.ROVShare(false, rpki.Valid) <= 0 {
		t.Error("ROVShare zero")
	}
}

func TestAnalyzeWithoutRPKI(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 5, Scale: 0.005})
	res := w.Pipeline().Infer()
	rep := Analyze(res, w.Table(), w.Drop, nil)
	if rep.LeasedROAs != 0 || rep.NonLeasedWithROA != 0 {
		t.Fatal("ROA counts without VRPs")
	}
	if rep.LeasedTotal == 0 {
		t.Fatal("no leased prefixes analysed")
	}
}

func TestZeroGuards(t *testing.T) {
	var rep Report
	if rep.LeasedDropShare() != 0 || rep.AbuseRatio() != 0 ||
		rep.LeasedROABadShare() != 0 || rep.NonLeasedROABadShare() != 0 {
		t.Fatal("zero-division guards missing")
	}
}

func TestAnalyzeEmptyResult(t *testing.T) {
	res := &core.Result{Regions: map[whois.Registry]*core.RegionResult{}}
	drop := &spamhaus.Archive{}
	rep := Analyze(res, nil, drop, rpki.NewSet(nil))
	if rep.LeasedTotal != 0 || rep.NonLeasedTotal != 0 {
		t.Fatal("counts from empty inputs")
	}
}
