// Package abuse computes the paper's §6.4 abuse correlation: the share of
// leased versus non-leased prefixes originated by Spamhaus ASN-DROP-listed
// ASes, and the share of their RPKI ROAs that authorise blocklisted ASes.
package abuse

import (
	"ipleasing/internal/bgp"
	"ipleasing/internal/core"
	"ipleasing/internal/netutil"
	"ipleasing/internal/rpki"
	"ipleasing/internal/spamhaus"
)

// Report is the §6.4 result set.
type Report struct {
	// Origination by blocklisted ASes.
	LeasedTotal      int
	LeasedDropped    int // leased prefixes originated by an ASN-DROP AS
	NonLeasedTotal   int
	NonLeasedDropped int

	// ROA analysis.
	LeasedROAs       int // ROAs covering leased prefixes
	LeasedROAsBad    int // of those, authorising a blocklisted AS
	LeasedWithROA    int // leased prefixes with at least one ROA
	NonLeasedWithROA int
	NonLeasedROABad  int // non-leased prefixes whose ROAs include a blocklisted AS

	// Route-origin-validation states (RFC 6811) of the announcements,
	// indexed by rpki.State: how RPKI-compliant is leased space compared
	// to the rest of the table? (extension of §6.4)
	LeasedROV    [3]int
	NonLeasedROV [3]int
}

// ROVShare returns the share of leased (or non-leased) announcements in
// the given validation state.
func (r *Report) ROVShare(leased bool, s rpki.State) float64 {
	counts := r.NonLeasedROV
	total := r.NonLeasedTotal
	if leased {
		counts, total = r.LeasedROV, r.LeasedTotal
	}
	return share(counts[s], total)
}

// LeasedDropShare is the fraction of leased prefixes originated by
// blocklisted ASes (paper: 1.1%).
func (r *Report) LeasedDropShare() float64 { return share(r.LeasedDropped, r.LeasedTotal) }

// NonLeasedDropShare is the same for non-leased prefixes (paper: 0.2%).
func (r *Report) NonLeasedDropShare() float64 { return share(r.NonLeasedDropped, r.NonLeasedTotal) }

// AbuseRatio is how many times more likely a leased prefix is to be
// originated by a blocklisted AS (paper: ≈5×).
func (r *Report) AbuseRatio() float64 {
	nl := r.NonLeasedDropShare()
	if nl == 0 {
		return 0
	}
	return r.LeasedDropShare() / nl
}

// LeasedROABadShare is the fraction of leased-prefix ROAs naming a
// blocklisted AS (paper: 1.6%).
func (r *Report) LeasedROABadShare() float64 { return share(r.LeasedROAsBad, r.LeasedROAs) }

// NonLeasedROABadShare is the fraction of ROA-covered non-leased prefixes
// whose ROAs include a blocklisted AS (paper: 0.2%).
func (r *Report) NonLeasedROABadShare() float64 {
	return share(r.NonLeasedROABad, r.NonLeasedWithROA)
}

func share(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Analyze computes the report. The drop archive provides blocklist
// membership over the observation window; vrps is the RPKI state at the
// measurement time.
func Analyze(res *core.Result, table *bgp.Table, drop *spamhaus.Archive, vrps *rpki.Set) *Report {
	rep := &Report{}
	leasedSet := make(map[netutil.Prefix]bool)

	for _, inf := range res.LeasedInferences() {
		leasedSet[inf.Prefix] = true
		rep.LeasedTotal++
		dropped := false
		for _, o := range inf.LeafOrigins {
			if drop.ListedEver(o) {
				dropped = true
			}
		}
		if dropped {
			rep.LeasedDropped++
		}
		if vrps != nil {
			covering := vrps.Covering(inf.Prefix)
			if len(covering) > 0 {
				rep.LeasedWithROA++
			}
			for _, v := range covering {
				rep.LeasedROAs++
				if drop.ListedEver(v.ASN) {
					rep.LeasedROAsBad++
				}
			}
			rep.LeasedROV[rovState(vrps, inf.Prefix, inf.LeafOrigins)]++
		}
	}

	if table != nil {
		table.Walk(func(p netutil.Prefix, origins []uint32) bool {
			if leasedSet[p] {
				return true
			}
			rep.NonLeasedTotal++
			for _, o := range origins {
				if drop.ListedEver(o) {
					rep.NonLeasedDropped++
					break
				}
			}
			if vrps != nil {
				covering := vrps.Covering(p)
				if len(covering) > 0 {
					rep.NonLeasedWithROA++
					for _, v := range covering {
						if drop.ListedEver(v.ASN) {
							rep.NonLeasedROABad++
							break
						}
					}
				}
				rep.NonLeasedROV[rovState(vrps, p, origins)]++
			}
			return true
		})
	}
	return rep
}

// rovState validates an announcement set: Valid if any origin validates,
// otherwise Invalid if covered, otherwise NotFound.
func rovState(vrps *rpki.Set, p netutil.Prefix, origins []uint32) rpki.State {
	state := rpki.NotFound
	for _, o := range origins {
		switch vrps.Validate(p, o) {
		case rpki.Valid:
			return rpki.Valid
		case rpki.Invalid:
			state = rpki.Invalid
		}
	}
	if len(origins) == 0 {
		return vrps.Validate(p, 0) // membership only; origin 0 never validates
	}
	return state
}
