package spamhaus

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const sample = `{"asn":213371,"rir":"ripencc","domain":"example.net","cc":"SC","asname":"SQUITTER-NETWORKS"}
{"type":"metadata","timestamp":1712000000}
{"asn":401115,"rir":"arin","cc":"US","asname":"EXAMPLE-HOSTING"}
`

func TestParse(t *testing.T) {
	l, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.Contains(213371) || !l.Contains(401115) || l.Contains(1) {
		t.Fatal("Contains wrong")
	}
	asns := l.ASNs()
	if len(asns) != 2 || asns[0] != 213371 {
		t.Fatalf("ASNs = %v", asns)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := Parse(strings.NewReader(`{"rir":"arin"}` + "\n")); err == nil {
		t.Fatal("missing asn accepted")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	l, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Contains(213371) {
		t.Fatal("round trip lost entries")
	}
	// Entry fields preserved.
	var found bool
	for _, e := range back.Entries {
		if e.ASN == 213371 && e.ASName == "SQUITTER-NETWORKS" && e.CC == "SC" {
			found = true
		}
	}
	if !found {
		t.Fatal("entry fields lost")
	}
}

func TestArchive(t *testing.T) {
	a := &Archive{}
	a.Add(2024, time.March, NewList([]Entry{{ASN: 100}}))
	a.Add(2024, time.February, NewList([]Entry{{ASN: 200}}))
	a.Add(2024, time.April, NewList([]Entry{{ASN: 100}, {ASN: 300}}))

	if len(a.Months) != 3 || a.Months[0].Month != time.February {
		t.Fatalf("months unsorted: %+v", a.Months)
	}
	if !a.ListedEver(200) || !a.ListedEver(300) || a.ListedEver(999) {
		t.Fatal("ListedEver wrong")
	}
	u := a.Union()
	if len(u) != 3 || u[0] != 100 || u[2] != 300 {
		t.Fatalf("Union = %v", u)
	}
}

func TestArchiveDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := &Archive{}
	a.Add(2024, time.February, NewList([]Entry{{ASN: 100, ASName: "X"}}))
	a.Add(2024, time.May, NewList([]Entry{{ASN: 300}}))
	if err := a.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Months) != 2 {
		t.Fatalf("months = %d", len(back.Months))
	}
	if back.Months[0].Year != 2024 || back.Months[0].Month != time.February || !back.Months[0].List.Contains(100) {
		t.Fatalf("month 0 = %+v", back.Months[0])
	}
	if _, err := LoadDir(dir + "-none"); err == nil {
		t.Fatal("missing dir accepted")
	}
}
