// Package spamhaus reads and writes the Spamhaus ASN-DROP list format and
// manages monthly snapshots of it, as the paper's abuse analysis does
// (§6.4): the list names ASes used for spam operations, botnet command and
// control, and similar abusive activity.
//
// ASN-DROP is distributed as JSON Lines; each entry looks like
//
//	{"asn":213371,"rir":"ripencc","domain":"example.net","cc":"SC","asname":"SQUITTER-NETWORKS"}
//
// and metadata lines carrying "type":"metadata" are ignored.
package spamhaus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ipleasing/internal/diag"
)

// Entry is one blocklisted AS.
type Entry struct {
	ASN    uint32 `json:"asn"`
	RIR    string `json:"rir,omitempty"`
	Domain string `json:"domain,omitempty"`
	CC     string `json:"cc,omitempty"`
	ASName string `json:"asname,omitempty"`
}

// List is one ASN-DROP snapshot.
type List struct {
	Entries []Entry
	byASN   map[uint32]bool
}

// NewList builds a snapshot from entries.
func NewList(entries []Entry) *List {
	l := &List{Entries: entries, byASN: make(map[uint32]bool, len(entries))}
	for _, e := range entries {
		l.byASN[e.ASN] = true
	}
	return l
}

// Contains reports whether asn is on the list.
func (l *List) Contains(asn uint32) bool { return l.byASN[asn] }

// Len returns the number of listed ASes.
func (l *List) Len() int { return len(l.Entries) }

// ASNs returns the listed ASNs in ascending order.
func (l *List) ASNs() []uint32 {
	out := make([]uint32, 0, len(l.byASN))
	for a := range l.byASN {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// metaLine matches Spamhaus metadata records interleaved in the feed.
type metaLine struct {
	Type string `json:"type"`
}

// Parse reads a JSONL ASN-DROP feed.
func Parse(r io.Reader) (*List, error) {
	return ParseWith(r, nil)
}

// ParseWith is Parse threaded through a load-diagnostics collector. A nil
// collector (or strict options) keeps Parse's fail-fast behavior; in
// lenient mode malformed lines are skipped and accounted.
func ParseWith(r io.Reader, c *diag.Collector) (*List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var entries []Entry
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var meta metaLine
		if err := json.Unmarshal([]byte(line), &meta); err == nil && meta.Type == "metadata" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			if err := c.Skip(lineNum, -1, fmt.Errorf("spamhaus: line %d: %w", lineNum, err)); err != nil {
				return nil, err
			}
			continue
		}
		if e.ASN == 0 {
			if err := c.Skip(lineNum, -1, fmt.Errorf("spamhaus: line %d: missing asn", lineNum)); err != nil {
				return nil, err
			}
			continue
		}
		entries = append(entries, e)
		c.Parsed()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewList(entries), nil
}

// Write renders the list as JSONL, entries sorted by ASN.
func Write(w io.Writer, l *List) error {
	bw := bufio.NewWriter(w)
	sorted := make([]Entry, len(l.Entries))
	copy(sorted, l.Entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ASN < sorted[j].ASN })
	for _, e := range sorted {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Archive is a set of monthly ASN-DROP snapshots, as the paper collects
// February through May 2024.
type Archive struct {
	Months []Month // ascending by Year/Month
}

// Month is one monthly snapshot.
type Month struct {
	Year  int
	Month time.Month
	List  *List
}

// Add inserts a monthly snapshot in order.
func (a *Archive) Add(year int, month time.Month, l *List) {
	m := Month{Year: year, Month: month, List: l}
	i := sort.Search(len(a.Months), func(i int) bool {
		mi := a.Months[i]
		return mi.Year > year || (mi.Year == year && mi.Month > month)
	})
	a.Months = append(a.Months, Month{})
	copy(a.Months[i+1:], a.Months[i:])
	a.Months[i] = m
}

// ListedEver reports whether asn appears in any monthly snapshot — the
// paper's membership test over its observation window. A nil archive
// (degraded dataset with no DROP source) lists nothing.
func (a *Archive) ListedEver(asn uint32) bool {
	if a == nil {
		return false
	}
	for _, m := range a.Months {
		if m.List.Contains(asn) {
			return true
		}
	}
	return false
}

// Union returns the ASNs listed in at least one month. Nil for a nil
// archive.
func (a *Archive) Union() []uint32 {
	if a == nil {
		return nil
	}
	seen := make(map[uint32]bool)
	for _, m := range a.Months {
		for asn := range m.List.byASN {
			seen[asn] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// monthFileName renders "asndrop-YYYYMM.json".
func monthFileName(year int, month time.Month) string {
	return fmt.Sprintf("asndrop-%04d%02d.json", year, int(month))
}

// WriteDir writes one JSON file per month under dir.
func (a *Archive) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, m := range a.Months {
		f, err := os.Create(filepath.Join(dir, monthFileName(m.Year, m.Month)))
		if err != nil {
			return err
		}
		werr := Write(f, m.List)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// LoadDir reads every monthly file in dir.
func LoadDir(dir string) (*Archive, error) {
	return LoadDirWith(dir, nil)
}

// LoadDirWith is LoadDir threaded through a load-diagnostics collector. A
// nil collector (or strict options) keeps LoadDir's fail-fast behavior. In
// lenient mode a missing directory yields an empty archive with the report
// marked Missing, and malformed feed lines are skipped and accounted.
func LoadDirWith(dir string, c *diag.Collector) (*Archive, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if !c.Strict() && os.IsNotExist(err) {
			c.SetFile(dir)
			c.MarkMissing()
			return &Archive{}, nil
		}
		return nil, err
	}
	c.SetFile(dir)
	a := &Archive{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "asndrop-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		stamp := strings.TrimSuffix(strings.TrimPrefix(name, "asndrop-"), ".json")
		if len(stamp) != 6 {
			continue
		}
		var year, monthNum int
		if _, err := fmt.Sscanf(stamp, "%4d%2d", &year, &monthNum); err != nil || monthNum < 1 || monthNum > 12 {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		c.SetFile(path)
		l, perr := ParseWith(f, c)
		f.Close()
		if perr != nil {
			return nil, fmt.Errorf("spamhaus: %s: %w", name, perr)
		}
		a.Add(year, time.Month(monthNum), l)
	}
	c.SetFile(dir)
	return a, nil
}
