// Package netutil provides IPv4 prefix and address-range arithmetic used
// throughout the leasing-inference pipeline.
//
// The package deliberately represents IPv4 addresses as uint32 and prefixes
// as a (base, length) pair rather than using net/netip: the inference
// pipeline stores millions of prefixes in tries and maps, and a fixed
// 8-byte comparable value keeps those structures compact and allocation
// free. Conversion helpers to and from netip.Prefix are provided for
// interoperability at API boundaries.
package netutil

import (
	"fmt"
	"math/bits"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var parts [4]uint32
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netutil: invalid IPv4 address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 32)
		if err != nil || v > 255 || tok == "" || (len(tok) > 1 && tok[0] == '0') {
			return 0, fmt.Errorf("netutil: invalid IPv4 address %q", s)
		}
		parts[i] = uint32(v)
	}
	return Addr(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseAddr is like ParseAddr but panics on error. For tests and
// compile-time-constant-like initialisation of known-good literals only;
// code parsing external input must use ParseAddr and handle the error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the dotted-quad representation.
func (a Addr) String() string {
	var b [15]byte
	out := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(a>>16&0xff), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(a>>8&0xff), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(a&0xff), 10)
	return string(out)
}

// Netip converts to a netip.Addr.
func (a Addr) Netip() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}

// AddrFromNetip converts from a netip.Addr. The address must be IPv4
// (or IPv4-mapped IPv6).
func AddrFromNetip(a netip.Addr) (Addr, error) {
	a = a.Unmap()
	if !a.Is4() {
		return 0, fmt.Errorf("netutil: %v is not an IPv4 address", a)
	}
	b := a.As4()
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])), nil
}

// Prefix is an IPv4 CIDR prefix. Base is the network address (low bits
// outside Len are zero for a canonical prefix); Len is the prefix length
// in [0,32]. The zero value is 0.0.0.0/0.
type Prefix struct {
	Base Addr
	Len  uint8
}

// ParsePrefix parses "a.b.c.d/len". Non-canonical bases (host bits set)
// are rejected; use ParsePrefixLoose to mask them instead.
func ParsePrefix(s string) (Prefix, error) {
	base, ln, err := parsePrefixParts(s)
	if err != nil {
		return Prefix{}, err
	}
	if base&Addr(maskOf(ln)) != base {
		return Prefix{}, fmt.Errorf("netutil: prefix %q has host bits set", s)
	}
	return Prefix{Base: base, Len: ln}, nil
}

// ParsePrefixLoose parses "a.b.c.d/len", masking any host bits.
func ParsePrefixLoose(s string) (Prefix, error) {
	base, ln, err := parsePrefixParts(s)
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{Base: base & Addr(maskOf(ln)), Len: ln}, nil
}

func parsePrefixParts(s string) (Addr, uint8, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("netutil: prefix %q missing '/'", s)
	}
	base, err := ParseAddr(s[:slash])
	if err != nil {
		return 0, 0, err
	}
	n, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || n > 32 {
		return 0, 0, fmt.Errorf("netutil: invalid prefix length in %q", s)
	}
	return base, uint8(n), nil
}

// ParsePrefixBytes is ParsePrefix for a byte slice. It applies the same
// strictness (octets without leading zeros, no host bits set) but
// allocates nothing on success, so line-oriented bulk parsers can feed it
// scanner-owned bytes directly.
func ParsePrefixBytes(b []byte) (Prefix, error) {
	var base uint32
	pos := 0
	for i := 0; i < 4; i++ {
		start := pos
		var v uint32
		for pos < len(b) && b[pos] >= '0' && b[pos] <= '9' {
			v = v*10 + uint32(b[pos]-'0')
			if v > 255 {
				return Prefix{}, fmt.Errorf("netutil: invalid IPv4 address %q", b)
			}
			pos++
		}
		if n := pos - start; n == 0 || (n > 1 && b[start] == '0') {
			return Prefix{}, fmt.Errorf("netutil: invalid IPv4 address %q", b)
		}
		base = base<<8 | v
		if i < 3 {
			if pos >= len(b) || b[pos] != '.' {
				return Prefix{}, fmt.Errorf("netutil: invalid IPv4 address %q", b)
			}
			pos++
		}
	}
	if pos >= len(b) || b[pos] != '/' {
		return Prefix{}, fmt.Errorf("netutil: prefix %q missing '/'", b)
	}
	pos++
	start := pos
	var ln uint32
	for pos < len(b) && b[pos] >= '0' && b[pos] <= '9' {
		ln = ln*10 + uint32(b[pos]-'0')
		if ln > 32 {
			return Prefix{}, fmt.Errorf("netutil: invalid prefix length in %q", b)
		}
		pos++
	}
	if pos == start || pos != len(b) {
		return Prefix{}, fmt.Errorf("netutil: invalid prefix length in %q", b)
	}
	if base&maskOf(uint8(ln)) != base {
		return Prefix{}, fmt.Errorf("netutil: prefix %q has host bits set", b)
	}
	return Prefix{Base: Addr(base), Len: uint8(ln)}, nil
}

// MustParsePrefix is like ParsePrefix but panics on error. For tests and
// compile-time-constant-like initialisation of known-good literals only;
// code parsing external input must use ParsePrefix (or ParsePrefixBytes)
// and handle the error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// maskOf returns the network mask for a prefix length.
func maskOf(l uint8) uint32 {
	if l == 0 {
		return 0
	}
	return ^uint32(0) << (32 - l)
}

// Mask returns the network mask of p as an Addr.
func (p Prefix) Mask() Addr { return Addr(maskOf(p.Len)) }

// String returns "a.b.c.d/len".
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(int(p.Len))
}

// Canonical reports whether no host bits are set in Base.
func (p Prefix) Canonical() bool {
	return p.Len <= 32 && p.Base&Addr(maskOf(p.Len)) == p.Base
}

// Canonicalize returns p with host bits masked off.
func (p Prefix) Canonicalize() Prefix {
	if p.Len > 32 {
		p.Len = 32
	}
	p.Base &= Addr(maskOf(p.Len))
	return p
}

// First returns the first address in p (the network address).
func (p Prefix) First() Addr { return p.Base }

// Last returns the last address in p (the broadcast address for p).
func (p Prefix) Last() Addr {
	return p.Base | Addr(^maskOf(p.Len))
}

// NumAddrs returns the number of addresses covered by p.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - p.Len)
}

// Contains reports whether a is inside p.
func (p Prefix) Contains(a Addr) bool {
	return uint32(a)&maskOf(p.Len) == uint32(p.Base)
}

// ContainsPrefix reports whether q is fully inside p (q may equal p).
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Base)
}

// Overlaps reports whether p and q share at least one address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// Parent returns the prefix one bit shorter that contains p.
// Calling Parent on /0 returns /0.
func (p Prefix) Parent() Prefix {
	if p.Len == 0 {
		return p
	}
	np := Prefix{Base: p.Base, Len: p.Len - 1}
	return np.Canonicalize()
}

// Bit returns the i-th most-significant bit of the base address (0-indexed),
// as 0 or 1. Used by radix-trie traversal.
func (p Prefix) Bit(i uint8) int {
	return int(p.Base >> (31 - i) & 1)
}

// SplitHalves splits p into its two children. A /32 has none: ok is
// false and both halves are zero. This is the total form of Halves for
// code paths where the length is not statically known.
func (p Prefix) SplitHalves() (lo, hi Prefix, ok bool) {
	if p.Len >= 32 {
		return Prefix{}, Prefix{}, false
	}
	l := p.Len + 1
	lo = Prefix{Base: p.Base, Len: l}
	hi = Prefix{Base: p.Base | Addr(1<<(32-l)), Len: l}
	return lo, hi, true
}

// Halves splits p into its two children. Panics if p is a /32; call it
// only where the length is statically known to be shorter, and use
// SplitHalves everywhere else.
func (p Prefix) Halves() (lo, hi Prefix) {
	lo, hi, ok := p.SplitHalves()
	if !ok {
		panic("netutil: cannot split a /32")
	}
	return lo, hi
}

// Netip converts to a netip.Prefix.
func (p Prefix) Netip() netip.Prefix {
	return netip.PrefixFrom(p.Base.Netip(), int(p.Len))
}

// PrefixFromNetip converts from a netip.Prefix (must be IPv4).
func PrefixFromNetip(p netip.Prefix) (Prefix, error) {
	a, err := AddrFromNetip(p.Addr())
	if err != nil {
		return Prefix{}, err
	}
	if p.Bits() < 0 || p.Bits() > 32 {
		return Prefix{}, fmt.Errorf("netutil: invalid prefix length %d", p.Bits())
	}
	return Prefix{Base: a, Len: uint8(p.Bits())}.Canonicalize(), nil
}

// Compare orders prefixes by base address, then by length (shorter first).
// This matches the natural "supernet before subnet" ordering.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Base < q.Base:
		return -1
	case p.Base > q.Base:
		return 1
	case p.Len < q.Len:
		return -1
	case p.Len > q.Len:
		return 1
	}
	return 0
}

// SortPrefixes sorts prefixes in place in Compare order.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}

// Range is an inclusive IPv4 address range [First, Last].
type Range struct {
	First, Last Addr
}

// ParseRange parses "a.b.c.d - e.f.g.h" (whitespace around '-' optional).
func ParseRange(s string) (Range, error) {
	dash := strings.IndexByte(s, '-')
	if dash < 0 {
		return Range{}, fmt.Errorf("netutil: range %q missing '-'", s)
	}
	first, err := ParseAddr(strings.TrimSpace(s[:dash]))
	if err != nil {
		return Range{}, err
	}
	last, err := ParseAddr(strings.TrimSpace(s[dash+1:]))
	if err != nil {
		return Range{}, err
	}
	if last < first {
		return Range{}, fmt.Errorf("netutil: inverted range %q", s)
	}
	return Range{First: first, Last: last}, nil
}

// String returns "a.b.c.d - e.f.g.h" in the RPSL inetnum style.
func (r Range) String() string {
	return r.First.String() + " - " + r.Last.String()
}

// RangeOf returns the range covered by a prefix.
func RangeOf(p Prefix) Range {
	return Range{First: p.First(), Last: p.Last()}
}

// NumAddrs returns the number of addresses in the range.
func (r Range) NumAddrs() uint64 {
	return uint64(r.Last) - uint64(r.First) + 1
}

// Contains reports whether a is inside the range.
func (r Range) Contains(a Addr) bool {
	return a >= r.First && a <= r.Last
}

// ContainsRange reports whether q is fully inside r.
func (r Range) ContainsRange(q Range) bool {
	return q.First >= r.First && q.Last <= r.Last
}

// IsCIDR reports whether the range is exactly one CIDR prefix, and if so
// returns it.
func (r Range) IsCIDR() (Prefix, bool) {
	ps := r.Prefixes()
	if len(ps) == 1 {
		return ps[0], true
	}
	return Prefix{}, false
}

// Prefixes decomposes the range into the minimal ordered set of CIDR
// prefixes that exactly covers it.
func (r Range) Prefixes() []Prefix {
	var out []Prefix
	cur := uint64(r.First)
	end := uint64(r.Last)
	for cur <= end {
		// The block starting at cur can be no larger than its address
		// alignment allows, and must not extend past end.
		tz := bits.TrailingZeros32(uint32(cur))
		if cur == 0 {
			tz = 32
		}
		l := uint8(32 - tz) // shortest length the alignment allows
		remaining := end - cur + 1
		for l < 32 && uint64(1)<<(32-l) > remaining {
			l++
		}
		p := Prefix{Base: Addr(uint32(cur)), Len: l}
		out = append(out, p)
		cur += p.NumAddrs()
	}
	return out
}
