package netutil

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", 0xc0000201, true},
		{"10.0.0.1", 0x0a000001, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"1.2.3.256", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
		{"01.2.3.4", 0, false}, // leading zero rejected
		{"1..3.4", 0, false},
		{"-1.2.3.4", 0, false},
		{" 1.2.3.4", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", c.in)
		}
	}
}

func TestAddrString(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "192.0.2.1", "10.20.30.40"} {
		a := MustParseAddr(s)
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestAddrStringRoundTripQuick(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := ParseAddr(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetipConversion(t *testing.T) {
	a := MustParseAddr("203.0.113.9")
	na := a.Netip()
	if na != netip.MustParseAddr("203.0.113.9") {
		t.Fatalf("Netip() = %v", na)
	}
	back, err := AddrFromNetip(na)
	if err != nil || back != a {
		t.Fatalf("AddrFromNetip = %v, %v", back, err)
	}
	if _, err := AddrFromNetip(netip.MustParseAddr("2001:db8::1")); err == nil {
		t.Fatal("expected error for IPv6")
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if p.Base != MustParseAddr("192.0.2.0") || p.Len != 24 {
		t.Fatalf("bad parse: %+v", p)
	}
	if _, err := ParsePrefix("192.0.2.1/24"); err == nil {
		t.Fatal("host bits should be rejected")
	}
	lp, err := ParsePrefixLoose("192.0.2.1/24")
	if err != nil || lp != MustParsePrefix("192.0.2.0/24") {
		t.Fatalf("loose parse = %v, %v", lp, err)
	}
	for _, bad := range []string{"192.0.2.0", "192.0.2.0/33", "192.0.2.0/-1", "x/8", "1.2.3.4/"} {
		if _, err := ParsePrefixLoose(bad); err == nil {
			t.Errorf("ParsePrefixLoose(%q) succeeded", bad)
		}
	}
}

func TestPrefixStringRoundTripQuick(t *testing.T) {
	f := func(v uint32, l uint8) bool {
		p := Prefix{Base: Addr(v), Len: l % 33}.Canonicalize()
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixFirstLast(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if p.First() != MustParseAddr("10.0.0.0") || p.Last() != MustParseAddr("10.255.255.255") {
		t.Fatalf("first/last wrong: %v %v", p.First(), p.Last())
	}
	h := MustParsePrefix("192.0.2.5/32")
	if h.First() != h.Last() {
		t.Fatal("/32 first != last")
	}
	z := Prefix{}
	if z.First() != 0 || z.Last() != 0xffffffff {
		t.Fatal("/0 bounds wrong")
	}
}

func TestPrefixNumAddrs(t *testing.T) {
	if got := MustParsePrefix("10.0.0.0/8").NumAddrs(); got != 1<<24 {
		t.Fatalf("NumAddrs(/8) = %d", got)
	}
	if got := (Prefix{}).NumAddrs(); got != 1<<32 {
		t.Fatalf("NumAddrs(/0) = %d", got)
	}
	if got := MustParsePrefix("1.2.3.4/32").NumAddrs(); got != 1 {
		t.Fatalf("NumAddrs(/32) = %d", got)
	}
}

func TestContains(t *testing.T) {
	p := MustParsePrefix("198.51.100.0/24")
	if !p.Contains(MustParseAddr("198.51.100.0")) ||
		!p.Contains(MustParseAddr("198.51.100.255")) ||
		p.Contains(MustParseAddr("198.51.101.0")) ||
		p.Contains(MustParseAddr("198.51.99.255")) {
		t.Fatal("Contains boundaries wrong")
	}
}

func TestContainsPrefixAndOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.ContainsPrefix(b) || b.ContainsPrefix(a) {
		t.Fatal("ContainsPrefix wrong")
	}
	if !a.ContainsPrefix(a) {
		t.Fatal("prefix should contain itself")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) || a.Overlaps(c) {
		t.Fatal("Overlaps wrong")
	}
}

func TestParentHalvesBit(t *testing.T) {
	p := MustParsePrefix("192.0.2.128/25")
	if p.Parent() != MustParsePrefix("192.0.2.0/24") {
		t.Fatalf("Parent = %v", p.Parent())
	}
	if (Prefix{}).Parent() != (Prefix{}) {
		t.Fatal("Parent of /0 should be /0")
	}
	lo, hi := MustParsePrefix("192.0.2.0/24").Halves()
	if lo != MustParsePrefix("192.0.2.0/25") || hi != MustParsePrefix("192.0.2.128/25") {
		t.Fatalf("Halves = %v %v", lo, hi)
	}
	if p.Bit(24) != 1 {
		t.Fatal("Bit(24) of .128/25 should be 1")
	}
	if p.Bit(0) != 1 { // 192 = 0b11000000
		t.Fatal("Bit(0) of 192/... should be 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Halves of /32 should panic")
		}
	}()
	MustParsePrefix("1.2.3.4/32").Halves()
}

func TestSplitHalvesGuard(t *testing.T) {
	if _, _, ok := MustParsePrefix("1.2.3.4/32").SplitHalves(); ok {
		t.Fatal("SplitHalves of /32 reported ok")
	}
	lo, hi, ok := MustParsePrefix("192.0.2.6/31").SplitHalves()
	if !ok || lo != MustParsePrefix("192.0.2.6/32") || hi != MustParsePrefix("192.0.2.7/32") {
		t.Fatalf("SplitHalves(/31) = %v %v %v", lo, hi, ok)
	}
	// The panicking form and the total form must agree below /32.
	plo, phi := MustParsePrefix("192.0.2.6/31").Halves()
	if plo != lo || phi != hi {
		t.Fatalf("Halves disagrees with SplitHalves: %v %v", plo, phi)
	}
}

func TestHalvesReassembleQuick(t *testing.T) {
	f := func(v uint32, l uint8) bool {
		p := Prefix{Base: Addr(v), Len: l % 32}.Canonicalize() // never /32
		lo, hi := p.Halves()
		return lo.Parent() == p && hi.Parent() == p &&
			p.ContainsPrefix(lo) && p.ContainsPrefix(hi) &&
			!lo.Overlaps(hi) &&
			lo.NumAddrs()+hi.NumAddrs() == p.NumAddrs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAndSort(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/16"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("9.0.0.0/8"),
		MustParsePrefix("10.0.1.0/24"),
	}
	SortPrefixes(ps)
	want := []Prefix{
		MustParsePrefix("9.0.0.0/8"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.0.0.0/16"),
		MustParsePrefix("10.0.1.0/24"),
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("sort[%d] = %v, want %v", i, ps[i], want[i])
		}
	}
	if want[0].Compare(want[0]) != 0 {
		t.Fatal("Compare self != 0")
	}
}

func TestParseRange(t *testing.T) {
	r, err := ParseRange("192.0.2.0 - 192.0.2.255")
	if err != nil || r.First != MustParseAddr("192.0.2.0") || r.Last != MustParseAddr("192.0.2.255") {
		t.Fatalf("ParseRange = %+v, %v", r, err)
	}
	if _, err := ParseRange("192.0.2.255 - 192.0.2.0"); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := ParseRange("192.0.2.0"); err == nil {
		t.Fatal("missing dash accepted")
	}
	// no-space form
	r2, err := ParseRange("10.0.0.0-10.0.0.3")
	if err != nil || r2.NumAddrs() != 4 {
		t.Fatalf("no-space range: %+v %v", r2, err)
	}
	if r.String() != "192.0.2.0 - 192.0.2.255" {
		t.Fatalf("Range.String = %q", r.String())
	}
}

func TestRangeIsCIDR(t *testing.T) {
	r := RangeOf(MustParsePrefix("10.0.0.0/22"))
	p, ok := r.IsCIDR()
	if !ok || p != MustParsePrefix("10.0.0.0/22") {
		t.Fatalf("IsCIDR = %v %v", p, ok)
	}
	nr := Range{First: MustParseAddr("10.0.0.1"), Last: MustParseAddr("10.0.0.4")}
	if _, ok := nr.IsCIDR(); ok {
		t.Fatal("unaligned range reported as CIDR")
	}
}

func TestRangePrefixesKnown(t *testing.T) {
	cases := []struct {
		r    string
		want []string
	}{
		{"10.0.0.0 - 10.0.0.255", []string{"10.0.0.0/24"}},
		{"10.0.0.1 - 10.0.0.1", []string{"10.0.0.1/32"}},
		{"10.0.0.1 - 10.0.0.4", []string{"10.0.0.1/32", "10.0.0.2/31", "10.0.0.4/32"}},
		{"0.0.0.0 - 255.255.255.255", []string{"0.0.0.0/0"}},
		{"10.0.0.0 - 10.0.1.127", []string{"10.0.0.0/24", "10.0.1.0/25"}},
	}
	for _, c := range cases {
		r, err := ParseRange(c.r)
		if err != nil {
			t.Fatal(err)
		}
		got := r.Prefixes()
		if len(got) != len(c.want) {
			t.Fatalf("Prefixes(%q) = %v, want %v", c.r, got, c.want)
		}
		for i := range got {
			if got[i].String() != c.want[i] {
				t.Fatalf("Prefixes(%q)[%d] = %v, want %v", c.r, i, got[i], c.want[i])
			}
		}
	}
}

// Property: the CIDR decomposition exactly tiles the range — contiguous,
// in order, non-overlapping, covering precisely [First, Last].
func TestRangePrefixesCoverQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		r := Range{First: Addr(a), Last: Addr(b)}
		ps := r.Prefixes()
		if len(ps) == 0 {
			return false
		}
		cur := uint64(r.First)
		var total uint64
		for _, p := range ps {
			if !p.Canonical() {
				return false
			}
			if uint64(p.Base) != cur {
				return false
			}
			cur += p.NumAddrs()
			total += p.NumAddrs()
		}
		return total == r.NumAddrs() && cur == uint64(r.Last)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the decomposition is minimal — no two adjacent prefixes of the
// same length can merge into a valid aligned parent.
func TestRangePrefixesMinimalQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		ps := (Range{First: Addr(a), Last: Addr(b)}).Prefixes()
		for i := 0; i+1 < len(ps); i++ {
			p, q := ps[i], ps[i+1]
			if p.Len == q.Len && p.Len > 0 && p.Parent() == q.Parent() {
				return false // mergeable pair: not minimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRangePrefixesWraparoundTop(t *testing.T) {
	r := Range{First: MustParseAddr("255.255.255.0"), Last: MustParseAddr("255.255.255.255")}
	ps := r.Prefixes()
	if len(ps) != 1 || ps[0] != MustParsePrefix("255.255.255.0/24") {
		t.Fatalf("top range: %v", ps)
	}
}

func TestMaskAndCanonical(t *testing.T) {
	p := MustParsePrefix("172.16.0.0/12")
	if p.Mask() != MustParseAddr("255.240.0.0") {
		t.Fatalf("Mask = %v", p.Mask())
	}
	nc := Prefix{Base: MustParseAddr("10.0.0.1"), Len: 8}
	if nc.Canonical() {
		t.Fatal("non-canonical reported canonical")
	}
	if nc.Canonicalize() != MustParsePrefix("10.0.0.0/8") {
		t.Fatal("Canonicalize wrong")
	}
	over := Prefix{Base: 1, Len: 40}
	if got := over.Canonicalize(); got.Len != 32 {
		t.Fatalf("Canonicalize len>32 -> %v", got)
	}
}

func TestPrefixNetipRoundTrip(t *testing.T) {
	p := MustParsePrefix("100.64.0.0/10")
	np := p.Netip()
	if np != netip.MustParsePrefix("100.64.0.0/10") {
		t.Fatalf("Netip = %v", np)
	}
	back, err := PrefixFromNetip(np)
	if err != nil || back != p {
		t.Fatalf("PrefixFromNetip = %v, %v", back, err)
	}
	if _, err := PrefixFromNetip(netip.MustParsePrefix("2001:db8::/32")); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
}

func BenchmarkRangePrefixes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ranges := make([]Range, 1024)
	for i := range ranges {
		a, c := rng.Uint32(), rng.Uint32()
		if a > c {
			a, c = c, a
		}
		ranges[i] = Range{First: Addr(a), Last: Addr(c)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ranges[i%len(ranges)].Prefixes()
	}
}

func BenchmarkParsePrefix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = ParsePrefix("203.0.113.0/24")
	}
}
