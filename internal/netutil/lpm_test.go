package netutil

import (
	"math/rand"
	"testing"
)

// lpmNaive is the reference oracle: longest match by linear scan,
// duplicates resolved to the highest input index like BuildLPM.
func lpmNaive(ps []Prefix, a Addr) (int32, bool) {
	best, bestLen, ok := int32(-1), -1, false
	for i, p := range ps {
		p = p.Canonicalize()
		if p.Contains(a) && int(p.Len) >= bestLen {
			best, bestLen, ok = int32(i), int(p.Len), true
		}
	}
	return best, ok
}

func lpmNaiveExact(ps []Prefix, q Prefix) (int32, bool) {
	q = q.Canonicalize()
	best, ok := int32(-1), false
	for i, p := range ps {
		if p.Canonicalize() == q {
			best, ok = int32(i), true
		}
	}
	return best, ok
}

func TestLPMEmpty(t *testing.T) {
	for _, idx := range []*LPM{BuildLPM(nil), {}} {
		if _, ok := idx.Lookup(MustParseAddr("10.0.0.1")); ok {
			t.Fatal("empty index matched an address")
		}
		if _, ok := idx.LookupExact(MustParsePrefix("10.0.0.0/8")); ok {
			t.Fatal("empty index matched a prefix exactly")
		}
	}
}

func TestLPMBasic(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.1.2.0/24"),
		MustParsePrefix("10.1.2.128/25"),
		MustParsePrefix("192.168.0.0/16"),
		MustParsePrefix("0.0.0.0/0"),
		MustParsePrefix("255.255.255.255/32"),
	}
	idx := BuildLPM(ps)
	cases := []struct {
		addr string
		want int32
	}{
		{"10.1.2.200", 3}, // deepest /25
		{"10.1.2.100", 2}, // /24 but not /25
		{"10.1.3.1", 1},   // /16 but not /24
		{"10.2.0.1", 0},   // /8 only
		{"192.168.9.9", 4},
		{"11.0.0.1", 5},        // falls through to the default route
		{"0.0.0.0", 5},         // lowest address
		{"255.255.255.255", 6}, // highest address, host route
		{"255.255.255.254", 5}, // one below the host route
	}
	for _, c := range cases {
		got, ok := idx.Lookup(MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %d,%v, want %d", c.addr, got, ok, c.want)
		}
	}
	for i, p := range ps {
		got, ok := idx.LookupExact(p)
		if !ok || got != int32(i) {
			t.Errorf("LookupExact(%s) = %d,%v, want %d", p, got, ok, i)
		}
	}
	if _, ok := idx.LookupExact(MustParsePrefix("10.1.0.0/17")); ok {
		t.Error("LookupExact matched a never-inserted prefix")
	}
	if _, ok := idx.LookupExact(MustParsePrefix("10.1.2.0/25")); ok {
		t.Error("LookupExact matched the uninserted sibling half")
	}
}

func TestLPMNoDefaultRoute(t *testing.T) {
	idx := BuildLPM([]Prefix{MustParsePrefix("10.0.0.0/8")})
	if _, ok := idx.Lookup(MustParseAddr("11.0.0.1")); ok {
		t.Fatal("matched outside the only prefix")
	}
	if _, ok := idx.Lookup(MustParseAddr("0.0.0.0")); ok {
		t.Fatal("matched 0.0.0.0 with no cover")
	}
	if _, ok := idx.Lookup(MustParseAddr("255.255.255.255")); ok {
		t.Fatal("matched 255.255.255.255 with no cover")
	}
}

func TestLPMDuplicateLastWins(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.0.0.0/8"),
		{Base: MustParseAddr("10.9.9.9"), Len: 8}, // canonicalizes to the same /8
	}
	idx := BuildLPM(ps)
	got, ok := idx.Lookup(MustParseAddr("10.1.1.1"))
	if !ok || got != 2 {
		t.Fatalf("duplicate lookup = %d,%v, want 2 (highest index)", got, ok)
	}
}

// TestLPMShortPrefixes exercises the stride-8 root table's "best" path:
// prefixes shorter than 8 bits never live in a /8 subtree.
func TestLPMShortPrefixes(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("0.0.0.0/0"),
		MustParsePrefix("0.0.0.0/1"),   // 0..127
		MustParsePrefix("128.0.0.0/2"), // 128..191
		MustParsePrefix("64.0.0.0/8"),
		MustParsePrefix("64.1.0.0/16"),
	}
	idx := BuildLPM(ps)
	cases := []struct {
		addr string
		want int32
	}{
		{"1.2.3.4", 1},
		{"130.0.0.1", 2},
		{"200.0.0.1", 0},
		{"64.0.0.1", 3},
		{"64.1.2.3", 4},
	}
	for _, c := range cases {
		got, ok := idx.Lookup(MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %d,%v, want %d", c.addr, got, ok, c.want)
		}
	}
}

// TestLPMAdjacentBoundaries pins behaviour at the one-bit boundaries
// between adjacent leaves, where an off-by-one in mask compare or
// branch-bit extraction would misclassify.
func TestLPMAdjacentBoundaries(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/24"),
		MustParsePrefix("10.0.1.0/24"),
	}
	idx := BuildLPM(ps)
	cases := []struct {
		addr string
		want int32
		ok   bool
	}{
		{"10.0.0.255", 0, true},
		{"10.0.1.0", 1, true},
		{"10.0.1.255", 1, true},
		{"10.0.2.0", -1, false},
		{"9.255.255.255", -1, false},
	}
	for _, c := range cases {
		got, ok := idx.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Lookup(%s) = %d,%v, want %d,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
}

// randomPrefixSet produces a clustered prefix population: a few /8
// covers, mid-length allocations inside them, and deep leaves inside
// those — the shape of a registry's allocation forest.
func randomPrefixSet(rng *rand.Rand, n int) []Prefix {
	ps := make([]Prefix, 0, n)
	for len(ps) < n {
		switch rng.Intn(4) {
		case 0:
			ps = append(ps, Prefix{Base: Addr(rng.Uint32()), Len: uint8(rng.Intn(9))}.Canonicalize())
		case 1:
			ps = append(ps, Prefix{Base: Addr(rng.Uint32()), Len: uint8(8 + rng.Intn(17))}.Canonicalize())
		default:
			ps = append(ps, Prefix{Base: Addr(rng.Uint32()), Len: uint8(24 + rng.Intn(9))}.Canonicalize())
		}
	}
	return ps
}

// TestLPMCrossCheck drives the flat index against the linear-scan
// oracle over random clustered prefix sets: exact hits on every
// inserted prefix, longest-match on random addresses, and on addresses
// biased to sit inside inserted prefixes (so matches dominate misses).
func TestLPMCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		ps := randomPrefixSet(rng, 50+rng.Intn(200))
		idx := BuildLPM(ps)
		for i, p := range ps {
			want, _ := lpmNaiveExact(ps, p)
			got, ok := idx.LookupExact(p)
			if !ok || got != want {
				t.Fatalf("trial %d: LookupExact(%s) = %d,%v, want %d (input %d)", trial, p, got, ok, want, i)
			}
		}
		for q := 0; q < 500; q++ {
			var a Addr
			if q%2 == 0 {
				p := ps[rng.Intn(len(ps))]
				a = Addr(uint32(p.Base) | (rng.Uint32() &^ maskOf(p.Len)))
			} else {
				a = Addr(rng.Uint32())
			}
			want, wantOK := lpmNaive(ps, a)
			got, ok := idx.Lookup(a)
			if ok != wantOK || got != want {
				t.Fatalf("trial %d: Lookup(%s) = %d,%v, want %d,%v", trial, a, got, ok, want, wantOK)
			}
		}
	}
}

// TestLPMLookupAddrsMatchesSingle checks the batched walk against the
// single-address Lookup over random address mixes, including batches
// larger than any internal chunking and the nil-index edge.
func TestLPMLookupAddrsMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		ps := randomPrefixSet(rng, 50+rng.Intn(200))
		idx := BuildLPM(ps)
		addrs := make([]Addr, 1+rng.Intn(2000))
		for i := range addrs {
			if i%2 == 0 {
				p := ps[rng.Intn(len(ps))]
				addrs[i] = Addr(uint32(p.Base) | (rng.Uint32() &^ maskOf(p.Len)))
			} else {
				addrs[i] = Addr(rng.Uint32())
			}
		}
		got := idx.LookupAddrs(nil, addrs)
		if len(got) != len(addrs) {
			t.Fatalf("trial %d: batch returned %d results for %d addrs", trial, len(got), len(addrs))
		}
		for i, a := range addrs {
			want, ok := idx.Lookup(a)
			if !ok {
				want = -1
			}
			if got[i] != want {
				t.Fatalf("trial %d: batch[%d] = %d for %s, single Lookup gives %d", trial, i, got[i], a, want)
			}
		}
		// Appending to a prefilled dst must preserve the prefix.
		pre := idx.LookupAddrs([]int32{42}, addrs[:3])
		if pre[0] != 42 || len(pre) != 4 {
			t.Fatalf("trial %d: prefilled dst mangled: %v", trial, pre[:1])
		}
	}
	var empty LPM
	if out := empty.LookupAddrs(nil, []Addr{0, 1}); len(out) != 2 || out[0] != -1 || out[1] != -1 {
		t.Fatalf("empty LPM batch = %v, want [-1 -1]", out)
	}
}

// FuzzLPMLookup cross-checks a fuzzer-chosen lookup against the oracle
// on a prefix set derived from the same input bytes.
func FuzzLPMLookup(f *testing.F) {
	f.Add(uint32(0x0a000001), int64(1))
	f.Add(uint32(0), int64(7))
	f.Add(uint32(0xffffffff), int64(99))
	f.Fuzz(func(t *testing.T, addr uint32, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		ps := randomPrefixSet(rng, 1+rng.Intn(64))
		idx := BuildLPM(ps)
		a := Addr(addr)
		want, wantOK := lpmNaive(ps, a)
		got, ok := idx.Lookup(a)
		if ok != wantOK || got != want {
			t.Fatalf("Lookup(%s) = %d,%v, want %d,%v over %v", a, got, ok, want, wantOK, ps)
		}
	})
}

func BenchmarkLPMLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ps := randomPrefixSet(rng, 4096)
	idx := BuildLPM(ps)
	addrs := make([]Addr, 1024)
	for i := range addrs {
		p := ps[rng.Intn(len(ps))]
		addrs[i] = Addr(uint32(p.Base) | (rng.Uint32() &^ maskOf(p.Len)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup(addrs[i%len(addrs)])
	}
}

// randomUniquePrefixSet is randomPrefixSet with duplicates dropped —
// the precondition under which Patch is defined.
func randomUniquePrefixSet(rng *rand.Rand, n int) []Prefix {
	seen := make(map[Prefix]bool, n)
	ps := make([]Prefix, 0, n)
	for len(ps) < n {
		p := randomPrefixSet(rng, 1)[0]
		if !seen[p] {
			seen[p] = true
			ps = append(ps, p)
		}
	}
	return ps
}

// TestLPMPatchCrossCheck derives a churned successor prefix set from a
// random base — deletions, re-classified survivors, additions — and
// checks that patching the base index answers every lookup exactly like
// a from-scratch build over the successor set.
func TestLPMPatchCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		prev := randomUniquePrefixSet(rng, 50+rng.Intn(150))
		idx := BuildLPM(prev)
		seen := make(map[Prefix]bool, len(prev))

		var next []Prefix
		remap := make([]int32, len(prev))
		var dirty []int32
		for i, p := range prev {
			switch rng.Intn(10) {
			case 0: // deleted
				remap[i] = -1
			case 1, 2: // re-classified: same prefix, recomputed value
				remap[i] = -1
				next = append(next, p)
				dirty = append(dirty, int32(len(next)-1))
				seen[p] = true
			default: // survives untouched
				remap[i] = int32(len(next))
				next = append(next, p)
				seen[p] = true
			}
		}
		for add := 5 + rng.Intn(20); add > 0; {
			p := randomPrefixSet(rng, 1)[0]
			if seen[p] {
				continue
			}
			seen[p] = true
			next = append(next, p)
			dirty = append(dirty, int32(len(next)-1))
			add--
		}

		patched := idx.Patch(remap, next, dirty)
		if patched == nil {
			t.Fatalf("trial %d: Patch refused a duplicate-free plan", trial)
		}
		want := BuildLPM(next)
		for i, p := range next {
			g, gok := patched.LookupExact(p)
			w, wok := want.LookupExact(p)
			if g != w || gok != wok {
				t.Fatalf("trial %d: LookupExact(%s) = %d,%v, want %d,%v (input %d)", trial, p, g, gok, w, wok, i)
			}
		}
		for q := 0; q < 500; q++ {
			var a Addr
			if q%2 == 0 && len(next) > 0 {
				p := next[rng.Intn(len(next))]
				a = Addr(uint32(p.Base) | (rng.Uint32() &^ maskOf(p.Len)))
			} else {
				a = Addr(rng.Uint32())
			}
			g, gok := patched.Lookup(a)
			w, wok := want.Lookup(a)
			if g != w || gok != wok {
				t.Fatalf("trial %d: Lookup(%s) = %d,%v, want %d,%v", trial, a, g, gok, w, wok)
			}
		}
		// The base index must be untouched by the patch.
		for i, p := range prev {
			if g, ok := idx.LookupExact(p); !ok || int(g) >= len(prev) {
				t.Fatalf("trial %d: base index mutated at %s (input %d)", trial, p, i)
			}
		}
	}
}

// TestLPMPatchRefusals pins every case where Patch must return nil and
// force a rebuild: duplicate-bearing base, a dirty insert colliding
// with a surviving value, and out-of-range plan entries.
func TestLPMPatchRefusals(t *testing.T) {
	dup := MustParsePrefix("10.0.0.0/8")
	withDups := BuildLPM([]Prefix{dup, dup})
	if got := withDups.Patch([]int32{0, 1}, []Prefix{dup, dup}, nil); got != nil {
		t.Fatal("Patch over a duplicate-bearing base succeeded")
	}

	ps := []Prefix{MustParsePrefix("10.0.0.0/8"), MustParsePrefix("10.1.0.0/16")}
	idx := BuildLPM(ps)
	// Dirty insert of a prefix whose base value survives the remap:
	// the new generation has duplicates, which patching cannot resolve.
	collide := []Prefix{ps[0], ps[1], ps[0]}
	if got := idx.Patch([]int32{0, 1}, collide, []int32{2}); got != nil {
		t.Fatal("Patch resolved a duplicate-prefix collision")
	}
	if got := idx.Patch([]int32{0, 5}, ps, nil); got != nil {
		t.Fatal("Patch accepted an out-of-range remap value")
	}
	if got := idx.Patch([]int32{0, 1}, ps, []int32{9}); got != nil {
		t.Fatal("Patch accepted an out-of-range dirty index")
	}
	var zero LPM
	if got := zero.Patch(nil, nil, nil); got != nil {
		t.Fatal("Patch over the zero index succeeded")
	}
	// A clean patch deleting one value still answers correctly.
	patched := idx.Patch([]int32{0, -1}, ps[:1], nil)
	if patched == nil {
		t.Fatal("clean deletion patch refused")
	}
	if v, ok := patched.Lookup(MustParseAddr("10.1.2.3")); !ok || v != 0 {
		t.Fatalf("after deleting /16, Lookup = %d,%v, want 0,true", v, ok)
	}
	if _, ok := patched.LookupExact(ps[1]); ok {
		t.Fatal("deleted prefix still matches exactly")
	}
}
