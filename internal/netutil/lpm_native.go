package netutil

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Native LPM codec: the snapshot format v3 stores the node array in the
// in-memory lpmNode layout (little-endian, 24-byte records) so a
// memory-mapped snapshot can serve lookups directly from the file's
// page cache — no per-node decode, no node allocation. AppendNative
// always writes the portable byte-by-byte encoding; LPMFromNative
// aliases the bytes as []lpmNode when the platform layout matches
// (little-endian, asserted struct geometry) and falls back to a
// copying decode otherwise, so the format itself stays portable.

// lpmNativeNodeSize is the on-disk size of one native node record:
// u32 base, u32 mask, i32 val, i32 kid0, i32 kid1, u8 len, 3 zero pad.
// It equals unsafe.Sizeof(lpmNode{}) on every supported platform;
// nativeLayoutMatches re-checks at runtime before any aliasing.
const lpmNativeNodeSize = 24

// lpmNativeHeaderSize precedes the records: u32 node count, u8 dups,
// 3 zero pad — 8 bytes, so records start 8-aligned when the encoding
// itself is placed at an 8-aligned offset.
const lpmNativeHeaderSize = 8

// nativeLayoutMatches reports whether []lpmNode can alias the native
// encoding directly: little-endian integers and the exact field
// geometry AppendNative writes. Checked at runtime (not build-tagged)
// so an exotic platform degrades to the copying decode instead of
// serving garbage.
func nativeLayoutMatches() bool {
	probe := uint32(1)
	littleEndian := *(*byte)(unsafe.Pointer(&probe)) == 1
	return littleEndian &&
		unsafe.Sizeof(lpmNode{}) == lpmNativeNodeSize &&
		unsafe.Offsetof(lpmNode{}.base) == 0 &&
		unsafe.Offsetof(lpmNode{}.mask) == 4 &&
		unsafe.Offsetof(lpmNode{}.val) == 8 &&
		unsafe.Offsetof(lpmNode{}.kid) == 12 &&
		unsafe.Offsetof(lpmNode{}.len) == 20
}

// AppendNative appends the index's native binary encoding to dst and
// returns the extended slice. Unlike AppendBinary it carries the
// derived mask and pads each record to the in-memory node size, so a
// reader on a matching platform can alias the records without any
// per-node work. Layout (all little-endian):
//
//	u32 node count
//	u8  dups, 3 zero pad
//	node count × (u32 base, u32 mask, i32 val, i32 kid0, i32 kid1, u8 len, 3 zero pad)
func (t *LPM) AppendNative(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.nodes)))
	var dups byte
	if t.dups {
		dups = 1
	}
	dst = append(dst, dups, 0, 0, 0)
	for i := range t.nodes {
		nd := &t.nodes[i]
		dst = binary.LittleEndian.AppendUint32(dst, nd.base)
		dst = binary.LittleEndian.AppendUint32(dst, nd.mask)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(nd.val))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(nd.kid[0]))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(nd.kid[1]))
		dst = append(dst, nd.len, 0, 0, 0)
	}
	return dst
}

// LPMFromNative builds an index over an AppendNative encoding,
// aliasing data's records as the node array when the platform layout
// permits — the caller must keep data immutable and alive for the
// index's lifetime (the mmap refcount owns that in the snapshot path).
// maxVal bounds the value space exactly as in DecodeLPM. Every record
// is validated before the index is returned — lengths, masks, host
// bits, value range, child links, the /0 anchor, and zeroed padding —
// so a damaged file fails here rather than corrupting a descent later.
// The stride-8 root table is always rebuilt on the heap; only the node
// array aliases the input.
func LPMFromNative(data []byte, maxVal int) (*LPM, error) {
	if len(data) < lpmNativeHeaderSize {
		return nil, fmt.Errorf("netutil: native LPM encoding truncated (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	dups := data[4]
	if dups > 1 {
		return nil, fmt.Errorf("netutil: native LPM dups flag %d out of range", dups)
	}
	if data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("netutil: native LPM header padding not zero")
	}
	rest := data[lpmNativeHeaderSize:]
	if len(rest) != n*lpmNativeNodeSize {
		return nil, fmt.Errorf("netutil: native LPM encoding is %d bytes, want %d for %d nodes",
			len(rest), n*lpmNativeNodeSize, n)
	}
	t := &LPM{dups: dups == 1}
	if n == 0 {
		for b := range t.root8 {
			t.root8[b] = lpmRootEntry{start: -1, best: -1}
		}
		return t, nil
	}
	aligned := uintptr(unsafe.Pointer(&rest[0]))%unsafe.Alignof(lpmNode{}) == 0
	if nativeLayoutMatches() && aligned {
		t.nodes = unsafe.Slice((*lpmNode)(unsafe.Pointer(&rest[0])), n)
	} else {
		t.nodes = make([]lpmNode, n)
		for i := 0; i < n; i++ {
			off := i * lpmNativeNodeSize
			nd := &t.nodes[i]
			nd.base = binary.LittleEndian.Uint32(rest[off:])
			nd.mask = binary.LittleEndian.Uint32(rest[off+4:])
			nd.val = int32(binary.LittleEndian.Uint32(rest[off+8:]))
			nd.kid[0] = int32(binary.LittleEndian.Uint32(rest[off+12:]))
			nd.kid[1] = int32(binary.LittleEndian.Uint32(rest[off+16:]))
			nd.len = rest[off+20]
		}
	}
	// One validation pass per cold start over every node: load the
	// trailing len+padding word whole (a single u32 compare covers the
	// three pad bytes) and keep the per-node checks branch-cheap.
	for i := 0; i < n; i++ {
		nd := &t.nodes[i]
		tail := binary.LittleEndian.Uint32(rest[i*lpmNativeNodeSize+20:])
		if tail>>8 != 0 {
			return nil, fmt.Errorf("netutil: native LPM node %d padding not zero", i)
		}
		if nd.len > 32 {
			return nil, fmt.Errorf("netutil: native LPM node %d has prefix length %d", i, nd.len)
		}
		if nd.mask != maskOf(nd.len) {
			return nil, fmt.Errorf("netutil: native LPM node %d mask %#x inconsistent with length %d", i, nd.mask, nd.len)
		}
		if nd.base&nd.mask != nd.base {
			return nil, fmt.Errorf("netutil: native LPM node %d has host bits set", i)
		}
		if nd.val < -1 || int(nd.val) >= maxVal {
			return nil, fmt.Errorf("netutil: native LPM node %d value %d outside [-1, %d)", i, nd.val, maxVal)
		}
		if k := nd.kid[0]; k < -1 || int(k) >= n || k == int32(i) {
			return nil, fmt.Errorf("netutil: native LPM node %d child index %d out of range", i, k)
		}
		if k := nd.kid[1]; k < -1 || int(k) >= n || k == int32(i) {
			return nil, fmt.Errorf("netutil: native LPM node %d child index %d out of range", i, k)
		}
	}
	if t.nodes[0].len != 0 || t.nodes[0].base != 0 {
		return nil, fmt.Errorf("netutil: native LPM root node is %v, want the /0 anchor", t.nodes[0].prefix())
	}
	t.buildRoot8()
	return t, nil
}
