package netutil

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// LPM is an immutable longest-prefix-match index over a set of IPv4
// prefixes, mapping each to its position in the input slice. It exists
// for query paths that classify addresses at line rate (the serving
// layer's address lookups, utilization sweeps over millions of
// addresses): a lookup is a short descent over a flat, pointer-free
// node array — no per-length probing, no hashing, no allocation.
//
// Layout: a path-compressed binary trie flattened into one []lpmNode
// (children are int32 indexes, not pointers, so the whole structure is
// a handful of contiguous allocations and the GC never traverses it),
// level-compressed at the top by a 256-entry stride-8 root table. The
// table jumps a lookup straight to the subtree of its first octet with
// the best match among /0../7 prefixes precomputed, so a descent only
// ever touches nodes at depth >= 8 — at most prefix-diversity-many
// nodes, O(tree depth) overall.
//
// Build once with BuildLPM; concurrent readers are safe forever after.
// The zero value is an empty index whose lookups all miss.
type LPM struct {
	nodes []lpmNode
	root8 [256]lpmRootEntry
	// dups records that some prefix was inserted more than once, i.e. a
	// node's value was overwritten. The shadowed value is unrecoverable
	// from the structure, so a duplicate-bearing index refuses to Patch
	// (the caller rebuilds instead).
	dups bool
}

// lpmNode is one flattened trie node. mask/base duplicate the prefix as
// a precomputed compare so the descent's containment test is one AND
// and one compare, with no shifting.
type lpmNode struct {
	base uint32   // network address of the node's prefix
	mask uint32   // network mask of the node's prefix
	val  int32    // input index of the inserted prefix, -1 if structural
	kid  [2]int32 // children by next-bit value, -1 if none; indexed, not
	// branched on, so a random-address descent never pays a
	// misprediction per level
	len uint8 // prefix length; branch bit position during descent
}

// lpmRootEntry is one stride-8 table slot: where to start descending
// for addresses in that /8, and the best already-matched value from
// prefixes shorter than 8 bits.
type lpmRootEntry struct {
	start int32 // node index, -1 if the /8 has no subtree
	best  int32 // deepest matching val among /0../7 covers, -1 if none
}

// BuildLPM indexes ps for longest-prefix-match lookup. The value
// reported for a match is the matched prefix's index in ps. Prefixes
// are canonicalized; when duplicates occur the highest index wins,
// matching "last write wins" map-population order. The input slice is
// not retained.
func BuildLPM(ps []Prefix) *LPM {
	t := &LPM{}
	if len(ps) == 0 {
		for b := range t.root8 {
			t.root8[b] = lpmRootEntry{start: -1, best: -1}
		}
		return t
	}
	// Insert in sorted (base, len) order: supernets arrive before their
	// subnets, so insertion never splices a new node above an existing
	// subtree and the spine-descent below stays short. Order only
	// affects construction speed, not the resulting structure.
	order := make([]int32, len(ps))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := ps[order[i]].Canonicalize(), ps[order[j]].Canonicalize()
		if c := a.Compare(b); c != 0 {
			return c < 0
		}
		return order[i] < order[j] // duplicates: ascending, so the last insert wins
	})
	t.nodes = make([]lpmNode, 1, 2*len(ps)+1)
	t.nodes[0] = lpmNode{val: -1, kid: [2]int32{-1, -1}} // /0 anchor: base 0, mask 0
	for _, idx := range order {
		t.insert(ps[idx].Canonicalize(), idx)
	}
	t.buildRoot8()
	return t
}

// prefix reconstructs the node's Prefix (build/debug paths only).
func (n *lpmNode) prefix() Prefix {
	return Prefix{Base: Addr(n.base), Len: n.len}
}

// insert threads p into the flat trie. Node references are kept as
// indexes, never pointers: newNode may grow (reallocate) the backing
// slice, so child links are written through setChild after any append.
func (t *LPM) insert(p Prefix, val int32) {
	n := int32(0)
	for {
		nd := t.nodes[n]
		if nd.base == uint32(p.Base) && nd.len == p.Len {
			if t.nodes[n].val >= 0 {
				t.dups = true
			}
			t.nodes[n].val = val
			return
		}
		// p is strictly inside node n's prefix here.
		side := p.Bit(nd.len)
		c := nd.kid[side]
		if c < 0 {
			t.nodes[n].kid[side] = t.newNode(p, val)
			return
		}
		cp := t.nodes[c].prefix()
		if cp.ContainsPrefix(p) {
			n = c
			continue
		}
		if p.ContainsPrefix(cp) {
			// Splice p above c (unreachable from sorted insertion
			// order, kept so the structure is correct for any order).
			nn := t.newNode(p, val)
			t.nodes[nn].kid[cp.Bit(p.Len)] = c
			t.nodes[n].kid[side] = nn
			return
		}
		// Diverged: branch at the longest common ancestor.
		anc := commonAncestor(p, cp)
		br := t.newNode(anc, -1)
		nn := t.newNode(p, val)
		t.nodes[br].kid[p.Bit(anc.Len)] = nn
		t.nodes[br].kid[cp.Bit(anc.Len)] = c
		t.nodes[n].kid[side] = br
		return
	}
}

func (t *LPM) newNode(p Prefix, val int32) int32 {
	t.nodes = append(t.nodes, lpmNode{
		base: uint32(p.Base),
		mask: maskOf(p.Len),
		len:  p.Len,
		val:  val,
		kid:  [2]int32{-1, -1},
	})
	return int32(len(t.nodes) - 1)
}

// commonAncestor returns the longest prefix containing both a and b.
// (Duplicated from prefixtree to keep the dependency arrow pointing
// prefixtree -> netutil.)
func commonAncestor(a, b Prefix) Prefix {
	maxLen := a.Len
	if b.Len < maxLen {
		maxLen = b.Len
	}
	l := uint8(bits.LeadingZeros32(uint32(a.Base) ^ uint32(b.Base)))
	if l > maxLen {
		l = maxLen
	}
	return Prefix{Base: a.Base, Len: l}.Canonicalize()
}

// buildRoot8 fills the stride-8 table: for every first octet, the best
// match among prefixes of length < 8 covering the whole /8, and the
// root of the subtree holding every prefix of length >= 8 in that /8.
func (t *LPM) buildRoot8() {
	for b := 0; b < 256; b++ {
		target := Prefix{Base: Addr(uint32(b) << 24), Len: 8}
		e := lpmRootEntry{start: -1, best: -1}
		n := int32(0)
		for n >= 0 {
			nd := &t.nodes[n]
			np := nd.prefix()
			if np.ContainsPrefix(target) {
				if nd.len >= 8 { // == target: the /8 itself
					e.start = n
					break
				}
				if nd.val >= 0 {
					e.best = nd.val
				}
				n = nd.kid[target.Bit(nd.len)]
				continue
			}
			if target.ContainsPrefix(np) {
				e.start = n // subtree strictly inside the /8
			}
			break // diverged (or found the subtree): stop
		}
		t.root8[b] = e
	}
}

// Len returns the number of node slots in the index (structural nodes
// included); 0 for an empty index.
func (t *LPM) Len() int { return len(t.nodes) }

// Patch derives the index for a new input slice ps from this one without
// re-sorting and re-inserting the whole set, for incremental reloads
// where only a small fraction of values changed. remap translates each
// old value to its new input index (-1: deleted or re-computed), and
// dirty lists the new input indices to (re)insert — exactly the
// PatchPlan contract of the inference delta.
//
// The patched index answers every lookup identically to BuildLPM(ps),
// with one exception it refuses to paper over: when either generation
// contains duplicate prefixes, the last-insert-wins resolution cannot be
// reproduced from the surviving structure (the shadowed value is gone),
// so Patch returns nil and the caller must rebuild. t is unmodified
// either way.
//
// Cost: one pass over the node array plus an insert per dirty prefix —
// deleted values leave their nodes in place as structural entries, so
// repeated patching grows the array by at most len(dirty) nodes per
// round until a full rebuild compacts it.
func (t *LPM) Patch(remap []int32, ps []Prefix, dirty []int32) *LPM {
	if t.dups || t.nodes == nil {
		return nil
	}
	nt := &LPM{nodes: append([]lpmNode(nil), t.nodes...)}
	for i := range nt.nodes {
		if v := nt.nodes[i].val; v >= 0 {
			if int(v) >= len(remap) {
				return nil
			}
			nv := remap[v]
			if int(nv) >= len(ps) {
				return nil // remapped value dangles past the new input
			}
			nt.nodes[i].val = nv
		}
	}
	for _, idx := range dirty {
		if idx < 0 || int(idx) >= len(ps) {
			return nil
		}
		nt.insert(ps[idx].Canonicalize(), idx)
		if nt.dups {
			// The insert overwrote a surviving value: the new
			// generation has duplicate prefixes, which only a full
			// sorted build resolves correctly.
			return nil
		}
	}
	nt.buildRoot8()
	return nt
}

// lpmWireNodeSize is the on-wire size of one encoded node: base u32,
// val i32, two kid i32s, len u8. The node's mask is derived from len on
// decode, so it is not carried.
const lpmWireNodeSize = 4 + 4 + 4 + 4 + 1

// AppendBinary appends the index's portable binary encoding to dst and
// returns the extended slice. The encoding carries only the flat node
// array (plus the duplicate flag); the stride-8 root table and the
// per-node masks are derived values and are rebuilt by DecodeLPM. All
// integers are little-endian; the layout is
//
//	u8  dups
//	u32 node count
//	node count × (u32 base, i32 val, i32 kid0, i32 kid1, u8 len)
//
// An empty (or zero-value) index encodes as dups=0, count=0.
func (t *LPM) AppendBinary(dst []byte) []byte {
	var dups byte
	if t.dups {
		dups = 1
	}
	dst = append(dst, dups)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.nodes)))
	for i := range t.nodes {
		nd := &t.nodes[i]
		dst = binary.LittleEndian.AppendUint32(dst, nd.base)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(nd.val))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(nd.kid[0]))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(nd.kid[1]))
		dst = append(dst, nd.len)
	}
	return dst
}

// DecodeLPM parses an encoding produced by AppendBinary and rebuilds the
// derived state (node masks, stride-8 root table). maxVal bounds the
// value space: every stored val must be in [-1, maxVal), matching the
// length of the input slice the index was built over, so a decoded index
// can never hand out an index past the arena it serves. Every structural
// invariant is checked — child indexes in range and non-self, prefix
// lengths ≤ 32, a /0 anchor at node 0 — and any violation returns an
// error rather than a partially-trusted index: the caller treats the
// input as corrupt.
func DecodeLPM(data []byte, maxVal int) (*LPM, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("netutil: LPM encoding truncated (%d bytes)", len(data))
	}
	dups := data[0]
	if dups > 1 {
		return nil, fmt.Errorf("netutil: LPM dups flag %d out of range", dups)
	}
	n := int(binary.LittleEndian.Uint32(data[1:5]))
	rest := data[5:]
	if len(rest) != n*lpmWireNodeSize {
		return nil, fmt.Errorf("netutil: LPM encoding is %d bytes, want %d for %d nodes",
			len(rest), n*lpmWireNodeSize, n)
	}
	t := &LPM{dups: dups == 1}
	if n == 0 {
		for b := range t.root8 {
			t.root8[b] = lpmRootEntry{start: -1, best: -1}
		}
		return t, nil
	}
	t.nodes = make([]lpmNode, n)
	for i := 0; i < n; i++ {
		off := i * lpmWireNodeSize
		nd := &t.nodes[i]
		nd.base = binary.LittleEndian.Uint32(rest[off:])
		nd.val = int32(binary.LittleEndian.Uint32(rest[off+4:]))
		nd.kid[0] = int32(binary.LittleEndian.Uint32(rest[off+8:]))
		nd.kid[1] = int32(binary.LittleEndian.Uint32(rest[off+12:]))
		nd.len = rest[off+16]
		if nd.len > 32 {
			return nil, fmt.Errorf("netutil: LPM node %d has prefix length %d", i, nd.len)
		}
		nd.mask = maskOf(nd.len)
		if nd.base&nd.mask != nd.base {
			return nil, fmt.Errorf("netutil: LPM node %d has host bits set", i)
		}
		if nd.val < -1 || int(nd.val) >= maxVal {
			return nil, fmt.Errorf("netutil: LPM node %d value %d outside [-1, %d)", i, nd.val, maxVal)
		}
		for _, k := range nd.kid {
			if k < -1 || int(k) >= n || k == int32(i) {
				return nil, fmt.Errorf("netutil: LPM node %d child index %d out of range", i, k)
			}
		}
	}
	if t.nodes[0].len != 0 || t.nodes[0].base != 0 {
		return nil, fmt.Errorf("netutil: LPM root node is %v, want the /0 anchor", t.nodes[0].prefix())
	}
	t.buildRoot8()
	return t, nil
}

// Lookup returns the input index of the longest inserted prefix
// containing a. It performs no allocation and touches only the flat
// node array: safe and fast under arbitrary concurrency.
func (t *LPM) Lookup(a Addr) (int32, bool) {
	if t.nodes == nil {
		return -1, false
	}
	e := &t.root8[uint32(a)>>24]
	best := e.best
	n := e.start
	for n >= 0 {
		nd := &t.nodes[n]
		if uint32(a)&nd.mask != nd.base {
			break
		}
		if nd.val >= 0 {
			best = nd.val
		}
		if nd.len >= 32 {
			break
		}
		n = nd.kid[uint32(a)>>(31-nd.len)&1]
	}
	return best, best >= 0
}

// LookupAddrs performs Lookup for every address in addrs, appending one
// input index per address (-1 where nothing matches) to dst and
// returning it. The node array and root table are hoisted out of the
// per-address loop, so a batch costs strictly less than len(addrs)
// single Lookups.
func (t *LPM) LookupAddrs(dst []int32, addrs []Addr) []int32 {
	if cap(dst)-len(dst) < len(addrs) {
		grown := make([]int32, len(dst), len(dst)+len(addrs))
		copy(grown, dst)
		dst = grown
	}
	nodes := t.nodes
	if nodes == nil {
		for range addrs {
			dst = append(dst, -1)
		}
		return dst
	}
	root8 := &t.root8
	for _, a := range addrs {
		e := &root8[uint32(a)>>24]
		best := e.best
		n := e.start
		for n >= 0 {
			nd := &nodes[n]
			if uint32(a)&nd.mask != nd.base {
				break
			}
			if nd.val >= 0 {
				best = nd.val
			}
			if nd.len >= 32 {
				break
			}
			n = nd.kid[uint32(a)>>(31-nd.len)&1]
		}
		dst = append(dst, best)
	}
	return dst
}

// LookupExact returns the input index of exactly p, allocation-free.
func (t *LPM) LookupExact(p Prefix) (int32, bool) {
	if t.nodes == nil {
		return -1, false
	}
	p = p.Canonicalize()
	n := int32(0)
	for n >= 0 {
		nd := &t.nodes[n]
		if uint32(p.Base)&nd.mask != nd.base || nd.len > p.Len {
			break
		}
		if nd.len == p.Len {
			if nd.base == uint32(p.Base) && nd.val >= 0 {
				return nd.val, true
			}
			break
		}
		n = nd.kid[uint32(p.Base)>>(31-nd.len)&1]
	}
	return -1, false
}
