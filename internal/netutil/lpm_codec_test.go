package netutil

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestLPMCodecRoundTrip: for random prefix sets, a decoded index must
// answer every lookup — longest-match and exact — identically to the
// index it was encoded from.
func TestLPMCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ps := randomPrefixSet(rng, 200+rng.Intn(400))
		orig := BuildLPM(ps)
		dec, err := DecodeLPM(orig.AppendBinary(nil), len(ps))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if dec.Len() != orig.Len() {
			t.Fatalf("seed %d: decoded %d nodes, want %d", seed, dec.Len(), orig.Len())
		}
		for trial := 0; trial < 3000; trial++ {
			a := Addr(rng.Uint32())
			gi, gok := dec.Lookup(a)
			wi, wok := orig.Lookup(a)
			if gi != wi || gok != wok {
				t.Fatalf("seed %d: Lookup(%v) = %d,%v; want %d,%v", seed, a, gi, gok, wi, wok)
			}
		}
		for _, p := range ps {
			gi, gok := dec.LookupExact(p)
			wi, wok := orig.LookupExact(p)
			if gi != wi || gok != wok {
				t.Fatalf("seed %d: LookupExact(%v) = %d,%v; want %d,%v", seed, p, gi, gok, wi, wok)
			}
		}
	}
}

func TestLPMCodecEmpty(t *testing.T) {
	dec, err := DecodeLPM(BuildLPM(nil).AppendBinary(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.Lookup(MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty decoded index matched an address")
	}
}

// TestLPMCodecRejects: every structural invariant violation must be an
// error, never a partially-trusted index.
func TestLPMCodecRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := randomPrefixSet(rng, 64)
	good := BuildLPM(ps).AppendBinary(nil)

	node := func(i int) int { return 5 + i*lpmWireNodeSize }
	cases := []struct {
		name   string
		mutate func(b []byte)
		trunc  int // if > 0, cut to this many bytes instead
	}{
		{name: "empty", trunc: 1},
		{name: "short-header", trunc: 4},
		{name: "cut-mid-node", trunc: len(good) - 7},
		{name: "dups-flag", mutate: func(b []byte) { b[0] = 7 }},
		{name: "count-overclaims", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[1:5], 1<<30)
		}},
		{name: "prefix-len-33", mutate: func(b []byte) { b[node(1)+16] = 33 }},
		{name: "host-bits", mutate: func(b []byte) {
			// Give node 1 a /8 with low bits set.
			binary.LittleEndian.PutUint32(b[node(1):], 0x0a0000ff)
			b[node(1)+16] = 8
		}},
		{name: "val-past-arena", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+4:], uint32(len(ps)))
		}},
		{name: "val-below-minus-one", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+4:], 0xfffffffe) // int32(-2)
		}},
		{name: "kid-out-of-range", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+8:], 1<<20)
		}},
		{name: "kid-self-loop", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+8:], 1)
		}},
		{name: "no-root-anchor", mutate: func(b []byte) { b[node(0)+16] = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := append([]byte(nil), good...)
			if tc.trunc > 0 {
				mut = mut[:tc.trunc]
			} else {
				tc.mutate(mut)
			}
			if _, err := DecodeLPM(mut, len(ps)); err == nil {
				t.Fatal("damaged LPM encoding accepted")
			}
		})
	}
}
