package netutil

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestLPMNativeRoundTrip: an index rebuilt over its native encoding —
// the zero-copy path a mapped snapshot takes — must answer every
// longest-match and exact lookup identically to the original.
func TestLPMNativeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ps := randomPrefixSet(rng, 200+rng.Intn(400))
		orig := BuildLPM(ps)
		dec, err := LPMFromNative(orig.AppendNative(nil), len(ps))
		if err != nil {
			t.Fatalf("seed %d: from native: %v", seed, err)
		}
		if dec.Len() != orig.Len() {
			t.Fatalf("seed %d: rebuilt %d nodes, want %d", seed, dec.Len(), orig.Len())
		}
		for trial := 0; trial < 3000; trial++ {
			a := Addr(rng.Uint32())
			gi, gok := dec.Lookup(a)
			wi, wok := orig.Lookup(a)
			if gi != wi || gok != wok {
				t.Fatalf("seed %d: Lookup(%v) = %d,%v; want %d,%v", seed, a, gi, gok, wi, wok)
			}
		}
		for _, p := range ps {
			gi, gok := dec.LookupExact(p)
			wi, wok := orig.LookupExact(p)
			if gi != wi || gok != wok {
				t.Fatalf("seed %d: LookupExact(%v) = %d,%v; want %d,%v", seed, p, gi, gok, wi, wok)
			}
		}
	}
}

func TestLPMNativeEmpty(t *testing.T) {
	dec, err := LPMFromNative(BuildLPM(nil).AppendNative(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.Lookup(MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty native index matched an address")
	}
}

// TestLPMNativeRejects: the native decoder validates every record
// before the index exists — a mapped file with damaged nodes must fail
// construction, never corrupt a descent at query time.
func TestLPMNativeRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := randomPrefixSet(rng, 64)
	good := BuildLPM(ps).AppendNative(nil)

	node := func(i int) int { return lpmNativeHeaderSize + i*lpmNativeNodeSize }
	cases := []struct {
		name   string
		mutate func(b []byte)
		trunc  int // if > 0, cut to this many bytes instead
	}{
		{name: "empty", trunc: 1},
		{name: "short-header", trunc: 4},
		{name: "cut-mid-node", trunc: len(good) - 7},
		{name: "dups-flag", mutate: func(b []byte) { b[4] = 7 }},
		{name: "header-padding", mutate: func(b []byte) { b[6] = 1 }},
		{name: "count-overclaims", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[0:4], 1<<30)
		}},
		{name: "prefix-len-33", mutate: func(b []byte) { b[node(1)+20] = 33 }},
		{name: "mask-mismatch", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+4:], 0xffffffff)
		}},
		{name: "host-bits", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1):], 0x0a0000ff)
			binary.LittleEndian.PutUint32(b[node(1)+4:], maskOf(8))
			b[node(1)+20] = 8
		}},
		{name: "val-past-arena", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+8:], uint32(len(ps)))
		}},
		{name: "val-below-minus-one", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+8:], 0xfffffffe) // int32(-2)
		}},
		{name: "kid-out-of-range", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+12:], 1<<20)
		}},
		{name: "kid-self-loop", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(1)+12:], 1)
		}},
		{name: "node-padding", mutate: func(b []byte) { b[node(1)+22] = 0xee }},
		{name: "no-root-anchor", mutate: func(b []byte) {
			binary.LittleEndian.PutUint32(b[node(0)+4:], maskOf(1))
			b[node(0)+20] = 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := append([]byte(nil), good...)
			if tc.trunc > 0 {
				mut = mut[:tc.trunc]
			} else {
				tc.mutate(mut)
			}
			if _, err := LPMFromNative(mut, len(ps)); err == nil {
				t.Fatal("damaged native LPM encoding accepted")
			}
		})
	}
}

// TestLPMNativeUnalignedFallsBack: the aliasing fast path needs the
// records 8-aligned; shifting the buffer by one byte must route through
// the copying decode and still produce a correct index.
func TestLPMNativeUnalignedFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := randomPrefixSet(rng, 100)
	orig := BuildLPM(ps)
	enc := orig.AppendNative(nil)
	shifted := make([]byte, len(enc)+1)
	copy(shifted[1:], enc)
	dec, err := LPMFromNative(shifted[1:], len(ps))
	if err != nil {
		t.Fatalf("from unaligned native: %v", err)
	}
	for trial := 0; trial < 2000; trial++ {
		a := Addr(rng.Uint32())
		gi, gok := dec.Lookup(a)
		wi, wok := orig.Lookup(a)
		if gi != wi || gok != wok {
			t.Fatalf("Lookup(%v) = %d,%v; want %d,%v", a, gi, gok, wi, wok)
		}
	}
}
