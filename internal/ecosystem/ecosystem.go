// Package ecosystem computes the paper's §6.3 leasing-ecosystem analyses:
// the top IP holders per registry (Table 3), the top facilitators and
// originators of leased prefixes, and the overlap between lease
// originators and serial BGP hijackers.
package ecosystem

import (
	"sort"

	"ipleasing/internal/as2org"
	"ipleasing/internal/bgp"
	"ipleasing/internal/core"
	"ipleasing/internal/hijack"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

// OrgCount is a ranked organisation (holder or facilitator).
type OrgCount struct {
	ID    string // org handle or maintainer handle
	Name  string // display name when resolvable
	Count int    // leased prefixes attributed to it
	// Countries is the number of distinct countries the organisation's
	// leases are registered in (holders only; the paper notes e.g.
	// Cyber Assets FZCO leasing into 44 countries).
	Countries int
}

// ASNCount is a ranked originator.
type ASNCount struct {
	ASN   uint32
	Name  string
	Count int
}

// TopHolders ranks IP holders by leased-prefix count per registry
// (Table 3). n limits each registry's list (0 = all).
func TopHolders(res *core.Result, ds *whois.Dataset, n int) map[whois.Registry][]OrgCount {
	out := make(map[whois.Registry][]OrgCount)
	for reg, rr := range res.Regions {
		counts := make(map[string]int)
		countries := make(map[string]map[string]bool)
		for _, inf := range rr.Inferences {
			if inf.Category.Leased() && inf.HolderOrg != "" {
				counts[inf.HolderOrg]++
				if inf.Country != "" {
					if countries[inf.HolderOrg] == nil {
						countries[inf.HolderOrg] = make(map[string]bool)
					}
					countries[inf.HolderOrg][inf.Country] = true
				}
			}
		}
		ranked := rankOrgs(counts, n)
		for i := range ranked {
			ranked[i].Countries = len(countries[ranked[i].ID])
			if db, ok := ds.DBs[reg]; ok {
				if org, ok := db.OrgByID(ranked[i].ID); ok {
					ranked[i].Name = org.Name
				}
			}
		}
		out[reg] = ranked
	}
	return out
}

// TopFacilitators ranks leaf maintainers of leased prefixes per registry.
// When ds is non-nil, maintainer handles are resolved to the names of the
// organisations referencing them (e.g. a broker's mnt handle becomes the
// broker's registered name).
func TopFacilitators(res *core.Result, ds *whois.Dataset, n int) map[whois.Registry][]OrgCount {
	names := make(map[string]string)
	if ds != nil {
		for _, db := range ds.DBs {
			for _, org := range db.Orgs {
				for _, m := range org.MntRef {
					if _, taken := names[m]; !taken {
						names[m] = org.Name
					}
				}
			}
		}
	}
	out := make(map[whois.Registry][]OrgCount)
	for reg, rr := range res.Regions {
		counts := make(map[string]int)
		for _, inf := range rr.Inferences {
			if !inf.Category.Leased() {
				continue
			}
			for _, m := range inf.Facilitators {
				counts[m]++
			}
		}
		ranked := rankOrgs(counts, n)
		for i := range ranked {
			if name, ok := names[ranked[i].ID]; ok && name != "" {
				ranked[i].Name = name
			}
		}
		out[reg] = ranked
	}
	return out
}

func rankOrgs(counts map[string]int, n int) []OrgCount {
	ranked := make([]OrgCount, 0, len(counts))
	for id, c := range counts {
		ranked = append(ranked, OrgCount{ID: id, Name: id, Count: c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].ID < ranked[j].ID
	})
	if n > 0 && len(ranked) > n {
		ranked = ranked[:n]
	}
	return ranked
}

// TopOriginators ranks origin ASes of leased prefixes globally.
func TopOriginators(res *core.Result, orgs *as2org.Map, n int) []ASNCount {
	counts := make(map[uint32]int)
	for _, inf := range res.LeasedInferences() {
		if o := inf.Originator(); o != 0 {
			counts[o]++
		}
	}
	ranked := make([]ASNCount, 0, len(counts))
	for asn, c := range counts {
		name := ""
		if orgs != nil {
			if org, ok := orgs.OrgOf(asn); ok {
				name = orgs.OrgName(org)
			}
		}
		ranked = append(ranked, ASNCount{ASN: asn, Name: name, Count: c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].ASN < ranked[j].ASN
	})
	if n > 0 && len(ranked) > n {
		ranked = ranked[:n]
	}
	return ranked
}

// HijackerOverlap is the §6.3 serial-hijacker correlation.
type HijackerOverlap struct {
	Originators          int // distinct origin ASes of leased prefixes
	HijackerOriginators  int // of those, on the serial-hijacker list
	LeasedTotal          int
	LeasedByHijackers    int // leased prefixes originated by hijackers
	NonLeasedTotal       int
	NonLeasedByHijackers int
}

// OriginatorHijackerShare returns HijackerOriginators / Originators.
func (h HijackerOverlap) OriginatorHijackerShare() float64 {
	if h.Originators == 0 {
		return 0
	}
	return float64(h.HijackerOriginators) / float64(h.Originators)
}

// LeasedHijackedShare returns LeasedByHijackers / LeasedTotal.
func (h HijackerOverlap) LeasedHijackedShare() float64 {
	if h.LeasedTotal == 0 {
		return 0
	}
	return float64(h.LeasedByHijackers) / float64(h.LeasedTotal)
}

// NonLeasedHijackedShare returns NonLeasedByHijackers / NonLeasedTotal.
func (h HijackerOverlap) NonLeasedHijackedShare() float64 {
	if h.NonLeasedTotal == 0 {
		return 0
	}
	return float64(h.NonLeasedByHijackers) / float64(h.NonLeasedTotal)
}

// OverlapHijackers computes the hijacker correlation: leased prefixes come
// from the inference result; non-leased prefixes are every other announced
// prefix in the table.
func OverlapHijackers(res *core.Result, table *bgp.Table, hj *hijack.Set) HijackerOverlap {
	var out HijackerOverlap
	leasedSet := make(map[netutil.Prefix]bool)
	origins := make(map[uint32]bool)
	for _, inf := range res.LeasedInferences() {
		leasedSet[inf.Prefix] = true
		out.LeasedTotal++
		hijacked := false
		for _, o := range inf.LeafOrigins {
			origins[o] = true
			if hj.Contains(o) {
				hijacked = true
			}
		}
		if hijacked {
			out.LeasedByHijackers++
		}
	}
	out.Originators = len(origins)
	for o := range origins {
		if hj.Contains(o) {
			out.HijackerOriginators++
		}
	}
	if table != nil {
		table.Walk(func(p netutil.Prefix, porigins []uint32) bool {
			if leasedSet[p] {
				return true
			}
			out.NonLeasedTotal++
			for _, o := range porigins {
				if hj.Contains(o) {
					out.NonLeasedByHijackers++
					break
				}
			}
			return true
		})
	}
	return out
}
