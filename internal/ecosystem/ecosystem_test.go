package ecosystem

import (
	"strings"
	"testing"

	"ipleasing/internal/core"
	"ipleasing/internal/synth"
	"ipleasing/internal/whois"
)

func world(t *testing.T) (*synth.World, *core.Result) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 21, Scale: 0.01})
	return w, w.Pipeline().Infer()
}

func TestTopHoldersTable3Shape(t *testing.T) {
	w, res := world(t)
	top := TopHolders(res, w.Whois, 3)
	for _, reg := range whois.Registries {
		if len(top[reg]) != 3 {
			t.Fatalf("%v: top holders = %d", reg, len(top[reg]))
		}
		// Ranked descending with resolved display names.
		if top[reg][0].Count < top[reg][1].Count || top[reg][1].Count < top[reg][2].Count {
			t.Errorf("%v: not descending: %+v", reg, top[reg])
		}
	}
	// The named Table-3 holders must appear at the top of their regions.
	expectTop := map[whois.Registry]string{
		whois.RIPE:    "Resilans",
		whois.ARIN:    "EGIHosting",
		whois.AFRINIC: "Cloud Innovation",
	}
	for reg, frag := range expectTop {
		if !strings.Contains(top[reg][0].Name, frag) {
			t.Errorf("%v top holder = %q, want %q-ish", reg, top[reg][0].Name, frag)
		}
	}
	// Cloud Innovation must dwarf AFRINIC's #2 (paper: 2,014 vs 38).
	af := top[whois.AFRINIC]
	if af[0].Count < 5*af[1].Count {
		t.Errorf("AFRINIC dominance missing: %d vs %d", af[0].Count, af[1].Count)
	}
}

func TestTopFacilitatorsIPXO(t *testing.T) {
	_, res := world(t)
	top := TopFacilitators(res, nil, 3)
	// IPXO's maintainer must rank top-3 in RIPE, ARIN and APNIC (§6.3).
	ipxoHandle := ""
	for _, f := range top[whois.RIPE] {
		if strings.HasPrefix(f.ID, "BRK1-") {
			ipxoHandle = f.ID
		}
	}
	if ipxoHandle == "" {
		t.Fatalf("IPXO handle not in RIPE top-3: %+v", top[whois.RIPE])
	}
	for _, reg := range []whois.Registry{whois.ARIN, whois.APNIC} {
		found := false
		for _, f := range top[reg] {
			if f.ID == ipxoHandle {
				found = true
			}
		}
		if !found {
			t.Errorf("IPXO not top-3 facilitator in %v: %+v", reg, top[reg])
		}
	}
}

func TestTopOriginatorsNamedHosts(t *testing.T) {
	w, res := world(t)
	top := TopOriginators(res, w.Orgs, 5)
	if len(top) != 5 {
		t.Fatalf("top originators = %d", len(top))
	}
	names := make([]string, 0, 5)
	for _, o := range top {
		names = append(names, o.Name)
	}
	joined := strings.Join(names, ";")
	hits := 0
	for _, want := range []string{"M247", "Stark", "Datacamp"} {
		if strings.Contains(joined, want) {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("named hosting providers missing from top-5: %v", names)
	}
}

func TestHijackerOverlapShape(t *testing.T) {
	w, res := world(t)
	ov := OverlapHijackers(res, w.Table(), w.Hijackers)
	if ov.Originators == 0 || ov.LeasedTotal == 0 || ov.NonLeasedTotal == 0 {
		t.Fatalf("degenerate overlap: %+v", ov)
	}
	// Leased prefixes are markedly more hijacker-originated (paper:
	// 13.3% vs 3.1%).
	ls, ns := ov.LeasedHijackedShare(), ov.NonLeasedHijackedShare()
	if ls < 2*ns {
		t.Errorf("hijacker shares: leased %.3f vs non-leased %.3f, want clear gap", ls, ns)
	}
	if ls < 0.05 || ls > 0.25 {
		t.Errorf("leased hijacked share = %.3f, want ~0.133", ls)
	}
	if s := ov.OriginatorHijackerShare(); s <= 0 || s > 0.2 {
		t.Errorf("originator hijacker share = %.3f, want ~0.029", s)
	}
}

func TestEmptyResult(t *testing.T) {
	res := &core.Result{Regions: map[whois.Registry]*core.RegionResult{}}
	if got := TopHolders(res, whois.NewDataset(), 3); len(got) != 0 {
		t.Fatal("holders from empty result")
	}
	if got := TopOriginators(res, nil, 3); len(got) != 0 {
		t.Fatal("originators from empty result")
	}
	var zero HijackerOverlap
	if zero.OriginatorHijackerShare() != 0 || zero.LeasedHijackedShare() != 0 || zero.NonLeasedHijackedShare() != 0 {
		t.Fatal("zero-division guards missing")
	}
}
