package whois

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
)

// registryStatus returns a status string the registry's own dialect
// round-trips.
func registryStatus(reg Registry) string {
	switch reg {
	case ARIN:
		return "Direct Allocation"
	case LACNIC:
		return "allocated"
	default:
		return "ALLOCATED PA"
	}
}

// writeDumpDir writes a minimal five-registry dump directory: one org,
// one aut-num, and one inetnum per registry.
func writeDumpDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	ds := NewDataset()
	for i, reg := range Registries {
		db := ds.DB(reg)
		orgID := "ORG-" + reg.String()
		db.Orgs = append(db.Orgs, &Org{
			Registry: reg, ID: orgID, Name: "Example " + reg.String(),
			Country: "US", MntRef: []string{orgID},
		})
		db.AutNums = append(db.AutNums, &AutNum{
			Registry: reg, Number: uint32(64500 + i), Name: "EXAMPLE-" + reg.String(), OrgID: orgID,
		})
		first := netutil.MustParseAddr("192.0.2.0") + netutil.Addr(i*256)
		db.InetNums = append(db.InetNums, &InetNum{
			Registry: reg,
			Range:    netutil.Range{First: first, Last: first + 255},
			NetName:  "NET-" + reg.String(),
			Status:   registryStatus(reg),
			OrgID:    orgID,
			MntBy:    []string{orgID},
			Country:  "US",
		})
		db.Reindex()
	}
	if err := WriteDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestLoadDirAbsentAndCorrupt drives LoadDirWith over a directory with one
// registry dump deleted and another corrupted: strict must fail with an
// error locating the damage, lenient must load what it can and account for
// exactly what it lost.
func TestLoadDirAbsentAndCorrupt(t *testing.T) {
	dir := writeDumpDir(t)

	// Sanity: the pristine directory strict-loads every registry.
	ds, reports, err := LoadDirWith(dir, diag.Strict())
	if err != nil {
		t.Fatalf("strict load of pristine dir: %v", err)
	}
	if len(reports) != len(Registries) {
		t.Fatalf("got %d reports, want %d", len(reports), len(Registries))
	}
	for _, reg := range Registries {
		if got := len(ds.DB(reg).InetNums); got != 1 {
			t.Fatalf("%v: %d inetnums loaded, want 1", reg, got)
		}
	}

	// Damage: APNIC's dump vanishes, RIPE's gains an unparseable line.
	if err := os.Remove(filepath.Join(dir, DumpFileName(APNIC))); err != nil {
		t.Fatal(err)
	}
	ripePath := filepath.Join(dir, DumpFileName(RIPE))
	f, err := os.OpenFile(ripePath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("THIS LINE IS NOT RPSL\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Strict: the corrupt dump is fatal and the error locates it.
	_, reports, err = LoadDirWith(dir, diag.Strict())
	if err == nil {
		t.Fatal("strict load of corrupt dir succeeded")
	}
	if msg := err.Error(); !strings.Contains(msg, "ripe.db") {
		t.Errorf("strict error does not name the corrupt file: %v", err)
	} else if !strings.Contains(msg, "line ") && !strings.Contains(msg, "record ") {
		t.Errorf("strict error does not locate the damage: %v", err)
	}
	if len(reports) != len(Registries) {
		t.Fatalf("strict failure returned %d reports, want %d", len(reports), len(Registries))
	}

	// Lenient: everything loadable loads; the loss is accounted exactly.
	ds, reports, err = LoadDirWith(dir, diag.Lenient())
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	for _, rep := range reports {
		switch rep.Source {
		case "whois/" + APNIC.String():
			if !rep.Missing {
				t.Errorf("%s: not marked missing: %s", rep.Source, rep)
			}
		case "whois/" + RIPE.String():
			if rep.Skipped != 1 {
				t.Errorf("%s: skipped %d records, want 1: %s", rep.Source, rep.Skipped, rep)
			}
			if len(rep.ErrorSamples) == 0 {
				t.Errorf("%s: skipped a record but sampled no error", rep.Source)
			}
		default:
			if rep.Missing || rep.Skipped != 0 {
				t.Errorf("%s: unexpected degradation: %s", rep.Source, rep)
			}
		}
	}
	// The good records around the damage survive.
	if got := len(ds.DB(RIPE).InetNums); got != 1 {
		t.Errorf("lenient RIPE load kept %d inetnums, want 1", got)
	}
	apnic := ds.DB(APNIC)
	if n := len(apnic.InetNums) + len(apnic.AutNums) + len(apnic.Orgs); n != 0 {
		t.Errorf("absent APNIC dump yielded %d objects, want 0", n)
	}
}
