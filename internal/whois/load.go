package whois

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ipleasing/internal/arinwhois"
	"ipleasing/internal/diag"
	"ipleasing/internal/lacnicwhois"
	"ipleasing/internal/netutil"
	"ipleasing/internal/par"
	"ipleasing/internal/rpsl"
	"ipleasing/internal/telemetry"
)

// LoadRPSL parses an RPSL-dialect dump (RIPE, APNIC, AFRINIC) into a
// unified database. Unknown object classes are skipped; inetnum objects
// with unparseable ranges are an error.
func LoadRPSL(reg Registry, r io.Reader) (*Database, error) {
	return LoadRPSLWith(reg, r, nil)
}

// LoadRPSLWith is LoadRPSL threaded through a load-diagnostics collector.
// A nil collector (or strict options) keeps LoadRPSL's fail-fast behavior;
// in lenient mode malformed lines and records are skipped and accounted.
func LoadRPSLWith(reg Registry, r io.Reader, c *diag.Collector) (*Database, error) {
	switch reg {
	case RIPE, APNIC, AFRINIC:
	default:
		return nil, fmt.Errorf("whois: registry %v does not use the RPSL dialect", reg)
	}
	db := NewDatabase(reg)
	rd := rpsl.NewReader(r)
	if !c.Strict() {
		rd.OnBadLine = func(line int, err error) error {
			return c.Skip(line, -1, err)
		}
	}
	var obj rpsl.Object // reused across records; extracted strings are interned
	for rec := 1; ; rec++ {
		err := rd.NextInto(&obj)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("whois: %v dump: %w", reg, err)
		}
		o := &obj
		switch o.Class() {
		case "inetnum":
			rng, err := netutil.ParseRange(o.Key())
			if err != nil {
				if err := c.Skip(rec, -1, fmt.Errorf("whois: %v inetnum %q: %w", reg, o.Key(), err)); err != nil {
					return nil, err
				}
				continue
			}
			status, _ := o.Get("status")
			orgID, _ := o.Get("org")
			netname, _ := o.Get("netname")
			country, _ := o.Get("country")
			db.InetNums = append(db.InetNums, &InetNum{
				Registry:    reg,
				Range:       rng,
				NetName:     netname,
				Status:      status,
				Portability: PortabilityOf(reg, status),
				OrgID:       orgID,
				MntBy:       o.GetAll("mnt-by"),
				Country:     country,
			})
		case "aut-num":
			numStr := strings.TrimPrefix(strings.ToUpper(o.Key()), "AS")
			v, err := strconv.ParseUint(numStr, 10, 32)
			if err != nil {
				if err := c.Skip(rec, -1, fmt.Errorf("whois: %v aut-num %q: %v", reg, o.Key(), err)); err != nil {
					return nil, err
				}
				continue
			}
			name, _ := o.Get("as-name")
			orgID, _ := o.Get("org")
			db.AutNums = append(db.AutNums, &AutNum{
				Registry: reg, Number: uint32(v), Name: name, OrgID: orgID,
			})
		case "organisation":
			name, _ := o.Get("org-name")
			country, _ := o.Get("country")
			mnt := append(o.GetAll("mnt-ref"), o.GetAll("mnt-by")...)
			db.Orgs = append(db.Orgs, &Org{
				Registry: reg, ID: o.Key(), Name: name, Country: country, MntRef: mnt,
			})
		case "mntner":
			descr, _ := o.Get("descr")
			db.Mntners = append(db.Mntners, &Mntner{
				Registry: reg, Handle: o.Key(), Descr: descr,
			})
		}
		c.Parsed()
	}
	db.Reindex()
	return db, nil
}

// WriteRPSL renders the database in RPSL dump form (orgs, aut-nums,
// inetnums).
func WriteRPSL(w io.Writer, db *Database) error {
	ww := rpsl.NewWriter(w)
	for _, m := range db.Mntners {
		o := &rpsl.Object{}
		o.Add("mntner", m.Handle)
		if m.Descr != "" {
			o.Add("descr", m.Descr)
		}
		o.Add("auth", "MD5-PW $1$placeholder")
		o.Add("source", db.Registry.String())
		if err := ww.Write(o); err != nil {
			return err
		}
	}
	for _, g := range db.Orgs {
		o := &rpsl.Object{}
		o.Add("organisation", g.ID)
		o.Add("org-name", g.Name)
		for _, m := range g.MntRef {
			o.Add("mnt-ref", m)
		}
		if g.Country != "" {
			o.Add("country", g.Country)
		}
		o.Add("source", db.Registry.String())
		if err := ww.Write(o); err != nil {
			return err
		}
	}
	for _, a := range db.AutNums {
		o := &rpsl.Object{}
		o.Add("aut-num", "AS"+strconv.FormatUint(uint64(a.Number), 10))
		if a.Name != "" {
			o.Add("as-name", a.Name)
		}
		if a.OrgID != "" {
			o.Add("org", a.OrgID)
		}
		o.Add("source", db.Registry.String())
		if err := ww.Write(o); err != nil {
			return err
		}
	}
	for _, n := range db.InetNums {
		o := &rpsl.Object{}
		o.Add("inetnum", n.Range.String())
		if n.NetName != "" {
			o.Add("netname", n.NetName)
		}
		if n.OrgID != "" {
			o.Add("org", n.OrgID)
		}
		o.Add("status", n.Status)
		for _, m := range n.MntBy {
			o.Add("mnt-by", m)
		}
		if n.Country != "" {
			o.Add("country", n.Country)
		}
		o.Add("source", db.Registry.String())
		if err := ww.Write(o); err != nil {
			return err
		}
	}
	return nil
}

// LoadARIN parses an ARIN bulk-WHOIS dump into a unified database.
// ARIN has no RPSL maintainers; the managing OrgID doubles as the
// maintainer handle so broker matching (paper §5.3) works uniformly.
func LoadARIN(r io.Reader) (*Database, error) {
	return LoadARINWith(r, nil)
}

// LoadARINWith is LoadARIN threaded through a load-diagnostics collector.
func LoadARINWith(r io.Reader, c *diag.Collector) (*Database, error) {
	raw, err := arinwhois.ParseWith(r, c)
	if err != nil {
		return nil, err
	}
	db := NewDatabase(ARIN)
	for _, g := range raw.Orgs {
		db.Orgs = append(db.Orgs, &Org{
			Registry: ARIN, ID: g.ID, Name: g.Name, Country: g.Country,
			MntRef: []string{g.ID},
		})
	}
	for _, a := range raw.ASes {
		db.AutNums = append(db.AutNums, &AutNum{
			Registry: ARIN, Number: a.Number, Name: a.Name, OrgID: a.OrgID,
		})
	}
	for _, n := range raw.Nets {
		var mnt []string
		if n.OrgID != "" {
			mnt = []string{n.OrgID}
		}
		db.InetNums = append(db.InetNums, &InetNum{
			Registry:    ARIN,
			Range:       n.Range,
			NetName:     n.Name,
			Status:      n.Type,
			Portability: PortabilityOf(ARIN, n.Type),
			OrgID:       n.OrgID,
			MntBy:       mnt,
			Country:     n.Country,
		})
	}
	db.Reindex()
	return db, nil
}

// WriteARIN renders the database in ARIN bulk-WHOIS form.
func WriteARIN(w io.Writer, db *Database) error {
	raw := &arinwhois.Database{}
	for _, g := range db.Orgs {
		raw.Orgs = append(raw.Orgs, &arinwhois.Org{ID: g.ID, Name: g.Name, Country: g.Country})
	}
	for _, a := range db.AutNums {
		raw.ASes = append(raw.ASes, &arinwhois.AS{
			Handle: "AS" + strconv.FormatUint(uint64(a.Number), 10),
			Number: a.Number, OrgID: a.OrgID, Name: a.Name,
		})
	}
	for i, n := range db.InetNums {
		// ARIN has no maintainer attribute: the managing handle rides in
		// OrgID, falling back to the block's maintainer for customer
		// blocks without a registered organisation.
		orgID := n.OrgID
		if orgID == "" && len(n.MntBy) > 0 {
			orgID = n.MntBy[0]
		}
		raw.Nets = append(raw.Nets, &arinwhois.Net{
			Handle:  arinNetHandle(n.Range, i),
			OrgID:   orgID,
			Name:    n.NetName,
			Range:   n.Range,
			Type:    n.Status,
			Country: n.Country,
		})
	}
	return arinwhois.Write(w, raw)
}

func arinNetHandle(r netutil.Range, i int) string {
	return "NET-" + strings.ReplaceAll(r.First.String(), ".", "-") + "-" + strconv.Itoa(i)
}

// LoadLACNIC parses a LACNIC dump into a unified database. LACNIC has no
// standalone organisation objects; orgs are synthesised from the distinct
// ownerid/owner pairs found on blocks and aut-nums, and the ownerid doubles
// as the maintainer handle.
func LoadLACNIC(r io.Reader) (*Database, error) {
	return LoadLACNICWith(r, nil)
}

// LoadLACNICWith is LoadLACNIC threaded through a load-diagnostics
// collector.
func LoadLACNICWith(r io.Reader, c *diag.Collector) (*Database, error) {
	raw, err := lacnicwhois.ParseWith(r, c)
	if err != nil {
		return nil, err
	}
	db := NewDatabase(LACNIC)
	seen := make(map[string]bool)
	addOrg := func(id, name, country string) {
		if id == "" || seen[id] {
			return
		}
		seen[id] = true
		db.Orgs = append(db.Orgs, &Org{
			Registry: LACNIC, ID: id, Name: name, Country: country,
			MntRef: []string{id},
		})
	}
	for _, b := range raw.Blocks {
		addOrg(b.OwnerID, b.Owner, b.Country)
		db.InetNums = append(db.InetNums, &InetNum{
			Registry:    LACNIC,
			Range:       netutil.RangeOf(b.Prefix),
			NetName:     b.OwnerID,
			Status:      b.Status,
			Portability: PortabilityOf(LACNIC, b.Status),
			OrgID:       b.OwnerID,
			MntBy:       []string{b.OwnerID},
			Country:     b.Country,
		})
	}
	for _, a := range raw.ASNs {
		addOrg(a.OwnerID, a.Owner, "")
		db.AutNums = append(db.AutNums, &AutNum{
			Registry: LACNIC, Number: a.Number, Name: a.Owner, OrgID: a.OwnerID,
		})
	}
	db.Reindex()
	return db, nil
}

// WriteLACNIC renders the database in LACNIC dump form. Blocks whose range
// is not a single CIDR prefix are split into their CIDR decomposition, as
// LACNIC's dialect only carries prefixes.
func WriteLACNIC(w io.Writer, db *Database) error {
	raw := &lacnicwhois.Database{}
	orgName := func(id string) string {
		if o, ok := db.OrgByID(id); ok {
			return o.Name
		}
		return id
	}
	for _, n := range db.InetNums {
		// LACNIC has no separate maintainer attribute: the managing
		// handle is the ownerid. Blocks without a holder org (customer
		// sub-assignments) carry their maintainer handle there.
		ownerID := n.OrgID
		if ownerID == "" && len(n.MntBy) > 0 {
			ownerID = n.MntBy[0]
		}
		if ownerID == "" {
			ownerID = "UNKNOWN-LACNIC"
		}
		for _, p := range n.Range.Prefixes() {
			raw.Blocks = append(raw.Blocks, &lacnicwhois.Block{
				Prefix:  p,
				Status:  strings.ToLower(n.Status),
				Owner:   orgName(ownerID),
				OwnerID: ownerID,
				Country: n.Country,
			})
		}
	}
	for _, a := range db.AutNums {
		// Every LACNIC object needs an ownerid; ASNs registered without
		// an organisation get a per-ASN placeholder handle.
		ownerID := a.OrgID
		if ownerID == "" {
			ownerID = fmt.Sprintf("LACNIC-AS-%d", a.Number)
		}
		raw.ASNs = append(raw.ASNs, &lacnicwhois.ASN{
			Number: a.Number, Owner: orgName(ownerID), OwnerID: ownerID,
		})
	}
	return lacnicwhois.Write(w, raw)
}

// DumpFileName returns the conventional dataset-directory file name for a
// registry's WHOIS dump ("ripe.db", "arin.db", ...).
func DumpFileName(reg Registry) string {
	return strings.ToLower(reg.String()) + ".db"
}

// LoadFile loads one registry's dump from path using the registry's
// native dialect.
func LoadFile(reg Registry, path string) (*Database, error) {
	return LoadFileWith(reg, path, nil)
}

// LoadFileWith is LoadFile threaded through a load-diagnostics collector.
func LoadFileWith(reg Registry, path string, c *diag.Collector) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c.SetFile(path)
	r := diag.CountReader(f, c)
	switch reg {
	case ARIN:
		return LoadARINWith(r, c)
	case LACNIC:
		return LoadLACNICWith(r, c)
	default:
		return LoadRPSLWith(reg, r, c)
	}
}

// WriteFile writes one registry's dump to path in its native dialect.
func WriteFile(db *Database, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch db.Registry {
	case ARIN:
		werr = WriteARIN(f, db)
	case LACNIC:
		werr = WriteLACNIC(f, db)
	default:
		werr = WriteRPSL(f, db)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// LoadDir loads all five registry dumps from dir (files named per
// DumpFileName). Missing files yield empty databases. The five dialect
// parsers are independent, so the dumps are parsed concurrently; the
// result is identical to a serial load.
func LoadDir(dir string) (*Dataset, error) {
	ds, _, err := LoadDirWith(dir, diag.Strict())
	return ds, err
}

// LoadDirWith is LoadDir with an explicit ingestion policy. It returns one
// LoadReport per registry in Registries order (sources "whois/RIPE",
// "whois/ARIN", ...). A registry whose dump file is absent yields an empty
// database and a Missing report in both modes — LoadDir has always
// tolerated absent registries; the report now says so out loud. In lenient
// mode malformed lines and records inside a present dump are skipped and
// accounted instead of failing the whole load.
func LoadDirWith(dir string, opts diag.LoadOptions) (*Dataset, []*diag.LoadReport, error) {
	return LoadDirContext(context.Background(), dir, opts)
}

// LoadDirContext is LoadDirWith under a context. When the context
// carries a telemetry trace, each registry's parse runs inside a
// "whois.parse.<RIR>" span annotated with the records and bytes the
// parse consumed.
func LoadDirContext(ctx context.Context, dir string, opts diag.LoadOptions) (*Dataset, []*diag.LoadReport, error) {
	dbs := make([]*Database, len(Registries))
	cols := make([]*diag.Collector, len(Registries))
	for i, reg := range Registries {
		cols[i] = diag.NewCollector("whois/"+reg.String(), opts)
	}
	err := par.Each(len(Registries), func(i int) error {
		reg := Registries[i]
		_, sp := telemetry.StartSpan(ctx, "whois.parse."+reg.String())
		defer func() {
			if rep := cols[i].Report(); rep != nil {
				sp.AddRecords(int64(rep.Parsed))
				sp.AddBytes(rep.Bytes)
			}
			sp.End()
		}()
		path := filepath.Join(dir, DumpFileName(reg))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			cols[i].SetFile(path)
			cols[i].MarkMissing()
			return nil
		}
		db, err := LoadFileWith(reg, path, cols[i])
		if err != nil {
			return fmt.Errorf("whois: loading %s: %w", path, err)
		}
		dbs[i] = db
		return nil
	})
	reports := make([]*diag.LoadReport, len(Registries))
	for i, c := range cols {
		reports[i] = c.Report()
	}
	if err != nil {
		return nil, reports, err
	}
	ds := NewDataset()
	for i, db := range dbs {
		if db != nil {
			ds.DBs[Registries[i]] = db
		}
	}
	return ds, reports, nil
}

// WriteDir writes every registry's dump into dir.
func WriteDir(ds *Dataset, dir string) error {
	for _, reg := range Registries {
		db, ok := ds.DBs[reg]
		if !ok {
			continue
		}
		if err := WriteFile(db, filepath.Join(dir, DumpFileName(reg))); err != nil {
			return err
		}
	}
	return nil
}
