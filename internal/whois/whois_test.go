package whois

import (
	"bytes"
	"strings"
	"testing"

	"ipleasing/internal/netutil"
)

func TestRegistryNames(t *testing.T) {
	for _, r := range Registries {
		got, err := ParseRegistry(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRegistry(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRegistry("IANA"); err == nil {
		t.Fatal("unknown registry accepted")
	}
	if got, err := ParseRegistry(" ripe "); err != nil || got != RIPE {
		t.Fatalf("case/space-insensitive parse failed: %v %v", got, err)
	}
	if Registry(99).String() == "" {
		t.Fatal("out-of-range String empty")
	}
}

func TestPortabilityOf(t *testing.T) {
	cases := []struct {
		reg    Registry
		status string
		want   Portability
	}{
		{RIPE, "ALLOCATED PA", Portable},
		{RIPE, "ASSIGNED PI", Portable},
		{RIPE, "assigned pa", NonPortable},
		{RIPE, "SUB-ALLOCATED PA", NonPortable},
		{RIPE, "LEGACY", Legacy},
		{RIPE, "WEIRD", PortabilityUnknown},
		{AFRINIC, "ALLOCATED PA", Portable},
		{AFRINIC, "SUB-ALLOCATED PA", NonPortable},
		{APNIC, "ALLOCATED PORTABLE", Portable},
		{APNIC, "ASSIGNED NON-PORTABLE", NonPortable},
		{APNIC, "ALLOCATED PA", PortabilityUnknown}, // RIPE vocab not valid at APNIC
		{ARIN, "Direct Allocation", Portable},
		{ARIN, "Direct Assignment", Portable},
		{ARIN, "Reallocation", NonPortable},
		{ARIN, "Reassignment", NonPortable},
		{ARIN, "Legacy", Legacy},
		{LACNIC, "allocated", Portable},
		{LACNIC, "reassigned", NonPortable},
		{LACNIC, "reallocated", NonPortable},
	}
	for _, c := range cases {
		if got := PortabilityOf(c.reg, c.status); got != c.want {
			t.Errorf("PortabilityOf(%v, %q) = %v, want %v", c.reg, c.status, got, c.want)
		}
	}
}

func TestPortabilityString(t *testing.T) {
	if Portable.String() != "portable" || NonPortable.String() != "non-portable" ||
		Legacy.String() != "legacy" || PortabilityUnknown.String() != "unknown" {
		t.Fatal("portability names wrong")
	}
}

const ripeSample = `
organisation:   ORG-GCI1-RIPE
org-name:       GCI Network
mnt-ref:        MNT-GCICOM
country:        SE
source:         RIPE

aut-num:        AS8851
as-name:        GCI-AS
org:            ORG-GCI1-RIPE
source:         RIPE

inetnum:        213.210.0.0 - 213.210.63.255
netname:        GCI-NET
org:            ORG-GCI1-RIPE
status:         ALLOCATED PA
mnt-by:         MNT-GCICOM
country:        SE
source:         RIPE

inetnum:        213.210.33.0 - 213.210.33.255
netname:        IPXO-LEASE
status:         ASSIGNED PA
mnt-by:         IPXO-MNT
source:         RIPE
`

func TestLoadRPSL(t *testing.T) {
	db, err := LoadRPSL(RIPE, strings.NewReader(ripeSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Orgs) != 1 || len(db.AutNums) != 1 || len(db.InetNums) != 2 {
		t.Fatalf("counts: %d %d %d", len(db.Orgs), len(db.AutNums), len(db.InetNums))
	}
	org, ok := db.OrgByID("ORG-GCI1-RIPE")
	if !ok || org.Name != "GCI Network" || org.MntRef[0] != "MNT-GCICOM" {
		t.Fatalf("org = %+v", org)
	}
	asns := db.ASNsOfOrg("ORG-GCI1-RIPE")
	if len(asns) != 1 || asns[0] != 8851 {
		t.Fatalf("asns = %v", asns)
	}
	root := db.InetNums[0]
	if root.Portability != Portable || root.OrgID != "ORG-GCI1-RIPE" {
		t.Fatalf("root = %+v", root)
	}
	leaf := db.InetNums[1]
	if leaf.Portability != NonPortable || leaf.MntBy[0] != "IPXO-MNT" {
		t.Fatalf("leaf = %+v", leaf)
	}
	ps := leaf.Prefixes()
	if len(ps) != 1 || ps[0] != netutil.MustParsePrefix("213.210.33.0/24") {
		t.Fatalf("leaf prefixes = %v", ps)
	}
}

func TestMntnerRoundTrip(t *testing.T) {
	in := "mntner: IPXO-MNT\ndescr: IPXO maintainer\nauth: MD5-PW $1$x\nsource: RIPE\n"
	db, err := LoadRPSL(RIPE, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Mntners) != 1 || db.Mntners[0].Handle != "IPXO-MNT" || db.Mntners[0].Descr != "IPXO maintainer" {
		t.Fatalf("mntners = %+v", db.Mntners)
	}
	var buf bytes.Buffer
	if err := WriteRPSL(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRPSL(RIPE, &buf)
	if err != nil || len(back.Mntners) != 1 || back.Mntners[0].Handle != "IPXO-MNT" {
		t.Fatalf("round trip: %v %+v", err, back.Mntners)
	}
}

func TestLoadRPSLWrongDialect(t *testing.T) {
	if _, err := LoadRPSL(ARIN, strings.NewReader("")); err == nil {
		t.Fatal("ARIN accepted as RPSL dialect")
	}
	if _, err := LoadRPSL(LACNIC, strings.NewReader("")); err == nil {
		t.Fatal("LACNIC accepted as RPSL dialect")
	}
}

func TestLoadRPSLErrors(t *testing.T) {
	if _, err := LoadRPSL(RIPE, strings.NewReader("inetnum: garbage\nstatus: ALLOCATED PA\n")); err == nil {
		t.Fatal("bad inetnum accepted")
	}
	if _, err := LoadRPSL(RIPE, strings.NewReader("aut-num: ASxyz\n")); err == nil {
		t.Fatal("bad aut-num accepted")
	}
}

func TestRPSLRoundTrip(t *testing.T) {
	db, err := LoadRPSL(RIPE, strings.NewReader(ripeSample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRPSL(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRPSL(RIPE, &buf)
	if err != nil {
		t.Fatalf("re-load: %v", err)
	}
	if len(back.InetNums) != len(db.InetNums) || len(back.AutNums) != len(db.AutNums) || len(back.Orgs) != len(db.Orgs) {
		t.Fatal("round-trip counts differ")
	}
	for i := range db.InetNums {
		a, b := db.InetNums[i], back.InetNums[i]
		if a.Range != b.Range || a.Status != b.Status || a.OrgID != b.OrgID ||
			a.Portability != b.Portability || len(a.MntBy) != len(b.MntBy) {
			t.Fatalf("inetnum %d: %+v != %+v", i, a, b)
		}
	}
}

func TestLoadARINUnified(t *testing.T) {
	in := `
OrgID: EGIHOST
OrgName: EGIHosting
Country: US

ASHandle: AS64500
ASNumber: 64500
ASName: EGI-AS
OrgID: EGIHOST

NetHandle: NET-198-51-100-0-1
NetRange: 198.51.100.0 - 198.51.100.255
NetName: EGI-NET
NetType: Direct Allocation
OrgID: EGIHOST
`
	db, err := LoadARIN(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Registry != ARIN {
		t.Fatal("registry wrong")
	}
	n := db.InetNums[0]
	if n.Portability != Portable || n.OrgID != "EGIHOST" || len(n.MntBy) != 1 || n.MntBy[0] != "EGIHOST" {
		t.Fatalf("net = %+v", n)
	}
	if got := db.ASNsOfOrg("EGIHOST"); len(got) != 1 || got[0] != 64500 {
		t.Fatalf("asns = %v", got)
	}
	var buf bytes.Buffer
	if err := WriteARIN(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadARIN(&buf)
	if err != nil || len(back.InetNums) != 1 || back.InetNums[0].Range != n.Range {
		t.Fatalf("ARIN round trip: %v", err)
	}
}

func TestLoadLACNICUnified(t *testing.T) {
	in := `
inetnum: 200.160.0.0/20
status: allocated
owner: Radiografica Costarricense
ownerid: CR-RACS-LACNIC
country: CR

inetnum: 200.160.4.0/24
status: reassigned
owner: Cliente Final SA
ownerid: CR-CFSA-LACNIC

aut-num: AS27700
owner: Radiografica Costarricense
ownerid: CR-RACS-LACNIC
`
	db, err := LoadLACNIC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Orgs) != 2 {
		t.Fatalf("orgs = %d (synthesised from ownerids)", len(db.Orgs))
	}
	if db.InetNums[0].Portability != Portable || db.InetNums[1].Portability != NonPortable {
		t.Fatal("portability wrong")
	}
	if got := db.ASNsOfOrg("CR-RACS-LACNIC"); len(got) != 1 || got[0] != 27700 {
		t.Fatalf("asns = %v", got)
	}
	var buf bytes.Buffer
	if err := WriteLACNIC(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLACNIC(&buf)
	if err != nil || len(back.InetNums) != 2 || len(back.Orgs) != 2 {
		t.Fatalf("LACNIC round trip: %v (%d nets %d orgs)", err, len(back.InetNums), len(back.Orgs))
	}
}

func TestDatasetDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := NewDataset()
	ripe := ds.DB(RIPE)
	ripe.Orgs = append(ripe.Orgs, &Org{Registry: RIPE, ID: "ORG-X", Name: "X Corp"})
	ripe.InetNums = append(ripe.InetNums, &InetNum{
		Registry: RIPE,
		Range:    netutil.RangeOf(netutil.MustParsePrefix("185.0.0.0/16")),
		Status:   "ALLOCATED PA", Portability: Portable, OrgID: "ORG-X",
		MntBy: []string{"MNT-X"},
	})
	ripe.Reindex()
	lac := ds.DB(LACNIC)
	lac.Orgs = append(lac.Orgs, &Org{Registry: LACNIC, ID: "CR-X", Name: "Y"})
	lac.InetNums = append(lac.InetNums, &InetNum{
		Registry: LACNIC,
		Range:    netutil.RangeOf(netutil.MustParsePrefix("200.0.0.0/16")),
		Status:   "allocated", Portability: Portable, OrgID: "CR-X",
	})
	lac.Reindex()

	if err := WriteDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.DB(RIPE).InetNums) != 1 || len(back.DB(LACNIC).InetNums) != 1 {
		t.Fatal("round trip lost blocks")
	}
	if back.TotalInetNums() != 2 {
		t.Fatalf("TotalInetNums = %d", back.TotalInetNums())
	}
	// Missing files are fine: empty DBs.
	if len(back.DB(APNIC).InetNums) != 0 {
		t.Fatal("APNIC should be empty")
	}
}

func TestDumpFileName(t *testing.T) {
	if DumpFileName(RIPE) != "ripe.db" || DumpFileName(LACNIC) != "lacnic.db" {
		t.Fatal("file names wrong")
	}
}

func TestDatasetDBCreatesMissing(t *testing.T) {
	ds := &Dataset{DBs: map[Registry]*Database{}}
	db := ds.DB(APNIC)
	if db == nil || db.Registry != APNIC {
		t.Fatal("DB() did not create")
	}
	if ds.DB(APNIC) != db {
		t.Fatal("DB() not idempotent")
	}
}
