// Package whois provides a unified object model over the five RIR WHOIS
// bulk databases and the per-registry address-policy rules (paper §2.1)
// that classify registered address space as portable, non-portable, or
// legacy.
//
// RIPE, APNIC, and AFRINIC publish RPSL dumps; ARIN publishes its bulk
// WHOIS dialect; LACNIC embeds owners in its block objects. Loaders for
// each dialect normalise into the same InetNum / AutNum / Org model so the
// inference core (internal/core) is registry agnostic.
package whois

import (
	"fmt"
	"strings"

	"ipleasing/internal/netutil"
)

// Registry identifies one of the five Regional Internet Registries.
type Registry int

// The five RIRs, in the order the paper reports them.
const (
	RIPE Registry = iota
	ARIN
	APNIC
	AFRINIC
	LACNIC
	numRegistries
)

// Registries lists all five RIRs in canonical (paper Table 1) order.
var Registries = []Registry{RIPE, ARIN, APNIC, AFRINIC, LACNIC}

var registryNames = [...]string{"RIPE", "ARIN", "APNIC", "AFRINIC", "LACNIC"}

// String returns the RIR's canonical name.
func (r Registry) String() string {
	if r < 0 || int(r) >= len(registryNames) {
		return fmt.Sprintf("Registry(%d)", int(r))
	}
	return registryNames[r]
}

// ParseRegistry parses a registry name (case insensitive).
func ParseRegistry(s string) (Registry, error) {
	up := strings.ToUpper(strings.TrimSpace(s))
	for i, n := range registryNames {
		if n == up {
			return Registry(i), nil
		}
	}
	return 0, fmt.Errorf("whois: unknown registry %q", s)
}

// Portability classifies registered address space per RIR policy (§2.1).
type Portability int

const (
	// PortabilityUnknown marks statuses outside the policy vocabulary.
	PortabilityUnknown Portability = iota
	// Portable space is directly distributed by an RIR; its holder can
	// pick any connectivity provider, so it is never considered leased.
	Portable
	// NonPortable space is sub-allocated or assigned by a portable-space
	// holder; if its user does not use the holder's connectivity it is
	// leased by the paper's definition.
	NonPortable
	// Legacy space predates the RIR system and has no defined
	// portability; the inference excludes it.
	Legacy
)

var portabilityNames = [...]string{"unknown", "portable", "non-portable", "legacy"}

func (p Portability) String() string {
	if p < 0 || int(p) >= len(portabilityNames) {
		return fmt.Sprintf("Portability(%d)", int(p))
	}
	return portabilityNames[p]
}

// PortabilityOf maps a registry-specific block status to its portability
// class, implementing the policy table of paper §2.1.
func PortabilityOf(reg Registry, status string) Portability {
	s := strings.ToUpper(strings.TrimSpace(status))
	if s == "LEGACY" {
		return Legacy
	}
	switch reg {
	case RIPE, AFRINIC:
		switch s {
		case "ALLOCATED PA", "ALLOCATED PI", "ASSIGNED PI",
			"ALLOCATED UNSPECIFIED", "ASSIGNED ANYCAST":
			return Portable
		case "ASSIGNED PA", "SUB-ALLOCATED PA", "LIR-PARTITIONED PA":
			return NonPortable
		}
	case APNIC:
		switch s {
		case "ALLOCATED PORTABLE", "ASSIGNED PORTABLE":
			return Portable
		case "ALLOCATED NON-PORTABLE", "ASSIGNED NON-PORTABLE":
			return NonPortable
		}
	case ARIN:
		switch s {
		case "DIRECT ALLOCATION", "DIRECT ASSIGNMENT":
			return Portable
		case "REALLOCATION", "REASSIGNMENT":
			return NonPortable
		}
	case LACNIC:
		switch s {
		case "ALLOCATED", "ASSIGNED":
			return Portable
		case "REALLOCATED", "REASSIGNED":
			return NonPortable
		}
	}
	return PortabilityUnknown
}

// InetNum is a registered address block, normalised across dialects.
type InetNum struct {
	Registry    Registry
	Range       netutil.Range
	NetName     string
	Status      string // registry-native status string
	Portability Portability
	OrgID       string   // holder organisation handle ("" if unregistered)
	MntBy       []string // maintainer handles (ARIN/LACNIC: managing handle)
	Country     string
}

// Prefixes returns the minimal CIDR decomposition of the block.
func (n *InetNum) Prefixes() []netutil.Prefix { return n.Range.Prefixes() }

// AutNum is a registered AS number.
type AutNum struct {
	Registry Registry
	Number   uint32
	Name     string
	OrgID    string
}

// Org is a registered organisation.
type Org struct {
	Registry Registry
	ID       string
	Name     string
	Country  string
	MntRef   []string // maintainers associated with the org (mnt-ref/mnt-by)
}

// Mntner is a maintainer object (RPSL registries only): the
// authentication handle referenced by mnt-by attributes. ARIN and LACNIC
// have no maintainer objects; their managing handle is the organisation
// ID.
type Mntner struct {
	Registry Registry
	Handle   string
	Descr    string
}

// Database is one registry's parsed WHOIS content plus lookup indexes.
type Database struct {
	Registry Registry
	InetNums []*InetNum
	AutNums  []*AutNum
	Orgs     []*Org
	Mntners  []*Mntner

	orgByID      map[string]*Org
	autNumsByOrg map[string][]*AutNum
}

// NewDatabase returns an empty database for reg.
func NewDatabase(reg Registry) *Database {
	return &Database{Registry: reg}
}

// Reindex (re)builds the lookup indexes. Loaders call it automatically;
// call it again after mutating the object slices directly.
func (db *Database) Reindex() {
	db.orgByID = make(map[string]*Org, len(db.Orgs))
	for _, o := range db.Orgs {
		db.orgByID[o.ID] = o
	}
	db.autNumsByOrg = make(map[string][]*AutNum, len(db.AutNums))
	for _, a := range db.AutNums {
		if a.OrgID != "" {
			db.autNumsByOrg[a.OrgID] = append(db.autNumsByOrg[a.OrgID], a)
		}
	}
}

// OrgByID returns the organisation with the given handle.
func (db *Database) OrgByID(id string) (*Org, bool) {
	o, ok := db.orgByID[id]
	return o, ok
}

// ASNsOfOrg returns the AS numbers registered to org id (paper §5.1
// step 3: "assign AS numbers" to root-node organisations).
func (db *Database) ASNsOfOrg(id string) []uint32 {
	ans := db.autNumsByOrg[id]
	if len(ans) == 0 {
		return nil
	}
	out := make([]uint32, len(ans))
	for i, a := range ans {
		out[i] = a.Number
	}
	return out
}

// Dataset bundles the databases of all five registries.
type Dataset struct {
	DBs map[Registry]*Database
}

// NewDataset returns a Dataset with empty databases for every registry.
func NewDataset() *Dataset {
	ds := &Dataset{DBs: make(map[Registry]*Database, int(numRegistries))}
	for _, r := range Registries {
		ds.DBs[r] = NewDatabase(r)
	}
	return ds
}

// DB returns the database for reg, creating an empty one if absent.
func (ds *Dataset) DB(reg Registry) *Database {
	if db, ok := ds.DBs[reg]; ok {
		return db
	}
	db := NewDatabase(reg)
	ds.DBs[reg] = db
	return db
}

// TotalInetNums returns the number of address blocks across registries.
func (ds *Dataset) TotalInetNums() int {
	n := 0
	for _, db := range ds.DBs {
		n += len(db.InetNums)
	}
	return n
}
