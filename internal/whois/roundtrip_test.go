package whois

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ipleasing/internal/netutil"
)

// randomDatabase builds a semantically valid random database for reg.
func randomDatabase(reg Registry, rng *rand.Rand) *Database {
	db := NewDatabase(reg)
	nOrgs := 1 + rng.Intn(8)
	for i := 0; i < nOrgs; i++ {
		org := &Org{
			Registry: reg,
			ID:       fmt.Sprintf("ORG-%s-%d", reg, i),
			Name:     fmt.Sprintf("Random Org %d", i),
			Country:  []string{"US", "DE", "JP", "BR"}[rng.Intn(4)],
		}
		if reg == ARIN || reg == LACNIC {
			org.MntRef = []string{org.ID}
		} else {
			org.MntRef = []string{fmt.Sprintf("MNT-%s-%d", reg, i)}
		}
		db.Orgs = append(db.Orgs, org)
	}
	for i := 0; i < 1+rng.Intn(6); i++ {
		db.AutNums = append(db.AutNums, &AutNum{
			Registry: reg,
			Number:   uint32(64500 + i),
			Name:     fmt.Sprintf("AS-RAND-%d", i),
			OrgID:    db.Orgs[rng.Intn(len(db.Orgs))].ID,
		})
	}
	portable := []string{"ALLOCATED PA", "Direct Allocation", "allocated"}
	nonPortable := []string{"ASSIGNED PA", "Reassignment", "reassigned"}
	statusIdx := map[Registry]int{RIPE: 0, APNIC: 0, AFRINIC: 0, ARIN: 1, LACNIC: 2}[reg]
	if reg == APNIC {
		portable[0], nonPortable[0] = "ALLOCATED PORTABLE", "ASSIGNED NON-PORTABLE"
	}
	base := uint32(10+rng.Intn(100)) << 24
	for i := 0; i < 2+rng.Intn(10); i++ {
		p := netutil.Prefix{Base: netutil.Addr(base + uint32(i)<<16), Len: 18 + uint8(rng.Intn(7))}.Canonicalize()
		status := portable[statusIdx]
		portability := Portable
		org := db.Orgs[rng.Intn(len(db.Orgs))]
		if rng.Intn(2) == 0 {
			status, portability = nonPortable[statusIdx], NonPortable
		}
		db.InetNums = append(db.InetNums, &InetNum{
			Registry:    reg,
			Range:       netutil.RangeOf(p),
			NetName:     fmt.Sprintf("NET-%d", i),
			Status:      status,
			Portability: portability,
			OrgID:       org.ID,
			MntBy:       []string{org.MntRef[0]},
			Country:     org.Country,
		})
	}
	db.Reindex()
	return db
}

// TestAllDialectsRoundTripProperty: for every registry, random databases
// survive a write/load cycle with the semantics the inference depends on
// intact — ranges, statuses, portability, orgs, maintainers, countries.
func TestAllDialectsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		for _, reg := range Registries {
			db := randomDatabase(reg, rng)
			var buf bytes.Buffer
			var werr error
			switch reg {
			case ARIN:
				werr = WriteARIN(&buf, db)
			case LACNIC:
				werr = WriteLACNIC(&buf, db)
			default:
				werr = WriteRPSL(&buf, db)
			}
			if werr != nil {
				t.Fatalf("%v write: %v", reg, werr)
			}
			var back *Database
			var rerr error
			switch reg {
			case ARIN:
				back, rerr = LoadARIN(&buf)
			case LACNIC:
				back, rerr = LoadLACNIC(&buf)
			default:
				back, rerr = LoadRPSL(reg, &buf)
			}
			if rerr != nil {
				t.Fatalf("%v load: %v", reg, rerr)
			}
			if len(back.InetNums) != len(db.InetNums) {
				t.Fatalf("%v: blocks %d != %d", reg, len(back.InetNums), len(db.InetNums))
			}
			for i := range db.InetNums {
				a, b := db.InetNums[i], back.InetNums[i]
				if a.Range != b.Range {
					t.Fatalf("%v block %d: range %v != %v", reg, i, a.Range, b.Range)
				}
				if a.Portability != b.Portability {
					t.Fatalf("%v block %d: portability %v != %v", reg, i, a.Portability, b.Portability)
				}
				if a.OrgID != b.OrgID {
					t.Fatalf("%v block %d: org %q != %q", reg, i, a.OrgID, b.OrgID)
				}
				if len(a.MntBy) == 0 || len(b.MntBy) == 0 || a.MntBy[0] != b.MntBy[0] {
					t.Fatalf("%v block %d: mnt %v != %v", reg, i, a.MntBy, b.MntBy)
				}
				if a.Country != b.Country {
					t.Fatalf("%v block %d: country %q != %q", reg, i, a.Country, b.Country)
				}
			}
			if len(back.AutNums) != len(db.AutNums) {
				t.Fatalf("%v: asns %d != %d", reg, len(back.AutNums), len(db.AutNums))
			}
			for i := range db.AutNums {
				if db.AutNums[i].Number != back.AutNums[i].Number ||
					db.AutNums[i].OrgID != back.AutNums[i].OrgID {
					t.Fatalf("%v asn %d differs", reg, i)
				}
			}
			// Org ASN lookup keeps working after the round trip.
			for _, org := range db.Orgs {
				if len(db.ASNsOfOrg(org.ID)) != len(back.ASNsOfOrg(org.ID)) {
					t.Fatalf("%v: ASNsOfOrg(%s) changed", reg, org.ID)
				}
			}
		}
	}
}
