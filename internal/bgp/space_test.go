package bgp

import (
	"math/rand"
	"testing"

	"ipleasing/internal/netutil"
)

// TestRoutedAddressSpaceAgainstBitmap: for random small tables over a
// bounded universe, the merged-interval accounting must equal a
// brute-force per-address count.
func TestRoutedAddressSpaceAgainstBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		var tbl Table
		// Universe: 10.0.0.0/16 (65536 addresses) so the bitmap is cheap.
		covered := make([]bool, 1<<16)
		n := 1 + rng.Intn(25)
		for i := 0; i < n; i++ {
			length := uint8(18 + rng.Intn(15)) // /18../32
			base := 0x0A000000 | (rng.Uint32() & 0x0000ffff)
			p := netutil.Prefix{Base: netutil.Addr(base), Len: length}.Canonicalize()
			// Clamp inside the universe: /18 and /17 could escape it.
			if p.Len < 16 {
				continue
			}
			tbl.AddRoute(p, uint32(64500+i))
			for a := p.First(); ; a++ {
				if uint32(a)&0xffff0000 == 0x0A000000 {
					covered[uint32(a)&0xffff] = true
				}
				if a == p.Last() {
					break
				}
			}
		}
		want := uint64(0)
		for _, c := range covered {
			if c {
				want++
			}
		}
		if got := tbl.RoutedAddressSpace(); got != want {
			t.Fatalf("iter %d: RoutedAddressSpace = %d, bitmap %d", iter, got, want)
		}
	}
}

// TestRoutedAddressSpaceFullRange covers the /0 edge (the merge loop's
// uint64 arithmetic must not overflow).
func TestRoutedAddressSpaceFullRange(t *testing.T) {
	var tbl Table
	tbl.AddRoute(netutil.Prefix{}, 1) // 0.0.0.0/0
	tbl.AddRoute(mp("10.0.0.0/8"), 2)
	if got := tbl.RoutedAddressSpace(); got != 1<<32 {
		t.Fatalf("full-range space = %d", got)
	}
}
