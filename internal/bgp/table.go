// Package bgp builds a global routing-table view from MRT RIB dumps
// (Routeviews / RIPE RIS style) and answers the origin queries the
// leasing inference needs (paper §5.1 step 4):
//
//   - the exact-match origin AS(es) of a prefix, and
//   - the least-specific covering prefix and its origin(s), used for root
//     blocks whose holder aggregated consecutive allocations in BGP.
//
// Tables from multiple collectors can be merged; multi-origin (MOAS)
// prefixes keep every observed origin.
package bgp

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"ipleasing/internal/diag"
	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
	"ipleasing/internal/prefixtree"
)

// Route is one (prefix, AS path) announcement as seen from the
// collector's vantage points.
type Route struct {
	Prefix netutil.Prefix
	Path   mrt.ASPath
	// Visibility is how many vantage points carry the route; 0 means
	// all of them. Partial visibility models the collection bias the
	// paper's §7 discusses.
	Visibility int
}

// originSet tracks the origins observed for a prefix and how many vantage
// points reported each. After Table.Freeze the sorted origin order and
// total visibility are cached so queries stop re-sorting per call.
//
// Almost every prefix has exactly one origin AS, so that case is stored
// inline (origin0/count0); the counts map is only allocated when a second
// distinct origin appears (MOAS).
type originSet struct {
	origin0 uint32
	count0  int
	counts  map[uint32]int // nil while single-origin
	// sortedCache and visCache are filled by Table.Freeze; AddRoute
	// invalidates them. visCache is -1 when stale. one backs the
	// single-origin sortedCache without a separate allocation.
	sortedCache []uint32
	visCache    int
	one         [1]uint32
}

func newOriginSet() *originSet { return &originSet{visCache: -1} }

// add records n more sightings of origin.
func (s *originSet) add(origin uint32, n int) {
	if s.counts == nil {
		if s.count0 == 0 || s.origin0 == origin {
			s.origin0 = origin
			s.count0 += n
			return
		}
		s.counts = map[uint32]int{s.origin0: s.count0}
	}
	s.counts[origin] += n
}

// forEach visits every (origin, count) pair in unspecified order.
func (s *originSet) forEach(fn func(origin uint32, n int)) {
	if s.counts == nil {
		if s.count0 > 0 {
			fn(s.origin0, s.count0)
		}
		return
	}
	for origin, n := range s.counts {
		fn(origin, n)
	}
}

// Table is an aggregated routing-table view. The zero value is empty and
// ready for use. Not safe for concurrent mutation; concurrent readers are
// safe once loading is done. Call Freeze after loading to precompute the
// per-prefix sorted origins and visibility so the origin queries become
// allocation-free.
type Table struct {
	tree prefixtree.Tree[*originSet]

	freezeMu sync.Mutex
	frozen   bool
	// routedSpace caches RoutedAddressSpace while frozen (the merge sweep
	// over every announced range is the other per-Infer table scan).
	routedSpace uint64
}

// AddRoute records one announcement of p originated by origin.
func (t *Table) AddRoute(p netutil.Prefix, origin uint32) {
	t.addRouteN(p, origin, 1)
}

func (t *Table) addRouteN(p netutil.Prefix, origin uint32, n int) {
	p = p.Canonicalize()
	os, _ := t.tree.GetOrInsertFunc(p, newOriginSet)
	os.add(origin, n)
	os.sortedCache, os.visCache = nil, -1
	t.frozen = false
}

// Merge adds every route of o (with its vantage-point counts) into t.
// Counts are summed, so merging collector tables is order-independent.
func (t *Table) Merge(o *Table) {
	o.tree.Walk(func(e prefixtree.Entry[*originSet]) bool {
		e.Value.forEach(func(origin uint32, n int) {
			t.addRouteN(e.Prefix, origin, n)
		})
		return true
	})
}

// Freeze precomputes each prefix's sorted origin slice and visibility,
// turning Origins, CoveringOrigins, OriginsMinVisibility, and Visibility
// into allocation-free cache reads. Freeze is idempotent and safe to call
// from multiple goroutines; mutating the table afterwards (AddRoute)
// invalidates the affected entries, and a later Freeze re-indexes them.
// Callers must not modify the origin slices returned by a frozen table.
func (t *Table) Freeze() {
	t.freezeMu.Lock()
	defer t.freezeMu.Unlock()
	if t.frozen {
		return
	}
	t.tree.Walk(func(e prefixtree.Entry[*originSet]) bool {
		s := e.Value
		if s.counts == nil && s.count0 > 0 {
			// Single-origin: point the cache at inline storage.
			s.one[0] = s.origin0
			s.sortedCache = s.one[:]
		} else {
			s.sortedCache = s.computeSorted()
		}
		s.visCache = s.computeVisibility()
		return true
	})
	t.routedSpace = t.computeRoutedAddressSpace()
	t.frozen = true
}

// NumPrefixes returns the number of distinct announced prefixes.
func (t *Table) NumPrefixes() int { return t.tree.Len() }

// HasPrefix reports whether p is announced exactly.
func (t *Table) HasPrefix(p netutil.Prefix) bool {
	_, ok := t.tree.Get(p)
	return ok
}

// Origins returns the origin ASes announcing exactly p, most-seen first
// (ties broken by ASN for determinism). Nil if p is not announced.
func (t *Table) Origins(p netutil.Prefix) []uint32 {
	os, ok := t.tree.Get(p)
	if !ok {
		return nil
	}
	return os.sorted()
}

// Visibility returns the number of vantage-point announcements observed
// for p (0 if unannounced). A RIB dump contributes one per peer carrying
// the route.
func (t *Table) Visibility(p netutil.Prefix) int {
	os, ok := t.tree.Get(p)
	if !ok {
		return 0
	}
	return os.visibility()
}

// OriginsMinVisibility is Origins, but treats prefixes carried by fewer
// than min vantage points as unannounced (min <= 1 disables the filter).
// This implements the §7 vantage-point-bias sensitivity study.
func (t *Table) OriginsMinVisibility(p netutil.Prefix, min int) []uint32 {
	os, ok := t.tree.Get(p)
	if !ok {
		return nil
	}
	if min > 1 && os.visibility() < min {
		return nil
	}
	return os.sorted()
}

// sorted returns the origins most-seen first. Frozen sets return the
// shared cache without allocating; stale sets compute a fresh copy (and
// deliberately do not store it, so concurrent readers never write).
func (s *originSet) sorted() []uint32 {
	if s.sortedCache != nil {
		return s.sortedCache
	}
	return s.computeSorted()
}

func (s *originSet) computeSorted() []uint32 {
	if s.counts == nil {
		if s.count0 == 0 {
			return nil
		}
		return []uint32{s.origin0}
	}
	out := make([]uint32, 0, len(s.counts))
	for a := range s.counts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := s.counts[out[i]], s.counts[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// visibility returns the total vantage-point count, cached when frozen.
func (s *originSet) visibility() int {
	if s.visCache >= 0 {
		return s.visCache
	}
	return s.computeVisibility()
}

func (s *originSet) computeVisibility() int {
	if s.counts == nil {
		return s.count0
	}
	n := 0
	for _, c := range s.counts {
		n += c
	}
	return n
}

// CoveringOrigins returns the least-specific announced prefix covering p
// (which may be p itself) and its origins. This implements the paper's
// fallback lookup for root prefixes aggregated in BGP.
func (t *Table) CoveringOrigins(p netutil.Prefix) (netutil.Prefix, []uint32, bool) {
	cp, os, ok := t.tree.ShortestMatch(p)
	if !ok {
		return netutil.Prefix{}, nil, false
	}
	return cp, os.sorted(), true
}

// LongestMatch returns the most-specific announced prefix covering p and
// its origins.
func (t *Table) LongestMatch(p netutil.Prefix) (netutil.Prefix, []uint32, bool) {
	mp, os, ok := t.tree.LongestMatch(p)
	if !ok {
		return netutil.Prefix{}, nil, false
	}
	return mp, os.sorted(), true
}

// Prefixes returns every announced prefix in canonical order.
func (t *Table) Prefixes() []netutil.Prefix {
	out := make([]netutil.Prefix, 0, t.tree.Len())
	t.tree.Walk(func(e prefixtree.Entry[*originSet]) bool {
		out = append(out, e.Prefix)
		return true
	})
	return out
}

// Walk visits every (prefix, origins) pair in canonical order.
func (t *Table) Walk(fn func(p netutil.Prefix, origins []uint32) bool) {
	t.tree.Walk(func(e prefixtree.Entry[*originSet]) bool {
		return fn(e.Prefix, e.Value.sorted())
	})
}

// RoutedAddressSpace returns the number of distinct IPv4 addresses covered
// by at least one announced prefix (the paper's "routed v4 address space").
// Frozen tables return the value precomputed by Freeze.
func (t *Table) RoutedAddressSpace() uint64 {
	t.freezeMu.Lock()
	frozen, cached := t.frozen, t.routedSpace
	t.freezeMu.Unlock()
	if frozen {
		return cached
	}
	return t.computeRoutedAddressSpace()
}

func (t *Table) computeRoutedAddressSpace() uint64 {
	ranges := make([]netutil.Range, 0, t.tree.Len())
	t.tree.Walk(func(e prefixtree.Entry[*originSet]) bool {
		ranges = append(ranges, netutil.RangeOf(e.Prefix))
		return true
	})
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].First < ranges[j].First })
	var total uint64
	var curFirst, curLast uint64
	started := false
	for _, r := range ranges {
		f, l := uint64(r.First), uint64(r.Last)
		if !started {
			curFirst, curLast, started = f, l, true
			continue
		}
		if f <= curLast+1 {
			if l > curLast {
				curLast = l
			}
			continue
		}
		total += curLast - curFirst + 1
		curFirst, curLast = f, l
	}
	if started {
		total += curLast - curFirst + 1
	}
	return total
}

// LoadMRT merges all TABLE_DUMP_V2 RIB_IPV4_UNICAST records from an MRT
// stream into the table. Non-RIB records (peer index tables, BGP4MP) are
// skipped. Entries whose AS_PATH is missing or empty are ignored; paths
// ending in an AS_SET contribute every set member as an origin.
func (t *Table) LoadMRT(r io.Reader) error {
	return t.LoadMRTWith(r, nil)
}

// LoadMRTWith is LoadMRT threaded through a load-diagnostics collector. A
// nil collector (or strict options) keeps LoadMRT's fail-fast behavior. In
// lenient mode a record whose body fails to decode is skipped (MRT records
// are length-prefixed, so framing survives a bad body), while a
// reader-level failure — truncation mid-record, implausible length — ends
// the load keeping the partial table, with the report marked Truncated.
func (t *Table) LoadMRTWith(r io.Reader, c *diag.Collector) error {
	rd := mrt.NewReader(r)
	add := func(p netutil.Prefix, origin uint32) { t.AddRoute(p, origin) }
	for rec := 1; ; rec++ {
		off := rd.Offset()
		raw, err := rd.NextShared()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Header or body failure: the length-prefixed framing is lost,
			// so nothing past this point can be decoded.
			return c.Truncate(off, err)
		}
		if raw.Type != mrt.TypeTableDumpV2 || raw.Subtype != mrt.SubtypeRIBIPv4Unicast {
			continue
		}
		// Origins-only decode: no per-entry attribute or path values are
		// materialised, and the record body buffer is reused across
		// records (nothing below retains it).
		if err := mrt.DecodeRIBIPv4Origins(raw.Body, add); err != nil {
			if err := c.Skip(rec, off, fmt.Errorf("bgp: %w", err)); err != nil {
				return err
			}
			continue
		}
		c.Parsed()
	}
}

// ReadPaths extracts the distinct flattened AS paths from an MRT RIB
// stream, for relationship inference (asrel.InferFromPaths).
func ReadPaths(r io.Reader) ([][]uint32, error) {
	rd := mrt.NewReader(r)
	seen := make(map[string]bool)
	var out [][]uint32
	for {
		rec, err := rd.NextShared()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Type != mrt.TypeTableDumpV2 || rec.Subtype != mrt.SubtypeRIBIPv4Unicast {
			continue
		}
		rib, err := mrt.DecodeRIBIPv4(rec.Body)
		if err != nil {
			return nil, fmt.Errorf("bgp: %w", err)
		}
		for _, e := range rib.Entries {
			path, err := mrt.PathOf(e.Attrs)
			if err != nil {
				return nil, err
			}
			seq := path.Sequence()
			if len(seq) < 2 {
				continue
			}
			key := make([]byte, 0, len(seq)*5)
			for _, a := range seq {
				key = append(key, byte(a>>24), byte(a>>16), byte(a>>8), byte(a), '|')
			}
			if !seen[string(key)] {
				seen[string(key)] = true
				out = append(out, seq)
			}
		}
	}
}

// ReadPathsFile extracts distinct AS paths from an MRT file.
func ReadPathsFile(path string) ([][]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPaths(f)
}

// LoadMRTFile merges one MRT file into the table.
func (t *Table) LoadMRTFile(path string) error {
	return t.LoadMRTFileWith(path, nil)
}

// LoadMRTFileWith is LoadMRTFile threaded through a load-diagnostics
// collector.
func (t *Table) LoadMRTFileWith(path string, c *diag.Collector) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c.SetFile(path)
	if err := t.LoadMRTWith(diag.CountReader(f, c), c); err != nil {
		return fmt.Errorf("bgp: %s: %w", path, err)
	}
	return nil
}

// LoadMRTFiles merges several MRT files (e.g. multiple collectors or a
// multi-day window) into one table.
func (t *Table) LoadMRTFiles(paths []string) error {
	for _, p := range paths {
		if err := t.LoadMRTFile(p); err != nil {
			return err
		}
	}
	return nil
}

// WriteMRT renders routes as a TABLE_DUMP_V2 dump: one PEER_INDEX_TABLE
// followed by one RIB_IPV4_UNICAST record per route, carrying one RIB
// entry per vantage point that sees the route (Route.Visibility peers,
// all of them when 0), like a real collector dump. The routes' paths
// must be non-empty.
func WriteMRT(w io.Writer, ts uint32, peers []mrt.Peer, routes []Route) error {
	if len(peers) == 0 {
		return fmt.Errorf("bgp: WriteMRT requires at least one peer")
	}
	ww := mrt.NewWriter(w)
	tbl := &mrt.PeerIndexTable{CollectorID: 0xc0000201, ViewName: "synthetic", Peers: peers}
	if err := ww.WriteRecord(tbl.Record(ts)); err != nil {
		return err
	}
	for i, rt := range routes {
		if len(rt.Path) == 0 {
			return fmt.Errorf("bgp: route %v has empty AS path", rt.Prefix)
		}
		vis := rt.Visibility
		if vis <= 0 || vis > len(peers) {
			vis = len(peers)
		}
		rib := &mrt.RIB{Sequence: uint32(i), Prefix: rt.Prefix}
		for v := 0; v < vis; v++ {
			peerIdx := (i + v) % len(peers)
			rib.Entries = append(rib.Entries, mrt.RIBEntry{
				PeerIndex:      uint16(peerIdx),
				OriginatedTime: ts,
				Attrs: []mrt.Attribute{
					mrt.OriginAttr(mrt.OriginIGP),
					mrt.ASPathAttr(rt.Path),
					mrt.NextHopAttr(peers[peerIdx].Addr),
				},
			})
		}
		if err := ww.WriteRecord(rib.Record(ts)); err != nil {
			return err
		}
	}
	return ww.Flush()
}

// WriteMRTFile writes routes to path as a TABLE_DUMP_V2 dump.
func WriteMRTFile(path string, ts uint32, peers []mrt.Peer, routes []Route) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteMRT(f, ts, peers, routes)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
