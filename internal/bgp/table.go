// Package bgp builds a global routing-table view from MRT RIB dumps
// (Routeviews / RIPE RIS style) and answers the origin queries the
// leasing inference needs (paper §5.1 step 4):
//
//   - the exact-match origin AS(es) of a prefix, and
//   - the least-specific covering prefix and its origin(s), used for root
//     blocks whose holder aggregated consecutive allocations in BGP.
//
// Tables from multiple collectors can be merged; multi-origin (MOAS)
// prefixes keep every observed origin.
package bgp

import (
	"fmt"
	"io"
	"os"
	"sort"

	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
	"ipleasing/internal/prefixtree"
)

// Route is one (prefix, AS path) announcement as seen from the
// collector's vantage points.
type Route struct {
	Prefix netutil.Prefix
	Path   mrt.ASPath
	// Visibility is how many vantage points carry the route; 0 means
	// all of them. Partial visibility models the collection bias the
	// paper's §7 discusses.
	Visibility int
}

// originSet tracks the origins observed for a prefix and how many vantage
// points reported each.
type originSet struct {
	counts map[uint32]int
}

// Table is an aggregated routing-table view. The zero value is empty and
// ready for use. Not safe for concurrent mutation.
type Table struct {
	tree prefixtree.Tree[*originSet]
}

// AddRoute records one announcement of p originated by origin.
func (t *Table) AddRoute(p netutil.Prefix, origin uint32) {
	p = p.Canonicalize()
	os, ok := t.tree.Get(p)
	if !ok {
		os = &originSet{counts: make(map[uint32]int, 1)}
		t.tree.Insert(p, os)
	}
	os.counts[origin]++
}

// NumPrefixes returns the number of distinct announced prefixes.
func (t *Table) NumPrefixes() int { return t.tree.Len() }

// HasPrefix reports whether p is announced exactly.
func (t *Table) HasPrefix(p netutil.Prefix) bool {
	_, ok := t.tree.Get(p)
	return ok
}

// Origins returns the origin ASes announcing exactly p, most-seen first
// (ties broken by ASN for determinism). Nil if p is not announced.
func (t *Table) Origins(p netutil.Prefix) []uint32 {
	os, ok := t.tree.Get(p)
	if !ok {
		return nil
	}
	return os.sorted()
}

// Visibility returns the number of vantage-point announcements observed
// for p (0 if unannounced). A RIB dump contributes one per peer carrying
// the route.
func (t *Table) Visibility(p netutil.Prefix) int {
	os, ok := t.tree.Get(p)
	if !ok {
		return 0
	}
	n := 0
	for _, c := range os.counts {
		n += c
	}
	return n
}

// OriginsMinVisibility is Origins, but treats prefixes carried by fewer
// than min vantage points as unannounced (min <= 1 disables the filter).
// This implements the §7 vantage-point-bias sensitivity study.
func (t *Table) OriginsMinVisibility(p netutil.Prefix, min int) []uint32 {
	if min > 1 && t.Visibility(p) < min {
		return nil
	}
	return t.Origins(p)
}

func (s *originSet) sorted() []uint32 {
	out := make([]uint32, 0, len(s.counts))
	for a := range s.counts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := s.counts[out[i]], s.counts[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// CoveringOrigins returns the least-specific announced prefix covering p
// (which may be p itself) and its origins. This implements the paper's
// fallback lookup for root prefixes aggregated in BGP.
func (t *Table) CoveringOrigins(p netutil.Prefix) (netutil.Prefix, []uint32, bool) {
	cp, os, ok := t.tree.ShortestMatch(p)
	if !ok {
		return netutil.Prefix{}, nil, false
	}
	return cp, os.sorted(), true
}

// LongestMatch returns the most-specific announced prefix covering p and
// its origins.
func (t *Table) LongestMatch(p netutil.Prefix) (netutil.Prefix, []uint32, bool) {
	mp, os, ok := t.tree.LongestMatch(p)
	if !ok {
		return netutil.Prefix{}, nil, false
	}
	return mp, os.sorted(), true
}

// Prefixes returns every announced prefix in canonical order.
func (t *Table) Prefixes() []netutil.Prefix {
	out := make([]netutil.Prefix, 0, t.tree.Len())
	t.tree.Walk(func(e prefixtree.Entry[*originSet]) bool {
		out = append(out, e.Prefix)
		return true
	})
	return out
}

// Walk visits every (prefix, origins) pair in canonical order.
func (t *Table) Walk(fn func(p netutil.Prefix, origins []uint32) bool) {
	t.tree.Walk(func(e prefixtree.Entry[*originSet]) bool {
		return fn(e.Prefix, e.Value.sorted())
	})
}

// RoutedAddressSpace returns the number of distinct IPv4 addresses covered
// by at least one announced prefix (the paper's "routed v4 address space").
func (t *Table) RoutedAddressSpace() uint64 {
	ranges := make([]netutil.Range, 0, t.tree.Len())
	t.tree.Walk(func(e prefixtree.Entry[*originSet]) bool {
		ranges = append(ranges, netutil.RangeOf(e.Prefix))
		return true
	})
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].First < ranges[j].First })
	var total uint64
	var curFirst, curLast uint64
	started := false
	for _, r := range ranges {
		f, l := uint64(r.First), uint64(r.Last)
		if !started {
			curFirst, curLast, started = f, l, true
			continue
		}
		if f <= curLast+1 {
			if l > curLast {
				curLast = l
			}
			continue
		}
		total += curLast - curFirst + 1
		curFirst, curLast = f, l
	}
	if started {
		total += curLast - curFirst + 1
	}
	return total
}

// LoadMRT merges all TABLE_DUMP_V2 RIB_IPV4_UNICAST records from an MRT
// stream into the table. Non-RIB records (peer index tables, BGP4MP) are
// skipped. Entries whose AS_PATH is missing or empty are ignored; paths
// ending in an AS_SET contribute every set member as an origin.
func (t *Table) LoadMRT(r io.Reader) error {
	rd := mrt.NewReader(r)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if rec.Type != mrt.TypeTableDumpV2 || rec.Subtype != mrt.SubtypeRIBIPv4Unicast {
			continue
		}
		rib, err := mrt.DecodeRIBIPv4(rec.Body)
		if err != nil {
			return fmt.Errorf("bgp: %w", err)
		}
		for _, e := range rib.Entries {
			path, err := mrt.PathOf(e.Attrs)
			if err != nil {
				return fmt.Errorf("bgp: rib %v: %w", rib.Prefix, err)
			}
			for _, origin := range path.Origins() {
				t.AddRoute(rib.Prefix, origin)
			}
		}
	}
}

// ReadPaths extracts the distinct flattened AS paths from an MRT RIB
// stream, for relationship inference (asrel.InferFromPaths).
func ReadPaths(r io.Reader) ([][]uint32, error) {
	rd := mrt.NewReader(r)
	seen := make(map[string]bool)
	var out [][]uint32
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Type != mrt.TypeTableDumpV2 || rec.Subtype != mrt.SubtypeRIBIPv4Unicast {
			continue
		}
		rib, err := mrt.DecodeRIBIPv4(rec.Body)
		if err != nil {
			return nil, fmt.Errorf("bgp: %w", err)
		}
		for _, e := range rib.Entries {
			path, err := mrt.PathOf(e.Attrs)
			if err != nil {
				return nil, err
			}
			seq := path.Sequence()
			if len(seq) < 2 {
				continue
			}
			key := make([]byte, 0, len(seq)*5)
			for _, a := range seq {
				key = append(key, byte(a>>24), byte(a>>16), byte(a>>8), byte(a), '|')
			}
			if !seen[string(key)] {
				seen[string(key)] = true
				out = append(out, seq)
			}
		}
	}
}

// ReadPathsFile extracts distinct AS paths from an MRT file.
func ReadPathsFile(path string) ([][]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPaths(f)
}

// LoadMRTFile merges one MRT file into the table.
func (t *Table) LoadMRTFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.LoadMRT(f); err != nil {
		return fmt.Errorf("bgp: %s: %w", path, err)
	}
	return nil
}

// LoadMRTFiles merges several MRT files (e.g. multiple collectors or a
// multi-day window) into one table.
func (t *Table) LoadMRTFiles(paths []string) error {
	for _, p := range paths {
		if err := t.LoadMRTFile(p); err != nil {
			return err
		}
	}
	return nil
}

// WriteMRT renders routes as a TABLE_DUMP_V2 dump: one PEER_INDEX_TABLE
// followed by one RIB_IPV4_UNICAST record per route, carrying one RIB
// entry per vantage point that sees the route (Route.Visibility peers,
// all of them when 0), like a real collector dump. The routes' paths
// must be non-empty.
func WriteMRT(w io.Writer, ts uint32, peers []mrt.Peer, routes []Route) error {
	if len(peers) == 0 {
		return fmt.Errorf("bgp: WriteMRT requires at least one peer")
	}
	ww := mrt.NewWriter(w)
	tbl := &mrt.PeerIndexTable{CollectorID: 0xc0000201, ViewName: "synthetic", Peers: peers}
	if err := ww.WriteRecord(tbl.Record(ts)); err != nil {
		return err
	}
	for i, rt := range routes {
		if len(rt.Path) == 0 {
			return fmt.Errorf("bgp: route %v has empty AS path", rt.Prefix)
		}
		vis := rt.Visibility
		if vis <= 0 || vis > len(peers) {
			vis = len(peers)
		}
		rib := &mrt.RIB{Sequence: uint32(i), Prefix: rt.Prefix}
		for v := 0; v < vis; v++ {
			peerIdx := (i + v) % len(peers)
			rib.Entries = append(rib.Entries, mrt.RIBEntry{
				PeerIndex:      uint16(peerIdx),
				OriginatedTime: ts,
				Attrs: []mrt.Attribute{
					mrt.OriginAttr(mrt.OriginIGP),
					mrt.ASPathAttr(rt.Path),
					mrt.NextHopAttr(peers[peerIdx].Addr),
				},
			})
		}
		if err := ww.WriteRecord(rib.Record(ts)); err != nil {
			return err
		}
	}
	return ww.Flush()
}

// WriteMRTFile writes routes to path as a TABLE_DUMP_V2 dump.
func WriteMRTFile(path string, ts uint32, peers []mrt.Peer, routes []Route) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteMRT(f, ts, peers, routes)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
