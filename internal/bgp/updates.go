package bgp

import (
	"fmt"
	"io"
	"os"

	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
)

// RemoveRoute withdraws one origin's announcement of p. When the last
// origin disappears the prefix leaves the table. It reports whether the
// route was present.
func (t *Table) RemoveRoute(p netutil.Prefix, origin uint32) bool {
	p = p.Canonicalize()
	os, ok := t.tree.Get(p)
	if !ok {
		return false
	}
	n, had := os.counts[origin]
	if !had {
		return false
	}
	if n > 1 {
		os.counts[origin] = n - 1
	} else {
		delete(os.counts, origin)
	}
	if len(os.counts) == 0 {
		t.tree.Delete(p)
	}
	return true
}

// Withdraw removes every origin's announcement of p, reporting whether
// the prefix was in the table.
func (t *Table) Withdraw(p netutil.Prefix) bool {
	p = p.Canonicalize()
	if _, ok := t.tree.Get(p); !ok {
		return false
	}
	return t.tree.Delete(p)
}

// ApplyUpdate mutates the table with one BGP UPDATE message: withdrawn
// prefixes leave the table; NLRI prefixes gain the update's origin(s).
// Updates without an AS_PATH announce nothing (pure withdrawals).
func (t *Table) ApplyUpdate(u *mrt.BGPUpdate) error {
	for _, p := range u.Withdrawn {
		t.Withdraw(p)
	}
	if len(u.NLRI) == 0 {
		return nil
	}
	path, err := mrt.PathOf(u.Attrs)
	if err != nil {
		return err
	}
	origins := path.Origins()
	if len(origins) == 0 {
		return fmt.Errorf("bgp: update announces %d prefixes without an AS_PATH origin", len(u.NLRI))
	}
	for _, p := range u.NLRI {
		// Replace semantics: a fresh announcement supersedes previous
		// origins for the prefix (single-view table).
		t.Withdraw(p)
		for _, o := range origins {
			t.AddRoute(p, o)
		}
	}
	return nil
}

// UpdateEvent is one timestamped UPDATE from an MRT stream.
type UpdateEvent struct {
	Timestamp uint32
	Update    *mrt.BGPUpdate
}

// ReadUpdates decodes every BGP4MP UPDATE in an MRT stream, in order.
// Non-UPDATE BGP messages (opens, keepalives) and foreign record types
// are skipped.
func ReadUpdates(r io.Reader) ([]UpdateEvent, error) {
	rd := mrt.NewReader(r)
	var out []UpdateEvent
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Type != mrt.TypeBGP4MP || rec.Subtype != mrt.SubtypeBGP4MPMessageAS4 {
			continue
		}
		msg, err := mrt.DecodeBGP4MPMessageAS4(rec.Body)
		if err != nil {
			return nil, fmt.Errorf("bgp: %w", err)
		}
		if msg.MsgType != mrt.BGPMsgUpdate {
			continue
		}
		u, err := mrt.DecodeBGPUpdate(msg.MsgBody)
		if err != nil {
			return nil, fmt.Errorf("bgp: update at t=%d: %w", rec.Timestamp, err)
		}
		out = append(out, UpdateEvent{Timestamp: rec.Timestamp, Update: u})
	}
}

// ReadUpdatesFile reads an update stream from path.
func ReadUpdatesFile(path string) ([]UpdateEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadUpdates(f)
}

// WriteUpdates renders update events as a BGP4MP_MESSAGE_AS4 MRT stream.
// peer supplies the vantage-point addressing.
func WriteUpdates(w io.Writer, peer mrt.Peer, events []UpdateEvent) error {
	ww := mrt.NewWriter(w)
	for _, ev := range events {
		msg := &mrt.BGP4MPMessage{
			PeerAS:  peer.AS,
			LocalAS: peer.AS,
			PeerIP:  peer.Addr,
			LocalIP: peer.Addr,
			MsgType: mrt.BGPMsgUpdate,
			MsgBody: ev.Update.Encode(),
		}
		if err := ww.WriteRecord(msg.Record(ev.Timestamp)); err != nil {
			return err
		}
	}
	return ww.Flush()
}

// WriteUpdatesFile writes an update stream to path.
func WriteUpdatesFile(path string, peer mrt.Peer, events []UpdateEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteUpdates(f, peer, events)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
