package bgp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
)

func TestRemoveRouteAndWithdraw(t *testing.T) {
	var tbl Table
	tbl.AddRoute(mp("10.0.0.0/8"), 1)
	tbl.AddRoute(mp("10.0.0.0/8"), 1) // seen twice
	tbl.AddRoute(mp("10.0.0.0/8"), 2)

	if !tbl.RemoveRoute(mp("10.0.0.0/8"), 1) {
		t.Fatal("remove failed")
	}
	if got := tbl.Origins(mp("10.0.0.0/8")); len(got) != 2 {
		t.Fatalf("after one removal origins = %v (count should drop, origin stay)", got)
	}
	tbl.RemoveRoute(mp("10.0.0.0/8"), 1)
	if got := tbl.Origins(mp("10.0.0.0/8")); len(got) != 1 || got[0] != 2 {
		t.Fatalf("origins = %v", got)
	}
	if tbl.RemoveRoute(mp("10.0.0.0/8"), 1) {
		t.Fatal("removing absent origin succeeded")
	}
	tbl.RemoveRoute(mp("10.0.0.0/8"), 2)
	if tbl.HasPrefix(mp("10.0.0.0/8")) || tbl.NumPrefixes() != 0 {
		t.Fatal("prefix should leave the table with its last origin")
	}

	tbl.AddRoute(mp("192.0.2.0/24"), 5)
	if !tbl.Withdraw(mp("192.0.2.0/24")) || tbl.HasPrefix(mp("192.0.2.0/24")) {
		t.Fatal("withdraw failed")
	}
	if tbl.Withdraw(mp("192.0.2.0/24")) {
		t.Fatal("double withdraw succeeded")
	}
}

func TestApplyUpdate(t *testing.T) {
	var tbl Table
	tbl.AddRoute(mp("203.0.113.0/24"), 64500)

	// Announcement replaces the previous origin.
	err := tbl.ApplyUpdate(&mrt.BGPUpdate{
		Attrs: []mrt.Attribute{mrt.ASPathAttr(mrt.NewASPathSequence(65001, 64999))},
		NLRI:  []netutil.Prefix{mp("203.0.113.0/24")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Origins(mp("203.0.113.0/24")); len(got) != 1 || got[0] != 64999 {
		t.Fatalf("origins after re-announce = %v", got)
	}

	// Withdrawal empties it.
	if err := tbl.ApplyUpdate(&mrt.BGPUpdate{Withdrawn: []netutil.Prefix{mp("203.0.113.0/24")}}); err != nil {
		t.Fatal(err)
	}
	if tbl.HasPrefix(mp("203.0.113.0/24")) {
		t.Fatal("withdrawal ignored")
	}

	// Announcement without an AS_PATH is an error.
	err = tbl.ApplyUpdate(&mrt.BGPUpdate{NLRI: []netutil.Prefix{mp("10.0.0.0/8")}})
	if err == nil {
		t.Fatal("pathless announcement accepted")
	}
}

func sampleEvents() []UpdateEvent {
	return []UpdateEvent{
		{Timestamp: 100, Update: &mrt.BGPUpdate{
			Attrs: []mrt.Attribute{mrt.ASPathAttr(mrt.NewASPathSequence(65001, 834))},
			NLRI:  []netutil.Prefix{mp("203.0.113.0/24")},
		}},
		{Timestamp: 200, Update: &mrt.BGPUpdate{
			Withdrawn: []netutil.Prefix{mp("203.0.113.0/24")},
		}},
		{Timestamp: 300, Update: &mrt.BGPUpdate{
			Attrs: []mrt.Attribute{mrt.ASPathAttr(mrt.NewASPathSequence(65001, 8100))},
			NLRI:  []netutil.Prefix{mp("203.0.113.0/24")},
		}},
	}
}

func TestUpdateStreamRoundTrip(t *testing.T) {
	peer := mrt.Peer{BGPID: 1, Addr: netutil.MustParseAddr("192.0.2.1"), AS: 65001}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, peer, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("events = %d", len(back))
	}
	if back[0].Timestamp != 100 || back[1].Timestamp != 200 {
		t.Fatal("timestamps lost")
	}

	// Replay: the prefix ends up announced by the third event's origin.
	var tbl Table
	for _, ev := range back {
		if err := tbl.ApplyUpdate(ev.Update); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.Origins(mp("203.0.113.0/24")); len(got) != 1 || got[0] != 8100 {
		t.Fatalf("replayed origins = %v", got)
	}
}

func TestUpdateStreamFileAndSkips(t *testing.T) {
	peer := mrt.Peer{AS: 65001, Addr: netutil.MustParseAddr("192.0.2.1")}
	path := filepath.Join(t.TempDir(), "updates.mrt")

	// Interleave a keepalive and a RIB record the reader must skip.
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	ka := &mrt.BGP4MPMessage{PeerAS: 65001, MsgType: mrt.BGPMsgKeepalive}
	if err := w.WriteRecord(ka.Record(50)); err != nil {
		t.Fatal(err)
	}
	rib := &mrt.RIB{Prefix: mp("10.0.0.0/8"), Entries: []mrt.RIBEntry{{
		Attrs: []mrt.Attribute{mrt.ASPathAttr(mrt.NewASPathSequence(1))},
	}}}
	if err := w.WriteRecord(rib.Record(60)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := WriteUpdates(&buf, peer, sampleEvents()[:1]); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := ReadUpdatesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Timestamp != 100 {
		t.Fatalf("events = %+v", events)
	}
	if _, err := ReadUpdatesFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
