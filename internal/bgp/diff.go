package bgp

import (
	"ipleasing/internal/netutil"
	"ipleasing/internal/prefixtree"
)

// size returns the number of distinct origins in the set. The counts map
// is only allocated once a second distinct origin appears, so a nil map
// means zero or one origin.
func (s *originSet) size() int {
	if s.counts != nil {
		return len(s.counts)
	}
	if s.count0 > 0 {
		return 1
	}
	return 0
}

// equalOriginSets reports whether two origin sets carry the same
// origin→vantage-point-count multiset. Counts matter: they decide both
// the sorted origin order and visibility filtering, so a count-only
// change is a behavioural change.
func equalOriginSets(x, y *originSet) bool {
	if x.size() != y.size() {
		return false
	}
	if x.counts == nil {
		// Equal sizes and no map on x means y has no map either
		// (a counts map always holds at least two origins).
		return x.count0 == 0 || (x.origin0 == y.origin0 && x.count0 == y.count0)
	}
	for origin, n := range x.counts {
		if y.counts[origin] != n {
			return false
		}
	}
	return true
}

// DiffPrefixes returns every prefix whose origin multiset differs between
// the two tables: present in only one, or present in both with different
// origins or vantage-point counts. The result is in canonical prefix
// order. A nil table compares as empty.
//
// This is the BGP side of the incremental-reload diff: any prefix listed
// here may change an exact-match or covering-origin query, so the delta
// planner must re-classify every allocation-forest root whose range it
// intersects. The trees are iterated in lockstep — tree iteration order
// is the same supernet-before-subnet order Prefix.Compare defines, which
// makes the merge linear — so the only allocations are the two iterator
// stacks and the result.
func DiffPrefixes(a, b *Table) []netutil.Prefix {
	var ai, bi prefixtree.Iter[*originSet]
	if a != nil {
		ai = a.tree.Iter()
	}
	if b != nil {
		bi = b.tree.Iter()
	}
	var out []netutil.Prefix
	ap, as, aok := ai.Next()
	bp, bs, bok := bi.Next()
	for aok || bok {
		switch {
		case !bok:
			out = append(out, ap)
			ap, as, aok = ai.Next()
		case !aok:
			out = append(out, bp)
			bp, bs, bok = bi.Next()
		default:
			c := ap.Compare(bp)
			switch {
			case c < 0:
				out = append(out, ap)
				ap, as, aok = ai.Next()
			case c > 0:
				out = append(out, bp)
				bp, bs, bok = bi.Next()
			default:
				if !equalOriginSets(as, bs) {
					out = append(out, ap)
				}
				ap, as, aok = ai.Next()
				bp, bs, bok = bi.Next()
			}
		}
	}
	return out
}
