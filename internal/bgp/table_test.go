package bgp

import (
	"bytes"
	"path/filepath"
	"testing"

	"ipleasing/internal/mrt"
	"ipleasing/internal/netutil"
)

func mp(s string) netutil.Prefix { return netutil.MustParsePrefix(s) }

func TestAddRouteOrigins(t *testing.T) {
	var tbl Table
	tbl.AddRoute(mp("203.0.113.0/24"), 64500)
	tbl.AddRoute(mp("203.0.113.0/24"), 64500)
	tbl.AddRoute(mp("203.0.113.0/24"), 64501) // MOAS
	tbl.AddRoute(mp("198.51.100.0/24"), 64502)

	if tbl.NumPrefixes() != 2 {
		t.Fatalf("NumPrefixes = %d", tbl.NumPrefixes())
	}
	got := tbl.Origins(mp("203.0.113.0/24"))
	if len(got) != 2 || got[0] != 64500 || got[1] != 64501 {
		t.Fatalf("Origins = %v (want most-seen first)", got)
	}
	if tbl.Origins(mp("192.0.2.0/24")) != nil {
		t.Fatal("unannounced prefix has origins")
	}
	if !tbl.HasPrefix(mp("198.51.100.0/24")) || tbl.HasPrefix(mp("198.51.100.0/25")) {
		t.Fatal("HasPrefix wrong")
	}
}

func TestCoveringAndLongest(t *testing.T) {
	var tbl Table
	tbl.AddRoute(mp("10.0.0.0/8"), 100)
	tbl.AddRoute(mp("10.2.0.0/16"), 200)

	cp, origins, ok := tbl.CoveringOrigins(mp("10.2.3.0/24"))
	if !ok || cp != mp("10.0.0.0/8") || origins[0] != 100 {
		t.Fatalf("CoveringOrigins = %v %v %v", cp, origins, ok)
	}
	lp, origins, ok := tbl.LongestMatch(mp("10.2.3.0/24"))
	if !ok || lp != mp("10.2.0.0/16") || origins[0] != 200 {
		t.Fatalf("LongestMatch = %v %v %v", lp, origins, ok)
	}
	if _, _, ok := tbl.CoveringOrigins(mp("11.0.0.0/24")); ok {
		t.Fatal("covering match outside table")
	}
}

func TestRoutedAddressSpace(t *testing.T) {
	var tbl Table
	if tbl.RoutedAddressSpace() != 0 {
		t.Fatal("empty table routed space != 0")
	}
	tbl.AddRoute(mp("10.0.0.0/8"), 1)
	tbl.AddRoute(mp("10.1.0.0/16"), 2) // nested: no extra space
	if got := tbl.RoutedAddressSpace(); got != 1<<24 {
		t.Fatalf("nested routed space = %d", got)
	}
	tbl.AddRoute(mp("11.0.0.0/8"), 3) // adjacent
	if got := tbl.RoutedAddressSpace(); got != 2<<24 {
		t.Fatalf("adjacent routed space = %d", got)
	}
	tbl.AddRoute(mp("192.0.2.0/24"), 4) // disjoint
	if got := tbl.RoutedAddressSpace(); got != 2<<24+256 {
		t.Fatalf("disjoint routed space = %d", got)
	}
}

func TestWalkAndPrefixes(t *testing.T) {
	var tbl Table
	tbl.AddRoute(mp("10.0.0.0/8"), 1)
	tbl.AddRoute(mp("9.0.0.0/8"), 2)
	ps := tbl.Prefixes()
	if len(ps) != 2 || ps[0] != mp("9.0.0.0/8") {
		t.Fatalf("Prefixes = %v", ps)
	}
	n := 0
	tbl.Walk(func(p netutil.Prefix, origins []uint32) bool {
		n++
		return false // early stop
	})
	if n != 1 {
		t.Fatalf("Walk early stop visited %d", n)
	}
}

func sampleRoutes() []Route {
	return []Route{
		{Prefix: mp("203.0.113.0/24"), Path: mrt.NewASPathSequence(65001, 64500)},
		{Prefix: mp("198.51.100.0/24"), Path: mrt.NewASPathSequence(65002, 64501)},
		{Prefix: mp("198.51.100.0/25"), Path: mrt.NewASPathSequence(65001, 64502)},
		// Aggregate ending in an AS_SET: both members become origins.
		{Prefix: mp("192.0.2.0/24"), Path: mrt.ASPath{
			{Type: mrt.SegmentASSequence, ASNs: []uint32{65001, 64503}},
			{Type: mrt.SegmentASSet, ASNs: []uint32{64504, 64505}},
		}},
	}
}

func samplePeers() []mrt.Peer {
	return []mrt.Peer{
		{BGPID: 1, Addr: netutil.MustParseAddr("192.0.2.1"), AS: 65001},
		{BGPID: 2, Addr: netutil.MustParseAddr("192.0.2.2"), AS: 65002},
	}
}

func TestMRTRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMRT(&buf, 1712000000, samplePeers(), sampleRoutes()); err != nil {
		t.Fatal(err)
	}
	var tbl Table
	if err := tbl.LoadMRT(&buf); err != nil {
		t.Fatal(err)
	}
	if tbl.NumPrefixes() != 4 {
		t.Fatalf("NumPrefixes = %d", tbl.NumPrefixes())
	}
	if got := tbl.Origins(mp("203.0.113.0/24")); len(got) != 1 || got[0] != 64500 {
		t.Fatalf("origins = %v", got)
	}
	if got := tbl.Origins(mp("192.0.2.0/24")); len(got) != 2 {
		t.Fatalf("AS_SET origins = %v", got)
	}
}

func TestVisibility(t *testing.T) {
	var tbl Table
	if tbl.Visibility(mp("10.0.0.0/8")) != 0 {
		t.Fatal("visibility of unannounced prefix")
	}
	tbl.AddRoute(mp("10.0.0.0/8"), 1)
	tbl.AddRoute(mp("10.0.0.0/8"), 1)
	tbl.AddRoute(mp("10.0.0.0/8"), 2)
	if got := tbl.Visibility(mp("10.0.0.0/8")); got != 3 {
		t.Fatalf("Visibility = %d", got)
	}
	if got := tbl.OriginsMinVisibility(mp("10.0.0.0/8"), 3); len(got) != 2 {
		t.Fatalf("min-vis 3 origins = %v", got)
	}
	if got := tbl.OriginsMinVisibility(mp("10.0.0.0/8"), 4); got != nil {
		t.Fatalf("min-vis 4 origins = %v", got)
	}
	if got := tbl.OriginsMinVisibility(mp("10.0.0.0/8"), 0); len(got) != 2 {
		t.Fatal("min-vis 0 should not filter")
	}
}

func TestMRTPerPeerVisibility(t *testing.T) {
	routes := []Route{
		{Prefix: mp("203.0.113.0/24"), Path: mrt.NewASPathSequence(65001, 64500)},                 // all peers
		{Prefix: mp("198.51.100.0/24"), Path: mrt.NewASPathSequence(65001, 64501), Visibility: 1}, // one peer
	}
	var buf bytes.Buffer
	if err := WriteMRT(&buf, 0, samplePeers(), routes); err != nil {
		t.Fatal(err)
	}
	var tbl Table
	if err := tbl.LoadMRT(&buf); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Visibility(mp("203.0.113.0/24")); got != len(samplePeers()) {
		t.Fatalf("full visibility = %d", got)
	}
	if got := tbl.Visibility(mp("198.51.100.0/24")); got != 1 {
		t.Fatalf("partial visibility = %d", got)
	}
}

func TestWriteMRTErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMRT(&buf, 0, nil, nil); err == nil {
		t.Fatal("no peers accepted")
	}
	err := WriteMRT(&buf, 0, samplePeers(), []Route{{Prefix: mp("10.0.0.0/8")}})
	if err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestLoadMRTFileAndMerge(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "rv.mrt")
	f2 := filepath.Join(dir, "ris.mrt")
	if err := WriteMRTFile(f1, 1712000000, samplePeers(), sampleRoutes()[:2]); err != nil {
		t.Fatal(err)
	}
	if err := WriteMRTFile(f2, 1712000000, samplePeers(), sampleRoutes()[2:]); err != nil {
		t.Fatal(err)
	}
	var tbl Table
	if err := tbl.LoadMRTFiles([]string{f1, f2}); err != nil {
		t.Fatal(err)
	}
	if tbl.NumPrefixes() != 4 {
		t.Fatalf("merged NumPrefixes = %d", tbl.NumPrefixes())
	}
	if err := tbl.LoadMRTFile(filepath.Join(dir, "missing.mrt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadMRTSkipsForeignRecords(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	// A BGP4MP record the table loader should skip.
	msg := &mrt.BGP4MPMessage{MsgType: mrt.BGPMsgKeepalive}
	if err := w.WriteRecord(msg.Record(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := WriteMRT(&buf, 0, samplePeers(), sampleRoutes()[:1]); err != nil {
		t.Fatal(err)
	}
	var tbl Table
	if err := tbl.LoadMRT(&buf); err != nil {
		t.Fatal(err)
	}
	if tbl.NumPrefixes() != 1 {
		t.Fatalf("NumPrefixes = %d", tbl.NumPrefixes())
	}
}

func TestLoadMRTCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	bad := &mrt.RawRecord{
		Header: mrt.Header{Type: mrt.TypeTableDumpV2, Subtype: mrt.SubtypeRIBIPv4Unicast},
		Body:   []byte{0, 0, 0, 1, 99}, // prefix length 99
	}
	if err := w.WriteRecord(bad); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var tbl Table
	if err := tbl.LoadMRT(&buf); err == nil {
		t.Fatal("corrupt RIB accepted")
	}
}

func BenchmarkLoadMRT(b *testing.B) {
	routes := make([]Route, 0, 5000)
	for i := 0; i < 5000; i++ {
		p := netutil.Prefix{Base: netutil.Addr(uint32(i) << 12), Len: 24}.Canonicalize()
		routes = append(routes, Route{Prefix: p, Path: mrt.NewASPathSequence(65001, uint32(64000+i%500))})
	}
	var buf bytes.Buffer
	if err := WriteMRT(&buf, 0, samplePeers(), routes); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tbl Table
		if err := tbl.LoadMRT(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFreezeMatchesUnfrozen checks that freezing changes no query result:
// origins, covering lookup, visibility, and Walk output must be identical
// before and after the index step, and AddRoute after Freeze must
// invalidate the affected entry.
func TestFreezeMatchesUnfrozen(t *testing.T) {
	build := func() *Table {
		var tbl Table
		tbl.AddRoute(mp("203.0.113.0/24"), 64500)
		tbl.AddRoute(mp("203.0.113.0/24"), 64500)
		tbl.AddRoute(mp("203.0.113.0/24"), 64501)
		tbl.AddRoute(mp("10.0.0.0/8"), 100)
		tbl.AddRoute(mp("10.2.0.0/16"), 200)
		return &tbl
	}
	cold, hot := build(), build()
	hot.Freeze()
	hot.Freeze() // idempotent

	queries := []netutil.Prefix{
		mp("203.0.113.0/24"), mp("10.0.0.0/8"), mp("10.2.0.0/16"),
		mp("10.2.3.0/24"), mp("192.0.2.0/24"),
	}
	for _, q := range queries {
		if got, want := hot.Origins(q), cold.Origins(q); !equalU32(got, want) {
			t.Fatalf("Origins(%v): frozen %v, unfrozen %v", q, got, want)
		}
		if got, want := hot.Visibility(q), cold.Visibility(q); got != want {
			t.Fatalf("Visibility(%v): frozen %d, unfrozen %d", q, got, want)
		}
		if got, want := hot.OriginsMinVisibility(q, 2), cold.OriginsMinVisibility(q, 2); !equalU32(got, want) {
			t.Fatalf("OriginsMinVisibility(%v): frozen %v, unfrozen %v", q, got, want)
		}
		cp1, o1, ok1 := hot.CoveringOrigins(q)
		cp2, o2, ok2 := cold.CoveringOrigins(q)
		if ok1 != ok2 || cp1 != cp2 || !equalU32(o1, o2) {
			t.Fatalf("CoveringOrigins(%v): frozen %v %v %v, unfrozen %v %v %v", q, cp1, o1, ok1, cp2, o2, ok2)
		}
	}

	// Repeated frozen queries return the shared cached slice (no per-call
	// sort allocation).
	p := mp("203.0.113.0/24")
	a, b := hot.Origins(p), hot.Origins(p)
	if &a[0] != &b[0] {
		t.Error("frozen Origins did not return the cached slice")
	}

	// Mutation invalidates: the new origin must win immediately.
	hot.AddRoute(p, 64502)
	hot.AddRoute(p, 64502)
	hot.AddRoute(p, 64502)
	if got := hot.Origins(p); len(got) != 3 || got[0] != 64502 {
		t.Fatalf("post-mutation Origins = %v, want 64502 first", got)
	}
	if got := hot.Visibility(p); got != 6 {
		t.Fatalf("post-mutation Visibility = %d, want 6", got)
	}
	hot.Freeze() // re-index after mutation
	if got := hot.Origins(p); len(got) != 3 || got[0] != 64502 {
		t.Fatalf("re-frozen Origins = %v", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Table
	a.AddRoute(mp("203.0.113.0/24"), 64500)
	a.AddRoute(mp("203.0.113.0/24"), 64500)
	b.AddRoute(mp("203.0.113.0/24"), 64501)
	b.AddRoute(mp("203.0.113.0/24"), 64501)
	b.AddRoute(mp("203.0.113.0/24"), 64501)
	b.AddRoute(mp("198.51.100.0/24"), 64502)
	a.Freeze() // Merge must invalidate the frozen entries it touches

	a.Merge(&b)
	if a.NumPrefixes() != 2 {
		t.Fatalf("NumPrefixes = %d", a.NumPrefixes())
	}
	// 64501 seen 3 times vs 64500 twice: most-seen-first order flips.
	if got := a.Origins(mp("203.0.113.0/24")); len(got) != 2 || got[0] != 64501 || got[1] != 64500 {
		t.Fatalf("merged Origins = %v", got)
	}
	if got := a.Visibility(mp("203.0.113.0/24")); got != 5 {
		t.Fatalf("merged Visibility = %d", got)
	}
	if got := a.Origins(mp("198.51.100.0/24")); len(got) != 1 || got[0] != 64502 {
		t.Fatalf("merged new prefix Origins = %v", got)
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
