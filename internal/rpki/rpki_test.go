package rpki

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ipleasing/internal/netutil"
)

func mp(s string) netutil.Prefix { return netutil.MustParsePrefix(s) }

func TestVRPMatches(t *testing.T) {
	v := VRP{ASN: 64500, Prefix: mp("203.0.113.0/24"), MaxLen: 25}
	if !v.Matches(mp("203.0.113.0/24"), 64500) {
		t.Fatal("exact match failed")
	}
	if !v.Matches(mp("203.0.113.128/25"), 64500) {
		t.Fatal("within max-length failed")
	}
	if v.Matches(mp("203.0.113.0/26"), 64500) {
		t.Fatal("beyond max-length matched")
	}
	if v.Matches(mp("203.0.113.0/24"), 64501) {
		t.Fatal("wrong origin matched")
	}
	if v.Matches(mp("203.0.112.0/24"), 64500) {
		t.Fatal("uncovered prefix matched")
	}
}

func TestValidate(t *testing.T) {
	s := NewSet([]VRP{
		{ASN: 64500, Prefix: mp("203.0.113.0/24"), MaxLen: 24},
		{ASN: 64501, Prefix: mp("198.51.100.0/24"), MaxLen: 26},
	})
	if got := s.Validate(mp("203.0.113.0/24"), 64500); got != Valid {
		t.Fatalf("valid case = %v", got)
	}
	if got := s.Validate(mp("203.0.113.0/24"), 64999); got != Invalid {
		t.Fatalf("wrong origin = %v", got)
	}
	if got := s.Validate(mp("203.0.113.0/25"), 64500); got != Invalid {
		t.Fatalf("too-specific = %v (covered but over max-len)", got)
	}
	if got := s.Validate(mp("192.0.2.0/24"), 64500); got != NotFound {
		t.Fatalf("uncovered = %v", got)
	}
	if got := s.Validate(mp("198.51.100.64/26"), 64501); got != Valid {
		t.Fatalf("sub-prefix within maxlen = %v", got)
	}
}

func TestValidateAS0(t *testing.T) {
	// AS0 VRP alone: every covered announcement is Invalid.
	s := NewSet([]VRP{{ASN: 0, Prefix: mp("203.0.113.0/24"), MaxLen: 32}})
	if got := s.Validate(mp("203.0.113.0/24"), 64500); got != Invalid {
		t.Fatalf("AS0-covered = %v", got)
	}
	// AS0 plus a real authorisation: the real one still validates.
	s.Add(VRP{ASN: 64500, Prefix: mp("203.0.113.0/24"), MaxLen: 24})
	if got := s.Validate(mp("203.0.113.0/24"), 64500); got != Valid {
		t.Fatalf("AS0+real = %v", got)
	}
}

func TestMOASValidation(t *testing.T) {
	s := NewSet([]VRP{
		{ASN: 64500, Prefix: mp("10.0.0.0/16"), MaxLen: 16},
		{ASN: 64501, Prefix: mp("10.0.0.0/16"), MaxLen: 16},
	})
	if s.Validate(mp("10.0.0.0/16"), 64500) != Valid || s.Validate(mp("10.0.0.0/16"), 64501) != Valid {
		t.Fatal("both authorised origins should be Valid")
	}
	got := s.AuthorizedASNs(mp("10.0.0.0/16"))
	if len(got) != 2 || got[0] != 64500 || got[1] != 64501 {
		t.Fatalf("AuthorizedASNs = %v", got)
	}
}

func TestCoveringAcrossLevels(t *testing.T) {
	s := NewSet([]VRP{
		{ASN: 1, Prefix: mp("10.0.0.0/8"), MaxLen: 24},
		{ASN: 2, Prefix: mp("10.1.0.0/16"), MaxLen: 24},
	})
	got := s.Covering(mp("10.1.2.0/24"))
	if len(got) != 2 {
		t.Fatalf("Covering = %v", got)
	}
	// Announce at /24 under the /8 VRP's maxlen: valid for ASN 1.
	if s.Validate(mp("10.1.2.0/24"), 1) != Valid {
		t.Fatal("less-specific VRP should validate")
	}
}

func TestStateString(t *testing.T) {
	if NotFound.String() != "NotFound" || Valid.String() != "Valid" || Invalid.String() != "Invalid" {
		t.Fatal("state names")
	}
	if State(9).String() == "" {
		t.Fatal("out of range state name")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	vrps := []VRP{
		{ASN: 64500, Prefix: mp("203.0.113.0/24"), MaxLen: 24, TA: "ripe"},
		{ASN: 0, Prefix: mp("198.51.100.0/24"), MaxLen: 32, TA: "arin"},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, vrps); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "ASN,IP Prefix,Max Length,Trust Anchor\n") {
		t.Fatalf("missing header: %q", buf.String())
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("count = %d", len(back))
	}
	for i := range vrps {
		if back[i] != vrps[i] {
			t.Fatalf("vrp %d: %+v != %+v", i, back[i], vrps[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"AS64500,203.0.113.0/24\n",         // too few fields
		"ASxyz,203.0.113.0/24,24,ripe\n",   // bad ASN
		"AS64500,notaprefix,24,ripe\n",     // bad prefix
		"AS64500,203.0.113.0/24,40,ripe\n", // maxlen > 32
		"AS64500,203.0.113.0/24,20,ripe\n", // maxlen < prefix len
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded", c)
		}
	}
	// Comments and blank lines are fine; header optional.
	got, err := ReadCSV(strings.NewReader("# comment\n\nAS1,10.0.0.0/8,8,ripe\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("comment handling: %v %v", got, err)
	}
}

func TestSetVRPsOrdered(t *testing.T) {
	s := NewSet([]VRP{
		{ASN: 9, Prefix: mp("10.0.0.0/8"), MaxLen: 8},
		{ASN: 1, Prefix: mp("10.0.0.0/8"), MaxLen: 8},
		{ASN: 5, Prefix: mp("9.0.0.0/8"), MaxLen: 8},
	})
	vs := s.VRPs()
	if len(vs) != 3 || s.Len() != 3 {
		t.Fatalf("VRPs = %v", vs)
	}
	if vs[0].Prefix != mp("9.0.0.0/8") || vs[1].ASN != 1 || vs[2].ASN != 9 {
		t.Fatalf("ordering = %v", vs)
	}
}

func TestArchiveAtAndSpan(t *testing.T) {
	a := &Archive{}
	t0 := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	// Insert out of order; Add must keep sorted.
	a.Add(Snapshot{Time: t0.Add(time.Hour)})
	a.Add(Snapshot{Time: t0})
	a.Add(Snapshot{Time: t0.Add(30 * time.Minute), VRPs: []VRP{{ASN: 1, Prefix: mp("10.0.0.0/8"), MaxLen: 8}}})

	if s := a.At(t0.Add(45 * time.Minute)); s == nil || !s.Time.Equal(t0.Add(30*time.Minute)) {
		t.Fatalf("At = %+v", s)
	}
	if s := a.At(t0.Add(-time.Second)); s != nil {
		t.Fatal("At before archive should be nil")
	}
	if s := a.At(t0); s == nil || !s.Time.Equal(t0) {
		t.Fatal("At exact time failed")
	}
	if l := a.Latest(); l == nil || !l.Time.Equal(t0.Add(time.Hour)) {
		t.Fatal("Latest wrong")
	}
	first, last, ok := a.Span()
	if !ok || !first.Equal(t0) || !last.Equal(t0.Add(time.Hour)) {
		t.Fatal("Span wrong")
	}
	// Snapshot Set is lazily built and functional.
	s := a.At(t0.Add(30 * time.Minute))
	if s.Set().Validate(mp("10.0.0.0/8"), 1) != Valid {
		t.Fatal("snapshot set validate failed")
	}
	var empty Archive
	if empty.Latest() != nil {
		t.Fatal("empty Latest != nil")
	}
	if _, _, ok := empty.Span(); ok {
		t.Fatal("empty Span ok")
	}
}

func TestArchiveDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	a := &Archive{}
	a.Add(Snapshot{Time: t0, VRPs: []VRP{{ASN: 64500, Prefix: mp("203.0.113.0/24"), MaxLen: 24, TA: "ripe"}}})
	a.Add(Snapshot{Time: t0.Add(30 * time.Minute), VRPs: []VRP{{ASN: 0, Prefix: mp("203.0.113.0/24"), MaxLen: 32, TA: "ripe"}}})
	if err := a.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Snapshots) != 2 {
		t.Fatalf("snapshots = %d", len(back.Snapshots))
	}
	if !back.Snapshots[0].Time.Equal(t0) || back.Snapshots[0].VRPs[0].ASN != 64500 {
		t.Fatalf("snapshot 0 = %+v", back.Snapshots[0])
	}
	if back.Snapshots[1].VRPs[0].ASN != 0 {
		t.Fatal("AS0 snapshot lost")
	}
	if _, err := LoadDir(dir + "-missing"); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestUnionSetAndDiff(t *testing.T) {
	t0 := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	v1 := VRP{ASN: 1, Prefix: mp("10.0.0.0/24"), MaxLen: 24, TA: "ripe"}
	v2 := VRP{ASN: 2, Prefix: mp("10.0.1.0/24"), MaxLen: 24, TA: "ripe"}
	v3 := VRP{ASN: 3, Prefix: mp("10.0.2.0/24"), MaxLen: 24, TA: "ripe"}
	a := &Archive{}
	a.Add(Snapshot{Time: t0, VRPs: []VRP{v1, v2}})
	a.Add(Snapshot{Time: t0.Add(time.Hour), VRPs: []VRP{v1, v3}}) // v2 removed, v3 added

	u := a.UnionSet()
	if u.Len() != 3 {
		t.Fatalf("union size = %d", u.Len())
	}
	// v2 only existed early: the union still validates it.
	if u.Validate(mp("10.0.1.0/24"), 2) != Valid {
		t.Fatal("union lost an early VRP")
	}
	// The latest snapshot alone would not.
	if a.Latest().Set().Validate(mp("10.0.1.0/24"), 2) == Valid {
		t.Fatal("latest snapshot should not contain v2")
	}

	d := DiffSnapshots(&a.Snapshots[0], &a.Snapshots[1])
	if len(d.Added) != 1 || d.Added[0] != v3 {
		t.Fatalf("added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != v2 {
		t.Fatalf("removed = %v", d.Removed)
	}
	added, removed := a.Churn()
	if added != 1 || removed != 1 {
		t.Fatalf("churn = %d,%d", added, removed)
	}
	var empty Archive
	if empty.UnionSet().Len() != 0 {
		t.Fatal("empty union non-empty")
	}
}

func TestSnapshotFileNameParse(t *testing.T) {
	ts := time.Unix(1712000000, 0).UTC()
	name := snapshotFileName(ts)
	back, err := parseSnapshotFileName(name)
	if err != nil || !back.Equal(ts) {
		t.Fatalf("parse(%q) = %v %v", name, back, err)
	}
	for _, bad := range []string{"foo.csv", "vrps-x.csv", "vrps-1.txt"} {
		if _, err := parseSnapshotFileName(bad); err == nil {
			t.Errorf("parse(%q) succeeded", bad)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	var s Set
	for i := 0; i < 20000; i++ {
		p := netutil.Prefix{Base: netutil.Addr(uint32(i) << 10), Len: 22}.Canonicalize()
		s.Add(VRP{ASN: uint32(64000 + i%1000), Prefix: p, MaxLen: 24})
	}
	probe := mp("0.0.64.0/24")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Validate(probe, 64000)
	}
}
