package rpki

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipleasing/internal/diag"
)

// Snapshot is the VRP state at one point in time.
type Snapshot struct {
	Time time.Time
	VRPs []VRP

	set *Set // lazily built
}

// Set returns a queryable Set over the snapshot's VRPs, building it on
// first use.
func (s *Snapshot) Set() *Set {
	if s.set == nil {
		s.set = NewSet(s.VRPs)
	}
	return s.set
}

// Archive is a time-ordered sequence of VRP snapshots (the paper uses
// 30-minute granularity).
type Archive struct {
	Snapshots []Snapshot // ascending by Time
}

// Add inserts a snapshot, keeping the archive sorted.
func (a *Archive) Add(s Snapshot) {
	i := sort.Search(len(a.Snapshots), func(i int) bool {
		return a.Snapshots[i].Time.After(s.Time)
	})
	a.Snapshots = append(a.Snapshots, Snapshot{})
	copy(a.Snapshots[i+1:], a.Snapshots[i:])
	a.Snapshots[i] = s
}

// At returns the latest snapshot at or before t, or nil if the archive
// starts after t.
func (a *Archive) At(t time.Time) *Snapshot {
	i := sort.Search(len(a.Snapshots), func(i int) bool {
		return a.Snapshots[i].Time.After(t)
	})
	if i == 0 {
		return nil
	}
	return &a.Snapshots[i-1]
}

// Latest returns the newest snapshot, or nil for an empty archive.
func (a *Archive) Latest() *Snapshot {
	if len(a.Snapshots) == 0 {
		return nil
	}
	return &a.Snapshots[len(a.Snapshots)-1]
}

// UnionSet returns a Set over every VRP that appears in any snapshot —
// the paper's use of a multi-day archive window "to capture RPKI records
// for prefixes that were not immediately created at the time the lease
// occurred" (§4).
func (a *Archive) UnionSet() *Set {
	seen := make(map[VRP]bool)
	s := &Set{}
	for _, snap := range a.Snapshots {
		for _, v := range snap.VRPs {
			v.Prefix = v.Prefix.Canonicalize()
			if !seen[v] {
				seen[v] = true
				s.Add(v)
			}
		}
	}
	return s
}

// Diff reports the VRP churn from snapshot a to snapshot b.
type Diff struct {
	Added   []VRP
	Removed []VRP
}

// DiffSnapshots computes the exact VRP delta between two snapshots.
func DiffSnapshots(from, to *Snapshot) Diff {
	inFrom := make(map[VRP]bool, len(from.VRPs))
	for _, v := range from.VRPs {
		inFrom[v] = true
	}
	inTo := make(map[VRP]bool, len(to.VRPs))
	for _, v := range to.VRPs {
		inTo[v] = true
	}
	var d Diff
	for _, v := range to.VRPs {
		if !inFrom[v] {
			d.Added = append(d.Added, v)
		}
	}
	for _, v := range from.VRPs {
		if !inTo[v] {
			d.Removed = append(d.Removed, v)
		}
	}
	sortVRPs(d.Added)
	sortVRPs(d.Removed)
	return d
}

func sortVRPs(vs []VRP) {
	sort.Slice(vs, func(i, j int) bool {
		if c := vs[i].Prefix.Compare(vs[j].Prefix); c != 0 {
			return c < 0
		}
		return vs[i].ASN < vs[j].ASN
	})
}

// Churn summarises VRP turnover across consecutive snapshots.
func (a *Archive) Churn() (added, removed int) {
	for i := 1; i < len(a.Snapshots); i++ {
		d := DiffSnapshots(&a.Snapshots[i-1], &a.Snapshots[i])
		added += len(d.Added)
		removed += len(d.Removed)
	}
	return added, removed
}

// Span returns the time range covered by the archive.
func (a *Archive) Span() (first, last time.Time, ok bool) {
	if len(a.Snapshots) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return a.Snapshots[0].Time, a.Snapshots[len(a.Snapshots)-1].Time, true
}

// snapshotFileName renders a snapshot file name: vrps-<unix>.csv.
func snapshotFileName(t time.Time) string {
	return "vrps-" + strconv.FormatInt(t.Unix(), 10) + ".csv"
}

// parseSnapshotFileName recovers the timestamp from a snapshot file name.
func parseSnapshotFileName(name string) (time.Time, error) {
	base := strings.TrimSuffix(name, ".csv")
	if !strings.HasPrefix(base, "vrps-") || base == name {
		return time.Time{}, fmt.Errorf("rpki: %q is not a snapshot file name", name)
	}
	unix, err := strconv.ParseInt(strings.TrimPrefix(base, "vrps-"), 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("rpki: bad timestamp in %q", name)
	}
	return time.Unix(unix, 0).UTC(), nil
}

// WriteDir writes the archive as one CSV file per snapshot under dir,
// creating dir if needed.
func (a *Archive) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range a.Snapshots {
		f, err := os.Create(filepath.Join(dir, snapshotFileName(s.Time)))
		if err != nil {
			return err
		}
		werr := WriteCSV(f, s.VRPs)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// LoadDir reads every snapshot file in dir into an archive.
func LoadDir(dir string) (*Archive, error) {
	return LoadDirWith(dir, nil)
}

// LoadDirWith is LoadDir threaded through a load-diagnostics collector. A
// nil collector (or strict options) keeps LoadDir's fail-fast behavior. In
// lenient mode a missing directory yields an empty archive with the report
// marked Missing, and malformed VRP lines inside snapshots are skipped and
// accounted.
func LoadDirWith(dir string, c *diag.Collector) (*Archive, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if !c.Strict() && os.IsNotExist(err) {
			c.SetFile(dir)
			c.MarkMissing()
			return &Archive{}, nil
		}
		return nil, err
	}
	c.SetFile(dir)
	a := &Archive{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		ts, err := parseSnapshotFileName(e.Name())
		if err != nil {
			continue // foreign file; skip
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		c.SetFile(path)
		vrps, perr := ReadCSVWith(diag.CountReader(f, c), c)
		f.Close()
		if perr != nil {
			return nil, fmt.Errorf("rpki: %s: %w", e.Name(), perr)
		}
		a.Add(Snapshot{Time: ts, VRPs: vrps})
	}
	c.SetFile(dir)
	return a, nil
}
