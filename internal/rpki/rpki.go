// Package rpki models Route Origin Authorizations and implements route
// origin validation (RFC 6811) over archives of validated ROA payloads
// (VRPs), mirroring the 30-minute-granularity RPKI archive the paper uses
// (§4) for its abuse analysis (§6.4) and lease-timeline study (§6.5).
//
// A VRP with ASN 0 (AS0, RFC 7607) authorises no origin at all: it makes
// covered announcements Invalid unless another VRP validates them. The
// paper observes facilitators such as IPXO using AS0 ROAs between leases.
package rpki

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"

	"ipleasing/internal/diag"
	"ipleasing/internal/netutil"
	"ipleasing/internal/prefixtree"
)

// VRP is a validated ROA payload: the (prefix, max-length, origin)
// authorisation extracted from a signed ROA.
type VRP struct {
	ASN    uint32 // authorised origin; 0 = AS0 (deny)
	Prefix netutil.Prefix
	MaxLen uint8  // maximum announced length authorised
	TA     string // trust anchor name (ripe, arin, apnic, afrinic, lacnic)
}

// Covers reports whether the VRP covers an announcement of p: the VRP
// prefix contains p (max-length is evaluated separately by Validate).
func (v VRP) Covers(p netutil.Prefix) bool {
	return v.Prefix.ContainsPrefix(p)
}

// Matches reports whether the VRP validates an announcement of p by
// origin: covered, within max-length, and origin equals the VRP ASN.
func (v VRP) Matches(p netutil.Prefix, origin uint32) bool {
	return v.Covers(p) && p.Len <= v.MaxLen && v.ASN == origin
}

// State is the RFC 6811 validation outcome of an announcement.
type State int

const (
	// NotFound: no VRP covers the announced prefix.
	NotFound State = iota
	// Valid: at least one covering VRP matches the origin and length.
	Valid
	// Invalid: covering VRPs exist but none matches.
	Invalid
)

var stateNames = [...]string{"NotFound", "Valid", "Invalid"}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// Set is a queryable collection of VRPs. Build with Add, then query.
// The zero value is an empty set.
type Set struct {
	tree prefixtree.Tree[[]VRP]
	n    int
}

// Add inserts a VRP.
func (s *Set) Add(v VRP) {
	v.Prefix = v.Prefix.Canonicalize()
	existing, _ := s.tree.Get(v.Prefix)
	s.tree.Insert(v.Prefix, append(existing, v))
	s.n++
}

// Len returns the number of VRPs in the set.
func (s *Set) Len() int { return s.n }

// VRPs returns every VRP, ordered by prefix then ASN.
func (s *Set) VRPs() []VRP {
	out := make([]VRP, 0, s.n)
	s.tree.Walk(func(e prefixtree.Entry[[]VRP]) bool {
		out = append(out, e.Value...)
		return true
	})
	for i := 1; i < len(out); i++ { // stable per-prefix ordering by ASN
		for j := i; j > 0 && out[j-1].Prefix == out[j].Prefix && out[j-1].ASN > out[j].ASN; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Covering returns every VRP whose prefix covers p.
func (s *Set) Covering(p netutil.Prefix) []VRP {
	var out []VRP
	p = p.Canonicalize()
	cur := p
	for {
		if vs, ok := s.tree.Get(cur); ok {
			out = append(out, vs...)
		}
		if cur.Len == 0 {
			break
		}
		cur = cur.Parent()
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Prefix.Compare(out[j].Prefix); c != 0 {
			return c < 0
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// Validate performs RFC 6811 route origin validation of an announcement.
func (s *Set) Validate(p netutil.Prefix, origin uint32) State {
	covering := s.Covering(p)
	if len(covering) == 0 {
		return NotFound
	}
	for _, v := range covering {
		if v.Matches(p, origin) {
			return Valid
		}
	}
	return Invalid
}

// AuthorizedASNs returns the distinct ASNs authorised for any prefix
// covering p (AS0 included): the "ROAs associated with a prefix" view the
// paper uses in §6.4.
func (s *Set) AuthorizedASNs(p netutil.Prefix) []uint32 {
	seen := make(map[uint32]bool)
	var out []uint32
	for _, v := range s.Covering(p) {
		if !seen[v.ASN] {
			seen[v.ASN] = true
			out = append(out, v.ASN)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteCSV emits VRPs in the conventional validated-payload CSV form:
//
//	ASN,IP Prefix,Max Length,Trust Anchor
//
// with a header row, AS numbers in "AS64500" form.
func WriteCSV(w io.Writer, vrps []VRP) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("ASN,IP Prefix,Max Length,Trust Anchor\n"); err != nil {
		return err
	}
	for _, v := range vrps {
		if _, err := fmt.Fprintf(bw, "AS%d,%s,%d,%s\n", v.ASN, v.Prefix, v.MaxLen, v.TA); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the CSV form written by WriteCSV (header optional).
// The parser works on the scanner's byte view and interns the trust-anchor
// column (a handful of distinct registry names across millions of VRPs),
// so an archive of daily snapshots loads without per-line allocations.
func ReadCSV(r io.Reader) ([]VRP, error) {
	return ReadCSVWith(r, nil)
}

// ReadCSVWith is ReadCSV threaded through a load-diagnostics collector. A
// nil collector (or strict options) keeps ReadCSV's fail-fast behavior; in
// lenient mode malformed lines are skipped and accounted.
func ReadCSVWith(r io.Reader, c *diag.Collector) ([]VRP, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var out []VRP
	if st, ok := r.(interface{ Stat() (os.FileInfo, error) }); ok {
		if fi, err := st.Stat(); err == nil && fi.Size() > 0 {
			// ~27 bytes per "AS64500,192.0.2.0/24,24,ta" row: one
			// allocation for the whole snapshot instead of log(n) grows.
			out = make([]VRP, 0, fi.Size()/24+4)
		}
	}
	tas := make(map[string]string)
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if lineNum == 1 && len(line) >= 4 && (line[0] == 'A' || line[0] == 'a') &&
			(line[1] == 'S' || line[1] == 's') && (line[2] == 'N' || line[2] == 'n') && line[3] == ',' {
			continue // header
		}
		asnField, rest := cutComma(line)
		pfxField, rest := cutComma(rest)
		mlField, rest := cutComma(rest)
		if pfxField == nil || mlField == nil {
			if err := c.Skip(lineNum, -1, fmt.Errorf("rpki: line %d: want at least 3 fields", lineNum)); err != nil {
				return nil, err
			}
			continue
		}
		asnField = bytes.TrimSpace(asnField)
		if len(asnField) >= 2 && (asnField[0] == 'A' || asnField[0] == 'a') && (asnField[1] == 'S' || asnField[1] == 's') {
			asnField = asnField[2:]
		}
		asn, err := parseU32(asnField)
		if err != nil {
			if err := c.Skip(lineNum, -1, fmt.Errorf("rpki: line %d: bad ASN %q", lineNum, asnField)); err != nil {
				return nil, err
			}
			continue
		}
		p, err := netutil.ParsePrefixBytes(bytes.TrimSpace(pfxField))
		if err != nil {
			if err := c.Skip(lineNum, -1, fmt.Errorf("rpki: line %d: %v", lineNum, err)); err != nil {
				return nil, err
			}
			continue
		}
		ml, err := parseU32(bytes.TrimSpace(mlField))
		if err != nil || ml > 32 || uint8(ml) < p.Len {
			if err := c.Skip(lineNum, -1, fmt.Errorf("rpki: line %d: bad max length %q", lineNum, mlField)); err != nil {
				return nil, err
			}
			continue
		}
		v := VRP{ASN: asn, Prefix: p, MaxLen: uint8(ml)}
		if rest != nil {
			taField, _ := cutComma(rest)
			ta := bytes.TrimSpace(taField)
			if len(ta) > 0 {
				s, ok := tas[string(ta)]
				if !ok {
					s = string(ta)
					tas[s] = s
				}
				v.TA = s
			}
		}
		out = append(out, v)
		c.Parsed()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// cutComma splits b at the first comma: (field, rest). rest is nil when
// no comma remains, distinguishing a missing trailing field from an
// empty one.
func cutComma(b []byte) ([]byte, []byte) {
	if b == nil {
		return nil, nil
	}
	if i := bytes.IndexByte(b, ','); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

// parseU32 parses an unsigned decimal from bytes without allocating.
func parseU32(b []byte) (uint32, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("rpki: empty number")
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("rpki: bad digit %q", c)
		}
		v = v*10 + uint64(c-'0')
		if v > 1<<32-1 {
			return 0, fmt.Errorf("rpki: number out of range")
		}
	}
	return uint32(v), nil
}

// NewSet builds a Set from a VRP slice.
func NewSet(vrps []VRP) *Set {
	s := &Set{}
	for _, v := range vrps {
		s.Add(v)
	}
	return s
}
