// Package par provides a minimal errgroup-style helper for fanning work
// out across goroutines, used to parallelise the independent stages of
// dataset loading and the per-snapshot inference runs of the
// longitudinal market analysis. It deliberately mirrors the shape of
// golang.org/x/sync/errgroup without taking the dependency: the module
// is stdlib-only.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is returned by Wait when a function started with Go
// panicked. A panic in one loader goroutine must not kill a long-running
// process (a serving daemon reloading its dataset off-thread), so the
// panic is converted into an error at the group boundary instead of
// unwinding past it. The recovered value and the panicking goroutine's
// stack are preserved for diagnosis.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack of the panicking goroutine, as debug.Stack renders it
}

// Error renders the panic value; the stack is available on the field.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: goroutine panicked: %v", e.Value)
}

// Group runs a set of functions concurrently and collects the first
// error. The zero value is ready for use.
type Group struct {
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// Go runs fn in its own goroutine. The first non-nil error across all
// functions is retained and returned by Wait; later errors are dropped.
// A panic inside fn is recovered and reported through Wait as a
// *PanicError rather than crashing the process.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if v := recover(); v != nil {
				pe := &PanicError{Value: v, Stack: debug.Stack()}
				g.once.Do(func() { g.err = pe })
			}
		}()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every function started with Go has returned, then
// returns the first error (nil if all succeeded).
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

// Do runs every function concurrently and returns the first error.
func Do(fns ...func() error) error {
	var g Group
	for _, fn := range fns {
		g.Go(fn)
	}
	return g.Wait()
}

// Each runs fn(i) concurrently for every i in [0, n) and returns the
// first error. Results are typically written to a pre-sized slice slot
// per index, which keeps output ordering deterministic regardless of
// scheduling.
func Each(n int, fn func(i int) error) error {
	var g Group
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() error { return fn(i) })
	}
	return g.Wait()
}

// Workers runs fn(i) for every i in [0, n) on at most `workers`
// goroutines that pull the next index from a shared atomic counter —
// dynamic (work-stealing) scheduling, for workloads whose items have
// wildly skewed costs: a worker that drew a cheap item immediately
// steals the next one instead of idling behind a slow peer, so
// wall-clock tracks total work, not the slowest static partition.
//
// worker identifies the calling goroutine (0 <= worker < effective
// worker count), letting fn write into per-worker scratch state (memo
// tables, count accumulators) without locks.
//
// With workers <= 1 (or n <= 1) the items run inline on the calling
// goroutine with worker 0 — no goroutines, no atomics — so callers can
// pass a GOMAXPROCS-derived width and degrade to a serial loop for
// free. A worker whose fn returns an error (or panics) stops pulling
// further indexes, but other workers drain the remaining items; the
// first error is returned after all workers finish, Group semantics.
func Workers(n, workers int, fn func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n <= 0 {
			return nil
		}
		for i := 0; i < n; i++ {
			if err := runInline(0, i, fn); err != nil {
				// The sole worker stops pulling, and there are no
				// peers to drain the remaining items.
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var g Group
	for w := 0; w < workers; w++ {
		w := w
		g.Go(func() error {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return nil
				}
				if err := fn(w, i); err != nil {
					return err
				}
			}
		})
	}
	return g.Wait()
}

// runInline is one fn call with the same panic containment Go applies,
// so the serial degradation of Workers reports panics identically.
func runInline(worker, i int, fn func(worker, i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(worker, i)
}
