package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestGroupFirstError(t *testing.T) {
	want := errors.New("boom")
	var g Group
	g.Go(func() error { return nil })
	g.Go(func() error { return want })
	if err := g.Wait(); err != want {
		t.Fatalf("Wait = %v, want %v", err, want)
	}
}

// TestGroupRecoversPanic is the regression test for the process-killing
// loader panic: a panic inside a Group goroutine must surface as a
// *PanicError from Wait, with the panicking stack attached, while every
// other function still runs to completion.
func TestGroupRecoversPanic(t *testing.T) {
	var ran atomic.Int32
	var g Group
	g.Go(func() error {
		panic("loader exploded")
	})
	for i := 0; i < 4; i++ {
		g.Go(func() error {
			ran.Add(1)
			return nil
		})
	}
	err := g.Wait()
	if err == nil {
		t.Fatal("Wait returned nil after a goroutine panicked")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait error %T is not a *PanicError: %v", err, err)
	}
	if pe.Value != "loader exploded" {
		t.Errorf("PanicError.Value = %v, want %q", pe.Value, "loader exploded")
	}
	if !strings.Contains(err.Error(), "loader exploded") {
		t.Errorf("Error() does not carry the panic value: %q", err.Error())
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "par") {
		t.Errorf("PanicError.Stack missing or implausible:\n%s", pe.Stack)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("sibling goroutines ran %d times, want 4", got)
	}
}

func TestGroupPanicNilValue(t *testing.T) {
	// panic(nil) is recovered by Go as a *runtime.PanicNilError, so even
	// this degenerate case must not slip through as success.
	var g Group
	g.Go(func() error { panic(nil) })
	if err := g.Wait(); err == nil {
		t.Fatal("Wait returned nil after panic(nil)")
	}
}

func TestDoAndEach(t *testing.T) {
	if err := Do(func() error { return nil }, func() error { return nil }); err != nil {
		t.Fatalf("Do = %v", err)
	}
	out := make([]int, 8)
	if err := Each(len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatalf("Each = %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	wantErr := fmt.Errorf("slot 3")
	if err := Each(8, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	}); err != wantErr {
		t.Fatalf("Each error = %v, want %v", err, wantErr)
	}
}

func TestEachRecoversPanic(t *testing.T) {
	err := Each(4, func(i int) error {
		if i == 2 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Each after panic = %v, want *PanicError", err)
	}
	if pe.Value != 2 {
		t.Errorf("PanicError.Value = %v, want 2", pe.Value)
	}
}
