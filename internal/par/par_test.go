package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestGroupFirstError(t *testing.T) {
	want := errors.New("boom")
	var g Group
	g.Go(func() error { return nil })
	g.Go(func() error { return want })
	if err := g.Wait(); err != want {
		t.Fatalf("Wait = %v, want %v", err, want)
	}
}

// TestGroupRecoversPanic is the regression test for the process-killing
// loader panic: a panic inside a Group goroutine must surface as a
// *PanicError from Wait, with the panicking stack attached, while every
// other function still runs to completion.
func TestGroupRecoversPanic(t *testing.T) {
	var ran atomic.Int32
	var g Group
	g.Go(func() error {
		panic("loader exploded")
	})
	for i := 0; i < 4; i++ {
		g.Go(func() error {
			ran.Add(1)
			return nil
		})
	}
	err := g.Wait()
	if err == nil {
		t.Fatal("Wait returned nil after a goroutine panicked")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait error %T is not a *PanicError: %v", err, err)
	}
	if pe.Value != "loader exploded" {
		t.Errorf("PanicError.Value = %v, want %q", pe.Value, "loader exploded")
	}
	if !strings.Contains(err.Error(), "loader exploded") {
		t.Errorf("Error() does not carry the panic value: %q", err.Error())
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "par") {
		t.Errorf("PanicError.Stack missing or implausible:\n%s", pe.Stack)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("sibling goroutines ran %d times, want 4", got)
	}
}

func TestGroupPanicNilValue(t *testing.T) {
	// panic(nil) is recovered by Go as a *runtime.PanicNilError, so even
	// this degenerate case must not slip through as success.
	var g Group
	g.Go(func() error { panic(nil) })
	if err := g.Wait(); err == nil {
		t.Fatal("Wait returned nil after panic(nil)")
	}
}

func TestDoAndEach(t *testing.T) {
	if err := Do(func() error { return nil }, func() error { return nil }); err != nil {
		t.Fatalf("Do = %v", err)
	}
	out := make([]int, 8)
	if err := Each(len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatalf("Each = %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	wantErr := fmt.Errorf("slot 3")
	if err := Each(8, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	}); err != wantErr {
		t.Fatalf("Each error = %v, want %v", err, wantErr)
	}
}

func TestWorkersCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		n := 37
		var hits [37]atomic.Int32
		maxWorker := atomic.Int32{}
		if err := Workers(n, workers, func(w, i int) error {
			hits[i].Add(1)
			if int32(w) > maxWorker.Load() {
				maxWorker.Store(int32(w))
			}
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times, want 1", workers, i, got)
			}
		}
		// Worker ids stay below the effective worker count.
		limit := workers
		if limit > n {
			limit = n
		}
		if limit < 1 {
			limit = 1
		}
		if got := int(maxWorker.Load()); got >= limit {
			t.Fatalf("workers=%d: worker id %d >= effective count %d", workers, got, limit)
		}
	}
}

// TestWorkersSkew checks the dynamic-scheduling property the helper
// exists for: with one slow item and many cheap ones, the cheap items
// must not all queue behind the slow one. We verify structurally — every
// item runs exactly once even when one worker is pinned.
func TestWorkersSkew(t *testing.T) {
	const n = 64
	slow := make(chan struct{})
	var done atomic.Int32
	finished := make(chan error, 1)
	go func() {
		finished <- Workers(n, 4, func(w, i int) error {
			if i == 0 {
				<-slow // pin one worker on the first item
			}
			done.Add(1)
			return nil
		})
	}()
	// All other items complete while item 0 is pinned.
	for done.Load() < n-1 {
		runtime.Gosched()
	}
	close(slow)
	if err := <-finished; err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != n {
		t.Fatalf("completed %d items, want %d", got, n)
	}
}

func TestWorkersError(t *testing.T) {
	wantErr := errors.New("item 5")
	for _, workers := range []int{1, 4} {
		err := Workers(16, workers, func(w, i int) error {
			if i == 5 {
				return wantErr
			}
			return nil
		})
		if err != wantErr {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
}

func TestWorkersRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Workers(8, workers, func(w, i int) error {
			if i == 3 {
				panic("shard exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "shard exploded" {
			t.Errorf("workers=%d: PanicError.Value = %v", workers, pe.Value)
		}
	}
}

func TestWorkersEmpty(t *testing.T) {
	if err := Workers(0, 4, func(w, i int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestEachRecoversPanic(t *testing.T) {
	err := Each(4, func(i int) error {
		if i == 2 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Each after panic = %v, want *PanicError", err)
	}
	if pe.Value != 2 {
		t.Errorf("PanicError.Value = %v, want 2", pe.Value)
	}
}
