package rpsl

import (
	"errors"
	"io"
	"strings"
	"testing"
)

const messyDump = `inetnum:        192.0.2.0 - 192.0.2.255
netname:        GOOD-ONE
this line has no colon
status:         ASSIGNED PA

   continuation with no attribute
@@@@ garbage
~~~~ more garbage

inetnum:        198.51.100.0 - 198.51.100.255
netname:        GOOD-TWO
`

func TestOnBadLineSkips(t *testing.T) {
	var bad []int
	rd := NewReader(strings.NewReader(messyDump))
	rd.OnBadLine = func(line int, err error) error {
		bad = append(bad, line)
		return nil
	}
	var keys []string
	for {
		o, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		keys = append(keys, o.Key())
	}
	if len(keys) != 2 || keys[0] != "192.0.2.0 - 192.0.2.255" || keys[1] != "198.51.100.0 - 198.51.100.255" {
		t.Fatalf("keys = %v", keys)
	}
	// Line 3 (no colon), 6 (dangling continuation), 7, 8 (garbage).
	if len(bad) != 4 {
		t.Fatalf("bad lines = %v", bad)
	}
	if bad[0] != 3 || bad[1] != 6 || bad[2] != 7 || bad[3] != 8 {
		t.Fatalf("bad lines = %v", bad)
	}
}

func TestOnBadLineAllSkippedObjectDoesNotEOF(t *testing.T) {
	// An object whose every line is garbage must not terminate the stream:
	// the reader has to scan on to the following object.
	dump := "@@@@\n!!!!\n\ninetnum: 192.0.2.0 - 192.0.2.255\n"
	rd := NewReader(strings.NewReader(dump))
	rd.OnBadLine = func(int, error) error { return nil }
	o, err := rd.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if o.Key() != "192.0.2.0 - 192.0.2.255" {
		t.Fatalf("key = %q", o.Key())
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestOnBadLineAbort(t *testing.T) {
	sentinel := errors.New("too much")
	rd := NewReader(strings.NewReader(messyDump))
	rd.OnBadLine = func(int, error) error { return sentinel }
	_, err := rd.Next()
	if err != sentinel {
		t.Fatalf("want sentinel, got %v", err)
	}
}

func TestStrictStillFailsFast(t *testing.T) {
	rd := NewReader(strings.NewReader(messyDump))
	_, err := rd.Next()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("strict err = %v", err)
	}
}
