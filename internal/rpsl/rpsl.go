// Package rpsl reads and writes objects in the Routing Policy Specification
// Language style used by the RIPE, APNIC, and AFRINIC WHOIS bulk database
// dumps (RFC 2622 syntax as deployed by the RIRs).
//
// An RPSL database is a stream of objects separated by blank lines. Each
// object is a sequence of "attribute: value" lines; a line beginning with
// whitespace or '+' continues the previous attribute's value, and '#'
// introduces a comment that runs to end of line. The first attribute of an
// object names its class (inetnum, aut-num, organisation, mntner, ...).
package rpsl

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Attribute is a single attribute of an RPSL object. Repeated attributes
// (e.g. multiple mnt-by lines) are preserved in order.
type Attribute struct {
	Name  string // lower-cased attribute name, e.g. "inetnum"
	Value string // value with comments stripped and continuations joined
}

// Object is one RPSL object: an ordered list of attributes. The first
// attribute determines the object's class and primary key.
type Object struct {
	Attributes []Attribute
}

// Class returns the name of the first attribute — the object class —
// or "" for an empty object.
func (o *Object) Class() string {
	if len(o.Attributes) == 0 {
		return ""
	}
	return o.Attributes[0].Name
}

// Key returns the value of the first attribute — the object's primary key.
func (o *Object) Key() string {
	if len(o.Attributes) == 0 {
		return ""
	}
	return o.Attributes[0].Value
}

// Get returns the value of the first attribute named name (lower case)
// and whether it exists.
func (o *Object) Get(name string) (string, bool) {
	for _, a := range o.Attributes {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// GetAll returns the values of every attribute named name, in order.
func (o *Object) GetAll(name string) []string {
	var out []string
	for _, a := range o.Attributes {
		if a.Name == name {
			out = append(out, a.Value)
		}
	}
	return out
}

// Add appends an attribute.
func (o *Object) Add(name, value string) {
	o.Attributes = append(o.Attributes, Attribute{Name: strings.ToLower(name), Value: value})
}

// String renders the object in RPSL dump format, one attribute per line,
// with the canonical column-aligned "name:" field.
func (o *Object) String() string {
	var b strings.Builder
	for _, a := range o.Attributes {
		b.WriteString(a.Name)
		b.WriteByte(':')
		pad := 16 - len(a.Name) - 1
		if pad < 1 {
			pad = 1
		}
		for i := 0; i < pad; i++ {
			b.WriteByte(' ')
		}
		b.WriteString(a.Value)
		b.WriteByte('\n')
	}
	return b.String()
}

// Reader decodes a stream of RPSL objects.
//
// The reader works on the scanner's byte view and interns attribute names
// and short values: RIR bulk dumps repeat the same handful of names
// (inetnum, netname, mnt-by, ...) and many values (status codes, country
// codes, maintainer handles) millions of times, so interning turns the
// dominant per-line string allocation into a map hit.
type Reader struct {
	s       *bufio.Scanner
	lineNum int
	err     error
	strs    map[string]string

	// OnBadLine, when non-nil, is consulted for each malformed attribute
	// line with its 1-based line number and the parse error, instead of
	// aborting the parse. Returning nil skips the line and continues the
	// current object; returning an error aborts with that error. A nil
	// OnBadLine keeps the strict contract: the first malformed line fails
	// NextInto. Scanner-level errors (oversized lines, read failures)
	// always abort regardless of OnBadLine.
	OnBadLine func(lineNum int, err error) error
}

// NewReader returns a Reader over r. Lines longer than 1 MiB are an error.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{s: s, strs: make(map[string]string)}
}

func (r *Reader) nextLine() ([]byte, bool) {
	if r.s.Scan() {
		r.lineNum++
		return r.s.Bytes(), true
	}
	r.err = r.s.Err()
	return nil, false
}

// intern returns b as a string, reusing a previous allocation for values
// short enough to plausibly repeat (the map lookup on a byte slice does
// not allocate).
func (r *Reader) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > 64 {
		return string(b) // long values never repeat; skip the always-miss lookup
	}
	if s, ok := r.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	r.strs[s] = s
	return s
}

// stripComment removes a '#' comment. RPSL values do not quote '#', so a
// bare IndexByte is correct for RIR dump data.
func stripComment(b []byte) []byte {
	if i := bytes.IndexByte(b, '#'); i >= 0 {
		b = b[:i]
	}
	return bytes.TrimRight(b, " \t")
}

// Next returns the next object in the stream, or io.EOF when exhausted.
// Whole-line comments ('%' server remarks and '#' comments) and blank lines
// between objects are skipped. Malformed attribute lines inside an object
// produce an error identifying the line number.
func (r *Reader) Next() (*Object, error) {
	// A typical RIR dump object carries well under a dozen attributes;
	// pre-sizing skips the first few append regrowths on every object.
	obj := &Object{Attributes: make([]Attribute, 0, 8)}
	if err := r.NextInto(obj); err != nil {
		return nil, err
	}
	return obj, nil
}

// NextInto decodes the next object into obj, reusing its attribute slice.
// Streaming consumers that convert each object before advancing use this
// to avoid the per-object allocations of Next; attribute names and values
// are interned strings, safe to retain across calls.
func (r *Reader) NextInto(obj *Object) error {
	for {
		obj.Attributes = obj.Attributes[:0]
		// Skip blanks and comment lines to the start of an object.
		var line []byte
		var ok bool
		for {
			line, ok = r.nextLine()
			if !ok {
				if r.err != nil {
					return r.err
				}
				return io.EOF
			}
			t := bytes.TrimSpace(line)
			if len(t) == 0 || t[0] == '#' || t[0] == '%' {
				continue
			}
			break
		}

		atEOF := false
		for {
			if len(bytes.TrimSpace(line)) == 0 {
				break // end of object
			}
			if err := r.attrLine(obj, line); err != nil {
				if r.OnBadLine == nil {
					return err
				}
				if err := r.OnBadLine(r.lineNum, err); err != nil {
					return err
				}
				// Bad line skipped; the rest of the object still parses.
			}
			line, ok = r.nextLine()
			if !ok {
				if r.err != nil {
					return r.err
				}
				atEOF = true
				break // EOF terminates the last object
			}
		}
		if len(obj.Attributes) > 0 {
			return nil
		}
		if atEOF {
			return io.EOF
		}
		// Every line of this object was skipped (lenient recovery): scan
		// on for the next object rather than reporting a premature EOF.
	}
}

// attrLine parses one non-blank line of the current object into obj.
func (r *Reader) attrLine(obj *Object, line []byte) error {
	switch {
	case line[0] == '#' || line[0] == '%':
		// comment line inside an object: skip
	case line[0] == ' ' || line[0] == '\t' || line[0] == '+':
		// Continuation of the previous attribute.
		if len(obj.Attributes) == 0 {
			return fmt.Errorf("rpsl: line %d: continuation with no attribute", r.lineNum)
		}
		cont := bytes.TrimSpace(stripComment(line[1:]))
		last := &obj.Attributes[len(obj.Attributes)-1]
		if len(cont) != 0 {
			if last.Value != "" {
				last.Value += " " + string(cont)
			} else {
				last.Value = r.intern(cont)
			}
		}
	default:
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			return fmt.Errorf("rpsl: line %d: malformed attribute line %q", r.lineNum, line)
		}
		name := bytes.TrimSpace(line[:colon])
		if bytes.ContainsAny(name, " \t") {
			return fmt.Errorf("rpsl: line %d: malformed attribute name %q", r.lineNum, name)
		}
		for _, c := range name {
			if 'A' <= c && c <= 'Z' {
				name = bytes.ToLower(name)
				break
			}
		}
		value := bytes.TrimSpace(stripComment(line[colon+1:]))
		obj.Attributes = append(obj.Attributes, Attribute{Name: r.intern(name), Value: r.intern(value)})
	}
	return nil
}

// ReadAll decodes every object in r.
func ReadAll(r io.Reader) ([]*Object, error) {
	rd := NewReader(r)
	var out []*Object
	for {
		o, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
}

// Writer encodes RPSL objects separated by blank lines.
type Writer struct {
	w   io.Writer
	n   int
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write emits one object. Objects are separated by a single blank line.
func (w *Writer) Write(o *Object) error {
	if w.err != nil {
		return w.err
	}
	if w.n > 0 {
		if _, w.err = io.WriteString(w.w, "\n"); w.err != nil {
			return w.err
		}
	}
	if _, w.err = io.WriteString(w.w, o.String()); w.err != nil {
		return w.err
	}
	w.n++
	return nil
}
