// Package rpsl reads and writes objects in the Routing Policy Specification
// Language style used by the RIPE, APNIC, and AFRINIC WHOIS bulk database
// dumps (RFC 2622 syntax as deployed by the RIRs).
//
// An RPSL database is a stream of objects separated by blank lines. Each
// object is a sequence of "attribute: value" lines; a line beginning with
// whitespace or '+' continues the previous attribute's value, and '#'
// introduces a comment that runs to end of line. The first attribute of an
// object names its class (inetnum, aut-num, organisation, mntner, ...).
package rpsl

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Attribute is a single attribute of an RPSL object. Repeated attributes
// (e.g. multiple mnt-by lines) are preserved in order.
type Attribute struct {
	Name  string // lower-cased attribute name, e.g. "inetnum"
	Value string // value with comments stripped and continuations joined
}

// Object is one RPSL object: an ordered list of attributes. The first
// attribute determines the object's class and primary key.
type Object struct {
	Attributes []Attribute
}

// Class returns the name of the first attribute — the object class —
// or "" for an empty object.
func (o *Object) Class() string {
	if len(o.Attributes) == 0 {
		return ""
	}
	return o.Attributes[0].Name
}

// Key returns the value of the first attribute — the object's primary key.
func (o *Object) Key() string {
	if len(o.Attributes) == 0 {
		return ""
	}
	return o.Attributes[0].Value
}

// Get returns the value of the first attribute named name (lower case)
// and whether it exists.
func (o *Object) Get(name string) (string, bool) {
	for _, a := range o.Attributes {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// GetAll returns the values of every attribute named name, in order.
func (o *Object) GetAll(name string) []string {
	var out []string
	for _, a := range o.Attributes {
		if a.Name == name {
			out = append(out, a.Value)
		}
	}
	return out
}

// Add appends an attribute.
func (o *Object) Add(name, value string) {
	o.Attributes = append(o.Attributes, Attribute{Name: strings.ToLower(name), Value: value})
}

// String renders the object in RPSL dump format, one attribute per line,
// with the canonical column-aligned "name:" field.
func (o *Object) String() string {
	var b strings.Builder
	for _, a := range o.Attributes {
		b.WriteString(a.Name)
		b.WriteByte(':')
		pad := 16 - len(a.Name) - 1
		if pad < 1 {
			pad = 1
		}
		for i := 0; i < pad; i++ {
			b.WriteByte(' ')
		}
		b.WriteString(a.Value)
		b.WriteByte('\n')
	}
	return b.String()
}

// Reader decodes a stream of RPSL objects.
type Reader struct {
	s       *bufio.Scanner
	lineNum int
	pending string // a lookahead line, "" if none
	hasPend bool
	err     error
}

// NewReader returns a Reader over r. Lines longer than 1 MiB are an error.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{s: s}
}

func (r *Reader) nextLine() (string, bool) {
	if r.hasPend {
		r.hasPend = false
		return r.pending, true
	}
	if r.s.Scan() {
		r.lineNum++
		return r.s.Text(), true
	}
	r.err = r.s.Err()
	return "", false
}

func (r *Reader) unread(line string) {
	r.pending = line
	r.hasPend = true
}

// stripComment removes a '#' comment. RPSL values do not quote '#', so a
// bare IndexByte is correct for RIR dump data.
func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimRight(s, " \t")
}

// Next returns the next object in the stream, or io.EOF when exhausted.
// Whole-line comments ('%' server remarks and '#' comments) and blank lines
// between objects are skipped. Malformed attribute lines inside an object
// produce an error identifying the line number.
func (r *Reader) Next() (*Object, error) {
	// Skip blanks and comment lines to the start of an object.
	var line string
	var ok bool
	for {
		line, ok = r.nextLine()
		if !ok {
			if r.err != nil {
				return nil, r.err
			}
			return nil, io.EOF
		}
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "%") {
			continue
		}
		break
	}

	obj := &Object{}
	for {
		if strings.TrimSpace(line) == "" {
			break // end of object
		}
		switch {
		case strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%"):
			// comment line inside an object: skip
		case line[0] == ' ' || line[0] == '\t' || line[0] == '+':
			// Continuation of the previous attribute.
			if len(obj.Attributes) == 0 {
				return nil, fmt.Errorf("rpsl: line %d: continuation with no attribute", r.lineNum)
			}
			cont := line[1:]
			cont = strings.TrimSpace(stripComment(cont))
			last := &obj.Attributes[len(obj.Attributes)-1]
			if cont != "" {
				if last.Value != "" {
					last.Value += " " + cont
				} else {
					last.Value = cont
				}
			}
		default:
			colon := strings.IndexByte(line, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("rpsl: line %d: malformed attribute line %q", r.lineNum, line)
			}
			name := strings.ToLower(strings.TrimSpace(line[:colon]))
			if strings.ContainsAny(name, " \t") {
				return nil, fmt.Errorf("rpsl: line %d: malformed attribute name %q", r.lineNum, name)
			}
			value := strings.TrimSpace(stripComment(line[colon+1:]))
			obj.Attributes = append(obj.Attributes, Attribute{Name: name, Value: value})
		}
		line, ok = r.nextLine()
		if !ok {
			if r.err != nil {
				return nil, r.err
			}
			break // EOF terminates the last object
		}
	}
	if len(obj.Attributes) == 0 {
		return nil, io.EOF
	}
	return obj, nil
}

// ReadAll decodes every object in r.
func ReadAll(r io.Reader) ([]*Object, error) {
	rd := NewReader(r)
	var out []*Object
	for {
		o, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
}

// Writer encodes RPSL objects separated by blank lines.
type Writer struct {
	w   io.Writer
	n   int
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write emits one object. Objects are separated by a single blank line.
func (w *Writer) Write(o *Object) error {
	if w.err != nil {
		return w.err
	}
	if w.n > 0 {
		if _, w.err = io.WriteString(w.w, "\n"); w.err != nil {
			return w.err
		}
	}
	if _, w.err = io.WriteString(w.w, o.String()); w.err != nil {
		return w.err
	}
	w.n++
	return nil
}
