package rpsl

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

const sampleDB = `
% This is a RIPE-style server banner comment.
# And a hash comment.

inetnum:        213.210.0.0 - 213.210.63.255
netname:        GCI-NET
org:            ORG-GCI1-RIPE
status:         ALLOCATED PA
mnt-by:         MNT-GCICOM
source:         RIPE

inetnum:        213.210.33.0 - 213.210.33.255
netname:        IPXO-LEASE
descr:          Leased out block # trailing comment
                second description line
status:         ASSIGNED PA
mnt-by:         IPXO-MNT
mnt-by:         MNT-GCICOM
source:         RIPE

aut-num:        AS8851
as-name:        GCI-AS
org:            ORG-GCI1-RIPE
source:         RIPE

organisation:   ORG-GCI1-RIPE
org-name:       GCI Network
+               (continuation with plus)
source:         RIPE
`

func TestReadAll(t *testing.T) {
	objs, err := ReadAll(strings.NewReader(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("got %d objects, want 4", len(objs))
	}
	if objs[0].Class() != "inetnum" || objs[0].Key() != "213.210.0.0 - 213.210.63.255" {
		t.Fatalf("obj0 = %q %q", objs[0].Class(), objs[0].Key())
	}
	if v, _ := objs[0].Get("status"); v != "ALLOCATED PA" {
		t.Fatalf("status = %q", v)
	}
	// Trailing comment stripped, continuation joined.
	if v, _ := objs[1].Get("descr"); v != "Leased out block second description line" {
		t.Fatalf("descr = %q", v)
	}
	// Repeated attributes preserved in order.
	mnts := objs[1].GetAll("mnt-by")
	if len(mnts) != 2 || mnts[0] != "IPXO-MNT" || mnts[1] != "MNT-GCICOM" {
		t.Fatalf("mnt-by = %v", mnts)
	}
	// '+' continuation.
	if v, _ := objs[3].Get("org-name"); v != "GCI Network (continuation with plus)" {
		t.Fatalf("org-name = %q", v)
	}
	if objs[2].Class() != "aut-num" || objs[2].Key() != "AS8851" {
		t.Fatalf("obj2 = %q %q", objs[2].Class(), objs[2].Key())
	}
}

func TestGetMissing(t *testing.T) {
	o := &Object{}
	if _, ok := o.Get("anything"); ok {
		t.Fatal("Get on empty object")
	}
	if o.Class() != "" || o.Key() != "" {
		t.Fatal("empty object class/key")
	}
	o.Add("MNT-by", "X") // name should be lower-cased
	if v, ok := o.Get("mnt-by"); !ok || v != "X" {
		t.Fatal("Add did not lower-case name")
	}
}

func TestEmptyInput(t *testing.T) {
	objs, err := ReadAll(strings.NewReader(""))
	if err != nil || len(objs) != 0 {
		t.Fatalf("empty input: %v %v", objs, err)
	}
	objs, err = ReadAll(strings.NewReader("\n\n% only comments\n# more\n\n"))
	if err != nil || len(objs) != 0 {
		t.Fatalf("comment-only input: %v %v", objs, err)
	}
}

func TestNoTrailingNewline(t *testing.T) {
	objs, err := ReadAll(strings.NewReader("inetnum: 10.0.0.0 - 10.0.0.255\nstatus: ASSIGNED PA"))
	if err != nil || len(objs) != 1 {
		t.Fatalf("objs=%v err=%v", objs, err)
	}
	if v, _ := objs[0].Get("status"); v != "ASSIGNED PA" {
		t.Fatal("lost last attribute without trailing newline")
	}
}

func TestMalformed(t *testing.T) {
	// Continuation before any attribute.
	if _, err := ReadAll(strings.NewReader("  dangling continuation\n")); err == nil {
		t.Fatal("dangling continuation accepted")
	}
	// Attribute line with no colon.
	if _, err := ReadAll(strings.NewReader("inetnum: 10.0.0.0 - 10.0.0.255\nnocolonhere\n")); err == nil {
		t.Fatal("missing colon accepted")
	}
	// Colon at position 0.
	if _, err := ReadAll(strings.NewReader(":empty name\n")); err == nil {
		t.Fatal("empty attribute name accepted")
	}
	// Space inside attribute name.
	if _, err := ReadAll(strings.NewReader("bad name: value\n")); err == nil {
		t.Fatal("attribute name with space accepted")
	}
}

func TestCommentInsideObject(t *testing.T) {
	in := "inetnum: 10.0.0.0 - 10.0.0.255\n# interior comment\nstatus: ASSIGNED PA\n"
	objs, err := ReadAll(strings.NewReader(in))
	if err != nil || len(objs) != 1 {
		t.Fatalf("objs=%v err=%v", objs, err)
	}
	if v, _ := objs[0].Get("status"); v != "ASSIGNED PA" {
		t.Fatal("comment inside object broke parsing")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	objs, err := ReadAll(strings.NewReader(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, o := range objs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(objs) {
		t.Fatalf("round trip count %d != %d", len(back), len(objs))
	}
	for i := range objs {
		if len(back[i].Attributes) != len(objs[i].Attributes) {
			t.Fatalf("obj %d attr count changed", i)
		}
		for j := range objs[i].Attributes {
			if back[i].Attributes[j] != objs[i].Attributes[j] {
				t.Fatalf("obj %d attr %d: %v != %v", i, j, back[i].Attributes[j], objs[i].Attributes[j])
			}
		}
	}
}

// Property: any object built from sane attribute names/values survives a
// write/read round trip.
func TestRoundTripQuick(t *testing.T) {
	sanitize := func(s string, name bool) string {
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
				b.WriteRune(r)
			case !name && (r == ' ' || r == '.' || r == '/'):
				b.WriteRune(r)
			}
		}
		out := strings.TrimSpace(b.String())
		if out == "" {
			out = "x"
		}
		return out
	}
	f := func(names, values []string) bool {
		if len(names) == 0 {
			return true
		}
		o := &Object{}
		for i, n := range names {
			v := "v"
			if i < len(values) {
				v = sanitize(values[i], false)
			}
			o.Add(strings.ToLower(sanitize(n, true)), v)
		}
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(o); err != nil {
			return false
		}
		back, err := ReadAll(&buf)
		if err != nil || len(back) != 1 {
			return false
		}
		if len(back[0].Attributes) != len(o.Attributes) {
			return false
		}
		for i := range o.Attributes {
			got, want := back[0].Attributes[i], o.Attributes[i]
			// Internal whitespace may be normalised only at the edges.
			if got.Name != want.Name || got.Value != strings.TrimSpace(want.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReaderSequential(t *testing.T) {
	rd := NewReader(strings.NewReader(sampleDB))
	count := 0
	for {
		_, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 4 {
		t.Fatalf("sequential count = %d", count)
	}
	// Next after EOF keeps returning EOF.
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("post-EOF = %v", err)
	}
}

func BenchmarkReadAll(b *testing.B) {
	data := strings.Repeat(sampleDB, 100)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
