package rpsl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Robustness: arbitrary text input never panics the reader; it either
// yields objects or an error.
func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	f := func(s string) bool {
		_, _ = ReadAll(strings.NewReader(s))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Robustness: random line soup assembled from RPSL-ish fragments parses
// or errors deterministically, and any parsed object round-trips.
func TestFragmentSoup(t *testing.T) {
	fragments := []string{
		"inetnum:        10.0.0.0 - 10.0.0.255",
		"mnt-by: SOME-MNT",
		"+ continuation",
		"   indented continuation",
		"# comment",
		"% server comment",
		"",
		"no-colon-line",
		"status: ASSIGNED PA",
		": empty-name",
	}
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		n := rng.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			b.WriteByte('\n')
		}
		objs, err := ReadAll(strings.NewReader(b.String()))
		if err != nil {
			continue
		}
		for _, o := range objs {
			var buf strings.Builder
			w := NewWriter(&buf)
			if werr := w.Write(o); werr != nil {
				t.Fatalf("write after parse: %v", werr)
			}
			back, rerr := ReadAll(strings.NewReader(buf.String()))
			if rerr != nil || len(back) != 1 {
				t.Fatalf("re-parse failed: %v (input %q)", rerr, buf.String())
			}
		}
	}
}
