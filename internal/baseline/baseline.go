// Package baseline implements the maintainer-comparison leasing heuristic
// of Prehn et al. (CoNEXT 2020), which the paper compares against in
// §6.1: an address block is classified leased when its maintainers differ
// from its parent block's maintainers.
//
// The comparison illustrates both failure modes the paper discusses: the
// baseline flags customer blocks with self-managed maintainers (false
// positives relative to the routing-aware method) but also catches
// inactive leases the routing-aware method classifies Unused.
package baseline

import (
	"ipleasing/internal/core"
	"ipleasing/internal/netutil"
	"ipleasing/internal/prefixtree"
	"ipleasing/internal/whois"
)

// Inference is the baseline's verdict for one leaf prefix.
type Inference struct {
	Registry whois.Registry
	Prefix   netutil.Prefix
	Leased   bool // maintainers differ from the parent block's
}

// Options tunes the baseline. The zero value matches the inference
// pipeline's tree construction.
type Options struct {
	// MaxPrefixLen drops hyper-specifics; 0 means 24.
	MaxPrefixLen uint8
}

func (o Options) maxLen() uint8 {
	if o.MaxPrefixLen == 0 {
		return 24
	}
	return o.MaxPrefixLen
}

type nodeVal struct {
	inet *whois.InetNum
}

// Infer classifies every non-portable leaf prefix by maintainer
// difference.
func Infer(ds *whois.Dataset, opts Options) []Inference {
	var out []Inference
	for _, reg := range whois.Registries {
		db, ok := ds.DBs[reg]
		if !ok {
			continue
		}
		tree := &prefixtree.Tree[nodeVal]{}
		for _, inet := range db.InetNums {
			if inet.Portability == whois.Legacy || inet.Portability == whois.PortabilityUnknown {
				continue
			}
			for _, p := range inet.Prefixes() {
				if p.Len > opts.maxLen() {
					continue
				}
				if _, exists := tree.Get(p); !exists {
					tree.Insert(p, nodeVal{inet: inet})
				}
			}
		}
		tree.Walk(func(e prefixtree.Entry[nodeVal]) bool {
			if e.HasChildren || e.Value.inet.Portability != whois.NonPortable {
				return true
			}
			anc := tree.Ancestors(e.Prefix)
			if len(anc) == 0 {
				return true // orphan: no parent to compare against
			}
			parent := anc[len(anc)-1].Value.inet
			out = append(out, Inference{
				Registry: reg,
				Prefix:   e.Prefix,
				Leased:   !sameMaintainers(e.Value.inet.MntBy, parent.MntBy),
			})
			return true
		})
	}
	return out
}

// sameMaintainers reports whether the two maintainer sets share at least
// one handle (a shared maintainer means the provider still manages the
// block, i.e. not leased under the heuristic).
func sameMaintainers(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Comparison contrasts the baseline with the routing-aware inference over
// the common leaf population (§6.1's preliminary comparison).
type Comparison struct {
	Both         int // leased under both methods
	OnlyBaseline int // leased under the maintainer heuristic only
	OnlyOurs     int // leased under the routing-aware method only
	Neither      int
}

// Total returns the number of compared leaves.
func (c Comparison) Total() int { return c.Both + c.OnlyBaseline + c.OnlyOurs + c.Neither }

// Agreement returns the fraction of leaves where the methods agree.
func (c Comparison) Agreement() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.Both+c.Neither) / float64(c.Total())
}

// Compare matches baseline verdicts with the pipeline's result by prefix.
func Compare(base []Inference, res *core.Result) Comparison {
	ours := make(map[netutil.Prefix]bool)
	for _, inf := range res.All() {
		if inf.Category != core.Orphan {
			ours[inf.Prefix] = inf.Category.Leased()
		}
	}
	var c Comparison
	for _, b := range base {
		leased, ok := ours[b.Prefix]
		if !ok {
			continue
		}
		switch {
		case b.Leased && leased:
			c.Both++
		case b.Leased && !leased:
			c.OnlyBaseline++
		case !b.Leased && leased:
			c.OnlyOurs++
		default:
			c.Neither++
		}
	}
	return c
}
