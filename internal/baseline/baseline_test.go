package baseline

import (
	"testing"

	"ipleasing/internal/netutil"
	"ipleasing/internal/synth"
	"ipleasing/internal/whois"
)

func mp(s string) netutil.Prefix { return netutil.MustParsePrefix(s) }

func TestMaintainerHeuristicDirect(t *testing.T) {
	ds := whois.NewDataset()
	db := ds.DB(whois.RIPE)
	db.InetNums = []*whois.InetNum{
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("10.0.0.0/16")),
			Status: "ALLOCATED PA", Portability: whois.Portable, MntBy: []string{"MNT-ISP"}},
		// Same maintainer as parent: not leased.
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("10.0.1.0/24")),
			Status: "ASSIGNED PA", Portability: whois.NonPortable, MntBy: []string{"MNT-ISP"}},
		// Different maintainer: leased under the heuristic.
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("10.0.2.0/24")),
			Status: "ASSIGNED PA", Portability: whois.NonPortable, MntBy: []string{"IPXO-MNT"}},
		// Orphan non-portable: skipped (no parent).
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("192.0.2.0/24")),
			Status: "ASSIGNED PA", Portability: whois.NonPortable, MntBy: []string{"X-MNT"}},
	}
	db.Reindex()
	got := Infer(ds, Options{})
	if len(got) != 2 {
		t.Fatalf("inferences = %+v", got)
	}
	byPrefix := map[netutil.Prefix]bool{}
	for _, b := range got {
		byPrefix[b.Prefix] = b.Leased
	}
	if byPrefix[mp("10.0.1.0/24")] {
		t.Error("same-maintainer leaf flagged leased")
	}
	if !byPrefix[mp("10.0.2.0/24")] {
		t.Error("different-maintainer leaf not flagged")
	}
}

func TestMiddleParentComparison(t *testing.T) {
	// The heuristic compares against the immediate parent, not the root.
	ds := whois.NewDataset()
	db := ds.DB(whois.RIPE)
	db.InetNums = []*whois.InetNum{
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("10.0.0.0/8")),
			Status: "ALLOCATED PA", Portability: whois.Portable, MntBy: []string{"MNT-ROOT"}},
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("10.1.0.0/16")),
			Status: "SUB-ALLOCATED PA", Portability: whois.NonPortable, MntBy: []string{"MNT-MID"}},
		{Registry: whois.RIPE, Range: netutil.RangeOf(mp("10.1.1.0/24")),
			Status: "ASSIGNED PA", Portability: whois.NonPortable, MntBy: []string{"MNT-MID"}},
	}
	db.Reindex()
	got := Infer(ds, Options{})
	// Only the /24 is a leaf; its parent is the /16 with the same mnt.
	if len(got) != 1 || got[0].Prefix != mp("10.1.1.0/24") || got[0].Leased {
		t.Fatalf("got %+v", got)
	}
}

// TestComparisonOnSyntheticWorld reproduces §6.1's preliminary
// comparison: the methods agree on most leaves, the baseline uniquely
// catches inactive leases (classified Unused by the routing-aware
// method), and the routing-aware method uniquely catches leases whose
// maintainer matches the parent.
func TestComparisonOnSyntheticWorld(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 51, Scale: 0.01})
	res := w.Pipeline().Infer()
	base := Infer(w.Whois, Options{})
	if len(base) == 0 {
		t.Fatal("baseline produced nothing")
	}
	cmp := Compare(base, res)
	if cmp.Total() == 0 {
		t.Fatal("no common leaves")
	}
	if cmp.Both == 0 {
		t.Error("methods never agree on a lease")
	}
	if cmp.OnlyBaseline == 0 {
		t.Error("baseline catches no extra (inactive) leases")
	}
	if a := cmp.Agreement(); a < 0.5 {
		t.Errorf("agreement = %.2f, suspiciously low", a)
	}

	// Inactive leases specifically: Unused in our result, leased for the
	// baseline (its documented advantage).
	truth := w.TruthByPrefix()
	caught := 0
	baseByPrefix := make(map[netutil.Prefix]bool, len(base))
	for _, b := range base {
		baseByPrefix[b.Prefix] = b.Leased
	}
	for p, tr := range truth {
		if tr.Inactive && baseByPrefix[p] {
			caught++
		}
	}
	if caught == 0 {
		t.Error("baseline caught no inactive leases")
	}
}

func TestCompareEmptyInputs(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 5, Scale: 0.005})
	res := w.Pipeline().Infer()
	if c := Compare(nil, res); c.Total() != 0 {
		t.Fatal("comparison from empty baseline")
	}
}
