// Package eval curates the reference dataset of the paper's §5.3 and
// scores inference results against it (§6.2, Table 2).
//
// Positives come from RIR-registered IP brokers: broker names are matched
// to WHOIS organisations (exactly or fuzzily), the organisations'
// maintainer handles are collected, and every address block carrying one
// of those maintainers becomes a broker-managed prefix. Blocks known not
// to be leased (brokers that also act as ISPs) are excluded via a manual
// curation list. Negatives are the announced prefixes maintained by five
// residential ISPs.
package eval

import (
	"sort"

	"ipleasing/internal/bgp"
	"ipleasing/internal/brokers"
	"ipleasing/internal/core"
	"ipleasing/internal/metrics"
	"ipleasing/internal/netutil"
	"ipleasing/internal/whois"
)

// ISPRef names one negative-set ISP.
type ISPRef struct {
	Registry whois.Registry
	Name     string
}

// Inputs are the datasets the curation step consumes.
type Inputs struct {
	Whois      *whois.Dataset
	Table      *bgp.Table
	Brokers    *brokers.List
	Exclusions []netutil.Prefix // broker-managed but not leased (manual filter)
	ISPs       []ISPRef
	// MaxPrefixLen drops hyper-specifics, mirroring the inference tree.
	// 0 means 24.
	MaxPrefixLen uint8
}

func (in Inputs) maxLen() uint8 {
	if in.MaxPrefixLen == 0 {
		return 24
	}
	return in.MaxPrefixLen
}

// Reference is the curated evaluation dataset.
type Reference struct {
	Positives []netutil.Prefix // broker-managed, believed leased
	Negatives []netutil.Prefix // ISP-managed, announced, believed non-leased

	// Curation statistics, for the §6.2 narrative.
	BrokersExact      int // brokers matched to orgs by identical key
	BrokersFuzzy      int // matched through name variations
	BrokersUnmatched  int // absent from the databases
	MaintainerHandles int // distinct maintainer handles collected
	BrokerPrefixes    int // broker-managed prefixes before filtering
	Excluded          int // prefixes removed by the manual filter
}

// Curate builds the reference dataset.
func Curate(in Inputs) *Reference {
	ref := &Reference{}
	excluded := make(map[netutil.Prefix]bool, len(in.Exclusions))
	for _, p := range in.Exclusions {
		excluded[p] = true
	}

	seenBroker := make(map[string]brokers.MatchKind) // broker name → best match
	handlesByReg := make(map[whois.Registry]map[string]bool)

	for _, reg := range whois.Registries {
		db, ok := in.Whois.DBs[reg]
		if !ok {
			continue
		}
		handles := make(map[string]bool)
		for _, m := range brokers.MatchOrgs(in.Brokers, db) {
			if k, seen := seenBroker[m.Broker.Name]; !seen || m.Kind > k {
				seenBroker[m.Broker.Name] = m.Kind
			}
			for _, h := range m.Org.MntRef {
				handles[h] = true
			}
		}
		handlesByReg[reg] = handles
		ref.MaintainerHandles += len(handles)
	}
	for _, b := range in.Brokers.All() {
		switch seenBroker[b.Name] {
		case brokers.ExactMatch:
			ref.BrokersExact++
		case brokers.FuzzyMatch:
			ref.BrokersFuzzy++
		default:
			ref.BrokersUnmatched++
		}
	}

	// Broker-managed prefixes → positives after the manual filter.
	for _, reg := range whois.Registries {
		db, ok := in.Whois.DBs[reg]
		if !ok {
			continue
		}
		handles := handlesByReg[reg]
		if len(handles) == 0 {
			continue
		}
		for _, inet := range db.InetNums {
			if !anyHandle(inet.MntBy, handles) {
				continue
			}
			for _, p := range inet.Prefixes() {
				if p.Len > in.maxLen() {
					continue
				}
				ref.BrokerPrefixes++
				if excluded[p] {
					ref.Excluded++
					continue
				}
				ref.Positives = append(ref.Positives, p)
			}
		}
	}

	// ISP negatives: maintained by the ISP's org handles and announced.
	for _, isp := range in.ISPs {
		db, ok := in.Whois.DBs[isp.Registry]
		if !ok {
			continue
		}
		handles := make(map[string]bool)
		for _, org := range db.Orgs {
			if brokers.Match(isp.Name, org.Name) == brokers.ExactMatch {
				for _, h := range org.MntRef {
					handles[h] = true
				}
			}
		}
		if len(handles) == 0 {
			continue
		}
		for _, inet := range db.InetNums {
			if inet.Portability != whois.NonPortable || !anyHandle(inet.MntBy, handles) {
				continue
			}
			for _, p := range inet.Prefixes() {
				if p.Len > in.maxLen() {
					continue
				}
				if in.Table != nil && !in.Table.HasPrefix(p) {
					continue // negatives must be originated in BGP
				}
				ref.Negatives = append(ref.Negatives, p)
			}
		}
	}
	netutil.SortPrefixes(ref.Positives)
	netutil.SortPrefixes(ref.Negatives)
	return ref
}

func anyHandle(mnts []string, handles map[string]bool) bool {
	for _, m := range mnts {
		if handles[m] {
			return true
		}
	}
	return false
}

// Size returns the total number of validated prefixes.
func (r *Reference) Size() int { return len(r.Positives) + len(r.Negatives) }

// Outcome details one scored prefix, for error analysis.
type Outcome struct {
	Prefix   netutil.Prefix
	Actual   bool // true = actually leased (positive label)
	Inferred bool
	Category core.Category // inferred category; Orphan-like zero if absent
	InOutput bool          // false when the inference never saw the prefix (legacy)
}

// Evaluation is the scored result.
type Evaluation struct {
	Confusion metrics.Confusion
	Outcomes  []Outcome
}

// FalseNegativesByCategory breaks down FNs by inferred category, with
// "absent" (legacy) counted under Orphan.
func (e *Evaluation) FalseNegativesByCategory() map[core.Category]int {
	out := make(map[core.Category]int)
	for _, o := range e.Outcomes {
		if o.Actual && !o.Inferred {
			out[o.Category]++
		}
	}
	return out
}

// Evaluate scores an inference result against the reference dataset.
func Evaluate(ref *Reference, res *core.Result) *Evaluation {
	return EvaluateAugmented(ref, res, nil)
}

// EvaluateAugmented scores a result with additional leased verdicts from
// methodology extensions (e.g. the legacy-space inference): any prefix in
// extraLeased counts as inferred leased even if the core pipeline never
// classified it.
func EvaluateAugmented(ref *Reference, res *core.Result, extraLeased []netutil.Prefix) *Evaluation {
	infByPrefix := make(map[netutil.Prefix]core.Inference)
	for _, inf := range res.All() {
		infByPrefix[inf.Prefix] = inf
	}
	extra := make(map[netutil.Prefix]bool, len(extraLeased))
	for _, p := range extraLeased {
		extra[p] = true
	}
	ev := &Evaluation{}
	score := func(p netutil.Prefix, actual bool) {
		inf, ok := infByPrefix[p]
		o := Outcome{Prefix: p, Actual: actual, InOutput: ok}
		if ok {
			o.Inferred = inf.Category.Leased()
			o.Category = inf.Category
		} else {
			o.Category = core.Orphan
		}
		if extra[p] {
			o.Inferred = true
		}
		ev.Confusion.Record(actual, o.Inferred)
		ev.Outcomes = append(ev.Outcomes, o)
	}
	for _, p := range ref.Positives {
		score(p, true)
	}
	for _, p := range ref.Negatives {
		score(p, false)
	}
	sort.Slice(ev.Outcomes, func(i, j int) bool {
		return ev.Outcomes[i].Prefix.Compare(ev.Outcomes[j].Prefix) < 0
	})
	return ev
}
