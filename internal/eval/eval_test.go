package eval

import (
	"testing"

	"ipleasing/internal/brokers"
	"ipleasing/internal/core"
	"ipleasing/internal/synth"
	"ipleasing/internal/whois"
)

func world(t *testing.T) (*synth.World, *core.Result) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 11, Scale: 0.01})
	return w, w.Pipeline().Infer()
}

func inputsFor(w *synth.World) Inputs {
	isps := make([]ISPRef, 0, len(w.EvalISPs))
	for _, isp := range w.EvalISPs {
		isps = append(isps, ISPRef{Registry: isp.Registry, Name: isp.Name})
	}
	return Inputs{
		Whois:      w.Whois,
		Table:      w.Table(),
		Brokers:    w.Brokers,
		Exclusions: w.Exclusions,
		ISPs:       isps,
	}
}

func TestCurateFindsBothLabelSets(t *testing.T) {
	w, _ := world(t)
	ref := Curate(inputsFor(w))
	if len(ref.Positives) == 0 {
		t.Fatal("no positives curated")
	}
	if len(ref.Negatives) == 0 {
		t.Fatal("no negatives curated")
	}
	if ref.BrokersExact == 0 || ref.BrokersFuzzy == 0 || ref.BrokersUnmatched == 0 {
		t.Fatalf("broker matching stats: exact=%d fuzzy=%d unmatched=%d",
			ref.BrokersExact, ref.BrokersFuzzy, ref.BrokersUnmatched)
	}
	if ref.MaintainerHandles == 0 {
		t.Fatal("no maintainer handles")
	}
	if ref.Excluded == 0 {
		t.Fatal("manual filter removed nothing (broker-ISP prefixes missing)")
	}
	if ref.BrokerPrefixes != len(ref.Positives)+ref.Excluded {
		t.Fatalf("accounting: %d != %d + %d", ref.BrokerPrefixes, len(ref.Positives), ref.Excluded)
	}
	if ref.Size() != len(ref.Positives)+len(ref.Negatives) {
		t.Fatal("Size wrong")
	}
}

// TestTable2Shape verifies the confusion-matrix shape of the paper's
// Table 2: high precision, recall dragged down by inactive leases, false
// positives driven by unmodelled subsidiaries.
func TestTable2Shape(t *testing.T) {
	w, res := world(t)
	ref := Curate(inputsFor(w))
	ev := Evaluate(ref, res)
	c := ev.Confusion

	if c.Total() != ref.Size() {
		t.Fatalf("scored %d of %d", c.Total(), ref.Size())
	}
	if p := c.Precision(); p < 0.9 {
		t.Errorf("precision = %.3f, want high (paper 0.98)", p)
	}
	if r := c.Recall(); r < 0.6 || r > 0.95 {
		t.Errorf("recall = %.3f, want ~0.82", r)
	}
	if c.FP == 0 {
		t.Error("no false positives (subsidiary effect missing)")
	}
	if c.FN == 0 {
		t.Error("no false negatives (inactive leases missing)")
	}

	// False negatives must be dominated by Unused (inactive leases),
	// with the rest absent-from-output legacy blocks — §6.2's breakdown.
	byCat := ev.FalseNegativesByCategory()
	if byCat[core.Unused] == 0 {
		t.Error("no unused-classified FNs")
	}
	legacyFNs := 0
	for _, o := range ev.Outcomes {
		if o.Actual && !o.Inferred && !o.InOutput {
			legacyFNs++
		}
	}
	if legacyFNs == 0 {
		t.Error("no legacy FNs (absent from inference output)")
	}
	if byCat[core.Unused]+legacyFNs != c.FN {
		t.Errorf("FN breakdown %d+%d != %d", byCat[core.Unused], legacyFNs, c.FN)
	}
}

// TestGroundTruthAgreement cross-checks the curated labels against the
// generator's planted truth.
func TestGroundTruthAgreement(t *testing.T) {
	w, _ := world(t)
	ref := Curate(inputsFor(w))
	truth := w.TruthByPrefix()
	for _, p := range ref.Positives {
		tr, ok := truth[p]
		if !ok {
			t.Fatalf("positive %v not in ground truth", p)
		}
		if !tr.ActuallyLeased {
			t.Errorf("positive %v is not actually leased", p)
		}
		if !tr.BrokerManaged {
			t.Errorf("positive %v is not broker-managed", p)
		}
	}
	for _, p := range ref.Negatives {
		if tr, ok := truth[p]; ok && tr.ActuallyLeased {
			t.Errorf("negative %v is actually leased", p)
		}
	}
}

func TestCurateEmptyInputs(t *testing.T) {
	ref := Curate(Inputs{Whois: whois.NewDataset(), Brokers: &brokers.List{}})
	if ref.Size() != 0 {
		t.Fatal("empty world produced labels")
	}
	ev := Evaluate(ref, &core.Result{Regions: map[whois.Registry]*core.RegionResult{}})
	if ev.Confusion.Total() != 0 {
		t.Fatal("empty evaluation non-empty")
	}
}
