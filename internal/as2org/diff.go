package as2org

// DiffMaps returns the ASNs whose organisation assignment differs
// between the two maps: mapped in only one, or mapped to different org
// ids. A nil map compares as empty.
//
// Org display names and countries are ignored: Siblings — the only query
// the inference core issues — depends solely on the ASN→org assignment,
// so the incremental-reload planner treats name/country edits as free.
func DiffMaps(a, b *Map) map[uint32]bool {
	out := make(map[uint32]bool)
	var aas, bas map[uint32]string
	if a != nil {
		aas = a.asOrg
	}
	if b != nil {
		bas = b.asOrg
	}
	for asn, org := range aas {
		if org2, ok := bas[asn]; !ok || org2 != org {
			out[asn] = true
		}
	}
	for asn := range bas {
		if _, ok := aas[asn]; !ok {
			out[asn] = true
		}
	}
	return out
}
