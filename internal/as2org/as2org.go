// Package as2org reads and writes the CAIDA AS-to-Organization mapping
// dataset format and answers the org-membership queries the inference uses
// to treat sibling ASes (same organisation, different AS numbers) as
// related (paper §5.2, §6.2).
//
// The file format is the published CAIDA pipe format, two line kinds:
//
//	<asn>|<changed>|<aut_name>|<org_id>|<opaque_id>|<source>
//	<org_id>|<changed>|<org_name>|<country>|<source>
//
// with '#' comment lines. AS lines are distinguished by a numeric first
// field.
package as2org

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ipleasing/internal/diag"
)

// Map is the AS→organisation mapping.
type Map struct {
	asOrg   map[uint32]string // ASN → org id
	orgName map[string]string // org id → display name
	orgCC   map[string]string // org id → country
}

// New returns an empty Map.
func New() *Map {
	return &Map{
		asOrg:   make(map[uint32]string),
		orgName: make(map[string]string),
		orgCC:   make(map[string]string),
	}
}

// AddAS records that asn belongs to org id.
func (m *Map) AddAS(asn uint32, orgID string) { m.asOrg[asn] = orgID }

// AddOrg records an organisation's display name and country.
func (m *Map) AddOrg(orgID, name, country string) {
	m.orgName[orgID] = name
	m.orgCC[orgID] = country
}

// OrgOf returns the org id owning asn.
func (m *Map) OrgOf(asn uint32) (string, bool) {
	o, ok := m.asOrg[asn]
	return o, ok
}

// OrgName returns the display name of an org id (the id itself if
// unnamed).
func (m *Map) OrgName(orgID string) string {
	if n, ok := m.orgName[orgID]; ok && n != "" {
		return n
	}
	return orgID
}

// Country returns the org's registered country code.
func (m *Map) Country(orgID string) string { return m.orgCC[orgID] }

// Siblings reports whether two ASNs map to the same organisation.
func (m *Map) Siblings(a, b uint32) bool {
	oa, oka := m.asOrg[a]
	ob, okb := m.asOrg[b]
	return oka && okb && oa == ob
}

// ASNs returns every mapped ASN in ascending order.
func (m *Map) ASNs() []uint32 {
	out := make([]uint32, 0, len(m.asOrg))
	for a := range m.asOrg {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumASes returns the number of mapped ASNs.
func (m *Map) NumASes() int { return len(m.asOrg) }

// Parse reads the CAIDA pipe format.
func Parse(r io.Reader) (*Map, error) {
	return ParseWith(r, nil)
}

// ParseWith is Parse threaded through a load-diagnostics collector. A nil
// collector (or strict options) keeps Parse's fail-fast behavior; in
// lenient mode malformed lines are skipped and accounted.
func ParseWith(r io.Reader, c *diag.Collector) (*Map, error) {
	m := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 4 {
			if err := c.Skip(lineNum, -1, fmt.Errorf("as2org: line %d: want >=4 fields, got %d", lineNum, len(fields))); err != nil {
				return nil, err
			}
			continue
		}
		if asn, err := strconv.ParseUint(fields[0], 10, 32); err == nil {
			// AS line: asn|changed|aut_name|org_id|opaque_id|source
			m.AddAS(uint32(asn), fields[3])
			c.Parsed()
			continue
		}
		// Org line: org_id|changed|org_name|country|source
		cc := ""
		if len(fields) >= 4 {
			cc = fields[3]
		}
		m.AddOrg(fields[0], fields[2], cc)
		c.Parsed()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Write renders the map in the CAIDA pipe format: org lines then AS lines,
// each section preceded by its format comment.
func Write(w io.Writer, m *Map) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# format: org_id|changed|org_name|country|source")
	orgIDs := make([]string, 0, len(m.orgName))
	for id := range m.orgName {
		orgIDs = append(orgIDs, id)
	}
	sort.Strings(orgIDs)
	for _, id := range orgIDs {
		fmt.Fprintf(bw, "%s|20240401|%s|%s|SYNTH\n", id, m.orgName[id], m.orgCC[id])
	}
	fmt.Fprintln(bw, "# format: aut|changed|aut_name|org_id|opaque_id|source")
	for _, asn := range m.ASNs() {
		org := m.asOrg[asn]
		fmt.Fprintf(bw, "%d|20240401|AS%d|%s|_|SYNTH\n", asn, asn, org)
	}
	return bw.Flush()
}
