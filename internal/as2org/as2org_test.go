package as2org

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `# format: org_id|changed|org_name|country|source
ORG-GCI|20240101|GCI Network|SE|RIPE
ORG-VOD1|20240101|Vodafone GmbH|DE|RIPE
# format: aut|changed|aut_name|org_id|opaque_id|source
8851|20240101|GCI-AS|ORG-GCI|_|RIPE
3209|20240101|VODANET|ORG-VOD1|_|RIPE
12302|20240101|VODAFONE-RO|ORG-VOD1|_|RIPE
`

func TestParse(t *testing.T) {
	m, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumASes() != 3 {
		t.Fatalf("NumASes = %d", m.NumASes())
	}
	if org, ok := m.OrgOf(8851); !ok || org != "ORG-GCI" {
		t.Fatalf("OrgOf(8851) = %q %v", org, ok)
	}
	if _, ok := m.OrgOf(99999); ok {
		t.Fatal("unknown ASN mapped")
	}
	if m.OrgName("ORG-VOD1") != "Vodafone GmbH" {
		t.Fatalf("OrgName = %q", m.OrgName("ORG-VOD1"))
	}
	if m.OrgName("ORG-NONE") != "ORG-NONE" {
		t.Fatal("unknown org name should echo id")
	}
	if m.Country("ORG-GCI") != "SE" {
		t.Fatalf("Country = %q", m.Country("ORG-GCI"))
	}
	if !m.Siblings(3209, 12302) {
		t.Fatal("Vodafone siblings not detected")
	}
	if m.Siblings(8851, 3209) {
		t.Fatal("cross-org siblings detected")
	}
	if m.Siblings(8851, 424242) {
		t.Fatal("unmapped ASN sibling")
	}
	asns := m.ASNs()
	if len(asns) != 3 || asns[0] != 3209 || asns[2] != 12302 {
		t.Fatalf("ASNs = %v", asns)
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("justone|field\n")); err == nil {
		t.Fatal("short line accepted")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	m, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if back.NumASes() != m.NumASes() {
		t.Fatal("AS count changed")
	}
	for _, asn := range m.ASNs() {
		a, _ := m.OrgOf(asn)
		b, _ := back.OrgOf(asn)
		if a != b {
			t.Fatalf("ASN %d: %q != %q", asn, a, b)
		}
	}
	if back.OrgName("ORG-VOD1") != "Vodafone GmbH" || back.Country("ORG-VOD1") != "DE" {
		t.Fatal("org metadata lost")
	}
}
