package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// backend serves 200s on the three fleet endpoints and counts hits.
func backend(lookups, batches, tables *atomic.Int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", func(w http.ResponseWriter, r *http.Request) {
		lookups.Add(1)
		w.Write([]byte(`{"found": false}`))
	})
	mux.HandleFunc("/lookup/batch", func(w http.ResponseWriter, r *http.Request) {
		batches.Add(1)
		w.Write([]byte(`{"results": []}`))
	})
	mux.HandleFunc("/table1", func(w http.ResponseWriter, r *http.Request) {
		tables.Add(1)
		w.Write([]byte("| Table 1 |"))
	})
	return mux
}

func TestGeneratorDrivesMixedTraffic(t *testing.T) {
	var lookups, batches, tables atomic.Int64
	srv := httptest.NewServer(backend(&lookups, &batches, &tables))
	defer srv.Close()

	g, err := New(Config{Targets: []string{srv.URL}, Concurrency: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	rep := g.Run(ctx)

	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d against a healthy backend: %+v", rep.Errors, rep.ErrorEvents)
	}
	if lookups.Load() == 0 || batches.Load() == 0 || tables.Load() == 0 {
		t.Errorf("mix not exercised: lookup=%d batch=%d table1=%d",
			lookups.Load(), batches.Load(), tables.Load())
	}
	// Default mix is lookup-heavy.
	if lookups.Load() <= tables.Load() {
		t.Errorf("mix weights ignored: lookup=%d <= table1=%d", lookups.Load(), tables.Load())
	}
	for kind, st := range rep.ByOp {
		if st.Count > 0 && (st.P50 <= 0 || st.Max < st.P50 || st.P99 < st.P50) {
			t.Errorf("%s: implausible quantiles %+v", kind, st)
		}
	}
}

func TestGeneratorPacesQPS(t *testing.T) {
	var lookups, batches, tables atomic.Int64
	srv := httptest.NewServer(backend(&lookups, &batches, &tables))
	defer srv.Close()

	g, err := New(Config{Targets: []string{srv.URL}, Concurrency: 4, QPS: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	rep := g.Run(ctx)
	// 50 QPS for 1s: allow wide slack for CI jitter, but unthrottled
	// closed-loop against a local server would be thousands.
	if rep.Requests > 80 {
		t.Errorf("QPS=50 for 1s issued %d requests", rep.Requests)
	}
	if rep.Requests < 10 {
		t.Errorf("pacing starved the workers: %d requests", rep.Requests)
	}
}

func TestGeneratorRecordsTimestampedErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/lookup") {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	before := time.Now()
	g, err := New(Config{Targets: []string{srv.URL}, Concurrency: 2, Seed: 3, MaxErrorEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	rep := g.Run(ctx)

	if rep.Errors == 0 {
		t.Fatal("no errors recorded against a 500ing backend")
	}
	if rep.ErrorRate() <= 0 {
		t.Errorf("ErrorRate = %v, want > 0", rep.ErrorRate())
	}
	if len(rep.ErrorEvents) == 0 {
		t.Fatal("no error events retained")
	}
	if len(rep.ErrorEvents) > 16 {
		t.Errorf("event cap not applied: %d events", len(rep.ErrorEvents))
	}
	if rep.Errors > 16 && rep.ErrorEventsDropped == 0 {
		t.Errorf("%d errors with cap 16 but no drops counted", rep.Errors)
	}
	for _, ev := range rep.ErrorEvents {
		if ev.At.Before(before) || ev.At.After(time.Now()) {
			t.Errorf("event timestamp %v outside run window", ev.At)
		}
		if ev.Status != http.StatusInternalServerError {
			t.Errorf("event status = %d, want 500", ev.Status)
		}
		if ev.Op != OpLookup && ev.Op != OpBatch {
			t.Errorf("500s were only served under /lookup*, event op = %q", ev.Op)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := New(Config{Targets: []string{"http://x"}, Mix: []Op{{Kind: OpLookup, Weight: 0}}}); err == nil {
		t.Error("zero-weight mix accepted")
	}
	if _, err := New(Config{Targets: []string{"http://x"}, Mix: []Op{{Kind: OpLookup, Weight: -1}}}); err == nil {
		t.Error("negative weight accepted")
	}
}
