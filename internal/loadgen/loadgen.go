// Package loadgen is a closed-loop workload generator for the lease
// lookup fleet: a pool of workers drives a seeded mix of /lookup,
// /lookup/batch, and /table1 traffic at a configurable aggregate rate
// against one or more targets, recording per-op latency samples and
// timestamped error events. The chaos harness runs it for the whole
// storm and hands its report to the invariant checker, which needs the
// error timestamps to decide whether each failure fell inside or
// outside a scheduled fault window.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipleasing/internal/telemetry"
)

// Op kinds in the default traffic mix.
const (
	OpLookup = "lookup"
	OpBatch  = "batch"
	OpTable1 = "table1"
)

// Op weights one operation kind in the mix.
type Op struct {
	Kind   string
	Weight int
}

// DefaultMix mirrors the expected production shape: mostly single
// lookups, some batches, an occasional table scrape.
var DefaultMix = []Op{
	{Kind: OpLookup, Weight: 8},
	{Kind: OpBatch, Weight: 3},
	{Kind: OpTable1, Weight: 1},
}

// Config parameterizes a Generator.
type Config struct {
	// Targets are the base URLs load is spread across (round-robin per
	// worker). Required.
	Targets []string
	// QPS is the aggregate request rate across all workers; 0 means
	// unthrottled closed-loop (each worker fires as fast as responses
	// return).
	QPS float64
	// Concurrency is the worker count; 0 means 4.
	Concurrency int
	// Seed drives op selection and query choice; the same seed yields
	// the same per-worker op sequence.
	Seed int64
	// Mix is the op mix; nil means DefaultMix.
	Mix []Op
	// IPs is the pool single lookups and batches draw from; nil means a
	// generated 10.0.0.0/16 spread.
	IPs []string
	// Client is the HTTP client; nil gets a 5s-timeout client.
	Client *http.Client
	// MaxErrorEvents caps the retained error log; 0 means 1024.
	MaxErrorEvents int
	// TraceEvery forces every Nth request to carry a sampled W3C
	// traceparent header, making the server trace it regardless of its
	// own head-sampling rate. The trace ID is recorded on the request's
	// error event (if any) and on its latency-outlier sample, so slow or
	// failed requests can be joined against the fleet's /debug/traces.
	// 0 disables forced tracing. IDs derive from Seed.
	TraceEvery int
}

// ErrorEvent is one failed request, timestamped for fault-window
// correlation.
type ErrorEvent struct {
	At     time.Time `json:"at"`
	Target string    `json:"target"`
	Op     string    `json:"op"`
	Status int       `json:"status,omitempty"`
	Err    string    `json:"err,omitempty"`
	// TraceID is set when the request carried a forced traceparent (see
	// Config.TraceEvery): the join key into the server's /debug/traces.
	TraceID string `json:"trace_id,omitempty"`
}

// OutlierSample is one of the slowest traced requests of the run. Only
// requests that carried a forced traceparent are eligible, so every
// sample's server-side span tree is retrievable from /debug/traces by
// its trace ID.
type OutlierSample struct {
	TraceID  string        `json:"trace_id"`
	Op       string        `json:"op"`
	Target   string        `json:"target"`
	Duration time.Duration `json:"duration_ns"`
	At       time.Time     `json:"at"`
}

// OpStats aggregates one op kind across the run.
type OpStats struct {
	Count  int64         `json:"count"`
	Errors int64         `json:"errors"`
	P50    time.Duration `json:"p50_ns"`
	P90    time.Duration `json:"p90_ns"`
	P99    time.Duration `json:"p99_ns"`
	Max    time.Duration `json:"max_ns"`
}

// Report is the run summary the harness embeds in its output.
type Report struct {
	Started     time.Time           `json:"started"`
	Ended       time.Time           `json:"ended"`
	Requests    int64               `json:"requests"`
	Errors      int64               `json:"errors"`
	ByOp        map[string]*OpStats `json:"by_op"`
	ErrorEvents []ErrorEvent        `json:"error_events,omitempty"`
	// ErrorEventsDropped counts events past the MaxErrorEvents cap, so
	// a truncated log is never mistaken for a short one.
	ErrorEventsDropped int64 `json:"error_events_dropped,omitempty"`
	// Outliers are the slowest traced requests, slowest first (at most
	// maxOutliers), present only with Config.TraceEvery set.
	Outliers []OutlierSample `json:"outliers,omitempty"`
}

// ErrorRate returns errors/requests, 0 for an empty run.
func (r *Report) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// opRecorder accumulates latency samples for one op kind. Samples are
// capped; past the cap we keep counting but stop sampling (good enough
// for smoke-length runs, which stay under the cap anyway).
type opRecorder struct {
	mu      sync.Mutex
	count   int64
	errors  int64
	samples []time.Duration
}

const maxSamples = 1 << 17

func (o *opRecorder) observe(d time.Duration, ok bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.count++
	if !ok {
		o.errors++
	}
	if len(o.samples) < maxSamples {
		o.samples = append(o.samples, d)
	}
}

func (o *opRecorder) stats() *OpStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := &OpStats{Count: o.count, Errors: o.errors}
	if len(o.samples) == 0 {
		return st
	}
	s := make([]time.Duration, len(o.samples))
	copy(s, o.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	st.P50, st.P90, st.P99, st.Max = q(0.50), q(0.90), q(0.99), s[len(s)-1]
	return st
}

// Generator drives the workload. One Generator is good for one Run.
type Generator struct {
	cfg    Config
	client *http.Client
	mix    []Op
	ips    []string
	ids    *telemetry.IDGen // nil unless TraceEvery > 0

	requests atomic.Int64
	errors   atomic.Int64
	seq      atomic.Int64 // request ordinal for the TraceEvery stride

	mu        sync.Mutex
	byOp      map[string]*opRecorder
	events    []ErrorEvent
	dropped   int64
	maxEvents int
	outliers  []OutlierSample
}

// maxOutliers bounds the retained slowest-traced-request samples.
const maxOutliers = 8

// New validates cfg and returns a ready Generator.
func New(cfg Config) (*Generator, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix
	}
	total := 0
	for _, op := range mix {
		if op.Weight < 0 {
			return nil, fmt.Errorf("loadgen: negative weight for %s", op.Kind)
		}
		total += op.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("loadgen: zero-weight mix")
	}
	ips := cfg.IPs
	if len(ips) == 0 {
		for i := 0; i < 256; i++ {
			ips = append(ips, fmt.Sprintf("10.0.%d.%d", i%8, i))
		}
	}
	maxEvents := cfg.MaxErrorEvents
	if maxEvents <= 0 {
		maxEvents = 1024
	}
	g := &Generator{
		cfg: cfg, client: client, mix: mix, ips: ips,
		byOp:      map[string]*opRecorder{},
		maxEvents: maxEvents,
	}
	if cfg.TraceEvery > 0 {
		g.ids = telemetry.NewIDGen(cfg.Seed)
	}
	return g, nil
}

// nextTrace decides whether the next request is force-traced, returning
// its sampled traceparent header value and bare trace ID ("" when not).
func (g *Generator) nextTrace() (header, traceID string) {
	if g.ids == nil {
		return "", ""
	}
	if g.seq.Add(1)%int64(g.cfg.TraceEvery) != 0 {
		return "", ""
	}
	sc := telemetry.SpanContext{
		TraceID: g.ids.TraceID(),
		SpanID:  g.ids.SpanID(),
		Sampled: true,
	}
	return sc.Traceparent(), sc.TraceID.String()
}

// noteOutlier retains the slowest traced requests, slowest first.
func (g *Generator) noteOutlier(s OutlierSample) {
	g.mu.Lock()
	defer g.mu.Unlock()
	i := sort.Search(len(g.outliers), func(i int) bool {
		return g.outliers[i].Duration < s.Duration
	})
	if i >= maxOutliers {
		return
	}
	g.outliers = append(g.outliers, OutlierSample{})
	copy(g.outliers[i+1:], g.outliers[i:])
	g.outliers[i] = s
	if len(g.outliers) > maxOutliers {
		g.outliers = g.outliers[:maxOutliers]
	}
}

func (g *Generator) recorder(kind string) *opRecorder {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.byOp[kind]
	if r == nil {
		r = &opRecorder{}
		g.byOp[kind] = r
	}
	return r
}

func (g *Generator) noteError(ev ErrorEvent) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.events) >= g.maxEvents {
		g.dropped++
		return
	}
	g.events = append(g.events, ev)
}

// Run drives load until ctx is done, then returns the report. Workers
// are closed-loop: each waits for its response (or error) before the
// next request; with QPS set, a shared pacing tick bounds the
// aggregate rate from above.
func (g *Generator) Run(ctx context.Context) *Report {
	started := time.Now()
	var pace <-chan time.Time
	var ticker *time.Ticker
	if g.cfg.QPS > 0 {
		ticker = time.NewTicker(time.Duration(float64(time.Second) / g.cfg.QPS))
		defer ticker.Stop()
		pace = ticker.C
	}
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Per-worker RNG: op and query selection is deterministic
			// given (Seed, worker), independent of scheduling order.
			rng := rand.New(rand.NewSource(g.cfg.Seed + int64(worker)*7919))
			for i := 0; ; i++ {
				if pace != nil {
					select {
					case <-ctx.Done():
						return
					case <-pace:
					}
				} else if ctx.Err() != nil {
					return
				}
				target := g.cfg.Targets[(worker+i)%len(g.cfg.Targets)]
				g.do(ctx, rng, target)
			}
		}(w)
	}
	wg.Wait()
	rep := &Report{
		Started:  started,
		Ended:    time.Now(),
		Requests: g.requests.Load(),
		Errors:   g.errors.Load(),
		ByOp:     map[string]*OpStats{},
	}
	g.mu.Lock()
	for kind, rec := range g.byOp {
		rep.ByOp[kind] = rec.stats()
	}
	rep.ErrorEvents = append(rep.ErrorEvents, g.events...)
	rep.ErrorEventsDropped = g.dropped
	rep.Outliers = append(rep.Outliers, g.outliers...)
	g.mu.Unlock()
	return rep
}

func (g *Generator) pickOp(rng *rand.Rand) string {
	total := 0
	for _, op := range g.mix {
		total += op.Weight
	}
	n := rng.Intn(total)
	for _, op := range g.mix {
		if n < op.Weight {
			return op.Kind
		}
		n -= op.Weight
	}
	return g.mix[0].Kind
}

func (g *Generator) do(ctx context.Context, rng *rand.Rand, target string) {
	kind := g.pickOp(rng)
	traceparent, traceID := g.nextTrace()
	var (
		resp *http.Response
		err  error
	)
	start := time.Now()
	switch kind {
	case OpLookup:
		ip := g.ips[rng.Intn(len(g.ips))]
		resp, err = g.get(ctx, target+"/lookup?ip="+ip, traceparent)
	case OpBatch:
		var buf bytes.Buffer
		buf.WriteString(`{"ips": [`)
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "%q", g.ips[rng.Intn(len(g.ips))])
		}
		buf.WriteString(`]}`)
		resp, err = g.post(ctx, target+"/lookup/batch", &buf, traceparent)
	default: // OpTable1
		resp, err = g.get(ctx, target+"/table1", traceparent)
	}
	elapsed := time.Since(start)

	// A request cut by the run winding down is shutdown, not a service
	// error: don't let the harness's own stop skew the error budget.
	if err != nil && ctx.Err() != nil {
		if resp != nil {
			resp.Body.Close()
		}
		return
	}

	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	g.requests.Add(1)
	if !ok {
		g.errors.Add(1)
		ev := ErrorEvent{At: start, Target: target, Op: kind, TraceID: traceID}
		if err != nil {
			ev.Err = err.Error()
		} else {
			ev.Status = resp.StatusCode
		}
		g.noteError(ev)
	}
	if traceID != "" {
		g.noteOutlier(OutlierSample{
			TraceID: traceID, Op: kind, Target: target,
			Duration: elapsed, At: start,
		})
	}
	g.recorder(kind).observe(elapsed, ok)
}

func (g *Generator) get(ctx context.Context, url, traceparent string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if traceparent != "" {
		req.Header.Set(telemetry.TraceparentHeader, traceparent)
	}
	return g.client.Do(req)
}

func (g *Generator) post(ctx context.Context, url string, body io.Reader, traceparent string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(telemetry.TraceparentHeader, traceparent)
	}
	return g.client.Do(req)
}
