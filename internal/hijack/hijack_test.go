package hijack

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseWrite(t *testing.T) {
	in := "# serial hijackers\nAS197426\n12345\n\nAS3266\n"
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(197426) || !s.Contains(12345) || !s.Contains(3266) || s.Contains(1) {
		t.Fatal("Contains wrong")
	}
	asns := s.ASNs()
	if len(asns) != 3 || asns[0] != 3266 || asns[2] != 197426 {
		t.Fatalf("ASNs = %v", asns)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil || back.Len() != 3 || !back.Contains(12345) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse(strings.NewReader("ASfoo\n")); err == nil {
		t.Fatal("bad ASN accepted")
	}
}

func TestNewDeduplicates(t *testing.T) {
	s := New([]uint32{5, 5, 6})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}
