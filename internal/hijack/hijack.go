// Package hijack manages the serial-hijacker AS list the paper overlaps
// with lease originators (§6.3). The list mirrors the inferred serial
// BGP hijackers of Testart et al. (IMC 2019): ASes with persistently
// hijack-like announcement behaviour in the global routing table.
//
// The on-disk form is one ASN per line (with or without an "AS" prefix),
// '#' comments allowed.
package hijack

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Set is a set of serial-hijacker ASNs.
type Set struct {
	asns map[uint32]bool
}

// New builds a Set from asns.
func New(asns []uint32) *Set {
	s := &Set{asns: make(map[uint32]bool, len(asns))}
	for _, a := range asns {
		s.asns[a] = true
	}
	return s
}

// Contains reports whether asn is a listed serial hijacker.
func (s *Set) Contains(asn uint32) bool { return s.asns[asn] }

// Len returns the number of listed ASNs.
func (s *Set) Len() int { return len(s.asns) }

// ASNs returns the listed ASNs in ascending order.
func (s *Set) ASNs() []uint32 {
	out := make([]uint32, 0, len(s.asns))
	for a := range s.asns {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parse reads an ASN-per-line list.
func Parse(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	var asns []uint32
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimPrefix(strings.ToUpper(line), "AS")
		v, err := strconv.ParseUint(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("hijack: line %d: bad ASN %q", lineNum, sc.Text())
		}
		asns = append(asns, uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(asns), nil
}

// Write renders the set, one ASN per line, ascending.
func Write(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# serial hijacker ASNs (Testart et al. style)")
	for _, a := range s.ASNs() {
		fmt.Fprintf(bw, "AS%d\n", a)
	}
	return bw.Flush()
}
