// Package hijack manages the serial-hijacker AS list the paper overlaps
// with lease originators (§6.3). The list mirrors the inferred serial
// BGP hijackers of Testart et al. (IMC 2019): ASes with persistently
// hijack-like announcement behaviour in the global routing table.
//
// The on-disk form is one ASN per line (with or without an "AS" prefix),
// '#' comments allowed.
package hijack

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ipleasing/internal/diag"
)

// Set is a set of serial-hijacker ASNs.
type Set struct {
	asns map[uint32]bool
}

// New builds a Set from asns.
func New(asns []uint32) *Set {
	s := &Set{asns: make(map[uint32]bool, len(asns))}
	for _, a := range asns {
		s.asns[a] = true
	}
	return s
}

// Contains reports whether asn is a listed serial hijacker. A nil set
// (degraded dataset with no hijacker source) contains nothing.
func (s *Set) Contains(asn uint32) bool { return s != nil && s.asns[asn] }

// Len returns the number of listed ASNs (0 for a nil set).
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.asns)
}

// ASNs returns the listed ASNs in ascending order (nil for a nil set).
func (s *Set) ASNs() []uint32 {
	if s == nil {
		return nil
	}
	out := make([]uint32, 0, len(s.asns))
	for a := range s.asns {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parse reads an ASN-per-line list.
func Parse(r io.Reader) (*Set, error) {
	return ParseWith(r, nil)
}

// ParseWith is Parse threaded through a load-diagnostics collector. A nil
// collector (or strict options) keeps Parse's fail-fast behavior; in
// lenient mode malformed lines are skipped and accounted.
func ParseWith(r io.Reader, c *diag.Collector) (*Set, error) {
	sc := bufio.NewScanner(r)
	var asns []uint32
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimPrefix(strings.ToUpper(line), "AS")
		v, err := strconv.ParseUint(line, 10, 32)
		if err != nil {
			if err := c.Skip(lineNum, -1, fmt.Errorf("hijack: line %d: bad ASN %q", lineNum, sc.Text())); err != nil {
				return nil, err
			}
			continue
		}
		asns = append(asns, uint32(v))
		c.Parsed()
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(asns), nil
}

// Write renders the set, one ASN per line, ascending.
func Write(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# serial hijacker ASNs (Testart et al. style)")
	for _, a := range s.ASNs() {
		fmt.Fprintf(bw, "AS%d\n", a)
	}
	return bw.Flush()
}
