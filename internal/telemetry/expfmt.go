package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintExposition parses a Prometheus text-exposition document and
// verifies its structural invariants: sample-line syntax, label
// escaping, TYPE declarations preceding samples, and per-histogram
// consistency (cumulative non-decreasing _bucket series ending in a
// +Inf bucket that equals _count). It exists so the scrape surface can
// be conformance-tested without vendoring a Prometheus client, and
// returns the first violation found, nil for a clean document.
func LintExposition(data []byte) error {
	types := make(map[string]string)
	// histogram child accounting, keyed by family + label signature
	type histState struct {
		lastLE    float64
		lastCum   uint64
		sawInf    bool
		infVal    uint64
		count     uint64
		sawCount  bool
		le        []float64
		family    string
		signature string
	}
	hists := make(map[string]*histState)

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, suffix := histFamily(name, types)
		if fam == "" {
			if _, ok := types[name]; !ok {
				return fmt.Errorf("line %d: sample %s precedes its TYPE line", lineNo, name)
			}
			continue
		}
		sig := labelSignature(labels, true)
		key := fam + "\xff" + sig
		st := hists[key]
		if st == nil {
			st = &histState{family: fam, signature: sig, lastLE: math.Inf(-1)}
			hists[key] = st
		}
		switch suffix {
		case "_bucket":
			leStr, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			cum, err := strconv.ParseUint(strings.TrimSuffix(value, ".0"), 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: non-integral bucket count %q", lineNo, value)
			}
			if leStr == "+Inf" {
				st.sawInf = true
				st.infVal = cum
			} else {
				le, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q", lineNo, leStr)
				}
				if le <= st.lastLE {
					return fmt.Errorf("line %d: le %q out of order for %s", lineNo, leStr, fam)
				}
				st.le = append(st.le, le)
				st.lastLE = le
			}
			if cum < st.lastCum {
				return fmt.Errorf("line %d: bucket counts not cumulative for %s%s", lineNo, fam, sig)
			}
			st.lastCum = cum
		case "_count":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: non-integral count %q", lineNo, value)
			}
			st.count, st.sawCount = n, true
		case "_sum":
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("line %d: bad sum %q", lineNo, value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := hists[k]
		if !st.sawInf {
			return fmt.Errorf("histogram %s%s: no +Inf bucket", st.family, st.signature)
		}
		if !st.sawCount {
			return fmt.Errorf("histogram %s%s: no _count sample", st.family, st.signature)
		}
		if st.infVal != st.count {
			return fmt.Errorf("histogram %s%s: +Inf bucket %d != count %d",
				st.family, st.signature, st.infVal, st.count)
		}
	}
	return nil
}

// histFamily maps a sample name to its declared histogram family and
// suffix, or "" when the sample does not belong to a histogram.
func histFamily(name string, types map[string]string) (fam, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name && types[base] == "histogram" {
			return base, sfx
		}
	}
	return "", ""
}

// labelSignature renders a canonical signature of a label set,
// optionally dropping le (to group one histogram child's series).
func labelSignature(labels map[string]string, dropLE bool) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if dropLE && k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// parseSampleLine splits `name{labels} value` into its parts, undoing
// label-value escaping.
func parseSampleLine(line string) (name string, labels map[string]string, value string, err error) {
	labels = make(map[string]string)
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				return "", nil, "", fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("label without '='")
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validLabel(lname) && lname != "le" {
				return "", nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("unquoted label value for %q", lname)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return "", nil, "", fmt.Errorf("unterminated label value for %q", lname)
				}
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return "", nil, "", fmt.Errorf("dangling escape in label %q", lname)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("bad escape \\%c in label %q", rest[1], lname)
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			labels[lname] = val.String()
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample without value: %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !validName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	value = fields[0]
	if value != "+Inf" && value != "-Inf" && value != "NaN" {
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return "", nil, "", fmt.Errorf("bad sample value %q", value)
		}
	}
	return name, labels, value, nil
}
