package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Idempotent registration returns the same instrument.
	if again := r.Counter("requests_total", "Total requests."); again != c {
		t.Error("re-registration returned a different counter")
	}
	out := expose(t, r)
	for _, want := range []string{
		"# HELP requests_total Total requests.\n",
		"# TYPE requests_total counter\n",
		"requests_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeSetAddAndFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", "Items queued.")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("Value = %v, want 6.5", got)
	}
	r.GaugeFunc("answer", "Scrape-time callback.", func() float64 { return 42 })
	out := expose(t, r)
	if !strings.Contains(out, "queue_depth 6.5\n") {
		t.Errorf("gauge sample missing:\n%s", out)
	}
	if !strings.Contains(out, "answer 42\n") {
		t.Errorf("gauge-func sample missing:\n%s", out)
	}
}

func TestSetGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.SetGaugeFunc("age", "", func() float64 { return 1 })
	r.SetGaugeFunc("age", "", func() float64 { return 2 })
	if out := expose(t, r); !strings.Contains(out, "age 2\n") {
		t.Errorf("SetGaugeFunc did not replace callback:\n%s", out)
	}
	// GaugeFunc keeps the existing callback.
	r.GaugeFunc("age", "", func() float64 { return 3 })
	if out := expose(t, r); !strings.Contains(out, "age 2\n") {
		t.Errorf("GaugeFunc overwrote existing callback:\n%s", out)
	}
}

func TestVecChildrenAndOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ingest_skipped_records_total", "Skips.", "source")
	v.With("whois/RIPE").Add(3)
	v.With("rpki").Add(1)
	v.With("bgp/rib.mrt").Add(2)
	out := expose(t, r)
	// Children sorted by label value regardless of creation order.
	iRipe := strings.Index(out, `source="whois/RIPE"`)
	iRpki := strings.Index(out, `source="rpki"`)
	iBgp := strings.Index(out, `source="bgp/rib.mrt"`)
	if iBgp == -1 || iRpki == -1 || iRipe == -1 || !(iBgp < iRpki && iRpki < iRipe) {
		t.Errorf("children out of order (bgp=%d rpki=%d ripe=%d):\n%s", iBgp, iRpki, iRipe, out)
	}
	if v.With("rpki") != v.With("rpki") {
		t.Error("With not stable for equal label values")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("weird", "", "path")
	v.With("a\\b\"c\nd").Set(1)
	out := expose(t, r)
	want := `weird{path="a\\b\"c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped sample %q missing:\n%s", want, out)
	}
	if err := LintExposition([]byte(out)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Fatalf("Sum = %v, want 55.65", h.Sum())
	}
	out := expose(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary 0.1 (le semantics)
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintExposition([]byte(out)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestHistogramVecSharedBuckets(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("req_seconds", "", nil, "endpoint")
	v.With("lookup").Observe(0.001)
	v.With("table1").Observe(2)
	out := expose(t, r)
	if !strings.Contains(out, `req_seconds_count{endpoint="lookup"} 1`) ||
		!strings.Contains(out, `req_seconds_count{endpoint="table1"} 1`) {
		t.Errorf("per-child counts missing:\n%s", out)
	}
	if err := LintExposition([]byte(out)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing", "")
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"kind conflict", func() { r.Gauge("thing", "") }},
		{"label conflict", func() { r.CounterVec("thing", "", "x") }},
		{"bad name", func() { r.Counter("bad-name", "") }},
		{"bad label", func() { r.CounterVec("ok_name", "", "bad-label") }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestWithWrongArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("labeled", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

// TestConcurrentInstruments hammers one counter, one gauge, and one
// histogram child from many goroutines while a scraper renders the
// registry — the -race gate for the serving daemon's hot path.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	hv := r.HistogramVec("h_seconds", "", []float64{0.5, 1, 2}, "ep")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hv.With("ep")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) * 0.75)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b bytes.Buffer
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("scrape during load: %v", err)
				return
			}
			if err := LintExposition(b.Bytes()); err != nil {
				t.Errorf("lint during load: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := hv.With("ep").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// A final quiescent scrape is fully consistent.
	out := expose(t, r)
	if err := LintExposition([]byte(out)); err != nil {
		t.Errorf("final lint: %v", err)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	r.RegisterRuntimeMetrics()
	out := expose(t, r)
	for _, fam := range []string{"go_goroutines", "go_heap_alloc_bytes", "process_start_time_seconds"} {
		if !strings.Contains(out, fam+" ") {
			t.Errorf("runtime metric %s missing:\n%s", fam, out)
		}
	}
	if err := LintExposition([]byte(out)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	for name, doc := range map[string]string{
		"sample before type": "foo 1\n# TYPE foo counter\n",
		"bad name":           "# TYPE foo counter\n1foo 2\n",
		"bad value":          "# TYPE foo counter\nfoo banana\n",
		"bad escape":         "# TYPE foo counter\nfoo{a=\"\\q\"} 1\n",
		"noncumulative histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"inf/count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
	} {
		if err := LintExposition([]byte(doc)); err == nil {
			t.Errorf("%s: lint accepted invalid document", name)
		}
	}
	if err := LintExposition([]byte("# TYPE ok gauge\nok 1\n")); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}
