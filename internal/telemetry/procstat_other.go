//go:build !linux

package telemetry

// readPageFaults is unavailable off Linux; the page-fault gauges are
// simply not registered.
func readPageFaults() (minflt, majflt uint64, ok bool) { return 0, 0, false }
