package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testTime() time.Time {
	return time.Date(2026, 8, 6, 12, 30, 45, 123e6, time.UTC)
}

func newTestLogger(buf *bytes.Buffer, opts LoggerOptions) *Logger {
	opts.now = testTime
	return NewLogger(buf, opts)
}

func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LoggerOptions{})
	l.Info("reload ok", "inferences", 123, "attempt", 1, "dir", "data set")
	want := `time=2026-08-06T12:30:45.123Z level=info msg="reload ok" inferences=123 attempt=1 dir="data set"` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("text record:\n got %q\nwant %q", got, want)
	}
}

func TestJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LoggerOptions{Format: FormatJSON})
	l.Warn("skip", "source", "whois/RIPE", "rate", 0.25, "ok", true, "err", errors.New("bad \"row\""))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("record not JSON: %v\n%s", err, buf.String())
	}
	if rec["level"] != "warn" || rec["msg"] != "skip" || rec["source"] != "whois/RIPE" {
		t.Errorf("record = %v", rec)
	}
	if rec["rate"] != 0.25 || rec["ok"] != true {
		t.Errorf("native types not preserved: %v", rec)
	}
	if rec["err"] != `bad "row"` {
		t.Errorf("error value = %q", rec["err"])
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LoggerOptions{Level: LevelWarn})
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	out := buf.String()
	if strings.Contains(out, "nope") || !strings.Contains(out, "yes") || !strings.Contains(out, "also") {
		t.Errorf("filtered output:\n%s", out)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled thresholds wrong")
	}
}

func TestWithBindsContext(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LoggerOptions{}).With("component", "serve")
	l.Info("hello", "x", 1)
	if !strings.Contains(buf.String(), "component=serve") || !strings.Contains(buf.String(), "x=1") {
		t.Errorf("bound attrs missing: %s", buf.String())
	}
}

func TestNilLoggerIsInert(t *testing.T) {
	var l *Logger
	l.Info("nothing", "k", "v")
	l.With("a", 1).Error("still nothing")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
}

func TestMalformedPairsDegrade(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LoggerOptions{})
	l.Info("odd", "key-without-value")
	if !strings.Contains(buf.String(), `key-without-value=(MISSING)`) {
		t.Errorf("dangling key not marked: %s", buf.String())
	}
}

func TestParseLogLevel(t *testing.T) {
	for s, want := range map[string]LogLevel{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError,
	} {
		got, err := ParseLogLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLogLevel("banana"); err == nil {
		t.Error("unknown level accepted")
	}
}

// TestConcurrentLogging: records from racing goroutines never interleave
// mid-line.
func TestConcurrentLogging(t *testing.T) {
	var buf lockedBuffer
	l := NewLogger(&buf, LoggerOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("tick", "worker", j)
			}
		}()
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "time=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("torn log line: %q", line)
		}
	}
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
