package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	ids := NewIDGen(42)
	for i := 0; i < 100; i++ {
		sc := SpanContext{TraceID: ids.TraceID(), SpanID: ids.SpanID(), Sampled: i%2 == 0}
		h := sc.Traceparent()
		if len(h) != 55 {
			t.Fatalf("traceparent %q: len %d, want 55", h, len(h))
		}
		got, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) rejected own output", h)
		}
		if got != sc {
			t.Fatalf("round trip: got %+v want %+v", got, sc)
		}
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := SpanContext{TraceID: NewIDGen(1).TraceID(), SpanID: NewIDGen(2).SpanID(), Sampled: true}.Traceparent()
	cases := []string{
		"",
		"00",
		valid[:54],             // truncated
		valid + "0",            // too long
		"01" + valid[2:],       // unknown version
		"ff" + valid[2:],       // invalid version
		strings.ToUpper(valid), // uppercase hex is invalid per spec
		strings.Replace(valid, "-", "_", 3),
		valid[:3] + strings.Repeat("0", 32) + valid[35:],  // all-zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // all-zero span id
		valid[:53] + "zz",           // non-hex flags
		valid[:3] + "g" + valid[4:], // non-hex trace id
	}
	for _, c := range cases {
		if _, ok := ParseTraceparent(c); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed header", c)
		}
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add("")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01")
	f.Add(strings.Repeat("0", 55))
	f.Add("00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-zzzzzzzzzzzzzzzz-zz")
	f.Fuzz(func(t *testing.T, h string) {
		sc, ok := ParseTraceparent(h)
		if !ok {
			return
		}
		// Everything accepted must re-serialize to an equivalent header
		// (flags beyond the sampled bit are dropped by design).
		h2 := sc.Traceparent()
		sc2, ok2 := ParseTraceparent(h2)
		if !ok2 || sc2 != sc {
			t.Fatalf("accepted %q but re-parse of %q gave %+v ok=%v", h, h2, sc2, ok2)
		}
		if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
			t.Fatalf("accepted zero ID from %q", h)
		}
	})
}

func TestSamplerDeterministicUnderSeed(t *testing.T) {
	run := func() []bool {
		s := NewSampler(0.25, 99)
		out := make([]bool, 4096)
		for i := range out {
			out[i] = s.Sample()
		}
		return out
	}
	a, b := run(), run()
	kept := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically-seeded samplers", i)
		}
		if a[i] {
			kept++
		}
	}
	// 4096 trials at rate 0.25: expect ~1024, allow generous slack.
	if kept < 800 || kept > 1250 {
		t.Fatalf("kept %d of 4096 at rate 0.25", kept)
	}
	if s := NewSampler(0, 1); s.Sample() {
		t.Fatal("rate 0 sampled")
	}
	for i, s := 0, NewSampler(1, 1); i < 100; i++ {
		if !s.Sample() {
			t.Fatal("rate 1 skipped")
		}
	}
}

func TestIDGenDeterministicAndNonZero(t *testing.T) {
	a, b := NewIDGen(7), NewIDGen(7)
	for i := 0; i < 100; i++ {
		ta, tb := a.TraceID(), b.TraceID()
		if ta != tb {
			t.Fatalf("trace id %d differs under same seed", i)
		}
		if ta.IsZero() {
			t.Fatal("zero trace id")
		}
		sa, sb := a.SpanID(), b.SpanID()
		if sa != sb || sa.IsZero() {
			t.Fatalf("span id %d: %v vs %v", i, sa, sb)
		}
	}
}

// endTrace builds a finished single-span trace with a synthetic duration.
func endTrace(name string, d time.Duration) *Trace {
	base := time.Unix(1700000000, 0)
	tr := NewTrace(name)
	clk := base
	tr.now = func() time.Time { return clk }
	tr.root.start = base
	clk = base.Add(d)
	tr.End()
	return tr
}

func TestCollectorRingEvictionAccounting(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(CollectorOptions{Capacity: 4, Registry: reg})
	for i := 0; i < 10; i++ {
		c.Collect("lookup", 200, endTrace(fmt.Sprintf("req-%d", i), time.Millisecond))
	}
	for i := 0; i < 7; i++ {
		c.Collect("lookup", 500, endTrace(fmt.Sprintf("err-%d", i), time.Millisecond))
	}

	rr := httptest.NewRecorder()
	c.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?limit=100", nil))
	var resp tracesResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Count != 8 {
		t.Fatalf("count %d, want 8 (two rings of 4)", resp.Count)
	}
	if resp.Dropped["sampled"] != 6 || resp.Dropped["hot"] != 3 {
		t.Fatalf("dropped = %v, want sampled=6 hot=3", resp.Dropped)
	}
	// Newest survive eviction: the last 4 error traces are present.
	errs := 0
	for _, rec := range resp.Traces {
		if rec.Kind == KindError {
			errs++
			if rec.Status != 500 {
				t.Fatalf("error record status %d", rec.Status)
			}
		}
	}
	if errs != 4 {
		t.Fatalf("%d error records, want 4", errs)
	}

	// The registry counters agree with the endpoint's accounting.
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	for _, want := range []string{
		`traces_dropped_total{ring="sampled"} 6`,
		`traces_dropped_total{ring="hot"} 3`,
		`traces_kept_total{kind="sampled"} 10`,
		`traces_kept_total{kind="error"} 7`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestCollectorSlowKeepRule(t *testing.T) {
	c := NewCollector(CollectorOptions{Capacity: 64, SlowFactor: 4, SlowMin: time.Millisecond, SlowWarmup: 8})
	for i := 0; i < 20; i++ {
		c.Collect("lookup", 200, endTrace("fast", 100*time.Microsecond))
	}
	c.Collect("lookup", 200, endTrace("outlier", 50*time.Millisecond))

	rr := httptest.NewRecorder()
	c.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?kind=slow", nil))
	var resp tracesResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Count != 1 || resp.Traces[0].Root.Name != "outlier" {
		t.Fatalf("slow filter returned %d records: %+v", resp.Count, resp.Traces)
	}
	if resp.Traces[0].Kind != KindSlow {
		t.Fatalf("outlier kind %q", resp.Traces[0].Kind)
	}
}

func TestCollectorFilters(t *testing.T) {
	c := NewCollector(CollectorOptions{Capacity: 64})
	tr := endTrace("target", 10*time.Millisecond)
	c.Collect("lookup", 200, tr)
	c.Collect("table1", 200, endTrace("other", 2*time.Millisecond))
	c.CollectHot(KindReload, "reload", 200, endTrace("cycle", 30*time.Millisecond))

	get := func(q string) tracesResponse {
		t.Helper()
		rr := httptest.NewRecorder()
		c.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces"+q, nil))
		var resp tracesResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode %q: %v", q, err)
		}
		return resp
	}
	if r := get("?endpoint=lookup"); r.Count != 1 || r.Traces[0].Endpoint != "lookup" {
		t.Fatalf("endpoint filter: %+v", r)
	}
	if r := get("?trace_id=" + tr.ID().String()); r.Count != 1 || r.Traces[0].TraceID != tr.ID().String() {
		t.Fatalf("trace_id filter: %+v", r)
	}
	if r := get("?min_ms=5"); r.Count != 2 {
		t.Fatalf("min_ms filter returned %d, want 2", r.Count)
	}
	if r := get("?kind=reload"); r.Count != 1 || r.Traces[0].Endpoint != "reload" {
		t.Fatalf("kind filter: %+v", r)
	}
	if r := get("?limit=1"); r.Count != 1 {
		t.Fatalf("limit: %+v", r)
	}
	if rr := httptest.NewRecorder(); true {
		c.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?min_ms=-1", nil))
		if rr.Code != 400 {
			t.Fatalf("bad min_ms gave %d", rr.Code)
		}
	}
}

func TestAdoptRemoteParent(t *testing.T) {
	ids := NewIDGen(5)
	remote := SpanContext{TraceID: ids.TraceID(), SpanID: ids.SpanID(), Sampled: true}
	tr := NewTraceWithIDs("replica-reload", NewIDGen(9))
	orig := tr.ID()
	ctx := tr.Context(context.Background())
	if !AdoptRemoteParent(ctx, remote) {
		t.Fatal("adoption failed on traced context")
	}
	if tr.ID() != remote.TraceID {
		t.Fatalf("trace id %v, want adopted %v", tr.ID(), remote.TraceID)
	}
	_, child := StartSpan(ctx, "decode")
	child.End()
	tr.End()
	n := tr.Tree()
	if n.TraceID != remote.TraceID.String() {
		t.Fatalf("tree trace id %q", n.TraceID)
	}
	if n.ParentSpanID != remote.SpanID.String() {
		t.Fatalf("root parent span %q, want %q", n.ParentSpanID, remote.SpanID)
	}
	if n.Attrs["trace.replaced_id"] != orig.String() {
		t.Fatalf("replaced id attr %q, want %q", n.Attrs["trace.replaced_id"], orig)
	}
	if len(n.Children) != 1 || n.Children[0].ParentSpanID != n.SpanID {
		t.Fatalf("child linkage broken: %+v", n.Children)
	}
	if AdoptRemoteParent(context.Background(), remote) {
		t.Fatal("adoption succeeded on untraced context")
	}
}
