package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LogLevel orders log severities.
type LogLevel int8

// Log levels, in increasing severity.
const (
	LevelDebug LogLevel = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLogLevel maps a level name to its LogLevel.
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "", "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
}

// LogFormats accepted by NewLogger.
const (
	FormatText = "text" // key=value lines
	FormatJSON = "json" // one JSON object per line
)

// LoggerOptions configures a Logger. The zero value is level info, text
// format, real time.
type LoggerOptions struct {
	Level  LogLevel
	Format string // FormatText (default) or FormatJSON

	now func() time.Time // test hook
}

// Logger is a leveled structured logger emitting key=value text or
// one-object-per-line JSON. It replaces the scattered fmt.Fprintf
// diagnostics across the pipeline with a single machine-parseable
// stream. A nil *Logger discards everything, so optional logging needs
// no guards. Loggers are safe for concurrent use; each record is one
// atomic Write to the sink.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level LogLevel
	json  bool
	now   func() time.Time
	base  []attr // bound context from With
}

type attr struct {
	key string
	val any
}

// NewLogger returns a logger writing to w. An unknown format falls back
// to text.
func NewLogger(w io.Writer, opts LoggerOptions) *Logger {
	now := opts.now
	if now == nil {
		now = time.Now
	}
	return &Logger{
		mu:    &sync.Mutex{},
		w:     w,
		level: opts.Level,
		json:  opts.Format == FormatJSON,
		now:   now,
	}
}

// Enabled reports whether records at level would be emitted.
func (l *Logger) Enabled(level LogLevel) bool {
	return l != nil && level >= l.level
}

// With returns a logger that attaches the given key/value pairs to every
// record. Arguments alternate string keys and values, like the record
// methods.
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil {
		return nil
	}
	out := *l
	out.base = append(append([]attr(nil), l.base...), pairs(kvs)...)
	return &out
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, kvs ...any) { l.log(LevelDebug, msg, kvs) }

// Info emits an info record.
func (l *Logger) Info(msg string, kvs ...any) { l.log(LevelInfo, msg, kvs) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, kvs ...any) { l.log(LevelWarn, msg, kvs) }

// Error emits an error record.
func (l *Logger) Error(msg string, kvs ...any) { l.log(LevelError, msg, kvs) }

// pairs folds a variadic key/value list into attrs. A trailing key
// without a value gets the literal "(MISSING)"; non-string keys are
// stringified — malformed call sites degrade loudly instead of panicking
// in a logging path.
func pairs(kvs []any) []attr {
	var out []attr
	for i := 0; i < len(kvs); i += 2 {
		key, ok := kvs[i].(string)
		if !ok {
			key = fmt.Sprint(kvs[i])
		}
		var val any = "(MISSING)"
		if i+1 < len(kvs) {
			val = kvs[i+1]
		}
		out = append(out, attr{key, val})
	}
	return out
}

func (l *Logger) log(level LogLevel, msg string, kvs []any) {
	if !l.Enabled(level) {
		return
	}
	attrs := append(append([]attr(nil), l.base...), pairs(kvs)...)
	ts := l.now().UTC()
	var b strings.Builder
	if l.json {
		writeJSONRecord(&b, ts, level, msg, attrs)
	} else {
		writeTextRecord(&b, ts, level, msg, attrs)
	}
	l.mu.Lock()
	io.WriteString(l.w, b.String()) //nolint:errcheck // logging sink
	l.mu.Unlock()
}

const logTimeFormat = "2006-01-02T15:04:05.000Z07:00"

func writeTextRecord(b *strings.Builder, ts time.Time, level LogLevel, msg string, attrs []attr) {
	b.WriteString("time=")
	b.WriteString(ts.Format(logTimeFormat))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(textValue(msg))
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.key)
		b.WriteByte('=')
		b.WriteString(textValue(stringify(a.val)))
	}
	b.WriteByte('\n')
}

// textValue quotes a value when it would break key=value tokenisation.
func textValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

func stringify(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case error:
		return t.Error()
	case fmt.Stringer:
		return t.String()
	default:
		return fmt.Sprint(v)
	}
}

func writeJSONRecord(b *strings.Builder, ts time.Time, level LogLevel, msg string, attrs []attr) {
	b.WriteString(`{"time":`)
	writeJSONString(b, ts.Format(logTimeFormat))
	b.WriteString(`,"level":`)
	writeJSONString(b, level.String())
	b.WriteString(`,"msg":`)
	writeJSONString(b, msg)
	for _, a := range attrs {
		b.WriteByte(',')
		writeJSONString(b, a.key)
		b.WriteByte(':')
		switch t := a.val.(type) {
		case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, float32, float64, bool:
			fmt.Fprintf(b, "%v", t)
		default:
			writeJSONString(b, stringify(a.val))
		}
	}
	b.WriteString("}\n")
}

func writeJSONString(b *strings.Builder, s string) {
	enc, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		b.WriteString(`""`)
		return
	}
	b.Write(enc)
}
