package telemetry

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the cross-process half of the tracer: span identity
// (128-bit trace IDs, 64-bit span IDs), W3C traceparent propagation,
// a seedable head sampler, and a bounded in-process collector of
// finished span trees served from /debug/traces. The in-process half
// (Trace/Span) lives in trace.go.

// TraceparentHeader is the W3C trace-context header name in canonical
// MIME form. Always pass this (not the lowercase wire form) to
// http.Header.Get: Get canonicalizes its argument, and the canonical
// form takes the no-allocation fast path — this is on the unsampled
// per-request budget.
const TraceparentHeader = "Traceparent"

// TraceID is a 128-bit W3C trace identifier.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is a 64-bit W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext is the wire identity of one span: what a W3C traceparent
// header carries across a process boundary.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00): 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>.
func (sc SpanContext) Traceparent() string {
	flags := byte(0)
	if sc.Sampled {
		flags = 1
	}
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, sc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.SpanID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, []byte{flags})
	return string(b)
}

// ParseTraceparent parses a version-00 W3C traceparent header. It
// returns ok=false for anything malformed: wrong length or version,
// uppercase or non-hex digits, missing dashes, or all-zero IDs. The
// empty string (no header) takes the early-exit fast path, so untraced
// requests pay a single length check.
func ParseTraceparent(h string) (SpanContext, bool) {
	var sc SpanContext
	if len(h) != 55 {
		return sc, false
	}
	if h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, false
	}
	if !decodeLowerHex(sc.TraceID[:], h[3:35]) {
		return sc, false
	}
	if !decodeLowerHex(sc.SpanID[:], h[36:52]) {
		return sc, false
	}
	var flags [1]byte
	if !decodeLowerHex(flags[:], h[53:55]) {
		return sc, false
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return sc, false
	}
	sc.Sampled = flags[0]&1 != 0
	return sc, true
}

// decodeLowerHex decodes src (lowercase hex only, per the W3C spec)
// into dst; len(src) must be 2*len(dst).
func decodeLowerHex(dst []byte, src string) bool {
	for i := 0; i < len(dst); i++ {
		hi, ok1 := lowerHexVal(src[2*i])
		lo, ok2 := lowerHexVal(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func lowerHexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// splitmix64 is the SplitMix64 output function: a bijective mix of a
// counter into a well-distributed 64-bit value. One multiply-xor chain,
// no locks, and a fixed seed reproduces the exact ID sequence.
func splitmix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// splitmixGamma is the SplitMix64 state increment (the golden gamma).
const splitmixGamma = 0x9e3779b97f4a7c15

// IDGen mints trace and span IDs from an atomic SplitMix64 stream:
// collision-free within a process (the underlying counter is), cheap
// enough for the per-request path, and deterministic under a fixed
// seed for reproducible harness runs.
type IDGen struct {
	state atomic.Uint64
}

// NewIDGen returns a generator seeded with seed; seed 0 draws from the
// clock so independent processes get independent streams.
func NewIDGen(seed int64) *IDGen {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	g := &IDGen{}
	g.state.Store(uint64(seed))
	return g
}

// Uint64 returns the next value in the stream.
func (g *IDGen) Uint64() uint64 {
	return splitmix64(g.state.Add(splitmixGamma))
}

// TraceID mints a non-zero 128-bit trace ID.
func (g *IDGen) TraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := g.Uint64(), g.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (56 - 8*i))
			id[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return id
}

// SpanID mints a non-zero 64-bit span ID.
func (g *IDGen) SpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := g.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (56 - 8*i))
		}
	}
	return id
}

// Sampler makes the head-sampling decision for requests that arrive
// without a sampled traceparent. It compares an independent SplitMix64
// stream against a fixed threshold, so the decision is one atomic add,
// one mix, and one compare — no locks, no floating point — and the
// sequence of decisions is deterministic under a fixed seed.
type Sampler struct {
	threshold uint64 // sample iff next stream value < threshold
	gen       IDGen
}

// NewSampler returns a sampler keeping roughly rate of decisions
// (rate <= 0 keeps none, rate >= 1 keeps all), seeded with seed
// (0 draws from the clock).
func NewSampler(rate float64, seed int64) *Sampler {
	s := &Sampler{}
	switch {
	case rate <= 0:
		s.threshold = 0
	case rate >= 1:
		s.threshold = ^uint64(0)
	default:
		s.threshold = uint64(rate * float64(1<<63) * 2)
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s.gen.state.Store(uint64(seed))
	return s
}

// Sample returns the next head-sampling decision.
func (s *Sampler) Sample() bool {
	switch s.threshold {
	case 0:
		return false
	case ^uint64(0):
		return true
	}
	return s.gen.Uint64() < s.threshold
}

// Trace record kinds, in ascending order of how eagerly the collector
// keeps them. Sampled records share one ring; error, slow, and reload
// records share a second ("hot") ring so a burst of ordinary traffic
// cannot evict the tails worth debugging.
const (
	KindSampled = "sampled" // head-sampled ordinary request
	KindSlow    = "slow"    // per-endpoint latency outlier
	KindError   = "error"   // response status >= 400 (or none written)
	KindReload  = "reload"  // snapshot reload/publish cycle
)

// TraceRecord is one finished trace as served from /debug/traces.
type TraceRecord struct {
	TraceID    string    `json:"trace_id"`
	Endpoint   string    `json:"endpoint"`
	Kind       string    `json:"kind"`
	Status     int       `json:"status,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Root       *SpanNode `json:"root"`
}

// endpointLatency is a per-endpoint decayed mean used by the slow-tail
// keep rule. Only traced requests feed it, so it is an estimate of the
// sampled population — good enough to flag multiples of typical.
type endpointLatency struct {
	mean float64 // ms
	n    int64
}

// Collector keeps finished span trees in two bounded rings and serves
// them as JSON. All methods are safe on a nil receiver so callers can
// thread an optional collector without branching.
type Collector struct {
	capacity   int
	slowFactor float64
	slowMin    float64 // ms
	slowWarmup int64

	kept    *CounterVec // by kind
	dropped *CounterVec // by ring, on eviction

	mu       sync.Mutex
	hot      ring
	sampled  sampledRing
	latency  map[string]*endpointLatency
	dropHot  int64
	dropSamp int64
}

// ring is a fixed-capacity FIFO of trace records.
type ring struct {
	buf  []TraceRecord
	next int
	full bool
}

type sampledRing = ring

func (r *ring) push(rec TraceRecord, capacity int) (evicted bool) {
	if len(r.buf) < capacity {
		r.buf = append(r.buf, rec)
		return false
	}
	evicted = true
	r.buf[r.next] = rec
	r.next = (r.next + 1) % capacity
	r.full = true
	return evicted
}

// newestFirst appends the ring's records, newest first, to dst.
func (r *ring) newestFirst(dst []TraceRecord) []TraceRecord {
	n := len(r.buf)
	for i := 0; i < n; i++ {
		// r.next is the oldest slot once the ring has wrapped.
		idx := (r.next + n - 1 - i) % n
		dst = append(dst, r.buf[idx])
	}
	return dst
}

// CollectorOptions configures NewCollector. Zero values pick defaults.
type CollectorOptions struct {
	Capacity   int           // records per ring (default 256)
	SlowFactor float64       // slow iff duration > SlowFactor * endpoint mean (default 4)
	SlowMin    time.Duration // and > SlowMin (default 5ms)
	SlowWarmup int           // endpoint observations before slow-flagging (default 32)
	Registry   *Registry     // for kept/dropped counters (default: private registry)
}

// NewCollector returns a collector with the given options.
func NewCollector(o CollectorOptions) *Collector {
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	if o.SlowFactor <= 0 {
		o.SlowFactor = 4
	}
	if o.SlowMin <= 0 {
		o.SlowMin = 5 * time.Millisecond
	}
	if o.SlowWarmup <= 0 {
		o.SlowWarmup = 32
	}
	reg := o.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	return &Collector{
		capacity:   o.Capacity,
		slowFactor: o.SlowFactor,
		slowMin:    durationMS(o.SlowMin),
		slowWarmup: int64(o.SlowWarmup),
		kept: reg.CounterVec("traces_kept_total",
			"Finished traces kept by the in-process collector.", "kind"),
		dropped: reg.CounterVec("traces_dropped_total",
			"Traces evicted from the in-process collector rings.", "ring"),
		latency: make(map[string]*endpointLatency),
	}
}

// Collect classifies and stores a finished request trace: status >= 400
// (or no status) is an error, a per-endpoint latency outlier is slow —
// both always kept in the hot ring — everything else goes to the
// sampled ring. Callers End the trace first.
func (c *Collector) Collect(endpoint string, status int, tr *Trace) {
	if c == nil || tr == nil {
		return
	}
	root := tr.Tree()
	kind := KindSampled
	if status >= 400 || status == 0 {
		kind = KindError
	}
	c.mu.Lock()
	lat := c.latency[endpoint]
	if lat == nil {
		lat = &endpointLatency{}
		c.latency[endpoint] = lat
	}
	if kind == KindSampled && lat.n >= c.slowWarmup &&
		root.DurationMS > c.slowMin && root.DurationMS > c.slowFactor*lat.mean {
		kind = KindSlow
	}
	// Update the mean after the decision so one outlier doesn't hide
	// the next; errors still count toward typical endpoint latency.
	lat.n++
	lat.mean += (root.DurationMS - lat.mean) / float64(min64(lat.n, 256))
	c.storeLocked(kind, endpoint, status, root)
	c.mu.Unlock()
	c.kept.With(kind).Inc()
}

// CollectHot stores a trace straight into the hot ring under the given
// kind, bypassing classification. Reload/publish cycles use it so the
// generation lifecycle is always inspectable regardless of sampling.
func (c *Collector) CollectHot(kind, endpoint string, status int, tr *Trace) {
	if c == nil || tr == nil {
		return
	}
	root := tr.Tree()
	c.mu.Lock()
	c.storeLocked(kind, endpoint, status, root)
	c.mu.Unlock()
	c.kept.With(kind).Inc()
}

func (c *Collector) storeLocked(kind, endpoint string, status int, root *SpanNode) {
	rec := TraceRecord{
		TraceID:    root.TraceID,
		Endpoint:   endpoint,
		Kind:       kind,
		Status:     status,
		Start:      root.Start,
		DurationMS: root.DurationMS,
		Root:       root,
	}
	if kind == KindSampled {
		if c.sampled.push(rec, c.capacity) {
			c.dropSamp++
			c.dropped.With("sampled").Inc()
		}
		return
	}
	if c.hot.push(rec, c.capacity) {
		c.dropHot++
		c.dropped.With("hot").Inc()
	}
}

// tracesResponse is the JSON shape of /debug/traces.
type tracesResponse struct {
	Count   int              `json:"count"`
	Dropped map[string]int64 `json:"dropped"`
	Traces  []TraceRecord    `json:"traces"`
}

// ServeHTTP serves the collected traces as JSON, newest first across
// both rings. Query parameters filter the result: trace_id (exact),
// endpoint (exact), kind (exact), min_ms (minimum duration), and limit
// (maximum records returned, default 128).
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c == nil {
		http.Error(w, "trace collection disabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	limit := 128
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	minMS := 0.0
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			http.Error(w, "bad min_ms", http.StatusBadRequest)
			return
		}
		minMS = f
	}
	traceID, endpoint, kind := q.Get("trace_id"), q.Get("endpoint"), q.Get("kind")

	c.mu.Lock()
	all := make([]TraceRecord, 0, len(c.hot.buf)+len(c.sampled.buf))
	all = c.hot.newestFirst(all)
	all = c.sampled.newestFirst(all)
	resp := tracesResponse{
		Dropped: map[string]int64{"hot": c.dropHot, "sampled": c.dropSamp},
	}
	c.mu.Unlock()

	sort.SliceStable(all, func(i, j int) bool { return all[i].Start.After(all[j].Start) })
	for _, rec := range all {
		if traceID != "" && rec.TraceID != traceID {
			continue
		}
		if endpoint != "" && rec.Endpoint != endpoint {
			continue
		}
		if kind != "" && rec.Kind != kind {
			continue
		}
		if rec.DurationMS < minMS {
			continue
		}
		resp.Traces = append(resp.Traces, rec)
		if len(resp.Traces) >= limit {
			break
		}
	}
	resp.Count = len(resp.Traces)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&resp)
}

// TracePlane bundles everything a server needs to trace requests:
// ID minting, the head sampler, and the collector behind /debug/traces.
type TracePlane struct {
	IDs       *IDGen
	Sampler   *Sampler
	Collector *Collector
}

// TracePlaneOptions configures NewTracePlane.
type TracePlaneOptions struct {
	SampleRate float64       // head-sampling rate in [0,1]
	Seed       int64         // seeds sampler and ID stream; 0 draws from the clock
	Capacity   int           // collector ring capacity (default 256)
	SlowFactor float64       // see CollectorOptions
	SlowMin    time.Duration // see CollectorOptions
	SlowWarmup int           // see CollectorOptions
	Registry   *Registry     // for collector counters
}

// NewTracePlane assembles a trace plane. The ID stream is derived from
// Seed but offset from the sampler's so the two never correlate.
func NewTracePlane(o TracePlaneOptions) *TracePlane {
	idSeed := o.Seed
	if idSeed != 0 {
		idSeed = int64(splitmix64(uint64(idSeed)) | 1)
	}
	return &TracePlane{
		IDs:     NewIDGen(idSeed),
		Sampler: NewSampler(o.SampleRate, o.Seed),
		Collector: NewCollector(CollectorOptions{
			Capacity:   o.Capacity,
			SlowFactor: o.SlowFactor,
			SlowMin:    o.SlowMin,
			SlowWarmup: o.SlowWarmup,
			Registry:   o.Registry,
		}),
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
