package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one run's span tree: a root span covering the whole run and
// nested child spans covering its stages (whois parse, RIB load,
// classification, ...). Spans are cheap — a timestamp pair, two atomic
// counters, and a slice append under a small mutex — and safe to start
// and end from concurrent goroutines, which the parallel dataset loader
// does. Code that is not being traced pays one context lookup: StartSpan
// on a context without a trace returns a nil *Span whose methods are
// no-ops, mirroring the nil *diag.Collector convention.
type Trace struct {
	root *Span
	now  func() time.Time // test hook; time.Now outside tests
	ids  *IDGen

	idMu   sync.Mutex
	id     TraceID
	parent SpanID // remote parent span ID, when adopted off the wire
}

// defaultIDGen mints IDs for traces created outside a TracePlane
// (leaseinfer's -trace flag, tests); clock-seeded once per process.
var defaultIDGen = NewIDGen(0)

// NewTrace starts a trace whose root span is named name.
func NewTrace(name string) *Trace {
	return NewTraceWithIDs(name, nil)
}

// NewTraceWithIDs starts a trace minting its trace and span IDs from
// ids (nil uses a process-wide clock-seeded generator).
func NewTraceWithIDs(name string, ids *IDGen) *Trace {
	if ids == nil {
		ids = defaultIDGen
	}
	t := &Trace{now: time.Now, ids: ids, id: ids.TraceID()}
	t.root = &Span{tr: t, name: name, id: ids.SpanID(), start: t.now()}
	return t
}

// ID returns the trace's 128-bit identity.
func (t *Trace) ID() TraceID {
	t.idMu.Lock()
	defer t.idMu.Unlock()
	return t.id
}

// AdoptRemoteParent re-identifies the trace as a continuation of the
// remote span context sc: the trace takes sc's trace ID and records
// sc's span ID as the root span's parent. Span IDs minted locally are
// kept. The replaced local trace ID is recorded as a root attribute so
// orphaned references (e.g. a traceparent already emitted on an
// outbound hop) stay explicable.
func (t *Trace) AdoptRemoteParent(sc SpanContext) {
	if t == nil || sc.TraceID.IsZero() {
		return
	}
	t.idMu.Lock()
	old := t.id
	t.id = sc.TraceID
	t.parent = sc.SpanID
	t.idMu.Unlock()
	if old != sc.TraceID {
		t.root.SetAttr("trace.replaced_id", old.String())
	}
}

// AdoptRemoteParent re-identifies the trace carried by ctx (if any) as
// a continuation of sc. It reports whether a trace was adopted.
func AdoptRemoteParent(ctx context.Context, sc SpanContext) bool {
	s := SpanFrom(ctx)
	if s == nil || s.tr == nil {
		return false
	}
	s.tr.AdoptRemoteParent(sc)
	return true
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span { return t.root }

// End ends the root span (child spans still running keep their own
// clocks; see Span.End).
func (t *Trace) End() { t.root.End() }

// spanKey is the context key carrying the current span.
type spanKey struct{}

// Context returns ctx carrying the trace's root span, the ambient parent
// for StartSpan calls below it.
func (t *Trace) Context(ctx context.Context) context.Context {
	return context.WithValue(ctx, spanKey{}, t.root)
}

// ContextWith returns ctx carrying an explicit parent span.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child span of the span carried by ctx and returns a
// derived context carrying the child. When ctx carries no span (the run
// is not being traced) it returns ctx unchanged and a nil span whose
// methods are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return context.WithValue(ctx, spanKey{}, child), child
}

// Span is one timed stage. All methods are safe on a nil receiver and
// for concurrent use.
type Span struct {
	tr    *Trace
	name  string
	id    SpanID
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]string
	children []*Span

	records atomic.Int64
	bytes   atomic.Int64
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild starts and returns a child span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{tr: s.tr, name: name, id: s.tr.ids.SpanID(), start: s.tr.now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// SpanContext returns the span's wire identity (Sampled set: a span
// only exists on a trace that was kept). Zero on a nil span.
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tr.ID(), SpanID: s.id, Sampled: true}
}

// Traceparent renders the span's wire identity as a W3C traceparent
// header value, or "" on a nil span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return s.SpanContext().Traceparent()
}

// End stamps the span's end time. Ending twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// AddRecords adds to the span's processed-record count.
func (s *Span) AddRecords(n int64) {
	if s != nil {
		s.records.Add(n)
	}
}

// AddBytes adds to the span's processed-byte count.
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.bytes.Add(n)
	}
}

// SetAttr attaches one string attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Duration returns the span's length so far: end minus start, or
// now minus start for a still-running span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		end = s.tr.now()
	}
	return end.Sub(s.start)
}

// SpanNode is the JSON shape of one span in a trace dump. DurationMS of
// a parent is wall-clock, not the sum of children: parallel children
// overlap, and sequential pipelines leave (small) untraced gaps, so
// SelfMS makes the gap explicit instead of hiding it.
type SpanNode struct {
	Name         string            `json:"name"`
	TraceID      string            `json:"trace_id,omitempty"` // root node only
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Start        time.Time         `json:"start"`
	DurationMS   float64           `json:"duration_ms"`
	SelfMS       float64           `json:"self_ms"`
	Records      int64             `json:"records,omitempty"`
	Bytes        int64             `json:"bytes,omitempty"`
	Unfinished   bool              `json:"unfinished,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Children     []*SpanNode       `json:"children,omitempty"`
}

// node snapshots the span subtree. Children are ordered by start time,
// then name, then insertion order — deterministic for a quiescent trace
// even when the children were appended from racing goroutines.
func (s *Span) node() *SpanNode {
	s.mu.Lock()
	end := s.end
	attrs := make(map[string]string, len(s.attrs))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	n := &SpanNode{
		Name:    s.name,
		Start:   s.start,
		Records: s.records.Load(),
		Bytes:   s.bytes.Load(),
	}
	if !s.id.IsZero() {
		n.SpanID = s.id.String()
	}
	if len(attrs) > 0 {
		n.Attrs = attrs
	}
	if end.IsZero() {
		n.Unfinished = true
		end = s.tr.now()
	}
	n.DurationMS = durationMS(end.Sub(s.start))

	type ordered struct {
		idx  int
		span *Span
	}
	ord := make([]ordered, len(children))
	for i, c := range children {
		ord[i] = ordered{i, c}
	}
	sort.SliceStable(ord, func(i, j int) bool {
		a, b := ord[i].span, ord[j].span
		if !a.start.Equal(b.start) {
			return a.start.Before(b.start)
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return ord[i].idx < ord[j].idx
	})
	var childMS float64
	for _, o := range ord {
		cn := o.span.node()
		cn.ParentSpanID = n.SpanID
		childMS += cn.DurationMS
		n.Children = append(n.Children, cn)
	}
	n.SelfMS = n.DurationMS - childMS
	if n.SelfMS < 0 {
		n.SelfMS = 0 // parallel children can sum past wall-clock
	}
	return n
}

func durationMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// Tree snapshots the whole trace as a SpanNode tree. The root node
// carries the trace ID and — when the trace was adopted off the wire —
// the remote parent's span ID.
func (t *Trace) Tree() *SpanNode {
	n := t.root.node()
	t.idMu.Lock()
	id, parent := t.id, t.parent
	t.idMu.Unlock()
	if !id.IsZero() {
		n.TraceID = id.String()
	}
	if !parent.IsZero() {
		n.ParentSpanID = parent.String()
	}
	return n
}

// WriteJSON renders the trace tree as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Tree())
}
