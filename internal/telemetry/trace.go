package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one run's span tree: a root span covering the whole run and
// nested child spans covering its stages (whois parse, RIB load,
// classification, ...). Spans are cheap — a timestamp pair, two atomic
// counters, and a slice append under a small mutex — and safe to start
// and end from concurrent goroutines, which the parallel dataset loader
// does. Code that is not being traced pays one context lookup: StartSpan
// on a context without a trace returns a nil *Span whose methods are
// no-ops, mirroring the nil *diag.Collector convention.
type Trace struct {
	root *Span
	now  func() time.Time // test hook; time.Now outside tests
}

// NewTrace starts a trace whose root span is named name.
func NewTrace(name string) *Trace {
	t := &Trace{now: time.Now}
	t.root = &Span{tr: t, name: name, start: t.now()}
	return t
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span { return t.root }

// End ends the root span (child spans still running keep their own
// clocks; see Span.End).
func (t *Trace) End() { t.root.End() }

// spanKey is the context key carrying the current span.
type spanKey struct{}

// Context returns ctx carrying the trace's root span, the ambient parent
// for StartSpan calls below it.
func (t *Trace) Context(ctx context.Context) context.Context {
	return context.WithValue(ctx, spanKey{}, t.root)
}

// ContextWith returns ctx carrying an explicit parent span.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child span of the span carried by ctx and returns a
// derived context carrying the child. When ctx carries no span (the run
// is not being traced) it returns ctx unchanged and a nil span whose
// methods are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return context.WithValue(ctx, spanKey{}, child), child
}

// Span is one timed stage. All methods are safe on a nil receiver and
// for concurrent use.
type Span struct {
	tr    *Trace
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]string
	children []*Span

	records atomic.Int64
	bytes   atomic.Int64
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild starts and returns a child span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{tr: s.tr, name: name, start: s.tr.now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End stamps the span's end time. Ending twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// AddRecords adds to the span's processed-record count.
func (s *Span) AddRecords(n int64) {
	if s != nil {
		s.records.Add(n)
	}
}

// AddBytes adds to the span's processed-byte count.
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.bytes.Add(n)
	}
}

// SetAttr attaches one string attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Duration returns the span's length so far: end minus start, or
// now minus start for a still-running span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		end = s.tr.now()
	}
	return end.Sub(s.start)
}

// SpanNode is the JSON shape of one span in a trace dump. DurationMS of
// a parent is wall-clock, not the sum of children: parallel children
// overlap, and sequential pipelines leave (small) untraced gaps, so
// SelfMS makes the gap explicit instead of hiding it.
type SpanNode struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	SelfMS     float64           `json:"self_ms"`
	Records    int64             `json:"records,omitempty"`
	Bytes      int64             `json:"bytes,omitempty"`
	Unfinished bool              `json:"unfinished,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanNode       `json:"children,omitempty"`
}

// node snapshots the span subtree. Children are ordered by start time,
// then name, then insertion order — deterministic for a quiescent trace
// even when the children were appended from racing goroutines.
func (s *Span) node() *SpanNode {
	s.mu.Lock()
	end := s.end
	attrs := make(map[string]string, len(s.attrs))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	n := &SpanNode{
		Name:    s.name,
		Start:   s.start,
		Records: s.records.Load(),
		Bytes:   s.bytes.Load(),
	}
	if len(attrs) > 0 {
		n.Attrs = attrs
	}
	if end.IsZero() {
		n.Unfinished = true
		end = s.tr.now()
	}
	n.DurationMS = durationMS(end.Sub(s.start))

	type ordered struct {
		idx  int
		span *Span
	}
	ord := make([]ordered, len(children))
	for i, c := range children {
		ord[i] = ordered{i, c}
	}
	sort.SliceStable(ord, func(i, j int) bool {
		a, b := ord[i].span, ord[j].span
		if !a.start.Equal(b.start) {
			return a.start.Before(b.start)
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return ord[i].idx < ord[j].idx
	})
	var childMS float64
	for _, o := range ord {
		cn := o.span.node()
		childMS += cn.DurationMS
		n.Children = append(n.Children, cn)
	}
	n.SelfMS = n.DurationMS - childMS
	if n.SelfMS < 0 {
		n.SelfMS = 0 // parallel children can sum past wall-clock
	}
	return n
}

func durationMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// Tree snapshots the whole trace as a SpanNode tree.
func (t *Trace) Tree() *SpanNode { return t.root.node() }

// WriteJSON renders the trace tree as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Tree())
}
