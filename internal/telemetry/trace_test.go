package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a trace's clock deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newFakeTrace(name string) (*Trace, *fakeClock) {
	clk := newFakeClock()
	tr := NewTrace(name)
	tr.now = clk.now
	tr.root.start = clk.now()
	return tr, clk
}

func TestSpanNestingAndDurations(t *testing.T) {
	tr, clk := newFakeTrace("run")
	ctx := tr.Context(context.Background())

	ctx1, load := StartSpan(ctx, "load")
	clk.advance(10 * time.Millisecond)
	_, whoisSpan := StartSpan(ctx1, "whois.parse")
	whoisSpan.AddRecords(1200)
	whoisSpan.AddBytes(4096)
	clk.advance(30 * time.Millisecond)
	whoisSpan.End()
	load.End()

	_, infer := StartSpan(ctx, "infer")
	clk.advance(20 * time.Millisecond)
	infer.SetAttr("registries", "5")
	infer.End()
	tr.End()

	root := tr.Tree()
	if root.Name != "run" || root.DurationMS != 60 {
		t.Fatalf("root = %s %vms, want run 60ms", root.Name, root.DurationMS)
	}
	if len(root.Children) != 2 || root.Children[0].Name != "load" || root.Children[1].Name != "infer" {
		t.Fatalf("children = %+v", root.Children)
	}
	load1 := root.Children[0]
	if load1.DurationMS != 40 || len(load1.Children) != 1 {
		t.Fatalf("load = %vms with %d children", load1.DurationMS, len(load1.Children))
	}
	w := load1.Children[0]
	if w.Name != "whois.parse" || w.DurationMS != 30 || w.Records != 1200 || w.Bytes != 4096 {
		t.Fatalf("whois span = %+v", w)
	}
	if load1.SelfMS != 10 {
		t.Errorf("load self = %vms, want 10", load1.SelfMS)
	}
	if inf := root.Children[1]; inf.DurationMS != 20 || inf.Attrs["registries"] != "5" {
		t.Errorf("infer span = %+v", inf)
	}
	// Sequential stage durations sum to the root's wall clock.
	if got := load1.DurationMS + root.Children[1].DurationMS; got != root.DurationMS {
		t.Errorf("stage sum %v != root %v", got, root.DurationMS)
	}
}

// TestChildOrderingDeterminism: children appended out of order (as the
// parallel loader does) dump sorted by start time, then name, then
// insertion — byte-identical across repeated dumps.
func TestChildOrderingDeterminism(t *testing.T) {
	tr, clk := newFakeTrace("run")
	root := tr.Root()

	b := root.StartChild("b")
	a := root.StartChild("a") // same start time: name breaks the tie
	clk.advance(5 * time.Millisecond)
	later := root.StartChild("later")
	a.End()
	b.End()
	later.End()
	tr.End()

	tree := tr.Tree()
	var names []string
	for _, c := range tree.Children {
		names = append(names, c.Name)
	}
	want := []string{"a", "b", "later"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("child order = %v, want %v", names, want)
		}
	}
	var d1, d2 bytes.Buffer
	if err := tr.WriteJSON(&d1); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
		t.Error("repeated dumps differ")
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("StartSpan on untraced context returned a live span")
	}
	if ctx2 != ctx {
		t.Error("untraced StartSpan changed the context")
	}
	// Every nil-span method is a no-op, not a panic.
	sp.AddRecords(1)
	sp.AddBytes(1)
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Duration() != 0 || sp.Name() != "" {
		t.Error("nil span not inert")
	}
	if sp.StartChild("child") != nil {
		t.Error("nil span produced a child")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr, _ := newFakeTrace("run")
	ctx := tr.Context(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "worker")
			sp.AddRecords(10)
			sp.End()
		}()
	}
	wg.Wait()
	tr.End()
	tree := tr.Tree()
	if len(tree.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(tree.Children))
	}
	var total int64
	for _, c := range tree.Children {
		total += c.Records
	}
	if total != 160 {
		t.Errorf("records = %d, want 160", total)
	}
}

func TestUnfinishedSpanMarked(t *testing.T) {
	tr, clk := newFakeTrace("run")
	running := tr.Root().StartChild("stuck")
	clk.advance(7 * time.Millisecond)
	tr.End()
	tree := tr.Tree()
	if !tree.Children[0].Unfinished {
		t.Error("running child not marked unfinished")
	}
	if tree.Children[0].DurationMS != 7 {
		t.Errorf("running child duration = %v, want 7 (clock at dump)", tree.Children[0].DurationMS)
	}
	running.End()
	if tr.Tree().Children[0].Unfinished {
		t.Error("ended child still marked unfinished")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr, clk := newFakeTrace("leaseinfer")
	ctx := tr.Context(context.Background())
	_, sp := StartSpan(ctx, "load")
	clk.advance(time.Millisecond)
	sp.End()
	tr.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var node SpanNode
	if err := json.Unmarshal(buf.Bytes(), &node); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, buf.String())
	}
	if node.Name != "leaseinfer" || len(node.Children) != 1 || node.Children[0].Name != "load" {
		t.Errorf("round-tripped tree = %+v", node)
	}
}
