// Package telemetry is the dependency-free instrumentation substrate
// shared by the whole pipeline: a concurrent metrics registry exposed in
// Prometheus text exposition format, lightweight stage tracing with
// JSON-dumpable span trees, and a leveled structured logger.
//
// The package deliberately has no dependencies beyond the standard
// library so any layer — parsers, loaders, the inference core, the
// serving daemon — can import it without cycles or vendoring. Hot-path
// instruments are lock-free: a Counter increment is a single atomic add,
// and a Histogram observation is a binary search plus two atomic adds,
// so instrumenting the paper's per-record parse loops costs nanoseconds,
// not milliseconds (the BENCH_telemetry.json gate in scripts/check.sh
// keeps it that way).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind is a metric family's type in the exposition output.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry is a concurrent collection of metric families. The zero value
// is not usable; create one with NewRegistry. Registration is idempotent:
// asking for an already-registered family with the same kind and label
// names returns the existing instruments, so independent layers can
// safely "register" the same metric (a reloading daemon, repeated test
// servers). Asking with a conflicting kind or label set panics — that is
// a programming error, not an operational condition.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one named metric with zero or more labeled children.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string // label names; nil for an unlabeled scalar
	bounds []float64

	mu       sync.RWMutex
	children map[string]any // labelKey -> *Counter | *Gauge | *Histogram
	order    []string       // insertion order of children keys
	fn       func() float64 // callback gauge; nil otherwise
}

// labelSep joins label values into a child key. 0xff cannot appear in
// valid UTF-8 label values' first byte position ambiguity-free enough for
// a process-local key; exposition output re-derives values from the key.
const labelSep = "\xff"

// validName reports whether s is a valid Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabel reports whether s is a valid Prometheus label name.
func validLabel(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register returns the family for name, creating it on first use and
// panicking on a kind or label-set conflict.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic("telemetry: invalid label name " + strconv.Quote(l) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s%v, was %s%v",
				name, k, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]any),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the labeled child for key, creating it with mk on first
// use. The read path is a shared-lock map probe.
func (f *family) child(key string, mk func() any) any {
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

func (f *family) labelKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// Counter is a monotonically increasing event count. The zero value is
// ready to use standalone; registry-created counters are shared by name.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative semantics; callers pass counts).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are cumulative only
// at exposition time; observation is a binary search over the upper
// bounds plus two atomic adds, safe for concurrent use.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets is the default latency bucket layout, in seconds: microsecond
// lookups through multi-second dataset reloads.
var DefBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter returns the unlabeled counter family name, registering it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return f.child("", func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the unlabeled gauge family name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return f.child("", func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a callback gauge evaluated at scrape time (e.g.
// snapshot age, goroutine count). The first registration's callback
// wins; later idempotent registrations keep it.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	if f.fn == nil {
		f.fn = fn
	}
	f.mu.Unlock()
}

// SetGaugeFunc is GaugeFunc but always replaces the callback — for a
// value owned by a live object that may be rebuilt (a server's current
// snapshot).
func (r *Registry) SetGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram returns the unlabeled histogram family name. A nil buckets
// slice selects DefBuckets. Buckets must be sorted ascending and are
// fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram, nil, buckets)
	return f.child("", func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a counter family with labeled children.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the child for the given label values, creating it on
// first use. Hoist the child out of hot loops: the child's Inc is a bare
// atomic add, while With is a (shared-lock) map probe.
func (v *CounterVec) With(values ...string) *Counter {
	key := v.f.labelKey(values)
	return v.f.child(key, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labeled children.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := v.f.labelKey(values)
	return v.f.child(key, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with labeled children sharing one
// bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family. A nil buckets slice
// selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets)}
}

// With returns the child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := v.f.labelKey(values)
	return v.f.child(key, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// RegisterRuntimeMetrics adds the standard process self-observation
// gauges (goroutines, heap, GC cycles, process start time) to the
// registry. Heap numbers come from runtime.ReadMemStats at scrape time.
func (r *Registry) RegisterRuntimeMetrics() {
	start := time.Now()
	r.GaugeFunc("process_start_time_seconds",
		"Unix time the process (registry) started.",
		func() float64 { return float64(start.UnixNano()) / 1e9 })
	r.GaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc("go_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	// Page-fault counters (Linux), read from /proc/self/stat at scrape
	// time. With mmap-backed snapshot serving these are the cost model:
	// major faults measure what actually hit disk.
	if _, _, ok := readPageFaults(); ok {
		r.GaugeFunc("process_minor_page_faults_total",
			"Cumulative minor page faults (page-cache hits) for the process.",
			func() float64 { mn, _, _ := readPageFaults(); return float64(mn) })
		r.GaugeFunc("process_major_page_faults_total",
			"Cumulative major page faults (disk reads) for the process.",
			func() float64 { _, mj, _ := readPageFaults(); return float64(mj) })
	}
}

// escapeLabelValue escapes a label value per the text exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the text exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value. Integral values print without an
// exponent so counters read naturally.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {name="value",...} for a child key, with extra
// appended (the histogram le pair). Returns "" for no labels.
func (f *family) labelString(key string, extra ...string) string {
	var parts []string
	if len(f.labels) > 0 {
		values := strings.Split(key, labelSep)
		for i, name := range f.labels {
			parts = append(parts, name+`="`+escapeLabelValue(values[i])+`"`)
		}
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): families sorted by name, children sorted by label
// values, histograms with cumulative _bucket series plus _sum and
// _count. The output is deterministic for a quiescent registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		fn := f.fn
		f.mu.RUnlock()
		sort.Strings(keys)

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if fn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(fn()))
		}
		for _, key := range keys {
			f.mu.RLock()
			c := f.children[key]
			f.mu.RUnlock()
			switch m := c.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, f.labelString(key), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, f.labelString(key), formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					le := formatFloat(bound)
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, f.labelString(key, `le="`+le+`"`), cum)
				}
				// One consistent total for +Inf and _count: observations
				// racing the scrape bump buckets before the shared count,
				// so clamp up to the cumulative sum already rendered.
				cum += m.counts[len(m.bounds)].Load()
				n := m.Count()
				if n < cum {
					n = cum
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, f.labelString(key, `le="+Inf"`), n)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, f.labelString(key), formatFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, f.labelString(key), n)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry in text
// exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
	})
}
