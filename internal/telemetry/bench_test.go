package telemetry

import (
	"io"
	"net/http"
	"testing"
)

// The registry hot path is the instrumentation budget for every
// per-record parse loop and every served request: scripts/check.sh runs
// these and records BENCH_telemetry.json so later PRs can see when
// instrumentation cost creeps. The acceptance bar is <= 50 ns/op for a
// counter increment.

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	// The un-hoisted path: label lookup plus increment per event.
	r := NewRegistry()
	v := r.CounterVec("bench_labeled_total", "", "source")
	v.With("whois/RIPE")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("whois/RIPE").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkTraceDecisionUnsampled(b *testing.B) {
	// The full per-request cost an UNSAMPLED request pays for the trace
	// plane: a header lookup (absent), the traceparent parse fast path,
	// and one head-sampler draw at a rate that keeps ~nothing. This is
	// the overhead budget gated by scripts/check.sh — the nil-span
	// no-op convention means everything past this point is free.
	hdr := make(http.Header)
	hdr.Set("User-Agent", "bench")
	s := NewSampler(1e-9, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ParseTraceparent(hdr.Get(TraceparentHeader)); ok || s.Sample() {
			b.Fatal("unsampled bench sampled a request")
		}
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_scrape_total", "", "source")
	hv := r.HistogramVec("bench_scrape_seconds", "", nil, "endpoint")
	for _, s := range []string{"a", "b", "c", "d", "e"} {
		v.With(s).Add(100)
		hv.With(s).Observe(0.1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
