//go:build linux

package telemetry

import (
	"os"
	"strconv"
	"strings"
)

// readPageFaults returns the process's cumulative minor and major
// page-fault counts from /proc/self/stat. Major faults are the
// signal the mmap snapshot path watches: a cold mapped snapshot pages
// in from disk (major faults), a warm one from the page cache (minor
// or none), so the fault counters separate "restart cost" from
// "steady-state cost" without a profiler.
func readPageFaults() (minflt, majflt uint64, ok bool) {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, 0, false
	}
	// The comm field is an arbitrary parenthesized string; everything
	// after the last ')' is space-separated numerics starting at state.
	s := string(b)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0, 0, false
	}
	fields := strings.Fields(s[i+1:])
	// After the state field: ppid pgrp session tty_nr tpgid flags
	// minflt cminflt majflt — indexes 7 and 9.
	if len(fields) < 10 {
		return 0, 0, false
	}
	minflt, err1 := strconv.ParseUint(fields[7], 10, 64)
	majflt, err2 := strconv.ParseUint(fields[9], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return minflt, majflt, true
}
