package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// paperMatrix is the exact confusion matrix of the paper's Table 2.
func paperMatrix() Confusion {
	return Confusion{TP: 7735, FN: 1743, FP: 121, TN: 5257}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 0.005 }

func TestPaperTable2(t *testing.T) {
	c := paperMatrix()
	if c.Total() != 14856 {
		t.Fatalf("Total = %d", c.Total())
	}
	if !approx(c.Precision(), 0.98) {
		t.Errorf("Precision = %.3f", c.Precision())
	}
	if !approx(c.Recall(), 0.816) {
		t.Errorf("Recall = %.3f", c.Recall())
	}
	if !approx(c.Specificity(), 0.9775) {
		t.Errorf("Specificity = %.3f", c.Specificity())
	}
	if !approx(c.NPV(), 0.751) {
		t.Errorf("NPV = %.3f", c.NPV())
	}
	if !approx(c.Accuracy(), 0.8745) {
		t.Errorf("Accuracy = %.3f", c.Accuracy())
	}
}

func TestRecordAndAdd(t *testing.T) {
	var c Confusion
	c.Record(true, true)   // TP
	c.Record(true, false)  // FN
	c.Record(false, true)  // FP
	c.Record(false, false) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("Record: %+v", c)
	}
	var d Confusion
	d.Add(c)
	d.Add(c)
	if d.Total() != 8 || d.TP != 2 {
		t.Fatalf("Add: %+v", d)
	}
}

func TestZeroDenominators(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.Specificity() != 0 ||
		c.NPV() != 0 || c.Accuracy() != 0 || c.F1() != 0 {
		t.Fatal("empty matrix metrics should be 0")
	}
}

func TestF1(t *testing.T) {
	c := Confusion{TP: 10, FP: 0, FN: 0, TN: 5}
	if c.F1() != 1 {
		t.Fatalf("perfect F1 = %v", c.F1())
	}
}

func TestString(t *testing.T) {
	s := paperMatrix().String()
	for _, want := range []string{"7735 (TP)", "1743 (FN)", "121 (FP)", "5257 (TN)", "Precision 0.98"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
}

// Property: metric identities hold for arbitrary matrices.
func TestIdentitiesQuick(t *testing.T) {
	f := func(tp, fp, tn, fn uint16) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		if c.Total() != int(tp)+int(fp)+int(tn)+int(fn) {
			return false
		}
		for _, v := range []float64{c.Precision(), c.Recall(), c.Specificity(), c.NPV(), c.Accuracy(), c.F1()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		// Accuracy is a convex combination of recall and specificity.
		if c.Total() > 0 {
			wPos := float64(int(tp)+int(fn)) / float64(c.Total())
			expect := wPos*c.Recall() + (1-wPos)*c.Specificity()
			if (int(tp)+int(fn) > 0) && (int(tn)+int(fp) > 0) && math.Abs(expect-c.Accuracy()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
