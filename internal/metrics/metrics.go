// Package metrics implements the information-retrieval metrics of the
// paper's Appendix A, used to evaluate leasing inferences against the
// curated reference dataset (Table 2).
package metrics

import (
	"fmt"
	"strings"
)

// Confusion is a binary confusion matrix over lease predictions.
type Confusion struct {
	TP int // actual lease, inferred lease
	FP int // actual non-lease, inferred lease (Type I)
	TN int // actual non-lease, inferred non-lease
	FN int // actual lease, inferred non-lease (Type II)
}

// Add merges another matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Record tallies one prediction.
func (c *Confusion) Record(actual, predicted bool) {
	switch {
	case actual && predicted:
		c.TP++
	case actual && !predicted:
		c.FN++
	case !actual && predicted:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns the number of observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Precision is TP / (TP + FP): the share of inferred leases that are real.
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Recall is TP / (TP + FN): the share of real leases that were inferred.
func (c Confusion) Recall() float64 { return ratio(c.TP, c.TP+c.FN) }

// Specificity is TN / (TN + FP).
func (c Confusion) Specificity() float64 { return ratio(c.TN, c.TN+c.FP) }

// NPV is TN / (TN + FN): negative predictive value.
func (c Confusion) NPV() float64 { return ratio(c.TN, c.TN+c.FN) }

// Accuracy is (TP + TN) / total.
func (c Confusion) Accuracy() float64 { return ratio(c.TP+c.TN, c.Total()) }

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix in the layout of the paper's Table 2.
func (c Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "                Inferred Lease  Inferred Non-lease\n")
	fmt.Fprintf(&b, "Actual Lease     %7d (TP)     %7d (FN)   Recall      %.2f\n", c.TP, c.FN, c.Recall())
	fmt.Fprintf(&b, "Actual Non-lease %7d (FP)     %7d (TN)   Specificity %.2f\n", c.FP, c.TN, c.Specificity())
	fmt.Fprintf(&b, "Precision %.2f   NPV %.2f   Accuracy %.2f   (n=%d)\n",
		c.Precision(), c.NPV(), c.Accuracy(), c.Total())
	return b.String()
}
