// Package timeline reconstructs a prefix's lease history from archived
// BGP snapshots and the RPKI archive, reproducing the paper's Figure 3:
// alternating lessee origins with AS0 ROAs marking the gaps between
// leases (§6.5).
package timeline

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipleasing/internal/bgp"
	"ipleasing/internal/netutil"
	"ipleasing/internal/rpki"
)

// Point is one sample of the studied prefix's state.
type Point struct {
	Time    time.Time
	Origins []uint32 // BGP origin ASes (empty = withdrawn)
	ROAASNs []uint32 // ASNs authorised by covering ROAs (0 = AS0)
}

// Series is the full history of one prefix.
type Series struct {
	Prefix netutil.Prefix
	Points []Point // ascending by time
}

// Load reads a timeline directory: prefix.txt, rib-<unix>.mrt snapshots,
// and an rpki/ VRP archive, as written by the synthetic generator (and
// shaped like a real per-prefix extraction from collector archives).
func Load(dir string) (*Series, error) {
	pb, err := os.ReadFile(filepath.Join(dir, "prefix.txt"))
	if err != nil {
		return nil, err
	}
	prefix, err := netutil.ParsePrefix(strings.TrimSpace(string(pb)))
	if err != nil {
		return nil, fmt.Errorf("timeline: prefix.txt: %w", err)
	}
	arch, err := rpki.LoadDir(filepath.Join(dir, "rpki"))
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Series{Prefix: prefix}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "rib-") || !strings.HasSuffix(name, ".mrt") {
			continue
		}
		unix, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "rib-"), ".mrt"), 10, 64)
		if err != nil {
			continue
		}
		ts := time.Unix(unix, 0).UTC()
		var tbl bgp.Table
		if err := tbl.LoadMRTFile(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
		pt := Point{Time: ts, Origins: tbl.Origins(prefix)}
		if snap := arch.At(ts); snap != nil {
			pt.ROAASNs = snap.Set().AuthorizedASNs(prefix)
		}
		s.Points = append(s.Points, pt)
	}
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Time.Before(s.Points[j].Time) })
	return s, nil
}

// LoadFromUpdates reconstructs the series from a BGP4MP update stream
// (timeline/updates.mrt) instead of per-sample RIB snapshots: the stream
// is replayed into a routing table and the prefix's state is sampled at
// each RPKI snapshot time. For a clean archive the result matches Load
// exactly; real collectors offer both forms.
func LoadFromUpdates(dir string) (*Series, error) {
	pb, err := os.ReadFile(filepath.Join(dir, "prefix.txt"))
	if err != nil {
		return nil, err
	}
	prefix, err := netutil.ParsePrefix(strings.TrimSpace(string(pb)))
	if err != nil {
		return nil, fmt.Errorf("timeline: prefix.txt: %w", err)
	}
	arch, err := rpki.LoadDir(filepath.Join(dir, "rpki"))
	if err != nil {
		return nil, err
	}
	events, err := bgp.ReadUpdatesFile(filepath.Join(dir, "updates.mrt"))
	if err != nil {
		return nil, err
	}
	s := &Series{Prefix: prefix}
	var tbl bgp.Table
	next := 0
	for _, snap := range arch.Snapshots {
		ts := uint32(snap.Time.Unix())
		for next < len(events) && events[next].Timestamp <= ts {
			if err := tbl.ApplyUpdate(events[next].Update); err != nil {
				return nil, err
			}
			next++
		}
		pt := Point{
			Time:    snap.Time,
			Origins: tbl.Origins(prefix),
			ROAASNs: snap.Set().AuthorizedASNs(prefix),
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// Period is a maximal run of consecutive points sharing one state.
type Period struct {
	From, To time.Time // inclusive sample times
	ASN      uint32    // the lessee origin, or 0 for an AS0 gap
}

// LeasePeriods segments the series into leases: maximal runs of points
// with the same single BGP origin.
func (s *Series) LeasePeriods() []Period {
	var out []Period
	var cur *Period
	for _, pt := range s.Points {
		if len(pt.Origins) != 1 {
			cur = nil
			continue
		}
		o := pt.Origins[0]
		if cur != nil && cur.ASN == o {
			cur.To = pt.Time
			continue
		}
		out = append(out, Period{From: pt.Time, To: pt.Time, ASN: o})
		cur = &out[len(out)-1]
	}
	return out
}

// AS0Gaps segments the series into between-lease gaps: runs where the
// prefix is withdrawn from BGP and only an AS0 ROA covers it.
func (s *Series) AS0Gaps() []Period {
	var out []Period
	var cur *Period
	for _, pt := range s.Points {
		isGap := len(pt.Origins) == 0 && len(pt.ROAASNs) == 1 && pt.ROAASNs[0] == 0
		if !isGap {
			cur = nil
			continue
		}
		if cur != nil {
			cur.To = pt.Time
			continue
		}
		out = append(out, Period{From: pt.Time, To: pt.Time, ASN: 0})
		cur = &out[len(out)-1]
	}
	return out
}

// ASNs returns every ASN appearing in the series (BGP or RPKI), ascending,
// AS0 first if present — the rows of Figure 3's y-axis.
func (s *Series) ASNs() []uint32 {
	seen := make(map[uint32]bool)
	for _, pt := range s.Points {
		for _, o := range pt.Origins {
			seen[o] = true
		}
		for _, a := range pt.ROAASNs {
			seen[a] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Render writes an ASCII Figure 3: one row per ASN, one column per
// sample; 'R' = ROA only, 'B' = BGP only, '#' = both, '.' = neither.
func (s *Series) Render(w io.Writer) error {
	asns := s.ASNs()
	if len(asns) == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	if _, err := fmt.Fprintf(w, "Prefix %s, %d samples %s – %s\n",
		s.Prefix, len(s.Points),
		s.Points[0].Time.Format("2006-01"),
		s.Points[len(s.Points)-1].Time.Format("2006-01")); err != nil {
		return err
	}
	for i := len(asns) - 1; i >= 0; i-- {
		asn := asns[i]
		row := make([]byte, len(s.Points))
		for j, pt := range s.Points {
			hasB, hasR := false, false
			for _, o := range pt.Origins {
				if o == asn {
					hasB = true
				}
			}
			for _, a := range pt.ROAASNs {
				if a == asn {
					hasR = true
				}
			}
			switch {
			case hasB && hasR:
				row[j] = '#'
			case hasB:
				row[j] = 'B'
			case hasR:
				row[j] = 'R'
			default:
				row[j] = '.'
			}
		}
		if _, err := fmt.Fprintf(w, "AS%-9d |%s|\n", asn, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "legend: # ROA+BGP, B BGP only, R ROA only (AS0 row marks lease gaps)")
	return err
}
