package timeline

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ipleasing/internal/synth"
)

func loadSeries(t *testing.T) (*synth.World, *Series) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 41, Scale: 0.005})
	dir := t.TempDir()
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	s, err := Load(filepath.Join(dir, synth.DirTimeline))
	if err != nil {
		t.Fatal(err)
	}
	return w, s
}

// TestFigure3RoundTrip loads the on-disk timeline (MRT + VRP CSV bytes)
// and checks it reproduces the generator's in-memory schedule exactly.
func TestFigure3RoundTrip(t *testing.T) {
	w, s := loadSeries(t)
	if s.Prefix != w.Timeline.Prefix {
		t.Fatalf("prefix %v != %v", s.Prefix, w.Timeline.Prefix)
	}
	if len(s.Points) != len(w.Timeline.Points) {
		t.Fatalf("points %d != %d", len(s.Points), len(w.Timeline.Points))
	}
	for i, pt := range s.Points {
		want := w.Timeline.Points[i]
		if !pt.Time.Equal(want.Time) {
			t.Fatalf("point %d time %v != %v", i, pt.Time, want.Time)
		}
		if len(pt.Origins) != len(want.Origins) {
			t.Fatalf("point %d origins %v != %v", i, pt.Origins, want.Origins)
		}
		for j := range pt.Origins {
			if pt.Origins[j] != want.Origins[j] {
				t.Fatalf("point %d origin %d: %d != %d", i, j, pt.Origins[j], want.Origins[j])
			}
		}
		if len(pt.ROAASNs) != len(want.ROAASNs) {
			t.Fatalf("point %d roas %v != %v", i, pt.ROAASNs, want.ROAASNs)
		}
	}
}

func TestLeasePeriodsAndGaps(t *testing.T) {
	_, s := loadSeries(t)
	periods := s.LeasePeriods()
	if len(periods) != 5 {
		t.Fatalf("lease periods = %d, want 5 (the Figure-3 schedule)", len(periods))
	}
	// Distinct consecutive lessees.
	for i := 1; i < len(periods); i++ {
		if periods[i].ASN == periods[i-1].ASN {
			t.Fatalf("adjacent periods share lessee AS%d", periods[i].ASN)
		}
		if !periods[i].From.After(periods[i-1].To) {
			t.Fatalf("periods overlap: %+v then %+v", periods[i-1], periods[i])
		}
	}
	gaps := s.AS0Gaps()
	if len(gaps) != 4 {
		t.Fatalf("AS0 gaps = %d, want 4 (between the 5 leases)", len(gaps))
	}
	for _, g := range gaps {
		if g.ASN != 0 {
			t.Fatal("gap ASN != 0")
		}
	}
}

func TestASNsAndRender(t *testing.T) {
	_, s := loadSeries(t)
	asns := s.ASNs()
	if len(asns) < 6 || asns[0] != 0 {
		t.Fatalf("ASNs = %v, want AS0 plus the lessees", asns)
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AS0", "AS834", "AS1239", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The AS0 row must contain ROA-only marks, the lessee rows '#'.
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "AS0 ") && !strings.Contains(l, "R") {
			t.Error("AS0 row has no ROA-only marks")
		}
		if strings.HasPrefix(l, "AS834 ") && !strings.Contains(l, "#") {
			t.Error("AS834 row has no ROA+BGP marks")
		}
	}
}

// TestLoadFromUpdatesMatchesRIBs: replaying the BGP4MP update stream must
// reconstruct exactly the same series as loading per-sample RIBs.
func TestLoadFromUpdatesMatchesRIBs(t *testing.T) {
	w := synth.Generate(synth.Config{Seed: 43, Scale: 0.005})
	dir := t.TempDir()
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	tdir := filepath.Join(dir, synth.DirTimeline)
	fromRIBs, err := Load(tdir)
	if err != nil {
		t.Fatal(err)
	}
	fromUpdates, err := LoadFromUpdates(tdir)
	if err != nil {
		t.Fatal(err)
	}
	if fromUpdates.Prefix != fromRIBs.Prefix || len(fromUpdates.Points) != len(fromRIBs.Points) {
		t.Fatalf("series shape: %v/%d vs %v/%d",
			fromUpdates.Prefix, len(fromUpdates.Points), fromRIBs.Prefix, len(fromRIBs.Points))
	}
	for i := range fromRIBs.Points {
		a, b := fromRIBs.Points[i], fromUpdates.Points[i]
		if !a.Time.Equal(b.Time) || len(a.Origins) != len(b.Origins) || len(a.ROAASNs) != len(b.ROAASNs) {
			t.Fatalf("point %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Origins {
			if a.Origins[j] != b.Origins[j] {
				t.Fatalf("point %d origin %d: %d vs %d", i, j, a.Origins[j], b.Origins[j])
			}
		}
	}
	// Segmentation agrees too.
	if len(fromUpdates.LeasePeriods()) != len(fromRIBs.LeasePeriods()) ||
		len(fromUpdates.AS0Gaps()) != len(fromRIBs.AS0Gaps()) {
		t.Fatal("segmentation differs between loaders")
	}
}

func TestLoadFromUpdatesMissing(t *testing.T) {
	if _, err := LoadFromUpdates(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Series{}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty render message missing")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}
